module ibsim

go 1.22
