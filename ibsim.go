// Package ibsim is a trace-driven instruction-fetch simulation library that
// reproduces "Instruction Fetching: Coping with Code Bloat" (Uhlig, Nagle,
// Mudge, Sechrest and Emer; ISCA 1995).
//
// The library has three layers, all reachable from this package:
//
//   - Workloads: synthetic models of the paper's IBS benchmark suite (under
//     Mach 3.0 and Ultrix 3.1 OS models) and SPEC-like workloads, generating
//     complete multi-address-space reference traces.
//   - Simulators: cache/TLB/VM substrates and the Section 5 fetch engines
//     (blocking, prefetch-on-miss, bypass buffers, pipelined stream
//     buffers), plus a whole-system DECstation 3100 CPI model.
//   - Experiments: one constructor per table and figure of the paper's
//     evaluation, each returning structured rows plus a text rendering.
//
// Quick start:
//
//	w, _ := ibsim.LoadWorkload("gs")
//	res, _ := ibsim.SimulateCache(w, ibsim.CacheConfig{Size: 8192, LineSize: 32, Assoc: 1}, 1_000_000)
//	fmt.Printf("gs misses per 100 instructions: %.2f\n", 100*res.MissRatio())
package ibsim

import (
	"fmt"
	"os"

	"ibsim/internal/atomicio"
	"ibsim/internal/cache"
	"ibsim/internal/cpi"
	"ibsim/internal/experiments"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
	"ibsim/internal/vm"
)

// Core types, re-exported from the implementation packages.

type (
	// Workload is a synthetic workload model (an IBS or SPEC profile).
	Workload = synth.Profile
	// DomainProfile configures one protection domain of a custom workload.
	DomainProfile = synth.DomainProfile
	// DataProfile configures a workload's data-reference stream.
	DataProfile = synth.DataProfile
	// Ref is a single memory reference.
	Ref = trace.Ref
	// Run is a maximal sequential instruction run in a compacted trace.
	Run = trace.Run
	// RunStats summarizes a compacted trace's sequentiality.
	RunStats = trace.RunStats
	// Domain identifies a protection domain (User, Kernel, BSDServer,
	// XServer).
	Domain = trace.Domain
	// OSModel selects a workload's operating-system structure.
	OSModel = synth.OSModel
	// CacheConfig describes a cache geometry.
	CacheConfig = cache.Config
	// CacheStats reports cache activity.
	CacheStats = cache.Stats
	// Transfer models a memory link (latency + bandwidth).
	Transfer = memsys.Transfer
	// FetchResult reports a fetch engine's CPIinstr and MPI.
	FetchResult = fetch.Result
	// CPIComponents is a whole-system memory-CPI breakdown (Table 1
	// columns).
	CPIComponents = cpi.Components
	// Options controls experiment scale.
	Options = experiments.Options
	// PagePolicy selects a physical-page allocation policy.
	PagePolicy = vm.Policy
)

// Reference kinds and domains.
const (
	IFetch = trace.IFetch
	DRead  = trace.DRead
	DWrite = trace.DWrite

	User      = trace.User
	Kernel    = trace.Kernel
	BSDServer = trace.BSDServer
	XServer   = trace.XServer
)

// Page-allocation policies (Figure 5's mechanism).
const (
	RandomAlloc  = vm.RandomAlloc
	Sequential   = vm.Sequential
	PageColoring = vm.PageColoring
	BinHopping   = vm.BinHopping
)

// Operating-system models.
const (
	// Monolithic is the Ultrix 3.1 structure.
	Monolithic = synth.Monolithic
	// Microkernel is the Mach 3.0 structure.
	Microkernel = synth.Microkernel
)

// Workloads lists every registered workload name: the eight IBS benchmarks
// under Mach 3.0 ("gs", "verilog", ...), their Ultrix 3.1 variants
// ("gs/ultrix", ...), and the SPEC models ("eqntott", "specint92", ...).
func Workloads() []string { return synth.Names() }

// LoadWorkload returns the named workload model.
func LoadWorkload(name string) (Workload, error) { return synth.Lookup(name) }

// IBSMach returns the eight IBS workloads under the Mach 3.0 OS model.
func IBSMach() []Workload { return synth.IBSMach() }

// IBSUltrix returns the eight IBS workloads under the Ultrix 3.1 OS model.
func IBSUltrix() []Workload { return synth.IBSUltrix() }

// SPEC92 returns the three size-representative SPEC92 workloads.
func SPEC92() []Workload { return synth.SPEC92() }

// GenerateTrace produces n instructions of the workload's reference stream,
// including interleaved data references.
func GenerateTrace(w Workload, n int64) ([]Ref, error) { return synth.Trace(w, 0, n) }

// GenerateInstructionTrace produces exactly n instruction-fetch references.
func GenerateInstructionTrace(w Workload, n int64) ([]Ref, error) {
	return synth.InstrTrace(w, 0, n)
}

// SimulateCache replays n instructions of w through a cache and returns its
// statistics. The reference stream is generated on the fly (never
// materialized), so memory use is independent of n.
func SimulateCache(w Workload, cfg CacheConfig, n int64) (CacheStats, error) {
	src, err := synth.InstrSource(w, 0, n)
	if err != nil {
		return CacheStats{}, err
	}
	c, err := cache.New(cfg)
	if err != nil {
		return CacheStats{}, err
	}
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		c.Access(r.Addr)
	}
	return c.Stats(), src.Err()
}

// FetchConfig selects and parameterizes a fetch engine.
type FetchConfig struct {
	// L1 is the primary I-cache geometry.
	L1 CacheConfig
	// Link is the L1-to-next-level transfer (latency + bandwidth).
	Link Transfer
	// PrefetchLines enables sequential prefetch-on-miss of N lines.
	PrefetchLines int
	// Bypass adds bypass buffers: the processor resumes on the missing
	// word instead of the full refill.
	Bypass bool
	// StreamBufferLines, when > 0, selects the pipelined stream-buffer
	// engine instead (PrefetchLines and Bypass are then ignored).
	StreamBufferLines int
}

// engine builds the configured engine.
func (fc FetchConfig) engine() (fetch.Engine, error) {
	switch {
	case fc.StreamBufferLines > 0:
		return fetch.NewStream(fc.L1, fc.Link, fc.StreamBufferLines)
	case fc.Bypass:
		return fetch.NewBypass(fc.L1, fc.Link, fc.PrefetchLines)
	default:
		return fetch.NewBlocking(fc.L1, fc.Link, fc.PrefetchLines)
	}
}

// SimulateFetch runs n instructions of w through the configured fetch engine
// and returns its CPIinstr result. Like SimulateCache, it drives the engine
// from the streaming generator in O(1) memory; internal/check asserts the
// result is bit-identical to replaying a materialized trace.
func SimulateFetch(w Workload, fc FetchConfig, n int64) (FetchResult, error) {
	src, err := synth.InstrSource(w, 0, n)
	if err != nil {
		return FetchResult{}, err
	}
	e, err := fc.engine()
	if err != nil {
		return FetchResult{}, err
	}
	return fetch.RunSource(e, src)
}

// SimulateSystem runs n instructions of w (with data references) through the
// DECstation 3100 whole-system model and returns the memory-CPI breakdown
// (Table 1's columns) and the user-mode execution share.
func SimulateSystem(w Workload, n int64) (CPIComponents, float64, error) {
	g, err := synth.NewGenerator(w, 0)
	if err != nil {
		return CPIComponents{}, 0, err
	}
	s := cpi.NewSystem()
	for s.Instructions() < n {
		r, _ := g.Next()
		s.Process(r)
	}
	return s.Components(), s.UserShare(), nil
}

// WriteTraceFile generates n instructions of w (with data references) and
// writes them to path in the IBSTRACE binary format. The write is atomic
// (temp file, fsync, rename): path either keeps its previous content or
// holds the complete new trace, never a torn one.
func WriteTraceFile(path string, w Workload, n int64) (written uint64, err error) {
	refs, err := synth.Trace(w, 0, n)
	if err != nil {
		return 0, err
	}
	err = atomicio.WriteTo(path, 0o644, func(f *os.File) error {
		var werr error
		written, werr = trace.EncodeSeeker(f, trace.NewSliceSource(refs))
		return werr
	})
	if err != nil {
		return 0, fmt.Errorf("ibsim: writing trace file: %w", err)
	}
	return written, nil
}

// ReadTraceFile loads an IBSTRACE file into memory.
func ReadTraceFile(path string) ([]Ref, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ibsim: opening trace file: %w", err)
	}
	defer f.Close()
	return trace.Decode(f)
}

// SalvageTraceFile loads as much of a (possibly truncated or corrupted)
// IBSTRACE file as can be validated: the decoded prefix, a flag reporting
// whether the file was complete, and — when it was not — the typed error
// that ended the decode. A partial result is explicit, never silent: callers
// must check complete before treating the refs as the whole trace.
func SalvageTraceFile(path string) (refs []Ref, complete bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("ibsim: opening trace file: %w", err)
	}
	defer f.Close()
	return trace.DecodeSalvage(f)
}

// Columnar (IBSTRACE/v3) trace files: the block-granular on-disk shape the
// zero-copy replay and sweep paths consume. See internal/trace for the
// format specification.

type (
	// ColumnarTrace is an open IBSTRACE/v3 columnar trace file, read block
	// by block — zero-copy via mmap when the platform allows, plain
	// sequential reads otherwise. Close it when done.
	ColumnarTrace = trace.ColumnarFile
	// ColumnarStats summarizes a columnar file for inspection: block count,
	// per-instruction cost, and the address-delta width histogram that shows
	// where the compression comes from.
	ColumnarStats = trace.ColumnarStats
	// ColumnarDamage reports what salvaging a damaged columnar file dropped.
	ColumnarDamage = trace.ColumnarDamage
)

// WriteColumnarTraceFile generates n instructions of w and writes the
// run-compacted fetch stream to path in the IBSTRACE/v3 columnar format.
// The columnar format is instruction-only — data references are not
// representable — so unlike WriteTraceFile the file carries exactly the
// fetch stream. The write is atomic, like WriteTraceFile. Returns the
// number of blocks written.
func WriteColumnarTraceFile(path string, w Workload, n int64) (blocks int, err error) {
	refs, err := synth.InstrTrace(w, 0, n)
	if err != nil {
		return 0, err
	}
	runs := trace.Compact(refs)
	err = atomicio.WriteTo(path, 0o644, func(f *os.File) error {
		var werr error
		blocks, werr = trace.EncodeColumnar(f, runs)
		return werr
	})
	if err != nil {
		return 0, fmt.Errorf("ibsim: writing columnar trace file: %w", err)
	}
	return blocks, nil
}

// OpenColumnarTrace opens an IBSTRACE/v3 columnar trace file for
// block-granular reading.
func OpenColumnarTrace(path string) (*ColumnarTrace, error) {
	cf, err := trace.OpenColumnar(path)
	if err != nil {
		return nil, fmt.Errorf("ibsim: opening columnar trace file: %w", err)
	}
	return cf, nil
}

// SalvageColumnarTrace opens a possibly damaged columnar trace file,
// keeping every block that passes its CRC and dropping the rest; the damage
// report says exactly what was lost. Like SalvageTraceFile, a partial
// result is explicit, never silent: callers must consult the report before
// treating the file as the whole trace.
func SalvageColumnarTrace(path string) (*ColumnarTrace, *ColumnarDamage, error) {
	cf, dmg, err := trace.SalvageColumnar(path)
	if err != nil {
		return nil, nil, fmt.Errorf("ibsim: salvaging columnar trace file: %w", err)
	}
	return cf, dmg, nil
}

// IsColumnarTraceFile reports whether path's header declares the columnar
// (version 3) format — a 12-byte sniff, not a validation — so tools can
// route a file to the right decoder.
func IsColumnarTraceFile(path string) (bool, error) { return trace.SniffColumnar(path) }

// ConvertTraceToColumnar re-encodes a record-format IBSTRACE file as
// IBSTRACE/v3 columnar: instruction fetches are run-compacted and written
// block by block; data references are dropped (the columnar format is
// instruction-only). The destination write is atomic. Returns run-length
// statistics of the converted trace.
func ConvertTraceToColumnar(src, dst string) (RunStats, error) {
	refs, err := ReadTraceFile(src)
	if err != nil {
		return RunStats{}, err
	}
	runs := trace.Compact(refs)
	err = atomicio.WriteTo(dst, 0o644, func(f *os.File) error {
		_, werr := trace.EncodeColumnar(f, runs)
		return werr
	})
	if err != nil {
		return RunStats{}, fmt.Errorf("ibsim: writing columnar trace file: %w", err)
	}
	return trace.SummarizeRuns(runs), nil
}

// ConvertColumnarToTrace expands an IBSTRACE/v3 columnar file back to the
// per-reference record format (instruction fetches only) — the shape the
// record-oriented tools consume. The expansion streams block by block, so
// the trace is never materialized in memory. The destination write is
// atomic. Returns the number of references written.
func ConvertColumnarToTrace(src, dst string) (written uint64, err error) {
	cf, err := OpenColumnarTrace(src)
	if err != nil {
		return 0, err
	}
	defer cf.Close()
	err = atomicio.WriteTo(dst, 0o644, func(f *os.File) error {
		var werr error
		written, werr = trace.EncodeSeeker(f, trace.NewBlockRunSource(cf))
		return werr
	})
	if err != nil {
		return 0, fmt.Errorf("ibsim: writing trace file: %w", err)
	}
	return written, nil
}

// Checkpointed seekable generation: O(1)-memory trace sources that can
// position themselves at an arbitrary instruction index by restoring the
// nearest serialized generator checkpoint and fast-forwarding the remainder
// (internal/synth; format spec in EXPERIMENTS.md).

type (
	// CheckpointIndex is a sorted, CRC-guarded set of serialized generator
	// checkpoints for one (workload, seed) pair. Shared across generation
	// passes; safe for concurrent use.
	CheckpointIndex = synth.CheckpointIndex
	// CheckpointStats summarizes a checkpoint index: count, serialized
	// bytes, recording interval, corrupt checkpoints detected and dropped.
	CheckpointStats = synth.CheckpointStats
	// SeekableTrace is a seekable streaming source over a synthetic
	// workload's instruction-fetch stream. Not safe for concurrent use.
	SeekableTrace = synth.SeekSource
)

// DefaultCheckpointEvery is the default checkpoint recording interval in
// instructions.
const DefaultCheckpointEvery = synth.DefaultCheckpointEvery

// NewCheckpointIndex returns an empty checkpoint index recording a snapshot
// every `every` instructions (non-positive or too-small values are clamped).
func NewCheckpointIndex(every int64) *CheckpointIndex { return synth.NewCheckpointIndex(every) }

// NewSeekableTrace returns a seekable source over w's n-instruction fetch
// stream at seed 0 — the same stream WriteTraceFile and
// WriteColumnarTraceFile serialize. With a non-nil index the source records
// checkpoints as it generates and SeekTo restores the nearest one ≤ the
// target; with a nil index it still seeks correctly, by regenerating from
// instruction zero.
func NewSeekableTrace(w Workload, n int64, ix *CheckpointIndex) (*SeekableTrace, error) {
	return synth.NewSeekSource(w, 0, n, ix)
}

// WriteTraceFileCheckpointed is WriteTraceFile with a checkpoint index
// attached to the generation pass: restore points accumulate in ix at
// ix.Every()-instruction intervals as the trace is generated. The file is
// byte-identical to WriteTraceFile's. Note the recorded states belong to
// the FULL profile (data references included); an index for the
// instruction-only stream NewSeekableTrace reads must come from
// WriteColumnarTraceFileCheckpointed or from reading the seekable source
// itself.
func WriteTraceFileCheckpointed(path string, w Workload, n int64, ix *CheckpointIndex) (written uint64, err error) {
	g, err := synth.NewGenerator(w, 0)
	if err != nil {
		return 0, err
	}
	g.SetCheckpoints(ix)
	refs := make([]Ref, 0, n+n/3)
	for g.Instructions() < n {
		r, _ := g.Next()
		refs = append(refs, r)
	}
	err = atomicio.WriteTo(path, 0o644, func(f *os.File) error {
		var werr error
		written, werr = trace.EncodeSeeker(f, trace.NewSliceSource(refs))
		return werr
	})
	if err != nil {
		return 0, fmt.Errorf("ibsim: writing trace file: %w", err)
	}
	return written, nil
}

// WriteColumnarTraceFileCheckpointed is WriteColumnarTraceFile with a
// checkpoint index attached to the generation pass; the recorded states
// describe the instruction-only stream, so the same index seeks
// NewSeekableTrace sources over (w, n). The file is byte-identical to
// WriteColumnarTraceFile's.
func WriteColumnarTraceFileCheckpointed(path string, w Workload, n int64, ix *CheckpointIndex) (blocks int, err error) {
	src, err := NewSeekableTrace(w, n, ix)
	if err != nil {
		return 0, err
	}
	refs := make([]Ref, 0, n)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		refs = append(refs, r)
	}
	runs := trace.Compact(refs)
	err = atomicio.WriteTo(path, 0o644, func(f *os.File) error {
		var werr error
		blocks, werr = trace.EncodeColumnar(f, runs)
		return werr
	})
	if err != nil {
		return 0, fmt.Errorf("ibsim: writing columnar trace file: %w", err)
	}
	return blocks, nil
}

// CompactTrace reduces a reference stream to its maximal sequential
// instruction runs — the representation the bulk replay paths (ReplayFetch's
// engines via FetchRun, internal/replay's fan-out driver) consume. Data
// references are dropped; Expand-ing the result reproduces exactly the
// instruction fetches of refs.
func CompactTrace(refs []Ref) []Run { return trace.Compact(refs) }

// SummarizeRuns computes run-length statistics (run count, mean/median/max
// length, compaction ratio) for a compacted trace.
func SummarizeRuns(runs []Run) RunStats { return trace.SummarizeRuns(runs) }

// ReplayCache replays an already generated (or loaded) reference stream
// through a cache, counting only instruction fetches.
func ReplayCache(refs []Ref, cfg CacheConfig) (CacheStats, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return CacheStats{}, err
	}
	for _, r := range refs {
		if r.Kind == IFetch {
			c.Access(r.Addr)
		}
	}
	return c.Stats(), nil
}

// ReplayFetch replays a reference stream through a configured fetch engine.
func ReplayFetch(refs []Ref, fc FetchConfig) (FetchResult, error) {
	e, err := fc.engine()
	if err != nil {
		return FetchResult{}, err
	}
	return fetch.Run(e, refs), nil
}

// Baseline memory systems (Table 5).

// EconomyMemory returns the economy baseline link: 30-cycle latency, 4
// bytes/cycle to main memory.
func EconomyMemory() Transfer { return memsys.Economy().Memory }

// HighPerformanceMemory returns the high-performance baseline link: 12-cycle
// latency, 8 bytes/cycle to an ideal off-chip cache.
func HighPerformanceMemory() Transfer { return memsys.HighPerformance().Memory }

// OnChipL2Link returns the paper's on-chip L1↔L2 interface: 6-cycle latency,
// 16 bytes/cycle.
func OnChipL2Link() Transfer { return memsys.L1L2Link() }
