package ibsim

import (
	"fmt"
	"sort"
)

// The exhibit registry: every paper table/figure and every
// beyond-the-paper extension study, addressable by name. cmd/ibstables and
// the ibsimd service layer (internal/server) are both thin wrappers over
// RenderExhibit, so the CLI and the daemon cannot drift apart on what an
// exhibit name means.

// exhibitEntry couples an exhibit's text renderer with its optional
// ASCII-chart variant (figure1/figure7 render as stacked bars in the
// paper).
type exhibitEntry struct {
	render func(Options) (string, error)
	chart  func(Options) (string, error)
}

// rendered adapts a (result, error) constructor pair to the registry's
// renderer shape.
func rendered[T interface{ Render() string }](r T, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// chartRendered is rendered for the chart-capable results.
func chartRendered[T interface{ RenderChart() string }](r T, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.RenderChart(), nil
}

// exhibitOrder lists the paper exhibits in paper order.
var exhibitOrder = []string{
	"table1", "table2", "table3", "table4", "figure1", "figure2",
	"table5", "figure3", "figure4", "figure5", "figure6",
	"table6", "table7", "table8", "figure7",
}

// extensionOrder lists the beyond-the-paper studies in run order.
var extensionOrder = []string{
	"victim", "multistream", "issuewidth", "tlb", "placement",
	"subblock", "pagepolicy", "replacement", "methodology", "sampling",
	"cml", "unifiedl2", "assoclatency", "interleave",
	"speccontrast", "dualport", "writebuffer", "predict",
}

var exhibitRegistry = map[string]exhibitEntry{
	"table1":  {render: func(o Options) (string, error) { return rendered(Table1(o)) }},
	"table2":  {render: func(Options) (string, error) { return Table2(), nil }},
	"table3":  {render: func(o Options) (string, error) { return rendered(Table3(o)) }},
	"table4":  {render: func(o Options) (string, error) { return rendered(Table4(o)) }},
	"table5":  {render: func(o Options) (string, error) { return rendered(Table5(o)) }},
	"table6":  {render: func(o Options) (string, error) { return rendered(Table6(o)) }},
	"table7":  {render: func(o Options) (string, error) { return rendered(Table7(o)) }},
	"table8":  {render: func(o Options) (string, error) { return rendered(Table8(o)) }},
	"figure1": {render: func(o Options) (string, error) { return rendered(Figure1(o)) }, chart: func(o Options) (string, error) { return chartRendered(Figure1(o)) }},
	"figure2": {render: func(Options) (string, error) { return Figure2(), nil }},
	"figure3": {render: func(o Options) (string, error) { return rendered(Figure3(o)) }},
	"figure4": {render: func(o Options) (string, error) { return rendered(Figure4(o)) }},
	"figure5": {render: func(o Options) (string, error) { return rendered(Figure5(o)) }},
	"figure6": {render: func(o Options) (string, error) { return rendered(Figure6(o)) }},
	"figure7": {render: func(o Options) (string, error) { return rendered(Figure7(o)) }, chart: func(o Options) (string, error) { return chartRendered(Figure7(o)) }},

	"victim":       {render: func(o Options) (string, error) { return rendered(ExtensionVictim(o)) }},
	"multistream":  {render: func(o Options) (string, error) { return rendered(ExtensionMultiStream(o)) }},
	"issuewidth":   {render: func(o Options) (string, error) { return rendered(ExtensionIssueWidth(o)) }},
	"tlb":          {render: func(o Options) (string, error) { return rendered(ExtensionTLB(o)) }},
	"placement":    {render: func(o Options) (string, error) { return rendered(ExtensionPlacement(o)) }},
	"subblock":     {render: func(o Options) (string, error) { return rendered(AblationSubBlock(o)) }},
	"pagepolicy":   {render: func(o Options) (string, error) { return rendered(AblationPagePolicy(o)) }},
	"replacement":  {render: func(o Options) (string, error) { return rendered(AblationReplacement(o)) }},
	"methodology":  {render: func(o Options) (string, error) { return rendered(MethodologyValidation(o)) }},
	"sampling":     {render: func(o Options) (string, error) { return rendered(SamplingStudy(o)) }},
	"cml":          {render: func(o Options) (string, error) { return rendered(ExtensionCML(o)) }},
	"unifiedl2":    {render: func(o Options) (string, error) { return rendered(ExtensionUnifiedL2(o)) }},
	"assoclatency": {render: func(o Options) (string, error) { return rendered(ExtensionAssocLatency(o)) }},
	"interleave":   {render: func(o Options) (string, error) { return rendered(ExtensionInterleave(o)) }},
	"speccontrast": {render: func(o Options) (string, error) { return rendered(SPECContrast(o)) }},
	"dualport":     {render: func(o Options) (string, error) { return rendered(ExtensionDualPort(o)) }},
	"writebuffer":  {render: func(o Options) (string, error) { return rendered(AblationWriteBuffer(o)) }},
	"predict":      {render: func(o Options) (string, error) { return rendered(ExtensionPredict(o)) }},
}

// ExhibitNames returns the paper's tables and figures in paper order.
func ExhibitNames() []string { return append([]string(nil), exhibitOrder...) }

// ExtensionNames returns the beyond-the-paper extension/ablation studies in
// their conventional run order.
func ExtensionNames() []string { return append([]string(nil), extensionOrder...) }

// AllExhibitNames returns every registered exhibit name, sorted.
func AllExhibitNames() []string {
	out := make([]string, 0, len(exhibitRegistry))
	for name := range exhibitRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IsExhibit reports whether name addresses a registered exhibit.
func IsExhibit(name string) bool {
	_, ok := exhibitRegistry[name]
	return ok
}

// RenderExhibit runs the named exhibit at the given options and returns its
// text rendering. chart selects the ASCII stacked-bar form for the exhibits
// that have one (figure1, figure7); it is ignored for the rest. An unknown
// name is an error.
func RenderExhibit(name string, opt Options, chart bool) (string, error) {
	e, ok := exhibitRegistry[name]
	if !ok {
		return "", fmt.Errorf("ibsim: unknown exhibit %q", name)
	}
	if chart && e.chart != nil {
		return e.chart(opt)
	}
	return e.render(opt)
}
