package ibsim

import "testing"

// Benchmarks for the extension and ablation studies (beyond the paper's
// exhibits; see EXPERIMENTS.md).

func BenchmarkExtensionVictim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ExtensionVictim(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Baseline, "dm-CPI")
			b.ReportMetric(res.Rows[len(res.Rows)-1].CPI, "victim15-CPI")
			b.ReportMetric(res.TwoWay, "2way-CPI")
		}
	}
}

func BenchmarkExtensionMultiStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ExtensionMultiStream(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Depth == 4 && (row.Ways == 1 || row.Ways == 4) {
					b.ReportMetric(row.CPI, "ways"+itoa(row.Ways)+"-CPI")
				}
			}
		}
	}
}

func BenchmarkExtensionIssueWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ExtensionIssueWidth(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.CPIinstr, "fetch-floor-CPI")
			b.ReportMetric(res.Rows[2].FetchShare, "quad-issue-share")
		}
	}
}

func BenchmarkExtensionTLB(b *testing.B) {
	opt := Options{Instructions: 150_000}
	for i := 0; i < b.N; i++ {
		res, err := ExtensionTLB(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Assoc == 0 && (row.Entries == 64 || row.Entries == 256) {
					b.ReportMetric(row.MissesPer100, "tlb"+itoa(row.Entries)+"-mpi")
				}
			}
		}
	}
}

func BenchmarkExtensionPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ExtensionPlacement(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Scattered, "scattered-MPI")
			b.ReportMetric(res.HotPacked, "hotpacked-MPI")
		}
	}
}

func BenchmarkAblationSubBlock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AblationSubBlock(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Line16Prefetch3, "prefetch-CPI")
			b.ReportMetric(res.Line64SubBlock16, "subblock-CPI")
		}
	}
}

func BenchmarkAblationPagePolicy(b *testing.B) {
	opt := Options{Instructions: 150_000, Trials: 3}
	for i := 0; i < b.N; i++ {
		res, err := AblationPagePolicy(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.ReportMetric(row.MeanMPI, row.Policy.String()+"-MPI")
			}
		}
	}
}

func BenchmarkAblationReplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AblationReplacement(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Assoc == 4 {
					b.ReportMetric(row.MPI, row.Policy.String()+"4way-MPI")
				}
			}
		}
	}
}

func BenchmarkLocalityAnalysis(b *testing.B) {
	w, err := LoadWorkload("gs")
	if err != nil {
		b.Fatal(err)
	}
	refs, err := GenerateInstructionTrace(w, 200_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeLocality(refs, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// itoa avoids importing strconv in a benchmark file for two call sites.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
