package trace

import (
	"bytes"
	"errors"
	"testing"

	"ibsim/internal/xrand"
)

// randomInstrTrace builds an instruction-heavy trace with sequential runs
// broken by jumps and domain switches — the structure Compact exploits.
func randomInstrTrace(rng *xrand.Source, n int) []Ref {
	refs := make([]Ref, 0, n)
	addr := uint64(0x10000)
	dom := User
	for len(refs) < n {
		if rng.Bool(0.1) {
			addr = rng.Uint64() >> rng.Intn(40) &^ 3
		}
		if rng.Bool(0.02) {
			dom = Domain(rng.Intn(int(NumDomains)))
		}
		if rng.Bool(0.05) {
			refs = append(refs, Ref{Addr: rng.Uint64(), Kind: Kind(1 + rng.Intn(2)), Domain: dom})
			continue
		}
		refs = append(refs, Ref{Addr: addr, Kind: IFetch, Domain: dom})
		addr += InstrBytes
	}
	return refs
}

func instrOnly(refs []Ref) []Ref {
	out := make([]Ref, 0, len(refs))
	for _, r := range refs {
		if r.Kind == IFetch {
			out = append(out, r)
		}
	}
	return out
}

func TestCompactBasic(t *testing.T) {
	refs := []Ref{
		{Addr: 0x1000, Kind: IFetch, Domain: User},
		{Addr: 0x1004, Kind: IFetch, Domain: User},
		{Addr: 0x1008, Kind: IFetch, Domain: User},
		{Addr: 0x2000, Kind: DRead, Domain: User}, // ignored
		{Addr: 0x100c, Kind: IFetch, Domain: User},
		{Addr: 0x4000, Kind: IFetch, Domain: User},   // jump
		{Addr: 0x4004, Kind: IFetch, Domain: Kernel}, // domain switch
	}
	runs := Compact(refs)
	want := []Run{
		{Start: 0x1000, Len: 4, Domain: User},
		{Start: 0x4000, Len: 1, Domain: User},
		{Start: 0x4004, Len: 1, Domain: Kernel},
	}
	if len(runs) != len(want) {
		t.Fatalf("got %d runs %v, want %d", len(runs), runs, len(want))
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run %d: got %+v, want %+v", i, runs[i], want[i])
		}
	}
}

// A run never wraps the address space: the last instructions below 2^64 end
// the run so Start+Len*InstrBytes stays representable.
func TestCompactAddressSpaceWrap(t *testing.T) {
	top := ^uint64(0) - 2*InstrBytes + 1
	refs := []Ref{
		{Addr: top, Kind: IFetch},
		{Addr: top + InstrBytes, Kind: IFetch},
		{Addr: 0, Kind: IFetch}, // wrapped: must start a fresh run
		{Addr: InstrBytes, Kind: IFetch},
	}
	runs := Compact(refs)
	for _, r := range runs {
		if r.End() <= r.Start && r.End() != 0 { // End()==0 marks a run ending exactly at the top
			t.Fatalf("run %+v wraps the address space", r)
		}
		if last := r.Start + uint64(r.Len-1)*InstrBytes; last < r.Start {
			t.Fatalf("run %+v has wrapping instructions", r)
		}
	}
	if got := Expand(runs); len(got) != len(refs) {
		t.Fatalf("expand lost refs: %d vs %d", len(got), len(refs))
	}
}

// Property: Expand(Compact(refs)) is exactly the instruction subsequence.
func TestCompactExpandRoundTrip(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 20; trial++ {
		refs := randomInstrTrace(rng, 2000)
		runs := Compact(refs)
		got := Expand(runs)
		want := instrOnly(refs)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d refs, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d ref %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
		// Runs must be maximal: consecutive runs never merge.
		for i := 1; i < len(runs); i++ {
			if runs[i].Start == runs[i-1].End() && runs[i].Domain == runs[i-1].Domain && runs[i-1].End() != 0 {
				t.Fatalf("trial %d: runs %d,%d not maximal: %+v %+v", trial, i-1, i, runs[i-1], runs[i])
			}
		}
	}
}

// Property: a Compactor fed the same stream in arbitrary chunks produces
// exactly Compact's output — sequential stretches merge across chunk
// boundaries.
func TestCompactorMatchesCompact(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 20; trial++ {
		refs := randomInstrTrace(rng, 2000)
		want := Compact(refs)
		var c Compactor
		for i := 0; i < len(refs); {
			chunk := 1 + rng.Intn(97)
			if i+chunk > len(refs) {
				chunk = len(refs) - i
			}
			for _, r := range refs[i : i+chunk] {
				c.Add(r)
			}
			if c.Len() > len(want) {
				t.Fatalf("trial %d: Len %d exceeds final run count %d", trial, c.Len(), len(want))
			}
			i += chunk
		}
		got := c.Finish()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d runs, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d run %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCompactorEmpty(t *testing.T) {
	var c Compactor
	if c.Len() != 0 {
		t.Fatal("empty compactor Len != 0")
	}
	if runs := c.Finish(); len(runs) != 0 {
		t.Fatalf("empty compactor produced %d runs", len(runs))
	}
	var d Compactor
	d.Add(Ref{Addr: 8, Kind: DRead}) // ignored
	if d.Len() != 0 {
		t.Fatal("data ref opened a run")
	}
}

func TestRunSourceMatchesExpand(t *testing.T) {
	rng := xrand.New(7)
	refs := randomInstrTrace(rng, 3000)
	runs := Compact(refs)
	want := Expand(runs)
	src := NewRunSource(runs)
	for i, w := range want {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("source ended at %d, want %d refs", i, len(want))
		}
		if got != w {
			t.Fatalf("ref %d: got %+v, want %+v", i, got, w)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source yielded past the end")
	}
	if src.Err() != nil {
		t.Fatalf("Err: %v", src.Err())
	}
	src.Reset()
	if got, ok := src.Next(); !ok || got != want[0] {
		t.Fatalf("after Reset: got %+v ok=%v", got, ok)
	}
}

func TestSummarizeRuns(t *testing.T) {
	runs := []Run{
		{Start: 0, Len: 1},
		{Start: 0x100, Len: 3},
		{Start: 0x200, Len: 8},
		{Start: 0x300, Len: 4},
	}
	st := SummarizeRuns(runs)
	if st.Instructions != 16 || st.Runs != 4 || st.MaxLen != 8 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanLen != 4 {
		t.Errorf("MeanLen = %v, want 4", st.MeanLen)
	}
	if st.MedianLen != 3.5 { // sorted lens 1,3,4,8 -> (3+4)/2
		t.Errorf("MedianLen = %v, want 3.5", st.MedianLen)
	}
	if st.CompactionRatio() != 4 {
		t.Errorf("CompactionRatio = %v, want 4", st.CompactionRatio())
	}
	if z := SummarizeRuns(nil); z.CompactionRatio() != 0 || z.Runs != 0 {
		t.Errorf("empty stats: %+v", z)
	}
}

// CompactAppend with a pre-sized destination must not allocate: it is the
// sweep/replay hot path.
func TestCompactAppendZeroAlloc(t *testing.T) {
	rng := xrand.New(99)
	refs := randomInstrTrace(rng, 10000)
	dst := make([]Run, 0, len(refs))
	allocs := testing.AllocsPerRun(10, func() {
		dst = CompactAppend(dst[:0], refs)
	})
	if allocs != 0 {
		t.Fatalf("CompactAppend allocated %v times per run, want 0", allocs)
	}
}

func BenchmarkCompactAppend(b *testing.B) {
	rng := xrand.New(1)
	refs := randomInstrTrace(rng, 1<<20)
	dst := make([]Run, 0, len(refs))
	b.SetBytes(int64(len(refs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = CompactAppend(dst[:0], refs)
	}
}

// --- run-length codec ---

func testRuns(t *testing.T, n int) []Run {
	t.Helper()
	rng := xrand.New(uint64(n))
	runs := Compact(randomInstrTrace(rng, n))
	if len(runs) < 2 {
		t.Fatalf("degenerate test trace: %d runs", len(runs))
	}
	return runs
}

func TestRunCodecRoundTrip(t *testing.T) {
	runs := testRuns(t, 5000)
	var buf bytes.Buffer
	n, err := EncodeRuns(&buf, runs)
	if err != nil || n != uint64(len(runs)) {
		t.Fatalf("EncodeRuns: n=%d err=%v", n, err)
	}
	got, err := DecodeRuns(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeRuns: %v", err)
	}
	if len(got) != len(runs) {
		t.Fatalf("got %d runs, want %d", len(got), len(runs))
	}
	for i := range runs {
		if got[i] != runs[i] {
			t.Fatalf("run %d: got %+v, want %+v", i, got[i], runs[i])
		}
	}
}

// Decode expands a run-length stream transparently: per-ref consumers see the
// identical instruction stream.
func TestRunCodecTransparentExpansion(t *testing.T) {
	runs := testRuns(t, 5000)
	var buf bytes.Buffer
	if _, err := EncodeRuns(&buf, runs); err != nil {
		t.Fatal(err)
	}
	refs, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := Expand(runs)
	if len(refs) != len(want) {
		t.Fatalf("expanded to %d refs, want %d", len(refs), len(want))
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("ref %d: got %+v, want %+v", i, refs[i], want[i])
		}
	}
}

func TestRunCodecSeekerSelfDescribing(t *testing.T) {
	runs := testRuns(t, 3000)
	var f seekBuffer
	n, err := EncodeRunsSeeker(&f, runs)
	if err != nil || n != uint64(len(runs)) {
		t.Fatalf("EncodeRunsSeeker: n=%d err=%v", n, err)
	}
	tr, err := NewReader(bytes.NewReader(f.buf))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Runs() {
		t.Fatal("reader does not report a run-length stream")
	}
	// Both views must verify the checksum trailer at end of stream.
	got, complete, err := DecodeRunsSalvage(bytes.NewReader(f.buf))
	if err != nil || !complete {
		t.Fatalf("DecodeRunsSalvage: complete=%v err=%v", complete, err)
	}
	if len(got) != len(runs) {
		t.Fatalf("got %d runs, want %d", len(got), len(runs))
	}
	refs, complete, err := DecodeSalvage(bytes.NewReader(f.buf))
	if err != nil || !complete {
		t.Fatalf("DecodeSalvage on run file: complete=%v err=%v", complete, err)
	}
	if want := Expand(runs); len(refs) != len(want) {
		t.Fatalf("salvaged %d refs, want %d", len(refs), len(want))
	}
}

// DecodeRuns on a per-reference file compacts it, so callers are agnostic to
// the on-disk representation.
func TestDecodeRunsFromRefFile(t *testing.T) {
	rng := xrand.New(17)
	refs := randomInstrTrace(rng, 4000)
	var buf bytes.Buffer
	if _, err := Encode(&buf, NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRuns(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeRuns: %v", err)
	}
	want := Compact(refs)
	if len(got) != len(want) {
		t.Fatalf("got %d runs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Truncated run files salvage the valid prefix with a typed error, through
// both the run view and the expanding per-ref view.
func TestRunCodecSalvageTruncation(t *testing.T) {
	runs := testRuns(t, 3000)
	var f seekBuffer
	if _, err := EncodeRunsSeeker(&f, runs); err != nil {
		t.Fatal(err)
	}
	cut := f.buf[:len(f.buf)*2/3]

	got, complete, err := DecodeRunsSalvage(bytes.NewReader(cut))
	if complete || !errors.Is(err, ErrTruncated) {
		t.Fatalf("run salvage: complete=%v err=%v, want ErrTruncated", complete, err)
	}
	if len(got) == 0 || len(got) >= len(runs) {
		t.Fatalf("salvaged %d of %d runs", len(got), len(runs))
	}
	for i := range got {
		if got[i] != runs[i] {
			t.Fatalf("salvaged run %d: got %+v, want %+v", i, got[i], runs[i])
		}
	}

	refs, complete, err := DecodeSalvage(bytes.NewReader(cut))
	if complete || !errors.Is(err, ErrTruncated) {
		t.Fatalf("ref salvage: complete=%v err=%v, want ErrTruncated", complete, err)
	}
	want := Expand(runs)
	for i := range refs {
		if refs[i] != want[i] {
			t.Fatalf("salvaged ref %d: got %+v, want %+v", i, refs[i], want[i])
		}
	}
}

// A bit flip in a run record's length varint is caught by the checksum even
// when it stays structurally decodable.
func TestRunCodecChecksumCatchesBitFlip(t *testing.T) {
	runs := testRuns(t, 2000)
	var f seekBuffer
	if _, err := EncodeRunsSeeker(&f, runs); err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 8; bit++ {
		mut := append([]byte(nil), f.buf...)
		mut[headerSize+3] ^= 1 << bit
		_, complete, err := DecodeRunsSalvage(bytes.NewReader(mut))
		if complete && err == nil {
			t.Fatalf("bit %d flip went undetected", bit)
		}
	}
}

func TestRunWriterRejectsInvalidRuns(t *testing.T) {
	cases := []Run{
		{Start: 0x1000, Len: 0},                     // empty
		{Start: 0x1000, Len: -3},                    // negative
		{Start: 0x1000, Len: maxRunLen + 1},         // absurd
		{Start: 0x1000, Len: 1, Domain: NumDomains}, // bad domain
		{Start: ^uint64(0) - InstrBytes, Len: 2},    // wraps
	}
	for i, r := range cases {
		w, err := NewRunWriter(&bytes.Buffer{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.PutRun(r); err == nil {
			t.Errorf("case %d: PutRun(%+v) accepted", i, r)
		}
	}
}

func TestCodecModeGuards(t *testing.T) {
	rw, err := NewRunWriter(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Put(Ref{Addr: 4, Kind: IFetch}); err == nil {
		t.Error("Put accepted on a run-length writer")
	}
	w, err := NewWriter(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.PutRun(Run{Start: 4, Len: 1}); err == nil {
		t.Error("PutRun accepted on a per-reference writer")
	}

	// NextRun on a per-reference stream fails rather than misreads.
	var buf bytes.Buffer
	if _, err := Encode(&buf, NewSliceSource(seqRefs(4))); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.NextRun(); ok || tr.Err() == nil {
		t.Error("NextRun succeeded on a per-reference stream")
	}

	// NextRun mid-expansion fails: the partially consumed run is unrecoverable.
	var rbuf bytes.Buffer
	if _, err := EncodeRuns(&rbuf, []Run{{Start: 0x1000, Len: 5}}); err != nil {
		t.Fatal(err)
	}
	tr2, err := NewReader(bytes.NewReader(rbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr2.Next(); !ok {
		t.Fatal("Next failed on run stream")
	}
	if _, ok := tr2.NextRun(); ok || tr2.Err() == nil {
		t.Error("NextRun succeeded mid-expansion")
	}
}

// A corrupt zero run length is rejected as ErrCorrupt, and an enormous
// declared length cannot force unbounded expansion work.
func TestRunCodecHostileLength(t *testing.T) {
	var buf bytes.Buffer
	if _, err := EncodeRuns(&buf, []Run{{Start: 0x1000, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Record layout: tag | uvarint(delta=0x1000) | uvarint(len=1). The length
	// byte is the last; zero it.
	mut := append([]byte(nil), data...)
	mut[len(mut)-1] = 0
	_, err := DecodeRuns(bytes.NewReader(mut))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-length run: %v, want ErrCorrupt", err)
	}
}
