package trace

import "fmt"

// Adapters between the block-granular view (BlockSource) and the existing
// run/reference streaming interfaces, so every consumer — the sweep engine,
// the replay fan-out, Count, the v1 codec — can run off a columnar file, and
// every in-memory []Run can masquerade as blocks for differential testing.

// RunsBlocks adapts an in-memory run-compacted trace to BlockSource by
// slicing it into fixed run-count blocks. It performs no encoding — BlockRuns
// copies the slice into dst — so it is the reference implementation
// differential checks compare a ColumnarFile against.
type RunsBlocks struct {
	runs []Run
	per  int
	cum  []int64
}

// NewRunsBlocks slices runs into blocks of per runs each (the last may be
// short). per <= 0 defaults to one block holding everything.
func NewRunsBlocks(runs []Run, per int) *RunsBlocks {
	if per <= 0 {
		per = len(runs)
		if per == 0 {
			per = 1
		}
	}
	n := (len(runs) + per - 1) / per
	cum := make([]int64, n+1)
	var refs int64
	for i := 0; i < n; i++ {
		cum[i] = refs
		for _, r := range runs[i*per : min(len(runs), (i+1)*per)] {
			refs += r.Len
		}
	}
	cum[n] = refs
	return &RunsBlocks{runs: runs, per: per, cum: cum}
}

// NumBlocks implements BlockSource.
func (b *RunsBlocks) NumBlocks() int { return len(b.cum) - 1 }

// BlockMeta implements BlockSource.
func (b *RunsBlocks) BlockMeta(i int) BlockMeta {
	blk := b.block(i)
	last := blk[len(blk)-1]
	return BlockMeta{
		Refs:      b.cum[i+1] - b.cum[i],
		Runs:      len(blk),
		FirstAddr: blk[0].Start,
		LastAddr:  last.Start + uint64(last.Len-1)*InstrBytes,
	}
}

// BlockRuns implements BlockSource.
func (b *RunsBlocks) BlockRuns(i int, dst []Run) ([]Run, error) {
	if i < 0 || i >= b.NumBlocks() {
		return dst[:0], fmt.Errorf("trace: block %d out of range [0,%d)", i, b.NumBlocks())
	}
	return append(dst[:0], b.block(i)...), nil
}

// SeekRef mirrors ColumnarFile.SeekRef.
func (b *RunsBlocks) SeekRef(pos int64) (block int, before int64, ok bool) {
	return seekCum(b.cum, pos)
}

func (b *RunsBlocks) block(i int) []Run {
	return b.runs[i*b.per : min(len(b.runs), (i+1)*b.per)]
}

// BlockRunSource streams a BlockSource as a sequential run iterator and as a
// per-reference Source, decoding one block at a time into a reused buffer —
// O(block) memory however large the trace. Like Reader, the two views must
// not be mixed mid-run.
type BlockRunSource struct {
	bs   BlockSource
	i    int   // next block to decode
	buf  []Run // decoded current block
	j    int   // next run within buf
	off  int64 // per-ref cursor within buf[j-1] (Next view)
	pend Run   // run being expanded by Next
	err  error
}

// NewBlockRunSource returns a streaming view over bs from the first block.
func NewBlockRunSource(bs BlockSource) *BlockRunSource {
	return &BlockRunSource{bs: bs}
}

// NextRun yields the next run, decoding blocks on demand.
func (s *BlockRunSource) NextRun() (Run, bool) {
	if s.err == nil && s.off != 0 {
		s.err = fmt.Errorf("trace: NextRun mid-expansion (mixed with Next)")
		return Run{}, false
	}
	return s.nextRunRaw()
}

// Next implements Source, expanding runs to per-instruction references.
func (s *BlockRunSource) Next() (Ref, bool) {
	if s.off == 0 {
		run, ok := s.nextRunRaw()
		if !ok {
			return Ref{}, false
		}
		s.pend = run
	}
	ref := Ref{Addr: s.pend.Start + uint64(s.off)*InstrBytes, Kind: IFetch, Domain: s.pend.Domain}
	if s.off++; s.off == s.pend.Len {
		s.off = 0
	}
	return ref, true
}

// nextRunRaw is NextRun without the mixed-view guard (Next's internal use).
func (s *BlockRunSource) nextRunRaw() (Run, bool) {
	if s.err != nil {
		return Run{}, false
	}
	for s.j >= len(s.buf) {
		if s.i >= s.bs.NumBlocks() {
			return Run{}, false
		}
		s.buf, s.err = s.bs.BlockRuns(s.i, s.buf)
		if s.err != nil {
			return Run{}, false
		}
		s.i++
		s.j = 0
	}
	r := s.buf[s.j]
	s.j++
	return r, true
}

// Err implements Source: the first decode error, if any.
func (s *BlockRunSource) Err() error { return s.err }

// Reset rewinds to the first block (clearing any sticky error).
func (s *BlockRunSource) Reset() {
	s.i, s.j, s.off, s.buf, s.err = 0, 0, 0, s.buf[:0], nil
}

// ColumnarStats summarizes a columnar file for inspection (ibstrace -file):
// sizes, per-instruction cost, and the address-delta width histogram that
// shows where the compression comes from.
type ColumnarStats struct {
	// Blocks, Runs, Refs are the file's block/run/instruction counts.
	Blocks int
	Runs   int64
	Refs   int64
	// FileBytes is the whole file; PayloadBytes just the block payloads.
	FileBytes    int64
	PayloadBytes int64
	// BytesPerRef is FileBytes/Refs.
	BytesPerRef float64
	// DeltaWidth[n] counts runs whose address-delta varint took n+1 bytes.
	DeltaWidth [10]int64
}

// Stats walks every block (CRC-checking as it goes) and summarizes the file.
func (f *ColumnarFile) Stats() (ColumnarStats, error) {
	st := ColumnarStats{
		Blocks:    len(f.metas),
		Runs:      f.runs,
		Refs:      f.refs,
		FileBytes: f.size,
	}
	var buf []Run
	for i, m := range f.metas {
		st.PayloadBytes += int64(m.PayloadLen)
		var err error
		if buf, err = f.BlockRuns(i, buf); err != nil {
			return st, err
		}
		// Re-derive each run's delta width from the decoded runs (the
		// canonical encoding makes this exact without re-parsing columns).
		var prevEnd uint64
		var vb [10]byte
		for _, r := range buf {
			delta := int64(r.Start/InstrBytes - prevEnd)
			n := len(appendZigzag(vb[:0], delta))
			st.DeltaWidth[n-1]++
			prevEnd = r.End() / InstrBytes
		}
	}
	if st.Refs > 0 {
		st.BytesPerRef = float64(st.FileBytes) / float64(st.Refs)
	}
	return st, nil
}
