package trace

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"testing"

	"ibsim/internal/fault"
)

// encodeChecksummed returns a counted, checksummed encoding of refs.
func encodeChecksummed(t testing.TB, in []Ref) []byte {
	t.Helper()
	var sb seekBuffer
	if _, err := EncodeSeeker(&sb, NewSliceSource(in)); err != nil {
		t.Fatal(err)
	}
	return sb.buf
}

func seqRefs(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = Ref{Addr: 0x400000 + uint64(i)*4, Kind: IFetch, Domain: User}
	}
	return out
}

// Satellite regression: Close is idempotent, and the writer's error state is
// sticky — a second Close and any Put after a failure return the first
// error.
func TestWriterCloseIdempotentSticky(t *testing.T) {
	// Successful lifecycle.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(Ref{Addr: 4, Kind: IFetch}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	if err := w.Put(Ref{Addr: 8, Kind: IFetch}); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("Put after Close = %v, want ErrWriterClosed", err)
	}
	if buf.Len() != headerSize+2 {
		t.Fatalf("Put after Close grew the stream to %d bytes", buf.Len())
	}

	// Failed lifecycle: flush fails, and the failure is sticky.
	fw, err := NewWriter(&failWriter{remain: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Put(Ref{Addr: 4, Kind: IFetch}); err != nil {
		t.Fatalf("buffered Put failed early: %v", err)
	}
	first := fw.Close()
	if first == nil {
		t.Fatal("Close over a failing writer succeeded")
	}
	if again := fw.Close(); again != first {
		t.Fatalf("second Close = %v, want the first error %v", again, first)
	}
	if err := fw.Put(Ref{Addr: 8, Kind: IFetch}); err != first {
		t.Fatalf("Put after failed Close = %v, want the first error %v", err, first)
	}

	// Failed mid-stream write poisons Put and Close alike.
	pw, err := NewWriter(&failWriter{remain: 64})
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for _, r := range seqRefs(200000) {
		if firstErr = pw.Put(r); firstErr != nil {
			break
		}
	}
	if firstErr == nil {
		t.Fatal("200k refs never overflowed the 64-byte writer")
	}
	if err := pw.Put(Ref{Addr: 4, Kind: IFetch}); err != firstErr {
		t.Fatalf("Put after failed Put = %v, want %v", err, firstErr)
	}
	if err := pw.Close(); err != firstErr {
		t.Fatalf("Close after failed Put = %v, want %v", err, firstErr)
	}
}

// A checksummed file round-trips, and every single-bit flip in its body or
// trailer is caught with a typed error — no silent wrong result.
func TestChecksumCatchesBitFlips(t *testing.T) {
	in := []Ref{
		{Addr: 0x1000, Kind: IFetch, Domain: User},
		{Addr: 0x1004, Kind: IFetch, Domain: User},
		{Addr: 0x80001000, Kind: DWrite, Domain: Kernel},
		{Addr: 0x1008, Kind: IFetch, Domain: User},
		{Addr: 0x30000f00, Kind: DRead, Domain: BSDServer},
	}
	data := encodeChecksummed(t, in)
	out, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("intact checksummed file failed: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d, want %d", len(out), len(in))
	}
	for off := headerSize; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			got, err := Decode(bytes.NewReader(mut))
			if err == nil {
				// The decoder may only succeed if the result is right.
				if len(got) != len(in) {
					t.Fatalf("flip at %d.%d: silent wrong count", off, bit)
				}
				for i := range in {
					if got[i] != in[i] {
						t.Fatalf("flip at %d.%d: silent wrong result", off, bit)
					}
				}
				continue
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("flip at %d.%d: untyped error %v", off, bit, err)
			}
		}
	}
}

// Truncation of a checksummed file salvages exactly the valid prefix.
func TestDecodeSalvageTruncation(t *testing.T) {
	in := seqRefs(1000)
	data := encodeChecksummed(t, in)
	for _, cut := range []int{headerSize, headerSize + 7, len(data) / 2, len(data) - 6, len(data) - 2} {
		got, complete, err := DecodeSalvage(bytes.NewReader(data[:cut]))
		if complete {
			t.Fatalf("cut at %d reported complete", cut)
		}
		if err == nil {
			t.Fatalf("cut at %d salvaged without error", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: untyped error %v", cut, err)
		}
		if len(got) > len(in) {
			t.Fatalf("cut at %d salvaged %d refs from a %d-ref trace", cut, len(got), len(in))
		}
		for i := range got {
			if got[i] != in[i] {
				t.Fatalf("cut at %d: salvaged ref %d wrong", cut, i)
			}
		}
	}
	// The intact file salvages completely.
	got, complete, err := DecodeSalvage(bytes.NewReader(data))
	if !complete || err != nil || len(got) != len(in) {
		t.Fatalf("intact salvage: complete=%v err=%v n=%d", complete, err, len(got))
	}
}

// An absurd declared count must not translate into a huge allocation.
func TestDecodeAbsurdCountBoundedAllocation(t *testing.T) {
	var hdr [headerSize]byte
	copy(hdr[:8], Magic)
	hdr[8] = byte(Version)
	for i := 12; i < 20; i++ {
		hdr[i] = 0xff // count ~ 2^64
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	refs, err := Decode(bytes.NewReader(hdr[:]))
	runtime.ReadMemStats(&after)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(refs) != 0 {
		t.Fatalf("decoded %d refs from an empty body", len(refs))
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Fatalf("absurd count allocated %d bytes", grew)
	}
}

// Short reads (flaky transport) must not change decode results.
func TestDecodeUnderShortReads(t *testing.T) {
	in := seqRefs(5000)
	data := encodeChecksummed(t, in)
	r := fault.NewReader(bytes.NewReader(data), fault.Plan{ShortIO: true, Seed: 1234})
	got, err := Decode(r)
	if err != nil {
		t.Fatalf("short-read decode failed: %v", err)
	}
	if len(got) != len(in) {
		t.Fatalf("decoded %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("ref %d differs under short reads", i)
		}
	}
}

// An injected mid-stream I/O error surfaces (extractable with errors.Is),
// never a panic, never success.
func TestDecodeInjectedIOError(t *testing.T) {
	in := seqRefs(5000)
	data := encodeChecksummed(t, in)
	boom := errors.New("chaos: disk error")
	for _, at := range []int64{3, int64(headerSize), int64(headerSize) + 11, int64(len(data)) / 2} {
		r := fault.NewReader(bytes.NewReader(data), fault.Plan{Err: boom, ErrAfter: at})
		_, err := Decode(r)
		if err == nil {
			t.Fatalf("ErrAfter=%d: decode succeeded across an I/O fault", at)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("ErrAfter=%d: injected error lost: %v", at, err)
		}
	}
}

// A truncated counted stream cut exactly between records is classified
// ErrTruncated; cut mid-record in an uncounted stream, ErrCorrupt.
func TestTruncationClassification(t *testing.T) {
	// Small addresses: every record is exactly 2 bytes (tag + 1-byte delta).
	in := []Ref{{Addr: 4, Kind: IFetch}, {Addr: 8, Kind: IFetch}, {Addr: 12, Kind: IFetch}, {Addr: 16, Kind: IFetch}}
	data := encodeChecksummed(t, in)
	cut := headerSize + 2*2
	_, err := Decode(bytes.NewReader(data[:cut]))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("record-boundary cut: %v, want ErrTruncated", err)
	}

	var buf bytes.Buffer
	if _, err := Encode(&buf, NewSliceSource(in)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-1] // uncounted, cut mid-record
	_, err = Decode(bytes.NewReader(b))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("uncounted mid-record cut: %v, want ErrCorrupt", err)
	}
}

// Unknown header flags are rejected, not misinterpreted.
func TestUnknownFlagsRejected(t *testing.T) {
	data := encodeChecksummed(t, seqRefs(4))
	mut := append([]byte(nil), data...)
	mut[11] = 0x80 // set an undefined flag bit
	_, err := NewReader(bytes.NewReader(mut))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("unknown flags: %v, want ErrBadVersion", err)
	}
}

// The streaming (uncounted, no-trailer) format still round-trips through
// io.Reader pipelines.
func TestStreamingFormatUnchanged(t *testing.T) {
	in := seqRefs(100)
	var buf bytes.Buffer
	n, err := Encode(&buf, NewSliceSource(in))
	if err != nil || n != 100 {
		t.Fatalf("Encode: n=%d err=%v", n, err)
	}
	got, err := Decode(io.MultiReader(&buf))
	if err != nil || len(got) != 100 {
		t.Fatalf("Decode: n=%d err=%v", len(got), err)
	}
}
