package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The columnar trace format (IBSTRACE/v3).
//
// The record-by-record codec (version 1) decodes a trace through one varint
// cursor; run-length compaction (FlagRuns) shrank the stream but consumers
// still pay a sequential decode of the whole file before simulating. The
// columnar format restructures a run-compacted trace for the opposite access
// pattern: fixed-size blocks (~1 MB) of column segments that engines iterate
// zero-copy via mmap — or through plain sequential reads — with O(1) memory,
// so a trace ten or a thousand times the RAM budget replays at disk
// bandwidth. It is the on-disk shape of the same observation the paper makes
// about instruction fetch itself: make the hot stream dense and sequential.
//
//	file:    header | block* | index | trailer
//	header:  magic "IBSTRACE" | version u16 = 3 | flags u16 = FlagColumnar |
//	         blockBytes u32 | reserved u64          (24 bytes)
//	block:   payloadLen u32 | crc32 u32 | payload   (frame = 8 bytes + payload)
//	payload: runCount u32 | addrBytes u32 | lenBytes u32 |
//	         addr column | len column | domain column
//	index:   48-byte entry per block (see BlockMeta)
//	trailer: indexOffset u64 | totalRefs u64 | blockCount u32 |
//	         crc32(index) u32 | tail magic "IBSCIDX3"  (32 bytes)
//
// Everything is little-endian. The address column is one zigzag varint per
// run: the delta of the run's word address (Start/4) against the previous
// run's end word address — the branch displacement, effectively — with the
// block's first run encoded against zero, so every block decodes
// independently of its neighbors. The length column is one uvarint per run;
// the domain column packs 2 bits per run. CRC-32 (IEEE) covers each block's
// payload (stored both in the frame and the index entry) and the index bytes
// (stored in the trailer); the header and trailer are validated structurally.
//
// The error contract matches the v1 codec: damage yields ErrBadMagic,
// ErrBadVersion, ErrCorrupt, or ErrTruncated — never a panic, never a
// silently wrong result. Because blocks are self-contained and individually
// checksummed, salvage (SalvageColumnar) drops exactly the CRC-failed blocks
// when the index survives, and keeps the CRC-clean prefix when it does not.

// ColumnarVersion is the trace format version of columnar files.
const ColumnarVersion uint16 = 3

// FlagColumnar marks a columnar (version 3) trace file. It lives in the same
// header flags field as FlagChecksum/FlagRuns but only ever appears with
// version 3, so version-1 readers reject columnar files by version before
// they would reject the flag.
const FlagColumnar uint16 = 1 << 2

// DefaultBlockBytes is the target block payload size: large enough that
// per-block overheads (frame, index entry, decode setup) vanish, small
// enough that one decoded block's runs stay cache- and budget-friendly.
const DefaultBlockBytes = 1 << 20

// minBlockBytes keeps configurable block sizes sane; tests use small blocks
// to exercise multi-block paths cheaply.
const minBlockBytes = 64

const (
	colHeaderSize     = 24
	colFrameSize      = 8
	colPayloadMin     = 15 // 12-byte column header + 1-byte addr + 1-byte len + 1-byte domain
	colIndexEntrySize = 48
	colTrailerSize    = 32
)

// colTailMagic ends every columnar file; OpenColumnar finds the trailer by
// seeking to EOF-32, so the tail magic is the first integrity check.
const colTailMagic = "IBSCIDX3"

// BlockMeta is one footer-index entry: where a block lives, what it holds,
// and its payload checksum. First/LastAddr are the byte addresses of the
// block's first and last instruction — enough to route address-ranged
// consumers (set-sampled sweeps, victim analysis) past blocks they cannot
// touch; Refs gives sampled time-windows an O(log blocks) seek to any
// absolute instruction position.
type BlockMeta struct {
	// Offset is the file offset of the block's 8-byte frame.
	Offset int64
	// PayloadLen is the block payload size in bytes (frame excluded).
	PayloadLen uint32
	// CRC is the CRC-32 (IEEE) of the payload bytes.
	CRC uint32
	// Refs is the number of instructions the block's runs expand to.
	Refs int64
	// Runs is the number of run records in the block.
	Runs int
	// FirstAddr and LastAddr are the byte addresses of the block's first
	// and last instruction.
	FirstAddr uint64
	LastAddr  uint64
}

// BlockSource is a run-compacted trace exposed as independently decodable
// blocks — the unit the block-granular sweep and replay loops consume, and
// the natural parallel unit for fan-out. ColumnarFile implements it over a
// file; RunsBlocks adapts an in-memory []Run for differential testing.
//
// BlockRuns decodes block i into dst[:0] and returns the extended slice, so
// a caller looping over blocks with one reused buffer allocates nothing
// after the first block. Implementations must allow concurrent BlockRuns
// calls with distinct dst buffers.
type BlockSource interface {
	// NumBlocks returns the number of blocks.
	NumBlocks() int
	// BlockMeta returns block i's index entry.
	BlockMeta(i int) BlockMeta
	// BlockRuns appends block i's runs to dst[:0] and returns the result.
	BlockRuns(i int, dst []Run) ([]Run, error)
}

// ColumnarWriter encodes a run-compacted trace to the columnar format. Runs
// stream in through PutRun, blocks flush as they fill, and Close writes the
// footer index and trailer — append-only, no seeking, so it writes equally
// well to a file, a pipe, or a hash. Error handling is sticky and Close is
// idempotent, matching Writer.
type ColumnarWriter struct {
	w          io.Writer
	blockBytes int

	addrBuf []byte
	lenBuf  []byte
	domBuf  []byte
	scratch []byte

	rc       int
	prevEnd  uint64 // previous run's end word address within the open block
	blkRefs  int64
	blkFirst uint64
	blkLast  uint64

	off   int64
	metas []BlockMeta
	refs  int64
	runs  int64

	varbuf [binary.MaxVarintLen64]byte
	err    error
	closed bool
}

// NewColumnarWriter writes the columnar header to w and returns a writer
// with the default block size.
func NewColumnarWriter(w io.Writer) (*ColumnarWriter, error) {
	return NewColumnarWriterSize(w, DefaultBlockBytes)
}

// NewColumnarWriterSize is NewColumnarWriter with an explicit target block
// payload size (>= 64 bytes; tests use small blocks to exercise multi-block
// paths cheaply).
func NewColumnarWriterSize(w io.Writer, blockBytes int) (*ColumnarWriter, error) {
	if blockBytes < minBlockBytes {
		return nil, fmt.Errorf("trace: columnar block size %d below minimum %d", blockBytes, minBlockBytes)
	}
	var hdr [colHeaderSize]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint16(hdr[8:10], ColumnarVersion)
	binary.LittleEndian.PutUint16(hdr[10:12], FlagColumnar)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(blockBytes))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing columnar header: %w", err)
	}
	return &ColumnarWriter{w: w, blockBytes: blockBytes, off: colHeaderSize}, nil
}

// PutRun appends one run. Runs must be instruction-aligned (Start a multiple
// of InstrBytes — the address column stores word addresses), non-empty, and
// non-wrapping, mirroring Writer.PutRun's validation.
func (cw *ColumnarWriter) PutRun(r Run) error {
	if cw.err != nil {
		return cw.err
	}
	if cw.closed {
		return ErrWriterClosed
	}
	if r.Domain >= NumDomains {
		cw.err = fmt.Errorf("trace: invalid domain %d", r.Domain)
		return cw.err
	}
	if r.Len <= 0 || r.Len > maxRunLen {
		cw.err = fmt.Errorf("trace: invalid run length %d", r.Len)
		return cw.err
	}
	if r.Start%InstrBytes != 0 {
		cw.err = fmt.Errorf("trace: run start %#x not %d-byte aligned", r.Start, InstrBytes)
		return cw.err
	}
	if r.End() <= r.Start && r.End() != 0 { // End()==0: run ends exactly at the top
		cw.err = fmt.Errorf("trace: run at %#x wraps the address space", r.Start)
		return cw.err
	}

	word := r.Start / InstrBytes
	delta := int64(word - cw.prevEnd) // two's-complement difference: exact for any pair of word addresses
	cw.addrBuf = appendZigzag(cw.addrBuf, delta)
	n := binary.PutUvarint(cw.varbuf[:], uint64(r.Len))
	cw.lenBuf = append(cw.lenBuf, cw.varbuf[:n]...)
	if cw.rc%4 == 0 {
		cw.domBuf = append(cw.domBuf, 0)
	}
	cw.domBuf[len(cw.domBuf)-1] |= byte(r.Domain) << ((cw.rc % 4) * 2)

	if cw.rc == 0 {
		cw.blkFirst = r.Start
	}
	cw.blkLast = r.Start + uint64(r.Len-1)*InstrBytes
	cw.prevEnd = r.End() / InstrBytes
	cw.rc++
	cw.blkRefs += r.Len
	cw.refs += r.Len
	cw.runs++

	if 12+len(cw.addrBuf)+len(cw.lenBuf)+len(cw.domBuf) >= cw.blockBytes {
		cw.err = cw.flushBlock()
	}
	return cw.err
}

// Refs and Runs return the instruction and run counts written so far.
func (cw *ColumnarWriter) Refs() int64 { return cw.refs }
func (cw *ColumnarWriter) Runs() int64 { return cw.runs }

// flushBlock frames and writes the open block and records its index entry.
func (cw *ColumnarWriter) flushBlock() error {
	if cw.rc == 0 {
		return nil
	}
	payloadLen := 12 + len(cw.addrBuf) + len(cw.lenBuf) + len(cw.domBuf)
	total := colFrameSize + payloadLen
	if cap(cw.scratch) < total {
		cw.scratch = make([]byte, 0, total+total/4)
	}
	b := cw.scratch[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(payloadLen))
	b = append(b, 0, 0, 0, 0) // CRC placeholder
	b = binary.LittleEndian.AppendUint32(b, uint32(cw.rc))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cw.addrBuf)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cw.lenBuf)))
	b = append(b, cw.addrBuf...)
	b = append(b, cw.lenBuf...)
	b = append(b, cw.domBuf...)
	sum := crc32.ChecksumIEEE(b[colFrameSize:])
	binary.LittleEndian.PutUint32(b[4:8], sum)
	if _, err := cw.w.Write(b); err != nil {
		return err
	}
	cw.metas = append(cw.metas, BlockMeta{
		Offset:     cw.off,
		PayloadLen: uint32(payloadLen),
		CRC:        sum,
		Refs:       cw.blkRefs,
		Runs:       cw.rc,
		FirstAddr:  cw.blkFirst,
		LastAddr:   cw.blkLast,
	})
	cw.off += int64(total)
	cw.addrBuf = cw.addrBuf[:0]
	cw.lenBuf = cw.lenBuf[:0]
	cw.domBuf = cw.domBuf[:0]
	cw.rc = 0
	cw.prevEnd = 0
	cw.blkRefs = 0
	return nil
}

// Close flushes the partial block and writes the footer index and trailer.
// It does not close the underlying writer. Idempotent and sticky.
func (cw *ColumnarWriter) Close() error {
	if cw.closed {
		return cw.err
	}
	cw.closed = true
	if cw.err != nil {
		return cw.err
	}
	if cw.err = cw.flushBlock(); cw.err != nil {
		return cw.err
	}
	index := make([]byte, 0, len(cw.metas)*colIndexEntrySize)
	for _, m := range cw.metas {
		index = binary.LittleEndian.AppendUint64(index, uint64(m.Offset))
		index = binary.LittleEndian.AppendUint32(index, m.PayloadLen)
		index = binary.LittleEndian.AppendUint32(index, m.CRC)
		index = binary.LittleEndian.AppendUint64(index, uint64(m.Refs))
		index = binary.LittleEndian.AppendUint32(index, uint32(m.Runs))
		index = binary.LittleEndian.AppendUint32(index, 0)
		index = binary.LittleEndian.AppendUint64(index, m.FirstAddr)
		index = binary.LittleEndian.AppendUint64(index, m.LastAddr)
	}
	if _, err := cw.w.Write(index); err != nil {
		cw.err = err
		return cw.err
	}
	var trailer [colTrailerSize]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(cw.off))
	binary.LittleEndian.PutUint64(trailer[8:16], uint64(cw.refs))
	binary.LittleEndian.PutUint32(trailer[16:20], uint32(len(cw.metas)))
	binary.LittleEndian.PutUint32(trailer[20:24], crc32.ChecksumIEEE(index))
	copy(trailer[24:32], colTailMagic)
	if _, err := cw.w.Write(trailer[:]); err != nil {
		cw.err = err
	}
	return cw.err
}

// appendZigzag appends v in zigzag varint encoding (small magnitudes of
// either sign stay short — run-start deltas are branch displacements).
func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

// EncodeColumnar writes runs to w as a columnar trace with the default block
// size, returning the number of blocks written.
func EncodeColumnar(w io.Writer, runs []Run) (int, error) {
	return EncodeColumnarSize(w, runs, DefaultBlockBytes)
}

// EncodeColumnarSize is EncodeColumnar with an explicit block size.
func EncodeColumnarSize(w io.Writer, runs []Run, blockBytes int) (int, error) {
	cw, err := NewColumnarWriterSize(w, blockBytes)
	if err != nil {
		return 0, err
	}
	for _, r := range runs {
		if err := cw.PutRun(r); err != nil {
			return len(cw.metas), err
		}
	}
	if err := cw.Close(); err != nil {
		return len(cw.metas), err
	}
	return len(cw.metas), nil
}

// ColumnarFile is an open columnar trace. In mapped mode (the default when
// the platform allows) BlockRuns slices payloads straight out of the mapping
// — zero-copy, the page cache is the only buffer; otherwise it falls back to
// sequential ReadAt with one transient frame buffer per call. Both modes are
// safe for concurrent BlockRuns calls with distinct dst buffers.
type ColumnarFile struct {
	data    []byte // whole file when mapped or in-memory; nil in ReaderAt mode
	ra      io.ReaderAt
	closer  io.Closer
	unmap   func() error
	size    int64
	path    string // backing file, when opened from one
	metas   []BlockMeta
	cum     []int64 // cum[i] = instructions before block i; len = blocks+1
	refs    int64
	runs    int64
	blkSize int
}

// Path returns the backing file's path, or "" for in-memory / ReaderAt
// traces. The differential checks use it to compare files byte for byte.
func (f *ColumnarFile) Path() string { return f.path }

// OpenColumnar opens a columnar trace file, mmapping it read-only when the
// platform supports it and falling back to sequential reads otherwise. The
// header, trailer, and index (including the index CRC) are validated here;
// block payload CRCs are checked on every BlockRuns decode.
func OpenColumnar(path string) (*ColumnarFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if data, unmap, merr := mmapFile(f, st.Size()); merr == nil {
		cf, err := parseColumnar(data, nil, st.Size())
		if err != nil {
			unmap()
			f.Close()
			return nil, err
		}
		cf.unmap = unmap
		cf.closer = f
		cf.path = path
		return cf, nil
	}
	cf, err := parseColumnar(nil, f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	cf.closer = f
	cf.path = path
	return cf, nil
}

// SniffColumnar reports whether path's header declares the columnar
// (version 3) format. Only the 12-byte header prefix is read — the body is
// not validated — so tools can route a file to the right decoder before
// committing to a full open. A file too short to hold a header, or without
// the IBSTRACE magic, yields the typed error a full open would.
func SniffColumnar(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false, fmt.Errorf("%w: file shorter than a trace header", ErrTruncated)
	}
	if string(hdr[:8]) != Magic {
		return false, ErrBadMagic
	}
	return binary.LittleEndian.Uint16(hdr[8:10]) == ColumnarVersion, nil
}

// NewColumnarBytes opens a columnar trace held in memory (tests, fuzzing,
// network transports).
func NewColumnarBytes(data []byte) (*ColumnarFile, error) {
	return parseColumnar(data, nil, int64(len(data)))
}

// NewColumnarReaderAt opens a columnar trace through an io.ReaderAt of the
// given size — the explicit sequential-read mode, also used as the mmap
// fallback.
func NewColumnarReaderAt(ra io.ReaderAt, size int64) (*ColumnarFile, error) {
	return parseColumnar(nil, ra, size)
}

// Close releases the mapping and the underlying file, if any.
func (f *ColumnarFile) Close() error {
	var first error
	if f.unmap != nil {
		first = f.unmap()
		f.unmap = nil
	}
	f.data = nil
	if f.closer != nil {
		if err := f.closer.Close(); err != nil && first == nil {
			first = err
		}
		f.closer = nil
	}
	return first
}

// NumBlocks implements BlockSource.
func (f *ColumnarFile) NumBlocks() int { return len(f.metas) }

// BlockMeta implements BlockSource.
func (f *ColumnarFile) BlockMeta(i int) BlockMeta { return f.metas[i] }

// Refs returns the total instruction count; Runs the total run count.
func (f *ColumnarFile) Refs() int64 { return f.refs }
func (f *ColumnarFile) Runs() int64 { return f.runs }

// Size returns the file size in bytes — what the synth store charges its
// disk budget.
func (f *ColumnarFile) Size() int64 { return f.size }

// BlockBytes returns the file's target block payload size.
func (f *ColumnarFile) BlockBytes() int { return f.blkSize }

// Mapped reports whether the file is consumed through an mmap (zero-copy)
// rather than sequential reads.
func (f *ColumnarFile) Mapped() bool { return f.data != nil }

// SeekRef returns the block containing absolute instruction position pos
// (0-based) and the number of instructions before that block — the O(log
// blocks) entry point for sampled time-windows. ok is false past the end.
func (f *ColumnarFile) SeekRef(pos int64) (block int, before int64, ok bool) {
	return seekCum(f.cum, pos)
}

// seekCum binary-searches a cumulative-refs prefix array (len = blocks+1).
func seekCum(cum []int64, pos int64) (int, int64, bool) {
	n := len(cum) - 1
	if n < 0 || pos < 0 || pos >= cum[n] {
		return 0, 0, false
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid+1] <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, cum[lo], true
}

// bytes returns the n bytes at off: a zero-copy slice in mapped mode, a
// fresh ReadAt buffer otherwise.
func (f *ColumnarFile) bytes(off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+int64(n) > f.size {
		return nil, fmt.Errorf("%w: block bytes [%d,+%d) outside file of %d bytes", ErrCorrupt, off, n, f.size)
	}
	if f.data != nil {
		return f.data[off : off+int64(n)], nil
	}
	buf := make([]byte, n)
	if _, err := f.ra.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("%w: reading block at %d: %w", ErrTruncated, off, err)
	}
	return buf, nil
}

// BlockRuns implements BlockSource: it CRC-checks and decodes block i into
// dst[:0]. The decoded runs are cross-checked against the index entry (ref
// count, first/last address), so a block that passes its own CRC but
// disagrees with the index is still rejected as corrupt.
func (f *ColumnarFile) BlockRuns(i int, dst []Run) ([]Run, error) {
	if i < 0 || i >= len(f.metas) {
		return dst[:0], fmt.Errorf("trace: block %d out of range [0,%d)", i, len(f.metas))
	}
	m := f.metas[i]
	frame, err := f.bytes(m.Offset, colFrameSize+int(m.PayloadLen))
	if err != nil {
		return dst[:0], err
	}
	if got := binary.LittleEndian.Uint32(frame[0:4]); got != m.PayloadLen {
		return dst[:0], fmt.Errorf("%w: block %d frame length %d != index %d", ErrCorrupt, i, got, m.PayloadLen)
	}
	payload := frame[colFrameSize:]
	sum := crc32.ChecksumIEEE(payload)
	if got := binary.LittleEndian.Uint32(frame[4:8]); got != sum || sum != m.CRC {
		return dst[:0], fmt.Errorf("%w: block %d checksum mismatch (frame %08x, index %08x, computed %08x)", ErrCorrupt, i, binary.LittleEndian.Uint32(frame[4:8]), m.CRC, sum)
	}
	dst, err = decodeColumnarBlock(payload, dst)
	if err != nil {
		return dst[:0], fmt.Errorf("block %d: %w", i, err)
	}
	if err := checkBlockMeta(m, dst); err != nil {
		return dst[:0], fmt.Errorf("block %d: %w", i, err)
	}
	return dst, nil
}

// checkBlockMeta verifies that decoded runs agree with their index entry.
func checkBlockMeta(m BlockMeta, runs []Run) error {
	var refs int64
	for _, r := range runs {
		refs += r.Len
	}
	if len(runs) != m.Runs || refs != m.Refs {
		return fmt.Errorf("%w: decoded %d runs/%d refs, index says %d/%d", ErrCorrupt, len(runs), refs, m.Runs, m.Refs)
	}
	if len(runs) > 0 {
		last := runs[len(runs)-1]
		if runs[0].Start != m.FirstAddr || last.Start+uint64(last.Len-1)*InstrBytes != m.LastAddr {
			return fmt.Errorf("%w: decoded address range disagrees with index", ErrCorrupt)
		}
	}
	return nil
}

// decodeColumnarBlock decodes one block payload into dst[:0]. It enforces
// canonical encoding — column sizes must match the declared run count
// exactly, spare domain bits must be zero — so a structurally plausible but
// tampered block cannot decode to a different trace than was written.
func decodeColumnarBlock(payload []byte, dst []Run) ([]Run, error) {
	dst = dst[:0]
	if len(payload) < colPayloadMin {
		return dst, fmt.Errorf("%w: block payload %d bytes below minimum %d", ErrCorrupt, len(payload), colPayloadMin)
	}
	rc := int(binary.LittleEndian.Uint32(payload[0:4]))
	addrBytes := int(binary.LittleEndian.Uint32(payload[4:8]))
	lenBytes := int(binary.LittleEndian.Uint32(payload[8:12]))
	domBytes := (rc + 3) / 4
	if rc <= 0 || addrBytes < rc || lenBytes < rc ||
		12+addrBytes+lenBytes+domBytes != len(payload) {
		return dst, fmt.Errorf("%w: block geometry (%d runs, %d addr bytes, %d len bytes) inconsistent with %d-byte payload", ErrCorrupt, rc, addrBytes, lenBytes, len(payload))
	}
	addrCol := payload[12 : 12+addrBytes]
	lenCol := payload[12+addrBytes : 12+addrBytes+lenBytes]
	domCol := payload[12+addrBytes+lenBytes:]
	if rc%4 != 0 && domCol[domBytes-1]>>((rc%4)*2) != 0 {
		return dst, fmt.Errorf("%w: nonzero spare domain bits", ErrCorrupt)
	}

	if cap(dst) < rc && rc <= maxPrealloc {
		dst = make([]Run, 0, rc)
	}
	var prevEnd uint64
	ai, li := 0, 0
	for k := 0; k < rc; k++ {
		zz, n := binary.Uvarint(addrCol[ai:])
		if n <= 0 {
			return dst[:0], fmt.Errorf("%w: run %d address delta unreadable", ErrCorrupt, k)
		}
		ai += n
		delta := int64(zz>>1) ^ -int64(zz&1)
		word := prevEnd + uint64(delta)
		length, n := binary.Uvarint(lenCol[li:])
		if n <= 0 {
			return dst[:0], fmt.Errorf("%w: run %d length unreadable", ErrCorrupt, k)
		}
		li += n
		if length == 0 || length > maxRunLen {
			return dst[:0], fmt.Errorf("%w: invalid run length %d", ErrCorrupt, length)
		}
		r := Run{
			Start:  word * InstrBytes,
			Len:    int64(length),
			Domain: Domain(domCol[k>>2] >> ((k & 3) * 2) & 3),
		}
		if r.Start/InstrBytes != word {
			return dst[:0], fmt.Errorf("%w: run %d word address %#x overflows", ErrCorrupt, k, word)
		}
		if r.End() <= r.Start && r.End() != 0 { // End()==0: run ends exactly at the top
			return dst[:0], fmt.Errorf("%w: run at %#x wraps the address space", ErrCorrupt, r.Start)
		}
		prevEnd = r.End() / InstrBytes
		dst = append(dst, r)
	}
	if ai != addrBytes || li != lenBytes {
		return dst[:0], fmt.Errorf("%w: %d addr / %d len bytes unconsumed", ErrCorrupt, addrBytes-ai, lenBytes-li)
	}
	return dst, nil
}

// parseColumnar validates header, trailer, and index, building the file
// handle. Exactly one of data and ra is non-nil.
func parseColumnar(data []byte, ra io.ReaderAt, size int64) (*ColumnarFile, error) {
	f := &ColumnarFile{data: data, ra: ra, size: size}
	if size < colHeaderSize+colTrailerSize {
		return nil, fmt.Errorf("%w: %d bytes is too small for a columnar trace", ErrTruncated, size)
	}
	hdr, err := f.bytes(0, colHeaderSize)
	if err != nil {
		return nil, err
	}
	if string(hdr[:8]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != ColumnarVersion {
		return nil, fmt.Errorf("%w: %d (want columnar version %d)", ErrBadVersion, v, ColumnarVersion)
	}
	if flags := binary.LittleEndian.Uint16(hdr[10:12]); flags != FlagColumnar {
		return nil, fmt.Errorf("%w: unexpected columnar flags 0x%04x", ErrBadVersion, flags)
	}
	f.blkSize = int(binary.LittleEndian.Uint32(hdr[12:16]))

	trailer, err := f.bytes(size-colTrailerSize, colTrailerSize)
	if err != nil {
		return nil, err
	}
	if string(trailer[24:32]) != colTailMagic {
		return nil, fmt.Errorf("%w: columnar trailer magic missing", ErrTruncated)
	}
	indexOff := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	totalRefs := int64(binary.LittleEndian.Uint64(trailer[8:16]))
	blocks := int(binary.LittleEndian.Uint32(trailer[16:20]))
	indexCRC := binary.LittleEndian.Uint32(trailer[20:24])
	indexLen := int64(blocks) * colIndexEntrySize
	if blocks < 0 || indexOff < colHeaderSize || indexOff+indexLen != size-colTrailerSize || totalRefs < 0 {
		return nil, fmt.Errorf("%w: trailer geometry (index at %d, %d blocks) inconsistent with %d-byte file", ErrCorrupt, indexOff, blocks, size)
	}
	index, err := f.bytes(indexOff, int(indexLen))
	if err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(index); got != indexCRC {
		return nil, fmt.Errorf("%w: index checksum mismatch (trailer %08x, computed %08x)", ErrCorrupt, indexCRC, got)
	}
	metas, cum, refs, runs, err := parseColumnarIndex(index, blocks, indexOff)
	if err != nil {
		return nil, err
	}
	if refs != totalRefs {
		return nil, fmt.Errorf("%w: index refs %d != trailer refs %d", ErrCorrupt, refs, totalRefs)
	}
	f.metas, f.cum, f.refs, f.runs = metas, cum, refs, runs
	return f, nil
}

// parseColumnarIndex decodes and structurally validates the footer index:
// blocks must tile [header, indexOff) in order with no gaps or overlaps.
func parseColumnarIndex(index []byte, blocks int, indexOff int64) ([]BlockMeta, []int64, int64, int64, error) {
	metas := make([]BlockMeta, blocks)
	cum := make([]int64, blocks+1)
	var refs, runs int64
	next := int64(colHeaderSize)
	for i := range metas {
		e := index[i*colIndexEntrySize:]
		m := BlockMeta{
			Offset:     int64(binary.LittleEndian.Uint64(e[0:8])),
			PayloadLen: binary.LittleEndian.Uint32(e[8:12]),
			CRC:        binary.LittleEndian.Uint32(e[12:16]),
			Refs:       int64(binary.LittleEndian.Uint64(e[16:24])),
			Runs:       int(binary.LittleEndian.Uint32(e[24:28])),
			FirstAddr:  binary.LittleEndian.Uint64(e[32:40]),
			LastAddr:   binary.LittleEndian.Uint64(e[40:48]),
		}
		if m.Offset != next || m.PayloadLen < colPayloadMin ||
			m.Offset+colFrameSize+int64(m.PayloadLen) > indexOff ||
			m.Refs <= 0 || m.Runs <= 0 || int64(m.Runs) > m.Refs {
			return nil, nil, 0, 0, fmt.Errorf("%w: index entry %d invalid (offset %d, payload %d, %d runs, %d refs)", ErrCorrupt, i, m.Offset, m.PayloadLen, m.Runs, m.Refs)
		}
		next = m.Offset + colFrameSize + int64(m.PayloadLen)
		metas[i] = m
		cum[i] = refs
		refs += m.Refs
		runs += int64(m.Runs)
	}
	if next != indexOff {
		return nil, nil, 0, 0, fmt.Errorf("%w: %d bytes between last block and index", ErrCorrupt, indexOff-next)
	}
	cum[blocks] = refs
	return metas, cum, refs, runs, nil
}
