//go:build unix

package trace

import (
	"errors"
	"os"
	"syscall"
)

// mmapFile maps f read-only. The returned release function unmaps; the
// caller keeps ownership of f itself. Zero-length files cannot be mapped
// (mmap(2) rejects length 0), and a parse needs the header and trailer
// anyway, so tiny files fall back to reads like any mapping failure.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, errNoMmap
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

var errNoMmap = errors.New("trace: mmap unavailable")
