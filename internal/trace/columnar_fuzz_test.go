package trace

import (
	"bytes"
	"errors"
	"testing"
)

// corpusColRuns is the reference trace the columnar corpus mutates: small
// enough to encode fast, shaped to cover forward/backward deltas, multiple
// domains, and a multi-instruction head block.
var corpusColRuns = []Run{
	{Start: 0x400000, Len: 12, Domain: User},
	{Start: 0x80001000, Len: 3, Domain: Kernel},
	{Start: 0x400040, Len: 200, Domain: User},
	{Start: 0x30000f00, Len: 1, Domain: BSDServer},
	{Start: 0x400360, Len: 40, Domain: User},
}

// encodeValidColumnar returns the columnar encoding of runs at the given
// block size.
func encodeValidColumnar(t testing.TB, runs []Run, blockBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := EncodeColumnarSize(&buf, runs, blockBytes); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzColumnarRoundTrip checks that any encodable run sequence survives the
// columnar encode → open → BlockRuns round trip bit-exactly, across block
// sizes small enough to force multi-block files, and that salvage over the
// intact image reports zero damage.
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add(uint64(0x400000), int64(12), uint8(0), uint64(0x80001000), int64(3), uint8(2), uint64(0x400040), int64(200), uint8(0), 64)
	f.Add(uint64(0), int64(1), uint8(0), ^uint64(0)-4096, int64(3), uint8(1), uint64(1<<40), int64(1<<20), uint8(3), 128)
	f.Add(uint64(0x1000), int64(1), uint8(1), uint64(0x1000), int64(1), uint8(1), uint64(0x1000), int64(1), uint8(1), 1<<20)

	f.Fuzz(func(t *testing.T, s1 uint64, l1 int64, d1 uint8,
		s2 uint64, l2 int64, d2 uint8,
		s3 uint64, l3 int64, d3 uint8, blockBytes int) {
		mk := func(s uint64, l int64, d uint8) Run {
			s &^= InstrBytes - 1 // the columnar format stores word addresses
			if l < 1 {
				l = 1
			}
			if l > maxRunLen {
				l = maxRunLen
			}
			// Pull wrapping runs back from the top of the address space.
			if end := s + uint64(l)*InstrBytes; end <= s && end != 0 {
				s = ^uint64(0) - uint64(l)*InstrBytes + 1
				s &^= InstrBytes - 1
			}
			return Run{Start: s, Len: l, Domain: Domain(d % uint8(NumDomains))}
		}
		in := []Run{mk(s1, l1, d1), mk(s2, l2, d2), mk(s3, l3, d3)}
		if blockBytes < minBlockBytes {
			blockBytes = minBlockBytes
		}
		if blockBytes > 1<<22 {
			blockBytes = 1 << 22
		}

		var buf bytes.Buffer
		if _, err := EncodeColumnarSize(&buf, in, blockBytes); err != nil {
			t.Fatalf("encode rejected valid runs %+v: %v", in, err)
		}
		cf, err := NewColumnarBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("open rejected freshly written file: %v", err)
		}
		var out, blk []Run
		for i := 0; i < cf.NumBlocks(); i++ {
			if blk, err = cf.BlockRuns(i, blk); err != nil {
				t.Fatalf("BlockRuns(%d): %v", i, err)
			}
			out = append(out, blk...)
		}
		if len(out) != len(in) {
			t.Fatalf("round trip yielded %d runs, want %d", len(out), len(in))
		}
		for i := range out {
			if out[i] != in[i] {
				t.Fatalf("run %d = %+v, want %+v", i, out[i], in[i])
			}
		}

		sf, dmg, err := SalvageColumnarBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("salvage rejected intact file: %v", err)
		}
		if dmg.Damaged() {
			t.Fatalf("salvage reported damage on intact file: %+v", dmg)
		}
		if sf.Refs() != cf.Refs() || sf.NumBlocks() != cf.NumBlocks() {
			t.Fatal("salvage of intact file lost data")
		}
	})
}

// FuzzColumnarSalvage feeds arbitrary bytes to the columnar open and salvage
// paths and asserts the error contract: no panics; open failures are typed
// (ErrBadMagic / ErrBadVersion / ErrCorrupt / ErrTruncated); whatever
// salvage keeps decodes cleanly — every surviving block passes its CRC and
// yields structurally valid runs — and a damaged file carries a typed
// damage classification.
func FuzzColumnarSalvage(f *testing.F) {
	valid := encodeValidColumnar(f, corpusColRuns, minBlockBytes)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // trailer cut
	f.Add(valid[:colHeaderSize+3])
	corrupt := append([]byte(nil), valid...)
	corrupt[colHeaderSize+10] ^= 0x40 // damage inside the first block
	f.Add(corrupt)
	f.Add([]byte(Magic))
	f.Add([]byte{})

	typed := func(err error) bool {
		return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion) ||
			errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTruncated)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if cf, err := NewColumnarBytes(data); err != nil {
			if !typed(err) {
				t.Fatalf("open error is not typed: %v", err)
			}
		} else {
			// An accepted file's blocks either decode or fail typed.
			var blk []Run
			for i := 0; i < cf.NumBlocks(); i++ {
				if blk, err = cf.BlockRuns(i, blk); err != nil && !typed(err) {
					t.Fatalf("block %d decode error is not typed: %v", i, err)
				}
			}
		}

		sf, dmg, err := SalvageColumnarBytes(data)
		if err != nil {
			if !typed(err) {
				t.Fatalf("salvage error is not typed: %v", err)
			}
			return
		}
		if dmg.Damaged() && dmg.Err == nil && dmg.DroppedBlocks == 0 {
			// IndexRebuilt alone must still carry the classification.
			t.Fatalf("damage %+v lacks a typed classification", dmg)
		}
		if dmg.Err != nil && !typed(dmg.Err) {
			t.Fatalf("damage classification is not typed: %v", dmg.Err)
		}
		var blk []Run
		var refs, runs int64
		for i := 0; i < sf.NumBlocks(); i++ {
			if blk, err = sf.BlockRuns(i, blk); err != nil {
				t.Fatalf("salvage kept undecodable block %d: %v", i, err)
			}
			for _, r := range blk {
				if r.Len <= 0 || r.Domain >= NumDomains || r.Start%InstrBytes != 0 {
					t.Fatalf("salvaged block %d holds invalid run %+v", i, r)
				}
				refs += r.Len
			}
			runs += int64(len(blk))
		}
		if refs != sf.Refs() || runs != sf.Runs() {
			t.Fatalf("salvaged totals %d refs/%d runs disagree with file %d/%d", refs, runs, sf.Refs(), sf.Runs())
		}
		// The header is only 24 bytes; everything salvage keeps had to fit
		// inside the input.
		if sf.NumBlocks() > 0 && len(data) < colHeaderSize+colFrameSize+colPayloadMin {
			t.Fatal("salvage conjured blocks from a headerless input")
		}
	})
}
