package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"ibsim/internal/xrand"
)

func roundTrip(t *testing.T, in []Ref) []Ref {
	t.Helper()
	var buf bytes.Buffer
	n, err := Encode(&buf, NewSliceSource(in))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if n != uint64(len(in)) {
		t.Fatalf("Encode wrote %d, want %d", n, len(in))
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return out
}

func TestCodecRoundTripBasic(t *testing.T) {
	in := []Ref{
		{Addr: 0x1000, Kind: IFetch, Domain: User},
		{Addr: 0x1004, Kind: IFetch, Domain: User},
		{Addr: 0x80001000, Kind: IFetch, Domain: Kernel},
		{Addr: 0x2000, Kind: DRead, Domain: User},
		{Addr: 0x1008, Kind: IFetch, Domain: User},
		{Addr: 0x1f00, Kind: DWrite, Domain: XServer},
		{Addr: 0x0, Kind: IFetch, Domain: User}, // backward jump to 0
	}
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("got %d refs, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("ref %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestCodecEmpty(t *testing.T) {
	out := roundTrip(t, nil)
	if len(out) != 0 {
		t.Fatalf("empty trace decoded to %d refs", len(out))
	}
}

func TestCodecRandomRoundTrip(t *testing.T) {
	rng := xrand.New(123)
	in := make([]Ref, 10000)
	for i := range in {
		in[i] = Ref{
			Addr:   rng.Uint64() >> rng.Intn(40),
			Kind:   Kind(rng.Intn(3)),
			Domain: Domain(rng.Intn(int(NumDomains))),
		}
	}
	out := roundTrip(t, in)
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("ref %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

// Property: arbitrary (bounded) streams round-trip exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, kinds []uint8) bool {
		n := len(addrs)
		if len(kinds) < n {
			n = len(kinds)
		}
		in := make([]Ref, n)
		for i := 0; i < n; i++ {
			in[i] = Ref{
				Addr:   uint64(addrs[i]),
				Kind:   Kind(kinds[i] % 3),
				Domain: Domain(kinds[i] / 3 % uint8(NumDomains)),
			}
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, NewSliceSource(in)); err != nil {
			return false
		}
		out, err := Decode(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecCompression(t *testing.T) {
	// A sequential instruction stream should compress far below 8 bytes/ref.
	in := make([]Ref, 100000)
	for i := range in {
		in[i] = Ref{Addr: 0x400000 + uint64(i)*4, Kind: IFetch, Domain: User}
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, NewSliceSource(in)); err != nil {
		t.Fatal(err)
	}
	perRef := float64(buf.Len()) / float64(len(in))
	if perRef > 2.5 {
		t.Errorf("sequential stream encodes at %.2f bytes/ref, want ≤ 2.5", perRef)
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOTATRACEFILE_______")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("IBS")))
	if err == nil {
		t.Fatal("short header accepted")
	}
}

func TestReaderBadVersion(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 0xFF // clobber version
	_, err = NewReader(bytes.NewReader(b))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestReaderCorruptTag(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, NewSliceSource(refs(0, 4))); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[headerSizeForTest()] = 0xFF // first record tag: invalid kind bits
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("corrupt tag yielded a ref")
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
}

func headerSizeForTest() int { return headerSize }

func TestReaderTruncatedBody(t *testing.T) {
	var src seekBuffer
	if _, err := EncodeSeeker(&src, NewSliceSource(refs(0, 4, 8, 4096, 8192))); err != nil {
		t.Fatal(err)
	}
	b := src.buf[:len(src.buf)-2] // drop tail bytes
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Fatal("truncated counted trace decoded without error")
	}
}

func TestWriterRejectsInvalidRef(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(Ref{Kind: Kind(7)}); err == nil {
		t.Fatal("invalid kind accepted")
	}
	// Writer is now poisoned.
	if err := w.Put(Ref{Kind: IFetch}); err == nil {
		t.Fatal("poisoned writer accepted a ref")
	}
	w2, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Put(Ref{Kind: IFetch, Domain: Domain(9)}); err == nil {
		t.Fatal("invalid domain accepted")
	}
}

// seekBuffer is a minimal in-memory io.WriteSeeker.
type seekBuffer struct {
	buf []byte
	pos int
}

func (s *seekBuffer) Write(p []byte) (int, error) {
	if need := s.pos + len(p); need > len(s.buf) {
		s.buf = append(s.buf, make([]byte, need-len(s.buf))...)
	}
	copy(s.buf[s.pos:], p)
	s.pos += len(p)
	return len(p), nil
}

func (s *seekBuffer) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		s.pos = int(offset)
	case io.SeekCurrent:
		s.pos += int(offset)
	case io.SeekEnd:
		s.pos = len(s.buf) + int(offset)
	}
	return int64(s.pos), nil
}

func TestEncodeSeekerSelfDescribing(t *testing.T) {
	in := refs(0, 4, 8, 12, 16)
	var sb seekBuffer
	n, err := EncodeSeeker(&sb, NewSliceSource(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("wrote %d", n)
	}
	r, err := NewReader(bytes.NewReader(sb.buf))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("decoded %d", len(out))
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	in := refs(0x1000, 0x1004, 0x1008, 0x2000, 0x1010)
	if _, err := EncodeSeeker(f, NewSliceSource(in)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	out, err := Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("ref %d mismatch", i)
		}
	}
}

// failWriter errors after n bytes, exercising the encode error paths.
type failWriter struct{ remain int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.remain <= 0 {
		return 0, errTest
	}
	n := len(p)
	if n > f.remain {
		n = f.remain
	}
	f.remain -= n
	if n < len(p) {
		return n, errTest
	}
	return n, nil
}

func TestEncodeWriteFailures(t *testing.T) {
	// Header write fails.
	if _, err := NewWriter(&failWriter{remain: 4}); err == nil {
		// Header is buffered; failure may surface at flush instead.
		w, _ := NewWriter(&failWriter{remain: 4})
		if w != nil {
			if err := w.Close(); err == nil {
				t.Fatal("header write failure never surfaced")
			}
		}
	}
	// Body write fails mid-stream: Encode must propagate the error.
	refs := make([]Ref, 100000)
	for i := range refs {
		refs[i] = Ref{Addr: uint64(i) * 4096, Kind: IFetch}
	}
	if _, err := Encode(&failWriter{remain: 64}, NewSliceSource(refs)); err == nil {
		t.Fatal("mid-stream write failure not propagated")
	}
}

type failSeeker struct{ seekBuffer }

func (f *failSeeker) Seek(int64, int) (int64, error) { return 0, errTest }

func TestEncodeSeekerSeekFailure(t *testing.T) {
	if _, err := EncodeSeeker(&failSeeker{}, NewSliceSource(refs(0, 4))); err == nil {
		t.Fatal("seek failure not propagated")
	}
}

func TestDecodeHeaderError(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short header accepted by Decode")
	}
}
