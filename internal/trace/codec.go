package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The binary trace format.
//
// The paper closes by making the IBS traces "available to the research
// community"; this codec is our equivalent artifact. The format favors
// compactness (instruction streams are strongly sequential, so delta
// encoding pays off) while staying trivially portable: everything after the
// fixed header is a stream of varint-encoded records.
//
//	header:  magic "IBSTRACE" | version u16 | flags u16 | count u64
//	record:  tag byte | uvarint delta
//	trailer: crc32 u32 (only when flags has FlagChecksum)
//
// The tag byte packs kind (2 bits), domain (2 bits), and the sign of the
// address delta (1 bit); the delta is relative to the previous reference of
// the *same kind and domain*, which keeps instruction-fetch deltas tiny even
// when data references interleave.
//
// Self-describing files (EncodeSeeker / ibsgen) additionally carry a CRC-32
// of the record bytes as a 4-byte little-endian trailer, announced by
// FlagChecksum. Truncation is caught by the declared count; the checksum
// catches the damage a count cannot — bit flips and mid-file corruption that
// leave the stream structurally decodable but semantically wrong. The error
// contract is: a damaged file yields ErrCorrupt or ErrTruncated (or
// ErrBadMagic/ErrBadVersion for header damage), never a panic and never a
// silently wrong result.

// Magic identifies ibsim trace files.
const Magic = "IBSTRACE"

// Version is the current trace format version.
const Version uint16 = 1

// FlagChecksum marks a file whose records are followed by a 4-byte CRC-32
// trailer. Only meaningful with a non-zero declared count (the count tells
// the reader where the records end).
const FlagChecksum uint16 = 1 << 0

// FlagRuns marks a run-length-compacted instruction trace: each record is a
// whole sequential Run (tag byte | uvarint start-delta | uvarint length)
// instead of a single reference, and the header count counts runs. The
// Reader expands run records transparently, so Decode/DecodeSalvage consume
// both formats identically; DecodeRuns reads the runs themselves.
const FlagRuns uint16 = 1 << 1

// maxRunLen bounds a single run record's declared length: far beyond any
// real trace, so a damaged or hostile length cannot force the expanding
// reader into an absurd amount of work.
const maxRunLen = 1 << 40

var (
	// ErrBadMagic reports a file that is not an ibsim trace.
	ErrBadMagic = errors.New("trace: bad magic (not an IBSTRACE file)")
	// ErrBadVersion reports an unsupported trace format version or flag.
	ErrBadVersion = errors.New("trace: unsupported format version")
	// ErrCorrupt reports a structurally or semantically invalid trace body.
	ErrCorrupt = errors.New("trace: corrupt record stream")
	// ErrTruncated reports a stream that ended before the declared count.
	ErrTruncated = errors.New("trace: truncated (fewer records than header count)")
	// ErrWriterClosed reports a Put on a successfully closed Writer.
	ErrWriterClosed = errors.New("trace: writer is closed")
)

const headerSize = 8 + 2 + 2 + 8

// maxPrealloc bounds the slice capacity Decode trusts a header's declared
// count for: an absurd count in a damaged or hostile file must not translate
// into a gigantic up-front allocation.
const maxPrealloc = 1 << 20

// Writer encodes references to an underlying io.Writer. Close must be called
// to flush buffered data; the header's record count is written up-front from
// the count passed to NewWriter when known, or patched by EncodeSeeker.
//
// The Writer's error handling is sticky: after any failure (an invalid
// reference, an underlying write error, a failed flush) every subsequent Put
// and Close returns that first error, so a caller's final Close verdict is
// trustworthy. Close is idempotent.
type Writer struct {
	w      *bufio.Writer
	last   [3][NumDomains]uint64 // previous address per (kind, domain)
	count  uint64
	sum    uint32 // CRC-32 (IEEE) of the record bytes written so far
	buf    [binary.MaxVarintLen64 + 1]byte
	runs   bool // run-length mode: PutRun records only (FlagRuns header)
	err    error
	closed bool
}

// NewWriter writes the trace header (with a zero record count — use
// EncodeSeeker for a self-describing file, or pair with a transport that
// delimits the stream) and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	return newWriterHeader(w, 0, 0)
}

// NewRunWriter writes a run-length trace header (FlagRuns) and returns a
// Writer accepting PutRun records only. Use EncodeRunsSeeker for a
// self-describing, checksummed file.
func NewRunWriter(w io.Writer) (*Writer, error) {
	tw, err := newWriterHeader(w, 0, FlagRuns)
	if err != nil {
		return nil, err
	}
	tw.runs = true
	return tw, nil
}

func newWriterHeader(w io.Writer, count uint64, flags uint16) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint16(hdr[8:10], Version)
	binary.LittleEndian.PutUint16(hdr[10:12], flags)
	binary.LittleEndian.PutUint64(hdr[12:20], count)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Put implements Sink.
func (w *Writer) Put(r Ref) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrWriterClosed
	}
	if w.runs {
		w.err = fmt.Errorf("trace: Put on a run-length writer (use PutRun)")
		return w.err
	}
	if r.Kind > DWrite {
		w.err = fmt.Errorf("trace: invalid kind %d", r.Kind)
		return w.err
	}
	if r.Domain >= NumDomains {
		w.err = fmt.Errorf("trace: invalid domain %d", r.Domain)
		return w.err
	}
	prev := w.last[r.Kind][r.Domain]
	w.last[r.Kind][r.Domain] = r.Addr

	var delta uint64
	tag := byte(r.Kind)<<3 | byte(r.Domain)<<1
	if r.Addr >= prev {
		delta = r.Addr - prev
	} else {
		delta = prev - r.Addr
		tag |= 1 // sign bit: delta is negative
	}
	w.buf[0] = tag
	n := binary.PutUvarint(w.buf[1:], delta)
	if _, err := w.w.Write(w.buf[:1+n]); err != nil {
		w.err = err
		return err
	}
	w.sum = crc32.Update(w.sum, crc32.IEEETable, w.buf[:1+n])
	w.count++
	return nil
}

// PutRun writes one run-length record (run-length writers only). The
// start-address delta is encoded against the previous run's start in the
// same domain, mirroring Put's per-(kind, domain) delta chain.
func (w *Writer) PutRun(r Run) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrWriterClosed
	}
	if !w.runs {
		w.err = fmt.Errorf("trace: PutRun on a per-reference writer (use NewRunWriter)")
		return w.err
	}
	if r.Domain >= NumDomains {
		w.err = fmt.Errorf("trace: invalid domain %d", r.Domain)
		return w.err
	}
	if r.Len <= 0 || r.Len > maxRunLen {
		w.err = fmt.Errorf("trace: invalid run length %d", r.Len)
		return w.err
	}
	if r.End() <= r.Start && r.End() != 0 { // End()==0: run ends exactly at the top
		w.err = fmt.Errorf("trace: run at %#x wraps the address space", r.Start)
		return w.err
	}
	prev := w.last[IFetch][r.Domain]
	w.last[IFetch][r.Domain] = r.Start

	var delta uint64
	tag := byte(IFetch)<<3 | byte(r.Domain)<<1
	if r.Start >= prev {
		delta = r.Start - prev
	} else {
		delta = prev - r.Start
		tag |= 1
	}
	w.buf[0] = tag
	n := 1 + binary.PutUvarint(w.buf[1:], delta)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = err
		return err
	}
	w.sum = crc32.Update(w.sum, crc32.IEEETable, w.buf[:n])
	n = binary.PutUvarint(w.buf[:], uint64(r.Len))
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = err
		return err
	}
	w.sum = crc32.Update(w.sum, crc32.IEEETable, w.buf[:n])
	w.count++
	return nil
}

// Count returns the number of references written so far.
func (w *Writer) Count() uint64 { return w.count }

// Sum32 returns the CRC-32 of the record bytes written so far.
func (w *Writer) Sum32() uint32 { return w.sum }

// Close flushes buffered data. It does not close the underlying writer.
// Close is idempotent and sticky: a repeated Close (and any Close after a
// failed write) returns the first error; a Put after a successful Close
// returns ErrWriterClosed without corrupting the stream.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err == nil {
		if err := w.w.Flush(); err != nil {
			w.err = err
		}
	}
	return w.err
}

// Reader decodes a trace stream written by Writer. It implements Source.
type Reader struct {
	r      *bufio.Reader
	last   [3][NumDomains]uint64
	remain uint64
	sum    uint32 // running CRC-32 of consumed record bytes
	buf    [binary.MaxVarintLen64 + 1]byte
	// counted reports whether the header declared a record count (> 0); if
	// so the reader enforces it.
	counted bool
	// checksum reports whether a CRC-32 trailer follows the records.
	checksum bool
	// verified reports that the trailer has been read and checked.
	verified bool
	// runs reports a run-length stream (FlagRuns); Next expands its run
	// records into per-instruction refs via the pend* cursor below.
	runs       bool
	pendAddr   uint64
	pendLen    int64
	pendDomain Domain
	err        error
}

// NewReader validates the header of r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	flags := binary.LittleEndian.Uint16(hdr[10:12])
	if flags&^(FlagChecksum|FlagRuns) != 0 {
		return nil, fmt.Errorf("%w: unknown flags 0x%04x", ErrBadVersion, flags)
	}
	count := binary.LittleEndian.Uint64(hdr[12:20])
	return &Reader{
		r:        br,
		remain:   count,
		counted:  count > 0,
		checksum: flags&FlagChecksum != 0 && count > 0,
		runs:     flags&FlagRuns != 0,
	}, nil
}

// Runs reports whether the stream is run-length-compacted (FlagRuns). Next
// works either way; NextRun only on a run-length stream.
func (r *Reader) Runs() bool { return r.runs }

// Next implements Source. On a run-length stream it expands each run record
// into its per-instruction references, so consumers see the identical stream
// either representation encodes.
func (r *Reader) Next() (Ref, bool) {
	if r.err != nil {
		return Ref{}, false
	}
	if r.runs {
		if r.pendLen == 0 {
			run, ok := r.readRun()
			if !ok {
				return Ref{}, false
			}
			r.pendAddr = run.Start
			r.pendLen = run.Len
			r.pendDomain = run.Domain
		}
		ref := Ref{Addr: r.pendAddr, Kind: IFetch, Domain: r.pendDomain}
		r.pendAddr += InstrBytes
		r.pendLen--
		return ref, true
	}
	if r.counted && r.remain == 0 {
		r.verify()
		return Ref{}, false
	}
	tag, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			if r.counted && r.remain > 0 {
				r.err = fmt.Errorf("%w: %d records missing", ErrTruncated, r.remain)
			}
		} else {
			r.err = err
		}
		return Ref{}, false
	}
	kind := Kind(tag >> 3)
	domain := Domain(tag >> 1 & 0x3)
	if kind > DWrite || tag&0x60 != 0 {
		r.err = fmt.Errorf("%w: invalid tag 0x%02x", ErrCorrupt, tag)
		return Ref{}, false
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// A record cut mid-delta: classify by whether the header promised
			// more (damage to a counted file) or the stream just stopped.
			if r.counted {
				r.err = fmt.Errorf("%w: record cut mid-delta, %d records missing", ErrTruncated, r.remain)
			} else {
				r.err = fmt.Errorf("%w: record cut mid-delta", ErrCorrupt)
			}
		} else {
			// Varint overflow or an underlying I/O failure; keep the cause
			// extractable (errors.Is/As) alongside the typed classification.
			r.err = fmt.Errorf("%w: reading delta: %w", ErrCorrupt, err)
		}
		return Ref{}, false
	}
	if r.checksum {
		r.buf[0] = tag
		n := binary.PutUvarint(r.buf[1:], delta)
		r.sum = crc32.Update(r.sum, crc32.IEEETable, r.buf[:1+n])
	}
	prev := r.last[kind][domain]
	var addr uint64
	if tag&1 == 0 {
		addr = prev + delta
	} else {
		addr = prev - delta
	}
	r.last[kind][domain] = addr
	if r.counted {
		r.remain--
	}
	return Ref{Addr: addr, Kind: kind, Domain: domain}, true
}

// NextRun reads the next run record from a run-length stream; it fails on a
// per-reference stream, and after a Next call left a run partially expanded
// (mixing the two views mid-run would silently drop instructions).
func (r *Reader) NextRun() (Run, bool) {
	if r.err != nil {
		return Run{}, false
	}
	if !r.runs {
		r.err = fmt.Errorf("trace: NextRun on a per-reference stream")
		return Run{}, false
	}
	if r.pendLen > 0 {
		r.err = fmt.Errorf("trace: NextRun mid-expansion (mixed with Next)")
		return Run{}, false
	}
	return r.readRun()
}

// readRun decodes one run record, applying the same truncation/corruption
// classification as the per-reference path.
func (r *Reader) readRun() (Run, bool) {
	if r.counted && r.remain == 0 {
		r.verify()
		return Run{}, false
	}
	tag, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			if r.counted && r.remain > 0 {
				r.err = fmt.Errorf("%w: %d runs missing", ErrTruncated, r.remain)
			}
		} else {
			r.err = err
		}
		return Run{}, false
	}
	if Kind(tag>>3) != IFetch || tag&0x60 != 0 {
		r.err = fmt.Errorf("%w: invalid run tag 0x%02x", ErrCorrupt, tag)
		return Run{}, false
	}
	domain := Domain(tag >> 1 & 0x3)
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.classifyVarintErr(err, "run cut mid-delta")
		return Run{}, false
	}
	length, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.classifyVarintErr(err, "run cut mid-length")
		return Run{}, false
	}
	if r.checksum {
		r.buf[0] = tag
		n := binary.PutUvarint(r.buf[1:], delta)
		r.sum = crc32.Update(r.sum, crc32.IEEETable, r.buf[:1+n])
		n = binary.PutUvarint(r.buf[:], length)
		r.sum = crc32.Update(r.sum, crc32.IEEETable, r.buf[:n])
	}
	if length == 0 || length > maxRunLen {
		r.err = fmt.Errorf("%w: invalid run length %d", ErrCorrupt, length)
		return Run{}, false
	}
	prev := r.last[IFetch][domain]
	var start uint64
	if tag&1 == 0 {
		start = prev + delta
	} else {
		start = prev - delta
	}
	r.last[IFetch][domain] = start
	run := Run{Start: start, Len: int64(length), Domain: domain}
	if run.End() <= run.Start && run.End() != 0 { // End()==0: run ends exactly at the top
		r.err = fmt.Errorf("%w: run at %#x wraps the address space", ErrCorrupt, start)
		return Run{}, false
	}
	if r.counted {
		r.remain--
	}
	return run, true
}

// classifyVarintErr records a failed varint read with the shared
// truncation/corruption classification.
func (r *Reader) classifyVarintErr(err error, what string) {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		if r.counted {
			r.err = fmt.Errorf("%w: %s, %d records missing", ErrTruncated, what, r.remain)
		} else {
			r.err = fmt.Errorf("%w: %s", ErrCorrupt, what)
		}
	} else {
		r.err = fmt.Errorf("%w: %s: %w", ErrCorrupt, what, err)
	}
}

// verify reads and checks the CRC-32 trailer once all declared records have
// been consumed. Note the re-encoded-varint subtlety: the reader hashes the
// canonical encoding of what it decoded, so a corrupted-but-decodable
// non-minimal varint also fails verification.
func (r *Reader) verify() {
	if !r.checksum || r.verified {
		return
	}
	r.verified = true
	var trailer [4]byte
	if _, err := io.ReadFull(r.r, trailer[:]); err != nil {
		r.err = fmt.Errorf("%w: checksum trailer missing: %w", ErrTruncated, err)
		return
	}
	if want := binary.LittleEndian.Uint32(trailer[:]); want != r.sum {
		r.err = fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorrupt, want, r.sum)
	}
}

// Err implements Source.
func (r *Reader) Err() error { return r.err }

// preallocHint returns a safe initial capacity for collecting the stream:
// the declared count, clamped so hostile headers cannot force huge
// allocations.
func (r *Reader) preallocHint() int {
	if !r.counted || r.remain > maxPrealloc {
		return 0
	}
	return int(r.remain)
}

// Encode writes every reference from src to w in trace format, returning the
// number written. The header count field is left zero (streaming mode, no
// checksum trailer); use EncodeSeeker when a self-describing, checksummed
// file is needed.
func Encode(w io.Writer, src Source) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	if _, err := Copy(tw, src); err != nil {
		return tw.Count(), err
	}
	return tw.Count(), tw.Close()
}

// EncodeSeeker writes src to ws, appends a CRC-32 trailer over the record
// bytes, and patches the header's record count and checksum flag, producing
// a fully self-describing, integrity-checked trace file.
func EncodeSeeker(ws io.WriteSeeker, src Source) (uint64, error) {
	tw, err := NewWriter(ws)
	if err != nil {
		return 0, err
	}
	if _, err := Copy(tw, src); err != nil {
		return tw.Count(), err
	}
	if err := tw.Close(); err != nil {
		return tw.Count(), err
	}
	return finishSeeker(ws, tw, FlagChecksum)
}

// finishSeeker appends the CRC-32 trailer and patches the header flags and
// record count, completing a self-describing file written through tw.
func finishSeeker(ws io.WriteSeeker, tw *Writer, flags uint16) (uint64, error) {
	n := tw.Count()
	if n == 0 {
		// An empty trace has no record region for a count to delimit, so a
		// trailer would be indistinguishable from records; leave the file in
		// streaming form.
		return 0, nil
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], tw.Sum32())
	if _, err := ws.Write(trailer[:]); err != nil {
		return n, fmt.Errorf("trace: writing checksum trailer: %w", err)
	}
	if _, err := ws.Seek(10, io.SeekStart); err != nil {
		return n, fmt.Errorf("trace: seeking to patch header: %w", err)
	}
	var patch [10]byte
	binary.LittleEndian.PutUint16(patch[0:2], flags)
	binary.LittleEndian.PutUint64(patch[2:10], n)
	if _, err := ws.Write(patch[:]); err != nil {
		return n, fmt.Errorf("trace: patching header: %w", err)
	}
	if _, err := ws.Seek(0, io.SeekEnd); err != nil {
		return n, err
	}
	return n, nil
}

// EncodeRuns writes a compacted trace to w in run-length format (streaming
// mode: zero header count, no checksum trailer), returning the number of run
// records written.
func EncodeRuns(w io.Writer, runs []Run) (uint64, error) {
	tw, err := NewRunWriter(w)
	if err != nil {
		return 0, err
	}
	for _, r := range runs {
		if err := tw.PutRun(r); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Close()
}

// EncodeRunsSeeker writes a compacted trace as a self-describing, checksummed
// run-length file: CRC-32 trailer plus a header carrying FlagRuns|FlagChecksum
// and the run count.
func EncodeRunsSeeker(ws io.WriteSeeker, runs []Run) (uint64, error) {
	tw, err := NewRunWriter(ws)
	if err != nil {
		return 0, err
	}
	for _, r := range runs {
		if err := tw.PutRun(r); err != nil {
			return tw.Count(), err
		}
	}
	if err := tw.Close(); err != nil {
		return tw.Count(), err
	}
	return finishSeeker(ws, tw, FlagRuns|FlagChecksum)
}

// Decode reads an entire trace stream into memory.
func Decode(r io.Reader) ([]Ref, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	out := make([]Ref, 0, tr.preallocHint())
	for {
		ref, ok := tr.Next()
		if !ok {
			return out, tr.Err()
		}
		out = append(out, ref)
	}
}

// DecodeSalvage reads as much of a possibly damaged trace as possible: every
// record decoded before the first error is returned, complete reports
// whether the stream was intact, and err carries the typed classification
// (ErrTruncated, ErrCorrupt, ...) when it was not.
//
// For a truncated file the salvaged prefix is exactly the valid records
// before the cut. For a checksummed file that fails verification the prefix
// is structurally valid but its contents are suspect — the checksum cannot
// localize the damage — so complete=false must gate any use of the data.
func DecodeSalvage(r io.Reader) (refs []Ref, complete bool, err error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, false, err
	}
	refs = make([]Ref, 0, tr.preallocHint())
	for {
		ref, ok := tr.Next()
		if !ok {
			break
		}
		refs = append(refs, ref)
	}
	if err := tr.Err(); err != nil {
		return refs, false, err
	}
	return refs, true, nil
}

// decodeRuns drains the reader as compacted runs. A run-length stream's
// records are returned directly; a per-reference stream is decoded and
// compacted, so callers get runs regardless of the on-disk representation.
func (r *Reader) decodeRuns() ([]Run, error) {
	if !r.runs {
		refs := make([]Ref, 0, r.preallocHint())
		for {
			ref, ok := r.Next()
			if !ok {
				break
			}
			refs = append(refs, ref)
		}
		return Compact(refs), r.Err()
	}
	out := make([]Run, 0, r.preallocHint())
	for {
		run, ok := r.NextRun()
		if !ok {
			return out, r.Err()
		}
		out = append(out, run)
	}
}

// DecodeRuns reads an entire trace stream into memory as compacted runs,
// whichever representation it was written in.
func DecodeRuns(r io.Reader) ([]Run, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return tr.decodeRuns()
}

// DecodeRunsSalvage is DecodeRuns with DecodeSalvage's contract: the runs
// decoded (or compacted from refs decoded) before the first error, a
// completeness flag, and the typed error classification when damaged.
func DecodeRunsSalvage(r io.Reader) (runs []Run, complete bool, err error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, false, err
	}
	runs, err = tr.decodeRuns()
	if err != nil {
		return runs, false, err
	}
	return runs, true, nil
}
