package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The binary trace format.
//
// The paper closes by making the IBS traces "available to the research
// community"; this codec is our equivalent artifact. The format favors
// compactness (instruction streams are strongly sequential, so delta
// encoding pays off) while staying trivially portable: everything after the
// fixed header is a stream of varint-encoded records.
//
//	header:  magic "IBSTRACE" | version u16 | flags u16 | count u64
//	record:  tag byte | uvarint delta
//
// The tag byte packs kind (2 bits), domain (2 bits), and the sign of the
// address delta (1 bit); the delta is relative to the previous reference of
// the *same kind and domain*, which keeps instruction-fetch deltas tiny even
// when data references interleave.

// Magic identifies ibsim trace files.
const Magic = "IBSTRACE"

// Version is the current trace format version.
const Version uint16 = 1

var (
	// ErrBadMagic reports a file that is not an ibsim trace.
	ErrBadMagic = errors.New("trace: bad magic (not an IBSTRACE file)")
	// ErrBadVersion reports an unsupported trace format version.
	ErrBadVersion = errors.New("trace: unsupported format version")
	// ErrCorrupt reports a structurally invalid trace body.
	ErrCorrupt = errors.New("trace: corrupt record stream")
	// ErrTruncated reports a stream that ended before the declared count.
	ErrTruncated = errors.New("trace: truncated (fewer records than header count)")
)

const headerSize = 8 + 2 + 2 + 8

// Writer encodes references to an underlying io.Writer. Close must be called
// to flush buffered data; the header's record count is written up-front from
// the count passed to NewWriter when known, or patched by WriteFile.
type Writer struct {
	w     *bufio.Writer
	last  [3][NumDomains]uint64 // previous address per (kind, domain)
	count uint64
	buf   [binary.MaxVarintLen64 + 1]byte
	err   error
}

// NewWriter writes the trace header (with a zero record count — use
// WriteFile for a self-describing file, or pair with a transport that
// delimits the stream) and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	return newWriterCount(w, 0)
}

func newWriterCount(w io.Writer, count uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint16(hdr[8:10], Version)
	binary.LittleEndian.PutUint16(hdr[10:12], 0)
	binary.LittleEndian.PutUint64(hdr[12:20], count)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Put implements Sink.
func (w *Writer) Put(r Ref) error {
	if w.err != nil {
		return w.err
	}
	if r.Kind > DWrite {
		w.err = fmt.Errorf("trace: invalid kind %d", r.Kind)
		return w.err
	}
	if r.Domain >= NumDomains {
		w.err = fmt.Errorf("trace: invalid domain %d", r.Domain)
		return w.err
	}
	prev := w.last[r.Kind][r.Domain]
	w.last[r.Kind][r.Domain] = r.Addr

	var delta uint64
	tag := byte(r.Kind)<<3 | byte(r.Domain)<<1
	if r.Addr >= prev {
		delta = r.Addr - prev
	} else {
		delta = prev - r.Addr
		tag |= 1 // sign bit: delta is negative
	}
	w.buf[0] = tag
	n := binary.PutUvarint(w.buf[1:], delta)
	if _, err := w.w.Write(w.buf[:1+n]); err != nil {
		w.err = err
		return err
	}
	w.count++
	return nil
}

// Count returns the number of references written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes buffered data. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a trace stream written by Writer. It implements Source.
type Reader struct {
	r      *bufio.Reader
	last   [3][NumDomains]uint64
	remain uint64
	// counted reports whether the header declared a record count (> 0); if
	// so the reader enforces it.
	counted bool
	err     error
}

// NewReader validates the header of r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	count := binary.LittleEndian.Uint64(hdr[12:20])
	return &Reader{r: br, remain: count, counted: count > 0}, nil
}

// Next implements Source.
func (r *Reader) Next() (Ref, bool) {
	if r.err != nil {
		return Ref{}, false
	}
	if r.counted && r.remain == 0 {
		return Ref{}, false
	}
	tag, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			if r.counted && r.remain > 0 {
				r.err = fmt.Errorf("%w: %d records missing", ErrTruncated, r.remain)
			}
		} else {
			r.err = err
		}
		return Ref{}, false
	}
	kind := Kind(tag >> 3)
	domain := Domain(tag >> 1 & 0x3)
	if kind > DWrite || tag&0x60 != 0 {
		r.err = fmt.Errorf("%w: invalid tag 0x%02x", ErrCorrupt, tag)
		return Ref{}, false
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("%w: reading delta: %v", ErrCorrupt, err)
		return Ref{}, false
	}
	prev := r.last[kind][domain]
	var addr uint64
	if tag&1 == 0 {
		addr = prev + delta
	} else {
		addr = prev - delta
	}
	r.last[kind][domain] = addr
	if r.counted {
		r.remain--
	}
	return Ref{Addr: addr, Kind: kind, Domain: domain}, true
}

// Err implements Source.
func (r *Reader) Err() error { return r.err }

// Encode writes every reference from src to w in trace format, returning the
// number written. The header count field is left zero (streaming mode); use
// WriteTo with a io.WriteSeeker via WriteFile semantics when a
// self-describing count is needed.
func Encode(w io.Writer, src Source) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	if _, err := Copy(tw, src); err != nil {
		return tw.Count(), err
	}
	return tw.Count(), tw.Close()
}

// EncodeSeeker writes src to ws and then patches the header's record count,
// producing a fully self-describing trace file.
func EncodeSeeker(ws io.WriteSeeker, src Source) (uint64, error) {
	n, err := Encode(ws, src)
	if err != nil {
		return n, err
	}
	if _, err := ws.Seek(12, io.SeekStart); err != nil {
		return n, fmt.Errorf("trace: seeking to patch count: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], n)
	if _, err := ws.Write(buf[:]); err != nil {
		return n, fmt.Errorf("trace: patching count: %w", err)
	}
	if _, err := ws.Seek(0, io.SeekEnd); err != nil {
		return n, err
	}
	return n, nil
}

// Decode reads an entire trace stream into memory.
func Decode(r io.Reader) ([]Ref, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return Collect(tr)
}
