package trace

import (
	"bytes"
	"testing"
)

// FuzzReader ensures arbitrary byte streams never panic the decoder and that
// declared-count traces either decode fully or error.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace.
	var buf bytes.Buffer
	refs := []Ref{
		{Addr: 0x1000, Kind: IFetch, Domain: User},
		{Addr: 0x1004, Kind: IFetch, Domain: User},
		{Addr: 0x80001000, Kind: DWrite, Domain: Kernel},
	}
	if _, err := Encode(&buf, NewSliceSource(refs)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IBSTRACE"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		n := 0
		for {
			_, ok := r.Next()
			if !ok {
				break
			}
			n++
			if n > 1<<20 {
				t.Fatal("decoder produced >1M refs from fuzz input")
			}
		}
		// Err may or may not be set; it must not panic and must be stable.
		_ = r.Err()
	})
}

// FuzzRoundTrip checks that any encodable ref sequence survives a round
// trip.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint8(0), uint8(0), uint64(0x2000), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, a1 uint64, k1, d1 uint8, a2 uint64, k2, d2 uint8) {
		in := []Ref{
			{Addr: a1, Kind: Kind(k1 % 3), Domain: Domain(d1 % uint8(NumDomains))},
			{Addr: a2, Kind: Kind(k2 % 3), Domain: Domain(d2 % uint8(NumDomains))},
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, NewSliceSource(in)); err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
			t.Fatalf("round trip mismatch: %v vs %v", out, in)
		}
	})
}
