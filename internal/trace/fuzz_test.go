package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// encodeValid returns the encoded bytes of refs via the counted
// (self-describing) path.
func encodeValid(t testing.TB, refs []Ref) []byte {
	t.Helper()
	var buf seekBuffer // shared with codec_test.go
	if _, err := EncodeSeeker(&buf, NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}
	return buf.buf
}

// corpusRefs is the reference stream the corrupt-stream corpus mutates.
var corpusRefs = []Ref{
	{Addr: 0x400000, Kind: IFetch, Domain: User},
	{Addr: 0x400004, Kind: IFetch, Domain: User},
	{Addr: 0x80001000, Kind: DWrite, Domain: Kernel},
	{Addr: 0x30000f00, Kind: DRead, Domain: BSDServer},
	{Addr: 0x400008, Kind: IFetch, Domain: User},
}

// FuzzDecode feeds arbitrary record bodies behind a well-formed header and
// asserts the decoder's error contract: Decode either succeeds (delivering
// exactly the declared record count, when one is declared) or returns a
// typed ErrCorrupt/ErrTruncated — and never panics.
func FuzzDecode(f *testing.F) {
	valid := encodeValid(f, corpusRefs)
	body := valid[headerSize:]

	// Seed corpus: the well-formed body plus the corruption classes the
	// decoder must classify.
	f.Add(uint64(len(corpusRefs)), body)                                      // intact
	f.Add(uint64(len(corpusRefs)), body[:len(body)-1])                        // truncated mid-varint
	f.Add(uint64(len(corpusRefs)+3), body)                                    // count overstates records
	f.Add(uint64(len(corpusRefs)), append([]byte{0x7f}, body...))             // invalid tag (0x60 bits set)
	f.Add(uint64(1), []byte{0x00})                                            // tag with missing delta
	f.Add(uint64(1), append([]byte{0x00}, bytes.Repeat([]byte{0x80}, 11)...)) // varint overflow
	f.Add(uint64(0), body)                                                    // count-less stream
	f.Add(uint64(0), []byte{})                                                // empty body
	f.Add(uint64(1)<<62, body)                                                // absurd count: must not pre-allocate
	f.Add(^uint64(0), []byte{})                                               // absurd count, empty body

	f.Fuzz(func(t *testing.T, count uint64, recs []byte) {
		data := make([]byte, headerSize+len(recs))
		copy(data, Magic)
		binary.LittleEndian.PutUint16(data[8:10], Version)
		binary.LittleEndian.PutUint64(data[12:20], count)
		copy(data[headerSize:], recs)

		refs, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("decode error is not typed ErrCorrupt/ErrTruncated: %v", err)
			}
			return
		}
		if count > 0 && uint64(len(refs)) != count {
			t.Fatalf("decode succeeded with %d records, header declared %d", len(refs), count)
		}
	})
}

// FuzzHeader fuzzes the fixed header: NewReader must accept exactly
// well-formed headers and classify everything else with a typed error.
func FuzzHeader(f *testing.F) {
	valid := encodeValid(f, corpusRefs)
	f.Add(valid[:headerSize])
	f.Add([]byte("IBSTRACE"))                                                 // short header
	f.Add([]byte("IBSTRACF\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")) // bad magic
	f.Add([]byte{})
	bad := append([]byte{}, valid[:headerSize]...)
	bad[8] = 0xff // absurd version
	f.Add(bad)

	f.Fuzz(func(t *testing.T, hdr []byte) {
		r, err := NewReader(bytes.NewReader(hdr))
		if err != nil {
			return // rejected header: fine, and must not panic
		}
		// Accepted: the header must really have been well-formed.
		if len(hdr) < headerSize || string(hdr[:8]) != Magic ||
			binary.LittleEndian.Uint16(hdr[8:10]) != Version {
			t.Fatalf("NewReader accepted malformed header % x", hdr)
		}
		_, _ = r.Next()
		_ = r.Err()
	})
}

// FuzzReader ensures arbitrary byte streams never panic the decoder and that
// declared-count traces either decode fully or error.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace.
	var buf bytes.Buffer
	refs := []Ref{
		{Addr: 0x1000, Kind: IFetch, Domain: User},
		{Addr: 0x1004, Kind: IFetch, Domain: User},
		{Addr: 0x80001000, Kind: DWrite, Domain: Kernel},
	}
	if _, err := Encode(&buf, NewSliceSource(refs)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IBSTRACE"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		n := 0
		for {
			_, ok := r.Next()
			if !ok {
				break
			}
			n++
			if n > 1<<20 {
				t.Fatal("decoder produced >1M refs from fuzz input")
			}
		}
		// Err may or may not be set; it must not panic and must be stable.
		_ = r.Err()
	})
}

// FuzzSalvage feeds arbitrary bytes to DecodeSalvage and asserts the salvage
// contract: no panic; a complete result has no error; an incomplete result
// carries a typed error; and the salvaged prefix of a counted stream never
// exceeds the declared count.
func FuzzSalvage(f *testing.F) {
	valid := encodeValid(f, corpusRefs)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:headerSize+2])
	f.Add([]byte("IBSTRACE"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		refs, complete, err := DecodeSalvage(bytes.NewReader(data))
		if complete && err != nil {
			t.Fatalf("complete salvage returned error %v", err)
		}
		if !complete && err == nil && len(data) >= headerSize {
			t.Fatal("incomplete salvage without error")
		}
		if len(data) >= headerSize && string(data[:8]) == string(Magic) {
			if count := binary.LittleEndian.Uint64(data[12:20]); count > 0 && uint64(len(refs)) > count {
				t.Fatalf("salvaged %d refs, header declared %d", len(refs), count)
			}
		}
	})
}

// corpusRuns is the reference run sequence the run-length corpus mutates.
var corpusRuns = []Run{
	{Start: 0x400000, Len: 12, Domain: User},
	{Start: 0x80001000, Len: 3, Domain: Kernel},
	{Start: 0x400040, Len: 200, Domain: User},
	{Start: 0x30000f00, Len: 1, Domain: BSDServer},
}

// encodeValidRuns returns the counted, checksummed encoding of runs.
func encodeValidRuns(t testing.TB, runs []Run) []byte {
	t.Helper()
	var buf seekBuffer
	if _, err := EncodeRunsSeeker(&buf, runs); err != nil {
		t.Fatal(err)
	}
	return buf.buf
}

// FuzzDecodeRuns feeds arbitrary record bodies behind a well-formed
// run-length (FlagRuns) header: DecodeRuns either succeeds — delivering
// exactly the declared record count when one is declared — or fails with a
// typed ErrCorrupt/ErrTruncated, and never panics.
func FuzzDecodeRuns(f *testing.F) {
	valid := encodeValidRuns(f, corpusRuns)
	body := valid[headerSize:]

	f.Add(uint64(len(corpusRuns)), body)               // intact (with trailer)
	f.Add(uint64(len(corpusRuns)), body[:len(body)-1]) // damaged trailer
	f.Add(uint64(len(corpusRuns)+2), body)             // count overstates records
	f.Add(uint64(1), []byte{0x00})                     // record with missing fields
	f.Add(uint64(0), []byte{})                         // empty streaming body
	f.Add(uint64(1)<<62, body)                         // absurd count: must not pre-allocate

	f.Fuzz(func(t *testing.T, count uint64, recs []byte) {
		data := make([]byte, headerSize+len(recs))
		copy(data, Magic)
		binary.LittleEndian.PutUint16(data[8:10], Version)
		binary.LittleEndian.PutUint16(data[10:12], FlagRuns)
		binary.LittleEndian.PutUint64(data[12:20], count)
		copy(data[headerSize:], recs)

		runs, err := DecodeRuns(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("decode error is not typed ErrCorrupt/ErrTruncated: %v", err)
			}
			return
		}
		if count > 0 && uint64(len(runs)) != count {
			t.Fatalf("decode succeeded with %d runs, header declared %d", len(runs), count)
		}
		for i, r := range runs {
			if r.Len <= 0 {
				t.Fatalf("decoded run %d has non-positive length %d", i, r.Len)
			}
			if r.Domain >= NumDomains {
				t.Fatalf("decoded run %d has invalid domain %d", i, r.Domain)
			}
		}
	})
}

// FuzzRunsSalvage feeds arbitrary bytes to DecodeRunsSalvage: no panic, a
// complete result has no error, an incomplete result carries a typed
// error, and the salvaged prefix of a counted run stream never exceeds the
// declared record count — salvage can never "recover" more runs than were
// written.
func FuzzRunsSalvage(f *testing.F) {
	valid := encodeValidRuns(f, corpusRuns)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:headerSize+1])
	f.Add([]byte("IBSTRACE"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		runs, complete, err := DecodeRunsSalvage(bytes.NewReader(data))
		if complete && err != nil {
			t.Fatalf("complete salvage returned error %v", err)
		}
		if !complete && err == nil && len(data) >= headerSize {
			t.Fatal("incomplete salvage without error")
		}
		if len(data) >= headerSize && string(data[:8]) == string(Magic) {
			flags := binary.LittleEndian.Uint16(data[10:12])
			count := binary.LittleEndian.Uint64(data[12:20])
			if flags&FlagRuns != 0 && count > 0 && uint64(len(runs)) > count {
				t.Fatalf("salvaged %d runs, header declared %d", len(runs), count)
			}
		}
	})
}

// FuzzRunsRoundTrip checks that any encodable run sequence survives
// EncodeRuns → DecodeRuns bit-exactly, via both the streaming and the
// counted/checksummed paths.
func FuzzRunsRoundTrip(f *testing.F) {
	f.Add(uint64(0x400000), int64(12), uint8(0), uint64(0x80001000), int64(1), uint8(2))
	f.Add(uint64(0), int64(1), uint8(0), ^uint64(0)-4096, int64(3), uint8(1))
	f.Fuzz(func(t *testing.T, s1 uint64, l1 int64, d1 uint8, s2 uint64, l2 int64, d2 uint8) {
		clamp := func(l int64) int64 {
			if l < 1 {
				return 1
			}
			if l > maxRunLen {
				return maxRunLen
			}
			return l
		}
		in := []Run{
			{Start: s1, Len: clamp(l1), Domain: Domain(d1 % uint8(NumDomains))},
			{Start: s2, Len: clamp(l2), Domain: Domain(d2 % uint8(NumDomains))},
		}

		var buf bytes.Buffer
		if _, err := EncodeRuns(&buf, in); err != nil {
			t.Fatalf("streaming encode: %v", err)
		}
		out, err := DecodeRuns(&buf)
		if err != nil {
			t.Fatalf("streaming decode: %v", err)
		}
		if len(out) != len(in) || out[0] != in[0] || out[1] != in[1] {
			t.Fatalf("streaming round trip mismatch: %v vs %v", out, in)
		}

		counted := encodeValidRuns(t, in)
		out, err = DecodeRuns(bytes.NewReader(counted))
		if err != nil {
			t.Fatalf("counted decode: %v", err)
		}
		if len(out) != len(in) || out[0] != in[0] || out[1] != in[1] {
			t.Fatalf("counted round trip mismatch: %v vs %v", out, in)
		}
	})
}

// FuzzRoundTrip checks that any encodable ref sequence survives a round
// trip.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint8(0), uint8(0), uint64(0x2000), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, a1 uint64, k1, d1 uint8, a2 uint64, k2, d2 uint8) {
		in := []Ref{
			{Addr: a1, Kind: Kind(k1 % 3), Domain: Domain(d1 % uint8(NumDomains))},
			{Addr: a2, Kind: Kind(k2 % 3), Domain: Domain(d2 % uint8(NumDomains))},
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, NewSliceSource(in)); err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
			t.Fatalf("round trip mismatch: %v vs %v", out, in)
		}
	})
}
