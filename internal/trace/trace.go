// Package trace defines the memory-reference stream model used throughout
// ibsim, plus a compact binary on-disk format for distributing traces.
//
// The paper's traces were captured with the Monster logic analyzer on a
// DECstation 3100: complete address streams, including every user task, the
// kernel, and (under Mach) the user-level BSD and X servers. A reference
// therefore carries not just an address and an access kind but also the
// protection/address-space domain it executed in, so that simulators can
// attribute misses and execution time the way Tables 3 and 4 do.
package trace

import "fmt"

// Kind discriminates reference types.
type Kind uint8

const (
	// IFetch is an instruction fetch.
	IFetch Kind = iota
	// DRead is a data load.
	DRead
	// DWrite is a data store.
	DWrite
)

// String returns the conventional short name for the kind.
func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case DRead:
		return "dread"
	case DWrite:
		return "dwrite"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Domain identifies the address-space/protection domain a reference executed
// in. The set matches the workload components of Table 4: the user
// application task(s), the OS kernel, and — under a microkernel OS — the
// user-level BSD and X display servers. Each domain is a separate virtual
// address space (a separate ASID) for cache-indexing purposes.
type Domain uint8

const (
	// User is the application task itself.
	User Domain = iota
	// Kernel is the operating-system kernel.
	Kernel
	// BSDServer is Mach's user-level 4.3 BSD UNIX server.
	BSDServer
	// XServer is the X11 display server.
	XServer
	// NumDomains is the number of defined domains.
	NumDomains = 4
)

// String returns the component name used in the paper's tables.
func (d Domain) String() string {
	switch d {
	case User:
		return "User"
	case Kernel:
		return "Kernel"
	case BSDServer:
		return "BSD"
	case XServer:
		return "X"
	default:
		return fmt.Sprintf("Domain(%d)", uint8(d))
	}
}

// Ref is a single memory reference.
type Ref struct {
	// Addr is the virtual byte address referenced.
	Addr uint64
	// Kind says whether this is an instruction fetch, load, or store.
	Kind Kind
	// Domain is the address space the reference executed in.
	Domain Domain
}

// Source produces a stream of references. Next returns false when the stream
// is exhausted or has failed; Err distinguishes the two.
type Source interface {
	// Next advances to the next reference, returning it and true, or a zero
	// Ref and false at end of stream or on error.
	Next() (Ref, bool)
	// Err returns the first error encountered, or nil on clean exhaustion.
	Err() error
}

// Seeker is a Source over a fixed-length instruction stream whose position
// can be moved directly. SeekTo(i) positions the stream so the next
// reference returned is instruction fetch number i (0-based), exactly as if
// the preceding i instructions had been read and discarded; implementations
// back it with checkpointed generators (synth.SeekSource) so a seek costs
// O(checkpoint interval) instead of O(i). Pos reports the next instruction
// index; Total the stream length.
type Seeker interface {
	Source
	SeekTo(i int64) error
	Pos() int64
	Total() int64
}

// Sink consumes a stream of references.
type Sink interface {
	// Put consumes one reference.
	Put(Ref) error
}

// SliceSource adapts an in-memory []Ref to a Source.
type SliceSource struct {
	refs []Ref
	pos  int
}

// NewSliceSource returns a Source that yields refs in order.
func NewSliceSource(refs []Ref) *SliceSource {
	return &SliceSource{refs: refs}
}

// Next implements Source.
func (s *SliceSource) Next() (Ref, bool) {
	if s.pos >= len(s.refs) {
		return Ref{}, false
	}
	r := s.refs[s.pos]
	s.pos++
	return r, true
}

// Err implements Source; a SliceSource never fails.
func (s *SliceSource) Err() error { return nil }

// Reset rewinds the source to the beginning, allowing a trace held in memory
// to be replayed against many configurations (how all the parameter sweeps
// in Section 5 are driven).
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of references in the underlying slice.
func (s *SliceSource) Len() int { return len(s.refs) }

// Collect drains src into a slice. It returns the references read and the
// first error, if any.
func Collect(src Source) ([]Ref, error) {
	var out []Ref
	for {
		r, ok := src.Next()
		if !ok {
			return out, src.Err()
		}
		out = append(out, r)
	}
}

// Copy drains src into sink, returning the number of references copied and
// the first error from either side.
func Copy(sink Sink, src Source) (int64, error) {
	var n int64
	for {
		r, ok := src.Next()
		if !ok {
			return n, src.Err()
		}
		if err := sink.Put(r); err != nil {
			return n, err
		}
		n++
	}
}

// FilterSource yields only the references of src for which keep returns
// true.
type FilterSource struct {
	src  Source
	keep func(Ref) bool
}

// NewFilterSource wraps src with a predicate.
func NewFilterSource(src Source, keep func(Ref) bool) *FilterSource {
	return &FilterSource{src: src, keep: keep}
}

// Next implements Source.
func (f *FilterSource) Next() (Ref, bool) {
	for {
		r, ok := f.src.Next()
		if !ok {
			return Ref{}, false
		}
		if f.keep(r) {
			return r, true
		}
	}
}

// Err implements Source.
func (f *FilterSource) Err() error { return f.src.Err() }

// InstructionsOnly returns a Source yielding only instruction fetches —
// Section 5's methodology ("Throughout this analysis, we only consider
// instruction references").
func InstructionsOnly(src Source) Source {
	return NewFilterSource(src, func(r Ref) bool { return r.Kind == IFetch })
}

// DomainOnly returns a Source yielding only references from domain d.
func DomainOnly(src Source, d Domain) Source {
	return NewFilterSource(src, func(r Ref) bool { return r.Domain == d })
}

// LimitSource yields at most n references from src.
type LimitSource struct {
	src Source
	n   int64
}

// NewLimitSource wraps src, truncating it after n references.
func NewLimitSource(src Source, n int64) *LimitSource {
	return &LimitSource{src: src, n: n}
}

// Next implements Source.
func (l *LimitSource) Next() (Ref, bool) {
	if l.n <= 0 {
		return Ref{}, false
	}
	l.n--
	return l.src.Next()
}

// Err implements Source.
func (l *LimitSource) Err() error { return l.src.Err() }

// Counts tallies a reference stream by kind and domain.
type Counts struct {
	// ByKind[k] is the number of references of Kind k.
	ByKind [3]int64
	// ByDomain[d] is the number of references executed in Domain d.
	ByDomain [NumDomains]int64
	// Total is the overall reference count.
	Total int64
}

// Observe records r.
func (c *Counts) Observe(r Ref) {
	c.Total++
	if int(r.Kind) < len(c.ByKind) {
		c.ByKind[r.Kind]++
	}
	if int(r.Domain) < len(c.ByDomain) {
		c.ByDomain[r.Domain]++
	}
}

// Instructions returns the number of instruction fetches observed.
func (c *Counts) Instructions() int64 { return c.ByKind[IFetch] }

// DomainFraction returns the fraction of all references executed in d, or 0
// for an empty stream.
func (c *Counts) DomainFraction(d Domain) float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.ByDomain[d]) / float64(c.Total)
}

// Count drains src, returning its tallies.
func Count(src Source) (Counts, error) {
	var c Counts
	for {
		r, ok := src.Next()
		if !ok {
			return c, src.Err()
		}
		c.Observe(r)
	}
}
