package trace

import "sort"

// Run-length compaction of instruction streams.
//
// Instruction fetch is overwhelmingly sequential: the PC advances one
// instruction at a time until a taken branch, trap, or domain switch breaks
// the run (Section 4's sequentiality analysis; internal/locality measures the
// same structure). A Run captures one such maximal sequential stretch, so a
// multi-million-reference instruction stream collapses into a few hundred
// thousand (Start, Len) pairs that fetch engines can consume with O(lines)
// work per run instead of O(instructions) — the basis of the fan-out replay
// driver in internal/replay.

// InstrBytes is the architectural instruction size: sequential execution
// advances the PC by this many bytes (the MIPS-style fixed 4-byte encoding
// every workload model generates).
const InstrBytes = 4

// Run is one maximal sequential stretch of instruction fetches: Len
// instructions starting at Start, advancing InstrBytes per instruction, all
// executed in Domain.
type Run struct {
	// Start is the address of the run's first instruction.
	Start uint64
	// Len is the number of instructions in the run (always >= 1).
	Len int64
	// Domain is the protection domain the whole run executed in.
	Domain Domain
}

// End returns the address one instruction past the run. For a run ending
// exactly at the top of the address space it is 0 (2^64 is unrepresentable);
// the run's own instructions never wrap.
func (r Run) End() uint64 { return r.Start + uint64(r.Len)*InstrBytes }

// Compact collapses the instruction fetches of refs into maximal sequential
// runs. Non-instruction references are ignored — the same Section 5
// methodology fetch.Run applies ("we only consider instruction references") —
// so Expand(Compact(refs)) reproduces exactly the fetch sequence an engine
// would see from refs. A run breaks on any non-sequential step, on a domain
// change, and at the top of the address space (so Start+Len*InstrBytes never
// wraps).
func Compact(refs []Ref) []Run {
	return CompactAppend(nil, refs)
}

// CompactAppend is Compact appending to dst, for callers reusing a buffer
// across traces; it allocates nothing when dst has capacity for the result.
func CompactAppend(dst []Run, refs []Ref) []Run {
	var cur Run
	var next uint64 // address extending cur; 0 also flags "no current run"
	for _, r := range refs {
		if r.Kind != IFetch {
			continue
		}
		if cur.Len > 0 && r.Addr == next && r.Domain == cur.Domain && next != 0 {
			cur.Len++
			next += InstrBytes
			continue
		}
		if cur.Len > 0 {
			dst = append(dst, cur)
		}
		cur = Run{Start: r.Addr, Len: 1, Domain: r.Domain}
		next = r.Addr + InstrBytes // wraps to < InstrBytes at the address-space top, breaking the run
	}
	if cur.Len > 0 {
		dst = append(dst, cur)
	}
	return dst
}

// Compactor is an incremental Compact: references arrive one at a time (or
// in arbitrary chunks) and runs accumulate internally, with sequential
// stretches spanning chunk boundaries still merging into one run — exactly
// what CompactAppend over the concatenated stream would produce. It lets a
// streaming trace source be compacted in O(runs) memory without ever
// materializing the reference slice (synth.Store.RunsOnly is the intended
// consumer).
type Compactor struct {
	runs []Run
	cur  Run
	next uint64 // address extending cur; 0 also flags "no current run"
}

// Add feeds one reference; non-instruction references are ignored, matching
// Compact.
func (c *Compactor) Add(r Ref) {
	if r.Kind != IFetch {
		return
	}
	if c.cur.Len > 0 && r.Addr == c.next && r.Domain == c.cur.Domain && c.next != 0 {
		c.cur.Len++
		c.next += InstrBytes
		return
	}
	if c.cur.Len > 0 {
		c.runs = append(c.runs, c.cur)
	}
	c.cur = Run{Start: r.Addr, Len: 1, Domain: r.Domain}
	c.next = r.Addr + InstrBytes // wraps to < InstrBytes at the address-space top, breaking the run
}

// Resume primes a fresh Compactor with an already-compacted prefix, taking
// ownership of the slice: subsequent Adds continue exactly where the prefix's
// stream left off, with the prefix's final run kept open so a sequential
// stretch spanning the boundary still merges — Finish over the whole thing
// equals Compact over the concatenated stream. This is how the synth store
// resumes run compaction from a memoized shorter trace instead of
// regenerating it. It panics if the Compactor has already consumed
// references.
func (c *Compactor) Resume(prefix []Run) {
	if c.cur.Len > 0 || len(c.runs) > 0 {
		panic("trace: Compactor.Resume on a non-empty Compactor")
	}
	if len(prefix) == 0 {
		return
	}
	last := prefix[len(prefix)-1]
	c.runs = prefix[:len(prefix)-1]
	c.cur = last
	c.next = last.End() // 0 at the address-space top, matching Add's no-extend flag
}

// Len returns the number of runs the compactor currently retains, including
// the still-open one — an upper bound that only grows by one per Add, so
// incremental memory-budget checks can poll it cheaply.
func (c *Compactor) Len() int {
	if c.cur.Len > 0 {
		return len(c.runs) + 1
	}
	return len(c.runs)
}

// Finish closes the open run and returns the compacted trace. The Compactor
// must not be reused after Finish.
func (c *Compactor) Finish() []Run {
	if c.cur.Len > 0 {
		c.runs = append(c.runs, c.cur)
		c.cur = Run{}
		c.next = 0
	}
	return c.runs
}

// AppendRefs expands the run back into its per-instruction fetches.
func (r Run) AppendRefs(dst []Ref) []Ref {
	addr := r.Start
	for i := int64(0); i < r.Len; i++ {
		dst = append(dst, Ref{Addr: addr, Kind: IFetch, Domain: r.Domain})
		addr += InstrBytes
	}
	return dst
}

// Expand materializes the per-instruction fetch stream of runs — the inverse
// of Compact over an instruction-only trace.
func Expand(runs []Run) []Ref {
	var n int64
	for _, r := range runs {
		n += r.Len
	}
	dst := make([]Ref, 0, n)
	for _, r := range runs {
		dst = r.AppendRefs(dst)
	}
	return dst
}

// RunSource adapts a compacted []Run back to a per-reference Source, so
// run-compacted traces plug into every streaming consumer (fetch.RunSource,
// Count, the codec's Encode). It never fails.
type RunSource struct {
	runs []Run
	i    int
	off  int64
}

// NewRunSource returns a Source yielding the expanded instruction stream of
// runs in order.
func NewRunSource(runs []Run) *RunSource {
	return &RunSource{runs: runs}
}

// Next implements Source.
func (s *RunSource) Next() (Ref, bool) {
	for s.i < len(s.runs) {
		r := s.runs[s.i]
		if s.off < r.Len {
			ref := Ref{Addr: r.Start + uint64(s.off)*InstrBytes, Kind: IFetch, Domain: r.Domain}
			s.off++
			return ref, true
		}
		s.i++
		s.off = 0
	}
	return Ref{}, false
}

// Err implements Source; a RunSource never fails.
func (s *RunSource) Err() error { return nil }

// Reset rewinds the source to the beginning.
func (s *RunSource) Reset() { s.i, s.off = 0, 0 }

// RunStats summarizes a compacted trace's sequentiality — the numbers
// ibstrace prints so a trace's amenability to bulk replay is inspectable.
type RunStats struct {
	// Instructions is the total instruction count across all runs.
	Instructions int64
	// Runs is the number of maximal sequential runs.
	Runs int64
	// MeanLen and MedianLen are the run-length distribution's center.
	MeanLen   float64
	MedianLen float64
	// MaxLen is the longest run observed.
	MaxLen int64
}

// CompactionRatio returns Instructions/Runs — how many per-instruction
// dispatches each bulk FetchRun call replaces — or 0 for an empty trace.
func (s RunStats) CompactionRatio() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Runs)
}

// SummarizeRuns computes run-length statistics for a compacted trace.
func SummarizeRuns(runs []Run) RunStats {
	st := RunStats{Runs: int64(len(runs))}
	if len(runs) == 0 {
		return st
	}
	lens := make([]int64, len(runs))
	for i, r := range runs {
		lens[i] = r.Len
		st.Instructions += r.Len
		if r.Len > st.MaxLen {
			st.MaxLen = r.Len
		}
	}
	st.MeanLen = float64(st.Instructions) / float64(st.Runs)
	sort.Slice(lens, func(i, j int) bool { return lens[i] < lens[j] })
	if n := len(lens); n%2 == 1 {
		st.MedianLen = float64(lens[n/2])
	} else {
		st.MedianLen = float64(lens[n/2-1]+lens[n/2]) / 2
	}
	return st
}
