package trace

import (
	"testing"
)

func refs(addrs ...uint64) []Ref {
	out := make([]Ref, len(addrs))
	for i, a := range addrs {
		out[i] = Ref{Addr: a, Kind: IFetch, Domain: User}
	}
	return out
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{IFetch: "ifetch", DRead: "dread", DWrite: "dwrite", Kind(9): "Kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestDomainString(t *testing.T) {
	for d, want := range map[Domain]string{User: "User", Kernel: "Kernel", BSDServer: "BSD", XServer: "X", Domain(8): "Domain(8)"} {
		if got := d.String(); got != want {
			t.Errorf("Domain.String() = %q, want %q", got, want)
		}
	}
}

func TestSliceSource(t *testing.T) {
	in := refs(0, 4, 8)
	s := NewSliceSource(in)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].Addr != 4 {
		t.Fatalf("collected %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source yielded")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.Addr != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestFilterSource(t *testing.T) {
	in := []Ref{
		{Addr: 0, Kind: IFetch, Domain: User},
		{Addr: 100, Kind: DRead, Domain: User},
		{Addr: 4, Kind: IFetch, Domain: Kernel},
		{Addr: 104, Kind: DWrite, Domain: Kernel},
	}
	got, err := Collect(InstructionsOnly(NewSliceSource(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Addr != 0 || got[1].Addr != 4 {
		t.Fatalf("InstructionsOnly = %v", got)
	}
	got, err = Collect(DomainOnly(NewSliceSource(in), Kernel))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Addr != 4 {
		t.Fatalf("DomainOnly = %v", got)
	}
}

func TestLimitSource(t *testing.T) {
	in := refs(0, 4, 8, 12)
	got, err := Collect(NewLimitSource(NewSliceSource(in), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("limit 2 yielded %d", len(got))
	}
	got, err = Collect(NewLimitSource(NewSliceSource(in), 0))
	if err != nil || len(got) != 0 {
		t.Fatalf("limit 0 yielded %d, err %v", len(got), err)
	}
	got, err = Collect(NewLimitSource(NewSliceSource(in), 100))
	if err != nil || len(got) != 4 {
		t.Fatalf("limit beyond length yielded %d", len(got))
	}
}

func TestCounts(t *testing.T) {
	in := []Ref{
		{Kind: IFetch, Domain: User},
		{Kind: IFetch, Domain: Kernel},
		{Kind: DRead, Domain: User},
		{Kind: DWrite, Domain: XServer},
		{Kind: IFetch, Domain: User},
	}
	c, err := Count(NewSliceSource(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Total != 5 {
		t.Errorf("Total = %d", c.Total)
	}
	if c.Instructions() != 3 {
		t.Errorf("Instructions = %d", c.Instructions())
	}
	if c.ByKind[DRead] != 1 || c.ByKind[DWrite] != 1 {
		t.Errorf("data counts wrong: %v", c.ByKind)
	}
	if c.ByDomain[User] != 3 || c.ByDomain[Kernel] != 1 || c.ByDomain[XServer] != 1 {
		t.Errorf("domain counts wrong: %v", c.ByDomain)
	}
	if got := c.DomainFraction(User); got != 0.6 {
		t.Errorf("DomainFraction(User) = %v", got)
	}
	var empty Counts
	if empty.DomainFraction(User) != 0 {
		t.Error("empty DomainFraction != 0")
	}
}

type errSink struct{ after int }

func (e *errSink) Put(Ref) error {
	if e.after <= 0 {
		return errTest
	}
	e.after--
	return nil
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestCopyPropagatesSinkError(t *testing.T) {
	n, err := Copy(&errSink{after: 2}, NewSliceSource(refs(0, 4, 8, 12)))
	if err != errTest {
		t.Fatalf("err = %v", err)
	}
	if n != 2 {
		t.Fatalf("copied %d before error, want 2", n)
	}
}
