package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Block-level salvage of damaged columnar traces.
//
// Every block is framed, independently decodable, and individually
// CRC-checked, so damage localizes in a way the version-1 stream cannot
// match: with the footer index intact (its own CRC), salvage drops exactly
// the blocks whose payload fails its checksum or decode and keeps everything
// else, wherever in the file the damage landed. When the trailer or index is
// itself damaged, salvage falls back to walking frames forward from the
// header and keeps the CRC-clean prefix — the same guarantee DecodeSalvage
// gives a truncated v1 file, at block granularity.

// ColumnarDamage reports what SalvageColumnar dropped. A zero DroppedBlocks
// with IndexRebuilt false means the file was intact.
type ColumnarDamage struct {
	// DroppedBlocks and DroppedRefs count the discarded blocks and the
	// instructions they held (per the index when it survived; unknowable —
	// and reported as 0 per block — for blocks lost past a destroyed index).
	DroppedBlocks int
	DroppedRefs   int64
	// IndexRebuilt reports that the trailer or footer index was unusable and
	// the block index was reconstructed by a forward scan (prefix salvage).
	IndexRebuilt bool
	// Err is the typed classification of the first damage encountered
	// (ErrCorrupt, ErrTruncated); nil for an intact file.
	Err error
}

// Damaged reports whether the file needed any repair.
func (d *ColumnarDamage) Damaged() bool {
	return d.DroppedBlocks > 0 || d.IndexRebuilt || d.Err != nil
}

// SalvageColumnar opens a possibly damaged columnar trace, keeping every
// block that passes its CRC and decode. The header must be intact (a file
// that cannot be identified as a columnar trace yields ErrBadMagic /
// ErrBadVersion / ErrTruncated); anything after it is recovered
// best-effort. The returned file serves only the surviving blocks.
func SalvageColumnar(path string) (*ColumnarFile, *ColumnarDamage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if data, unmap, merr := mmapFile(f, st.Size()); merr == nil {
		cf, dmg, err := salvageColumnar(&ColumnarFile{data: data, size: st.Size()})
		if err != nil {
			unmap()
			f.Close()
			return nil, nil, err
		}
		cf.unmap = unmap
		cf.closer = f
		return cf, dmg, nil
	}
	cf, dmg, err := salvageColumnar(&ColumnarFile{ra: f, size: st.Size()})
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	cf.closer = f
	return cf, dmg, nil
}

// SalvageColumnarBytes is SalvageColumnar over an in-memory file image.
func SalvageColumnarBytes(data []byte) (*ColumnarFile, *ColumnarDamage, error) {
	return salvageColumnar(&ColumnarFile{data: data, size: int64(len(data))})
}

// salvageColumnar recovers f.metas from a raw file handle (data or ra set,
// size known, nothing parsed yet).
func salvageColumnar(f *ColumnarFile) (*ColumnarFile, *ColumnarDamage, error) {
	if f.size < colHeaderSize {
		return nil, nil, fmt.Errorf("%w: %d bytes is too small for a columnar header", ErrTruncated, f.size)
	}
	hdr, err := f.bytes(0, colHeaderSize)
	if err != nil {
		return nil, nil, err
	}
	if string(hdr[:8]) != Magic {
		return nil, nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != ColumnarVersion {
		return nil, nil, fmt.Errorf("%w: %d (want columnar version %d)", ErrBadVersion, v, ColumnarVersion)
	}
	if flags := binary.LittleEndian.Uint16(hdr[10:12]); flags != FlagColumnar {
		return nil, nil, fmt.Errorf("%w: unexpected columnar flags 0x%04x", ErrBadVersion, flags)
	}
	f.blkSize = int(binary.LittleEndian.Uint32(hdr[12:16]))

	dmg := &ColumnarDamage{}
	metas, indexErr := salvageIndex(f)
	if indexErr != nil {
		dmg.IndexRebuilt = true
		dmg.Err = indexErr
		metas = rebuildIndex(f)
	}

	// Keep only blocks whose payload passes its CRC, decodes, and agrees
	// with its index entry; a rebuilt index is decode-derived so its blocks
	// always pass, making this a no-op there.
	var scratch []Run
	kept := metas[:0]
	for _, m := range metas {
		if err := verifyBlock(f, m, &scratch); err != nil {
			dmg.DroppedBlocks++
			dmg.DroppedRefs += m.Refs
			if dmg.Err == nil {
				dmg.Err = err
			}
			continue
		}
		kept = append(kept, m)
	}
	f.metas = kept
	f.cum = make([]int64, len(kept)+1)
	f.refs, f.runs = 0, 0
	for i, m := range kept {
		f.cum[i] = f.refs
		f.refs += m.Refs
		f.runs += int64(m.Runs)
	}
	f.cum[len(kept)] = f.refs
	return f, dmg, nil
}

// salvageIndex parses the trailer and footer index strictly, as OpenColumnar
// would; any inconsistency fails the whole index so the caller rebuilds.
func salvageIndex(f *ColumnarFile) ([]BlockMeta, error) {
	if f.size < colHeaderSize+colTrailerSize {
		return nil, fmt.Errorf("%w: no room for a columnar trailer", ErrTruncated)
	}
	trailer, err := f.bytes(f.size-colTrailerSize, colTrailerSize)
	if err != nil {
		return nil, err
	}
	if string(trailer[24:32]) != colTailMagic {
		return nil, fmt.Errorf("%w: columnar trailer magic missing", ErrTruncated)
	}
	indexOff := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	totalRefs := int64(binary.LittleEndian.Uint64(trailer[8:16]))
	blocks := int(binary.LittleEndian.Uint32(trailer[16:20]))
	indexCRC := binary.LittleEndian.Uint32(trailer[20:24])
	indexLen := int64(blocks) * colIndexEntrySize
	if blocks < 0 || indexOff < colHeaderSize || indexOff+indexLen != f.size-colTrailerSize || totalRefs < 0 {
		return nil, fmt.Errorf("%w: trailer geometry inconsistent", ErrCorrupt)
	}
	index, err := f.bytes(indexOff, int(indexLen))
	if err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(index); got != indexCRC {
		return nil, fmt.Errorf("%w: index checksum mismatch", ErrCorrupt)
	}
	metas, _, refs, _, err := parseColumnarIndex(index, blocks, indexOff)
	if err != nil {
		return nil, err
	}
	if refs != totalRefs {
		return nil, fmt.Errorf("%w: index refs %d != trailer refs %d", ErrCorrupt, refs, totalRefs)
	}
	return metas, nil
}

// rebuildIndex reconstructs block metadata by walking frames forward from
// the header, stopping at the first frame that fails its bounds, CRC, or
// decode — without the index there is no way to resynchronize past damage,
// so this is prefix salvage.
func rebuildIndex(f *ColumnarFile) []BlockMeta {
	var metas []BlockMeta
	var scratch []Run
	off := int64(colHeaderSize)
	for off+colFrameSize <= f.size {
		frame, err := f.bytes(off, colFrameSize)
		if err != nil {
			break
		}
		payloadLen := int64(binary.LittleEndian.Uint32(frame[0:4]))
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if payloadLen < colPayloadMin || off+colFrameSize+payloadLen > f.size {
			break
		}
		payload, err := f.bytes(off+colFrameSize, int(payloadLen))
		if err != nil || crc32.ChecksumIEEE(payload) != crc {
			break
		}
		runs, err := decodeColumnarBlock(payload, scratch)
		if err != nil {
			break
		}
		scratch = runs
		m := BlockMeta{Offset: off, PayloadLen: uint32(payloadLen), CRC: crc, Runs: len(runs)}
		for _, r := range runs {
			m.Refs += r.Len
		}
		m.FirstAddr = runs[0].Start
		last := runs[len(runs)-1]
		m.LastAddr = last.Start + uint64(last.Len-1)*InstrBytes
		metas = append(metas, m)
		off += colFrameSize + payloadLen
	}
	return metas
}

// verifyBlock checks one block end to end: frame length, payload CRC,
// decode, and agreement with the index entry.
func verifyBlock(f *ColumnarFile, m BlockMeta, scratch *[]Run) error {
	frame, err := f.bytes(m.Offset, colFrameSize+int(m.PayloadLen))
	if err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint32(frame[0:4]); got != m.PayloadLen {
		return fmt.Errorf("%w: frame length %d != index %d", ErrCorrupt, got, m.PayloadLen)
	}
	payload := frame[colFrameSize:]
	sum := crc32.ChecksumIEEE(payload)
	if got := binary.LittleEndian.Uint32(frame[4:8]); got != sum || sum != m.CRC {
		return fmt.Errorf("%w: block checksum mismatch", ErrCorrupt)
	}
	runs, err := decodeColumnarBlock(payload, *scratch)
	*scratch = runs
	if err != nil {
		return err
	}
	return checkBlockMeta(m, runs)
}
