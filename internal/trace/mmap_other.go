//go:build !unix

package trace

import (
	"errors"
	"os"
)

// mmapFile on platforms without a usable mmap always falls back to
// sequential reads (OpenColumnar's ReaderAt mode).
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errNoMmap
}

var errNoMmap = errors.New("trace: mmap unavailable")
