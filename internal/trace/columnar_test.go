package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// colTestRuns builds a deterministic run-compacted trace shaped like real
// instruction streams: mostly short forward hops with occasional long calls,
// across a couple of domains.
func colTestRuns(n int, seed int64) []Run {
	rng := rand.New(rand.NewSource(seed))
	runs := make([]Run, 0, n)
	addr := uint64(0x10000)
	for i := 0; i < n; i++ {
		length := int64(1 + rng.Intn(24))
		dom := Domain(rng.Intn(int(NumDomains)))
		runs = append(runs, Run{Start: addr, Len: length, Domain: dom})
		addr += uint64(length) * InstrBytes
		switch rng.Intn(10) {
		case 0: // far call
			addr += uint64(rng.Intn(1<<20) * InstrBytes)
		case 1: // backward branch
			back := uint64(rng.Intn(1<<12) * InstrBytes)
			if back < addr-0x1000 {
				addr -= back
			}
		default: // short forward hop
			addr += uint64(rng.Intn(64) * InstrBytes)
		}
	}
	return runs
}

// encodeColumnarBytes is a test helper: runs -> file image.
func encodeColumnarBytes(t *testing.T, runs []Run, blockBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := EncodeColumnarSize(&buf, runs, blockBytes); err != nil {
		t.Fatalf("EncodeColumnarSize: %v", err)
	}
	return buf.Bytes()
}

// collectBlocks drains every block through one reused buffer.
func collectBlocks(t *testing.T, bs BlockSource) []Run {
	t.Helper()
	var out, buf []Run
	var err error
	for i := 0; i < bs.NumBlocks(); i++ {
		if buf, err = bs.BlockRuns(i, buf); err != nil {
			t.Fatalf("BlockRuns(%d): %v", i, err)
		}
		out = append(out, buf...)
	}
	return out
}

func TestColumnarRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name       string
		runs       []Run
		blockBytes int
	}{
		{"empty", nil, DefaultBlockBytes},
		{"single", []Run{{Start: 0x4000, Len: 7, Domain: User}}, DefaultBlockBytes},
		{"one-block", colTestRuns(100, 1), DefaultBlockBytes},
		{"many-blocks", colTestRuns(5000, 2), 256},
		{"top-of-address-space", []Run{
			{Start: 0x1000, Len: 3},
			{Start: ^uint64(0) - 4*InstrBytes + 1 - 3, Len: 1}, // unaligned-top guard below covers alignment; keep aligned here
		}, DefaultBlockBytes},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "top-of-address-space" {
				// Rebuild: last run ends exactly at 2^64.
				tc.runs = []Run{
					{Start: 0x1000, Len: 3},
					{Start: ^uint64(0) - 4*5 + 1, Len: 5}, // 0xFFFF...EC, 5 instrs, End wraps to 0
				}
				if tc.runs[1].End() != 0 {
					t.Fatalf("test bug: End() = %#x, want 0", tc.runs[1].End())
				}
			}
			data := encodeColumnarBytes(t, tc.runs, tc.blockBytes)
			f, err := NewColumnarBytes(data)
			if err != nil {
				t.Fatalf("NewColumnarBytes: %v", err)
			}
			got := collectBlocks(t, f)
			if len(got) != len(tc.runs) {
				t.Fatalf("decoded %d runs, want %d", len(got), len(tc.runs))
			}
			for i := range got {
				if got[i] != tc.runs[i] {
					t.Fatalf("run %d = %+v, want %+v", i, got[i], tc.runs[i])
				}
			}
			var wantRefs int64
			for _, r := range tc.runs {
				wantRefs += r.Len
			}
			if f.Refs() != wantRefs || f.Runs() != int64(len(tc.runs)) {
				t.Fatalf("Refs/Runs = %d/%d, want %d/%d", f.Refs(), f.Runs(), wantRefs, len(tc.runs))
			}
		})
	}
}

func TestColumnarFileRoundTripMmap(t *testing.T) {
	runs := colTestRuns(3000, 3)
	path := filepath.Join(t.TempDir(), "t.col")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeColumnarSize(w, runs, 1024); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := OpenColumnar(path)
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	defer f.Close()
	if f.NumBlocks() < 2 {
		t.Fatalf("want multiple blocks, got %d", f.NumBlocks())
	}
	got := collectBlocks(t, f)
	if len(got) != len(runs) {
		t.Fatalf("decoded %d runs, want %d", len(got), len(runs))
	}
	for i := range got {
		if got[i] != runs[i] {
			t.Fatalf("run %d mismatch", i)
		}
	}

	// The explicit sequential (ReaderAt) mode must agree byte for byte.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	st, _ := rf.Stat()
	seq, err := NewColumnarReaderAt(rf, st.Size())
	if err != nil {
		t.Fatalf("NewColumnarReaderAt: %v", err)
	}
	if seq.Mapped() {
		t.Fatal("ReaderAt mode claims to be mapped")
	}
	gotSeq := collectBlocks(t, seq)
	if len(gotSeq) != len(runs) {
		t.Fatalf("sequential decoded %d runs, want %d", len(gotSeq), len(runs))
	}
	for i := range gotSeq {
		if gotSeq[i] != runs[i] {
			t.Fatalf("sequential run %d mismatch", i)
		}
	}
}

func TestColumnarWriterValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  Run
	}{
		{"bad-domain", Run{Start: 0x1000, Len: 1, Domain: NumDomains}},
		{"zero-len", Run{Start: 0x1000, Len: 0}},
		{"huge-len", Run{Start: 0x1000, Len: maxRunLen + 1}},
		{"unaligned", Run{Start: 0x1001, Len: 1}},
		{"wrapping", Run{Start: ^uint64(0) - 3, Len: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			cw, err := NewColumnarWriter(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := cw.PutRun(tc.run); err == nil {
				t.Fatal("PutRun accepted an invalid run")
			}
			// Sticky: a valid run after the failure still errors.
			if err := cw.PutRun(Run{Start: 0x2000, Len: 1}); err == nil {
				t.Fatal("writer error not sticky")
			}
		})
	}
	if _, err := NewColumnarWriterSize(&bytes.Buffer{}, 8); err == nil {
		t.Fatal("accepted an absurdly small block size")
	}
}

func TestColumnarWriterClosed(t *testing.T) {
	var buf bytes.Buffer
	cw, err := NewColumnarWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.PutRun(Run{Start: 0x1000, Len: 2}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
	if err := cw.PutRun(Run{Start: 0x2000, Len: 1}); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("PutRun after Close = %v, want ErrWriterClosed", err)
	}
}

func TestColumnarHeaderErrors(t *testing.T) {
	runs := colTestRuns(50, 4)
	good := encodeColumnarBytes(t, runs, DefaultBlockBytes)

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF
		if _, err := NewColumnarBytes(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("v1-version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint16(bad[8:10], 1)
		if _, err := NewColumnarBytes(bad); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("truncated-trailer", func(t *testing.T) {
		if _, err := NewColumnarBytes(good[:len(good)-5]); err == nil {
			t.Fatal("accepted a truncated file")
		}
	})
	t.Run("tiny", func(t *testing.T) {
		if _, err := NewColumnarBytes(good[:10]); !errors.Is(err, ErrTruncated) {
			t.Fatal("accepted a tiny file")
		}
	})
	t.Run("v1-file-rejected", func(t *testing.T) {
		var buf bytes.Buffer
		if _, err := EncodeRuns(&buf, runs); err != nil {
			t.Fatal(err)
		}
		if _, err := NewColumnarBytes(buf.Bytes()); !errors.Is(err, ErrBadVersion) {
			t.Fatal("columnar reader accepted a v1 file")
		}
	})
}

// corruptPayloadByte flips one bit inside block i's payload, returning the
// damaged image.
func corruptPayloadByte(t *testing.T, data []byte, f *ColumnarFile, block int, off int) []byte {
	t.Helper()
	m := f.BlockMeta(block)
	bad := append([]byte(nil), data...)
	bad[m.Offset+colFrameSize+int64(off)] ^= 0x10
	return bad
}

func TestColumnarBlockCorruption(t *testing.T) {
	runs := colTestRuns(4000, 5)
	data := encodeColumnarBytes(t, runs, 512)
	f, err := NewColumnarBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() < 5 {
		t.Fatalf("want >= 5 blocks, got %d", f.NumBlocks())
	}
	mid := f.NumBlocks() / 2
	bad := corruptPayloadByte(t, data, f, mid, 20)
	bf, err := NewColumnarBytes(bad)
	if err != nil {
		t.Fatalf("open with damaged block (index intact): %v", err)
	}
	var buf []Run
	for i := 0; i < bf.NumBlocks(); i++ {
		buf, err = bf.BlockRuns(i, buf)
		if i == mid {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("damaged block decode err = %v, want ErrCorrupt", err)
			}
		} else if err != nil {
			t.Fatalf("undamaged block %d: %v", i, err)
		}
	}
}

func TestColumnarSalvageDropsExactlyDamagedBlock(t *testing.T) {
	runs := colTestRuns(4000, 6)
	data := encodeColumnarBytes(t, runs, 512)
	f, err := NewColumnarBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	mid := f.NumBlocks() / 2
	m := f.BlockMeta(mid)
	bad := corruptPayloadByte(t, data, f, mid, 7)

	sf, dmg, err := SalvageColumnarBytes(bad)
	if err != nil {
		t.Fatalf("SalvageColumnarBytes: %v", err)
	}
	if !dmg.Damaged() || dmg.DroppedBlocks != 1 || dmg.DroppedRefs != m.Refs || dmg.IndexRebuilt {
		t.Fatalf("damage = %+v, want exactly block %d (%d refs) dropped, index kept", dmg, mid, m.Refs)
	}
	if !errors.Is(dmg.Err, ErrCorrupt) {
		t.Fatalf("damage err = %v, want ErrCorrupt", dmg.Err)
	}
	if sf.NumBlocks() != f.NumBlocks()-1 {
		t.Fatalf("salvaged %d blocks, want %d", sf.NumBlocks(), f.NumBlocks()-1)
	}
	if sf.Refs() != f.Refs()-m.Refs {
		t.Fatalf("salvaged refs %d, want %d", sf.Refs(), f.Refs()-m.Refs)
	}

	// The surviving blocks are exactly the original trace minus that block.
	var want []Run
	var buf []Run
	for i := 0; i < f.NumBlocks(); i++ {
		if i == mid {
			continue
		}
		buf, err = f.BlockRuns(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, buf...)
	}
	got := collectBlocks(t, sf)
	if len(got) != len(want) {
		t.Fatalf("salvaged %d runs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("salvaged run %d mismatch", i)
		}
	}
}

func TestColumnarSalvageTruncated(t *testing.T) {
	runs := colTestRuns(4000, 7)
	data := encodeColumnarBytes(t, runs, 512)
	f, err := NewColumnarBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the blocks: trailer and index gone entirely.
	cutBlock := f.NumBlocks() * 2 / 3
	cut := f.BlockMeta(cutBlock).Offset + 11 // mid-frame
	sf, dmg, err := SalvageColumnarBytes(data[:cut])
	if err != nil {
		t.Fatalf("SalvageColumnarBytes: %v", err)
	}
	if !dmg.IndexRebuilt {
		t.Fatal("expected a rebuilt index after truncation")
	}
	if !errors.Is(dmg.Err, ErrTruncated) && !errors.Is(dmg.Err, ErrCorrupt) {
		t.Fatalf("damage err = %v, want typed", dmg.Err)
	}
	if sf.NumBlocks() != cutBlock {
		t.Fatalf("salvaged %d blocks, want the %d-block prefix", sf.NumBlocks(), cutBlock)
	}
	got := collectBlocks(t, sf)
	var want []Run
	var buf []Run
	for i := 0; i < cutBlock; i++ {
		buf, err = f.BlockRuns(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, buf...)
	}
	if len(got) != len(want) {
		t.Fatalf("salvaged %d runs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("salvaged run %d mismatch", i)
		}
	}
}

func TestColumnarSalvageIntact(t *testing.T) {
	runs := colTestRuns(1000, 8)
	data := encodeColumnarBytes(t, runs, 1024)
	sf, dmg, err := SalvageColumnarBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if dmg.Damaged() {
		t.Fatalf("intact file reported damage: %+v", dmg)
	}
	if got := collectBlocks(t, sf); len(got) != len(runs) {
		t.Fatalf("salvaged %d runs, want %d", len(got), len(runs))
	}
}

func TestColumnarSeekRef(t *testing.T) {
	runs := colTestRuns(3000, 9)
	data := encodeColumnarBytes(t, runs, 512)
	f, err := NewColumnarBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range runs {
		total += r.Len
	}
	// Every position must land in the block whose cumulative range holds it.
	step := total/997 + 1
	for pos := int64(0); pos < total; pos += step {
		blk, before, ok := f.SeekRef(pos)
		if !ok {
			t.Fatalf("SeekRef(%d) not ok", pos)
		}
		m := f.BlockMeta(blk)
		if pos < before || pos >= before+m.Refs {
			t.Fatalf("SeekRef(%d) -> block %d covering [%d,%d)", pos, blk, before, before+m.Refs)
		}
	}
	if _, _, ok := f.SeekRef(total); ok {
		t.Fatal("SeekRef past the end succeeded")
	}
	if _, _, ok := f.SeekRef(-1); ok {
		t.Fatal("SeekRef(-1) succeeded")
	}
}

func TestBlockRunSource(t *testing.T) {
	runs := colTestRuns(2000, 10)
	data := encodeColumnarBytes(t, runs, 512)
	f, err := NewColumnarBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	src := NewBlockRunSource(f)
	for i, want := range runs {
		got, ok := src.NextRun()
		if !ok {
			t.Fatalf("NextRun ended at %d, want %d runs (err %v)", i, len(runs), src.Err())
		}
		if got != want {
			t.Fatalf("run %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := src.NextRun(); ok || src.Err() != nil {
		t.Fatalf("NextRun past end: ok or err %v", src.Err())
	}

	// Per-ref view matches the expanded trace.
	src.Reset()
	want := Expand(runs)
	for i, w := range want {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("Next ended at %d/%d (err %v)", i, len(want), src.Err())
		}
		if got != w {
			t.Fatalf("ref %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := src.Next(); ok || src.Err() != nil {
		t.Fatalf("Next past end: ok or err %v", src.Err())
	}

	// Mixing NextRun into a half-expanded run is an error.
	src.Reset()
	if _, ok := src.Next(); !ok {
		t.Fatal("Next failed")
	}
	if runs[0].Len > 1 {
		if _, ok := src.NextRun(); ok || src.Err() == nil {
			t.Fatal("NextRun mid-expansion did not fail")
		}
	}
}

func TestRunsBlocksMatchesColumnar(t *testing.T) {
	runs := colTestRuns(2500, 11)
	data := encodeColumnarBytes(t, runs, 768)
	f, err := NewColumnarBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	rb := NewRunsBlocks(runs, 100)
	if got := collectBlocks(t, rb); len(got) != len(runs) {
		t.Fatalf("RunsBlocks yielded %d runs, want %d", len(got), len(runs))
	}
	// Same totals, same seek answers at every position.
	var total int64
	for _, r := range runs {
		total += r.Len
	}
	for pos := int64(0); pos < total; pos += total/317 + 1 {
		cb, cbefore, cok := f.SeekRef(pos)
		rbk, rbefore, rok := rb.SeekRef(pos)
		if cok != rok {
			t.Fatalf("SeekRef(%d) ok mismatch", pos)
		}
		cm, rm := f.BlockMeta(cb), rb.BlockMeta(rbk)
		if pos < cbefore || pos >= cbefore+cm.Refs || pos < rbefore || pos >= rbefore+rm.Refs {
			t.Fatalf("SeekRef(%d) out of covering range", pos)
		}
	}
}

func TestColumnarStats(t *testing.T) {
	runs := colTestRuns(2000, 12)
	data := encodeColumnarBytes(t, runs, 1024)
	f, err := NewColumnarBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != int64(len(runs)) || st.Refs != f.Refs() || st.Blocks != f.NumBlocks() {
		t.Fatalf("stats %+v disagree with file", st)
	}
	var widths int64
	for _, c := range st.DeltaWidth {
		widths += c
	}
	if widths != st.Runs {
		t.Fatalf("delta-width histogram counts %d runs, want %d", widths, st.Runs)
	}
	if st.BytesPerRef <= 0 || st.BytesPerRef > 8 {
		t.Fatalf("bytes/ref %.3f implausible", st.BytesPerRef)
	}
}

// TestColumnarBlockRunsAllocFree pins the zero-copy claim: decoding blocks
// through a warm reused buffer in mapped (in-memory) mode allocates nothing.
func TestColumnarBlockRunsAllocFree(t *testing.T) {
	runs := colTestRuns(3000, 13)
	data := encodeColumnarBytes(t, runs, 4096)
	f, err := NewColumnarBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Run, 0, 4096)
	// Warm once (first decode may grow buf).
	for i := 0; i < f.NumBlocks(); i++ {
		if buf, err = f.BlockRuns(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < f.NumBlocks(); i++ {
			var e error
			if buf, e = f.BlockRuns(i, buf); e != nil {
				t.Fatal(e)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("BlockRuns allocated %.1f times per full pass, want 0", allocs)
	}
}

func BenchmarkColumnarDecode(b *testing.B) {
	runs := colTestRuns(100000, 14)
	var buf bytes.Buffer
	if _, err := EncodeColumnarSize(&buf, runs, DefaultBlockBytes); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	f, err := NewColumnarBytes(data)
	if err != nil {
		b.Fatal(err)
	}
	var refs int64
	for _, r := range runs {
		refs += r.Len
	}
	b.SetBytes(int64(len(data)))
	b.ReportMetric(float64(refs), "refs/op")
	dst := make([]Run, 0, 1<<17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for blk := 0; blk < f.NumBlocks(); blk++ {
			var e error
			if dst, e = f.BlockRuns(blk, dst); e != nil {
				b.Fatal(e)
			}
		}
	}
}

func BenchmarkColumnarEncode(b *testing.B) {
	runs := colTestRuns(100000, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := EncodeColumnarSize(&buf, runs, DefaultBlockBytes); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}
