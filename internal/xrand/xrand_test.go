package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 generator looks degenerate: %d distinct of 100", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.06 {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	sum := 0.0
	const draws = 50000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %.4f", p)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	for _, m := range []float64{2, 5, 16, 50} {
		sum := 0
		const draws = 20000
		for i := 0; i < draws; i++ {
			sum += s.Geometric(m)
		}
		got := float64(sum) / draws
		if math.Abs(got-m) > m*0.1 {
			t.Errorf("Geometric(%v) mean %.2f, want within 10%%", m, got)
		}
	}
}

func TestGeometricMinimum(t *testing.T) {
	s := New(17)
	if v := s.Geometric(0.5); v != 1 {
		t.Fatalf("Geometric(0.5) = %d, want 1", v)
	}
	if v := s.Geometric(1); v != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", v)
	}
	for i := 0; i < 1000; i++ {
		if v := s.Geometric(4); v < 1 {
			t.Fatalf("Geometric(4) = %d < 1", v)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	s := New(19)
	const n, draws = 64, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := s.Zipf(n, 3)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// With theta=3 the low quarter should dominate the top quarter.
	lo, hi := 0, 0
	for i := 0; i < n/4; i++ {
		lo += counts[i]
		hi += counts[n-1-i]
	}
	if lo <= hi*3 {
		t.Fatalf("Zipf not skewed: low quarter %d, high quarter %d", lo, hi)
	}
}

func TestZipfDegenerate(t *testing.T) {
	s := New(23)
	if v := s.Zipf(1, 2); v != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", v)
	}
	if v := s.Zipf(0, 2); v != 0 {
		t.Fatalf("Zipf(0) = %d, want 0", v)
	}
}

func TestPerm(t *testing.T) {
	s := New(29)
	p := make([]int, 50)
	s.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	base := New(31)
	a := base.Fork(1)
	b := base.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams correlated: %d/100 equal", same)
	}
}

func TestForkDeterminism(t *testing.T) {
	a := New(37).Fork(9)
	b := New(37).Fork(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal forks diverged")
		}
	}
}

func TestSqrtFloat(t *testing.T) {
	for _, u := range []float64{1e-9, 0.001, 0.25, 0.5, 0.81, 1.0} {
		got := sqrtFloat(u)
		want := math.Sqrt(u)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("sqrtFloat(%v) = %v, want %v", u, got, want)
		}
	}
	if sqrtFloat(0) != 0 {
		t.Error("sqrtFloat(0) != 0")
	}
}

func TestPowFloat(t *testing.T) {
	for _, tc := range []struct{ u, theta float64 }{
		{0.5, 1}, {0.5, 2}, {0.5, 3}, {0.25, 0.5}, {0.9, 2.5}, {0.1, 1.75},
	} {
		got := powFloat(tc.u, tc.theta)
		want := math.Pow(tc.u, tc.theta)
		if math.Abs(got-want) > 1e-4*math.Max(want, 1e-9) {
			t.Errorf("powFloat(%v, %v) = %v, want %v", tc.u, tc.theta, got, want)
		}
	}
	if powFloat(1, 5) != 1 {
		t.Error("powFloat(1, θ) != 1")
	}
	if powFloat(0, 5) != 0 {
		t.Error("powFloat(0, θ) != 0")
	}
}

// Property: Uint64n(n) < n for arbitrary n, and the generator is total (no
// infinite rejection loops) for extreme moduli.
func TestUint64nProperty(t *testing.T) {
	s := New(41)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= s.Intn(1000)
	}
	_ = sink
}
