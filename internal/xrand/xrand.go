// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every trace, workload, and experiment trial in ibsim is seeded, and results
// must be bit-for-bit reproducible across runs, platforms, and Go releases.
// math/rand's generator is stable in practice but its convenience API mixes
// global state into results; this package keeps all state explicit and the
// algorithm (splitmix64 seeding a xoshiro256** core) pinned by our own tests.
package xrand

import "math/bits"

// Source is a deterministic pseudo-random number generator. The zero value is
// not useful; construct with New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next output of the splitmix64
// generator. It is used only to expand a 64-bit seed into the 256-bit
// xoshiro state, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield statistically
// independent streams; equal seeds yield identical streams.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// The all-zero state is invalid for xoshiro; splitmix64 cannot produce
	// four consecutive zeros, but guard anyway for robustness.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17

	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)

	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from the geometric distribution with mean m
// (number of Bernoulli trials until first success, minimum 1). Values of
// m <= 1 always return 1.
func (s *Source) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	// P(success) = 1/m, inverse-CDF sampling. The count is capped to keep a
	// single pathological draw from dominating a synthetic trace.
	p := 1 / m
	f := s.Float64()
	// n = ceil(log(1-f) / log(1-p))
	n := 1
	q := 1 - p
	acc := q
	for f > 1-acc && n < 1<<20 {
		n++
		acc *= q
	}
	return n
}

// Zipf returns a sample in [0, n) from a Zipf-like distribution with exponent
// theta (0 < theta). Small indices are most probable. It uses a simple
// inverse-power transform that is adequate for workload synthesis (exact
// Zipfian CDF inversion is unnecessary for our purposes and this transform is
// fast and deterministic).
func (s *Source) Zipf(n int, theta float64) int {
	if n <= 1 {
		return 0
	}
	// Draw u in (0,1], map through u^theta to skew toward 0.
	u := 1 - s.Float64() // (0, 1]
	v := powFloat(u, theta)
	idx := int(v * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// powFloat computes u**theta for u in (0,1] and theta > 0 without importing
// math (keeping the package dependency-free matters less than determinism;
// exp/log are correctly rounded on all platforms Go supports, but a local
// implementation documents exactly what we compute). It uses
// exp(theta*ln(u)) via the standard library would be fine; we implement a
// small series-free approach: repeated square-and-multiply on the binary
// expansion of theta, with a fixed 20-bit fraction.
func powFloat(u, theta float64) float64 {
	if u >= 1 {
		return 1
	}
	if u <= 0 {
		return 0
	}
	// Integer part by repeated multiplication.
	result := 1.0
	ip := int(theta)
	frac := theta - float64(ip)
	base := u
	for ip > 0 {
		if ip&1 == 1 {
			result *= base
		}
		base *= base
		ip >>= 1
	}
	// Fractional part via 20 binary digits: u^(1/2), u^(1/4), ...
	root := u
	for i := 0; i < 20 && frac > 0; i++ {
		root = sqrtFloat(root)
		frac *= 2
		if frac >= 1 {
			result *= root
			frac -= 1
		}
	}
	return result
}

// sqrtFloat is Newton's method square root for u in (0, 1].
func sqrtFloat(u float64) float64 {
	if u <= 0 {
		return 0
	}
	x := u
	if x > 0.5 {
		x = 1 // better starting point near 1
	}
	for i := 0; i < 30; i++ {
		x = 0.5 * (x + u/x)
	}
	return x
}

// Perm fills p with a uniformly random permutation of [0, len(p)).
func (s *Source) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// State returns the generator's full internal state. Together with SetState
// it lets callers snapshot and later resume a stream bit-identically —
// the basis for the synth generator's seekable checkpoints.
func (s *Source) State() [4]uint64 { return s.s }

// SetState overwrites the generator's internal state with a value previously
// obtained from State. Restoring an all-zero state is invalid for xoshiro and
// is silently replaced by the same guard constant New uses.
func (s *Source) SetState(state [4]uint64) {
	if state[0]|state[1]|state[2]|state[3] == 0 {
		state[0] = 0x9e3779b97f4a7c15
	}
	s.s = state
}

// Fork returns a new Source whose stream is deterministically derived from
// the receiver's current state and the given label. Forking lets independent
// subsystems (e.g., each address space in a workload) draw from independent
// streams while remaining reproducible.
func (s *Source) Fork(label uint64) *Source {
	mix := s.Uint64() ^ (label * 0x9e3779b97f4a7c15)
	return New(mix)
}
