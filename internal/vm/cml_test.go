package vm

import (
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/trace"
)

func TestCMLValidation(t *testing.T) {
	m := MustNewMapper(Config{Policy: RandomAlloc, Seed: 1})
	if _, err := NewCML(m, 0, 4, 1000); err == nil {
		t.Error("zero colors accepted")
	}
	if _, err := NewCML(m, 12, 4, 1000); err == nil {
		t.Error("non-power-of-two colors accepted")
	}
	if _, err := NewCML(m, 16, 0, 1000); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewCML(m, 16, 4, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestCMLTranslateConsistent(t *testing.T) {
	m := MustNewMapper(Config{Policy: RandomAlloc, Seed: 2})
	c, err := NewCML(m, 16, 4, 100000)
	if err != nil {
		t.Fatal(err)
	}
	a1 := c.Translate(0x1234, trace.User)
	a2 := c.Translate(0x1234, trace.User)
	if a1 != a2 {
		t.Fatal("translation unstable")
	}
	if a1&0xFFF != 0x234 {
		t.Fatal("offset not preserved")
	}
}

func TestCMLRecolorsHotPage(t *testing.T) {
	m := MustNewMapper(Config{Policy: Sequential})
	c, err := NewCML(m, 16, 4, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x4000)
	before := c.Translate(addr, trace.User)
	// Report repeated misses on the page: crossing the threshold recolors.
	for i := 0; i < 4; i++ {
		c.ObserveMiss(c.Translate(addr, trace.User), addr, trace.User)
	}
	after := c.Translate(addr, trace.User)
	if c.Remaps != 1 {
		t.Fatalf("Remaps = %d, want 1", c.Remaps)
	}
	if before>>12 == after>>12 {
		t.Fatal("page not moved to a new frame")
	}
	if after&0xFFF != addr&0xFFF {
		t.Fatal("offset lost after recolor")
	}
	// Re-observing misses on the new frame can trigger another remap, but
	// the counter for the old frame must be gone.
	if got := c.counts[before>>12]; got != 0 {
		t.Fatalf("old frame counter survived: %d", got)
	}
}

func TestCMLWindowResets(t *testing.T) {
	m := MustNewMapper(Config{Policy: Sequential})
	c, _ := NewCML(m, 16, 10, 5) // threshold 10 can never fire with window 5
	addr := uint64(0x8000)
	for i := 0; i < 50; i++ {
		c.ObserveMiss(c.Translate(addr, trace.User), addr, trace.User)
	}
	if c.Remaps != 0 {
		t.Fatalf("remaps fired despite window < threshold: %d", c.Remaps)
	}
}

// End-to-end: a working set that *fits* the cache but collides under random
// page mapping — exactly the pathology CML exists to repair. Recoloring the
// hot colliding pages onto empty colors should remove the conflict misses.
func TestCMLReducesConflicts(t *testing.T) {
	const cacheSize = 64 * 1024
	colors := cacheSize / 4096 // 16
	const pages = 12           // fits: 12 of 16 page slots
	run := func(useCML bool) int64 {
		m := MustNewMapper(Config{Policy: RandomAlloc, Seed: 77})
		cml, err := NewCML(m, colors, 16, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		c := cache.MustNew(cache.Config{Size: cacheSize, LineSize: 32, Assoc: 1})
		misses := int64(0)
		for i := 0; i < 300_000; i++ {
			// Round-robin over the pages, touching every line of each page
			// over time: colliding pages evict each other continually.
			page := uint64(i % pages)
			addr := page<<12 | uint64((i/pages)%128)<<5
			pa := cml.Translate(addr, trace.User)
			if !c.Access(pa) {
				misses++
				if useCML {
					cml.ObserveMiss(pa, addr, trace.User)
				}
			}
		}
		return misses
	}
	plain := run(false)
	with := run(true)
	if plain < 10_000 {
		t.Fatalf("random mapping produced no conflict pathology to repair (misses = %d)", plain)
	}
	if with >= plain/4 {
		t.Fatalf("CML did not repair the conflicts: %d vs %d", with, plain)
	}
}
