package vm

import (
	"fmt"

	"ibsim/internal/trace"
)

// CML models a Cache Miss Lookaside buffer (Bershad, Lee, Romer & Chen,
// ASPLOS 1994), the mechanism the paper's Figure 5 discussion positions
// associative L2 caches against: "on-chip, associative L2 caches offer an
// attractive alternative to the recently-proposed cache miss lookaside
// buffers, which detect and remove conflict misses only after they begin to
// affect performance."
//
// The CML hardware counts cache misses per physical page; when a page's
// miss count crosses a threshold within a detection window, the OS is
// interrupted and recolors (remaps) the page to the currently least-loaded
// cache color. Detection is therefore reactive — the misses that triggered
// it have already been paid, which is exactly the paper's criticism.
type CML struct {
	mapper *Mapper
	// counts[pfn] accumulates misses in the current window.
	counts map[uint64]int
	// occupancy[color] counts active pages (pages that have missed at least
	// once) currently mapped to each color; recoloring targets the
	// least-occupied color.
	occupancy []int
	// knownColor records each active page's current color so occupancy can
	// be maintained across remaps.
	knownColor map[mapKey]int
	// remap[key] overrides the mapper's translation for recolored pages.
	remap map[mapKey]uint64
	// cooled marks pages recolored in the current window: a page moves at
	// most once per detection window, so its own cold refill misses cannot
	// immediately re-trigger detection.
	cooled map[mapKey]bool

	threshold int
	window    int64
	seen      int64

	pageShift uint
	colors    uint64
	nextFree  uint64 // frame-group counter for recolored pages

	// Remaps counts pages recolored (each one models an OS interrupt plus
	// a page copy).
	Remaps int
}

// NewCML wraps a Mapper with CML detection for a cache with the given
// number of colors (cache bytes per way ÷ page size). threshold is the
// misses-per-page that trigger recoloring within each window of misses.
func NewCML(m *Mapper, colors int, threshold int, window int64) (*CML, error) {
	if colors <= 0 || colors&(colors-1) != 0 {
		return nil, fmt.Errorf("vm: CML colors %d must be a positive power of two", colors)
	}
	if threshold < 1 {
		return nil, fmt.Errorf("vm: CML threshold %d must be >= 1", threshold)
	}
	if window < 1 {
		return nil, fmt.Errorf("vm: CML window %d must be >= 1", window)
	}
	return &CML{
		mapper:     m,
		counts:     make(map[uint64]int),
		occupancy:  make([]int, colors),
		knownColor: make(map[mapKey]int),
		remap:      make(map[mapKey]uint64),
		cooled:     make(map[mapKey]bool),
		threshold:  threshold,
		window:     window,
		pageShift:  m.pageShift,
		colors:     uint64(colors),
		nextFree:   1 << 30 >> m.pageShift, // recolored pages live in a high frame region
	}, nil
}

// Translate translates addr, honoring any recoloring already performed.
func (c *CML) Translate(addr uint64, d trace.Domain) uint64 {
	key := mapKey{domain: d, vpn: addr >> c.pageShift}
	if pfn, ok := c.remap[key]; ok {
		return pfn<<c.pageShift | (addr & uint64(c.mapper.cfg.PageSize-1))
	}
	return c.mapper.Translate(addr, d)
}

// ObserveMiss records a cache miss at the translated physical address; when
// the page crosses the threshold the page is recolored to the least-loaded
// color. Call with the address returned by Translate.
func (c *CML) ObserveMiss(paddr uint64, addr uint64, d trace.Domain) {
	pfn := paddr >> c.pageShift
	key := mapKey{domain: d, vpn: addr >> c.pageShift}
	if _, known := c.knownColor[key]; !known {
		color := int(pfn & (c.colors - 1))
		c.knownColor[key] = color
		c.occupancy[color]++
	}
	c.counts[pfn]++
	c.seen++
	if c.seen >= c.window {
		// New detection window: miss counters and remap cooldowns reset;
		// occupancy persists (pages stay where they are).
		c.seen = 0
		c.counts = make(map[uint64]int)
		c.cooled = make(map[mapKey]bool)
		return
	}
	if c.counts[pfn] < c.threshold || c.cooled[key] {
		return
	}
	// Recolor: move the page to the least-occupied color.
	best := 0
	for col := 1; col < len(c.occupancy); col++ {
		if c.occupancy[col] < c.occupancy[best] {
			best = col
		}
	}
	group := c.nextFree / c.colors
	newPFN := group*c.colors + uint64(best)
	c.nextFree += c.colors
	c.occupancy[c.knownColor[key]]--
	c.occupancy[best]++
	c.knownColor[key] = best
	c.remap[key] = newPFN
	c.cooled[key] = true
	delete(c.counts, pfn)
	c.Remaps++
}
