package vm

import (
	"strings"
	"testing"
	"testing/quick"

	"ibsim/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{PageSize: 3000},
		{PageSize: -4096},
		{PageSize: 4096, Frames: -1},
		{PageSize: 4096, Colors: 3},
		{PageSize: 4096, Colors: -2},
		{PageSize: 4096, Policy: PageColoring}, // needs Colors
		{PageSize: 4096, Policy: BinHopping},   // needs Colors
		{PageSize: 4096, Policy: BinHopping, Colors: 8, Frames: 4},
	}
	for _, cfg := range bad {
		if _, err := NewMapper(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewMapper(Config{}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		RandomAlloc: "random", Sequential: "sequential",
		PageColoring: "page-coloring", BinHopping: "bin-hopping",
	} {
		if got := p.String(); got != want {
			t.Errorf("%v != %q", got, want)
		}
	}
	if !strings.HasPrefix(Policy(99).String(), "Policy(") {
		t.Error("unknown policy name")
	}
}

func TestTranslateStable(t *testing.T) {
	m := MustNewMapper(Config{Policy: RandomAlloc, Seed: 1})
	a1 := m.Translate(0x1234, trace.User)
	a2 := m.Translate(0x1234, trace.User)
	if a1 != a2 {
		t.Fatal("same page translated differently across calls")
	}
	// Offset preserved.
	if a1&0xFFF != 0x234 {
		t.Fatalf("offset not preserved: %x", a1)
	}
	// Same page, different offset: same frame.
	a3 := m.Translate(0x1FFF, trace.User)
	if a3>>12 != a1>>12 {
		t.Fatal("same page, different frame")
	}
}

func TestDomainsAreSeparateSpaces(t *testing.T) {
	m := MustNewMapper(Config{Policy: Sequential})
	u := m.Translate(0x1000, trace.User)
	k := m.Translate(0x1000, trace.Kernel)
	if u == k {
		t.Fatal("same VPN in different domains shared a frame")
	}
	if m.Allocated() != 2 {
		t.Fatalf("Allocated = %d", m.Allocated())
	}
}

func TestSequentialPolicy(t *testing.T) {
	m := MustNewMapper(Config{Policy: Sequential})
	for i := uint64(0); i < 10; i++ {
		got := m.Translate(i*0x10000, trace.User) // distinct pages
		if got>>12 != i {
			t.Fatalf("page %d got frame %d", i, got>>12)
		}
	}
}

func TestPageColoringMatchesVirtualColor(t *testing.T) {
	const colors = 16
	m := MustNewMapper(Config{Policy: PageColoring, Colors: colors})
	for i := uint64(0); i < 200; i++ {
		vaddr := i * 4096 * 3 // arbitrary stride
		p := m.Translate(vaddr, trace.User)
		vColor := (vaddr >> 12) % colors
		pColor := (p >> 12) % colors
		if vColor != pColor {
			t.Fatalf("page %d: vcolor %d != pcolor %d", i, vColor, pColor)
		}
	}
}

func TestBinHoppingCyclesColors(t *testing.T) {
	const colors = 8
	m := MustNewMapper(Config{Policy: BinHopping, Colors: colors})
	counts := make([]int, colors)
	for i := uint64(0); i < 64; i++ {
		p := m.Translate(i*0x100000, trace.User) // all distinct pages
		counts[(p>>12)%colors]++
	}
	for c, n := range counts {
		if n != 8 {
			t.Fatalf("color %d allocated %d times, want 8 (round-robin)", c, n)
		}
	}
}

func TestRandomPolicyVariesAcrossTrials(t *testing.T) {
	m := MustNewMapper(Config{Policy: RandomAlloc, Seed: 5})
	first := m.Translate(0x1000, trace.User)
	m.ResetTrial(1)
	second := m.Translate(0x1000, trace.User)
	m.ResetTrial(2)
	third := m.Translate(0x1000, trace.User)
	if first == second && second == third {
		t.Fatal("three trials produced identical mappings (suspicious)")
	}
	// Trials individually reproducible.
	m.ResetTrial(1)
	if got := m.Translate(0x1000, trace.User); got != second {
		t.Fatal("trial 1 not reproducible")
	}
}

func TestResetReproducesOriginalStream(t *testing.T) {
	m := MustNewMapper(Config{Policy: RandomAlloc, Seed: 9})
	var orig []uint64
	for i := uint64(0); i < 20; i++ {
		orig = append(orig, m.Translate(i*0x10000, trace.User))
	}
	m.Reset()
	for i := uint64(0); i < 20; i++ {
		if got := m.Translate(i*0x10000, trace.User); got != orig[i] {
			t.Fatalf("Reset changed mapping %d", i)
		}
	}
}

func TestBoundedFrames(t *testing.T) {
	m := MustNewMapper(Config{Policy: Sequential, Frames: 4})
	seen := map[uint64]bool{}
	for i := uint64(0); i < 16; i++ {
		p := m.Translate(i*0x10000, trace.User)
		pfn := p >> 12
		if pfn >= 4 {
			t.Fatalf("frame %d out of bounds", pfn)
		}
		seen[pfn] = true
	}
	if len(seen) != 4 {
		t.Fatalf("bounded allocator used %d frames, want 4", len(seen))
	}
}

func TestSource(t *testing.T) {
	refs := []trace.Ref{
		{Addr: 0x1000, Kind: trace.IFetch, Domain: trace.User},
		{Addr: 0x1004, Kind: trace.IFetch, Domain: trace.User},
		{Addr: 0x1000, Kind: trace.DRead, Domain: trace.Kernel},
	}
	m := MustNewMapper(Config{Policy: Sequential})
	src := NewSource(trace.NewSliceSource(refs), m)
	out, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d refs", len(out))
	}
	// Same page sequential refs stay in one frame; kind/domain preserved.
	if out[0].Addr>>12 != out[1].Addr>>12 {
		t.Fatal("intra-page refs split across frames")
	}
	if out[0].Addr>>12 == out[2].Addr>>12 {
		t.Fatal("kernel page shared user frame")
	}
	if out[2].Kind != trace.DRead || out[2].Domain != trace.Kernel {
		t.Fatal("ref metadata not preserved")
	}
}

func TestMustNewMapperPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNewMapper(Config{PageSize: 3})
}

// Property: translation preserves page offsets and is a function (same input
// → same output) for all policies.
func TestTranslateProperties(t *testing.T) {
	f := func(addrs []uint32, polSel uint8) bool {
		pol := []Policy{RandomAlloc, Sequential, PageColoring, BinHopping}[polSel%4]
		m := MustNewMapper(Config{Policy: pol, Colors: 16, Seed: 42})
		for _, a := range addrs {
			addr := uint64(a)
			p1 := m.Translate(addr, trace.User)
			p2 := m.Translate(addr, trace.User)
			if p1 != p2 {
				return false
			}
			if p1&0xFFF != addr&0xFFF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
