// Package vm models virtual-memory page mapping for physically-indexed
// caches.
//
// The paper's Figure 5 shows that physically-indexed I-caches exhibit
// run-to-run performance variability because "the allocation of virtual
// pages to physical cache page frames is different from run to run of a
// given workload": the OS hands out physical frames in an effectively random
// order, so the pattern of cache conflicts changes with every run. This
// package reproduces that mechanism with pluggable allocation policies —
// random (the Ultrix/Mach behavior that causes the variability), sequential,
// and the two conflict-avoiding policies from the literature the paper cites
// (page coloring and bin hopping, per Kessler & Hill and Bray et al.).
package vm

import (
	"fmt"

	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

// Policy selects how physical frames are assigned to virtual pages.
type Policy uint8

const (
	// RandomAlloc assigns a random free frame — the unmanaged OS behavior
	// that produces Figure 5's variability.
	RandomAlloc Policy = iota
	// Sequential assigns frames in ascending order of first touch.
	Sequential
	// PageColoring assigns a frame whose cache color equals the virtual
	// page's color, making a physically-indexed cache behave like a
	// virtually-indexed one.
	PageColoring
	// BinHopping cycles through cache colors round-robin on successive
	// allocations, spreading pages evenly across the cache.
	BinHopping
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RandomAlloc:
		return "random"
	case Sequential:
		return "sequential"
	case PageColoring:
		return "page-coloring"
	case BinHopping:
		return "bin-hopping"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Config describes a page-mapping environment.
type Config struct {
	// PageSize is the page size in bytes; a power of two. Default 4096.
	PageSize int
	// Frames is the number of physical frames available. Zero means
	// unbounded (frames are never reused). When bounded, allocation wraps:
	// frames are reused without invalidation, which is acceptable for
	// cache-index studies (two pages sharing a frame alias harmlessly).
	Frames int
	// Colors is the number of cache colors (cache bytes per way ÷ page
	// size), needed by PageColoring and BinHopping. Zero disables coloring
	// constraints (the two policies then degrade to Sequential).
	Colors int
	// Policy selects the allocation policy.
	Policy Policy
	// Seed seeds RandomAlloc.
	Seed uint64
}

// Mapper lazily assigns physical frames to (domain, virtual page) pairs on
// first touch and translates addresses. Each protection domain is a distinct
// address space: the same virtual page in two domains gets two frames.
type Mapper struct {
	cfg       Config
	pageShift uint
	pageMask  uint64
	rng       *xrand.Source
	table     map[mapKey]uint64
	nextFrame uint64
	nextColor uint64
	allocated int
}

type mapKey struct {
	domain trace.Domain
	vpn    uint64
}

// NewMapper validates cfg and returns an empty Mapper.
func NewMapper(cfg Config) (*Mapper, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.PageSize <= 0 || cfg.PageSize&(cfg.PageSize-1) != 0 {
		return nil, fmt.Errorf("vm: page size %d must be a positive power of two", cfg.PageSize)
	}
	if cfg.Frames < 0 {
		return nil, fmt.Errorf("vm: frames %d must be non-negative", cfg.Frames)
	}
	if cfg.Colors < 0 || (cfg.Colors != 0 && cfg.Colors&(cfg.Colors-1) != 0) {
		return nil, fmt.Errorf("vm: colors %d must be zero or a power of two", cfg.Colors)
	}
	if (cfg.Policy == PageColoring || cfg.Policy == BinHopping) && cfg.Colors == 0 {
		return nil, fmt.Errorf("vm: policy %v requires Colors > 0", cfg.Policy)
	}
	if cfg.Frames != 0 && cfg.Colors != 0 && cfg.Frames < cfg.Colors {
		return nil, fmt.Errorf("vm: frames %d < colors %d", cfg.Frames, cfg.Colors)
	}
	m := &Mapper{
		cfg:      cfg,
		pageMask: uint64(cfg.PageSize - 1),
		table:    make(map[mapKey]uint64),
		rng:      xrand.New(cfg.Seed ^ 0x9a6e),
	}
	for p := cfg.PageSize; p > 1; p >>= 1 {
		m.pageShift++
	}
	return m, nil
}

// MustNewMapper is NewMapper but panics on error.
func MustNewMapper(cfg Config) *Mapper {
	m, err := NewMapper(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the mapper's configuration.
func (m *Mapper) Config() Config { return m.cfg }

// Translate returns the physical address for addr in domain d, allocating a
// frame on first touch of the page.
func (m *Mapper) Translate(addr uint64, d trace.Domain) uint64 {
	vpn := addr >> m.pageShift
	key := mapKey{domain: d, vpn: vpn}
	pfn, ok := m.table[key]
	if !ok {
		pfn = m.allocate(vpn)
		m.table[key] = pfn
	}
	return pfn<<m.pageShift | (addr & m.pageMask)
}

// allocate picks a frame for a new page per the configured policy.
func (m *Mapper) allocate(vpn uint64) uint64 {
	m.allocated++
	colors := uint64(m.cfg.Colors)
	var pfn uint64
	switch m.cfg.Policy {
	case RandomAlloc:
		if m.cfg.Frames > 0 {
			pfn = m.rng.Uint64n(uint64(m.cfg.Frames))
		} else {
			// Unbounded: random frame in a large nominal memory (1M frames
			// = 4 GB at 4-KB pages), plenty to make index bits uniform.
			pfn = m.rng.Uint64n(1 << 20)
		}
	case Sequential:
		pfn = m.nextFrame
		m.nextFrame++
	case PageColoring:
		// Frame color must match virtual color. Successive pages of the
		// same color stack into successive color groups.
		color := vpn & (colors - 1)
		group := m.nextFrame / colors // crude group counter; advance per alloc
		pfn = group*colors + color
		m.nextFrame++
	case BinHopping:
		color := m.nextColor & (colors - 1)
		m.nextColor++
		group := m.nextFrame / colors
		pfn = group*colors + color
		m.nextFrame++
	}
	if m.cfg.Frames > 0 {
		pfn %= uint64(m.cfg.Frames)
	}
	return pfn
}

// Allocated returns the number of pages mapped so far.
func (m *Mapper) Allocated() int { return m.allocated }

// Reset discards all mappings, re-seeding the random stream so the next run
// reproduces the same allocation sequence. Use ResetTrial to draw a fresh
// random mapping (a new "run" in Figure 5's sense).
func (m *Mapper) Reset() {
	m.table = make(map[mapKey]uint64)
	m.nextFrame = 0
	m.nextColor = 0
	m.allocated = 0
	m.rng = xrand.New(m.cfg.Seed ^ 0x9a6e)
}

// ResetTrial discards all mappings and advances to trial's random stream, so
// successive trials see different (but individually reproducible) frame
// assignments.
func (m *Mapper) ResetTrial(trial uint64) {
	m.table = make(map[mapKey]uint64)
	m.nextFrame = 0
	m.nextColor = 0
	m.allocated = 0
	m.rng = xrand.New(m.cfg.Seed ^ 0x9a6e ^ (trial+1)*0x9e3779b97f4a7c15)
}

// Source wraps an underlying reference stream, translating every address
// through the mapper — the glue between a virtual-address trace and a
// physically-indexed cache.
type Source struct {
	src trace.Source
	m   *Mapper
}

// NewSource returns a Source translating src through m.
func NewSource(src trace.Source, m *Mapper) *Source {
	return &Source{src: src, m: m}
}

// Next implements trace.Source.
func (s *Source) Next() (trace.Ref, bool) {
	r, ok := s.src.Next()
	if !ok {
		return trace.Ref{}, false
	}
	r.Addr = s.m.Translate(r.Addr, r.Domain)
	return r, true
}

// Err implements trace.Source.
func (s *Source) Err() error { return s.src.Err() }
