package locality

import (
	"math"
	"strings"
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

func iref(addr uint64) trace.Ref { return trace.Ref{Addr: addr, Kind: trace.IFetch} }

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("line size 0 accepted")
	}
	if _, err := New(24); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := New(32); err != nil {
		t.Errorf("32 rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(3)
}

func TestFootprint(t *testing.T) {
	a := MustNew(32)
	a.Observe(iref(0))
	a.Observe(iref(4))  // same line
	a.Observe(iref(32)) // second line
	a.Observe(trace.Ref{Addr: 0x80000000, Kind: trace.IFetch, Domain: trace.Kernel})
	if a.Footprint() != 3*32 {
		t.Fatalf("Footprint = %d", a.Footprint())
	}
	if a.DomainFootprint(trace.User) != 2*32 {
		t.Fatalf("user footprint = %d", a.DomainFootprint(trace.User))
	}
	if a.DomainFootprint(trace.Kernel) != 32 {
		t.Fatalf("kernel footprint = %d", a.DomainFootprint(trace.Kernel))
	}
	if a.Instructions() != 4 {
		t.Fatalf("Instructions = %d", a.Instructions())
	}
}

func TestRunLengths(t *testing.T) {
	a := MustNew(32)
	// Two runs of 8, then a run of 4 (still open).
	for i := 0; i < 8; i++ {
		a.Observe(iref(uint64(i) * 4))
	}
	for i := 0; i < 8; i++ {
		a.Observe(iref(0x1000 + uint64(i)*4))
	}
	for i := 0; i < 4; i++ {
		a.Observe(iref(0x2000 + uint64(i)*4))
	}
	// 20 instructions over 3 runs (2 closed + 1 open).
	if got := a.MeanRunLength(); math.Abs(got-20.0/3.0) > 1e-9 {
		t.Fatalf("MeanRunLength = %v", got)
	}
	hist := a.RunHistogram()
	if hist[3] != 2 { // two completed runs of 8 land in bucket [8,16)
		t.Fatalf("run histogram = %v", hist)
	}
}

func TestColdFraction(t *testing.T) {
	a := MustNew(32)
	for i := 0; i < 10; i++ {
		a.Observe(iref(uint64(i) * 32))
	}
	if a.ColdFraction() != 1.0 {
		t.Fatalf("all-distinct stream cold fraction = %v", a.ColdFraction())
	}
	for i := 0; i < 10; i++ {
		a.Observe(iref(uint64(i) * 32))
	}
	if a.ColdFraction() != 0.5 {
		t.Fatalf("cold fraction = %v", a.ColdFraction())
	}
}

// MissRatioAt must agree with a simulated fully-associative LRU cache at
// power-of-two sizes (where the log2 bucketing is exact).
func TestMissRatioMatchesSimulation(t *testing.T) {
	p, err := synth.Lookup("espresso")
	if err != nil {
		t.Fatal(err)
	}
	refs, err := synth.InstrTrace(p, 0, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	a := MustNew(32)
	for _, r := range refs {
		a.Observe(r)
	}
	for _, kb := range []int{8, 32, 128} {
		c := cache.MustNew(cache.Config{Size: kb * 1024, LineSize: 32, Assoc: 0})
		for _, r := range refs {
			c.Access(r.Addr)
		}
		sim := c.Stats().MissRatio()
		got := a.MissRatioAt(kb * 1024)
		// Bucketed distances: exact when the line count is a power of two.
		if math.Abs(got-sim) > 0.1*sim+1e-4 {
			t.Errorf("%dKB: histogram miss ratio %.5f vs simulated %.5f", kb, got, sim)
		}
	}
}

func TestMissRatioMonotone(t *testing.T) {
	p, _ := synth.Lookup("gs")
	refs, _ := synth.InstrTrace(p, 0, 100_000)
	a := MustNew(32)
	for _, r := range refs {
		a.Observe(r)
	}
	prev := 1.0
	for kb := 4; kb <= 1024; kb *= 2 {
		mr := a.MissRatioAt(kb * 1024)
		if mr > prev+1e-12 {
			t.Fatalf("miss ratio rose at %dKB: %v > %v", kb, mr, prev)
		}
		prev = mr
	}
}

func TestWorkingSet(t *testing.T) {
	// A tight loop over 64 lines: working set = 64 lines exactly.
	a := MustNew(32)
	for pass := 0; pass < 50; pass++ {
		for l := 0; l < 64; l++ {
			a.Observe(iref(uint64(l) * 32))
		}
	}
	ws := a.WorkingSet(0.05)
	if ws != 64*32 {
		t.Fatalf("WorkingSet = %d, want %d", ws, 64*32)
	}
}

func TestAnalyzeFiltersData(t *testing.T) {
	refs := []trace.Ref{
		iref(0),
		{Addr: 0x9000, Kind: trace.DRead},
		iref(4),
	}
	a, err := Analyze(32, trace.NewSliceSource(refs))
	if err != nil {
		t.Fatal(err)
	}
	if a.Instructions() != 2 {
		t.Fatalf("Instructions = %d (data ref counted?)", a.Instructions())
	}
}

func TestIBSvsSPECLocality(t *testing.T) {
	analyze := func(name string) *Analysis {
		p, err := synth.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		refs, err := synth.InstrTrace(p, 0, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		a := MustNew(32)
		for _, r := range refs {
			a.Observe(r)
		}
		return a
	}
	ibs := analyze("gs")
	spec := analyze("eqntott")
	if ibs.Footprint() < 4*spec.Footprint() {
		t.Errorf("IBS footprint (%d) not ≫ SPEC (%d)", ibs.Footprint(), spec.Footprint())
	}
	if ibs.MissRatioAt(8192) < 3*spec.MissRatioAt(8192) {
		t.Errorf("IBS 8KB LRU miss ratio (%.4f) not ≫ SPEC (%.4f)",
			ibs.MissRatioAt(8192), spec.MissRatioAt(8192))
	}
	// SPEC's loops produce longer mean runs than... actually both have
	// similar micro-run structure; just sanity-bound the values.
	if r := ibs.MeanRunLength(); r < 2 || r > 100 {
		t.Errorf("implausible mean run length %v", r)
	}
}

func TestReport(t *testing.T) {
	p, _ := synth.Lookup("nroff")
	refs, _ := synth.InstrTrace(p, 0, 50_000)
	a := MustNew(32)
	for _, r := range refs {
		a.Observe(r)
	}
	rep := a.Report()
	for _, want := range []string{"footprint", "run length", "8 KB", "working set"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestEmptyAnalysis(t *testing.T) {
	a := MustNew(32)
	if a.MissRatioAt(8192) != 0 || a.MeanRunLength() != 0 || a.ColdFraction() != 0 {
		t.Fatal("empty analysis not zero")
	}
}
