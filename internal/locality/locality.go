// Package locality computes the locality statistics that underlie every
// curve in the paper: LRU stack-distance histograms (from which the miss
// ratio of *any* fully-associative LRU cache size can be read off), working
// sets, sequential run lengths (which bound line-size and stream-buffer
// benefits), and per-domain footprints.
//
// These are the quantities our synthetic workload models are calibrated to
// reproduce; the package lets a user characterize any reference stream —
// synthetic or loaded from an IBSTRACE file — the way the paper's authors
// characterized theirs.
package locality

import (
	"fmt"
	"math/bits"
	"strings"

	"ibsim/internal/trace"
)

// Analysis accumulates locality statistics over an instruction stream.
type Analysis struct {
	lineShift uint
	lineSize  int

	// Stack-distance machinery (Mattson, Fenwick-tree based).
	last map[uint64]int64
	mark []bool
	bit  []int64
	now  int64

	// distHist[k] counts accesses with stack distance in bucket k. Buckets
	// are ceil-log2-spaced: bucket 0 holds distance 1, bucket k≥1 holds
	// distances in (2^(k-1), 2^k]. This convention makes MissRatioAt exact
	// for every power-of-two cache size: a cache of 2^k lines hits buckets
	// 0..k and misses buckets k+1 and up.
	distHist [40]int64
	cold     int64

	// Run-length tracking: a run ends when the next instruction is not the
	// next sequential address.
	prevAddr  uint64
	runLen    int64
	runHist   [32]int64 // log2 buckets of completed run lengths
	runsTotal int64

	// Footprint per domain (distinct lines).
	domainLines [trace.NumDomains]map[uint64]struct{}

	instructions int64
}

// New returns an Analysis at the given line granularity (bytes; a power of
// two — 32 matches the paper's simulations).
func New(lineSize int) (*Analysis, error) {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("locality: line size %d must be a positive power of two", lineSize)
	}
	a := &Analysis{
		lineSize: lineSize,
		last:     make(map[uint64]int64),
		mark:     make([]bool, 64),
		bit:      make([]int64, 64),
	}
	for l := lineSize; l > 1; l >>= 1 {
		a.lineShift++
	}
	for d := range a.domainLines {
		a.domainLines[d] = make(map[uint64]struct{})
	}
	return a, nil
}

// MustNew is New but panics on error.
func MustNew(lineSize int) *Analysis {
	a, err := New(lineSize)
	if err != nil {
		panic(err)
	}
	return a
}

// Observe records one instruction fetch. Non-instruction references should
// be filtered by the caller (or use Analyze).
func (a *Analysis) Observe(r trace.Ref) {
	a.instructions++
	line := r.Addr >> a.lineShift
	if int(r.Domain) < len(a.domainLines) {
		a.domainLines[r.Domain][line] = struct{}{}
	}

	// Run lengths.
	if a.runLen > 0 && r.Addr == a.prevAddr+4 {
		a.runLen++
	} else {
		if a.runLen > 0 {
			a.bumpRun(a.runLen)
		}
		a.runLen = 1
	}
	a.prevAddr = r.Addr

	// Stack distance.
	dist, first := a.touch(line)
	if first {
		a.cold++
		return
	}
	b := bits.Len64(uint64(dist) - 1) // ceil(log2(dist)); dist=1 → 0
	if b >= len(a.distHist) {
		b = len(a.distHist) - 1
	}
	a.distHist[b]++
}

func (a *Analysis) bumpRun(n int64) {
	a.runsTotal++
	b := bits.Len64(uint64(n)) - 1
	if b >= len(a.runHist) {
		b = len(a.runHist) - 1
	}
	a.runHist[b]++
}

// touch is the Mattson stack-distance step (see internal/threec for the
// annotated version; duplicated here rather than exported from threec to
// keep that package's API focused on classification).
func (a *Analysis) touch(line uint64) (dist int64, first bool) {
	a.now++
	if int(a.now) >= len(a.mark) {
		a.grow()
	}
	prev, seen := a.last[line]
	if seen {
		dist = a.prefix(a.now-1) - a.prefix(prev) + 1
		a.set(prev, false)
	}
	a.set(a.now, true)
	a.last[line] = a.now
	return dist, !seen
}

func (a *Analysis) grow() {
	newCap := len(a.mark) * 2
	mark := make([]bool, newCap)
	copy(mark, a.mark)
	a.mark = mark
	a.bit = make([]int64, newCap)
	for i := 1; i < len(a.mark); i++ {
		if a.mark[i] {
			a.add(int64(i), 1)
		}
	}
}

func (a *Analysis) set(t int64, on bool) {
	if a.mark[t] == on {
		return
	}
	a.mark[t] = on
	if on {
		a.add(t, 1)
	} else {
		a.add(t, -1)
	}
}

func (a *Analysis) add(i, delta int64) {
	for ; int(i) < len(a.bit); i += i & (-i) {
		a.bit[i] += delta
	}
}

func (a *Analysis) prefix(i int64) int64 {
	var sum int64
	for ; i > 0; i -= i & (-i) {
		sum += a.bit[i]
	}
	return sum
}

// Analyze drains an entire source, observing only instruction fetches.
func Analyze(lineSize int, src trace.Source) (*Analysis, error) {
	a, err := New(lineSize)
	if err != nil {
		return nil, err
	}
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.Kind == trace.IFetch {
			a.Observe(r)
		}
	}
	return a, src.Err()
}

// Instructions returns the number of instruction fetches observed.
func (a *Analysis) Instructions() int64 { return a.instructions }

// Footprint returns the total distinct lines touched, in bytes.
func (a *Analysis) Footprint() int64 {
	var lines int64
	for d := range a.domainLines {
		lines += int64(len(a.domainLines[d]))
	}
	return lines * int64(a.lineSize)
}

// DomainFootprint returns the distinct bytes touched in one domain.
func (a *Analysis) DomainFootprint(d trace.Domain) int64 {
	if int(d) >= len(a.domainLines) {
		return 0
	}
	return int64(len(a.domainLines[d])) * int64(a.lineSize)
}

// MissRatioAt returns the miss ratio a fully-associative LRU cache of the
// given byte capacity would achieve on the observed stream — read directly
// off the stack-distance histogram (Mattson's one-pass result). Exact for
// power-of-two capacities; a linear within-bucket apportionment covers the
// rest. Compulsory (first-touch) misses are included; see SteadyMissRatioAt
// to exclude them.
func (a *Analysis) MissRatioAt(capacityBytes int) float64 {
	if a.instructions == 0 {
		return 0
	}
	return float64(a.cold+a.steadyMisses(capacityBytes)) / float64(a.instructions)
}

// SteadyMissRatioAt is MissRatioAt without the compulsory component — the
// steady-state miss ratio a long-running workload converges to.
func (a *Analysis) SteadyMissRatioAt(capacityBytes int) float64 {
	if a.instructions == 0 {
		return 0
	}
	return float64(a.steadyMisses(capacityBytes)) / float64(a.instructions)
}

// steadyMisses counts non-compulsory misses at the given capacity.
func (a *Analysis) steadyMisses(capacityBytes int) int64 {
	lines := int64(capacityBytes / a.lineSize)
	var misses int64
	for b, n := range a.distHist {
		// Bucket 0 holds distance 1; bucket b≥1 holds (2^(b-1), 2^b]. A
		// cache of `lines` lines misses every access with distance > lines.
		if b == 0 {
			if lines < 1 {
				misses += n
			}
			continue
		}
		lo := int64(1) << (b - 1) // distances in (lo, hi]
		hi := int64(1) << b
		switch {
		case lo >= lines:
			misses += n
		case hi > lines:
			// Straddling: distances lines+1..hi miss, out of hi-lo values.
			misses += int64(float64(n) * float64(hi-lines) / float64(hi-lo))
		}
	}
	return misses
}

// WorkingSet returns the cache size (bytes, power of two) needed to bring
// the steady-state (non-compulsory) fully-associative LRU miss ratio below
// target. Returns 0 if even the largest tracked size cannot.
func (a *Analysis) WorkingSet(target float64) int64 {
	for sz := int64(a.lineSize); sz <= int64(a.lineSize)<<38; sz <<= 1 {
		if a.SteadyMissRatioAt(int(sz)) <= target {
			return sz
		}
	}
	return 0
}

// MeanRunLength returns the average sequential run length in instructions
// (a run ends at any taken control transfer). Long lines and stream buffers
// only help while runs last.
func (a *Analysis) MeanRunLength() float64 {
	total := a.runsTotal
	pending := int64(0)
	if a.runLen > 0 {
		pending = 1
	}
	if total+pending == 0 {
		return 0
	}
	return float64(a.instructions) / float64(total+pending)
}

// RunHistogram returns the log2-bucketed histogram of completed run lengths:
// element k counts runs of [2^k, 2^(k+1)) instructions.
func (a *Analysis) RunHistogram() []int64 {
	out := make([]int64, len(a.runHist))
	copy(out, a.runHist[:])
	return out
}

// ColdFraction returns the fraction of fetches that touched a line for the
// first time.
func (a *Analysis) ColdFraction() float64 {
	if a.instructions == 0 {
		return 0
	}
	return float64(a.cold) / float64(a.instructions)
}

// Report renders a human-readable locality summary.
func (a *Analysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions:      %d\n", a.instructions)
	fmt.Fprintf(&b, "code footprint:    %.1f KB (%d-byte lines)\n", float64(a.Footprint())/1024, a.lineSize)
	var doms []string
	for d := 0; d < trace.NumDomains; d++ {
		if fp := a.DomainFootprint(trace.Domain(d)); fp > 0 {
			doms = append(doms, fmt.Sprintf("%s %.0fKB", trace.Domain(d), float64(fp)/1024))
		}
	}
	fmt.Fprintf(&b, "per-domain:        %s\n", strings.Join(doms, ", "))
	fmt.Fprintf(&b, "mean run length:   %.1f instructions\n", a.MeanRunLength())
	fmt.Fprintf(&b, "cold fetches:      %.2f%%\n", 100*a.ColdFraction())
	b.WriteString("fully-assoc LRU miss ratio by size:\n")
	for _, kb := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		fmt.Fprintf(&b, "  %4d KB: %.3f%%\n", kb, 100*a.MissRatioAt(kb*1024))
	}
	if ws := a.WorkingSet(0.001); ws > 0 {
		fmt.Fprintf(&b, "working set (0.1%% steady-state miss target): %.0f KB\n", float64(ws)/1024)
	}
	return b.String()
}
