// Package cpi implements the paper's whole-system CPI accounting
// (CPI = CPIinstr + CPIother) on the measurement platform of Tables 1 and 3:
// a DECstation 3100 with split 64-KB direct-mapped off-chip I- and D-caches
// (4-byte lines, 6-cycle miss penalty), a 64-entry fully-associative TLB over
// 4-KB pages, and a 4-entry write buffer behind a write-through D-cache.
//
// The components it reports match the columns of Table 1: CPIinstr (I-cache
// stalls), CPIdata (D-cache load stalls), CPItlb (software TLB-refill traps)
// and CPIwrite (write-buffer-full stalls), each in cycles per instruction.
package cpi

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
	"ibsim/internal/tlb"
	"ibsim/internal/trace"
)

// Components is a memory-CPI breakdown in the paper's Table 1 columns.
type Components struct {
	Instr float64 // I-cache stalls per instruction
	Data  float64 // D-cache (load) stalls per instruction
	TLB   float64 // TLB-refill stalls per instruction
	Write float64 // write-buffer stalls per instruction
}

// Total returns the total memory CPI (the sum of the components).
func (c Components) Total() float64 { return c.Instr + c.Data + c.TLB + c.Write }

// String renders the breakdown compactly.
func (c Components) String() string {
	return fmt.Sprintf("total=%.3f instr=%.3f data=%.3f tlb=%.3f write=%.3f",
		c.Total(), c.Instr, c.Data, c.TLB, c.Write)
}

// System simulates the DECstation 3100 memory system over a reference
// stream.
type System struct {
	m      memsys.DECstation3100
	icache *cache.Cache
	dcache *cache.Cache
	tlb    *tlb.TLB

	instructions int64
	icStall      int64
	dcStall      int64
	tlbStall     int64
	wbStall      int64

	// Write buffer: completion times of in-flight writes, oldest first.
	wb      []int64
	lastEnd int64

	// Execution-time split.
	domainInstr [trace.NumDomains]int64
}

// NewSystem builds a DECstation 3100 simulator.
func NewSystem() *System {
	m := memsys.NewDECstation3100()
	return &System{
		m: m,
		icache: cache.MustNew(cache.Config{
			Size: m.CacheSize, LineSize: m.LineSize, Assoc: 1,
		}),
		dcache: cache.MustNew(cache.Config{
			Size: m.CacheSize, LineSize: m.LineSize, Assoc: 1,
		}),
		tlb: tlb.MustNew(tlb.Config{
			Entries: m.TLBEntries, PageSize: m.PageSize, Assoc: 0,
		}),
		wb: make([]int64, 0, m.WriteBufferDepth),
	}
}

// now returns the current cycle: one per instruction plus all stalls.
func (s *System) now() int64 {
	return s.instructions + s.icStall + s.dcStall + s.tlbStall + s.wbStall
}

// Process consumes one reference.
func (s *System) Process(r trace.Ref) {
	switch r.Kind {
	case trace.IFetch:
		s.instructions++
		s.domainInstr[r.Domain]++
		s.lookupTLB(r)
		if !s.icache.Access(r.Addr) {
			s.icStall += int64(s.m.MissPenalty)
		}
	case trace.DRead:
		s.lookupTLB(r)
		if !s.dcache.Access(r.Addr) {
			s.dcStall += int64(s.m.MissPenalty)
		}
	case trace.DWrite:
		s.lookupTLB(r)
		// Write-through, no-allocate-stall: the 4-byte line is fully
		// overwritten, so the store installs the line and retires through
		// the write buffer; the CPU only stalls when the buffer is full.
		s.dcache.Fill(r.Addr)
		s.store()
	}
}

// lookupTLB models address translation. MIPS kernel text executes out of
// unmapped kseg0, so kernel instruction fetches bypass the TLB; everything
// else (user/server fetches and all data references) translates.
func (s *System) lookupTLB(r trace.Ref) {
	if r.Domain == trace.Kernel && r.Kind == trace.IFetch {
		return
	}
	if !s.tlb.Access(r.Addr, r.Domain) {
		s.tlbStall += int64(s.m.TLBPenalty)
	}
}

// store pushes one entry through the write buffer, stalling when it is full.
func (s *System) store() {
	now := s.now()
	// Retire completed writes.
	for len(s.wb) > 0 && s.wb[0] <= now {
		s.wb = s.wb[1:]
	}
	if len(s.wb) >= s.m.WriteBufferDepth {
		// Buffer full: stall until the oldest write retires.
		wait := s.wb[0] - now
		s.wbStall += wait
		now = s.wb[0]
		s.wb = s.wb[1:]
	}
	start := now
	if s.lastEnd > start {
		start = s.lastEnd
	}
	s.lastEnd = start + int64(s.m.WriteCycles)
	s.wb = append(s.wb, s.lastEnd)
}

// ProcessAll drains a source through the system.
func (s *System) ProcessAll(src trace.Source) error {
	for {
		r, ok := src.Next()
		if !ok {
			return src.Err()
		}
		s.Process(r)
	}
}

// Components returns the per-instruction stall breakdown.
func (s *System) Components() Components {
	if s.instructions == 0 {
		return Components{}
	}
	n := float64(s.instructions)
	return Components{
		Instr: float64(s.icStall) / n,
		Data:  float64(s.dcStall) / n,
		TLB:   float64(s.tlbStall) / n,
		Write: float64(s.wbStall) / n,
	}
}

// Instructions returns the instruction count processed.
func (s *System) Instructions() int64 { return s.instructions }

// UserShare returns the fraction of instructions executed in the user task;
// OSShare is the complement (kernel + servers), matching the paper's
// "Execution Time %" columns.
func (s *System) UserShare() float64 {
	if s.instructions == 0 {
		return 0
	}
	return float64(s.domainInstr[trace.User]) / float64(s.instructions)
}

// OSShare returns the fraction of instructions executed in the kernel and
// user-level OS servers.
func (s *System) OSShare() float64 {
	if s.instructions == 0 {
		return 0
	}
	return 1 - s.UserShare()
}

// DomainShare returns the instruction share of one domain.
func (s *System) DomainShare(d trace.Domain) float64 {
	if s.instructions == 0 {
		return 0
	}
	return float64(s.domainInstr[d]) / float64(s.instructions)
}
