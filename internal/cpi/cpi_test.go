package cpi

import (
	"math"
	"testing"

	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

func TestComponentsTotal(t *testing.T) {
	c := Components{Instr: 0.1, Data: 0.2, TLB: 0.05, Write: 0.05}
	if c.Total() != 0.4 {
		t.Fatalf("Total = %v", c.Total())
	}
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestEmptySystem(t *testing.T) {
	s := NewSystem()
	if s.Components() != (Components{}) {
		t.Fatal("empty system has non-zero components")
	}
	if s.UserShare() != 0 || s.OSShare() != 0 || s.DomainShare(trace.User) != 0 {
		t.Fatal("empty system has non-zero shares")
	}
}

func TestICacheStalls(t *testing.T) {
	s := NewSystem()
	// Two fetches of the same 4-byte line: one miss (6 cycles), one hit.
	s.Process(trace.Ref{Addr: 0x1000, Kind: trace.IFetch})
	s.Process(trace.Ref{Addr: 0x1000, Kind: trace.IFetch})
	c := s.Components()
	if c.Instr != 3.0 { // 6 cycles over 2 instructions
		t.Fatalf("CPIinstr = %v, want 3.0", c.Instr)
	}
	if c.Data != 0 || c.Write != 0 {
		t.Fatalf("unexpected components: %+v", c)
	}
}

func TestDCacheStalls(t *testing.T) {
	s := NewSystem()
	s.Process(trace.Ref{Addr: 0x1000, Kind: trace.IFetch})
	s.Process(trace.Ref{Addr: 0x2000, Kind: trace.DRead}) // miss: 6 cycles
	s.Process(trace.Ref{Addr: 0x2000, Kind: trace.DRead}) // hit
	c := s.Components()
	if c.Data != 6.0 { // 6 cycles over 1 instruction
		t.Fatalf("CPIdata = %v, want 6", c.Data)
	}
}

func TestStoreInstallsLine(t *testing.T) {
	s := NewSystem()
	s.Process(trace.Ref{Addr: 0x1000, Kind: trace.IFetch})
	s.Process(trace.Ref{Addr: 0x3000, Kind: trace.DWrite}) // full-line write, no stall
	s.Process(trace.Ref{Addr: 0x3000, Kind: trace.DRead})  // must hit now
	c := s.Components()
	if c.Data != 0 {
		t.Fatalf("load after store missed: %+v", c)
	}
}

func TestWriteBufferAbsorbsSparseStores(t *testing.T) {
	s := NewSystem()
	for i := 0; i < 100; i++ {
		for j := 0; j < 20; j++ {
			s.Process(trace.Ref{Addr: uint64(i*80 + j*4), Kind: trace.IFetch})
		}
		s.Process(trace.Ref{Addr: uint64(0x100000 + i*4), Kind: trace.DWrite})
	}
	if c := s.Components(); c.Write != 0 {
		t.Fatalf("sparse stores stalled the write buffer: %+v", c)
	}
}

func TestWriteBufferStallsOnBursts(t *testing.T) {
	s := NewSystem()
	s.Process(trace.Ref{Addr: 0, Kind: trace.IFetch})
	// A burst of back-to-back stores overflows the 4-entry buffer.
	for i := 0; i < 12; i++ {
		s.Process(trace.Ref{Addr: uint64(0x100000 + i*4), Kind: trace.DWrite})
	}
	if c := s.Components(); c.Write == 0 {
		t.Fatal("store burst did not stall")
	}
}

func TestKernelIFetchBypassesTLB(t *testing.T) {
	s := NewSystem()
	// Kernel instruction fetches over many pages: no TLB misses (kseg0).
	for i := 0; i < 200; i++ {
		s.Process(trace.Ref{Addr: 0x80000000 + uint64(i)*4096, Kind: trace.IFetch, Domain: trace.Kernel})
	}
	if c := s.Components(); c.TLB != 0 {
		t.Fatalf("kernel fetches took TLB misses: %+v", c)
	}
	// User fetches over many pages do miss.
	s2 := NewSystem()
	for i := 0; i < 200; i++ {
		s2.Process(trace.Ref{Addr: uint64(i) * 4096, Kind: trace.IFetch, Domain: trace.User})
	}
	if c := s2.Components(); c.TLB == 0 {
		t.Fatal("user fetches took no TLB misses")
	}
}

func TestShares(t *testing.T) {
	s := NewSystem()
	for i := 0; i < 60; i++ {
		s.Process(trace.Ref{Addr: uint64(i) * 4, Kind: trace.IFetch, Domain: trace.User})
	}
	for i := 0; i < 40; i++ {
		s.Process(trace.Ref{Addr: 0x80000000 + uint64(i)*4, Kind: trace.IFetch, Domain: trace.Kernel})
	}
	if s.UserShare() != 0.6 {
		t.Fatalf("UserShare = %v", s.UserShare())
	}
	if s.OSShare() != 0.4 {
		t.Fatalf("OSShare = %v", s.OSShare())
	}
	if s.DomainShare(trace.Kernel) != 0.4 {
		t.Fatalf("DomainShare(Kernel) = %v", s.DomainShare(trace.Kernel))
	}
	if s.Instructions() != 100 {
		t.Fatalf("Instructions = %d", s.Instructions())
	}
}

// Integration: the Table 1 / Table 3 shape — IBS workloads have much higher
// CPIinstr than SPEC; fp suites have much higher CPIdata than int suites.
func TestSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a few hundred thousand references")
	}
	run := func(name string) Components {
		p, err := synth.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := synth.NewGenerator(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSystem()
		for s.Instructions() < 300000 {
			r, _ := g.Next()
			s.Process(r)
		}
		return s.Components()
	}
	ibs := run("gs")
	spec := run("specint92")
	fp := run("specfp92")
	if ibs.Instr < 2*spec.Instr {
		t.Errorf("IBS CPIinstr (%.3f) not well above SPECint92 (%.3f)", ibs.Instr, spec.Instr)
	}
	if fp.Data < 2*spec.Data {
		t.Errorf("SPECfp CPIdata (%.3f) not well above SPECint (%.3f)", fp.Data, spec.Data)
	}
	if math.IsNaN(ibs.Total()) || ibs.Total() <= 0 {
		t.Errorf("degenerate total: %+v", ibs)
	}
}
