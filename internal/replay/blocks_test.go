package replay

import (
	"bytes"
	"context"
	"testing"

	"ibsim/internal/fetch"
	"ibsim/internal/trace"
)

// columnarSource encodes runs into an in-memory columnar image at a block
// size small enough to force many blocks and opens it as a BlockSource.
func columnarSource(t testing.TB, runs []trace.Run, blockBytes int) *trace.ColumnarFile {
	t.Helper()
	var buf bytes.Buffer
	if _, err := trace.EncodeColumnarSize(&buf, runs, blockBytes); err != nil {
		t.Fatal(err)
	}
	cf, err := trace.NewColumnarBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

// Blocks over a multi-block columnar trace must be bit-identical to Replay
// over the materialized runs, across the whole mixed bank including the
// analytically derived cells.
func TestBlocksMatchesReplay(t *testing.T) {
	runs := trace.Compact(testTrace(21, 80000))
	want, err := Replay(context.Background(), runs, bank(t))
	if err != nil {
		t.Fatal(err)
	}

	cf := columnarSource(t, runs, 512)
	if cf.NumBlocks() < 8 {
		t.Fatalf("only %d blocks; trace too small to exercise block iteration", cf.NumBlocks())
	}
	got, err := Blocks(context.Background(), cf, bank(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("engine %d: blocks %+v != replay %+v", i, got[i], want[i])
		}
	}

	// The in-memory reference BlockSource must agree too.
	rb := trace.NewRunsBlocks(runs, 7)
	got2, err := Blocks(context.Background(), rb, bank(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Errorf("engine %d: runs-blocks %+v != replay %+v", i, got2[i], want[i])
		}
	}
}

func TestBlocksCancel(t *testing.T) {
	runs := trace.Compact(testTrace(3, 20000))
	cf := columnarSource(t, runs, 512)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Blocks(ctx, cf, bank(t)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// SampledBlocks must reproduce Sampled bit for bit — Measured counters and
// every Estimate field — for every plan shape: warm time, skip time (the
// seeking path), degenerate full-coverage, and set sampling.
func TestSampledBlocksMatchesSampled(t *testing.T) {
	runs := trace.Compact(testTrace(22, 120000))
	cf := columnarSource(t, runs, 512)
	if cf.NumBlocks() < 8 {
		t.Fatalf("only %d blocks", cf.NumBlocks())
	}
	plans := map[string]SamplePlan{
		"time-warm":     {Window: 2000, Period: 8000, Warm: true},
		"time-skip":     {Window: 2000, Period: 8000},
		"time-tiny-win": {Window: 64, Period: 4096},
		"full-coverage": {Window: 5000, Period: 5000},
		"set":           {SetMod: 16, SetMatch: 9, LineSize: 32},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			want, err := Sampled(context.Background(), runs, bank(t), plan)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SampledBlocks(context.Background(), cf, bank(t), plan)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("engine %d: blocks %+v != in-memory %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestSampledBlocksRejectsBadPlan(t *testing.T) {
	cf := columnarSource(t, trace.Compact(testTrace(1, 100)), 512)
	if _, err := SampledBlocks(context.Background(), cf, bank(t), SamplePlan{}); err == nil {
		t.Fatal("empty plan accepted")
	}
}

// blockCursor.walk must reconstruct exactly the instructions of [pos, pos+n)
// for arbitrary positions, including across block boundaries, backward
// seeks, and clipping at the trace end.
func TestBlockCursorWalk(t *testing.T) {
	runs := trace.Compact(testTrace(23, 30000))
	cf := columnarSource(t, runs, 512)

	// Expand the trace once as the oracle.
	var addrs []uint64
	for _, r := range runs {
		a := r.Start
		for j := int64(0); j < r.Len; j++ {
			addrs = append(addrs, a)
			a += trace.InstrBytes
		}
	}

	cur := newBlockCursor(cf)
	if cur.total() != int64(len(addrs)) {
		t.Fatalf("total %d, want %d", cur.total(), len(addrs))
	}
	windows := []struct{ pos, n int64 }{
		{0, 1}, {0, 100}, {500, 3000}, {int64(len(addrs)) - 10, 100},
		{int64(len(addrs)), 50}, {7, 1}, {2, 9000}, // backward seek after a long walk
		{int64(len(addrs)) / 2, 1},
	}
	for _, w := range windows {
		var got []uint64
		err := cur.walk(w.pos, w.n, func(start uint64, cnt int64) {
			for j := int64(0); j < cnt; j++ {
				got = append(got, start+uint64(j)*trace.InstrBytes)
			}
		})
		if err != nil {
			t.Fatalf("walk(%d,%d): %v", w.pos, w.n, err)
		}
		end := w.pos + w.n
		if end > int64(len(addrs)) {
			end = int64(len(addrs))
		}
		want := addrs[w.pos:end]
		if len(got) != len(want) {
			t.Fatalf("walk(%d,%d) yielded %d instructions, want %d", w.pos, w.n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("walk(%d,%d) instruction %d = %#x, want %#x", w.pos, w.n, i, got[i], want[i])
			}
		}
	}
}

// A trace much larger than one block must replay through Blocks without the
// driver ever materializing it: spot-check via a single blocking engine
// against fetch.Run on the expanded refs.
func TestBlocksPerEngineExact(t *testing.T) {
	refs := testTrace(24, 60000)
	runs := trace.Compact(refs)
	cf := columnarSource(t, runs, 1024)
	engines := bank(t)
	got, err := Blocks(context.Background(), cf, engines)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range bank(t) {
		want := fetch.Run(e, refs)
		if got[i] != want {
			t.Errorf("engine %d: blocks %+v != fetch.Run %+v", i, got[i], want)
		}
	}
}
