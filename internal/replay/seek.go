package replay

import (
	"context"
	"fmt"

	"ibsim/internal/fetch"
	"ibsim/internal/trace"
)

// Seek-accelerated sampled replay. Skip-mode time sampling (Warm == false,
// Window < Period) never feeds the engines an unmeasured instruction, so
// with a seekable source the driver can jump from window start to window
// start and generate ONLY the measured refs — O(sampled refs + windows ·
// checkpoint interval) instead of O(n). Warm mode is excluded by
// construction: functional warming exists precisely to walk the skipped
// spans.
//
// Bit-identity with Sampled over the compacted trace: within each window
// the refs are coalesced under exactly the trace.Compactor extension
// condition, so the feedSpan call sequence every engine sees — and the one
// Result-delta cluster per window — match sampledTime's measured segments
// span for span.

// SampledSeek replays the measured windows of a skip-mode time-sampling
// plan through every engine in the bank, seeking directly between window
// starts. Results are identical to Sampled over the same trace. Engines are
// mutated; pass freshly built ones.
func SampledSeek(ctx context.Context, src trace.Seeker, engines []fetch.Engine, plan SamplePlan) ([]SampledResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if !plan.timeMode() || plan.Window >= plan.Period {
		return nil, fmt.Errorf("replay: SampledSeek requires time sampling with window < period")
	}
	if plan.Warm {
		return nil, fmt.Errorf("replay: SampledSeek cannot functionally warm (warm mode must walk skipped spans; use Sampled)")
	}
	samplers := make([]*timeSampler, len(engines))
	for i, e := range engines {
		samplers[i] = newTimeSampler(e, plan)
	}
	total := src.Total()
	var spans []trace.Run
	for wstart := int64(0); wstart < total; wstart += plan.Period {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := src.SeekTo(wstart); err != nil {
			return nil, err
		}
		wend := wstart + plan.Window
		if wend > total {
			wend = total
		}
		spans = spans[:0]
		var cur trace.Run
		var next uint64
		for i := wstart; i < wend; i++ {
			r, ok := src.Next()
			if !ok {
				return nil, fmt.Errorf("replay: seekable source ended at instruction %d of %d", i, total)
			}
			if cur.Len > 0 && r.Addr == next && r.Domain == cur.Domain && next != 0 {
				cur.Len++
				next += trace.InstrBytes
				continue
			}
			if cur.Len > 0 {
				spans = append(spans, cur)
			}
			cur = trace.Run{Start: r.Addr, Len: 1, Domain: r.Domain}
			next = r.Addr + trace.InstrBytes
		}
		if cur.Len > 0 {
			spans = append(spans, cur)
		}
		for _, s := range samplers {
			s.prev = s.e.Result()
			s.inWindow = true
			for _, sp := range spans {
				feedSpan(s.e, s.re, sp.Start, sp.Len)
			}
			s.closeWindow()
		}
	}
	results := make([]SampledResult, len(samplers))
	for i, s := range samplers {
		s.pos = total
		results[i] = s.finish()
	}
	return results, nil
}
