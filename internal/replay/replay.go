// Package replay is the single-pass fan-out driver for the timing-accurate
// fetch engines: it replays one workload's run-compacted instruction trace
// through a whole bank of engine configurations, feeding every grid cell of
// the paper's Tables 5-8 and Figures 6/7 from one pass over the trace per
// engine — and often much less.
//
// Two accelerations stack:
//
//  1. Bulk replay. Each engine consumes the trace as sequential runs via its
//     FetchRun fast path (O(resident lines) per run instead of
//     O(instructions); see internal/fetch), which is where compaction pays.
//
//  2. Analytic dedup. Prefetch-free, non-sector blocking engines that share
//     a cache geometry have identical miss streams — the memory link never
//     influences cache contents — so the bank simulates one representative
//     per geometry and reconstructs every other such engine's Result with
//     fetch.BlockingResult (StallCycles = Misses x FillCycles). Figure 6's
//     bandwidth sweep (5 links x 7 line sizes) collapses from 35 replays to
//     7; the equivalence is exact (pinned by fetch's tests and the
//     differential/fanout-tables check), so results stay byte-identical to
//     the per-config path.
//
// Replay returns results positionally: results[i] is what
// fetch.Run(engines[i], refs) would have produced on the expanded trace.
package replay

import (
	"context"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/trace"
)

// runChunk is the batch size handed to FetchRuns between context polls:
// large enough to amortize dispatch, small enough to keep cancellation
// latency well under a millisecond.
const runChunk = 256

// analyticKey groups engines whose miss behavior is fully determined by
// cache geometry. cache.Config is comparable, so it can key a map directly.
type analyticKey struct{ geom cache.Config }

// planBank groups the analytic blocking engines by geometry: the first
// engine of each group is its representative and is simulated for real;
// repOf maps every other group member to it, and derived lists them in bank
// order. Shared by Replay and Blocks so the two drivers dedup identically.
func planBank(engines []fetch.Engine) (repOf map[int]int, derived []int) {
	reps := make(map[analyticKey]int) // geometry -> representative engine index
	repOf = make(map[int]int)
	for i, e := range engines {
		b, ok := e.(*fetch.Blocking)
		if !ok {
			continue
		}
		geom, _, analytic := b.AnalyticConfig()
		if !analytic {
			continue
		}
		key := analyticKey{geom: geom}
		if rep, seen := reps[key]; seen {
			derived = append(derived, i)
			repOf[i] = rep
		} else {
			reps[key] = i
		}
	}
	return repOf, derived
}

// fillDerived reconstructs the derived cells from their representatives'
// results (StallCycles = Misses x FillCycles, exactly).
func fillDerived(results []fetch.Result, engines []fetch.Engine, repOf map[int]int, derived []int) {
	for _, i := range derived {
		rep := results[repOf[i]]
		b := engines[i].(*fetch.Blocking)
		geom, link, _ := b.AnalyticConfig()
		results[i] = fetch.BlockingResult(rep.Instructions, rep.Misses, geom.LineSize, link)
	}
}

// Replay runs every engine in the bank over the same run-compacted
// instruction trace and returns their Results in bank order. It honors ctx
// between engines and periodically within each replay; on cancellation the
// partial results are discarded and ctx.Err() is returned.
func Replay(ctx context.Context, runs []trace.Run, engines []fetch.Engine) ([]fetch.Result, error) {
	results := make([]fetch.Result, len(engines))
	repOf, derived := planBank(engines)

	// Simulate every engine that is not derived, then reconstruct the rest.
	for i, e := range engines {
		if _, isDerived := repOf[i]; isDerived {
			continue
		}
		if err := replayOne(ctx, runs, e); err != nil {
			return nil, err
		}
		results[i] = e.Result()
	}
	fillDerived(results, engines, repOf, derived)
	return results, nil
}

// replayOne drains the compacted trace through one engine with periodic
// context polls. Bulk engines consume the runs in batches (one dynamic
// dispatch per batch); plain engines fall back to per-instruction Fetch.
func replayOne(ctx context.Context, runs []trace.Run, e fetch.Engine) error {
	if re, ok := e.(fetch.RunEngine); ok {
		for start := 0; start < len(runs); start += runChunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			end := start + runChunk
			if end > len(runs) {
				end = len(runs)
			}
			re.FetchRuns(runs[start:end])
		}
		return nil
	}
	for i, r := range runs {
		if i&(runChunk-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		addr := r.Start
		for j := int64(0); j < r.Len; j++ {
			e.Fetch(addr)
			addr += trace.InstrBytes
		}
	}
	return nil
}

// Refs is a convenience for callers holding an uncompacted instruction
// trace: it compacts refs and fans them out. Prefer Replay with a memoized
// []trace.Run (synth.DefaultStore.InstrRuns) when replaying the same
// workload through several banks.
func Refs(ctx context.Context, refs []trace.Ref, engines []fetch.Engine) ([]fetch.Result, error) {
	return Replay(ctx, trace.Compact(refs), engines)
}
