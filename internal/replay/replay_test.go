package replay

import (
	"context"
	"errors"
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

// testTrace builds a sequential-heavy instruction stream.
func testTrace(seed uint64, n int) []trace.Ref {
	rng := xrand.New(seed)
	refs := make([]trace.Ref, n)
	addr := uint64(0x4000)
	for i := range refs {
		refs[i] = trace.Ref{Addr: addr, Kind: trace.IFetch}
		if rng.Bool(0.1) {
			addr = rng.Uint64n(1<<17) &^ 3
		} else {
			addr += trace.InstrBytes
		}
	}
	return refs
}

// bank builds a mixed engine bank: a bandwidth sweep of analytic blocking
// engines sharing one geometry (exercising the dedup), plus prefetching,
// sector, bypass, and stream engines that must be simulated individually.
func bank(t testing.TB) []fetch.Engine {
	t.Helper()
	base := cache.Config{Size: 16384, LineSize: 32, Assoc: 1}
	var engines []fetch.Engine
	for _, bw := range []int{4, 8, 16, 32} {
		e, err := fetch.NewBlocking(base, memsys.Transfer{Latency: 6, BytesPerCycle: bw}, 0)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, e)
	}
	link := memsys.Transfer{Latency: 6, BytesPerCycle: 16}
	pf, err := fetch.NewBlocking(base, link, 3)
	if err != nil {
		t.Fatal(err)
	}
	sector, err := fetch.NewBlocking(cache.Config{Size: 16384, LineSize: 64, Assoc: 1, SubBlock: 16}, link, 0)
	if err != nil {
		t.Fatal(err)
	}
	by, err := fetch.NewBypass(base, link, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := fetch.NewStream(cache.Config{Size: 16384, LineSize: 16, Assoc: 1}, link, 6)
	if err != nil {
		t.Fatal(err)
	}
	return append(engines, pf, sector, by, st)
}

// The fan-out bank must reproduce, cell for cell, what per-config fetch.Run
// produces — including the cells reconstructed analytically.
func TestReplayMatchesPerConfig(t *testing.T) {
	refs := testTrace(1, 50000)
	runs := trace.Compact(refs)

	fanout := bank(t)
	got, err := Replay(context.Background(), runs, fanout)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	want := make([]fetch.Result, len(fanout))
	for i, e := range bank(t) {
		want[i] = fetch.Run(e, refs)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("engine %d (%T): fan-out %+v != per-config %+v", i, fanout[i], got[i], want[i])
		}
	}
}

// Refs is Replay after compaction.
func TestRefsConvenience(t *testing.T) {
	refs := testTrace(2, 20000)
	got, err := Refs(context.Background(), refs, bank(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Replay(context.Background(), trace.Compact(refs), bank(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("engine %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// An engine without a bulk path still replays correctly (per-instruction
// expansion inside replayOne).
type plainEngine struct{ inner *fetch.Blocking }

func (p *plainEngine) Fetch(addr uint64)    { p.inner.Fetch(addr) }
func (p *plainEngine) Result() fetch.Result { return p.inner.Result() }

func TestReplayNonBulkEngine(t *testing.T) {
	refs := testTrace(3, 20000)
	cfg := cache.Config{Size: 8192, LineSize: 16, Assoc: 2}
	link := memsys.Transfer{Latency: 6, BytesPerCycle: 16}
	a, _ := fetch.NewBlocking(cfg, link, 1)
	b, _ := fetch.NewBlocking(cfg, link, 1)
	got, err := Replay(context.Background(), trace.Compact(refs), []fetch.Engine{&plainEngine{inner: a}})
	if err != nil {
		t.Fatal(err)
	}
	if want := fetch.Run(b, refs); got[0] != want {
		t.Fatalf("plain engine: %+v != %+v", got[0], want)
	}
}

// A canceled context aborts the fan-out with ctx.Err().
func TestReplayCancellation(t *testing.T) {
	refs := testTrace(4, 50000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Replay(ctx, trace.Compact(refs), bank(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// An empty bank and an empty trace are fine.
func TestReplayDegenerate(t *testing.T) {
	if res, err := Replay(context.Background(), nil, nil); err != nil || len(res) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	res, err := Replay(context.Background(), nil, bank(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r != (fetch.Result{}) {
			t.Errorf("engine %d on empty trace: %+v", i, r)
		}
	}
}
