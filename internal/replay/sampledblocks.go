package replay

import (
	"context"

	"ibsim/internal/fetch"
	"ibsim/internal/sampling"
	"ibsim/internal/trace"
)

// SampledBlocks is Sampled over a block-granular trace: identical plans,
// identical results (pinned by this package's equality tests), but the trace
// is consumed one block at a time so a columnar file far beyond the RAM
// budget samples with O(block) live memory.
//
// The block index buys the skip-mode time plan something the in-memory path
// cannot have: with Warm off, only the measured windows are fed, and each
// window's first instruction is located by an O(log blocks) seek through the
// cumulative-refs index — the unmeasured gaps are never even decoded. A 1%
// sampling plan over a 100 GB trace touches ~1 GB of it.
func SampledBlocks(ctx context.Context, bs trace.BlockSource, engines []fetch.Engine, plan SamplePlan) ([]SampledResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.timeMode() {
		// Warm plans must feed the gaps, so they stream every block. So does
		// the degenerate Window == Period plan (measure everything): with no
		// gaps the in-memory path accumulates one trace-wide cluster, which
		// only the carried state machine reproduces.
		if plan.Warm || plan.Window == plan.Period {
			return sampledBlocksWarm(ctx, bs, engines, plan)
		}
		return sampledBlocksSkip(ctx, bs, engines, plan)
	}
	// Set mode: stream every block through the congruence-class filter
	// (identical subgroup lists to setSubruns over the concatenated runs),
	// then run the usual subgroup replay per engine.
	f := newSetFilter(plan)
	var buf []trace.Run
	nb := bs.NumBlocks()
	for b := 0; b < nb; b++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		if buf, err = bs.BlockRuns(b, buf); err != nil {
			return nil, err
		}
		for _, r := range buf {
			f.add(r)
		}
	}
	results := make([]SampledResult, len(engines))
	for i, e := range engines {
		r, err := sampledSet(ctx, f.subs, f.total, e, plan)
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return results, nil
}

// sampledBlocksWarm streams every block once and pushes it through each
// engine's time-sampling state machine while the decode is hot. State
// (window phase, open snapshots, clusters) is carried per engine across
// blocks, so the chunking is invisible: results match sampledTime exactly.
func sampledBlocksWarm(ctx context.Context, bs trace.BlockSource, engines []fetch.Engine, plan SamplePlan) ([]SampledResult, error) {
	states := make([]*timeSampler, len(engines))
	for i, e := range engines {
		states[i] = newTimeSampler(e, plan)
	}
	var buf []trace.Run
	nb := bs.NumBlocks()
	for b := 0; b < nb; b++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		if buf, err = bs.BlockRuns(b, buf); err != nil {
			return nil, err
		}
		for _, s := range states {
			if err := s.feed(ctx, buf); err != nil {
				return nil, err
			}
		}
	}
	results := make([]SampledResult, len(engines))
	for i, s := range states {
		results[i] = s.finish()
	}
	return results, nil
}

// sampledBlocksSkip replays only the measured windows: each window
// [w*Period, w*Period+Window) is located with one O(log blocks) seek, its
// spans are collected once, and every engine is fed the same spans between
// Result snapshots — one variance cluster per window, exactly as the
// in-memory skip path produces.
func sampledBlocksSkip(ctx context.Context, bs trace.BlockSource, engines []fetch.Engine, plan SamplePlan) ([]SampledResult, error) {
	cur := newBlockCursor(bs)
	total := cur.total()
	res := make([]fetch.Result, len(engines))
	clusters := make([][]sampling.Cluster, len(engines))
	res2 := make([]SampledResult, len(engines))
	var spans []trace.Run
	for start := int64(0); start < total; start += plan.Period {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spans = spans[:0]
		err := cur.walk(start, plan.Window, func(s uint64, cnt int64) {
			spans = append(spans, trace.Run{Start: s, Len: cnt})
		})
		if err != nil {
			return nil, err
		}
		for i, e := range engines {
			re, _ := e.(fetch.RunEngine)
			prev := e.Result()
			for _, sp := range spans {
				feedSpan(e, re, sp.Start, sp.Len)
			}
			d := resultDelta(e.Result(), prev)
			res[i] = resultAdd(res[i], d)
			clusters[i] = append(clusters[i], sampling.Cluster{Instructions: d.Instructions, Misses: d.Misses})
		}
		// Guard against Period overflow at the extreme end of int64 space.
		if start > total-plan.Period {
			break
		}
	}
	for i := range engines {
		f := float64(0)
		if total > 0 {
			f = float64(res[i].Instructions) / float64(total)
		}
		res2[i] = SampledResult{
			Measured: res[i],
			Estimate: sampling.EstimateFrom(clusters[i], total, f),
		}
	}
	return res2, nil
}
