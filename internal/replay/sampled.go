package replay

import (
	"context"
	"fmt"

	"ibsim/internal/fetch"
	"ibsim/internal/sampling"
	"ibsim/internal/trace"
)

// Sampled replay: the fan-out driver's speed/fidelity dial. Instead of
// feeding every engine the whole trace, feed it a statistical sample and
// report each engine's counters together with a sampling.Estimate carrying
// the MPI extrapolation and its 95% confidence interval.
//
// Two mutually exclusive plans:
//
//   - Time sampling (Window/Period): the first Window of every Period
//     instructions are measured. Warm feeds the skipped spans too — engine
//     state stays current ("functional warming", unbiased, the default for
//     the service tier) — while !Warm skips them entirely for maximum speed
//     at a stale-state bias. Each window is one variance cluster. Valid for
//     EVERY engine type: timing, stream buffers, prefetchers.
//
//   - Set sampling (SetMod/SetMatch at LineSize): only the lines of one
//     address congruence class are replayed, grouped into setClusters
//     subgroups fed in order. Exact within the subset only for prefetch-free
//     blocking engines whose line size equals LineSize and whose set count
//     is at least SetMod*setClusters (per-set access order is preserved);
//     engines with cross-set behavior (stream buffers, next-line prefetch)
//     see a distorted stream and get an approximation. The sweep engine is
//     the first-class home of set sampling — here it exists for
//     blocking-bank studies.
type SamplePlan struct {
	// Window/Period schedule time sampling: the first Window of every
	// Period instructions are measured. Window == Period measures
	// everything (exact, CI 0).
	Window int64
	Period int64
	// Warm replays unmeasured spans without counting them (engine state
	// stays warm); false skips them.
	Warm bool
	// SetMod/SetMatch/LineSize select set sampling instead: only lines (of
	// LineSize bytes) congruent to SetMatch mod SetMod are replayed.
	SetMod   int
	SetMatch int
	LineSize int
}

// setClusters is the number of congruence subgroups a set-sampled replay is
// split into for variance estimation (one Result snapshot per subgroup).
const setClusters = 8

// timeMode reports whether the plan uses time sampling.
func (p SamplePlan) timeMode() bool { return p.Window > 0 || p.Period > 0 }

// Validate checks the plan.
func (p SamplePlan) Validate() error {
	timeMode := p.timeMode()
	setMode := p.SetMod != 0 || p.SetMatch != 0 || p.LineSize != 0
	switch {
	case timeMode && setMode:
		return fmt.Errorf("replay: sampling plan mixes time and set dimensions; pick one")
	case timeMode:
		if p.Window <= 0 {
			return fmt.Errorf("replay: sampling window %d must be positive", p.Window)
		}
		if p.Period < p.Window {
			return fmt.Errorf("replay: sampling period %d < window %d", p.Period, p.Window)
		}
	case setMode:
		if p.SetMod <= 1 || p.SetMod&(p.SetMod-1) != 0 {
			return fmt.Errorf("replay: set-sampling modulus %d must be a power of two > 1", p.SetMod)
		}
		if p.SetMatch < 0 || p.SetMatch >= p.SetMod {
			return fmt.Errorf("replay: set-sampling match %d outside [0,%d)", p.SetMatch, p.SetMod)
		}
		if p.LineSize < trace.InstrBytes || p.LineSize&(p.LineSize-1) != 0 {
			return fmt.Errorf("replay: set-sampling line size %d must be a power of two >= %d", p.LineSize, trace.InstrBytes)
		}
	default:
		return fmt.Errorf("replay: sampling plan selects no dimension")
	}
	return nil
}

// SampledResult is one engine's sampled replay outcome.
type SampledResult struct {
	// Measured holds the counters accumulated over measured spans only —
	// Measured.CPIinstr() and Measured.MPI() are the sampled estimates of
	// the full-trace values.
	Measured fetch.Result
	// Estimate extrapolates the miss rate to the full trace with a 95%
	// confidence interval.
	Estimate sampling.Estimate
}

// Sampled replays the trace sample through every engine in the bank and
// returns per-engine estimates in bank order. Engines are mutated (fed the
// sample); as with Replay, pass freshly built engines.
func Sampled(ctx context.Context, runs []trace.Run, engines []fetch.Engine, plan SamplePlan) ([]SampledResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	results := make([]SampledResult, len(engines))
	if plan.timeMode() {
		for i, e := range engines {
			r, err := sampledTime(ctx, runs, e, plan)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	subs, total := setSubruns(runs, plan)
	for i, e := range engines {
		r, err := sampledSet(ctx, subs, total, e, plan)
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return results, nil
}

// resultDelta subtracts two counter snapshots.
func resultDelta(cur, prev fetch.Result) fetch.Result {
	return fetch.Result{
		Instructions: cur.Instructions - prev.Instructions,
		Misses:       cur.Misses - prev.Misses,
		BufferHits:   cur.BufferHits - prev.BufferHits,
		StallCycles:  cur.StallCycles - prev.StallCycles,
	}
}

// resultAdd accumulates a delta.
func resultAdd(acc, d fetch.Result) fetch.Result {
	acc.Instructions += d.Instructions
	acc.Misses += d.Misses
	acc.BufferHits += d.BufferHits
	acc.StallCycles += d.StallCycles
	return acc
}

// feedSpan issues n sequential fetches starting at start.
func feedSpan(e fetch.Engine, re fetch.RunEngine, start uint64, n int64) {
	if re != nil {
		re.FetchRun(start, n)
		return
	}
	addr := start
	for i := int64(0); i < n; i++ {
		e.Fetch(addr)
		addr += trace.InstrBytes
	}
}

// timeSampler is the time-sampling state machine for one engine, carried
// across arbitrarily chunked feeds: sampledTime pushes the whole run slice
// through it at once, SampledBlocks pushes one block at a time, and both
// produce identical results because all the state — window phase, open
// snapshot, cluster list — lives here rather than in a loop frame.
type timeSampler struct {
	e    fetch.Engine
	re   fetch.RunEngine
	plan SamplePlan

	measured fetch.Result
	clusters []sampling.Cluster
	prev     fetch.Result
	inWindow bool
	pos      int64 // absolute instruction position
	ri       int   // runs consumed, for context-poll cadence
}

func newTimeSampler(e fetch.Engine, plan SamplePlan) *timeSampler {
	re, _ := e.(fetch.RunEngine)
	return &timeSampler{e: e, re: re, plan: plan}
}

func (s *timeSampler) closeWindow() {
	if !s.inWindow {
		return
	}
	d := resultDelta(s.e.Result(), s.prev)
	s.measured = resultAdd(s.measured, d)
	s.clusters = append(s.clusters, sampling.Cluster{Instructions: d.Instructions, Misses: d.Misses})
	s.inWindow = false
}

// feed advances the sampler over the next chunk of the trace.
func (s *timeSampler) feed(ctx context.Context, runs []trace.Run) error {
	for _, r := range runs {
		if s.ri&(runChunk-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s.ri++
		for off := int64(0); off < r.Len; {
			phase := (s.pos + off) % s.plan.Period
			if phase < s.plan.Window {
				seg := s.plan.Window - phase
				if rem := r.Len - off; seg > rem {
					seg = rem
				}
				if !s.inWindow {
					s.prev = s.e.Result()
					s.inWindow = true
				}
				feedSpan(s.e, s.re, r.Start+uint64(off)*trace.InstrBytes, seg)
				off += seg
			} else {
				s.closeWindow()
				seg := s.plan.Period - phase
				if rem := r.Len - off; seg > rem {
					seg = rem
				}
				if s.plan.Warm {
					feedSpan(s.e, s.re, r.Start+uint64(off)*trace.InstrBytes, seg)
				}
				off += seg
			}
		}
		s.pos += r.Len
	}
	return nil
}

// finish closes any open window and assembles the result.
func (s *timeSampler) finish() SampledResult {
	s.closeWindow()
	res := SampledResult{Measured: s.measured}
	f := float64(0)
	if s.pos > 0 {
		f = float64(s.measured.Instructions) / float64(s.pos)
	}
	res.Estimate = sampling.EstimateFrom(s.clusters, s.pos, f)
	return res
}

// sampledTime replays one engine under a time plan: measured windows are
// delimited by Result snapshots, each window one variance cluster.
func sampledTime(ctx context.Context, runs []trace.Run, e fetch.Engine, plan SamplePlan) (SampledResult, error) {
	s := newTimeSampler(e, plan)
	if err := s.feed(ctx, runs); err != nil {
		return SampledResult{}, err
	}
	return s.finish(), nil
}

// setFilter incrementally filters a trace down to the sampled congruence
// class, split into setClusters subgroups by the line-address bits just
// above the modulus. Runs arrive in any chunking (a materialized slice, or
// block by block from a BlockSource) and the subgroup lists come out
// identical — the streaming core shared by Sampled and SampledBlocks.
type setFilter struct {
	subs     [][]trace.Run
	shift    uint
	modShift uint
	ipl      int64
	mod      uint64
	match    uint64
	total    int64
}

func newSetFilter(plan SamplePlan) *setFilter {
	f := &setFilter{
		subs:  make([][]trace.Run, setClusters),
		ipl:   int64(plan.LineSize / trace.InstrBytes),
		mod:   uint64(plan.SetMod),
		match: uint64(plan.SetMatch),
	}
	for v := plan.LineSize; v > 1; v >>= 1 {
		f.shift++
	}
	for v := plan.SetMod; v > 1; v >>= 1 {
		f.modShift++
	}
	return f
}

// add filters one run into the subgroups.
func (f *setFilter) add(r trace.Run) {
	f.total += r.Len
	first := r.Start >> f.shift
	headOff := int64(r.Start/trace.InstrBytes) & (f.ipl - 1)
	head := f.ipl - headOff
	if head > r.Len {
		head = r.Len
	}
	nlines := int64(1)
	if rem := r.Len - head; rem > 0 {
		nlines += (rem + f.ipl - 1) / f.ipl
	}
	for i := int64((f.match - first) & (f.mod - 1)); i < nlines; i += int64(f.mod) {
		l := first + uint64(i)
		var start uint64
		var cnt int64
		if i == 0 {
			start, cnt = r.Start, head
		} else {
			off := head + (i-1)*f.ipl
			start = r.Start + uint64(off)*trace.InstrBytes
			cnt = r.Len - off
			if cnt > f.ipl {
				cnt = f.ipl
			}
		}
		g := (l >> f.modShift) & (setClusters - 1)
		f.subs[g] = append(f.subs[g], trace.Run{Start: start, Len: cnt, Domain: r.Domain})
	}
}

// setSubruns filters the trace down to the sampled congruence class once
// (shared by every engine in the bank). Returns the subgroup run lists and
// the total instruction count of the unfiltered trace.
func setSubruns(runs []trace.Run, plan SamplePlan) ([][]trace.Run, int64) {
	f := newSetFilter(plan)
	for _, r := range runs {
		f.add(r)
	}
	return f.subs, f.total
}

// sampledSet replays the pre-filtered subgroups through one engine, one
// Result snapshot per subgroup.
func sampledSet(ctx context.Context, subs [][]trace.Run, total int64, e fetch.Engine, plan SamplePlan) (SampledResult, error) {
	var res SampledResult
	clusters := make([]sampling.Cluster, 0, len(subs))
	var prev fetch.Result
	for _, sub := range subs {
		if err := replayOne(ctx, sub, e); err != nil {
			return SampledResult{}, err
		}
		cur := e.Result()
		d := resultDelta(cur, prev)
		prev = cur
		clusters = append(clusters, sampling.Cluster{Instructions: d.Instructions, Misses: d.Misses})
	}
	res.Measured = e.Result()
	res.Estimate = sampling.EstimateFrom(clusters, total, 1/float64(plan.SetMod))
	return res, nil
}
