package replay

import (
	"context"
	"fmt"

	"ibsim/internal/fetch"
	"ibsim/internal/sampling"
	"ibsim/internal/trace"
)

// Sampled replay: the fan-out driver's speed/fidelity dial. Instead of
// feeding every engine the whole trace, feed it a statistical sample and
// report each engine's counters together with a sampling.Estimate carrying
// the MPI extrapolation and its 95% confidence interval.
//
// Two mutually exclusive plans:
//
//   - Time sampling (Window/Period): the first Window of every Period
//     instructions are measured. Warm feeds the skipped spans too — engine
//     state stays current ("functional warming", unbiased, the default for
//     the service tier) — while !Warm skips them entirely for maximum speed
//     at a stale-state bias. Each window is one variance cluster. Valid for
//     EVERY engine type: timing, stream buffers, prefetchers.
//
//   - Set sampling (SetMod/SetMatch at LineSize): only the lines of one
//     address congruence class are replayed, grouped into setClusters
//     subgroups fed in order. Exact within the subset only for prefetch-free
//     blocking engines whose line size equals LineSize and whose set count
//     is at least SetMod*setClusters (per-set access order is preserved);
//     engines with cross-set behavior (stream buffers, next-line prefetch)
//     see a distorted stream and get an approximation. The sweep engine is
//     the first-class home of set sampling — here it exists for
//     blocking-bank studies.
type SamplePlan struct {
	// Window/Period schedule time sampling: the first Window of every
	// Period instructions are measured. Window == Period measures
	// everything (exact, CI 0).
	Window int64
	Period int64
	// Warm replays unmeasured spans without counting them (engine state
	// stays warm); false skips them.
	Warm bool
	// SetMod/SetMatch/LineSize select set sampling instead: only lines (of
	// LineSize bytes) congruent to SetMatch mod SetMod are replayed.
	SetMod   int
	SetMatch int
	LineSize int
}

// setClusters is the number of congruence subgroups a set-sampled replay is
// split into for variance estimation (one Result snapshot per subgroup).
const setClusters = 8

// timeMode reports whether the plan uses time sampling.
func (p SamplePlan) timeMode() bool { return p.Window > 0 || p.Period > 0 }

// Validate checks the plan.
func (p SamplePlan) Validate() error {
	timeMode := p.timeMode()
	setMode := p.SetMod != 0 || p.SetMatch != 0 || p.LineSize != 0
	switch {
	case timeMode && setMode:
		return fmt.Errorf("replay: sampling plan mixes time and set dimensions; pick one")
	case timeMode:
		if p.Window <= 0 {
			return fmt.Errorf("replay: sampling window %d must be positive", p.Window)
		}
		if p.Period < p.Window {
			return fmt.Errorf("replay: sampling period %d < window %d", p.Period, p.Window)
		}
	case setMode:
		if p.SetMod <= 1 || p.SetMod&(p.SetMod-1) != 0 {
			return fmt.Errorf("replay: set-sampling modulus %d must be a power of two > 1", p.SetMod)
		}
		if p.SetMatch < 0 || p.SetMatch >= p.SetMod {
			return fmt.Errorf("replay: set-sampling match %d outside [0,%d)", p.SetMatch, p.SetMod)
		}
		if p.LineSize < trace.InstrBytes || p.LineSize&(p.LineSize-1) != 0 {
			return fmt.Errorf("replay: set-sampling line size %d must be a power of two >= %d", p.LineSize, trace.InstrBytes)
		}
	default:
		return fmt.Errorf("replay: sampling plan selects no dimension")
	}
	return nil
}

// SampledResult is one engine's sampled replay outcome.
type SampledResult struct {
	// Measured holds the counters accumulated over measured spans only —
	// Measured.CPIinstr() and Measured.MPI() are the sampled estimates of
	// the full-trace values.
	Measured fetch.Result
	// Estimate extrapolates the miss rate to the full trace with a 95%
	// confidence interval.
	Estimate sampling.Estimate
}

// Sampled replays the trace sample through every engine in the bank and
// returns per-engine estimates in bank order. Engines are mutated (fed the
// sample); as with Replay, pass freshly built engines.
func Sampled(ctx context.Context, runs []trace.Run, engines []fetch.Engine, plan SamplePlan) ([]SampledResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	results := make([]SampledResult, len(engines))
	if plan.timeMode() {
		for i, e := range engines {
			r, err := sampledTime(ctx, runs, e, plan)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	subs, total := setSubruns(runs, plan)
	for i, e := range engines {
		r, err := sampledSet(ctx, subs, total, e, plan)
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return results, nil
}

// resultDelta subtracts two counter snapshots.
func resultDelta(cur, prev fetch.Result) fetch.Result {
	return fetch.Result{
		Instructions: cur.Instructions - prev.Instructions,
		Misses:       cur.Misses - prev.Misses,
		BufferHits:   cur.BufferHits - prev.BufferHits,
		StallCycles:  cur.StallCycles - prev.StallCycles,
	}
}

// resultAdd accumulates a delta.
func resultAdd(acc, d fetch.Result) fetch.Result {
	acc.Instructions += d.Instructions
	acc.Misses += d.Misses
	acc.BufferHits += d.BufferHits
	acc.StallCycles += d.StallCycles
	return acc
}

// feedSpan issues n sequential fetches starting at start.
func feedSpan(e fetch.Engine, re fetch.RunEngine, start uint64, n int64) {
	if re != nil {
		re.FetchRun(start, n)
		return
	}
	addr := start
	for i := int64(0); i < n; i++ {
		e.Fetch(addr)
		addr += trace.InstrBytes
	}
}

// sampledTime replays one engine under a time plan: measured windows are
// delimited by Result snapshots, each window one variance cluster.
func sampledTime(ctx context.Context, runs []trace.Run, e fetch.Engine, plan SamplePlan) (SampledResult, error) {
	re, _ := e.(fetch.RunEngine)
	var res SampledResult
	var clusters []sampling.Cluster
	var prev fetch.Result
	inWindow := false
	closeWindow := func() {
		if !inWindow {
			return
		}
		d := resultDelta(e.Result(), prev)
		res.Measured = resultAdd(res.Measured, d)
		clusters = append(clusters, sampling.Cluster{Instructions: d.Instructions, Misses: d.Misses})
		inWindow = false
	}
	var pos int64
	for ri, r := range runs {
		if ri&(runChunk-1) == 0 {
			if err := ctx.Err(); err != nil {
				return SampledResult{}, err
			}
		}
		for off := int64(0); off < r.Len; {
			phase := (pos + off) % plan.Period
			if phase < plan.Window {
				seg := plan.Window - phase
				if rem := r.Len - off; seg > rem {
					seg = rem
				}
				if !inWindow {
					prev = e.Result()
					inWindow = true
				}
				feedSpan(e, re, r.Start+uint64(off)*trace.InstrBytes, seg)
				off += seg
			} else {
				closeWindow()
				seg := plan.Period - phase
				if rem := r.Len - off; seg > rem {
					seg = rem
				}
				if plan.Warm {
					feedSpan(e, re, r.Start+uint64(off)*trace.InstrBytes, seg)
				}
				off += seg
			}
		}
		pos += r.Len
	}
	closeWindow()
	f := float64(0)
	if pos > 0 {
		f = float64(res.Measured.Instructions) / float64(pos)
	}
	res.Estimate = sampling.EstimateFrom(clusters, pos, f)
	return res, nil
}

// setSubruns filters the trace down to the sampled congruence class once
// (shared by every engine in the bank), split into setClusters subgroups by
// the line-address bits just above the modulus. Returns the subgroup run
// lists and the total instruction count of the unfiltered trace.
func setSubruns(runs []trace.Run, plan SamplePlan) ([][]trace.Run, int64) {
	subs := make([][]trace.Run, setClusters)
	var shift uint
	for v := plan.LineSize; v > 1; v >>= 1 {
		shift++
	}
	var modShift uint
	for v := plan.SetMod; v > 1; v >>= 1 {
		modShift++
	}
	ipl := int64(plan.LineSize / trace.InstrBytes)
	mod := uint64(plan.SetMod)
	match := uint64(plan.SetMatch)
	var total int64
	for _, r := range runs {
		total += r.Len
		first := r.Start >> shift
		headOff := int64(r.Start/trace.InstrBytes) & (ipl - 1)
		head := ipl - headOff
		if head > r.Len {
			head = r.Len
		}
		nlines := int64(1)
		if rem := r.Len - head; rem > 0 {
			nlines += (rem + ipl - 1) / ipl
		}
		for i := int64((match - first) & (mod - 1)); i < nlines; i += int64(mod) {
			l := first + uint64(i)
			var start uint64
			var cnt int64
			if i == 0 {
				start, cnt = r.Start, head
			} else {
				off := head + (i-1)*ipl
				start = r.Start + uint64(off)*trace.InstrBytes
				cnt = r.Len - off
				if cnt > ipl {
					cnt = ipl
				}
			}
			g := (l >> modShift) & (setClusters - 1)
			subs[g] = append(subs[g], trace.Run{Start: start, Len: cnt, Domain: r.Domain})
		}
	}
	return subs, total
}

// sampledSet replays the pre-filtered subgroups through one engine, one
// Result snapshot per subgroup.
func sampledSet(ctx context.Context, subs [][]trace.Run, total int64, e fetch.Engine, plan SamplePlan) (SampledResult, error) {
	var res SampledResult
	clusters := make([]sampling.Cluster, 0, len(subs))
	var prev fetch.Result
	for _, sub := range subs {
		if err := replayOne(ctx, sub, e); err != nil {
			return SampledResult{}, err
		}
		cur := e.Result()
		d := resultDelta(cur, prev)
		prev = cur
		clusters = append(clusters, sampling.Cluster{Instructions: d.Instructions, Misses: d.Misses})
	}
	res.Measured = e.Result()
	res.Estimate = sampling.EstimateFrom(clusters, total, 1/float64(plan.SetMod))
	return res, nil
}
