package replay

import (
	"context"
	"errors"
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/trace"
)

// BlocksParallel must be bit-identical to the serial Blocks path for every
// worker count, including degenerate ones, across the mixed bank with its
// analytically derived cells.
func TestBlocksParallelMatchesSerial(t *testing.T) {
	runs := trace.Compact(testTrace(23, 80000))
	cf := columnarSource(t, runs, 512)
	if cf.NumBlocks() < 8 {
		t.Fatalf("only %d blocks; fixture too small", cf.NumBlocks())
	}
	want, err := Blocks(context.Background(), cf, bank(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 4, 16} {
		got, err := BlocksParallel(context.Background(), cf, bank(t), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d engine %d: parallel %+v != serial %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// A single-engine bank or a single-block trace must take the serial path and
// still answer correctly.
func TestBlocksParallelDegenerate(t *testing.T) {
	runs := trace.Compact(testTrace(5, 20000))
	one := columnarSource(t, runs, 1<<20) // one huge block
	if one.NumBlocks() != 1 {
		t.Fatalf("fixture has %d blocks, want 1", one.NumBlocks())
	}
	mk := func() fetch.Engine {
		e, err := fetch.NewBlocking(cache.Config{Size: 16384, LineSize: 32, Assoc: 1},
			memsys.Transfer{Latency: 6, BytesPerCycle: 16}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	wantRes, err := Replay(context.Background(), runs, []fetch.Engine{mk()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := BlocksParallel(context.Background(), one, []fetch.Engine{mk()}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != wantRes[0] {
		t.Fatalf("degenerate parallel %+v != serial %+v", got[0], wantRes[0])
	}
}

func TestBlocksParallelCancel(t *testing.T) {
	runs := trace.Compact(testTrace(3, 40000))
	cf := columnarSource(t, runs, 512)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BlocksParallel(ctx, cf, bank(t), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A decode failure in one worker must surface as the call's error and stop
// the siblings instead of deadlocking.
func TestBlocksParallelErrorPropagates(t *testing.T) {
	runs := trace.Compact(testTrace(9, 40000))
	boom := errors.New("injected block decode failure")
	bs := &failingBlocks{RunsBlocks: trace.NewRunsBlocks(runs, 5), failAt: 3, err: boom}
	if _, err := BlocksParallel(context.Background(), bs, bank(t), 3); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

// failingBlocks wraps a BlockSource, failing one block's decode.
type failingBlocks struct {
	*trace.RunsBlocks
	failAt int
	err    error
}

func (f *failingBlocks) BlockRuns(i int, dst []trace.Run) ([]trace.Run, error) {
	if i == f.failAt {
		return dst[:0], f.err
	}
	return f.RunsBlocks.BlockRuns(i, dst)
}
