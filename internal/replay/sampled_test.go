package replay

import (
	"context"
	"errors"
	"math"
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/trace"
)

// A full-coverage warm time plan measures everything: Measured must equal
// the exact fan-out bit for bit across the whole mixed bank, with CI 0.
func TestSampledFullCoverageEqualsReplay(t *testing.T) {
	refs := testTrace(11, 60000)
	runs := trace.Compact(refs)
	exact, err := Replay(context.Background(), runs, bank(t))
	if err != nil {
		t.Fatal(err)
	}
	plan := SamplePlan{Window: 5000, Period: 5000, Warm: true}
	got, err := Sampled(context.Background(), runs, bank(t), plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if got[i].Measured != exact[i] {
			t.Errorf("engine %d: sampled %+v != exact %+v", i, got[i].Measured, exact[i])
		}
		est := got[i].Estimate
		if est.CI95 != 0 || est.Coverage != 1 {
			t.Errorf("engine %d: full-coverage estimate has CI %v coverage %v", i, est.CI95, est.Coverage)
		}
		if want := exact[i].MPI(); math.Abs(est.MPI-want) > 1e-12 {
			t.Errorf("engine %d: MPI %v, want %v", i, est.MPI, want)
		}
	}
}

// Warm time sampling at 1/4 coverage tracks the exact MPI and CPI closely
// and reports honest coverage and cluster counts.
func TestSampledTimeWarmTracksExact(t *testing.T) {
	refs := testTrace(5, 200000)
	runs := trace.Compact(refs)
	exact, err := Replay(context.Background(), runs, bank(t))
	if err != nil {
		t.Fatal(err)
	}
	plan := SamplePlan{Window: 2000, Period: 8000, Warm: true}
	got, err := Sampled(context.Background(), runs, bank(t), plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		est := got[i].Estimate
		if c := est.Coverage; math.Abs(c-0.25) > 0.01 {
			t.Fatalf("engine %d: coverage %v, want ~0.25", i, c)
		}
		if est.Clusters < 10 {
			t.Fatalf("engine %d: only %d window clusters", i, est.Clusters)
		}
		exactMPI := exact[i].MPI()
		if d := math.Abs(est.MPI - exactMPI); exactMPI > 0 && d > 0.15*exactMPI {
			t.Errorf("engine %d (%T): sampled MPI %v off exact %v by %.1f%%",
				i, bank(t)[i], est.MPI, exactMPI, 100*d/exactMPI)
		}
		exactCPI := exact[i].CPIinstr()
		if d := math.Abs(got[i].Measured.CPIinstr() - exactCPI); d > 0.15*exactCPI {
			t.Errorf("engine %d: sampled CPI %v off exact %v", i, got[i].Measured.CPIinstr(), exactCPI)
		}
	}
}

// Set sampling through a prefetch-free blocking engine with enough sets is
// exact within the subset: Measured must be bit-identical to replaying only
// the sampled congruence class in trace order.
func TestSampledSetBlockingSubsetExact(t *testing.T) {
	refs := testTrace(7, 120000)
	runs := trace.Compact(refs)
	cfg := cache.Config{Size: 16384, LineSize: 32, Assoc: 1} // 512 sets >= 16*setClusters
	link := memsys.Transfer{Latency: 6, BytesPerCycle: 16}
	const mod, match = 16, 9
	plan := SamplePlan{SetMod: mod, SetMatch: match, LineSize: 32}
	e, err := fetch.NewBlocking(cfg, link, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sampled(context.Background(), runs, []fetch.Engine{e}, plan)
	if err != nil {
		t.Fatal(err)
	}
	var filtered []trace.Ref
	for _, r := range refs {
		if int(r.Addr>>5)&(mod-1) == match {
			filtered = append(filtered, r)
		}
	}
	ref, err := fetch.NewBlocking(cfg, link, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fetch.Run(ref, filtered)
	if got[0].Measured != want {
		t.Fatalf("set-sampled %+v != subset-exact %+v", got[0].Measured, want)
	}
	est := got[0].Estimate
	if est.CI95 <= 0 {
		t.Fatalf("set-sampled estimate has no interval: %+v", est)
	}
	if math.Abs(est.Coverage-1.0/mod) > 0.2/mod {
		t.Fatalf("coverage %v, want ~1/%d", est.Coverage, mod)
	}
	exactMPI := float64(0)
	{
		full, err := fetch.NewBlocking(cfg, link, 0)
		if err != nil {
			t.Fatal(err)
		}
		exactMPI = fetch.Run(full, refs).MPI()
	}
	if !est.Contains(exactMPI) && math.Abs(est.MPI-exactMPI) > 2*est.CI95 {
		t.Fatalf("exact MPI %v far outside interval %v ± %v", exactMPI, est.MPI, est.CI95)
	}
}

// An engine without a bulk path goes through the per-instruction feed and
// must match a bulk engine of the same geometry under the same plan.
func TestSampledNonBulkEngine(t *testing.T) {
	refs := testTrace(9, 50000)
	runs := trace.Compact(refs)
	cfg := cache.Config{Size: 8192, LineSize: 16, Assoc: 2}
	link := memsys.Transfer{Latency: 6, BytesPerCycle: 16}
	a, _ := fetch.NewBlocking(cfg, link, 0)
	b, _ := fetch.NewBlocking(cfg, link, 0)
	plan := SamplePlan{Window: 1000, Period: 4000, Warm: true}
	got, err := Sampled(context.Background(), runs, []fetch.Engine{&plainEngine{inner: a}, b}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Measured != got[1].Measured {
		t.Fatalf("plain %+v != bulk %+v", got[0].Measured, got[1].Measured)
	}
}

func TestSamplePlanValidation(t *testing.T) {
	for _, p := range []SamplePlan{
		{}, // no dimension
		{Window: 100, Period: 400, SetMod: 16, LineSize: 32}, // both dimensions
		{Period: 400},                            // period without window
		{Window: 400, Period: 100},               // window > period
		{SetMod: 3, LineSize: 32},                // non-power-of-two mod
		{SetMod: 16, SetMatch: 16, LineSize: 32}, // match out of range
		{SetMod: 16, LineSize: 0},                // set mode without line size
		{SetMod: 16, LineSize: 48},               // non-power-of-two line size
		{SetMatch: 3},                            // match without mod
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid plan %+v accepted", p)
		}
	}
	for _, p := range []SamplePlan{
		{Window: 100, Period: 400, Warm: true},
		{Window: 400, Period: 400},
		{SetMod: 16, SetMatch: 5, LineSize: 32},
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("valid plan %+v rejected: %v", p, err)
		}
	}
}

func TestSampledCancellation(t *testing.T) {
	refs := testTrace(13, 100000)
	runs := trace.Compact(refs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, plan := range []SamplePlan{
		{Window: 1000, Period: 4000, Warm: true},
		{SetMod: 16, LineSize: 32},
	} {
		if _, err := Sampled(ctx, runs, bank(t), plan); !errors.Is(err, context.Canceled) {
			t.Errorf("plan %+v: err = %v, want context.Canceled", plan, err)
		}
	}
}
