package replay

import (
	"context"
	"reflect"
	"testing"

	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// synthSeeker builds a seekable source over a synthetic workload plus the
// compacted run list of the identical trace for the reference path.
func synthSeeker(t *testing.T, name string, seed uint64, n int64, every int64) (*synth.SeekSource, []trace.Run) {
	t.Helper()
	p, err := synth.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := synth.InstrTrace(p, seed, n)
	if err != nil {
		t.Fatal(err)
	}
	var ix *synth.CheckpointIndex
	if every > 0 {
		ix = synth.NewCheckpointIndex(every)
	}
	src, err := synth.NewSeekSource(p, seed, n, ix)
	if err != nil {
		t.Fatal(err)
	}
	return src, trace.Compact(refs)
}

// SampledSeek must be bit-identical to Sampled over the same trace for the
// whole mixed engine bank — blocking, prefetch, sector, bypass, and stream
// engines — with and without a checkpoint index, on aligned and ragged
// trace lengths.
func TestSampledSeekMatchesSampled(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seed   uint64
		n      int64
		every  int64
		window int64
		period int64
	}{
		{"gs", 11, 120_000, 0, 2000, 16_000},
		{"gs", 11, 120_000, 4096, 2000, 16_000},
		{"sdet", 5, 99_123, 1024, 1000, 8000},
		{"mpeg_play", 2, 64_000, 4096, 512, 4096},
	} {
		src, runs := synthSeeker(t, tc.name, tc.seed, tc.n, tc.every)
		plan := SamplePlan{Window: tc.window, Period: tc.period}
		want, err := Sampled(context.Background(), runs, bank(t), plan)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SampledSeek(context.Background(), src, bank(t), plan)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s/%d every=%d engine %d: seeked %+v != sampled %+v",
					tc.name, tc.n, tc.every, i, got[i], want[i])
			}
		}
	}
}

// SampledSeek refuses plans it cannot honor without walking skipped spans.
func TestSampledSeekValidation(t *testing.T) {
	src, _ := synthSeeker(t, "gs", 1, 10_000, 0)
	for _, plan := range []SamplePlan{
		{},                                      // no dimension
		{SetMod: 8, SetMatch: 1, LineSize: 32},  // set-only
		{Window: 500, Period: 500},              // full window: nothing to skip
		{Window: 500, Period: 4000, Warm: true}, // warm must walk skipped spans
	} {
		if _, err := SampledSeek(context.Background(), src, bank(t), plan); err == nil {
			t.Fatalf("SampledSeek accepted plan %+v", plan)
		}
	}
}
