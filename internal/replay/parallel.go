package replay

import (
	"context"
	"sync"

	"ibsim/internal/fetch"
	"ibsim/internal/trace"
)

// BlocksParallel is the block-parallel variant of Blocks: the bank's
// simulated engines are partitioned across up to `workers` goroutines, and
// each goroutine walks the columnar blocks independently with its own decode
// buffer (BlockSource implementations guarantee concurrent BlockRuns with
// distinct buffers). An engine's state is sequential across blocks — block b
// must finish before b+1 starts for that engine — so the parallel axis is
// the bank: different workers replay different engines over different blocks
// at the same time, turning the serial decode-once/replay-all loop into
// independent decode-and-replay pipelines.
//
// Results are identical to Blocks in bank order — same analytic dedup plan,
// same per-engine replay order — pinned by the differential/blocks-parallel
// check and this package's tests. Memory is O(workers × block).
//
// workers <= 1, a single-block trace, or a bank with one simulated engine
// degenerates to the serial path.
func BlocksParallel(ctx context.Context, bs trace.BlockSource, engines []fetch.Engine, workers int) ([]fetch.Result, error) {
	repOf, derived := planBank(engines)
	var simulated []int
	for i := range engines {
		if _, isDerived := repOf[i]; !isDerived {
			simulated = append(simulated, i)
		}
	}
	if workers > len(simulated) {
		workers = len(simulated)
	}
	if workers <= 1 || bs.NumBlocks() <= 1 {
		return Blocks(ctx, bs, engines)
	}

	// Strided partition: engine i goes to worker i%workers, so banks built
	// as homogeneous sweeps (the common case) spread their heavy engines
	// evenly instead of handing one worker a contiguous expensive stripe.
	groups := make([][]int, workers)
	for pos, idx := range simulated {
		groups[pos%workers] = append(groups[pos%workers], idx)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, group := range groups {
		wg.Add(1)
		go func(group []int) {
			defer wg.Done()
			if err := replayGroup(ctx, bs, engines, group); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel() // stop sibling workers promptly
			}
		}(group)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	results := make([]fetch.Result, len(engines))
	for _, i := range simulated {
		results[i] = engines[i].Result()
	}
	fillDerived(results, engines, repOf, derived)
	return results, nil
}

// replayGroup drains every block through one worker's engine subset with a
// private decode buffer.
func replayGroup(ctx context.Context, bs trace.BlockSource, engines []fetch.Engine, group []int) error {
	var buf []trace.Run
	nb := bs.NumBlocks()
	for b := 0; b < nb; b++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		buf, err = bs.BlockRuns(b, buf)
		if err != nil {
			return err
		}
		for _, i := range group {
			if err := replayOne(ctx, buf, engines[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
