package replay

import (
	"context"
	"sort"

	"ibsim/internal/fetch"
	"ibsim/internal/trace"
)

// Block-granular fan-out: the same drivers as Replay/Sampled, consuming a
// trace.BlockSource (a columnar file via mmap, or any other block-sliced
// trace) one ~1 MB block at a time instead of a materialized []trace.Run.
// Memory stays O(block) however large the trace — each block is decoded once
// into a reused buffer and fed to every simulated engine while it is hot —
// and results are identical to the in-memory path, pinned by the
// differential/columnar-replay check and this package's tests.

// Blocks replays every engine in the bank over a block-granular trace and
// returns their Results in bank order — exactly Replay over the
// concatenated runs, with the same analytic dedup of blocking engines.
// Unlike Replay, the trace is decoded block by block (once per block, not
// once per engine), so a columnar file far beyond the RAM budget replays
// with one block buffer of live memory.
func Blocks(ctx context.Context, bs trace.BlockSource, engines []fetch.Engine) ([]fetch.Result, error) {
	results := make([]fetch.Result, len(engines))
	repOf, derived := planBank(engines)

	var buf []trace.Run
	nb := bs.NumBlocks()
	for b := 0; b < nb; b++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		buf, err = bs.BlockRuns(b, buf)
		if err != nil {
			return nil, err
		}
		for i, e := range engines {
			if _, isDerived := repOf[i]; isDerived {
				continue
			}
			if err := replayOne(ctx, buf, e); err != nil {
				return nil, err
			}
		}
	}
	for i, e := range engines {
		if _, isDerived := repOf[i]; isDerived {
			continue
		}
		results[i] = e.Result()
	}
	fillDerived(results, engines, repOf, derived)
	return results, nil
}

// blockCursor walks a BlockSource by absolute instruction position: Seek is
// O(log blocks) through the cumulative-refs index, and sequential walks
// within one block resume from a cached run cursor instead of rescanning.
// It is what gives sampled time-windows their O(1)-per-window entry into an
// arbitrarily large trace.
type blockCursor struct {
	bs  trace.BlockSource
	cum []int64 // cum[i] = instructions before block i; len = blocks+1

	blk    int // decoded block index; -1 before first decode
	buf    []trace.Run
	runIdx int   // cursor within buf...
	runPos int64 // ...at this absolute instruction position
}

func newBlockCursor(bs trace.BlockSource) *blockCursor {
	n := bs.NumBlocks()
	cum := make([]int64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + bs.BlockMeta(i).Refs
	}
	return &blockCursor{bs: bs, cum: cum, blk: -1}
}

// total returns the trace's instruction count.
func (c *blockCursor) total() int64 { return c.cum[len(c.cum)-1] }

// walk invokes fn(start, cnt) over the maximal sequential spans covering
// instructions [pos, pos+n), clipped to the trace end.
func (c *blockCursor) walk(pos, n int64, fn func(start uint64, cnt int64)) error {
	if end := c.total(); pos+n > end {
		n = end - pos
	}
	for n > 0 {
		// Locate the covering block (usually the current one).
		b := c.blk
		if b < 0 || pos < c.cum[b] || pos >= c.cum[b+1] {
			b = sort.Search(len(c.cum)-1, func(i int) bool { return c.cum[i+1] > pos })
			var err error
			if c.buf, err = c.bs.BlockRuns(b, c.buf); err != nil {
				return err
			}
			c.blk = b
			c.runIdx, c.runPos = 0, c.cum[b]
		}
		if pos < c.runPos {
			// A backward seek within the block: restart its run cursor.
			c.runIdx, c.runPos = 0, c.cum[b]
		}
		for c.runIdx < len(c.buf) && n > 0 {
			r := c.buf[c.runIdx]
			off := pos - c.runPos
			if off >= r.Len {
				c.runIdx++
				c.runPos += r.Len
				continue
			}
			take := r.Len - off
			if take > n {
				take = n
			}
			fn(r.Start+uint64(off)*trace.InstrBytes, take)
			pos += take
			n -= take
		}
		// Block exhausted with instructions still owed: the next loop
		// iteration seeks the following block.
	}
	return nil
}
