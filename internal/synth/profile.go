// Package synth generates synthetic multi-address-space reference traces
// that stand in for the paper's hardware-captured IBS and SPEC workloads.
//
// The substitution is documented in DESIGN.md: the paper's results derive
// from statistical locality properties of its traces — code footprint,
// procedure working sets, loop residency, path lengths between control
// transfers, and the interleaving of protection domains (user task, kernel,
// BSD server, X server). This package models a workload as a set of
// per-domain program images (modules of procedures laid out in a sparse text
// segment) walked by a seeded random process (Zipf procedure popularity,
// geometric loop iteration counts, short forward branches, calls, domain
// switches). Every knob is a named field of Profile, and the shipped
// profiles (workloads.go) are calibrated against the miss ratios the paper
// prints.
package synth

import (
	"fmt"

	"ibsim/internal/trace"
)

// OSModel selects the operating-system structure of a workload.
type OSModel uint8

const (
	// Monolithic models Ultrix 3.1: user task + one big kernel; OS services
	// (file system, networking, display management) execute in the kernel
	// and the X server; there is no API-emulation library.
	Monolithic OSModel = iota
	// Microkernel models Mach 3.0: a small kernel plus user-level BSD and X
	// servers, with a 4.3 BSD API-emulation library dynamically linked into
	// each user task. More protection domains, longer cross-domain paths.
	Microkernel
)

// String names the OS model.
func (m OSModel) String() string {
	switch m {
	case Monolithic:
		return "monolithic (Ultrix 3.1)"
	case Microkernel:
		return "microkernel (Mach 3.0)"
	default:
		return fmt.Sprintf("OSModel(%d)", uint8(m))
	}
}

// DomainProfile describes one protection domain's program image and the walk
// over it.
type DomainProfile struct {
	// TimeShare is the fraction of instructions executed in this domain
	// (Table 4's "Workload Components"). Shares across domains should sum
	// to 1; Validate checks this within tolerance and the generator
	// normalizes.
	TimeShare float64
	// Procs is the number of procedures in the domain's text image.
	Procs int
	// MeanProcBytes is the mean procedure size in bytes (procedure sizes
	// are drawn from a geometric distribution around this mean, minimum 64
	// bytes, rounded to 4-byte instructions).
	MeanProcBytes int
	// Theta is the Zipf exponent s of procedure popularity,
	// p(rank r) ∝ 1/(r+1)^s: larger values concentrate execution in fewer
	// procedures (tighter working set). Typical: ~1.2 for flat, bloated
	// profiles (IBS), ~1.8 for loop-dominated SPEC codes.
	Theta float64
	// LoopProb is the probability that a procedure visit re-executes an
	// inner loop after its sequential pass.
	LoopProb float64
	// MeanLoopIter is the mean number of extra loop iterations when a loop
	// runs.
	MeanLoopIter float64
	// MeanLoopFrac is the fraction of the procedure body an inner loop
	// covers (0 < frac <= 1).
	MeanLoopFrac float64
	// CallProb is the per-instruction probability of calling another
	// procedure (depth-limited).
	CallProb float64
	// SkipProb is the per-instruction probability of a short forward
	// branch that skips 2–6 instructions.
	SkipProb float64
	// JumpProb is the per-instruction probability of a far taken branch to
	// a uniformly random later point in the procedure body. Far jumps are
	// what bound the utility of long cache lines and stream buffers
	// (Figure 6, Table 8); loop-dominated SPEC codes take fewer of them.
	JumpProb float64
	// MeanResidency is the mean number of instructions executed in this
	// domain before control transfers to another domain.
	MeanResidency float64
	// HotLayout, when true, lays procedures out in popularity order (hot
	// procedures contiguous at the front of the image) instead of the
	// default scattered linker order — the profile-guided code placement of
	// Hwu & Chang and McFarling that the paper's related-work section
	// describes. It reduces both the hot working set's page count and its
	// conflict misses.
	HotLayout bool
}

// DataProfile describes the data-reference stream synthesized alongside the
// instruction stream.
type DataProfile struct {
	// LoadFrac is the fraction of instructions that are loads.
	LoadFrac float64
	// StoreFrac is the fraction of instructions that are stores.
	StoreFrac float64
	// StreamFrac is the fraction of data references that walk sequentially
	// through a large array (the SPECfp access pattern that produced the
	// paper's Table 1 CPIdata of 0.668 for SPECfp89).
	StreamFrac float64
	// HeapPages is the number of heap pages per domain that non-streaming
	// heap references spread over (Zipf-distributed popularity).
	HeapPages int
}

// Profile is a complete synthetic workload description.
type Profile struct {
	// Name identifies the workload ("gs", "verilog", "eqntott", ...).
	Name string
	// Description is the one-line summary printed by workload inventories
	// (the paper's Table 2).
	Description string
	// OS selects the operating-system structure.
	OS OSModel
	// Domains describes each protection domain; domains with TimeShare 0
	// are absent from the workload.
	Domains [trace.NumDomains]DomainProfile
	// Data describes the data-reference stream. A zero value disables data
	// references (instruction-only traces).
	Data DataProfile
	// Seed is the default generation seed; distinct workloads use distinct
	// seeds so their layouts differ.
	Seed uint64
}

// Validate checks the profile for consistency.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("synth: profile has no name")
	}
	total := 0.0
	active := 0
	for d := 0; d < trace.NumDomains; d++ {
		dp := &p.Domains[d]
		if dp.TimeShare < 0 {
			return fmt.Errorf("synth: %s: domain %v has negative TimeShare", p.Name, trace.Domain(d))
		}
		if dp.TimeShare == 0 {
			continue
		}
		active++
		total += dp.TimeShare
		if dp.Procs <= 0 {
			return fmt.Errorf("synth: %s: domain %v has no procedures", p.Name, trace.Domain(d))
		}
		if dp.MeanProcBytes < 64 {
			return fmt.Errorf("synth: %s: domain %v MeanProcBytes %d < 64", p.Name, trace.Domain(d), dp.MeanProcBytes)
		}
		if dp.Theta <= 0 {
			return fmt.Errorf("synth: %s: domain %v Theta must be positive", p.Name, trace.Domain(d))
		}
		if dp.LoopProb < 0 || dp.LoopProb > 1 {
			return fmt.Errorf("synth: %s: domain %v LoopProb out of [0,1]", p.Name, trace.Domain(d))
		}
		if dp.MeanLoopFrac < 0 || dp.MeanLoopFrac > 1 {
			return fmt.Errorf("synth: %s: domain %v MeanLoopFrac out of [0,1]", p.Name, trace.Domain(d))
		}
		if dp.CallProb < 0 || dp.CallProb > 0.5 {
			return fmt.Errorf("synth: %s: domain %v CallProb out of [0,0.5]", p.Name, trace.Domain(d))
		}
		if dp.SkipProb < 0 || dp.SkipProb > 0.9 {
			return fmt.Errorf("synth: %s: domain %v SkipProb out of [0,0.9]", p.Name, trace.Domain(d))
		}
		if dp.JumpProb < 0 || dp.JumpProb > 0.5 {
			return fmt.Errorf("synth: %s: domain %v JumpProb out of [0,0.5]", p.Name, trace.Domain(d))
		}
		if dp.MeanResidency < 1 {
			return fmt.Errorf("synth: %s: domain %v MeanResidency %v < 1", p.Name, trace.Domain(d), dp.MeanResidency)
		}
	}
	if active == 0 {
		return fmt.Errorf("synth: %s: no active domains", p.Name)
	}
	if total < 0.99 || total > 1.01 {
		return fmt.Errorf("synth: %s: domain TimeShares sum to %.3f, want 1", p.Name, total)
	}
	d := p.Data
	if d.LoadFrac < 0 || d.StoreFrac < 0 || d.LoadFrac+d.StoreFrac > 1 {
		return fmt.Errorf("synth: %s: data fractions invalid (load %.2f store %.2f)", p.Name, d.LoadFrac, d.StoreFrac)
	}
	if d.StreamFrac < 0 || d.StreamFrac > 1 {
		return fmt.Errorf("synth: %s: StreamFrac out of [0,1]", p.Name)
	}
	if d.HeapPages < 0 {
		return fmt.Errorf("synth: %s: negative HeapPages", p.Name)
	}
	return nil
}

// Footprint returns the approximate total text bytes across active domains —
// the workload's static code size, the quantity "code bloat" grows.
func (p *Profile) Footprint() int64 {
	var total int64
	for d := 0; d < trace.NumDomains; d++ {
		dp := &p.Domains[d]
		if dp.TimeShare > 0 {
			total += int64(dp.Procs) * int64(dp.MeanProcBytes)
		}
	}
	return total
}

// ActiveDomains lists the domains with non-zero time share.
func (p *Profile) ActiveDomains() []trace.Domain {
	var out []trace.Domain
	for d := 0; d < trace.NumDomains; d++ {
		if p.Domains[d].TimeShare > 0 {
			out = append(out, trace.Domain(d))
		}
	}
	return out
}

// Scale returns a copy of the profile with every domain's code footprint
// multiplied by factor (procedure count scales; procedure size distribution
// is preserved). It models code bloat growth for ablations: Scale(1.15) is
// "the next release of gcc".
func (p *Profile) Scale(factor float64) Profile {
	out := *p
	out.Name = fmt.Sprintf("%s(x%.2f)", p.Name, factor)
	for d := 0; d < trace.NumDomains; d++ {
		if out.Domains[d].TimeShare > 0 {
			n := int(float64(out.Domains[d].Procs) * factor)
			if n < 1 {
				n = 1
			}
			out.Domains[d].Procs = n
		}
	}
	return out
}
