package synth

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"ibsim/internal/crashfs"
	"ibsim/internal/trace"
)

// ErrOverBudget reports a request to materialize a trace larger than the
// store's hard memory budget. Callers that can consume a stream should fall
// back to Source, which regenerates over budget in O(1) memory.
var ErrOverBudget = errors.New("synth: trace exceeds store hard memory budget")

// DefaultIdleBudget bounds the bytes the default Store keeps alive for
// traces no caller currently holds: roughly two full experiment suites at
// the default 2M-instruction scale.
const DefaultIdleBudget = 1 << 30

// DefaultStore is the process-wide trace store shared by the experiment
// suite, the verification harness, and the CLIs, so each (workload, seed, n)
// trace is generated once per process instead of once per experiment.
var DefaultStore = NewStore(DefaultIdleBudget)

// storeKey identifies one materialized instruction trace. The full Profile
// value (comparable: scalars and fixed-size arrays only) participates so
// same-named variants — e.g. the Mach and Ultrix builds of an IBS workload,
// or a caller-tweaked profile — never alias each other's traces.
type storeKey struct {
	prof Profile
	seed uint64
	n    int64
	// runsOnly marks entries holding only the run-length compaction (no
	// per-reference slice) — RunsOnly's key space, disjoint from Instr's so
	// a budget admitting the runs never aliases an entry holding the refs.
	runsOnly bool
	// columnar marks entries holding an on-disk columnar trace file
	// (Columnar's key space — see columnar.go).
	columnar bool
	// ckpt marks entries holding a checkpoint index for (prof, seed) — the
	// seekable-generation tier's key space (see seek.go). n is always 0: one
	// index serves every trace length of the pair.
	ckpt bool
}

// storeEntry is one memoized trace with its reference count.
type storeEntry struct {
	ready chan struct{} // closed once refs/err are set
	refs  []trace.Ref
	err   error

	// runs is the run-length compaction of refs, computed lazily by the
	// first InstrRuns caller and shared (read-only) from then on. It is
	// assigned under the store mutex so the idle-byte accounting, which
	// reads len(runs) under the same mutex, never races the compaction.
	runsOnce sync.Once
	runs     []trace.Run

	// Columnar entries live on disk instead of in refs/runs: cf is the
	// opened file, path its location, fileBytes its on-disk size (what the
	// budgets charge — the live-memory cost is one mmap'd block).
	cf        *trace.ColumnarFile
	path      string
	fileBytes int64

	// ckix is the checkpoint index of a ckpt entry (see seek.go). Its bytes
	// only change while some holder's generator appends to it, i.e. while
	// refcount > 0, so the idle accounting at the 0-transition stays exact.
	ckix *CheckpointIndex

	refcount int
	lastUse  int64 // store tick of the most recent acquire/release
}

// entryBytes is the retained size of an entry: the trace itself plus its
// run-length compaction when one has been materialized, or the on-disk file
// size for columnar entries. Callers must hold the store mutex (runs is
// written under it).
func entryBytes(e *storeEntry) int64 {
	b := int64(len(e.refs))*refBytes + int64(len(e.runs))*runBytes + e.fileBytes
	if e.ckix != nil {
		b += e.ckix.Bytes()
	}
	return b
}

// dropEntry releases an entry's out-of-heap resources: columnar entries
// close their mapping and delete their backing file (through the store's
// spill filesystem, so the torture harness sees the delete too). In-memory
// entries are garbage collected and need nothing. Callers hold the store
// mutex.
func (s *Store) dropEntry(e *storeEntry) {
	if e.cf != nil {
		e.cf.Close()
		e.cf = nil
	}
	if e.path != "" {
		fsys := s.fsys
		if fsys == nil {
			fsys = crashfs.OS()
		}
		fsys.Remove(e.path)
		e.path = ""
	}
}

// Stats reports store activity; Idle is the byte count held only by the
// memoization cache (no outstanding handle). Fallbacks counts Source
// requests served by streaming regeneration because materializing would
// have exceeded the hard budget.
type Stats struct {
	Hits, Misses, Evictions int64
	Fallbacks               int64
	// Spills counts columnar traces generated to disk (cache misses on the
	// Columnar tier); SpillBytes is their current total on-disk footprint.
	Spills     int64
	SpillBytes int64
	IdleBytes  int64
	// Entries counts memoized trace entries (refs, runs, columnar).
	// Checkpoint indexes — metadata about traces, not traces — are reported
	// separately as CheckpointEntries/CheckpointBytes/Checkpoints.
	Entries           int
	CheckpointEntries int
	CheckpointBytes   int64
	Checkpoints       int64 // total restore points across all indexes
}

// Store memoizes materialized instruction traces keyed by
// (profile, seed, instruction count). Entries are ref-counted:
// Instr returns the trace together with a release function, and a released
// entry stays cached — up to the idle-byte budget, evicting least-recently
// used idle entries beyond it — so sequential experiments over the same
// suite reuse each other's generation work.
//
// The returned slice is shared by every holder of the same key and MUST be
// treated as read-only.
type Store struct {
	mu         sync.Mutex
	entries    map[storeKey]*storeEntry
	idleBudget int64
	hardBudget int64 // 0 = unlimited
	idleBytes  int64
	tick       int64
	stats      Stats
	dir        string     // lazily created spill directory for columnar files
	dirOwned   bool       // dir was MkdirTemp'd by the store (Purge may remove it)
	fsys       crashfs.FS // spill-file I/O; nil = the real OS (see SetSpillFS)
	spillSeq   int64      // publication counter for trace-<seq>.ibsc names

	// ckEvery is the recording interval for new checkpoint indexes
	// (0 = DefaultCheckpointEvery); spillWorkers > 1 enables the parallel
	// columnar spill path (see seek.go, spill.go).
	ckEvery      int64
	spillWorkers int
}

// NewStore returns an empty store keeping at most idleBudget bytes of
// unreferenced traces cached (0 caches nothing once released) and no hard
// materialization limit.
func NewStore(idleBudget int64) *Store {
	return NewStoreLimits(idleBudget, 0)
}

// NewStoreLimits returns a store with both an idle-cache budget and a hard
// per-trace materialization budget: an Instr request whose trace would
// retain more than hardBudget bytes fails with ErrOverBudget instead of
// attempting the allocation, and Source degrades to streaming regeneration.
// hardBudget 0 means unlimited.
func NewStoreLimits(idleBudget, hardBudget int64) *Store {
	return &Store{entries: make(map[storeKey]*storeEntry), idleBudget: idleBudget, hardBudget: hardBudget}
}

// refBytes is the retained size of one trace.Ref (16 bytes with padding);
// runBytes that of one trace.Run (24 bytes with padding).
const (
	refBytes = 16
	runBytes = 24
)

// TraceBytes estimates the bytes a store retains for one materialized
// n-instruction trace; withRuns adds the worst case of its run-length
// compaction (one run per ref). This is the same arithmetic Instr and
// InstrRuns check against the hard budget, exported so admission control
// (cmd/ibsimd's weighted limiter) can weigh a request before committing to
// the allocation.
func TraceBytes(n int64, withRuns bool) int64 {
	if n <= 0 {
		return 0
	}
	if withRuns {
		return n * (refBytes + runBytes)
	}
	return n * refBytes
}

// Instr returns prof's instruction-only trace for (seed, n) — the same
// stream InstrTrace generates — memoized across callers. The release
// function must be called exactly once when the caller is done with the
// slice; it is safe to call from any goroutine. Concurrent acquires of the
// same key share one generation.
func (s *Store) Instr(prof Profile, seed uint64, n int64) ([]trace.Ref, func(), error) {
	return s.InstrCtx(context.Background(), prof, seed, n)
}

// InstrCtx is Instr honoring ctx: a caller waiting on another goroutine's
// in-flight generation returns ctx.Err() as soon as ctx is done, instead of
// blocking to completion. The generation itself is not interrupted (another
// caller may still want it); an abandoned wait releases the caller's
// reference, so it cannot leak the entry.
func (s *Store) InstrCtx(ctx context.Context, prof Profile, seed uint64, n int64) ([]trace.Ref, func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if s.hardBudget > 0 && n*refBytes > s.hardBudget {
		return nil, nil, fmt.Errorf("%w: %d refs need %d bytes, budget %d",
			ErrOverBudget, n, n*refBytes, s.hardBudget)
	}
	key := storeKey{prof: prof, seed: seed, n: n}
	// InstrTrace zeroes the data profile, so profiles differing only there
	// yield the same instruction stream — normalize to share the entry.
	key.prof.Data = DataProfile{}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.stats.Hits++
		if e.refcount == 0 {
			// Leaving the idle cache: its bytes are accounted to the holder.
			s.idleBytes -= entryBytes(e)
		}
		e.refcount++
		s.tick++
		e.lastUse = s.tick
		s.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			// Safe: the generating caller holds its own reference until the
			// entry is ready, so this decrement cannot free an unfinished
			// entry out from under it.
			s.release(key, e)
			return nil, nil, ctx.Err()
		}
		if e.err != nil {
			s.release(key, e)
			return nil, nil, e.err
		}
		return e.refs, s.releaseOnce(key, e), nil
	}
	s.stats.Misses++
	e = &storeEntry{ready: make(chan struct{}), refcount: 1}
	s.tick++
	e.lastUse = s.tick
	s.entries[key] = e
	s.mu.Unlock()

	e.refs, e.err = s.instrTrace(prof, seed, n)
	close(e.ready)
	if e.err != nil {
		s.release(key, e)
		return nil, nil, e.err
	}
	return e.refs, s.releaseOnce(key, e), nil
}

// InstrRuns is InstrCtx returning, alongside the memoized trace, its
// run-length compaction (trace.Compact), computed once per entry and shared
// by every holder. Both slices are covered by the single release function
// and MUST be treated as read-only. The fan-out replay driver
// (internal/replay) is the intended consumer: several engine banks replay
// the same workload without recompacting it.
func (s *Store) InstrRuns(ctx context.Context, prof Profile, seed uint64, n int64) ([]trace.Ref, []trace.Run, func(), error) {
	// Worst case (no sequentiality at all) the compaction retains one run
	// per ref, so budget for both slices up front.
	if s.hardBudget > 0 && n*(refBytes+runBytes) > s.hardBudget {
		return nil, nil, nil, fmt.Errorf("%w: %d refs with runs need up to %d bytes, budget %d",
			ErrOverBudget, n, n*(refBytes+runBytes), s.hardBudget)
	}
	refs, release, err := s.InstrCtx(ctx, prof, seed, n)
	if err != nil {
		return nil, nil, nil, err
	}
	key := storeKey{prof: prof, seed: seed, n: n}
	key.prof.Data = DataProfile{}
	s.mu.Lock()
	// The handle we hold pins the entry: it cannot be evicted or replaced
	// while refcount > 0, so this lookup is exactly our entry.
	e := s.entries[key]
	s.mu.Unlock()
	e.runsOnce.Do(func() {
		runs := trace.Compact(refs)
		s.mu.Lock()
		e.runs = runs
		s.mu.Unlock()
	})
	return refs, e.runs, release, nil
}

// RunsOnly returns prof's run-length-compacted instruction trace for
// (seed, n) WITHOUT materializing the per-reference stream: generation
// streams through an incremental trace.Compactor, so peak memory is O(runs)
// — typically a few percent of the refs (instruction fetch is overwhelmingly
// sequential). This is the sampling degradation tier's trace path: a request
// whose refs exceed the hard budget usually still fits as runs. Unlike Instr,
// the hard budget is enforced against the ACTUAL compacted size as it grows,
// not a worst-case estimate; a pathologically non-sequential stream aborts
// with ErrOverBudget mid-generation. The slice is shared and read-only; the
// release function must be called exactly once.
func (s *Store) RunsOnly(ctx context.Context, prof Profile, seed uint64, n int64) ([]trace.Run, func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	key := storeKey{prof: prof, seed: seed, n: n, runsOnly: true}
	key.prof.Data = DataProfile{}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.stats.Hits++
		if e.refcount == 0 {
			s.idleBytes -= entryBytes(e)
		}
		e.refcount++
		s.tick++
		e.lastUse = s.tick
		s.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			s.release(key, e)
			return nil, nil, ctx.Err()
		}
		if e.err != nil {
			s.release(key, e)
			return nil, nil, e.err
		}
		return e.runs, s.releaseOnce(key, e), nil
	}
	s.stats.Misses++
	e = &storeEntry{ready: make(chan struct{}), refcount: 1}
	s.tick++
	e.lastUse = s.tick
	s.entries[key] = e
	s.mu.Unlock()

	e.runs, e.err = s.compactStream(prof, seed, n)
	close(e.ready)
	if e.err != nil {
		s.release(key, e)
		return nil, nil, e.err
	}
	return e.runs, s.releaseOnce(key, e), nil
}

// budgetCheckMask sets how often compactStream re-checks the growing
// compaction against the hard budget (every 4K instructions).
const budgetCheckMask = 1<<12 - 1

// instrTrace is InstrTrace through a store-attached generator: the pass
// registers checkpoints in the shared index as it materializes, so the
// bytes spent generating also buy O(interval) seeks for every later pass.
func (s *Store) instrTrace(prof Profile, seed uint64, n int64) ([]trace.Ref, error) {
	g, done, err := s.seekGen(prof, seed)
	if err != nil {
		return nil, err
	}
	defer done()
	out := make([]trace.Ref, n)
	for i := range out {
		out[i], _ = g.Next()
	}
	return out, nil
}

// compactStream generates prof's instruction stream and compacts it on the
// fly, enforcing the store's hard budget against the runs actually retained.
// It registers checkpoints in the store's shared index as it streams, and
// resumes from the longest memoized runs-only prefix of the same workload
// (seeking the generator past it) instead of recompacting from zero.
func (s *Store) compactStream(prof Profile, seed uint64, n int64) ([]trace.Run, error) {
	g, done, err := s.seekGen(prof, seed)
	if err != nil {
		return nil, err
	}
	defer done()
	var c trace.Compactor
	if prefix, start := s.runsPrefix(prof, seed, n); start > 0 {
		c.Resume(prefix)
		if err := g.SeekTo(start); err != nil {
			return nil, err
		}
	}
	for g.Instructions() < n {
		r, _ := g.Next()
		c.Add(r)
		if g.Instructions()&budgetCheckMask == 0 && s.hardBudget > 0 && int64(c.Len())*runBytes > s.hardBudget {
			return nil, fmt.Errorf("%w: run compaction of %d instructions already needs over %d bytes",
				ErrOverBudget, n, s.hardBudget)
		}
	}
	runs := c.Finish()
	if s.hardBudget > 0 && int64(len(runs))*runBytes > s.hardBudget {
		return nil, fmt.Errorf("%w: %d runs need %d bytes, budget %d",
			ErrOverBudget, len(runs), int64(len(runs))*runBytes, s.hardBudget)
	}
	return runs, nil
}

// Source returns a trace.Source over prof's instruction stream for
// (seed, n). Within the hard budget it is backed by the memoized slice;
// over budget it degrades to streaming regeneration in O(1) memory instead
// of failing, counting the degradation in Stats.Fallbacks. The release
// function must be called exactly once when the caller is done reading.
func (s *Store) Source(prof Profile, seed uint64, n int64) (trace.Source, func(), error) {
	refs, release, err := s.Instr(prof, seed, n)
	if err == nil {
		return trace.NewSliceSource(refs), release, nil
	}
	if !errors.Is(err, ErrOverBudget) {
		return nil, nil, err
	}
	ss, done, err := s.SeekSource(prof, seed, n)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	s.stats.Fallbacks++
	s.mu.Unlock()
	return ss, done, nil
}

// releaseOnce wraps release so double-calling a handle's release is a no-op.
func (s *Store) releaseOnce(key storeKey, e *storeEntry) func() {
	var once sync.Once
	return func() { once.Do(func() { s.release(key, e) }) }
}

// release drops one reference; the last holder moves the entry into the
// idle cache (or out of the store entirely when over budget or failed).
func (s *Store) release(key storeKey, e *storeEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.refcount--
	if e.refcount > 0 {
		return
	}
	if e.err != nil {
		// A failed generation may already have been replaced by a fresh
		// attempt under the same key; only remove this entry.
		if cur, ok := s.entries[key]; ok && cur == e {
			delete(s.entries, key)
		}
		s.dropEntry(e)
		return
	}
	s.tick++
	e.lastUse = s.tick
	s.idleBytes += entryBytes(e)
	s.evictLocked()
}

// evictLocked removes least-recently-used idle entries until the idle bytes
// fit the budget.
func (s *Store) evictLocked() {
	for s.idleBytes > s.idleBudget {
		var victimKey storeKey
		var victim *storeEntry
		for k, e := range s.entries {
			if e.refcount != 0 || entryBytes(e) == 0 {
				// Zero-byte entries (e.g. still-empty checkpoint indexes)
				// free nothing; evicting them would only spin the loop.
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		s.idleBytes -= entryBytes(victim)
		delete(s.entries, victimKey)
		s.dropEntry(victim)
		s.stats.Evictions++
	}
}

// Purge drops every idle entry — in-memory and on-disk — regardless of the
// idle budget, and removes the store's spill directory if the store created
// it (a throwaway temp dir) and it is now empty; a directory configured via
// SetSpillDir belongs to the caller and is left in place. Entries still
// referenced by an outstanding handle are untouched. Intended for orderly
// shutdown (cmd/ibsimd) and tests; the store remains usable.
func (s *Store) Purge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, e := range s.entries {
		if e.refcount != 0 {
			continue
		}
		s.idleBytes -= entryBytes(e)
		delete(s.entries, k)
		s.dropEntry(e)
		s.stats.Evictions++
	}
	if s.dir != "" && s.dirOwned {
		if err := os.Remove(s.dir); err == nil {
			s.dir = ""
			s.dirOwned = false
		}
	}
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.IdleBytes = s.idleBytes
	for k, e := range s.entries {
		st.SpillBytes += e.fileBytes
		if k.ckpt {
			st.CheckpointEntries++
			if e.ckix != nil {
				cst := e.ckix.Stats()
				st.CheckpointBytes += cst.Bytes
				st.Checkpoints += int64(cst.Count)
			}
			continue
		}
		st.Entries++
	}
	return st
}
