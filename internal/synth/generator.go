package synth

import (
	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

// Domain text-segment base addresses. The values follow the MIPS convention
// the paper's machines used: user text low, kernel in kseg (high half), with
// the Mach user-level servers in between — each domain a disjoint virtual
// region so cross-domain conflict patterns in a cache are realistic.
var domainTextBase = [trace.NumDomains]uint64{
	trace.User:      0x0040_0000,
	trace.Kernel:    0x8000_0000,
	trace.BSDServer: 0x3000_0000,
	trace.XServer:   0x5000_0000,
}

// Per-domain data-region offsets from the text base.
// The sub-region offsets are deliberately staggered (and further staggered
// per domain in build) so that the stack, global, heap and streaming regions
// of the four domains do not all alias to cache index 0 in physically large
// direct-mapped caches — real address-space layouts collide incidentally,
// not perfectly.
const (
	globalOffset = 0x1000_3100
	streamOffset = 0x1404_4D00
	heapOffset   = 0x1809_9300
	stackOffset  = 0x1FF0_6800

	globalBytes = 64 << 10
	streamBytes = 4 << 20
	stackWindow = 8 << 10

	pageBytes = 4096
	instrSize = 4
	maxDepth  = 4
)

// proc is a laid-out procedure: [base, base+size).
type proc struct {
	base uint64
	size uint64
}

// frame is one activation record of the synthetic walk.
type frame struct {
	p         proc
	pc        uint64
	loopStart uint64
	loopEnd   uint64
	loopsLeft int
}

// domainState is the per-domain walk and data-reference state.
type domainState struct {
	prof     *DomainProfile
	dataProf *DataProfile
	domain   trace.Domain
	procs    []proc // indexed by popularity rank: procs[0] is hottest
	pop      *zipf  // popularity sampler over procedure ranks
	rng      *xrand.Source

	stack []frame

	// Data-reference cursors and popularity tables.
	storeBurst int // remaining burst stores (procedure-prolog register saves)
	stackPtr   uint64
	streamPtr  uint64
	heapBase   uint64
	globBase   uint64
	strmBase   uint64
	globPop    *zipf // popularity of global words
	heapPop    *zipf // popularity of heap pages
	offPop     *zipf // popularity of word offsets within a heap page

	executed int64 // instructions executed in this domain
}

// WalkStats counts control-flow events of the synthetic walk — the surface
// on which the generator can be validated against its profile knobs (e.g.
// Calls/Instructions should approximate CallProb).
type WalkStats struct {
	// Visits counts procedure activations (fresh frames pushed).
	Visits int64
	// Calls counts mid-procedure calls (a subset of Visits).
	Calls int64
	// LoopBackEdges counts taken loop back-edges.
	LoopBackEdges int64
	// Skips counts short forward branches.
	Skips int64
	// FarJumps counts far intra-procedure taken branches.
	FarJumps int64
	// DomainSwitches counts protection-domain crossings.
	DomainSwitches int64
}

// Generator produces a workload's reference stream. It implements
// trace.Source and never ends on its own; wrap with trace.NewLimitSource or
// use Profile-level helpers that take an instruction budget.
type Generator struct {
	prof    Profile
	seed    uint64
	rng     *xrand.Source
	domains []*domainState // active domains only
	cur     int            // index into domains
	resid   int            // instructions remaining in current domain
	pending [2]trace.Ref   // queued data refs following the last ifetch
	npend   int
	instrs  int64 // total instructions emitted
	walk    WalkStats

	// Checkpoint recording (see checkpoint.go). ckNext is the next
	// instruction boundary to snapshot at; when ck is nil the hook in Next
	// costs a single predictable branch.
	ck     *CheckpointIndex
	ckNext int64
}

// NewGenerator validates prof and returns a generator seeded with seed
// (seed 0 uses the profile's default seed).
func NewGenerator(prof Profile, seed uint64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = prof.Seed
	}
	if seed == 0 {
		seed = 0x1b5
	}
	g := &Generator{prof: prof, seed: seed}
	g.build()
	return g, nil
}

// MustNewGenerator is NewGenerator but panics on error.
func MustNewGenerator(prof Profile, seed uint64) *Generator {
	g, err := NewGenerator(prof, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// build lays out every active domain's text image and resets walk state.
func (g *Generator) build() {
	g.rng = xrand.New(g.seed)
	g.domains = g.domains[:0]
	for d := 0; d < trace.NumDomains; d++ {
		dp := &g.prof.Domains[d]
		if dp.TimeShare <= 0 {
			continue
		}
		ds := &domainState{
			prof:     dp,
			dataProf: &g.prof.Data,
			domain:   trace.Domain(d),
			rng:      g.rng.Fork(uint64(d) + 1),
		}
		ds.layout()
		base := domainTextBase[d] + uint64(d)*0x5400 // per-domain stagger
		ds.globBase = base + globalOffset
		ds.strmBase = base + streamOffset
		ds.heapBase = base + heapOffset
		ds.stackPtr = base + stackOffset + stackWindow/2
		if g.prof.Data.LoadFrac > 0 || g.prof.Data.StoreFrac > 0 {
			pages := g.prof.Data.HeapPages
			if pages <= 0 {
				pages = 64
			}
			ds.globPop = newZipf(globalBytes/instrSize, 1.80)
			ds.heapPop = newZipf(pages, 1.50)
			ds.offPop = newZipf(pageBytes/instrSize, 1.80)
		}
		g.domains = append(g.domains, ds)
	}
	g.cur = g.pickDomain()
	g.resid = g.domains[g.cur].residency()
	g.npend = 0
	g.instrs = 0
	g.walk = WalkStats{}
	g.syncCkNext()
}

// layout places the domain's procedures: geometric sizes around the mean,
// grouped into 16-procedure modules separated by random page gaps, with
// popularity ranks assigned by random permutation (hot procedures scatter
// across the image, as linkers scatter them in real binaries).
func (ds *domainState) layout() {
	dp := ds.prof
	n := dp.Procs
	sizes := make([]uint64, n)
	for i := range sizes {
		// Mean = MeanProcBytes: half fixed, half geometric.
		half := dp.MeanProcBytes / 2
		s := half + (ds.rng.Geometric(float64(half)/float64(instrSize)))*instrSize
		if s < 64 {
			s = 64
		}
		sizes[i] = uint64(s+instrSize-1) &^ (instrSize - 1)
	}
	layoutOrder := make([]int, n)
	if dp.HotLayout {
		// Profile-guided placement: popularity rank r sits at position r.
		for i := range layoutOrder {
			layoutOrder[i] = i
		}
		// Consume the same number of RNG draws as Perm so the rest of the
		// walk (sizes already drawn) stays comparable across layouts.
		ds.rng.Perm(make([]int, n))
	} else {
		ds.rng.Perm(layoutOrder)
	}

	addr := domainTextBase[ds.domain]
	placed := make([]proc, n) // indexed by layout position
	for pos := 0; pos < n; pos++ {
		if pos%16 == 0 && pos != 0 && !dp.HotLayout {
			// Module boundary: skip 0–2 pages, align to page. Profile-guided
			// layouts pack densely instead — removing this fragmentation is
			// half their benefit.
			addr = (addr + pageBytes - 1) &^ (pageBytes - 1)
			addr += uint64(ds.rng.Intn(3)) * pageBytes
		}
		placed[pos] = proc{base: addr, size: sizes[pos]}
		addr += sizes[pos]
	}
	// popularity rank r → placed[layoutOrder[r]]: a random permutation of
	// positions, so rank and layout position are independent.
	ds.procs = make([]proc, n)
	for r, pos := range layoutOrder {
		ds.procs[r] = placed[pos]
	}
	ds.pop = newZipf(n, dp.Theta)
}

// residency draws how many instructions to run in this domain before the
// next switch.
func (ds *domainState) residency() int {
	return ds.rng.Geometric(ds.prof.MeanResidency)
}

// pickDomain returns the index of the domain with the largest execution
// deficit relative to its configured time share — deterministic deficit
// scheduling hits Table 4's component shares exactly while the geometric
// residencies keep the interleaving granularity realistic.
func (g *Generator) pickDomain() int {
	if len(g.domains) == 1 {
		return 0
	}
	total := g.instrs + 1
	best, bestDef := 0, -1.0
	for i, ds := range g.domains {
		def := ds.prof.TimeShare - float64(ds.executed)/float64(total)
		if def > bestDef {
			best, bestDef = i, def
		}
	}
	return best
}

// pickProc draws a procedure by popularity and builds its activation frame.
func (ds *domainState) pickProc() frame {
	r := ds.pop.draw(ds.rng)
	p := ds.procs[r]
	f := frame{p: p, pc: p.base}
	if ds.rng.Bool(ds.prof.LoopProb) {
		span := uint64(float64(p.size) * ds.prof.MeanLoopFrac)
		span = span &^ (instrSize - 1)
		if span < 2*instrSize {
			span = 2 * instrSize
		}
		if span > p.size {
			span = p.size
		}
		maxStart := p.size - span
		var start uint64
		if maxStart >= instrSize {
			start = uint64(ds.rng.Intn(int(maxStart/instrSize))) * instrSize
		}
		f.loopStart = p.base + start
		f.loopEnd = f.loopStart + span
		f.loopsLeft = ds.rng.Geometric(ds.prof.MeanLoopIter)
	}
	return f
}

// Next implements trace.Source. The stream is infinite; ok is always true.
func (g *Generator) Next() (trace.Ref, bool) {
	if g.npend > 0 {
		g.npend--
		return g.pending[g.npend], true
	}
	// Every instruction boundary passes this point exactly once, so
	// recording here lands checkpoints on exact interval multiples.
	if g.ck != nil && g.instrs >= g.ckNext {
		g.recordCheckpoint()
	}
	ds := g.domains[g.cur]

	// Ensure an active frame.
	if len(ds.stack) == 0 {
		ds.stack = append(ds.stack, ds.pickProc())
		g.walk.Visits++
	}
	f := &ds.stack[len(ds.stack)-1]
	ref := trace.Ref{Addr: f.pc, Kind: trace.IFetch, Domain: ds.domain}
	g.instrs++
	ds.executed++

	g.advance(ds, f)
	g.emitData(ds)

	// Domain switch bookkeeping.
	g.resid--
	if g.resid <= 0 && len(g.domains) > 1 {
		prev := g.cur
		g.cur = g.pickDomain()
		if g.cur != prev {
			g.walk.DomainSwitches++
		}
		g.resid = g.domains[g.cur].residency()
	}
	return ref, true
}

// advance moves the walk past the instruction just fetched.
func (g *Generator) advance(ds *domainState, f *frame) {
	dp := ds.prof
	// Call?
	if len(ds.stack) < maxDepth && ds.rng.Bool(dp.CallProb) {
		ds.stack = append(ds.stack, ds.pickProc())
		g.walk.Visits++
		g.walk.Calls++
		return
	}
	// Far taken branch: uniformly into the rest of the body. Breaks
	// sequential fetch streams the way if/else arms and switch tables do.
	if dp.JumpProb > 0 && ds.rng.Bool(dp.JumpProb) {
		end := f.p.base + f.p.size
		if remain := (end - f.pc) / instrSize; remain > 2 {
			f.pc += instrSize * (1 + uint64(ds.rng.Intn(int(remain-1))))
			g.walk.FarJumps++
		} else {
			f.pc += instrSize
		}
	} else if ds.rng.Bool(dp.SkipProb) {
		// Short forward branch.
		f.pc += instrSize * uint64(2+ds.rng.Intn(5))
		g.walk.Skips++
	} else {
		f.pc += instrSize
	}
	// Loop back-edge.
	if f.loopsLeft > 0 && f.pc >= f.loopEnd {
		f.loopsLeft--
		f.pc = f.loopStart
		g.walk.LoopBackEdges++
		return
	}
	// Procedure end: return.
	if f.pc >= f.p.base+f.p.size {
		ds.stack = ds.stack[:len(ds.stack)-1]
	}
}

// emitData queues load/store references to follow the last instruction.
func (g *Generator) emitData(ds *domainState) {
	d := &g.prof.Data
	if d.LoadFrac == 0 && d.StoreFrac == 0 {
		return
	}
	// Stores arrive in two modes: isolated stores, and register-save bursts
	// at procedure entry (one store per instruction for several
	// instructions) — the bursty arrivals that actually fill a write
	// buffer. Burst parameters keep the overall store fraction at
	// StoreFrac: events fire at StoreFrac/2.1 and roughly one in five events
	// is a burst of six.
	if ds.storeBurst > 0 {
		ds.storeBurst--
		ds.stackPtr -= instrSize
		g.pending[g.npend] = trace.Ref{Addr: ds.stackPtr, Kind: trace.DWrite, Domain: ds.domain}
		g.npend++
	} else if ds.rng.Bool(d.StoreFrac / 2.1) {
		if ds.rng.Bool(0.22) {
			ds.storeBurst = 5
		}
		g.pending[g.npend] = trace.Ref{Addr: ds.dataAddr(), Kind: trace.DWrite, Domain: ds.domain}
		g.npend++
	}
	if ds.rng.Bool(d.LoadFrac) {
		g.pending[g.npend] = trace.Ref{Addr: ds.dataAddr(), Kind: trace.DRead, Domain: ds.domain}
		g.npend++
	}
}

// dataAddr draws a data address: streaming array walk, stack, global, or
// heap, per the data profile.
func (ds *domainState) dataAddr() uint64 {
	d := ds.dataProf
	if ds.rng.Bool(d.StreamFrac) {
		// Sequential array walk; stores and loads share the cursor.
		a := ds.strmBase + ds.streamPtr
		ds.streamPtr += instrSize
		if ds.streamPtr >= streamBytes {
			ds.streamPtr = 0
		}
		return a
	}
	switch ds.rng.Intn(10) {
	case 0, 1, 2, 3: // stack, random walk within window
		delta := uint64(ds.rng.Intn(16)) * instrSize
		if ds.rng.Bool(0.5) {
			ds.stackPtr += delta
		} else {
			ds.stackPtr -= delta
		}
		base := domainTextBase[ds.domain] + stackOffset
		if ds.stackPtr < base || ds.stackPtr >= base+stackWindow {
			ds.stackPtr = base + stackWindow/2
		}
		return ds.stackPtr
	case 4, 5, 6: // globals: Zipf-popular words in a small region
		off := uint64(ds.globPop.draw(ds.rng)) * instrSize
		return ds.globBase + off
	default: // heap: Zipf-popular page × Zipf-popular word within it
		page := uint64(ds.heapPop.draw(ds.rng))
		off := uint64(ds.offPop.draw(ds.rng)) * instrSize
		return ds.heapBase + page*pageBytes + off
	}
}

// Err implements trace.Source; generation cannot fail.
func (g *Generator) Err() error { return nil }

// Reset restarts the generator from its seed: the regenerated stream is
// bit-identical to the original.
func (g *Generator) Reset() { g.build() }

// Instructions returns the number of instruction fetches emitted so far.
func (g *Generator) Instructions() int64 { return g.instrs }

// Profile returns the generator's workload profile.
func (g *Generator) Profile() Profile { return g.prof }

// WalkStats returns the control-flow event counters accumulated so far.
func (g *Generator) WalkStats() WalkStats { return g.walk }

// DomainShare returns the fraction of instructions executed in domain d so
// far.
func (g *Generator) DomainShare(d trace.Domain) float64 {
	if g.instrs == 0 {
		return 0
	}
	for _, ds := range g.domains {
		if ds.domain == d {
			return float64(ds.executed) / float64(g.instrs)
		}
	}
	return 0
}

// Trace generates n instructions' worth of references (instructions plus
// interleaved data references) into a slice.
func Trace(prof Profile, seed uint64, n int64) ([]trace.Ref, error) {
	g, err := NewGenerator(prof, seed)
	if err != nil {
		return nil, err
	}
	out := make([]trace.Ref, 0, n+n/3)
	for g.Instructions() < n {
		r, _ := g.Next()
		out = append(out, r)
	}
	return out, nil
}

// InstrTrace generates exactly n instruction-fetch references (no data
// references), the input Section 5's experiments use.
func InstrTrace(prof Profile, seed uint64, n int64) ([]trace.Ref, error) {
	p := prof
	p.Data = DataProfile{}
	g, err := NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	out := make([]trace.Ref, n)
	for i := range out {
		out[i], _ = g.Next()
	}
	return out, nil
}

// InstrSource returns a Source yielding exactly n instruction-fetch
// references — the same stream InstrTrace materializes, but generated on
// demand so arbitrarily long runs use O(1) memory.
func InstrSource(prof Profile, seed uint64, n int64) (trace.Source, error) {
	p := prof
	p.Data = DataProfile{}
	g, err := NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	return trace.NewLimitSource(g, n), nil
}

var _ trace.Source = (*Generator)(nil)
