package synth

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// checkStoreInvariants asserts the store's internal accounting under its
// own mutex: no entry's refcount is negative, idleBytes is non-negative
// and equals the summed entryBytes of exactly the idle (refcount 0)
// entries.
func checkStoreInvariants(t *testing.T, s *Store) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var idle int64
	for key, e := range s.entries {
		if e.refcount < 0 {
			t.Errorf("entry %v: negative refcount %d", key.n, e.refcount)
		}
		select {
		case <-e.ready:
		default:
			continue // still generating: not yet accounted
		}
		if e.refcount == 0 && e.err == nil {
			idle += entryBytes(e)
		}
	}
	if s.idleBytes < 0 {
		t.Errorf("idleBytes = %d, negative", s.idleBytes)
	}
	if s.idleBytes != idle {
		t.Errorf("idleBytes = %d, but idle entries sum to %d", s.idleBytes, idle)
	}
	if s.idleBytes > s.idleBudget {
		t.Errorf("idleBytes = %d exceeds budget %d after eviction", s.idleBytes, s.idleBudget)
	}
}

// TestStoreStressInvariants hammers one store from many goroutines mixing
// every acquisition path — Instr, InstrRuns, InstrCtx (some cancelled),
// Source, over-budget rejections, double releases — and asserts, under
// -race, that the ref-count and idle-byte bookkeeping never goes negative
// and fully drains at the end.
func TestStoreStressInvariants(t *testing.T) {
	profs := IBSMach()[:3]
	// Budget sized so entries churn: a few traces fit idle, most evict.
	const n = 2_000
	store := NewStoreLimits(3*TraceBytes(n, true), TraceBytes(4*n, true))

	const goroutines = 12
	const iters = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				prof := profs[(g+i)%len(profs)]
				size := int64(n + (g+i)%5*500) // several distinct keys per profile
				switch (g + i) % 5 {
				case 0:
					refs, release, err := store.Instr(prof, 1, size)
					if err != nil {
						t.Errorf("Instr: %v", err)
						return
					}
					if int64(len(refs)) != size {
						t.Errorf("Instr returned %d refs, want %d", len(refs), size)
					}
					release()
					release() // double release must be a no-op
				case 1:
					refs, runs, release, err := store.InstrRuns(context.Background(), prof, 1, size)
					if err != nil {
						t.Errorf("InstrRuns: %v", err)
						return
					}
					if len(runs) == 0 || int64(len(refs)) != size {
						t.Errorf("InstrRuns returned %d refs / %d runs", len(refs), len(runs))
					}
					release()
				case 2:
					ctx, cancel := context.WithCancel(context.Background())
					if (g+i)%2 == 0 {
						cancel() // cancelled before the call: must not leak a refcount
					}
					refs, release, err := store.InstrCtx(ctx, prof, 1, size)
					if err == nil {
						if int64(len(refs)) != size {
							t.Errorf("InstrCtx returned %d refs, want %d", len(refs), size)
						}
						release()
					} else if !errors.Is(err, context.Canceled) {
						t.Errorf("InstrCtx: %v", err)
					}
					cancel()
				case 3:
					src, release, err := store.Source(prof, 1, size)
					if err != nil {
						t.Errorf("Source: %v", err)
						return
					}
					for j := 0; j < 64; j++ { // partial drain, then walk away
						if _, ok := src.Next(); !ok {
							break
						}
					}
					release()
				case 4:
					// Over the hard budget: typed rejection, no residue.
					_, _, err := store.Instr(prof, 1, 64_000)
					if !errors.Is(err, ErrOverBudget) {
						t.Errorf("oversized Instr = %v, want ErrOverBudget", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	checkStoreInvariants(t, store)

	// Every handle was released: nothing in the store is still referenced,
	// and re-running the accounting from scratch agrees.
	store.mu.Lock()
	for key, e := range store.entries {
		if e.refcount != 0 {
			t.Errorf("entry n=%d: refcount %d after full drain, want 0", key.n, e.refcount)
		}
	}
	store.mu.Unlock()

	if st := store.Stats(); st.Hits+st.Misses == 0 {
		t.Error("stress run recorded no store activity")
	}
}

// TestStoreStressEvictionChurn drives the idle cache through heavy
// eviction churn (budget fits ~1 entry) while checking invariants at
// barriers between waves.
func TestStoreStressEvictionChurn(t *testing.T) {
	prof := IBSMach()[0]
	const n = 1_000
	store := NewStore(TraceBytes(n, false) + 1) // roughly one idle trace

	for wave := 0; wave < 8; wave++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				size := int64(n + 100*g) // 8 distinct keys fighting for one slot
				refs, release, err := store.Instr(prof, uint64(wave), size)
				if err != nil {
					t.Errorf("wave %d: %v", wave, err)
					return
				}
				if int64(len(refs)) != size {
					t.Errorf("wave %d: %d refs, want %d", wave, len(refs), size)
				}
				release()
			}(g)
		}
		wg.Wait()
		checkStoreInvariants(t, store)
	}
	if st := store.Stats(); st.Evictions == 0 {
		t.Error("churn run evicted nothing; budget not exercised")
	}
}
