package synth

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ibsim/internal/atomicio"
	"ibsim/internal/crashfs"
	"ibsim/internal/trace"
)

// Columnar tier of the store: the trace is materialized ON DISK as an
// IBSTRACE/v3 columnar file instead of in memory, and handed back as an
// opened trace.ColumnarFile (mmap when available) for block-granular
// replay. Generation streams the synthetic instruction stream through an
// incremental run compaction straight into the columnar writer, so peak
// memory is O(block) however long the trace; the hard budget is charged at
// the ACTUAL file size as it grows — typically well under a byte per
// instruction, versus 16 for refs and ~24 per run in memory — which is what
// lets the service's columnar-disk degradation tier serve exact results for
// workloads whose run list alone would blow the RAM budget.
//
// Entries are memoized and ref-counted like every other tier; an evicted
// entry closes its mapping and deletes its backing file.

// colSpillBuf is the write-buffer size for spilling a columnar file.
const colSpillBuf = 1 << 16

// Columnar returns prof's instruction trace for (seed, n) as an opened
// on-disk columnar file, memoized across callers. The returned file is
// shared and read-only (safe for concurrent block reads with distinct
// destination buffers); the release function must be called exactly once,
// after which the file handle must not be used. A trace whose columnar
// encoding exceeds the hard budget fails with ErrOverBudget.
func (s *Store) Columnar(ctx context.Context, prof Profile, seed uint64, n int64) (*trace.ColumnarFile, func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	key := storeKey{prof: prof, seed: seed, n: n, columnar: true}
	key.prof.Data = DataProfile{}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.stats.Hits++
		if e.refcount == 0 {
			s.idleBytes -= entryBytes(e)
		}
		e.refcount++
		s.tick++
		e.lastUse = s.tick
		s.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			s.release(key, e)
			return nil, nil, ctx.Err()
		}
		if e.err != nil {
			s.release(key, e)
			return nil, nil, e.err
		}
		return e.cf, s.releaseOnce(key, e), nil
	}
	s.stats.Misses++
	e = &storeEntry{ready: make(chan struct{}), refcount: 1}
	s.tick++
	e.lastUse = s.tick
	s.entries[key] = e
	s.mu.Unlock()

	e.cf, e.path, e.fileBytes, e.err = s.writeColumnar(prof, seed, n)
	if e.err == nil {
		s.mu.Lock()
		s.stats.Spills++
		s.mu.Unlock()
	}
	close(e.ready)
	if e.err != nil {
		s.release(key, e)
		return nil, nil, e.err
	}
	return e.cf, s.releaseOnce(key, e), nil
}

// spillDir returns the store's columnar spill directory, creating a
// throwaway one on first use when none was configured via SetSpillDir.
func (s *Store) spillDir() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir != "" {
		return s.dir, nil
	}
	dir, err := os.MkdirTemp("", "ibsim-store-")
	if err != nil {
		return "", fmt.Errorf("synth: creating columnar spill dir: %w", err)
	}
	s.dir = dir
	s.dirOwned = true
	return dir, nil
}

// SetSpillDir directs future columnar spills to dir (created as needed)
// instead of a throwaway temp directory. Opening the directory purges every
// stale spill artifact a crashed predecessor left behind — in-flight
// `.trace.ibsc.tmp-*` temp files and published `trace-*.ibsc` files alike:
// spill files are only reachable through this store's in-memory entries, so
// anything present at open is an orphan by definition and must never be
// loaded as data. Call before the first spill.
func (s *Store) SetSpillDir(dir string) error {
	fsys := s.fs()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("synth: opening spill dir: %w", err)
	}
	if err := purgeSpillDir(fsys, dir); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dir = dir
	s.dirOwned = false
	return nil
}

// SetSpillFS routes the store's spill-file I/O through fsys (nil = the real
// OS) — the crash-consistency torture harness's hook. Call before the first
// spill, together with SetSpillDir.
func (s *Store) SetSpillFS(fsys crashfs.FS) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fsys = fsys
}

// fs returns the store's spill filesystem.
func (s *Store) fs() crashfs.FS {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fsys == nil {
		return crashfs.OS()
	}
	return s.fsys
}

// isSpillFile reports a published columnar spill file name.
func isSpillFile(name string) bool {
	return strings.HasPrefix(name, "trace-") && strings.HasSuffix(name, ".ibsc")
}

// purgeSpillDir removes stale spill artifacts — atomicio temp debris and
// orphaned published spill files — from a (re)opened spill directory.
func purgeSpillDir(fsys crashfs.FS, dir string) error {
	if _, err := atomicio.SweepTempsFS(fsys, dir); err != nil {
		return fmt.Errorf("synth: purging spill dir: %w", err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("synth: purging spill dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !isSpillFile(e.Name()) {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
			return fmt.Errorf("synth: purging spill dir: %w", err)
		}
	}
	return nil
}

// countWriter counts bytes flushed to the underlying file so the growing
// encoding can be checked against the hard budget mid-generation.
type countWriter struct {
	f crashfs.File
	n int64
}

func (w *countWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.n += int64(n)
	return n, err
}

// writeColumnar generates prof's instruction stream, run-compacts it on the
// fly (same semantics as trace.Compact — the columnar blocks decode to
// exactly the runs RunsOnly would return), and writes it block by block to
// a fresh file in the spill directory, which it then opens for reading.
// Generation goes through a store-attached seekable generator: the pass
// registers checkpoints, resumes from any memoized runs-only prefix, and —
// when SetSpillWorkers enabled it — fans chunks out across goroutines
// (spill.go). Every path produces byte-identical files.
//
// Publication is crash-safe: the encoding streams into an atomicio-style
// temp file, is fsynced, and only then renamed to its published trace-*.ibsc
// name — so a power failure at any instant leaves either sweepable temp
// debris or a complete, CRC-valid published file, never a torn file under a
// published name.
func (s *Store) writeColumnar(prof Profile, seed uint64, n int64) (*trace.ColumnarFile, string, int64, error) {
	g, done, err := s.seekGen(prof, seed)
	if err != nil {
		return nil, "", 0, err
	}
	defer done()
	dir, err := s.spillDir()
	if err != nil {
		return nil, "", 0, err
	}
	fsys := s.fs()
	f, err := fsys.CreateTemp(dir, ".trace.ibsc.tmp-*")
	if err != nil {
		return nil, "", 0, fmt.Errorf("synth: creating columnar spill file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) (*trace.ColumnarFile, string, int64, error) {
		f.Close()
		fsys.Remove(tmp)
		return nil, "", 0, err
	}

	cw := &countWriter{f: f}
	bw := bufio.NewWriterSize(cw, colSpillBuf)
	w, err := trace.NewColumnarWriter(bw)
	if err != nil {
		return fail(err)
	}
	s.mu.Lock()
	workers := s.spillWorkers
	s.mu.Unlock()
	if workers > 1 && n >= 2*spillChunk(g) {
		err = s.spillParallel(g, n, workers, w, cw)
	} else {
		err = s.spillSequential(g, prof, seed, n, w, cw)
	}
	if err != nil {
		return fail(err)
	}
	if err := w.Close(); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("synth: flushing columnar spill: %w", err))
	}
	if s.hardBudget > 0 && cw.n > s.hardBudget {
		return fail(fmt.Errorf("%w: columnar file needs %d bytes, budget %d",
			ErrOverBudget, cw.n, s.hardBudget))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("synth: syncing columnar spill: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("synth: closing columnar spill: %w", err))
	}
	s.mu.Lock()
	s.spillSeq++
	path := filepath.Join(dir, fmt.Sprintf("trace-%d.ibsc", s.spillSeq))
	s.mu.Unlock()
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return nil, "", 0, fmt.Errorf("synth: publishing columnar spill: %w", err)
	}
	fsys.SyncDir(dir) // best effort: persist the publish itself
	cf, err := trace.OpenColumnar(path)
	if err != nil {
		fsys.Remove(path)
		return nil, "", 0, fmt.Errorf("synth: reopening columnar spill: %w", err)
	}
	return cf, path, cw.n, nil
}
