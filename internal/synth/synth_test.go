package synth

import (
	"math"
	"strings"
	"testing"

	"ibsim/internal/trace"
)

func testProfile() Profile {
	p := Profile{
		Name:        "test",
		Description: "test workload",
		OS:          Microkernel,
		Seed:        99,
		Data:        DataProfile{LoadFrac: 0.2, StoreFrac: 0.1, StreamFrac: 0.1, HeapPages: 32},
	}
	p.Domains[trace.User] = DomainProfile{
		TimeShare: 0.6, Procs: 50, MeanProcBytes: 256, Theta: 1.4,
		LoopProb: 0.4, MeanLoopIter: 4, MeanLoopFrac: 0.3,
		CallProb: 0.02, SkipProb: 0.1, MeanResidency: 1000,
	}
	p.Domains[trace.Kernel] = DomainProfile{
		TimeShare: 0.4, Procs: 30, MeanProcBytes: 256, Theta: 1.4,
		LoopProb: 0.3, MeanLoopIter: 3, MeanLoopFrac: 0.3,
		CallProb: 0.02, SkipProb: 0.1, MeanResidency: 400,
	}
	return p
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Domains[trace.User].TimeShare = -0.1 },
		func(p *Profile) { p.Domains[trace.User].Procs = 0 },
		func(p *Profile) { p.Domains[trace.User].MeanProcBytes = 32 },
		func(p *Profile) { p.Domains[trace.User].Theta = 0 },
		func(p *Profile) { p.Domains[trace.User].LoopProb = 1.5 },
		func(p *Profile) { p.Domains[trace.User].MeanLoopFrac = -0.2 },
		func(p *Profile) { p.Domains[trace.User].CallProb = 0.9 },
		func(p *Profile) { p.Domains[trace.User].SkipProb = 0.95 },
		func(p *Profile) { p.Domains[trace.User].MeanResidency = 0 },
		func(p *Profile) { p.Domains[trace.User].TimeShare = 0.2 }, // sums to 0.6
		func(p *Profile) { p.Data.LoadFrac = 0.8; p.Data.StoreFrac = 0.5 },
		func(p *Profile) { p.Data.StreamFrac = 2 },
		func(p *Profile) { p.Data.HeapPages = -1 },
		func(p *Profile) {
			p.Domains[trace.User].TimeShare = 0
			p.Domains[trace.Kernel].TimeShare = 0
		},
	}
	for i, mutate := range cases {
		p := testProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
	p := testProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := testProfile()
	a := MustNewGenerator(p, 0)
	b := MustNewGenerator(p, 0)
	for i := 0; i < 20000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestGeneratorReset(t *testing.T) {
	g := MustNewGenerator(testProfile(), 0)
	var first []trace.Ref
	for i := 0; i < 5000; i++ {
		r, _ := g.Next()
		first = append(first, r)
	}
	g.Reset()
	for i := 0; i < 5000; i++ {
		r, _ := g.Next()
		if r != first[i] {
			t.Fatalf("Reset stream diverged at %d", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p := testProfile()
	a := MustNewGenerator(p, 1)
	b := MustNewGenerator(p, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra == rb {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical refs", same)
	}
}

func TestDomainShares(t *testing.T) {
	g := MustNewGenerator(testProfile(), 0)
	for g.Instructions() < 300000 {
		g.Next()
	}
	if u := g.DomainShare(trace.User); math.Abs(u-0.6) > 0.02 {
		t.Errorf("user share = %v, want 0.6", u)
	}
	if k := g.DomainShare(trace.Kernel); math.Abs(k-0.4) > 0.02 {
		t.Errorf("kernel share = %v, want 0.4", k)
	}
	if x := g.DomainShare(trace.XServer); x != 0 {
		t.Errorf("inactive domain share = %v", x)
	}
}

func TestAddressesInDomainRegions(t *testing.T) {
	g := MustNewGenerator(testProfile(), 0)
	for i := 0; i < 100000; i++ {
		r, _ := g.Next()
		base := domainTextBase[r.Domain]
		if r.Kind == trace.IFetch {
			if r.Addr < base || r.Addr >= base+globalOffset {
				t.Fatalf("ifetch %x outside text region of %v", r.Addr, r.Domain)
			}
			if r.Addr%instrSize != 0 {
				t.Fatalf("misaligned instruction fetch %x", r.Addr)
			}
		} else {
			if r.Addr < base+globalOffset {
				t.Fatalf("data ref %x below data region of %v", r.Addr, r.Domain)
			}
		}
	}
}

func TestDataFractions(t *testing.T) {
	g := MustNewGenerator(testProfile(), 0)
	var c trace.Counts
	for g.Instructions() < 200000 {
		r, _ := g.Next()
		c.Observe(r)
	}
	loads := float64(c.ByKind[trace.DRead]) / float64(c.ByKind[trace.IFetch])
	stores := float64(c.ByKind[trace.DWrite]) / float64(c.ByKind[trace.IFetch])
	if math.Abs(loads-0.2) > 0.01 {
		t.Errorf("load fraction = %v, want 0.2", loads)
	}
	if math.Abs(stores-0.1) > 0.01 {
		t.Errorf("store fraction = %v, want 0.1", stores)
	}
}

func TestInstrTraceOnlyInstructions(t *testing.T) {
	refs, err := InstrTrace(testProfile(), 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 10000 {
		t.Fatalf("got %d refs", len(refs))
	}
	for _, r := range refs {
		if r.Kind != trace.IFetch {
			t.Fatalf("non-instruction ref %v in InstrTrace", r.Kind)
		}
	}
}

func TestTraceIncludesData(t *testing.T) {
	refs, err := Trace(testProfile(), 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	var c trace.Counts
	for _, r := range refs {
		c.Observe(r)
	}
	if c.ByKind[trace.IFetch] < 10000 {
		t.Errorf("only %d instructions", c.ByKind[trace.IFetch])
	}
	if c.ByKind[trace.DRead] == 0 || c.ByKind[trace.DWrite] == 0 {
		t.Error("Trace produced no data references")
	}
}

func TestRegistryComplete(t *testing.T) {
	r := Registry()
	// 8 IBS × 2 OSes + 7 SPEC entries.
	if len(r) != 8*2+7 {
		t.Fatalf("registry has %d entries", len(r))
	}
	for name, p := range r {
		if err := p.Validate(); err != nil {
			t.Errorf("registered profile %s invalid: %v", name, err)
		}
	}
	for _, name := range []string{"gs", "gs/ultrix", "verilog", "eqntott", "specfp89"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q) failed: %v", name, err)
		}
	}
	if _, err := Lookup("nonesuch"); err == nil {
		t.Error("Lookup of unknown name succeeded")
	}
	names := Names()
	if len(names) != len(r) {
		t.Errorf("Names() returned %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names() not sorted")
		}
	}
}

func TestSuiteConstructors(t *testing.T) {
	if got := len(IBSMach()); got != 8 {
		t.Errorf("IBSMach: %d", got)
	}
	if got := len(IBSUltrix()); got != 8 {
		t.Errorf("IBSUltrix: %d", got)
	}
	if got := len(SPEC92()); got != 3 {
		t.Errorf("SPEC92: %d", got)
	}
	suites := SPECSuites()
	if len(suites) != 4 {
		t.Fatalf("SPECSuites: %d", len(suites))
	}
	wantOrder := []string{"specint89", "specfp89", "specint92", "specfp92"}
	for i, p := range suites {
		if p.Name != wantOrder[i] {
			t.Errorf("suite %d = %s, want %s", i, p.Name, wantOrder[i])
		}
	}
	for _, p := range IBSMach() {
		if p.OS != Microkernel {
			t.Errorf("%s not microkernel", p.Name)
		}
	}
	for _, p := range IBSUltrix() {
		if p.OS != Monolithic {
			t.Errorf("%s not monolithic", p.Name)
		}
	}
}

func TestTable4Components(t *testing.T) {
	u, k, b, x, err := Table4Components("mpeg_play")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u+k+b+x-1) > 1e-9 {
		t.Errorf("components sum to %v", u+k+b+x)
	}
	if u != 0.40 || k != 0.23 || b != 0.30 || x != 0.07 {
		t.Errorf("mpeg_play components = %v %v %v %v", u, k, b, x)
	}
	if _, _, _, _, err := Table4Components("bogus"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestScale(t *testing.T) {
	p := testProfile()
	scaled := p.Scale(2.0)
	if scaled.Domains[trace.User].Procs != 100 {
		t.Errorf("scaled Procs = %d", scaled.Domains[trace.User].Procs)
	}
	if !strings.Contains(scaled.Name, "x2.00") {
		t.Errorf("scaled name = %q", scaled.Name)
	}
	if scaled.Footprint() <= p.Footprint() {
		t.Error("scaling did not grow footprint")
	}
	// Scaling by a tiny factor never drops below 1 procedure.
	tiny := p.Scale(0.0001)
	if tiny.Domains[trace.User].Procs < 1 {
		t.Error("scale produced zero procedures")
	}
}

func TestFootprintAndActiveDomains(t *testing.T) {
	p := testProfile()
	want := int64(50*256 + 30*256)
	if got := p.Footprint(); got != want {
		t.Errorf("Footprint = %d, want %d", got, want)
	}
	ad := p.ActiveDomains()
	if len(ad) != 2 || ad[0] != trace.User || ad[1] != trace.Kernel {
		t.Errorf("ActiveDomains = %v", ad)
	}
}

func TestOSModelString(t *testing.T) {
	if !strings.Contains(Monolithic.String(), "Ultrix") {
		t.Error("Monolithic name")
	}
	if !strings.Contains(Microkernel.String(), "Mach") {
		t.Error("Microkernel name")
	}
	if !strings.Contains(OSModel(9).String(), "OSModel(") {
		t.Error("unknown OSModel name")
	}
}

func TestGeneratorSingleDomain(t *testing.T) {
	p := Profile{Name: "solo", Seed: 5}
	p.Domains[trace.User] = DomainProfile{
		TimeShare: 1.0, Procs: 10, MeanProcBytes: 128, Theta: 1.5,
		LoopProb: 0.3, MeanLoopIter: 3, MeanLoopFrac: 0.4,
		CallProb: 0.01, SkipProb: 0.05, MeanResidency: 100,
	}
	g := MustNewGenerator(p, 0)
	for i := 0; i < 10000; i++ {
		r, ok := g.Next()
		if !ok || r.Domain != trace.User {
			t.Fatal("single-domain generator misbehaved")
		}
	}
}

func TestMustNewGeneratorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNewGenerator(Profile{}, 0)
}

// The headline calibration property: IBS workloads miss far more than SPEC
// workloads in a small I-cache, and Mach exceeds Ultrix. (Full numeric
// calibration lives in cmd/ibscal and EXPERIMENTS.md; this guards the
// ordering at reduced trace lengths.)
func TestCalibrationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration ordering needs a few hundred thousand refs")
	}
	mpi := func(p Profile) float64 {
		refs, err := InstrTrace(p, 0, 400000)
		if err != nil {
			t.Fatal(err)
		}
		lines := make(map[uint64]int64)
		misses := int64(0)
		for _, r := range refs {
			la := r.Addr >> 5
			set := la & 255
			if lines[set] != int64(la>>8)+1 {
				misses++
				lines[set] = int64(la>>8) + 1
			}
		}
		return float64(misses) / float64(len(refs))
	}
	gsMach, _ := Lookup("gs")
	gsUltrix, _ := Lookup("gs/ultrix")
	eqntott, _ := Lookup("eqntott")
	mMach, mUltrix, mSpec := mpi(gsMach), mpi(gsUltrix), mpi(eqntott)
	if mMach <= mSpec*2 {
		t.Errorf("IBS gs (%.4f) not clearly above SPEC eqntott (%.4f)", mMach, mSpec)
	}
	if mMach <= mUltrix {
		t.Errorf("Mach gs (%.4f) not above Ultrix gs (%.4f)", mMach, mUltrix)
	}
}

func TestWalkStatsMatchKnobs(t *testing.T) {
	p := testProfile()
	g := MustNewGenerator(p, 0)
	const n = 400_000
	for g.Instructions() < n {
		g.Next()
	}
	w := g.WalkStats()
	if w.Visits == 0 || w.Calls == 0 || w.Skips == 0 || w.LoopBackEdges == 0 {
		t.Fatalf("walk counters empty: %+v", w)
	}
	// Call rate approximates CallProb (0.02 in both domains), modulo the
	// depth cap suppressing some calls.
	callRate := float64(w.Calls) / n
	if callRate < 0.010 || callRate > 0.025 {
		t.Errorf("call rate %.4f, want ~0.02", callRate)
	}
	// Skip rate approximates SkipProb (0.1) minus jump/loop interactions.
	skipRate := float64(w.Skips) / n
	if skipRate < 0.05 || skipRate > 0.12 {
		t.Errorf("skip rate %.4f, want ~0.1", skipRate)
	}
	// Domain switches: residencies of 1000/400 at 60/40 shares → mean
	// period ≈ 0.6*1000+0.4*400 = 760 per... switches ≈ n/mean residency.
	switches := float64(w.DomainSwitches)
	if switches < float64(n)/3000 || switches > float64(n)/200 {
		t.Errorf("domain switches %d implausible for residencies 1000/400", w.DomainSwitches)
	}
	// Reset clears the counters.
	g.Reset()
	if g.WalkStats() != (WalkStats{}) {
		t.Error("Reset left walk stats")
	}
}

func TestWalkStatsNoJumpsWhenDisabled(t *testing.T) {
	p := testProfile() // JumpProb defaults to 0
	g := MustNewGenerator(p, 0)
	for g.Instructions() < 100_000 {
		g.Next()
	}
	if got := g.WalkStats().FarJumps; got != 0 {
		t.Fatalf("FarJumps = %d with JumpProb 0", got)
	}
	// And with it enabled, they appear at roughly the configured rate.
	p2 := testProfile()
	p2.Domains[trace.User].JumpProb = 0.03
	p2.Domains[trace.Kernel].JumpProb = 0.03
	g2 := MustNewGenerator(p2, 0)
	for g2.Instructions() < 100_000 {
		g2.Next()
	}
	rate := float64(g2.WalkStats().FarJumps) / 100_000
	if rate < 0.015 || rate > 0.035 {
		t.Errorf("far-jump rate %.4f, want ~0.03", rate)
	}
}
