package synth

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ibsim/internal/trace"
)

func TestStoreMemoizesAndMatchesInstrTrace(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)
	want, err := InstrTrace(p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	refs, release, err := s.Instr(p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != len(want) {
		t.Fatalf("store trace has %d refs, InstrTrace %d", len(refs), len(want))
	}
	for i := range refs {
		if refs[i] != want[i] {
			t.Fatalf("ref %d: store %v != InstrTrace %v", i, refs[i], want[i])
		}
	}
	again, release2, err := s.Instr(p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &refs[0] {
		t.Fatal("second acquire did not return the memoized slice")
	}
	release()
	release2()
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.IdleBytes != int64(len(refs))*refBytes {
		t.Fatalf("idle bytes %d, want %d", st.IdleBytes, int64(len(refs))*refBytes)
	}
	// A released entry must still be served from cache.
	_, release3, err := s.Instr(p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	release3()
	if got := s.Stats().Hits; got != 2 {
		t.Fatalf("hits after re-acquire = %d, want 2", got)
	}
}

func TestStoreDistinguishesKeys(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Lookup("sdet")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)
	for _, k := range []struct {
		prof Profile
		seed uint64
		n    int64
	}{{p, 0, 1000}, {p, 1, 1000}, {p, 0, 2000}, {q, 0, 1000}} {
		_, release, err := s.Instr(k.prof, k.seed, k.n)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	st := s.Stats()
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 4 distinct generations", st)
	}
}

func TestStoreEvictsIdleBeyondBudget(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits one 1000-ref trace but not two.
	s := NewStore(1500 * refBytes)
	_, r1, err := s.Instr(p, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r1()
	_, r2, err := s.Instr(p, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r2() // seed-1 entry is older → evicted
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 eviction leaving 1 entry", st)
	}
	// Held entries are never evicted, no matter the budget.
	tiny := NewStore(0)
	refs, hold, err := tiny.Instr(p, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1000 {
		t.Fatalf("got %d refs", len(refs))
	}
	if tiny.Stats().Entries != 1 {
		t.Fatal("held entry missing from store")
	}
	hold()
	if tiny.Stats().Entries != 0 {
		t.Fatal("zero-budget store kept a released entry")
	}
	// Double release is a no-op.
	hold()
}

func TestStoreHardBudgetRejectsMaterialization(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreLimits(DefaultIdleBudget, 1000*refBytes)
	if _, _, err := s.Instr(p, 0, 2000); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("Instr over budget = %v, want ErrOverBudget", err)
	}
	// At or under the budget still materializes.
	refs, release, err := s.Instr(p, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1000 {
		t.Fatalf("got %d refs", len(refs))
	}
	release()
}

func TestStoreSourceFallsBackToStreaming(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	want, err := InstrTrace(p, 7, 3000)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreLimits(DefaultIdleBudget, 1000*refBytes)
	src, release, err := s.Source(p, 7, 3000)
	if err != nil {
		t.Fatalf("Source over budget should stream, got %v", err)
	}
	got, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if len(got) != len(want) {
		t.Fatalf("streamed %d refs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ref %d: streamed %v != InstrTrace %v", i, got[i], want[i])
		}
	}
	st := s.Stats()
	if st.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", st.Fallbacks)
	}
	if st.Entries != 0 {
		t.Fatalf("streaming fallback left %d store entries", st.Entries)
	}

	// Under budget, Source is served by the memoized slice (no fallback).
	src2, release2, err := s.Source(p, 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Collect(src2); err != nil {
		t.Fatal(err)
	}
	release2()
	if st := s.Stats(); st.Fallbacks != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want in-budget Source memoized", st)
	}
}

func TestStoreInstrCtxCancellation(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)

	// Already-cancelled context fails fast without generating anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.InstrCtx(ctx, p, 0, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled InstrCtx = %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("cancelled acquire touched the store: %+v", st)
	}

	// A waiter abandoning an in-flight generation must not corrupt the
	// entry for the generating caller or later acquires.
	gate := make(chan struct{})
	started := make(chan struct{})
	var genErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		refs, release, err := s.Instr(p, 9, 200000)
		genErr = err
		if err == nil {
			if len(refs) != 200000 {
				genErr = errors.New("generator got short trace")
			}
			release()
		}
		close(gate)
	}()
	<-started
	wctx, wcancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer wcancel()
	_, _, werr := s.InstrCtx(wctx, p, 9, 200000)
	// Either the generation finished inside the deadline (fine) or the
	// waiter bailed with the context error.
	if werr != nil && !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("abandoning waiter = %v", werr)
	}
	<-gate
	wg.Wait()
	if genErr != nil {
		t.Fatalf("generating caller failed: %v", genErr)
	}
	// The entry must still be intact and servable.
	refs, release, err := s.Instr(p, 9, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 200000 {
		t.Fatalf("post-abandon acquire got %d refs", len(refs))
	}
	release()
}

func TestStoreConcurrentAcquireSharesOneGeneration(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)
	const goroutines = 8
	var wg sync.WaitGroup
	firsts := make([]*trace.Ref, goroutines)
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			refs, release, err := s.Instr(p, 0, 20000)
			if err != nil {
				t.Error(err)
				return
			}
			firsts[i] = &refs[0]
			release()
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if firsts[i] != firsts[0] {
			t.Fatalf("goroutine %d got a different backing array", i)
		}
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly 1 generation", st)
	}
}

func TestStoreInstrRuns(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)
	refs, runs, release, err := s.InstrRuns(context.Background(), p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := trace.Compact(refs)
	if len(runs) != len(want) {
		t.Fatalf("store compaction has %d runs, trace.Compact %d", len(runs), len(want))
	}
	for i := range runs {
		if runs[i] != want[i] {
			t.Fatalf("run %d: store %+v != Compact %+v", i, runs[i], want[i])
		}
	}
	// A second acquire shares both memoized slices.
	refs2, runs2, release2, err := s.InstrRuns(context.Background(), p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if &refs2[0] != &refs[0] || &runs2[0] != &runs[0] {
		t.Fatal("second InstrRuns did not return the memoized slices")
	}
	// Plain Instr on the same key shares the entry too.
	refs3, release3, err := s.Instr(p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if &refs3[0] != &refs[0] {
		t.Fatal("Instr after InstrRuns did not share the entry")
	}
	release()
	release2()
	release3()
	// Idle accounting covers both the trace and its compaction.
	wantIdle := int64(len(refs))*refBytes + int64(len(runs))*runBytes
	if got := s.Stats().IdleBytes; got != wantIdle {
		t.Fatalf("idle bytes %d, want %d (refs+runs)", got, wantIdle)
	}
}

func TestStoreInstrRunsHardBudget(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	// Enough for the refs alone but not refs+runs in the worst case.
	s := NewStoreLimits(DefaultIdleBudget, 5000*refBytes)
	if _, _, _, err := s.InstrRuns(context.Background(), p, 0, 5000); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("err = %v, want ErrOverBudget", err)
	}
	if _, release, err := s.Instr(p, 0, 5000); err != nil {
		t.Fatalf("Instr within budget failed: %v", err)
	} else {
		release()
	}
}

func TestStoreInstrRunsConcurrent(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)
	const workers = 8
	got := make([][]trace.Run, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, runs, release, err := s.InstrRuns(context.Background(), p, 3, 4000)
			if err != nil {
				t.Error(err)
				return
			}
			got[w] = runs
			release()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(got[w]) == 0 || &got[w][0] != &got[0][0] {
			t.Fatalf("worker %d got a different runs slice", w)
		}
	}
}

func TestStoreRunsOnlyMatchesCompact(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)
	runs, release, err := s.RunsOnly(context.Background(), p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := InstrTrace(p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := trace.Compact(refs)
	if len(runs) != len(want) {
		t.Fatalf("RunsOnly has %d runs, trace.Compact %d", len(runs), len(want))
	}
	for i := range runs {
		if runs[i] != want[i] {
			t.Fatalf("run %d: %+v != %+v", i, runs[i], want[i])
		}
	}
	// Second acquire shares the memoized slice.
	runs2, release2, err := s.RunsOnly(context.Background(), p, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if &runs2[0] != &runs[0] {
		t.Fatal("second RunsOnly did not share the entry")
	}
	release()
	release2()
	if got, want := s.Stats().IdleBytes, int64(len(runs))*runBytes; got != want {
		t.Fatalf("idle bytes %d, want %d (runs only, no refs)", got, want)
	}
}

func TestStoreRunsOnlyFitsWhereRefsDoNot(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	// Budget far below the refs footprint but comfortably above the actual
	// compaction (sequential fetch compacts ~10x; runBytes ~1.5x refBytes).
	s := NewStoreLimits(DefaultIdleBudget, n*refBytes/2)
	if _, _, err := s.Instr(p, 0, n); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("Instr err = %v, want ErrOverBudget", err)
	}
	runs, release, err := s.RunsOnly(context.Background(), p, 0, n)
	if err != nil {
		t.Fatalf("RunsOnly under the same budget failed: %v", err)
	}
	if len(runs) == 0 {
		t.Fatal("no runs")
	}
	release()
}

func TestStoreRunsOnlyOverBudget(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreLimits(DefaultIdleBudget, 10*runBytes)
	if _, _, err := s.RunsOnly(context.Background(), p, 0, 50_000); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("err = %v, want ErrOverBudget", err)
	}
	// The failed entry must not linger.
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("failed RunsOnly left %d entries", st.Entries)
	}
}

func TestStoreRunsOnlyCancellation(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.RunsOnly(ctx, p, 0, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
