package synth

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"ibsim/internal/trace"
)

// Checkpointed seekable generation.
//
// A Checkpoint is a compact, CRC-guarded serialization of a Generator's
// *mutable* state: the top-level walk cursors, the RNG states, and every
// domain's call stack, data cursors and counters. The immutable layout
// (procedure placement, zipf tables) is fully determined by (profile, seed)
// and is deliberately NOT serialized: Restore only overwrites the mutable
// state of a generator already built for the same profile and seed, which
// makes a restore a microsecond-scale memcpy rather than a relayout.
//
// A CheckpointIndex collects checkpoints at fixed instruction intervals
// during any generation pass. SeekTo(i) restores the nearest checkpoint at
// or below i and fast-forwards the remainder, turning "position a trace at
// instruction i" from O(i) into O(interval) — the primitive behind
// skip-mode sampled streaming and parallel columnar spill.

// ckMagic identifies a serialized checkpoint ("ICK1", little-endian).
const ckMagic uint32 = 0x314B4349

// DefaultCheckpointEvery is the default checkpoint interval in instructions.
// At ~800 bytes per checkpoint this costs ~50 KB per million instructions —
// negligible next to the refs it lets a seek skip.
const DefaultCheckpointEvery int64 = 1 << 14

// minCheckpointEvery bounds how dense an index may get; below this the
// index itself starts to rival the trace in size.
const minCheckpointEvery int64 = 256

// ErrBadCheckpoint reports a checkpoint that failed its CRC or does not
// belong to the generator it was restored into. Callers that hold an index
// (SeekTo) recover transparently by regenerating; Restore surfaces it.
var ErrBadCheckpoint = errors.New("synth: corrupt or mismatched checkpoint")

// Checkpoint is a serialized generator state that resumes emission at
// instruction Instr (i.e. the next reference produced after Restore is
// instruction fetch number Instr, counting from zero).
type Checkpoint struct {
	Instr int64
	Data  []byte
}

// Snapshot serializes the generator's current mutable state. The snapshot
// is valid for any generator built from the same (profile, seed); restoring
// it resumes the stream bit-identically, including any pending data
// references of the last emitted instruction.
func (g *Generator) Snapshot() Checkpoint {
	// Fixed part ~150 bytes + ~(80 + 48·depth) per domain.
	b := make([]byte, 0, 160+len(g.domains)*(80+48*maxDepth))
	b = binary.LittleEndian.AppendUint32(b, ckMagic)
	b = binary.LittleEndian.AppendUint64(b, g.seed)
	b = binary.LittleEndian.AppendUint64(b, uint64(g.instrs))
	b = binary.LittleEndian.AppendUint32(b, uint32(g.cur))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(g.resid)))
	b = append(b, byte(g.npend))
	for _, r := range g.pending {
		b = appendRef(b, r)
	}
	for _, v := range [...]int64{g.walk.Visits, g.walk.Calls, g.walk.LoopBackEdges,
		g.walk.Skips, g.walk.FarJumps, g.walk.DomainSwitches} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	b = appendRngState(b, g.rng.State())
	b = append(b, byte(len(g.domains)))
	for _, ds := range g.domains {
		b = appendRngState(b, ds.rng.State())
		b = binary.LittleEndian.AppendUint64(b, uint64(ds.executed))
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(ds.storeBurst)))
		b = binary.LittleEndian.AppendUint64(b, ds.stackPtr)
		b = binary.LittleEndian.AppendUint64(b, ds.streamPtr)
		b = append(b, byte(len(ds.stack)))
		for _, f := range ds.stack {
			b = binary.LittleEndian.AppendUint64(b, f.p.base)
			b = binary.LittleEndian.AppendUint64(b, f.p.size)
			b = binary.LittleEndian.AppendUint64(b, f.pc)
			b = binary.LittleEndian.AppendUint64(b, f.loopStart)
			b = binary.LittleEndian.AppendUint64(b, f.loopEnd)
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(f.loopsLeft)))
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return Checkpoint{Instr: g.instrs, Data: b}
}

func appendRef(b []byte, r trace.Ref) []byte {
	b = binary.LittleEndian.AppendUint64(b, r.Addr)
	return append(b, byte(r.Kind), byte(r.Domain))
}

func appendRngState(b []byte, s [4]uint64) []byte {
	for _, v := range s {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	return b
}

// ckReader is a bounds-checked little-endian cursor over a checkpoint blob.
type ckReader struct {
	b   []byte
	pos int
	bad bool
}

func (r *ckReader) u8() byte {
	if r.pos+1 > len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *ckReader) u32() uint32 {
	if r.pos+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *ckReader) u64() uint64 {
	if r.pos+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

func (r *ckReader) i64() int64 { return int64(r.u64()) }

func (r *ckReader) rngState() (s [4]uint64) {
	for i := range s {
		s[i] = r.u64()
	}
	return s
}

func (r *ckReader) ref() trace.Ref {
	addr := r.u64()
	kind := r.u8()
	dom := r.u8()
	return trace.Ref{Addr: addr, Kind: trace.Kind(kind), Domain: trace.Domain(dom)}
}

// ckDomain is the decoded mutable state of one domain.
type ckDomain struct {
	rng        [4]uint64
	executed   int64
	storeBurst int64
	stackPtr   uint64
	streamPtr  uint64
	stack      []frame
}

// ckState is a fully decoded checkpoint, validated before any of it is
// applied so a corrupt blob can never leave a generator half-restored.
type ckState struct {
	seed    uint64
	instrs  int64
	cur     int
	resid   int64
	npend   int
	pending [2]trace.Ref
	walk    WalkStats
	rng     [4]uint64
	domains []ckDomain
}

// decodeCheckpoint parses and CRC-verifies data. It does not touch g; it
// only uses g's shape (domain count, seed) for validation.
func (g *Generator) decodeCheckpoint(data []byte) (*ckState, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrBadCheckpoint, len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrBadCheckpoint)
	}
	r := &ckReader{b: body}
	if r.u32() != ckMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	st := &ckState{}
	st.seed = r.u64()
	st.instrs = r.i64()
	st.cur = int(r.u32())
	st.resid = r.i64()
	st.npend = int(r.u8())
	for i := range st.pending {
		st.pending[i] = r.ref()
	}
	st.walk = WalkStats{
		Visits: r.i64(), Calls: r.i64(), LoopBackEdges: r.i64(),
		Skips: r.i64(), FarJumps: r.i64(), DomainSwitches: r.i64(),
	}
	st.rng = r.rngState()
	nd := int(r.u8())
	if nd != len(g.domains) {
		return nil, fmt.Errorf("%w: %d domains, generator has %d", ErrBadCheckpoint, nd, len(g.domains))
	}
	st.domains = make([]ckDomain, nd)
	for i := range st.domains {
		d := &st.domains[i]
		d.rng = r.rngState()
		d.executed = r.i64()
		d.storeBurst = r.i64()
		d.stackPtr = r.u64()
		d.streamPtr = r.u64()
		nf := int(r.u8())
		if nf > maxDepth {
			return nil, fmt.Errorf("%w: stack depth %d > %d", ErrBadCheckpoint, nf, maxDepth)
		}
		d.stack = make([]frame, nf)
		for j := range d.stack {
			f := &d.stack[j]
			f.p.base = r.u64()
			f.p.size = r.u64()
			f.pc = r.u64()
			f.loopStart = r.u64()
			f.loopEnd = r.u64()
			f.loopsLeft = int(r.i64())
		}
	}
	if r.bad || r.pos != len(body) {
		return nil, fmt.Errorf("%w: malformed body", ErrBadCheckpoint)
	}
	if st.seed != g.seed {
		return nil, fmt.Errorf("%w: seed %#x, generator seeded %#x", ErrBadCheckpoint, st.seed, g.seed)
	}
	if st.instrs < 0 || st.cur < 0 || st.cur >= nd || st.npend < 0 || st.npend > len(st.pending) {
		return nil, fmt.Errorf("%w: out-of-range cursors", ErrBadCheckpoint)
	}
	return st, nil
}

// Restore overwrites the generator's mutable state from a checkpoint taken
// on a generator with the same profile and seed. On error (CRC failure,
// mismatched shape) the generator is left exactly as it was.
func (g *Generator) Restore(ck Checkpoint) error {
	st, err := g.decodeCheckpoint(ck.Data)
	if err != nil {
		return err
	}
	g.instrs = st.instrs
	g.cur = st.cur
	g.resid = int(st.resid)
	g.npend = st.npend
	g.pending = st.pending
	g.walk = st.walk
	g.rng.SetState(st.rng)
	for i, ds := range g.domains {
		d := &st.domains[i]
		ds.rng.SetState(d.rng)
		ds.executed = d.executed
		ds.storeBurst = int(d.storeBurst)
		ds.stackPtr = d.stackPtr
		ds.streamPtr = d.streamPtr
		ds.stack = append(ds.stack[:0], d.stack...)
	}
	g.syncCkNext()
	return nil
}

// SetCheckpoints attaches a checkpoint index to the generator: every
// index-interval instructions the generator records a snapshot into ix, and
// SeekTo uses ix to jump instead of regenerating. Passing nil detaches.
func (g *Generator) SetCheckpoints(ix *CheckpointIndex) {
	g.ck = ix
	g.syncCkNext()
}

// Checkpoints returns the attached index, if any.
func (g *Generator) Checkpoints() *CheckpointIndex { return g.ck }

// syncCkNext computes the next instruction count at which to record a
// checkpoint: the first multiple of the interval strictly above the current
// position. Recording at fixed multiples (rather than "every K from
// wherever we started") makes the set of checkpoint positions identical
// across passes, so concurrent and repeated passes dedup instead of
// accumulating near-duplicate snapshots.
func (g *Generator) syncCkNext() {
	if g.ck == nil {
		return
	}
	every := g.ck.Every()
	g.ckNext = (g.instrs/every + 1) * every
}

// recordCheckpoint is the slow half of the Next() hook: called at most once
// per interval, at an instruction boundary that is a multiple of the
// interval.
func (g *Generator) recordCheckpoint() {
	g.ck.Add(g.Snapshot())
	g.syncCkNext()
}

// SeekTo positions the generator so the next reference it emits is
// instruction fetch number i (0-based), exactly as if it had generated and
// discarded everything before it. It restores the nearest checkpoint at or
// below i when that beats the current position, and fast-forwards the
// remainder. Corrupt checkpoints are detected by CRC, dropped from the
// index, and seeking falls back to the next-best start (ultimately a full
// regeneration from zero) — a damaged index degrades, it never fails.
func (g *Generator) SeekTo(i int64) error {
	if i < 0 {
		return fmt.Errorf("synth: SeekTo(%d): negative target", i)
	}
	for {
		// The current position can reach i by advancing iff it is not past
		// it. (At instrs == i with pending data refs, advancing drains the
		// pendings of instruction i-1 and lands exactly on the boundary.)
		curOK := g.instrs <= i
		if g.ck != nil {
			if ck, ok := g.ck.Nearest(i); ok && (!curOK || ck.Instr > g.instrs) {
				if err := g.Restore(ck); err != nil {
					g.ck.dropCorrupt(ck.Instr)
					continue
				}
			} else if !curOK {
				g.Reset()
			}
		} else if !curOK {
			g.Reset()
		}
		for g.instrs < i || (g.instrs == i && g.npend > 0) {
			g.Next()
		}
		return nil
	}
}

// CheckpointStats summarizes a checkpoint index.
type CheckpointStats struct {
	Count   int   `json:"count"`
	Bytes   int64 `json:"bytes"`
	Every   int64 `json:"every"`
	Corrupt int64 `json:"corrupt"` // checkpoints dropped after CRC failure
}

// CheckpointIndex is a concurrency-safe, deduplicated set of checkpoints at
// fixed instruction intervals, kept sorted by instruction. One index serves
// every generator of the same (profile, seed); the synth store memoizes one
// per pair and charges its bytes to the budget.
type CheckpointIndex struct {
	every int64

	mu      sync.Mutex
	points  []Checkpoint // sorted by Instr, unique
	bytes   int64
	corrupt int64
}

// NewCheckpointIndex returns an empty index recording every `every`
// instructions. Values below the minimum (or non-positive) are clamped to
// keep the index from rivaling the trace it summarizes.
func NewCheckpointIndex(every int64) *CheckpointIndex {
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	if every < minCheckpointEvery {
		every = minCheckpointEvery
	}
	return &CheckpointIndex{every: every}
}

// Every returns the recording interval in instructions.
func (ix *CheckpointIndex) Every() int64 { return ix.every }

// Add inserts ck unless a checkpoint at the same instruction is already
// present. It reports whether the checkpoint was inserted.
func (ix *CheckpointIndex) Add(ck Checkpoint) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	i := sort.Search(len(ix.points), func(k int) bool { return ix.points[k].Instr >= ck.Instr })
	if i < len(ix.points) && ix.points[i].Instr == ck.Instr {
		return false
	}
	ix.points = append(ix.points, Checkpoint{})
	copy(ix.points[i+1:], ix.points[i:])
	ix.points[i] = ck
	ix.bytes += int64(len(ck.Data))
	return true
}

// Nearest returns the checkpoint with the largest Instr ≤ i.
func (ix *CheckpointIndex) Nearest(i int64) (Checkpoint, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	k := sort.Search(len(ix.points), func(j int) bool { return ix.points[j].Instr > i })
	if k == 0 {
		return Checkpoint{}, false
	}
	return ix.points[k-1], true
}

// dropCorrupt removes the checkpoint at exactly instr, counting it as a
// corruption casualty. Called by SeekTo after a CRC failure.
func (ix *CheckpointIndex) dropCorrupt(instr int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	k := sort.Search(len(ix.points), func(j int) bool { return ix.points[j].Instr >= instr })
	if k < len(ix.points) && ix.points[k].Instr == instr {
		ix.bytes -= int64(len(ix.points[k].Data))
		ix.points = append(ix.points[:k], ix.points[k+1:]...)
		ix.corrupt++
	}
}

// Len returns the number of checkpoints held.
func (ix *CheckpointIndex) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.points)
}

// Bytes returns the total serialized size of all checkpoints.
func (ix *CheckpointIndex) Bytes() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.bytes
}

// Stats returns a snapshot of the index's shape.
func (ix *CheckpointIndex) Stats() CheckpointStats {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return CheckpointStats{Count: len(ix.points), Bytes: ix.bytes, Every: ix.every, Corrupt: ix.corrupt}
}
