package synth

import (
	"ibsim/internal/trace"
)

// Seekable streaming tier of the store.
//
// Every generation pass the store runs — materializing refs, streaming run
// compaction, columnar spill, streaming fallback — attaches the store's
// per-(profile, seed) CheckpointIndex to its generator, so the pass leaves
// behind a trail of restore points as a side effect. Later passes over the
// same workload then position themselves in O(checkpoint interval) instead
// of regenerating from instruction zero: skip-mode sampled sweeps jump
// straight to window starts, RunsOnly and Columnar resume from the longest
// memoized prefix, and the parallel columnar spill hands each goroutine a
// boundary snapshot (see spill.go).

// SeekSource is a seekable, instruction-only streaming source: exactly the
// stream InstrSource yields, plus SeekTo. It implements trace.Seeker. A
// SeekSource is not safe for concurrent use.
type SeekSource struct {
	g *Generator
	n int64
}

// NewSeekSource returns a seekable source over prof's n-instruction fetch
// stream for seed, recording into (and seeking via) ix. A nil ix is allowed:
// the source still seeks correctly, by regeneration.
func NewSeekSource(prof Profile, seed uint64, n int64, ix *CheckpointIndex) (*SeekSource, error) {
	p := prof
	p.Data = DataProfile{}
	g, err := NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	g.SetCheckpoints(ix)
	return &SeekSource{g: g, n: n}, nil
}

// Next implements trace.Source: the stream ends after the n-th instruction.
func (ss *SeekSource) Next() (trace.Ref, bool) {
	if ss.g.Instructions() >= ss.n {
		return trace.Ref{}, false
	}
	return ss.g.Next()
}

// Err implements trace.Source; generation cannot fail.
func (ss *SeekSource) Err() error { return nil }

// SeekTo positions the source so the next reference is instruction i
// (clamped to the stream length, where Next returns false).
func (ss *SeekSource) SeekTo(i int64) error {
	if i > ss.n {
		i = ss.n
	}
	return ss.g.SeekTo(i)
}

// Pos returns the index of the next instruction Next would yield.
func (ss *SeekSource) Pos() int64 { return ss.g.Instructions() }

// Total returns the stream length in instructions.
func (ss *SeekSource) Total() int64 { return ss.n }

var _ trace.Seeker = (*SeekSource)(nil)

// Checkpoints returns the store's shared checkpoint index for
// (prof, seed) — creating an empty one on first use — together with a
// release function that must be called exactly once. The index's bytes are
// charged to the idle budget like any other entry once every holder
// releases; an evicted index simply starts empty next time. Acquisitions are
// not counted in Stats.Hits/Misses (the index is metadata about a trace, not
// a trace).
func (s *Store) Checkpoints(prof Profile, seed uint64) (*CheckpointIndex, func()) {
	key := storeKey{prof: prof, seed: seed, ckpt: true}
	key.prof.Data = DataProfile{}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		ready := make(chan struct{})
		close(ready)
		e = &storeEntry{ready: ready, ckix: NewCheckpointIndex(s.ckEvery)}
		s.entries[key] = e
	} else if e.refcount == 0 {
		s.idleBytes -= entryBytes(e)
	}
	e.refcount++
	s.tick++
	e.lastUse = s.tick
	return e.ckix, s.releaseOnce(key, e)
}

// SetCheckpointEvery sets the recording interval, in instructions, for
// checkpoint indexes the store creates from now on (existing indexes keep
// theirs). Non-positive restores the default.
func (s *Store) SetCheckpointEvery(every int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ckEvery = every
}

// seekGen returns an instruction-only generator for (prof, seed) with the
// store's shared checkpoint index attached, plus the index handle's release
// function. Every store generation pass goes through here so checkpoints
// accumulate as a side effect of normal work.
func (s *Store) seekGen(prof Profile, seed uint64) (*Generator, func(), error) {
	p := prof
	p.Data = DataProfile{}
	g, err := NewGenerator(p, seed)
	if err != nil {
		return nil, nil, err
	}
	ix, done := s.Checkpoints(prof, seed)
	g.SetCheckpoints(ix)
	return g, done, nil
}

// SeekSource returns a seekable streaming source over prof's n-instruction
// stream, backed by the store's shared checkpoint index: seeks cost
// O(checkpoint interval) once any pass over the workload has run (and this
// source itself records as it reads). It never materializes the trace and so
// never fails the hard budget. The release function must be called exactly
// once, after which the source must not be used.
func (s *Store) SeekSource(prof Profile, seed uint64, n int64) (*SeekSource, func(), error) {
	g, done, err := s.seekGen(prof, seed)
	if err != nil {
		return nil, nil, err
	}
	return &SeekSource{g: g, n: n}, done, nil
}

// runsPrefix returns a copy of the longest ready memoized runs-only
// compaction for (prof, seed) covering at most n instructions, and its
// instruction count — the resume point for a longer compaction pass. Returns
// (nil, 0) when no usable prefix is cached.
func (s *Store) runsPrefix(prof Profile, seed uint64, n int64) ([]trace.Run, int64) {
	want := storeKey{prof: prof, seed: seed, runsOnly: true}
	want.prof.Data = DataProfile{}
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *storeEntry
	var bestN int64
	for k, e := range s.entries {
		if !k.runsOnly || k.prof != want.prof || k.seed != want.seed || k.n > n || k.n <= bestN {
			continue
		}
		select {
		case <-e.ready:
		default:
			continue // still generating; don't wait
		}
		if e.err != nil {
			continue
		}
		best, bestN = e, k.n
	}
	if best == nil {
		return nil, 0
	}
	cp := make([]trace.Run, len(best.runs))
	copy(cp, best.runs)
	return cp, bestN
}
