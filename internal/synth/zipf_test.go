package synth

import (
	"math"
	"testing"

	"ibsim/internal/xrand"
)

func TestInvPowMatchesMath(t *testing.T) {
	for _, tc := range []struct{ x, s float64 }{
		{1, 1}, {2, 1}, {10, 1}, {3, 2}, {7, 1.5}, {100, 1.38}, {500, 2.4}, {1, 0.5},
	} {
		got := invPow(tc.x, tc.s)
		want := math.Pow(tc.x, -tc.s)
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("invPow(%v, %v) = %v, want %v", tc.x, tc.s, got, want)
		}
	}
}

func TestZipfCDFMonotone(t *testing.T) {
	z := newZipf(100, 1.3)
	prev := 0.0
	for _, c := range z.cum {
		if c < prev {
			t.Fatal("CDF not monotone")
		}
		prev = c
	}
	if z.cum[len(z.cum)-1] != 1 {
		t.Fatalf("CDF does not end at 1: %v", z.cum[len(z.cum)-1])
	}
}

func TestZipfHeadMass(t *testing.T) {
	// s=1.0 over 1000 ranks: P(rank 0) = 1/H(1000) ≈ 1/7.485 ≈ 0.1336.
	z := newZipf(1000, 1.0)
	want := 0.1336
	if got := z.cum[0]; math.Abs(got-want) > 0.001 {
		t.Errorf("P(0) = %v, want ~%v", got, want)
	}
}

func TestZipfSampling(t *testing.T) {
	z := newZipf(50, 1.5)
	rng := xrand.New(7)
	counts := make([]int, 50)
	const draws = 200000
	for i := 0; i < draws; i++ {
		r := z.draw(rng)
		if r < 0 || r >= 50 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Empirical frequencies should match the CDF increments within 5%.
	for r := 0; r < 10; r++ {
		want := z.cum[r]
		if r > 0 {
			want -= z.cum[r-1]
		}
		got := float64(counts[r]) / draws
		if math.Abs(got-want) > 0.05*want+0.001 {
			t.Errorf("rank %d: freq %v, want %v", r, got, want)
		}
	}
	// Monotone non-increasing head (allowing small noise).
	if counts[0] < counts[1] || counts[1] < counts[3] {
		t.Errorf("head not decreasing: %v", counts[:5])
	}
}

func TestZipfTailMass(t *testing.T) {
	z := newZipf(100, 2.0)
	if z.tailMass(0) != 1 {
		t.Error("tailMass(0) != 1")
	}
	if z.tailMass(100) != 0 || z.tailMass(200) != 0 {
		t.Error("tailMass beyond n != 0")
	}
	if tm := z.tailMass(1); math.Abs(tm-(1-z.cum[0])) > 1e-12 {
		t.Errorf("tailMass(1) = %v", tm)
	}
	// Larger exponent → thinner tail.
	flat := newZipf(100, 1.0)
	if z.tailMass(10) >= flat.tailMass(10) {
		t.Error("s=2 tail not thinner than s=1 tail")
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := newZipf(0, 1.0)
	if z.n() != 1 {
		t.Fatalf("n = %d", z.n())
	}
	rng := xrand.New(1)
	if z.draw(rng) != 0 {
		t.Fatal("single-rank draw != 0")
	}
}
