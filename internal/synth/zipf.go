package synth

import (
	"sync"

	"ibsim/internal/xrand"
)

// zipf samples ranks 0..n-1 with true Zipfian probabilities
// p(r) ∝ 1/(r+1)^s, via a precomputed inverse-CDF table. The popularity
// distribution of procedure invocations is the single most important
// determinant of a workload's miss-ratio-versus-cache-size curve: a Zipf
// exponent near 1 gives the gradual decline of a bloated, flat profile
// (IBS), while exponents near 2 give the loop-dominated concentration of the
// SPEC benchmarks.
type zipf struct {
	cum []float64 // cum[r] = P(rank <= r); cum[n-1] == 1
}

// zipfCache memoizes inverse-CDF tables by (n, s). The table is a pure
// function of its parameters and immutable after construction (draw only
// reads it), so one copy can back every generator. Building a table costs
// ~25 Newton iterations per rank — without the cache it dominates generator
// construction, which the store performs per seek-source acquisition and
// per parallel-spill worker.
var zipfCache sync.Map // zipfKey -> *zipf

type zipfKey struct {
	n int
	s float64
}

// newZipf returns the (shared) sampler over n ranks with exponent s > 0.
func newZipf(n int, s float64) *zipf {
	if n < 1 {
		n = 1
	}
	key := zipfKey{n: n, s: s}
	if z, ok := zipfCache.Load(key); ok {
		return z.(*zipf)
	}
	z := buildZipf(n, s)
	zipfCache.Store(key, z)
	return z
}

// buildZipf constructs the inverse-CDF table.
func buildZipf(n int, s float64) *zipf {
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += invPow(float64(r+1), s)
		cum[r] = total
	}
	inv := 1 / total
	for r := range cum {
		cum[r] *= inv
	}
	cum[n-1] = 1 // guard against rounding
	return &zipf{cum: cum}
}

// invPow computes x^(-s) for x >= 1, s > 0 using exp/ln via the math
// library-free square-and-multiply in xrand would be overkill here; the
// straightforward loop below handles integer and fractional exponents with
// adequate precision for sampling tables.
func invPow(x, s float64) float64 {
	// x^-s = (1/x)^s
	u := 1 / x
	// Integer part.
	result := 1.0
	ip := int(s)
	frac := s - float64(ip)
	base := u
	for ip > 0 {
		if ip&1 == 1 {
			result *= base
		}
		base *= base
		ip >>= 1
	}
	// Fractional part via binary-fraction roots.
	if frac > 0 {
		root := u
		for i := 0; i < 24 && frac > 0; i++ {
			root = sqrt(root)
			frac *= 2
			if frac >= 1 {
				result *= root
				frac -= 1
			}
		}
	}
	return result
}

func sqrt(u float64) float64 {
	if u <= 0 {
		return 0
	}
	x := u
	if x > 1 {
		x = 1
	}
	for i := 0; i < 24; i++ {
		x = 0.5 * (x + u/x)
	}
	return x
}

// draw samples a rank.
func (z *zipf) draw(rng *xrand.Source) int {
	f := rng.Float64()
	// Binary search for the first cum[r] >= f.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// n returns the number of ranks.
func (z *zipf) n() int { return len(z.cum) }

// tailMass returns P(rank >= k) — used by tests to validate the sampler
// against closed-form expectations.
func (z *zipf) tailMass(k int) float64 {
	if k <= 0 {
		return 1
	}
	if k >= len(z.cum) {
		return 0
	}
	return 1 - z.cum[k-1]
}
