package synth

import (
	"context"
	"errors"
	"os"
	"testing"

	"ibsim/internal/trace"
)

// collectColumnar decodes every block of the file into one run slice.
func collectColumnar(t *testing.T, cf *trace.ColumnarFile) []trace.Run {
	t.Helper()
	var all, blk []trace.Run
	var err error
	for i := 0; i < cf.NumBlocks(); i++ {
		if blk, err = cf.BlockRuns(i, blk); err != nil {
			t.Fatalf("BlockRuns(%d): %v", i, err)
		}
		all = append(all, blk...)
	}
	return all
}

// The columnar tier must hold exactly the runs RunsOnly materializes — the
// incremental spill compaction and trace.Compact agree run for run — and be
// memoized like every other tier.
func TestStoreColumnarMatchesRunsOnly(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)
	ctx := context.Background()
	want, relRuns, err := s.RunsOnly(ctx, p, 3, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	defer relRuns()

	cf, release, err := s.Columnar(ctx, p, 3, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	got := collectColumnar(t, cf)
	if len(got) != len(want) {
		t.Fatalf("columnar holds %d runs, RunsOnly %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("run %d: columnar %+v != RunsOnly %+v", i, got[i], want[i])
		}
	}

	// Second acquire shares the entry (a Hit, same opened file).
	cf2, release2, err := s.Columnar(ctx, p, 3, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	if cf2 != cf {
		t.Fatal("second acquire did not return the memoized file")
	}
	st := s.Stats()
	if st.Spills != 1 {
		t.Fatalf("spills = %d, want 1", st.Spills)
	}
	if st.SpillBytes != cf.Size() {
		t.Fatalf("spill bytes %d, want file size %d", st.SpillBytes, cf.Size())
	}
	release()
	release2()
}

// The columnar file is dramatically smaller than the in-memory run slice: a
// hard budget sized between the two rejects RunsOnly with ErrOverBudget but
// admits Columnar — the degradation rung the service's columnar-disk tier
// stands on.
func TestStoreColumnarAdmitsWhatRunsReject(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	probe := NewStore(DefaultIdleBudget)
	runs, relProbe, err := probe.RunsOnly(ctx, p, 7, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	runBudget := int64(len(runs)) * runBytes
	relProbe()

	s := NewStoreLimits(DefaultIdleBudget, runBudget/4)
	if _, _, err := s.RunsOnly(ctx, p, 7, 150_000); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("RunsOnly under quarter budget: err = %v, want ErrOverBudget", err)
	}
	cf, release, err := s.Columnar(ctx, p, 7, 150_000)
	if err != nil {
		t.Fatalf("Columnar under quarter budget: %v", err)
	}
	if cf.Size() >= runBudget/4 {
		t.Fatalf("columnar file %d bytes is not under the %d budget", cf.Size(), runBudget/4)
	}
	release()

	// And an impossible budget still fails typed.
	tiny := NewStoreLimits(DefaultIdleBudget, 64)
	if _, _, err := tiny.Columnar(ctx, p, 7, 150_000); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("Columnar under 64-byte budget: err = %v, want ErrOverBudget", err)
	}
}

// Eviction and Purge must delete the backing file from disk.
func TestStoreColumnarEvictionDeletesFile(t *testing.T) {
	p, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s := NewStore(0) // idle budget 0: release evicts immediately
	_, release, err := s.Columnar(ctx, p, 11, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	path := s.entries[storeKeyColumnar(p, 11, 50_000)].path
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("backing file missing while referenced: %v", err)
	}
	release()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("backing file survived eviction: %v", err)
	}

	// Purge drops idle entries and the spill directory.
	s2 := NewStore(DefaultIdleBudget)
	_, release2, err := s2.Columnar(ctx, p, 11, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	dir := s2.dir
	release2()
	s2.Purge()
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir survived purge: %v", err)
	}
	if got := s2.Stats().Entries; got != 0 {
		t.Fatalf("%d entries survived purge", got)
	}
}

// storeKeyColumnar builds the columnar key the way Columnar does.
func storeKeyColumnar(p Profile, seed uint64, n int64) storeKey {
	k := storeKey{prof: p, seed: seed, n: n, columnar: true}
	k.prof.Data = DataProfile{}
	return k
}
