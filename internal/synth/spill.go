package synth

import (
	"fmt"
	"sync"

	"ibsim/internal/trace"
)

// Columnar spill bodies: the generation → run-compaction → PutRun stage of
// writeColumnar, in a sequential and a parallel flavor. Both emit the exact
// PutRun sequence trace.Compact over the full stream would produce, so the
// resulting files are byte-identical however the work was split (pinned by
// the differential/parallel-spill check in internal/check).
//
// The parallel flavor is a scout/worker/merger pipeline keyed on the
// checkpoint index:
//
//   - the scout walks the trace one chunk (a whole number of checkpoint
//     intervals) at a time, snapshotting the generator at each boundary —
//     O(1) per chunk once the index is warm, a plain generation pass when
//     cold — and dispatches (range, snapshot) jobs;
//   - workers restore the boundary snapshot into their own generator,
//     regenerate just their chunk, and compact it locally;
//   - the merger consumes chunks strictly in order, joins runs that span
//     chunk boundaries under exactly the Compactor extension condition, and
//     feeds the writer.
//
// In-flight chunks are bounded (workers+2), so peak memory stays O(workers ·
// chunk) and the flat-RSS property of the spill tier is preserved. Note: on
// a single-core host the pipeline cannot beat sequential wall-clock — the
// win is real only with parallel hardware, the same honest caveat `make
// cluster` prints.

// minSpillChunkInstrs is the smallest chunk the parallel spill dispatches;
// chunks are rounded up to a whole number of checkpoint intervals at least
// this large, so per-chunk channel overhead stays negligible.
const minSpillChunkInstrs int64 = 1 << 14

// maxSpillWorkers caps the parallel spill's fan-out.
const maxSpillWorkers = 32

// SetSpillWorkers sets how many goroutines future columnar spills use to
// generate and compact chunks (0 or 1 = sequential). The output file is
// byte-identical regardless. More workers than cores cannot help: on a
// single-core host the parallel path is pure overhead.
func (s *Store) SetSpillWorkers(workers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if workers > maxSpillWorkers {
		workers = maxSpillWorkers
	}
	s.spillWorkers = workers
}

// spillChunk returns the parallel spill's chunk size for g: the smallest
// multiple of the checkpoint interval ≥ minSpillChunkInstrs, so chunk
// boundaries land exactly on recorded checkpoints.
func spillChunk(g *Generator) int64 {
	every := DefaultCheckpointEvery
	if ix := g.Checkpoints(); ix != nil {
		every = ix.Every()
	}
	chunk := every
	for chunk < minSpillChunkInstrs {
		chunk += every
	}
	return chunk
}

// spillSequential streams g through an inline run compaction into w,
// resuming from the longest memoized runs-only prefix. The extension
// condition mirrors trace.Compactor.Add exactly; only the open run is held.
func (s *Store) spillSequential(g *Generator, prof Profile, seed uint64, n int64, w *trace.ColumnarWriter, cw *countWriter) error {
	var cur trace.Run
	var next uint64
	if prefix, start := s.runsPrefix(prof, seed, n); start > 0 {
		for _, r := range prefix[:len(prefix)-1] {
			if err := w.PutRun(r); err != nil {
				return err
			}
		}
		cur = prefix[len(prefix)-1]
		next = cur.End()
		if err := g.SeekTo(start); err != nil {
			return err
		}
	}
	for g.Instructions() < n {
		r, _ := g.Next()
		if cur.Len > 0 && r.Addr == next && r.Domain == cur.Domain && next != 0 {
			cur.Len++
			next += trace.InstrBytes
		} else {
			if cur.Len > 0 {
				if err := w.PutRun(cur); err != nil {
					return err
				}
			}
			cur = trace.Run{Start: r.Addr, Len: 1, Domain: r.Domain}
			next = r.Addr + trace.InstrBytes
		}
		if g.Instructions()&budgetCheckMask == 0 && s.hardBudget > 0 && cw.n > s.hardBudget {
			return fmt.Errorf("%w: columnar encoding of %d instructions already exceeds %d bytes on disk",
				ErrOverBudget, n, s.hardBudget)
		}
	}
	if cur.Len > 0 {
		return w.PutRun(cur)
	}
	return nil
}

// spillResult is one generated, locally-compacted chunk.
type spillResult struct {
	runs []trace.Run
	err  error
}

// spillJob is one chunk assignment: generate instructions [start, end) from
// the boundary snapshot and deliver the local compaction on out (1-buffered,
// so workers never block on a merger that has moved on).
type spillJob struct {
	start, end int64
	snap       Checkpoint
	out        chan spillResult
}

// spillParallel is the scout/worker/merger pipeline described in the file
// comment. g (the scout's generator) must be store-attached; n is the total
// instruction count.
func (s *Store) spillParallel(g *Generator, n int64, workers int, w *trace.ColumnarWriter, cw *countWriter) error {
	chunk := spillChunk(g)
	inflight := workers + 2
	jobs := make(chan *spillJob, inflight)
	order := make(chan *spillJob, inflight)
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	stop := func() { cancelOnce.Do(func() { close(cancel) }) }

	// Scout.
	go func() {
		defer close(order)
		defer close(jobs)
		for b := int64(0); b < n; b += chunk {
			end := b + chunk
			if end > n {
				end = n
			}
			job := &spillJob{start: b, end: end, out: make(chan spillResult, 1)}
			if err := g.SeekTo(b); err != nil {
				job.out <- spillResult{err: err}
				select {
				case order <- job:
				case <-cancel:
				}
				return
			}
			job.snap = g.Snapshot()
			if ix := g.Checkpoints(); ix != nil && b > 0 {
				// Boundary snapshots double as index checkpoints: the next
				// spill's scout restores instead of regenerating.
				ix.Add(job.snap)
			}
			select {
			case order <- job:
			case <-cancel:
				return
			}
			select {
			case jobs <- job:
			case <-cancel:
				return
			}
		}
	}()

	// Workers.
	var wg sync.WaitGroup
	prof, seed := g.prof, g.seed
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wgen, err := NewGenerator(prof, seed)
			for job := range jobs {
				if err != nil {
					job.out <- spillResult{err: err}
					continue
				}
				job.out <- generateChunk(wgen, job)
			}
		}()
	}

	// Merger: strictly in chunk order, joining boundary-spanning runs under
	// the Compactor extension condition.
	var pending trace.Run
	var firstErr error
	for job := range order {
		if firstErr != nil {
			continue // drain so the scout and workers can exit
		}
		res := <-job.out
		if res.err != nil {
			firstErr = res.err
			stop()
			continue
		}
		runs := res.runs
		if pending.Len > 0 && len(runs) > 0 && pending.End() != 0 &&
			runs[0].Start == pending.End() && runs[0].Domain == pending.Domain {
			runs[0].Start = pending.Start
			runs[0].Len += pending.Len
			pending = trace.Run{}
		}
		if pending.Len > 0 {
			if err := w.PutRun(pending); err != nil {
				firstErr = err
				stop()
				continue
			}
			pending = trace.Run{}
		}
		if len(runs) > 0 {
			for _, r := range runs[:len(runs)-1] {
				if err := w.PutRun(r); err != nil {
					firstErr = err
					break
				}
			}
			if firstErr != nil {
				stop()
				continue
			}
			pending = runs[len(runs)-1]
		}
		if s.hardBudget > 0 && cw.n > s.hardBudget {
			firstErr = fmt.Errorf("%w: columnar encoding of %d instructions already exceeds %d bytes on disk",
				ErrOverBudget, n, s.hardBudget)
			stop()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if pending.Len > 0 {
		return w.PutRun(pending)
	}
	return nil
}

// generateChunk restores the boundary snapshot into wgen and generates and
// compacts the job's instruction range.
func generateChunk(wgen *Generator, job *spillJob) spillResult {
	if err := wgen.Restore(job.snap); err != nil {
		return spillResult{err: err}
	}
	var c trace.Compactor
	for wgen.Instructions() < job.end {
		r, _ := wgen.Next()
		c.Add(r)
	}
	return spillResult{runs: c.Finish()}
}
