package synth

import (
	"fmt"
	"sort"

	"ibsim/internal/trace"
)

// This file defines the shipped workload models: the eight IBS benchmarks
// under Mach 3.0 and Ultrix 3.1, and SPEC-like workloads (the three
// size-representative SPEC92 integer programs Gee et al. characterize, plus
// whole-suite aggregates for Table 1).
//
// Every parameter below is calibration, not physics: the knobs were tuned so
// that simulated miss ratios reproduce the values the paper prints (Table 4
// per-workload MPI in an 8-KB direct-mapped, 32-byte-line I-cache; Figure 1
// suite curves; Table 1/3 CPI components). See EXPERIMENTS.md for the
// paper-vs-measured record.

// ibsSpec holds the Table 4 measurements an IBS workload is calibrated to.
type ibsSpec struct {
	name string
	desc string
	// Mach 3.0 component shares (Table 4), in percent.
	user, kernel, bsd, x float64
	// mpi is the Table 4 target (misses per 100 instructions, 8-KB DM).
	mpi float64
	// footprint scale: relative code-size factor used to differentiate
	// workloads (verilog and groff are the bloated ones).
	size float64
	// loopy: how loop-dominated the user code is (0..1): mpeg/jpeg decode
	// inner loops are hot; gcc/groff walk large code sparsely.
	loopy float64
	seed  uint64
}

var ibsSpecs = []ibsSpec{
	{"mpeg_play", "mpeg_play 2.0 (Berkeley): decodes and displays 85 video frames", 40, 23, 30, 7, 4.28, 0.62, 0.72, 101},
	{"jpeg_play", "xloadimage 3.0: decodes and displays two JPEG images", 67, 13, 17, 3, 2.39, 0.15, 1.00, 102},
	{"gs", "Ghostscript 2.4.1: renders a PostScript page into an X window", 47, 34, 10, 9, 5.15, 1.40, 0.26, 103},
	{"verilog", "Verilog-XL 1.6b: logic simulation of an experimental GaAs microprocessor", 75, 14, 11, 0, 5.28, 1.60, 0.32, 104},
	{"gcc", "GNU C compiler 2.6 compiling preprocessed source", 75, 17, 8, 0, 4.69, 1.55, 0.41, 105},
	{"sdet", "SPEC SDM multiprocess system benchmark (mkdir/mv/rm/find/make/...)", 10, 70, 20, 0, 6.05, 1.30, 0.28, 106},
	{"nroff", "Ultrix 3.1 nroff text formatter (C)", 80, 5, 15, 0, 3.99, 0.90, 0.46, 107},
	{"groff", "GNU groff 1.09: nroff rewritten in C++, same input", 82, 13, 5, 0, 6.51, 3.00, 0.08, 108},
}

// ibsMach builds the Mach 3.0 profile for one IBS workload.
func ibsMach(s ibsSpec) Profile {
	p := Profile{
		Name:        s.name,
		Description: s.desc,
		OS:          Microkernel,
		Seed:        s.seed,
		Data:        DataProfile{LoadFrac: 0.20, StoreFrac: 0.10, StreamFrac: 0.15, HeapPages: 96},
	}
	// User image: the application plus linked libraries plus the Mach BSD
	// API-emulation library (the microkernel tax on user-level footprint).
	userProcs := int(200 * s.size)
	p.Domains[trace.User] = DomainProfile{
		TimeShare:     s.user / 100,
		Procs:         userProcs,
		MeanProcBytes: 448,
		Theta:         1.52,
		LoopProb:      0.30 + 0.42*s.loopy,
		MeanLoopIter:  2 + 7*s.loopy,
		MeanLoopFrac:  0.35,
		// Sparse control flow (virtual dispatch, deep call chains) rises as
		// loop residency falls — the C/C++ contrast Calder et al. quantify.
		CallProb:      0.015 + 0.020*(1-s.loopy)*(1-s.loopy),
		SkipProb:      0.08 + 0.05*(1-s.loopy)*(1-s.loopy),
		JumpProb:      0.022,
		MeanResidency: 2500,
	}
	if s.kernel > 0 {
		p.Domains[trace.Kernel] = DomainProfile{
			TimeShare:     s.kernel / 100,
			Procs:         100,
			MeanProcBytes: 416,
			Theta:         1.40 + 0.30*s.loopy,
			LoopProb:      0.28,
			MeanLoopIter:  3,
			MeanLoopFrac:  0.30,
			CallProb:      0.02,
			SkipProb:      0.10,
			JumpProb:      0.025,
			MeanResidency: 500,
		}
	}
	if s.bsd > 0 {
		p.Domains[trace.BSDServer] = DomainProfile{
			TimeShare:     s.bsd / 100,
			Procs:         125,
			MeanProcBytes: 448,
			Theta:         1.42 + 0.30*s.loopy,
			LoopProb:      0.28 + 0.22*s.loopy,
			MeanLoopIter:  3 + 4*s.loopy,
			MeanLoopFrac:  0.30,
			CallProb:      0.02,
			SkipProb:      0.10,
			JumpProb:      0.025,
			MeanResidency: 700,
		}
	}
	if s.x > 0 {
		p.Domains[trace.XServer] = DomainProfile{
			TimeShare:     s.x / 100,
			Procs:         135,
			MeanProcBytes: 480,
			Theta:         1.46 + 0.30*s.loopy,
			LoopProb:      0.36 + 0.22*s.loopy,
			MeanLoopIter:  4 + 5*s.loopy,
			MeanLoopFrac:  0.30,
			CallProb:      0.015,
			SkipProb:      0.09,
			JumpProb:      0.020,
			MeanResidency: 900,
		}
	}
	return p
}

// ibsUltrix builds the Ultrix 3.1 (monolithic) profile for one IBS workload:
// the BSD server's functionality folds into the kernel, the user task loses
// the emulation library (smaller image), and OS time shrinks (monolithic
// paths are shorter — the paper measures 24% OS time under Ultrix vs 38%
// under Mach for the suite).
func ibsUltrix(s ibsSpec) Profile {
	p := Profile{
		Name:        s.name,
		Description: s.desc + " [Ultrix 3.1]",
		OS:          Monolithic,
		Seed:        s.seed + 1000,
		Data:        DataProfile{LoadFrac: 0.20, StoreFrac: 0.10, StreamFrac: 0.15, HeapPages: 96},
	}
	osShare := 0.60 * (s.kernel + s.bsd) / 100 // monolithic path-length discount
	xShare := s.x / 100
	userShare := 1 - osShare - xShare
	userProcs := int(180 * s.size) // no emulation library
	p.Domains[trace.User] = DomainProfile{
		TimeShare:     userShare,
		Procs:         userProcs,
		MeanProcBytes: 448,
		Theta:         1.60,
		LoopProb:      0.30 + 0.42*s.loopy,
		MeanLoopIter:  2 + 7*s.loopy,
		MeanLoopFrac:  0.35,
		CallProb:      0.015 + 0.020*(1-s.loopy)*(1-s.loopy),
		SkipProb:      0.08 + 0.05*(1-s.loopy)*(1-s.loopy),
		JumpProb:      0.022,
		MeanResidency: 3200,
	}
	p.Domains[trace.Kernel] = DomainProfile{
		TimeShare:     osShare,
		Procs:         200, // monolithic kernel: kernel + file system + networking
		MeanProcBytes: 432,
		Theta:         1.66, // tighter: no IPC fan-out
		LoopProb:      0.32,
		MeanLoopIter:  4,
		MeanLoopFrac:  0.30,
		CallProb:      0.02,
		SkipProb:      0.10,
		JumpProb:      0.025,
		MeanResidency: 800,
	}
	if xShare > 0 {
		p.Domains[trace.XServer] = DomainProfile{
			TimeShare:     xShare,
			Procs:         160,
			MeanProcBytes: 480,
			Theta:         1.38,
			LoopProb:      0.40,
			MeanLoopIter:  6,
			MeanLoopFrac:  0.30,
			CallProb:      0.015,
			SkipProb:      0.09,
			JumpProb:      0.020,
			MeanResidency: 900,
		}
	}
	return p
}

// specSpec parameterizes a SPEC-like single-task workload.
type specSpec struct {
	name  string
	desc  string
	procs int
	theta float64
	loopy float64
	// data behavior
	load, store, stream float64
	seed                uint64
}

func specProfile(s specSpec) Profile {
	p := Profile{
		Name:        s.name,
		Description: s.desc,
		OS:          Monolithic,
		Seed:        s.seed,
		Data:        DataProfile{LoadFrac: s.load, StoreFrac: s.store, StreamFrac: s.stream, HeapPages: 48},
	}
	p.Domains[trace.User] = DomainProfile{
		TimeShare:     0.975,
		Procs:         s.procs,
		MeanProcBytes: 384,
		Theta:         s.theta,
		LoopProb:      0.50 + 0.45*s.loopy,
		MeanLoopIter:  6 + 20*s.loopy,
		MeanLoopFrac:  0.40,
		CallProb:      0.01,
		SkipProb:      0.06,
		JumpProb:      0.008,
		MeanResidency: 20000,
	}
	p.Domains[trace.Kernel] = DomainProfile{
		TimeShare:     0.025,
		Procs:         100,
		MeanProcBytes: 416,
		Theta:         1.8,
		LoopProb:      0.25,
		MeanLoopIter:  3,
		MeanLoopFrac:  0.25,
		CallProb:      0.02,
		SkipProb:      0.13,
		JumpProb:      0.020,
		MeanResidency: 600,
	}
	return p
}

// Registry returns every shipped workload profile, keyed by name. IBS
// workloads appear twice: "<name>" (Mach 3.0) and "<name>/ultrix".
func Registry() map[string]Profile {
	r := make(map[string]Profile)
	for _, s := range ibsSpecs {
		r[s.name] = ibsMach(s)
		r[s.name+"/ultrix"] = ibsUltrix(s)
	}
	for _, s := range specSpecs {
		r[s.name] = specProfile(s)
	}
	return r
}

// Lookup returns the named profile.
func Lookup(name string) (Profile, error) {
	r := Registry()
	p, ok := r[name]
	if !ok {
		names := make([]string, 0, len(r))
		for n := range r {
			names = append(names, n)
		}
		sort.Strings(names)
		return Profile{}, fmt.Errorf("synth: unknown workload %q (have %v)", name, names)
	}
	return p, nil
}

// Names returns all registered workload names, sorted.
func Names() []string {
	r := Registry()
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var specSpecs = []specSpec{
	// Gee et al. characterize eqntott as small, espresso as medium, and gcc
	// as large with respect to I-cache behavior; these three span SPEC92.
	{"eqntott", "SPEC92 eqntott: boolean equation to truth table (small I-footprint)",
		45, 2.6, 0.95, 0.22, 0.06, 0.05, 201},
	{"espresso", "SPEC92 espresso: PLA minimization (medium I-footprint)",
		115, 1.52, 0.62, 0.20, 0.08, 0.05, 202},
	{"spec_gcc", "SPEC92 gcc 1.35: the largest SPEC92 integer I-footprint",
		780, 1.30, 0.30, 0.20, 0.10, 0.05, 203},
	// Whole-suite aggregates for Table 1. The int92 suite is *less*
	// demanding than int89 (the paper: SPEC "evolved to be even less
	// demanding of instruction caches with their second release").
	{"specint89", "SPECint89 suite aggregate", 200, 1.72, 0.60, 0.20, 0.10, 0.05, 211},
	{"specfp89", "SPECfp89 suite aggregate (streaming data)", 160, 1.85, 0.75, 0.28, 0.10, 0.35, 212},
	{"specint92", "SPECint92 suite aggregate", 170, 1.95, 0.6, 0.20, 0.10, 0.05, 213},
	{"specfp92", "SPECfp92 suite aggregate (streaming data)", 150, 1.92, 0.75, 0.26, 0.10, 0.26, 214},
}

// IBSMach returns the eight IBS workload profiles under Mach 3.0, in the
// paper's Table 4 order.
func IBSMach() []Profile {
	out := make([]Profile, len(ibsSpecs))
	for i, s := range ibsSpecs {
		out[i] = ibsMach(s)
	}
	return out
}

// IBSUltrix returns the eight IBS workload profiles under Ultrix 3.1.
func IBSUltrix() []Profile {
	out := make([]Profile, len(ibsSpecs))
	for i, s := range ibsSpecs {
		out[i] = ibsUltrix(s)
	}
	return out
}

// SPEC92 returns the three size-representative SPEC92 integer workloads
// (eqntott, espresso, gcc).
func SPEC92() []Profile {
	return []Profile{
		specProfile(specSpecs[0]),
		specProfile(specSpecs[1]),
		specProfile(specSpecs[2]),
	}
}

// SPECSuites returns the four Table 1 suite aggregates, in table order:
// SPECint89, SPECfp89, SPECint92, SPECfp92.
func SPECSuites() []Profile {
	return []Profile{
		specProfile(specSpecs[3]),
		specProfile(specSpecs[4]),
		specProfile(specSpecs[5]),
		specProfile(specSpecs[6]),
	}
}

// Table4Components returns the paper's Table 4 execution-time shares for the
// named IBS workload under Mach (fractions summing to 1), for tests and
// reporting.
func Table4Components(name string) (user, kernel, bsd, x float64, err error) {
	for _, s := range ibsSpecs {
		if s.name == name {
			return s.user / 100, s.kernel / 100, s.bsd / 100, s.x / 100, nil
		}
	}
	return 0, 0, 0, 0, fmt.Errorf("synth: no IBS workload %q", name)
}
