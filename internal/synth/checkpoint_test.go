package synth

import (
	"bytes"
	"context"
	"os"
	"sync"
	"testing"

	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

// collectRefs reads k references from g.
func collectRefs(t *testing.T, g *Generator, k int) []trace.Ref {
	t.Helper()
	out := make([]trace.Ref, k)
	for i := range out {
		out[i], _ = g.Next()
	}
	return out
}

// TestSnapshotRestoreBitIdentical is the core property: restoring a snapshot
// into a fresh generator (same profile, seed) continues the stream
// bit-identically to the uninterrupted original — including mid-instruction
// pending data references, across randomized workloads, seeds and snapshot
// points.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	rng := xrand.New(0xC0FFEE)
	names := Names()
	for trial := 0; trial < 12; trial++ {
		name := names[rng.Intn(len(names))]
		prof, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		seed := rng.Uint64() | 1
		at := 100 + rng.Intn(20_000)
		tail := 1 + rng.Intn(5000)

		orig := MustNewGenerator(prof, seed)
		collectRefs(t, orig, at)
		snap := orig.Snapshot()
		want := collectRefs(t, orig, tail)

		fresh := MustNewGenerator(prof, seed)
		if err := fresh.Restore(snap); err != nil {
			t.Fatalf("%s seed %#x: Restore: %v", name, seed, err)
		}
		got := collectRefs(t, fresh, tail)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s seed %#x snapshot@%d: ref %d = %+v, want %+v", name, seed, at, i, got[i], want[i])
			}
		}
		if fresh.WalkStats() != orig.WalkStats() {
			t.Fatalf("%s seed %#x: walk stats diverged: %+v vs %+v", name, seed, fresh.WalkStats(), orig.WalkStats())
		}
	}
}

// TestSeekToEqualsGenerateAndDiscard: SeekTo(i) lands exactly where reading
// and discarding everything before instruction i would, for random i in both
// directions, with and without a checkpoint index.
func TestSeekToEqualsGenerateAndDiscard(t *testing.T) {
	prof, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	const n = 60_000
	rng := xrand.New(42)
	for _, withIndex := range []bool{false, true} {
		g := MustNewGenerator(prof, 7)
		if withIndex {
			g.SetCheckpoints(NewCheckpointIndex(minCheckpointEvery))
			collectRefs(t, g, 3*n/2) // warm the index
		}
		for trial := 0; trial < 8; trial++ {
			i := int64(rng.Intn(n))
			if err := g.SeekTo(i); err != nil {
				t.Fatal(err)
			}
			got := collectRefs(t, g, 64)

			ref := MustNewGenerator(prof, 7)
			for ref.Instructions() < i || (ref.Instructions() == i && ref.npend > 0) {
				ref.Next()
			}
			want := collectRefs(t, ref, 64)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("withIndex=%v SeekTo(%d): ref %d = %+v, want %+v", withIndex, i, k, got[k], want[k])
				}
			}
		}
	}
}

// TestRestoreRejectsCorruptAndMismatched: every flipped bit in a serialized
// checkpoint must be caught by the CRC, and a checkpoint from a different
// seed must be rejected, leaving the generator untouched.
func TestRestoreRejectsCorruptAndMismatched(t *testing.T) {
	prof, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	g := MustNewGenerator(prof, 3)
	collectRefs(t, g, 5000)
	snap := g.Snapshot()

	rng := xrand.New(9)
	for trial := 0; trial < 32; trial++ {
		bad := Checkpoint{Instr: snap.Instr, Data: bytes.Clone(snap.Data)}
		bit := rng.Intn(len(bad.Data) * 8)
		bad.Data[bit/8] ^= 1 << (bit % 8)

		victim := MustNewGenerator(prof, 3)
		collectRefs(t, victim, 100)
		before := victim.Snapshot()
		if err := victim.Restore(bad); err == nil {
			t.Fatalf("Restore accepted checkpoint with bit %d flipped", bit)
		}
		if after := victim.Snapshot(); !bytes.Equal(after.Data, before.Data) {
			t.Fatalf("failed Restore mutated the generator (bit %d)", bit)
		}
	}

	other := MustNewGenerator(prof, 4)
	if err := other.Restore(snap); err == nil {
		t.Fatal("Restore accepted a checkpoint from a different seed")
	}
}

// TestSeekToSurvivesCorruptCheckpoint: a bit-flipped checkpoint in the index
// must be detected (CRC), dropped, and seeking must transparently fall back —
// ultimately to regeneration from zero — still yielding the exact stream.
func TestSeekToSurvivesCorruptCheckpoint(t *testing.T) {
	prof, err := Lookup("verilog")
	if err != nil {
		t.Fatal(err)
	}
	ix := NewCheckpointIndex(minCheckpointEvery)
	g := MustNewGenerator(prof, 11)
	g.SetCheckpoints(ix)
	collectRefs(t, g, 10_000)
	if ix.Len() == 0 {
		t.Fatal("no checkpoints recorded")
	}

	// Corrupt every checkpoint in the index.
	ix.mu.Lock()
	for i := range ix.points {
		ix.points[i].Data[10] ^= 0xFF
	}
	npoints := len(ix.points)
	ix.mu.Unlock()

	// Seek backward so the nearest-checkpoint restore path must run (a
	// forward seek from the current position would never touch the index).
	const target = 5000
	if err := g.SeekTo(target); err != nil {
		t.Fatalf("SeekTo over corrupt index: %v", err)
	}
	got := collectRefs(t, g, 32)

	ref := MustNewGenerator(prof, 11)
	if err := ref.SeekTo(target); err != nil {
		t.Fatal(err)
	}
	want := collectRefs(t, ref, 32)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ref %d after corrupt-index seek = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := ix.Stats()
	if st.Corrupt == 0 {
		t.Fatal("corrupt checkpoints were not counted")
	}
	_ = npoints
	// The fallback regeneration re-records the intervals it walks, healing
	// the index: a second backward seek must now restore cleanly.
	before := st.Corrupt
	if err := g.SeekTo(target); err != nil {
		t.Fatal(err)
	}
	healed := collectRefs(t, g, 32)
	for i := range want {
		if healed[i] != want[i] {
			t.Fatalf("ref %d after healed-index seek = %+v, want %+v", i, healed[i], want[i])
		}
	}
	if after := ix.Stats().Corrupt; after != before {
		t.Fatalf("healed index still had corrupt checkpoints: %d -> %d", before, after)
	}
}

// TestSeekSourceMatchesInstrSource: the seekable streaming source yields the
// same stream as InstrSource, honors the length limit, and seeks correctly.
func TestSeekSourceMatchesInstrSource(t *testing.T) {
	prof, err := Lookup("sdet")
	if err != nil {
		t.Fatal(err)
	}
	const n = 20_000
	ss, err := NewSeekSource(prof, 5, n, NewCheckpointIndex(minCheckpointEvery))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := InstrSource(prof, 5, n)
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	for {
		want, okW := plain.Next()
		got, okG := ss.Next()
		if okW != okG {
			t.Fatalf("at %d: ok %v vs %v", count, okG, okW)
		}
		if !okW {
			break
		}
		if got != want {
			t.Fatalf("ref %d = %+v, want %+v", count, got, want)
		}
		count++
	}
	if count != n {
		t.Fatalf("stream length %d, want %d", count, n)
	}
	// Seek back and re-read a slice of the middle.
	if err := ss.SeekTo(n / 2); err != nil {
		t.Fatal(err)
	}
	if ss.Pos() != n/2 {
		t.Fatalf("Pos = %d, want %d", ss.Pos(), n/2)
	}
	r, ok := ss.Next()
	if !ok {
		t.Fatal("Next after SeekTo returned false")
	}
	want, err := InstrTrace(prof, 5, n/2+1)
	if err != nil {
		t.Fatal(err)
	}
	if r != want[n/2] {
		t.Fatalf("seeked ref = %+v, want %+v", r, want[n/2])
	}
	// Past-the-end seek clamps to EOF.
	if err := ss.SeekTo(2 * n); err != nil {
		t.Fatal(err)
	}
	if _, ok := ss.Next(); ok {
		t.Fatal("Next past the end returned a ref")
	}
}

// TestStoreRunsOnlyPrefixResume: growing a runs-only entry from a memoized
// shorter one must equal compacting from scratch.
func TestStoreRunsOnlyPrefixResume(t *testing.T) {
	prof, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	warm := NewStore(DefaultIdleBudget)
	warm.SetCheckpointEvery(minCheckpointEvery)
	short, rel1, err := warm.RunsOnly(ctx, prof, 0, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) == 0 {
		t.Fatal("no runs")
	}
	rel1()
	resumed, rel2, err := warm.RunsOnly(ctx, prof, 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()

	cold := NewStore(DefaultIdleBudget)
	want, rel3, err := cold.RunsOnly(ctx, prof, 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	defer rel3()
	if len(resumed) != len(want) {
		t.Fatalf("resumed compaction has %d runs, scratch %d", len(resumed), len(want))
	}
	for i := range want {
		if resumed[i] != want[i] {
			t.Fatalf("run %d = %+v, want %+v", i, resumed[i], want[i])
		}
	}
}

// TestParallelSpillByteIdentical: the fan-out columnar spill must produce a
// byte-identical file to the sequential spill, for trace lengths that are
// and are not a whole number of chunks.
func TestParallelSpillByteIdentical(t *testing.T) {
	prof, err := Lookup("mpeg_play")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, n := range []int64{100_000, 100_001} {
		seq := NewStore(DefaultIdleBudget)
		seq.SetCheckpointEvery(minCheckpointEvery)
		cfS, relS, err := seq.Columnar(ctx, prof, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes, err := os.ReadFile(pathOf(t, seq, prof, 0, n))
		if err != nil {
			t.Fatal(err)
		}
		_ = cfS

		par := NewStore(DefaultIdleBudget)
		par.SetCheckpointEvery(minCheckpointEvery)
		par.SetSpillWorkers(4)
		cfP, relP, err := par.Columnar(ctx, prof, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := os.ReadFile(pathOf(t, par, prof, 0, n))
		if err != nil {
			t.Fatal(err)
		}
		_ = cfP
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("n=%d: parallel spill differs from sequential (%d vs %d bytes)", n, len(gotBytes), len(wantBytes))
		}
		relS()
		relP()
		seq.Purge()
		par.Purge()
	}
}

// pathOf digs a columnar entry's backing path out of the store (test-only).
func pathOf(t *testing.T, s *Store, prof Profile, seed uint64, n int64) string {
	t.Helper()
	key := storeKey{prof: prof, seed: seed, n: n, columnar: true}
	key.prof.Data = DataProfile{}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		t.Fatal("columnar entry not found")
	}
	return e.path
}

// TestParallelSpillWarmIndex: a second parallel spill over a warm checkpoint
// index (the scout restores instead of regenerating) must still be
// byte-identical.
func TestParallelSpillWarmIndex(t *testing.T) {
	prof, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 80_000
	s := NewStore(DefaultIdleBudget)
	s.SetCheckpointEvery(minCheckpointEvery)
	s.SetSpillWorkers(3)
	_, rel, err := s.Columnar(ctx, prof, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(pathOf(t, s, prof, 0, n))
	if err != nil {
		t.Fatal(err)
	}
	rel()
	s.Purge() // drops the file; the checkpoint index survives while... Purge drops idle entries too
	// Purge also dropped the idle index, so re-warm it explicitly.
	ix, done := s.Checkpoints(prof, 0)
	ssrc, err := NewSeekSource(prof, 0, n, ix)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := ssrc.Next(); !ok {
			break
		}
	}
	if ix.Len() == 0 {
		t.Fatal("index not warmed")
	}
	_, rel2, err := s.Columnar(ctx, prof, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(pathOf(t, s, prof, 0, n))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("warm-index parallel spill differs from cold spill")
	}
	rel2()
	done()
	s.Purge()
}

// TestStoreSeekSourceConcurrent: many goroutines seeking and reading their
// own SeekSource over one shared store index must be race-free (run under
// -race) and each see the exact stream.
func TestStoreSeekSourceConcurrent(t *testing.T) {
	prof, err := Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	const n = 40_000
	want, err := InstrTrace(prof, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(DefaultIdleBudget)
	s.SetCheckpointEvery(minCheckpointEvery)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ss, done, err := s.SeekSource(prof, 0, n)
			if err != nil {
				errc <- err
				return
			}
			defer done()
			rng := xrand.New(uint64(k) + 1)
			for trial := 0; trial < 6; trial++ {
				i := int64(rng.Intn(n - 10))
				if err := ss.SeekTo(i); err != nil {
					errc <- err
					return
				}
				for j := int64(0); j < 10; j++ {
					r, ok := ss.Next()
					if !ok || r != want[i+j] {
						t.Errorf("goroutine %d: ref %d = %+v ok=%v, want %+v", k, i+j, r, ok, want[i+j])
						return
					}
				}
			}
		}(k)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
