package threec

import (
	"testing"
	"testing/quick"

	"ibsim/internal/cache"
	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

func srcOf(lineAddrs ...uint64) trace.Source {
	refs := make([]trace.Ref, len(lineAddrs))
	for i, a := range lineAddrs {
		refs[i] = trace.Ref{Addr: a * 32, Kind: trace.IFetch}
	}
	return trace.NewSliceSource(refs)
}

func TestStackDistBasics(t *testing.T) {
	sd := newStackDist()
	if d, first := sd.Touch(10); !first || d != 0 {
		t.Fatalf("first touch: d=%d first=%v", d, first)
	}
	if d, first := sd.Touch(10); first || d != 1 {
		t.Fatalf("immediate re-touch: d=%d first=%v", d, first)
	}
	sd.Touch(20)
	sd.Touch(30)
	// 10 was touched, then 20, 30: distance of 10 is 3 (10, 20, 30 distinct).
	if d, _ := sd.Touch(10); d != 3 {
		t.Fatalf("distance = %d, want 3", d)
	}
	// Re-touching 20: since its last touch we saw 30, 10 → distance 3.
	if d, _ := sd.Touch(20); d != 3 {
		t.Fatalf("distance = %d, want 3", d)
	}
}

func TestStackDistIgnoresDuplicates(t *testing.T) {
	sd := newStackDist()
	sd.Touch(1)
	sd.Touch(2)
	sd.Touch(2)
	sd.Touch(2)
	// Distinct lines since last touch of 1: {1, 2} → 2 despite three touches of 2.
	if d, _ := sd.Touch(1); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
}

func TestClassifyExactCompulsoryOnly(t *testing.T) {
	// Sequential sweep that fits in cache: all misses compulsory.
	b, err := ClassifyExact(cache.Config{Size: 1024, LineSize: 32, Assoc: 1},
		srcOf(0, 1, 2, 3, 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 4 || b.Compulsory != 4 || b.Capacity != 0 || b.Conflict != 0 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Accesses != 8 {
		t.Fatalf("accesses = %d", b.Accesses)
	}
}

func TestClassifyExactCapacity(t *testing.T) {
	// Fully-associative 4-line cache; cyclic sweep over 5 lines thrashes:
	// every miss after the first pass has stack distance 5 > 4 → capacity.
	var seq []uint64
	for pass := 0; pass < 3; pass++ {
		for l := uint64(0); l < 5; l++ {
			seq = append(seq, l)
		}
	}
	b, err := ClassifyExact(cache.Config{Size: 4 * 32, LineSize: 32, Assoc: 0}, srcOf(seq...))
	if err != nil {
		t.Fatal(err)
	}
	if b.Compulsory != 5 {
		t.Fatalf("compulsory = %d, want 5", b.Compulsory)
	}
	if b.Conflict != 0 {
		t.Fatalf("fully-assoc cache has %d conflict misses", b.Conflict)
	}
	if b.Capacity != b.Total-5 {
		t.Fatalf("capacity = %d, total = %d", b.Capacity, b.Total)
	}
	if b.Total != 15 { // LRU + cyclic over-capacity sweep: everything misses
		t.Fatalf("total = %d, want 15", b.Total)
	}
}

func TestClassifyExactConflict(t *testing.T) {
	// DM cache, 4 lines: lines 0 and 4 conflict (same set), working set of 2
	// fits easily → all non-first misses are conflicts.
	b, err := ClassifyExact(cache.Config{Size: 4 * 32, LineSize: 32, Assoc: 1},
		srcOf(0, 4, 0, 4, 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if b.Compulsory != 2 {
		t.Fatalf("compulsory = %d", b.Compulsory)
	}
	if b.Capacity != 0 {
		t.Fatalf("capacity = %d, want 0", b.Capacity)
	}
	if b.Conflict != 4 {
		t.Fatalf("conflict = %d, want 4", b.Conflict)
	}
}

func TestClassifyApproxMatchesIntuition(t *testing.T) {
	// Same conflict workload: the approximation should also call these
	// conflicts (8-way removes them entirely).
	src := srcOf(0, 4, 0, 4, 0, 4)
	b, err := ClassifyApprox(4*32, 32, src)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 6 {
		t.Fatalf("total = %d, want 6 (DM thrash)", b.Total)
	}
	if b.Conflict != 4 {
		t.Fatalf("conflict = %d, want 4", b.Conflict)
	}
	if b.Compulsory != 2 {
		t.Fatalf("compulsory = %d, want 2", b.Compulsory)
	}
}

func TestClassifyApproxTinyCache(t *testing.T) {
	// Cache with fewer than 8 lines: reference associativity degrades to
	// fully associative without error.
	b, err := ClassifyApprox(4*32, 32, srcOf(0, 1, 2, 3, 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 8-4 && b.Total != 8 { // DM: 0..3 map to distinct sets → 4 misses
		t.Logf("total = %d", b.Total)
	}
	if b.Compulsory != 4 {
		t.Fatalf("compulsory = %d", b.Compulsory)
	}
}

func TestBreakdownRatios(t *testing.T) {
	b := Breakdown{Accesses: 200, Compulsory: 2, Capacity: 6, Conflict: 4, Total: 12}
	if b.MPI() != 0.06 {
		t.Errorf("MPI = %v", b.MPI())
	}
	if b.CompulsoryMPI() != 0.01 || b.CapacityMPI() != 0.03 || b.ConflictMPI() != 0.02 {
		t.Errorf("component MPIs wrong: %v %v %v", b.CompulsoryMPI(), b.CapacityMPI(), b.ConflictMPI())
	}
	var empty Breakdown
	if empty.MPI() != 0 || empty.CompulsoryMPI() != 0 {
		t.Error("empty breakdown ratios non-zero")
	}
}

// Property: components always sum to the total, for both classifiers, on
// random reference strings.
func TestComponentsSumProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := xrand.New(seed)
		count := int(n%2000) + 10
		lines := make([]uint64, count)
		for i := range lines {
			lines[i] = uint64(rng.Intn(300))
		}
		exact, err := ClassifyExact(cache.Config{Size: 2048, LineSize: 32, Assoc: 1}, srcOf(lines...))
		if err != nil || exact.Compulsory+exact.Capacity+exact.Conflict != exact.Total {
			return false
		}
		approx, err := ClassifyApprox(2048, 32, srcOf(lines...))
		if err != nil || approx.Compulsory+approx.Capacity+approx.Conflict != approx.Total {
			return false
		}
		// Both classifiers agree on the total (it is the same DM cache).
		return exact.Total == approx.Total && exact.Compulsory == approx.Compulsory
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: stack distance equals the naive O(n²) recomputation.
func TestStackDistMatchesNaive(t *testing.T) {
	rng := xrand.New(77)
	var hist []uint64
	sd := newStackDist()
	for i := 0; i < 3000; i++ {
		line := uint64(rng.Intn(50))
		dist, first := sd.Touch(line)
		// Naive: scan history backward collecting distinct lines.
		wantFirst := true
		distinct := map[uint64]bool{}
		var wantDist int64
		for j := len(hist) - 1; j >= 0; j-- {
			if !distinct[hist[j]] {
				distinct[hist[j]] = true
				wantDist++
			}
			if hist[j] == line {
				wantFirst = false
				break
			}
		}
		if wantFirst {
			wantDist = 0
		}
		if first != wantFirst || (!first && dist != wantDist) {
			t.Fatalf("step %d line %d: got (%d,%v), want (%d,%v)", i, line, dist, first, wantDist, wantFirst)
		}
		hist = append(hist, line)
	}
}

func TestClassifyExactRejectsBadConfig(t *testing.T) {
	if _, err := ClassifyExact(cache.Config{Size: 7, LineSize: 32, Assoc: 1}, srcOf(0)); err == nil {
		t.Fatal("bad config accepted")
	}
}
