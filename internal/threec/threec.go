// Package threec decomposes cache misses into the Three-Cs categories —
// compulsory, capacity, and conflict (Hill's model, used by the paper's
// Figure 1).
//
// Two classifiers are provided:
//
//   - ClassifyApprox reproduces the paper's methodology exactly: "Capacity
//     misses were approximated by simulating an 8-way, set-associative cache
//     to remove most conflict misses. Conflict misses were found by
//     simulating a direct-mapped cache and counting the number of additional
//     misses compared to the 8-way set-associative simulation."
//   - ClassifyExact implements Mattson's stack algorithm: a miss whose LRU
//     stack distance exceeds the cache's line count is a capacity miss, a
//     first touch is compulsory, anything else that misses in the real cache
//     is a conflict miss. It is the ground truth the approximation is
//     validated against in our tests.
package threec

import (
	"ibsim/internal/cache"
	"ibsim/internal/trace"
)

// Breakdown reports a Three-Cs decomposition. Compulsory + Capacity +
// Conflict == Total (total misses of the direct-mapped / configured cache).
type Breakdown struct {
	Accesses   int64
	Compulsory int64
	Capacity   int64
	Conflict   int64
	Total      int64
}

// MPI returns total misses per instruction (per access).
func (b Breakdown) MPI() float64 {
	if b.Accesses == 0 {
		return 0
	}
	return float64(b.Total) / float64(b.Accesses)
}

// CompulsoryMPI returns compulsory misses per access.
func (b Breakdown) CompulsoryMPI() float64 { return ratio(b.Compulsory, b.Accesses) }

// CapacityMPI returns capacity misses per access.
func (b Breakdown) CapacityMPI() float64 { return ratio(b.Capacity, b.Accesses) }

// ConflictMPI returns conflict misses per access.
func (b Breakdown) ConflictMPI() float64 { return ratio(b.Conflict, b.Accesses) }

func ratio(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// ClassifyApprox runs the paper's two-simulation approximation for a cache of
// the given size and line size: the "total" cache is direct-mapped; the
// capacity reference is 8-way set-associative (or fully associative when the
// cache holds fewer than 8 lines). Compulsory misses are counted as unique
// lines touched.
func ClassifyApprox(size, lineSize int, src trace.Source) (Breakdown, error) {
	assocRef := 8
	if lines := size / lineSize; lines < 8 {
		assocRef = lines
	}
	dm := cache.MustNew(cache.Config{Size: size, LineSize: lineSize, Assoc: 1})
	sa := cache.MustNew(cache.Config{Size: size, LineSize: lineSize, Assoc: assocRef})
	seen := make(map[uint64]struct{})
	var b Breakdown
	lineShift := shiftFor(lineSize)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		b.Accesses++
		dm.Access(r.Addr)
		sa.Access(r.Addr)
		la := r.Addr >> lineShift
		if _, dup := seen[la]; !dup {
			seen[la] = struct{}{}
			b.Compulsory++
		}
	}
	if err := src.Err(); err != nil {
		return b, err
	}
	return FromApproxCounts(b.Accesses, b.Compulsory, dm.Stats().Misses, sa.Stats().Misses), nil
}

// ApproxAssocRef returns the set associativity of the paper's capacity
// reference cache for a geometry with the given line count: 8-way, or fully
// associative when the cache holds fewer than 8 lines.
func ApproxAssocRef(lines int) int {
	if lines < 8 {
		return lines
	}
	return 8
}

// FromApproxCounts assembles the paper's approximation Breakdown from
// already-simulated counts: total accesses, compulsory (first-touch) misses,
// the direct-mapped cache's misses, and the set-associative reference
// cache's misses. It applies the same clamping and re-balancing as
// ClassifyApprox, so a miss matrix computed by the single-pass sweep engine
// yields bit-identical Breakdowns to the two-simulation path.
func FromApproxCounts(accesses, compulsory, dmMiss, saMiss int64) Breakdown {
	b := Breakdown{Accesses: accesses, Compulsory: compulsory, Total: dmMiss}
	b.Conflict = dmMiss - saMiss
	if b.Conflict < 0 {
		// 8-way LRU can occasionally miss where DM hits; clamp as the paper
		// implicitly does (it reports only non-negative components).
		b.Conflict = 0
	}
	b.Capacity = saMiss - b.Compulsory
	if b.Capacity < 0 {
		b.Capacity = 0
	}
	// Re-balance so components sum to the total after clamping.
	if b.Compulsory+b.Capacity+b.Conflict != b.Total {
		b.Capacity = b.Total - b.Compulsory - b.Conflict
		if b.Capacity < 0 {
			b.Capacity = 0
			b.Conflict = b.Total - b.Compulsory
			if b.Conflict < 0 {
				b.Conflict = 0
			}
		}
	}
	return b
}

func shiftFor(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// ClassifyExact classifies every miss of the configured cache using LRU
// stack distances: first touch → compulsory; stack distance > lines →
// capacity; otherwise → conflict. The configured cache may have any
// associativity; a fully-associative LRU cache by definition has zero
// conflict misses under this classifier.
func ClassifyExact(cfg cache.Config, src trace.Source) (Breakdown, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return Breakdown{}, err
	}
	lines := int64(cfg.Lines())
	sd := newStackDist()
	var b Breakdown
	lineShift := shiftFor(cfg.LineSize)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		b.Accesses++
		la := r.Addr >> lineShift
		dist, first := sd.Touch(la)
		if c.Access(r.Addr) {
			continue
		}
		b.Total++
		switch {
		case first:
			b.Compulsory++
		case dist > lines:
			b.Capacity++
		default:
			b.Conflict++
		}
	}
	return b, src.Err()
}

// stackDist computes LRU stack distances with Mattson's algorithm: a Fenwick
// tree over access timestamps counts how many *distinct* lines have been
// touched since a line's previous access (each line keeps exactly one marker
// bit, at its most recent access time).
//
// Fenwick trees cannot be grown by appending zeros (new parent nodes would
// miss earlier updates), so a raw presence array is kept alongside and the
// tree is rebuilt whenever capacity doubles — amortized O(log n) per touch.
type stackDist struct {
	last map[uint64]int64 // line → timestamp of its most recent access
	mark []bool           // mark[t]: some line's most recent access was at t (1-based)
	bit  []int64          // Fenwick tree over mark
	now  int64
}

func newStackDist() *stackDist {
	return &stackDist{
		last: make(map[uint64]int64),
		mark: make([]bool, 64),
		bit:  make([]int64, 64),
	}
}

// Touch records an access to line, returning the LRU stack distance (the
// number of distinct lines accessed since the previous access to line,
// including line itself) and whether this was the line's first touch.
func (s *stackDist) Touch(line uint64) (dist int64, first bool) {
	s.now++
	if int(s.now) >= len(s.mark) {
		s.grow()
	}
	prev, seen := s.last[line]
	if seen {
		// Distinct lines touched strictly after prev, plus the line itself.
		dist = s.prefix(s.now-1) - s.prefix(prev) + 1
		s.set(prev, false)
	}
	s.set(s.now, true)
	s.last[line] = s.now
	return dist, !seen
}

// grow doubles capacity and rebuilds the Fenwick tree from mark.
func (s *stackDist) grow() {
	newCap := len(s.mark) * 2
	mark := make([]bool, newCap)
	copy(mark, s.mark)
	s.mark = mark
	s.bit = make([]int64, newCap)
	for i := 1; i < len(s.mark); i++ {
		if s.mark[i] {
			s.add(int64(i), 1)
		}
	}
}

// set flips the presence bit at timestamp t.
func (s *stackDist) set(t int64, on bool) {
	if s.mark[t] == on {
		return
	}
	s.mark[t] = on
	if on {
		s.add(t, 1)
	} else {
		s.add(t, -1)
	}
}

func (s *stackDist) add(i, delta int64) {
	for ; int(i) < len(s.bit); i += i & (-i) {
		s.bit[i] += delta
	}
}

func (s *stackDist) prefix(i int64) int64 {
	var sum int64
	for ; i > 0; i -= i & (-i) {
		sum += s.bit[i]
	}
	return sum
}
