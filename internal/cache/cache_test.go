package cache

import (
	"strings"
	"testing"
	"testing/quick"

	"ibsim/internal/xrand"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Size: 0, LineSize: 32, Assoc: 1},
		{Size: -8192, LineSize: 32, Assoc: 1},
		{Size: 8192, LineSize: 0, Assoc: 1},
		{Size: 8192, LineSize: 24, Assoc: 1},               // not a power of two
		{Size: 8200, LineSize: 32, Assoc: 1},               // size not multiple of line
		{Size: 8192, LineSize: 32, Assoc: 3},               // lines % assoc != 0... 256%3 != 0
		{Size: 8192, LineSize: 32, Assoc: 500},             // assoc > lines
		{Size: 8192, LineSize: 32, Assoc: -2},              // negative
		{Size: 8192, LineSize: 32, Assoc: 1, SubBlock: 24}, // not pow2
		{Size: 8192, LineSize: 32, Assoc: 1, SubBlock: 64}, // > line
		{Size: 8192, LineSize: 128, Assoc: 1, SubBlock: 1}, // 128 sub-blocks
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	good := []Config{
		{Size: 8192, LineSize: 32, Assoc: 1},
		{Size: 8192, LineSize: 32, Assoc: 8},
		{Size: 8192, LineSize: 32, Assoc: 0}, // fully associative
		{Size: 64 * 1024, LineSize: 4, Assoc: 1},
		{Size: 8192, LineSize: 64, Assoc: 2, SubBlock: 16},
	}
	for _, cfg := range good {
		if _, err := New(cfg); err != nil {
			t.Errorf("config %+v rejected: %v", cfg, err)
		}
	}
}

func TestConfigString(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want string
	}{
		{Config{Size: 8192, LineSize: 32, Assoc: 1}, "8KB/32B/direct-mapped"},
		{Config{Size: 65536, LineSize: 64, Assoc: 8}, "64KB/64B/8-way"},
		{Config{Size: 512, LineSize: 32, Assoc: 0}, "512B/32B/fully-assoc"},
	} {
		if got := tc.cfg.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := Config{Size: 8192, LineSize: 32, Assoc: 2}
	if cfg.Lines() != 256 {
		t.Errorf("Lines = %d", cfg.Lines())
	}
	if cfg.Sets() != 128 {
		t.Errorf("Sets = %d", cfg.Sets())
	}
	fa := Config{Size: 1024, LineSize: 32, Assoc: 0}
	if fa.Sets() != 1 {
		t.Errorf("fully-assoc Sets = %d", fa.Sets())
	}
}

func TestDirectMappedBasics(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 32, Assoc: 1}) // 4 sets
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(31) {
		t.Fatal("same-line access missed")
	}
	if c.Access(32) {
		t.Fatal("next line hit cold")
	}
	// 0 and 128 conflict in a 4-set DM cache with 32B lines.
	if c.Access(128) {
		t.Fatal("conflicting line hit cold")
	}
	if c.Access(0) {
		t.Fatal("line 0 survived conflict eviction")
	}
	st := c.Stats()
	if st.Accesses != 6 || st.Hits != 2 || st.Misses != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUOrder(t *testing.T) {
	// 2-way, 1 set: lines A=0, B=64, C=128 (line size 64, size 128).
	c := MustNew(Config{Size: 128, LineSize: 64, Assoc: 2})
	c.Access(0)   // A miss, fill
	c.Access(64)  // B miss, fill
	c.Access(0)   // A hit → B is LRU
	c.Access(128) // C miss → evicts B
	if !c.Access(0) {
		t.Fatal("A evicted, want B")
	}
	if c.Access(64) {
		t.Fatal("B survived, want evicted")
	}
}

func TestFIFOOrder(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 64, Assoc: 2, Replacement: FIFO})
	c.Access(0)   // A fill (oldest)
	c.Access(64)  // B fill
	c.Access(0)   // A hit — does NOT refresh FIFO stamp
	c.Access(128) // C fill → evicts A (oldest fill)
	if c.Contains(0) {
		t.Fatal("FIFO: A survived, want evicted")
	}
	if !c.Contains(64) {
		t.Fatal("FIFO: B evicted unexpectedly")
	}
}

func TestRandomReplacementIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		c := MustNew(Config{Size: 256, LineSize: 32, Assoc: 4, Replacement: Random, Seed: seed})
		rng := xrand.New(1)
		var out []bool
		for i := 0; i < 2000; i++ {
			out = append(out, c.Access(uint64(rng.Intn(64))*32))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	// 4 lines fully associative: any 4 distinct lines coexist.
	c := MustNew(Config{Size: 128, LineSize: 32, Assoc: 0})
	addrs := []uint64{0, 1 << 10, 2 << 10, 3 << 10}
	for _, a := range addrs {
		c.Access(a)
	}
	for _, a := range addrs {
		if !c.Access(a) {
			t.Fatalf("line %x missing from fully-assoc cache", a)
		}
	}
	// Fifth distinct line evicts LRU (addrs[0], refreshed above... LRU is addrs[0] after re-access loop: order is 0,1k,2k,3k all re-accessed, so LRU is 0).
	c.Access(4 << 10)
	if c.Access(0) {
		t.Fatal("LRU line survived in full fully-assoc cache")
	}
}

func TestLookupDoesNotFill(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 32, Assoc: 1})
	if c.Lookup(0) {
		t.Fatal("cold lookup hit")
	}
	if c.Contains(0) {
		t.Fatal("Lookup filled the line")
	}
	c.Fill(0)
	if !c.Lookup(0) {
		t.Fatal("filled line missed")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestContainsIsPure(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 64, Assoc: 2})
	c.Access(0)
	c.Access(64)
	before := c.Stats()
	// Contains must not update LRU: probe A, then evict — LRU must still be A.
	c.Contains(0)
	c.Contains(0)
	if got := c.Stats(); got != before {
		t.Fatalf("Contains changed stats: %+v vs %+v", got, before)
	}
	c.Access(128) // evicts LRU = line 0 despite the probes
	if c.Contains(0) {
		t.Fatal("Contains updated replacement state")
	}
}

func TestFillRefreshesResidentLine(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 64, Assoc: 2})
	c.Access(0)  // A
	c.Access(64) // B; LRU=A
	c.Fill(0)    // refresh A; LRU=B
	c.Access(128)
	if !c.Contains(0) {
		t.Fatal("refreshed line was evicted")
	}
	if c.Contains(64) {
		t.Fatal("LRU line survived")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 32, Assoc: 1})
	c.Access(0)
	if !c.Invalidate(0) {
		t.Fatal("Invalidate on resident line returned false")
	}
	if c.Invalidate(0) {
		t.Fatal("Invalidate on absent line returned true")
	}
	if c.Contains(0) {
		t.Fatal("line survived invalidation")
	}
	if c.Stats().Invalidations != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestReset(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 32, Assoc: 1})
	c.Access(0)
	c.Access(32)
	c.Reset()
	if c.ResidentLines() != 0 {
		t.Fatal("Reset left lines resident")
	}
	if c.Stats() != (Stats{}) {
		t.Fatal("Reset left stats")
	}
	if c.Access(0) {
		t.Fatal("post-Reset access hit")
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 32, Assoc: 1})
	c.Access(0)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats left counters")
	}
	if !c.Access(0) {
		t.Fatal("ResetStats cleared contents")
	}
}

func TestSubBlockAllocation(t *testing.T) {
	// 64-byte lines, 16-byte sub-blocks.
	c := MustNew(Config{Size: 128, LineSize: 64, Assoc: 2, SubBlock: 16})
	// Miss at offset 32 (sub-block 2): fills sub-blocks 2 and 3 only.
	if c.Access(32) {
		t.Fatal("cold access hit")
	}
	if !c.Access(48) {
		t.Fatal("subsequent sub-block not filled")
	}
	if c.Access(0) {
		t.Fatal("earlier sub-block unexpectedly valid")
	}
	st := c.Stats()
	if st.SubMisses != 1 {
		t.Fatalf("SubMisses = %d, want 1 (the offset-0 access)", st.SubMisses)
	}
	// After the sub-miss at 0, sub-blocks 0..3 are all valid.
	if !c.Access(16) {
		t.Fatal("sub-block 1 not filled by sub-miss refill")
	}
}

func TestSubBlockLookupCountsSubMiss(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 64, Assoc: 2, SubBlock: 16})
	c.Fill(48) // fills sub-block 3 only
	if c.Lookup(0) {
		t.Fatal("invalid sub-block hit")
	}
	if c.Stats().SubMisses != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	if !c.Lookup(48) {
		t.Fatal("valid sub-block missed")
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("empty MissRatio != 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRatio() != 0.3 {
		t.Fatalf("MissRatio = %v", s.MissRatio())
	}
}

func TestReplacementString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "random" {
		t.Fatal("Replacement names wrong")
	}
	if !strings.HasPrefix(Replacement(9).String(), "Replacement(") {
		t.Fatal("unknown Replacement name wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on bad config did not panic")
		}
	}()
	MustNew(Config{Size: 7, LineSize: 32, Assoc: 1})
}

// simulate counts misses for a reference string on a given geometry.
func simulate(cfg Config, addrs []uint64) int64 {
	c := MustNew(cfg)
	for _, a := range addrs {
		c.Access(a)
	}
	return c.Stats().Misses
}

// Property (LRU inclusion): doubling associativity at a fixed set count
// never increases misses under LRU. This is the classic stack property for
// set-refinement-preserving growth.
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		addrs := make([]uint64, len(raw))
		for i, v := range raw {
			addrs[i] = uint64(v) * 8
		}
		// 16 sets × 32B lines; assoc 1, 2, 4 with same set count.
		m1 := simulate(Config{Size: 16 * 32 * 1, LineSize: 32, Assoc: 1}, addrs)
		m2 := simulate(Config{Size: 16 * 32 * 2, LineSize: 32, Assoc: 2}, addrs)
		m4 := simulate(Config{Size: 16 * 32 * 4, LineSize: 32, Assoc: 4}, addrs)
		return m1 >= m2 && m2 >= m4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (fully-associative LRU capacity monotonicity): a larger
// fully-associative LRU cache never misses more.
func TestFullyAssocMonotonicityProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		addrs := make([]uint64, len(raw))
		for i, v := range raw {
			addrs[i] = uint64(v) * 4
		}
		small := simulate(Config{Size: 8 * 32, LineSize: 32, Assoc: 0}, addrs)
		big := simulate(Config{Size: 32 * 32, LineSize: 32, Assoc: 0}, addrs)
		return big <= small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hits + Misses == Accesses always.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(raw []uint16, assocSel uint8) bool {
		assoc := []int{1, 2, 4, 0}[assocSel%4]
		c := MustNew(Config{Size: 2048, LineSize: 32, Assoc: assoc})
		for _, v := range raw {
			c.Access(uint64(v))
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccessDM8KB(b *testing.B) {
	c := MustNew(Config{Size: 8192, LineSize: 32, Assoc: 1})
	rng := xrand.New(1)
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<16-1)])
	}
}

func BenchmarkAccess8Way64KB(b *testing.B) {
	c := MustNew(Config{Size: 65536, LineSize: 32, Assoc: 8})
	rng := xrand.New(1)
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<16-1)])
	}
}

func TestConfigAccessorAndFillEvict(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 32, Assoc: 1})
	if got := c.Config(); got.Assoc != 1 || got.Size != 128 {
		t.Fatalf("Config() = %+v", got)
	}
	// FillEvict on an empty set: no victim.
	if _, ok := c.FillEvict(0); ok {
		t.Fatal("eviction reported from empty set")
	}
	// Conflicting fill: the evicted address must round-trip exactly.
	evicted, ok := c.FillEvict(128) // same set as 0 in a 4-set cache
	if !ok {
		t.Fatal("no eviction reported for conflicting fill")
	}
	if evicted != 0 {
		t.Fatalf("evicted = %#x, want 0", evicted)
	}
	// Refreshing a resident line reports no eviction.
	if _, ok := c.FillEvict(128); ok {
		t.Fatal("refresh reported an eviction")
	}
	// ResidentLines reflects occupancy.
	if got := c.ResidentLines(); got != 1 {
		t.Fatalf("ResidentLines = %d", got)
	}
}

func TestSubBitNonSector(t *testing.T) {
	// Non-sector caches treat every valid line as fully valid: Access on a
	// resident line hits regardless of offset.
	c := MustNew(Config{Size: 128, LineSize: 32, Assoc: 1})
	c.Fill(0)
	for off := uint64(0); off < 32; off += 4 {
		if !c.Access(off) {
			t.Fatalf("offset %d missed in non-sector cache", off)
		}
	}
}

// TestAccessNoAllocs pins the hot path's zero-allocation property: Access,
// Lookup, and Fill must never allocate, hit or miss, at any associativity.
func TestAccessNoAllocs(t *testing.T) {
	for _, cfg := range []Config{
		{Size: 8192, LineSize: 32, Assoc: 1},
		{Size: 65536, LineSize: 64, Assoc: 8},
		{Size: 8192, LineSize: 64, Assoc: 1, SubBlock: 16},
	} {
		c := MustNew(cfg)
		var addr uint64
		if n := testing.AllocsPerRun(2000, func() {
			c.Access(addr) // cold: miss+fill; warm: hit
			c.Lookup(addr)
			c.Fill(addr + 1<<20) // conflicting line: fill+evict
			addr += 4
		}); n != 0 {
			t.Errorf("%v: %v allocs per access round, want 0", cfg, n)
		}
	}
}

// BenchmarkAccessHitDM measures the direct-mapped hit fast path: every
// access after the first re-touches a resident line.
func BenchmarkAccessHitDM(b *testing.B) {
	c := MustNew(Config{Size: 8192, LineSize: 32, Assoc: 1})
	c.Access(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0)
	}
}

// BenchmarkAccessHit8Way measures the associative hit path (LRU stamp
// update plus way scan).
func BenchmarkAccessHit8Way(b *testing.B) {
	c := MustNew(Config{Size: 65536, LineSize: 32, Assoc: 8})
	c.Access(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0)
	}
}

// BenchmarkAccessMissDM measures the miss+fill path: two lines conflicting
// in one direct-mapped set, so every access evicts.
func BenchmarkAccessMissDM(b *testing.B) {
	c := MustNew(Config{Size: 8192, LineSize: 32, Assoc: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i&1) << 20)
	}
}
