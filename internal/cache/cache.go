// Package cache implements the set-associative cache models at the heart of
// every experiment in the paper: configurable size, line size, associativity,
// replacement policy, and optional sub-block (sector) allocation.
//
// The model is a behavioral tag store: it tracks which lines are resident and
// answers hit/miss, leaving all *timing* (latency, bandwidth, fill, prefetch,
// bypass) to package fetch/memsys. Addresses are whatever the caller says
// they are — pass virtual addresses for a virtually-indexed cache, or
// translate through internal/vm first for a physically-indexed one (that
// distinction is the entire subject of the paper's Figure 5).
package cache

import (
	"fmt"

	"ibsim/internal/xrand"
)

// Replacement selects a victim-choice policy.
type Replacement uint8

const (
	// LRU evicts the least-recently-used way. All paper experiments use LRU.
	LRU Replacement = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// Random evicts a uniformly random way.
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", uint8(r))
	}
}

// Config describes a cache geometry.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the line (block) size in bytes; a power of two.
	LineSize int
	// Assoc is the set associativity. 0 means fully associative.
	Assoc int
	// Replacement is the victim-choice policy (default LRU).
	Replacement Replacement
	// SubBlock, if non-zero, enables sector allocation with sub-blocks of
	// this many bytes: tags cover LineSize but validity is tracked per
	// sub-block (the paper's footnote on 64-byte lines with 16-byte
	// sub-block allocation). Must divide LineSize.
	SubBlock int
	// Seed seeds the Random replacement policy. Ignored for LRU/FIFO.
	Seed uint64
}

// Lines returns the number of lines the configuration holds.
func (c Config) Lines() int { return c.Size / c.LineSize }

// Sets returns the number of sets (after resolving Assoc == 0 to fully
// associative).
func (c Config) Sets() int {
	a := c.Assoc
	if a == 0 {
		a = c.Lines()
	}
	return c.Lines() / a
}

// String renders the geometry in the paper's style, e.g.
// "8KB/32B/direct-mapped" or "64KB/32B/8-way".
func (c Config) String() string {
	assoc := "fully-assoc"
	switch {
	case c.Assoc == 1:
		assoc = "direct-mapped"
	case c.Assoc > 1:
		assoc = fmt.Sprintf("%d-way", c.Assoc)
	}
	size := fmt.Sprintf("%dB", c.Size)
	if c.Size%1024 == 0 {
		size = fmt.Sprintf("%dKB", c.Size/1024)
	}
	return fmt.Sprintf("%s/%dB/%s", size, c.LineSize, assoc)
}

// validate checks the geometry and returns a normalized copy (Assoc == 0
// resolved to the line count).
func (c Config) validate() (Config, error) {
	if c.Size <= 0 {
		return c, fmt.Errorf("cache: size %d must be positive", c.Size)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return c, fmt.Errorf("cache: line size %d must be a positive power of two", c.LineSize)
	}
	if c.Size%c.LineSize != 0 {
		return c, fmt.Errorf("cache: size %d not a multiple of line size %d", c.Size, c.LineSize)
	}
	lines := c.Size / c.LineSize
	if c.Assoc == 0 {
		c.Assoc = lines
	}
	if c.Assoc < 0 || c.Assoc > lines {
		return c, fmt.Errorf("cache: associativity %d out of range [1, %d]", c.Assoc, lines)
	}
	if lines%c.Assoc != 0 {
		return c, fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return c, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	if c.SubBlock != 0 {
		if c.SubBlock <= 0 || c.SubBlock&(c.SubBlock-1) != 0 {
			return c, fmt.Errorf("cache: sub-block %d must be a positive power of two", c.SubBlock)
		}
		if c.LineSize%c.SubBlock != 0 {
			return c, fmt.Errorf("cache: sub-block %d must divide line size %d", c.SubBlock, c.LineSize)
		}
		if c.LineSize/c.SubBlock > 64 {
			return c, fmt.Errorf("cache: more than 64 sub-blocks per line unsupported")
		}
	}
	return c, nil
}

// Stats counts cache activity. Hits+Misses == Accesses; sub-block caches
// additionally split misses into full line misses and sub-block-only misses
// (tag present, sub-block invalid).
type Stats struct {
	Accesses      int64
	Hits          int64
	Misses        int64
	SubMisses     int64 // misses where the tag matched but sub-block was invalid
	Fills         int64
	Evictions     int64
	Invalidations int64
}

// MissRatio returns Misses/Accesses, or 0 when no accesses occurred.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// way holds one cache line's bookkeeping.
type way struct {
	tag   uint64
	valid bool
	// stamp orders ways for LRU (updated on use) or FIFO (set on fill).
	stamp uint64
	// subValid is the per-sub-block validity mask for sector caches; for
	// non-sector caches it is unused.
	subValid uint64
}

// Cache is a set-associative tag store.
type Cache struct {
	cfg        Config
	lineShift  uint
	setShift   uint
	setMask    uint64
	subShift   uint
	subPerLine uint
	// assoc and isLRU mirror cfg.Assoc and cfg.Replacement == LRU, hoisted
	// into the hot path: Access/Lookup run once per simulated instruction
	// across every experiment, and the flattened fields keep the per-access
	// work to a handful of register operations with zero allocations (the
	// package benchmarks pin that).
	assoc int
	isLRU bool
	ways  []way // sets × assoc, row-major; sized once at construction
	clock uint64
	rng   *xrand.Source
	stats Stats
}

// New validates cfg and returns an empty cache. The tag store is allocated
// once here, at its exact final size — no access ever grows or allocates.
func New(cfg Config) (*Cache, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: log2(uint64(cfg.LineSize)),
		setShift:  log2(uint64(cfg.Sets())),
		setMask:   uint64(cfg.Sets() - 1),
		assoc:     cfg.Assoc,
		isLRU:     cfg.Replacement == LRU,
		ways:      make([]way, cfg.Lines()),
	}
	if cfg.SubBlock != 0 {
		c.subShift = log2(uint64(cfg.SubBlock))
		c.subPerLine = uint(cfg.LineSize / cfg.SubBlock)
	}
	if cfg.Replacement == Random {
		c.rng = xrand.New(cfg.Seed ^ 0xcafef00d)
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and literals with known-good
// geometry.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the (normalized) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset empties the cache and clears the counters.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.stats = Stats{}
	c.clock = 0
}

// lineAddr returns the line-granular address.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// setIndex returns the set an address maps to.
func (c *Cache) setIndex(lineAddr uint64) uint64 { return lineAddr & c.setMask }

// tagOf returns the tag for a line address.
func (c *Cache) tagOf(lineAddr uint64) uint64 { return lineAddr >> c.setShift }

// subBit returns the sub-block validity bit for addr, or ^0 (all ones) for
// non-sector caches so that any valid line satisfies the check.
func (c *Cache) subBit(addr uint64) uint64 {
	if c.subPerLine == 0 {
		return ^uint64(0)
	}
	sub := (addr >> c.subShift) & uint64(c.subPerLine-1)
	return 1 << sub
}

// find returns the index into c.ways of the way holding lineAddr, or -1.
func (c *Cache) find(lineAddr uint64) int {
	set := lineAddr & c.setMask
	tag := lineAddr >> c.setShift
	base := int(set) * c.assoc
	if c.assoc == 1 {
		// Direct-mapped fast path — the paper's dominant geometry: one tag
		// compare, no way loop.
		w := &c.ways[base]
		if w.valid && w.tag == tag {
			return base
		}
		return -1
	}
	for i := 0; i < c.assoc; i++ {
		w := &c.ways[base+i]
		if w.valid && w.tag == tag {
			return base + i
		}
	}
	return -1
}

// Access performs a demand reference: on a hit the replacement state is
// updated; on a miss the line is filled (evicting a victim if needed). It
// returns true on hit. This is the whole-cache convenience used by miss-ratio
// experiments; timing-aware engines use Lookup + Fill to control fill policy.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	c.clock++
	la := c.lineAddr(addr)
	if i := c.find(la); i >= 0 {
		w := &c.ways[i]
		if c.subPerLine == 0 || w.subValid&c.subBit(addr) != 0 {
			c.stats.Hits++
			if c.isLRU {
				w.stamp = c.clock
			}
			return true
		}
		// Sector cache: tag present but sub-block invalid. Fill this and all
		// subsequent sub-blocks (the paper's sub-block refill policy).
		c.stats.Misses++
		c.stats.SubMisses++
		c.fillSubBlocks(w, addr)
		if c.isLRU {
			w.stamp = c.clock
		}
		return false
	}
	c.stats.Misses++
	c.fill(la, addr)
	return false
}

// Lookup checks residency and updates replacement state on a hit, but does
// NOT fill on a miss. Use with Fill to implement engines that cache lines
// conditionally (stream buffers, use-only prefetch caching).
func (c *Cache) Lookup(addr uint64) bool {
	c.stats.Accesses++
	c.clock++
	la := c.lineAddr(addr)
	if i := c.find(la); i >= 0 {
		w := &c.ways[i]
		if c.subPerLine == 0 || w.subValid&c.subBit(addr) != 0 {
			c.stats.Hits++
			if c.isLRU {
				w.stamp = c.clock
			}
			return true
		}
		c.stats.Misses++
		c.stats.SubMisses++
		return false
	}
	c.stats.Misses++
	return false
}

// Contains reports residency without updating any state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	i := c.find(la)
	if i < 0 {
		return false
	}
	if c.subPerLine == 0 {
		return true
	}
	return c.ways[i].subValid&c.subBit(addr) != 0
}

// Fill inserts the line containing addr (and, for sector caches, the
// sub-block containing addr plus all subsequent sub-blocks). It does not
// count as an access. Filling a resident line refreshes its replacement
// stamp.
func (c *Cache) Fill(addr uint64) {
	c.FillEvict(addr)
}

// FillEvict is Fill, additionally reporting the line address (line-granular,
// i.e. byte address of the line start) evicted to make room, if any. Victim
// caches and exclusive hierarchies need the cast-out.
func (c *Cache) FillEvict(addr uint64) (evicted uint64, wasValid bool) {
	c.clock++
	la := c.lineAddr(addr)
	if i := c.find(la); i >= 0 {
		w := &c.ways[i]
		w.stamp = c.clock
		if c.subPerLine != 0 {
			c.fillSubBlocks(w, addr)
		}
		return 0, false
	}
	return c.fill(la, addr)
}

// fill allocates a way for lineAddr, evicting a victim if the set is full;
// it returns the evicted line's byte address when a valid line was cast out.
func (c *Cache) fill(lineAddr, addr uint64) (evicted uint64, wasValid bool) {
	set := c.setIndex(lineAddr)
	base := int(set) * c.assoc
	victim := -1
	// Prefer an invalid way.
	for i := 0; i < c.assoc; i++ {
		if !c.ways[base+i].valid {
			victim = base + i
			break
		}
	}
	if victim < 0 {
		c.stats.Evictions++
		switch c.cfg.Replacement {
		case Random:
			victim = base + c.rng.Intn(c.assoc)
		default: // LRU and FIFO both evict the minimum stamp
			victim = base
			for i := 1; i < c.assoc; i++ {
				if c.ways[base+i].stamp < c.ways[victim].stamp {
					victim = base + i
				}
			}
		}
		old := &c.ways[victim]
		evicted = (old.tag<<c.setShift | set) << c.lineShift
		wasValid = true
	}
	w := &c.ways[victim]
	w.tag = c.tagOf(lineAddr)
	w.valid = true
	w.stamp = c.clock
	w.subValid = 0
	if c.subPerLine != 0 {
		c.fillSubBlocks(w, addr)
	}
	c.stats.Fills++
	return evicted, wasValid
}

// fillSubBlocks marks valid the sub-block containing addr and all subsequent
// sub-blocks in the line ("the system only refills the missing sub-block and
// all subsequent sub-blocks in the line").
func (c *Cache) fillSubBlocks(w *way, addr uint64) {
	sub := (addr >> c.subShift) & uint64(c.subPerLine-1)
	for s := sub; s < uint64(c.subPerLine); s++ {
		w.subValid |= 1 << s
	}
}

// Invalidate removes the line containing addr, returning true if it was
// resident.
func (c *Cache) Invalidate(addr uint64) bool {
	la := c.lineAddr(addr)
	if i := c.find(la); i >= 0 {
		c.ways[i] = way{}
		c.stats.Invalidations++
		return true
	}
	return false
}

// ResidentLines returns the number of currently valid lines; useful in tests
// and occupancy studies.
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid {
			n++
		}
	}
	return n
}
