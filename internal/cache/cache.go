// Package cache implements the set-associative cache models at the heart of
// every experiment in the paper: configurable size, line size, associativity,
// replacement policy, and optional sub-block (sector) allocation.
//
// The model is a behavioral tag store: it tracks which lines are resident and
// answers hit/miss, leaving all *timing* (latency, bandwidth, fill, prefetch,
// bypass) to package fetch/memsys. Addresses are whatever the caller says
// they are — pass virtual addresses for a virtually-indexed cache, or
// translate through internal/vm first for a physically-indexed one (that
// distinction is the entire subject of the paper's Figure 5).
package cache

import (
	"fmt"

	"ibsim/internal/xrand"
)

// Replacement selects a victim-choice policy.
type Replacement uint8

const (
	// LRU evicts the least-recently-used way. All paper experiments use LRU.
	LRU Replacement = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// Random evicts a uniformly random way.
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", uint8(r))
	}
}

// Config describes a cache geometry.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the line (block) size in bytes; a power of two.
	LineSize int
	// Assoc is the set associativity. 0 means fully associative.
	Assoc int
	// Replacement is the victim-choice policy (default LRU).
	Replacement Replacement
	// SubBlock, if non-zero, enables sector allocation with sub-blocks of
	// this many bytes: tags cover LineSize but validity is tracked per
	// sub-block (the paper's footnote on 64-byte lines with 16-byte
	// sub-block allocation). Must divide LineSize.
	SubBlock int
	// Seed seeds the Random replacement policy. Ignored for LRU/FIFO.
	Seed uint64
}

// Lines returns the number of lines the configuration holds.
func (c Config) Lines() int { return c.Size / c.LineSize }

// Sets returns the number of sets (after resolving Assoc == 0 to fully
// associative).
func (c Config) Sets() int {
	a := c.Assoc
	if a == 0 {
		a = c.Lines()
	}
	return c.Lines() / a
}

// String renders the geometry in the paper's style, e.g.
// "8KB/32B/direct-mapped" or "64KB/32B/8-way".
func (c Config) String() string {
	assoc := "fully-assoc"
	switch {
	case c.Assoc == 1:
		assoc = "direct-mapped"
	case c.Assoc > 1:
		assoc = fmt.Sprintf("%d-way", c.Assoc)
	}
	size := fmt.Sprintf("%dB", c.Size)
	if c.Size%1024 == 0 {
		size = fmt.Sprintf("%dKB", c.Size/1024)
	}
	return fmt.Sprintf("%s/%dB/%s", size, c.LineSize, assoc)
}

// validate checks the geometry and returns a normalized copy (Assoc == 0
// resolved to the line count).
func (c Config) validate() (Config, error) {
	if c.Size <= 0 {
		return c, fmt.Errorf("cache: size %d must be positive", c.Size)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return c, fmt.Errorf("cache: line size %d must be a positive power of two", c.LineSize)
	}
	if c.Size%c.LineSize != 0 {
		return c, fmt.Errorf("cache: size %d not a multiple of line size %d", c.Size, c.LineSize)
	}
	lines := c.Size / c.LineSize
	if c.Assoc == 0 {
		c.Assoc = lines
	}
	if c.Assoc < 0 || c.Assoc > lines {
		return c, fmt.Errorf("cache: associativity %d out of range [1, %d]", c.Assoc, lines)
	}
	if lines%c.Assoc != 0 {
		return c, fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return c, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	if c.SubBlock != 0 {
		if c.SubBlock <= 0 || c.SubBlock&(c.SubBlock-1) != 0 {
			return c, fmt.Errorf("cache: sub-block %d must be a positive power of two", c.SubBlock)
		}
		if c.LineSize%c.SubBlock != 0 {
			return c, fmt.Errorf("cache: sub-block %d must divide line size %d", c.SubBlock, c.LineSize)
		}
		if c.LineSize/c.SubBlock > 64 {
			return c, fmt.Errorf("cache: more than 64 sub-blocks per line unsupported")
		}
	}
	return c, nil
}

// Stats counts cache activity. Hits+Misses == Accesses; sub-block caches
// additionally split misses into full line misses and sub-block-only misses
// (tag present, sub-block invalid).
type Stats struct {
	Accesses      int64
	Hits          int64
	Misses        int64
	SubMisses     int64 // misses where the tag matched but sub-block was invalid
	Fills         int64
	Evictions     int64
	Invalidations int64
}

// MissRatio returns Misses/Accesses, or 0 when no accesses occurred.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// way holds one cache line's bookkeeping.
type way struct {
	tag   uint64
	valid bool
	// stamp orders ways for LRU (updated on use) or FIFO (set on fill).
	stamp uint64
	// subValid is the per-sub-block validity mask for sector caches; for
	// non-sector caches it is unused.
	subValid uint64
}

// Cache is a set-associative tag store.
type Cache struct {
	cfg        Config
	lineShift  uint
	setShift   uint
	setMask    uint64
	subShift   uint
	subPerLine uint
	// assoc and isLRU mirror cfg.Assoc and cfg.Replacement == LRU, hoisted
	// into the hot path: Access/Lookup run once per simulated instruction
	// across every experiment, and the flattened fields keep the per-access
	// work to a handful of register operations with zero allocations (the
	// package benchmarks pin that).
	assoc int
	isLRU bool
	// dm4 marks the dominant replay shape — direct-mapped, non-sector, LRU —
	// for which TouchRun and Touch take a fully inlined fast path.
	dm4   bool
	ways  []way // sets × assoc, row-major; sized once at construction
	clock uint64
	rng   *xrand.Source
	stats Stats
}

// New validates cfg and returns an empty cache. The tag store is allocated
// once here, at its exact final size — no access ever grows or allocates.
func New(cfg Config) (*Cache, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: log2(uint64(cfg.LineSize)),
		setShift:  log2(uint64(cfg.Sets())),
		setMask:   uint64(cfg.Sets() - 1),
		assoc:     cfg.Assoc,
		isLRU:     cfg.Replacement == LRU,
		ways:      make([]way, cfg.Lines()),
	}
	c.dm4 = c.assoc == 1 && cfg.SubBlock == 0 && c.isLRU
	if cfg.SubBlock != 0 {
		c.subShift = log2(uint64(cfg.SubBlock))
		c.subPerLine = uint(cfg.LineSize / cfg.SubBlock)
	}
	if cfg.Replacement == Random {
		c.rng = xrand.New(cfg.Seed ^ 0xcafef00d)
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and literals with known-good
// geometry.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the (normalized) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset empties the cache and clears the counters.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.stats = Stats{}
	c.clock = 0
}

// lineAddr returns the line-granular address.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// setIndex returns the set an address maps to.
func (c *Cache) setIndex(lineAddr uint64) uint64 { return lineAddr & c.setMask }

// tagOf returns the tag for a line address.
func (c *Cache) tagOf(lineAddr uint64) uint64 { return lineAddr >> c.setShift }

// subBit returns the sub-block validity bit for addr, or ^0 (all ones) for
// non-sector caches so that any valid line satisfies the check.
func (c *Cache) subBit(addr uint64) uint64 {
	if c.subPerLine == 0 {
		return ^uint64(0)
	}
	sub := (addr >> c.subShift) & uint64(c.subPerLine-1)
	return 1 << sub
}

// find returns the index into c.ways of the way holding lineAddr, or -1.
func (c *Cache) find(lineAddr uint64) int {
	set := lineAddr & c.setMask
	tag := lineAddr >> c.setShift
	base := int(set) * c.assoc
	if c.assoc == 1 {
		// Direct-mapped fast path — the paper's dominant geometry: one tag
		// compare, no way loop.
		w := &c.ways[base]
		if w.valid && w.tag == tag {
			return base
		}
		return -1
	}
	for i := 0; i < c.assoc; i++ {
		w := &c.ways[base+i]
		if w.valid && w.tag == tag {
			return base + i
		}
	}
	return -1
}

// Access performs a demand reference: on a hit the replacement state is
// updated; on a miss the line is filled (evicting a victim if needed). It
// returns true on hit. This is the whole-cache convenience used by miss-ratio
// experiments; timing-aware engines use Lookup + Fill to control fill policy.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	c.clock++
	la := c.lineAddr(addr)
	if i := c.find(la); i >= 0 {
		w := &c.ways[i]
		if c.subPerLine == 0 || w.subValid&c.subBit(addr) != 0 {
			c.stats.Hits++
			if c.isLRU {
				w.stamp = c.clock
			}
			return true
		}
		// Sector cache: tag present but sub-block invalid. Fill this and all
		// subsequent sub-blocks (the paper's sub-block refill policy).
		c.stats.Misses++
		c.stats.SubMisses++
		c.fillSubBlocks(w, addr)
		if c.isLRU {
			w.stamp = c.clock
		}
		return false
	}
	c.stats.Misses++
	c.fill(la, addr)
	return false
}

// Lookup checks residency and updates replacement state on a hit, but does
// NOT fill on a miss. Use with Fill to implement engines that cache lines
// conditionally (stream buffers, use-only prefetch caching).
func (c *Cache) Lookup(addr uint64) bool {
	c.stats.Accesses++
	c.clock++
	la := c.lineAddr(addr)
	if i := c.find(la); i >= 0 {
		w := &c.ways[i]
		if c.subPerLine == 0 || w.subValid&c.subBit(addr) != 0 {
			c.stats.Hits++
			if c.isLRU {
				w.stamp = c.clock
			}
			return true
		}
		c.stats.Misses++
		c.stats.SubMisses++
		return false
	}
	c.stats.Misses++
	return false
}

// Touch applies n consecutive Lookup hits to the resident address in one
// step: the clock advances n ticks, Accesses and Hits grow by n, and the
// line's LRU stamp lands on the final tick — bit-identical to calling
// Lookup(addr) n times when every call would hit. It is the bulk-replay fast
// path for sequential instruction runs: the n instructions sharing a line
// (and, for sector caches, a sub-block suffix — sub-block fills are
// suffix-closed, so residency of the lowest address implies the rest) need
// one tag probe instead of n.
//
// If the address would miss, Touch changes nothing and returns false; the
// caller must fall back to per-access Lookup.
func (c *Cache) Touch(addr uint64, n int64) bool {
	if n <= 0 {
		return true
	}
	if c.dm4 {
		// Direct-mapped replacement has a single candidate, so the LRU stamp
		// (and the clock that feeds it) orders nothing; the fast path skips
		// the stamp store — hit/miss behavior and stats are identical.
		la := addr >> c.lineShift
		w := &c.ways[la&c.setMask]
		if !w.valid || w.tag != la>>c.setShift {
			return false
		}
		c.clock += uint64(n)
		c.stats.Accesses += n
		c.stats.Hits += n
		return true
	}
	i := c.find(c.lineAddr(addr))
	if i < 0 {
		return false
	}
	w := &c.ways[i]
	if c.subPerLine != 0 && w.subValid&c.subBit(addr) == 0 {
		return false
	}
	c.clock += uint64(n)
	c.stats.Accesses += n
	c.stats.Hits += n
	if c.isLRU {
		w.stamp = c.clock
	}
	return true
}

// TouchRun absorbs the leading all-hit prefix of a sequential run: starting
// at start, n accesses with the given byte stride, stopping at the first
// access that would miss. Each resident line's accesses are applied as one
// Touch, so the whole prefix costs one tag probe per line instead of one per
// access. Returns the number of accesses absorbed; the caller resumes (with
// its miss path) at start + absorbed*stride.
func (c *Cache) TouchRun(start uint64, n, stride int64) int64 {
	if c.dm4 && stride == 4 {
		return c.TouchRunDM4(start, n)
	}
	lineMask := uint64(c.cfg.LineSize - 1)
	var absorbed int64
	addr := start
	for n > 0 {
		k := n
		if lineEnd := (addr | lineMask) + 1; lineEnd != 0 {
			// lineEnd == 0 means the top line, which holds the rest of the
			// run (sequential runs never wrap the address space).
			if room := (int64(lineEnd-addr) + stride - 1) / stride; room < k {
				k = room
			}
		}
		i := c.find(addr >> c.lineShift)
		if i < 0 {
			break
		}
		w := &c.ways[i]
		if c.subPerLine != 0 && w.subValid&c.subBit(addr) == 0 {
			break
		}
		c.clock += uint64(k)
		c.stats.Accesses += k
		c.stats.Hits += k
		if c.isLRU {
			w.stamp = c.clock
		}
		absorbed += k
		addr += uint64(k * stride)
		n -= k
	}
	return absorbed
}

// DM4 reports whether this cache takes TouchRun's direct-mapped, non-sector,
// LRU specialization at stride 4. Replay loops that issue many short runs
// hoist the dispatch: check DM4 once, then call TouchRunDM4 directly.
func (c *Cache) DM4() bool { return c.dm4 }

// TouchRunDM4 is TouchRun at stride 4 for caches where DM4 reports true; the
// caller must check. The specialization turns the per-line room division into
// a shift, inlines the direct-mapped tag compare, and hoists the clock and
// the access/hit counters out of the line loop. Like Touch's direct-mapped
// path it skips the per-line LRU stamp stores — replacement has a single
// candidate, so stamps order nothing — leaving hit/miss behavior and stats
// identical to the general loop.
func (c *Cache) TouchRunDM4(start uint64, n int64) int64 {
	mask := c.setMask
	ways := c.ways[:mask+1] // one way per set: len == setMask+1, so la&mask needs no bounds check
	var absorbed int64
	addr := start
	// First (possibly unaligned) line.
	la := addr >> c.lineShift
	w := &ways[la&mask]
	if w.valid && w.tag == la>>c.setShift {
		k := n
		if lineEnd := (addr | uint64(c.cfg.LineSize-1)) + 1; lineEnd != 0 {
			// lineEnd == 0 means the top line, which holds the rest of the
			// run (sequential runs never wrap the address space).
			if room := int64(lineEnd-addr+3) >> 2; room < k {
				k = room
			}
		}
		absorbed = k
		addr += uint64(k) << 2
		n -= k
		// Remaining lines start aligned, so each holds ipl instructions.
		ipl := int64(c.cfg.LineSize) >> 2
		for n > 0 {
			la = addr >> c.lineShift
			w = &ways[la&mask]
			if !w.valid || w.tag != la>>c.setShift {
				break
			}
			k = ipl
			if n < k {
				k = n
			}
			absorbed += k
			addr += uint64(k) << 2
			n -= k
		}
	}
	c.clock += uint64(absorbed)
	c.stats.Accesses += absorbed
	c.stats.Hits += absorbed
	return absorbed
}

// MissFillDM4 records a demand access known to miss and fills the line, in
// one step: Accesses and Misses grow by one, the set's resident line (if
// any) is evicted with eviction accounting, and the new line is filled. It
// is exactly Lookup(addr) returning false followed by FillEvict(addr) for a
// cache where DM4 reports true and addr's line is absent; callers (the bulk
// replay loops) guarantee both, having just probed the line via TouchRunDM4.
// Skipping the two redundant tag probes is the point.
func (c *Cache) MissFillDM4(addr uint64) {
	c.stats.Accesses++
	c.stats.Misses++
	c.clock += 2 // one Lookup tick + one FillEvict tick
	la := addr >> c.lineShift
	w := &c.ways[la&c.setMask]
	if w.valid {
		c.stats.Evictions++
	}
	w.tag = la >> c.setShift
	w.valid = true
	w.stamp = c.clock
	w.subValid = 0
	c.stats.Fills++
}

// Contains reports residency without updating any state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	i := c.find(la)
	if i < 0 {
		return false
	}
	if c.subPerLine == 0 {
		return true
	}
	return c.ways[i].subValid&c.subBit(addr) != 0
}

// Fill inserts the line containing addr (and, for sector caches, the
// sub-block containing addr plus all subsequent sub-blocks). It does not
// count as an access. Filling a resident line refreshes its replacement
// stamp.
func (c *Cache) Fill(addr uint64) {
	c.FillEvict(addr)
}

// FillEvict is Fill, additionally reporting the line address (line-granular,
// i.e. byte address of the line start) evicted to make room, if any. Victim
// caches and exclusive hierarchies need the cast-out.
func (c *Cache) FillEvict(addr uint64) (evicted uint64, wasValid bool) {
	c.clock++
	la := c.lineAddr(addr)
	if i := c.find(la); i >= 0 {
		w := &c.ways[i]
		w.stamp = c.clock
		if c.subPerLine != 0 {
			c.fillSubBlocks(w, addr)
		}
		return 0, false
	}
	return c.fill(la, addr)
}

// fill allocates a way for lineAddr, evicting a victim if the set is full;
// it returns the evicted line's byte address when a valid line was cast out.
func (c *Cache) fill(lineAddr, addr uint64) (evicted uint64, wasValid bool) {
	set := c.setIndex(lineAddr)
	base := int(set) * c.assoc
	victim := -1
	// Prefer an invalid way.
	for i := 0; i < c.assoc; i++ {
		if !c.ways[base+i].valid {
			victim = base + i
			break
		}
	}
	if victim < 0 {
		c.stats.Evictions++
		switch c.cfg.Replacement {
		case Random:
			victim = base + c.rng.Intn(c.assoc)
		default: // LRU and FIFO both evict the minimum stamp
			victim = base
			for i := 1; i < c.assoc; i++ {
				if c.ways[base+i].stamp < c.ways[victim].stamp {
					victim = base + i
				}
			}
		}
		old := &c.ways[victim]
		evicted = (old.tag<<c.setShift | set) << c.lineShift
		wasValid = true
	}
	w := &c.ways[victim]
	w.tag = c.tagOf(lineAddr)
	w.valid = true
	w.stamp = c.clock
	w.subValid = 0
	if c.subPerLine != 0 {
		c.fillSubBlocks(w, addr)
	}
	c.stats.Fills++
	return evicted, wasValid
}

// fillSubBlocks marks valid the sub-block containing addr and all subsequent
// sub-blocks in the line ("the system only refills the missing sub-block and
// all subsequent sub-blocks in the line").
func (c *Cache) fillSubBlocks(w *way, addr uint64) {
	sub := (addr >> c.subShift) & uint64(c.subPerLine-1)
	for s := sub; s < uint64(c.subPerLine); s++ {
		w.subValid |= 1 << s
	}
}

// Invalidate removes the line containing addr, returning true if it was
// resident.
func (c *Cache) Invalidate(addr uint64) bool {
	la := c.lineAddr(addr)
	if i := c.find(la); i >= 0 {
		c.ways[i] = way{}
		c.stats.Invalidations++
		return true
	}
	return false
}

// ResidentLines returns the number of currently valid lines; useful in tests
// and occupancy studies.
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid {
			n++
		}
	}
	return n
}
