package sweep

import (
	"context"
	"fmt"

	"ibsim/internal/sampling"
	"ibsim/internal/trace"
)

// Sampled sweep: the same capacity × associativity grid as Pass, but
// simulating only a statistical sample of the trace and reporting each cell
// as a sampling.Estimate{MPI, CI95, Coverage} instead of a bare count.
//
// Two orthogonal sampling dimensions, composable:
//
//   - Set sampling (SetMod/SetMatch): only lines whose line address is
//     congruent to SetMatch modulo SetMod are simulated. With bit-selection
//     indexing a cache with S >= SetMod sets maps those lines onto exactly
//     S/SetMod whole sets, and LRU sets are independent, so the simulation
//     is EXACT within the sampled subset — the only error is extrapolating
//     from S/SetMod sets to S. Work drops by ~SetMod: the engine walks the
//     run-compacted trace line-granularly and jumps straight to matching
//     lines. The confidence interval treats each sampled set group as one
//     cluster.
//
//   - Time sampling (Window/Period): out of every Period instructions the
//     first Window are measured. Warm processes skipped spans line-granularly
//     so stacks stay current ("functional warming", unbiased); !Warm skips
//     them entirely — fastest, but windows start with stale stack state, the
//     trap-driven-tool bias internal/sampling quantifies. Each window is one
//     cluster.
//
// The engine processes runs at line granularity: within one sequential run a
// line's first access is the only one that can change stack state (addresses
// strictly increase, so accesses between a line's first and last touch all
// hit it at distance 1), so each touched line costs one stack operation
// regardless of how many instructions it holds.
type SampledPass struct {
	// LineSize is the line size in bytes shared by every cell; a power of
	// two >= trace.InstrBytes.
	LineSize int
	// Cells is the capacity × associativity grid.
	Cells []Cell
	// SetMod/SetMatch select the sampled line-address class (line addresses
	// congruent to SetMatch mod SetMod). SetMod must be a power of two and
	// every cell must have Sets >= SetMod, so the class maps onto whole
	// sets; SetMod <= 1 disables set sampling.
	SetMod   int
	SetMatch int
	// Window/Period schedule time sampling: the first Window of every
	// Period instructions are measured. Period 0 (with Window 0) disables;
	// Window == Period measures everything.
	Window int64
	Period int64
	// Warm keeps stacks current through unmeasured spans; false skips them.
	// Irrelevant without time sampling.
	Warm bool
	// CountDistinct counts distinct measured lines into
	// SampledMatrix.Distinct.
	CountDistinct bool
	// Ctx, when non-nil, cancels a long pass between runs.
	Ctx context.Context
}

// SampledMatrix is the result of one sampled sweep.
type SampledMatrix struct {
	// LineSize is the pass's line size in bytes.
	LineSize int
	// TotalInstructions is the full trace length the estimates extrapolate
	// to; SampledInstructions is how many were actually measured.
	TotalInstructions   int64
	SampledInstructions int64
	// Distinct counts distinct measured lines (0 unless CountDistinct).
	Distinct int64
	// Cells echoes the grid, parallel to Misses and Estimates.
	Cells []Cell
	// Misses holds each cell's measured miss count (within the sampled
	// sets/windows — NOT extrapolated).
	Misses []int64
	// Estimates holds each cell's extrapolated MPI estimate with its 95%
	// confidence interval.
	Estimates []sampling.Estimate
}

// Coverage returns the measured fraction of the trace.
func (m *SampledMatrix) Coverage() float64 {
	if m.TotalInstructions == 0 {
		return 0
	}
	return float64(m.SampledInstructions) / float64(m.TotalInstructions)
}

// sampledRunCheckMask sets the cancellation polling stride in runs (runs
// average a handful of instructions, so this is a few ten-thousand
// instructions of latency at worst).
const sampledRunCheckMask = 1<<12 - 1

// sampledState carries the hot-loop state of one sampled pass.
type sampledState struct {
	m      *Matrix // Accesses = measured instructions, Misses = measured misses
	groups []*group
	seen   *lineSet
	shift  uint
	ipl    int64 // instructions per line (power of two)
	iplSh  uint  // log2(ipl): div/mod by ipl as shifts in the per-run path

	// Set sampling (mod > 1): lines ≡ match (mod mod). Only sets congruent
	// to match are ever touched, so stacks are allocated compactly — one row
	// per SAMPLED set — and rowShift (= log2(mod)) maps a set index to its
	// row. 0 without set sampling. The ~mod× smaller footprint keeps the
	// stacks cache-resident, which is where the sampled pass wins its time.
	mod      uint64
	match    uint64
	rowShift uint

	// Per-set-group clustering (set sampling without time sampling):
	// cluster index k = (set index) >> kshift, i.e. one cluster per sampled
	// congruence class of sets. Instructions are tallied per group (the
	// same line lands in different clusters under different set counts),
	// misses per cell.
	setCluster bool
	kshift     uint
	kInstr     [][]int64 // [group][k]
	kMiss      [][]int64 // [cell][k]

	// Per-window clustering (time sampling).
	winCluster  bool
	winClusters [][]sampling.Cluster // [cell][window]
	winPrev     []int64              // per-cell miss snapshot at window open
	winInstr    int64
	curWin      int64
}

// Run executes the sampled pass over a run-compacted trace.
func (p SampledPass) Run(runs []trace.Run) (*SampledMatrix, error) {
	st, timeSample, err := p.prepare()
	if err != nil {
		return nil, err
	}
	if !timeSample && st.mod > 1 {
		// Set-only sampling is the service's fast path: run it through the
		// specialized loop (no per-run call, hot fields in registers).
		total, err := st.runSetOnly(runs, p.Ctx)
		if err != nil {
			return nil, err
		}
		return p.assemble(st, total), nil
	}
	pos, err := p.feed(st, runs, 0, timeSample)
	if err != nil {
		return nil, err
	}
	st.closeWindow()
	return p.assemble(st, pos), nil
}

// feed advances the pass over the next chunk of runs, which begins at
// absolute instruction position pos, and returns the advanced position. All
// sampling state (window clusters, curWin, stacks) lives in st, so feeding
// the trace as one slice or block by block produces identical matrices —
// this is the shared core of Run and RunBlocks.
func (p SampledPass) feed(st *sampledState, runs []trace.Run, pos int64, timeSample bool) (int64, error) {
	for ri, r := range runs {
		if p.Ctx != nil && ri&sampledRunCheckMask == 0 {
			if err := p.Ctx.Err(); err != nil {
				return 0, err
			}
		}
		if !timeSample {
			st.span(r.Start, r.Len, true)
			pos += r.Len
			continue
		}
		for off := int64(0); off < r.Len; {
			phase := (pos + off) % p.Period
			if phase < p.Window {
				seg := p.Window - phase
				if rem := r.Len - off; seg > rem {
					seg = rem
				}
				if win := (pos + off) / p.Period; win != st.curWin {
					st.closeWindow()
					st.curWin = win
				}
				st.span(r.Start+uint64(off)*trace.InstrBytes, seg, true)
				off += seg
			} else {
				seg := p.Period - phase
				if rem := r.Len - off; seg > rem {
					seg = rem
				}
				if p.Warm {
					st.span(r.Start+uint64(off)*trace.InstrBytes, seg, false)
				}
				off += seg
			}
		}
		pos += r.Len
	}
	return pos, nil
}

// prepare validates the sampled pass and builds its state.
func (p SampledPass) prepare() (*sampledState, bool, error) {
	if p.LineSize < trace.InstrBytes {
		return nil, false, fmt.Errorf("sweep: sampled pass line size %d must be >= the %d-byte instruction size", p.LineSize, trace.InstrBytes)
	}
	m, groups, seen, shift, err := Pass{
		LineSize:      p.LineSize,
		Cells:         p.Cells,
		CountDistinct: p.CountDistinct,
	}.prepareCore()
	if err != nil {
		return nil, false, err
	}
	if p.SetMod > 1 {
		if p.SetMod&(p.SetMod-1) != 0 {
			return nil, false, fmt.Errorf("sweep: set-sampling modulus %d must be a power of two", p.SetMod)
		}
		if p.SetMatch < 0 || p.SetMatch >= p.SetMod {
			return nil, false, fmt.Errorf("sweep: set-sampling match %d outside [0,%d)", p.SetMatch, p.SetMod)
		}
		for i, c := range p.Cells {
			if c.Sets < p.SetMod {
				return nil, false, fmt.Errorf("sweep: cell %d has %d sets < set-sampling modulus %d (sampled lines would not cover whole sets)", i, c.Sets, p.SetMod)
			}
		}
	} else if p.SetMatch != 0 {
		return nil, false, fmt.Errorf("sweep: set-sampling match %d without a modulus", p.SetMatch)
	}
	timeSample := p.Period > 0 || p.Window > 0
	if timeSample {
		if p.Window <= 0 {
			return nil, false, fmt.Errorf("sweep: sampling window %d must be positive", p.Window)
		}
		if p.Period < p.Window {
			return nil, false, fmt.Errorf("sweep: sampling period %d < window %d", p.Period, p.Window)
		}
		// Window == Period measures everything: no windows to cluster by.
		timeSample = p.Window < p.Period
	}

	st := &sampledState{
		m:      m,
		groups: groups,
		seen:   seen,
		shift:  shift,
		ipl:    int64(p.LineSize / trace.InstrBytes),
		curWin: -1,
	}
	for v := st.ipl; v > 1; v >>= 1 {
		st.iplSh++
	}
	if p.SetMod > 1 {
		st.mod = uint64(p.SetMod)
		st.match = uint64(p.SetMatch)
		for v := st.mod; v > 1; v >>= 1 {
			st.rowShift++
		}
	}
	for _, g := range groups {
		// One row per set this pass can actually touch: all of them, or the
		// sampled congruence class (rowShift compaction).
		g.stack = make([]uint64, int((g.mask+1)>>st.rowShift)*g.amax)
	}
	switch {
	case timeSample:
		st.winCluster = true
		st.winClusters = make([][]sampling.Cluster, len(p.Cells))
		st.winPrev = make([]int64, len(p.Cells))
	case st.mod > 1:
		st.setCluster = true
		st.kshift = st.rowShift
		st.kInstr = make([][]int64, len(groups))
		for gi, g := range groups {
			st.kInstr[gi] = make([]int64, (g.mask+1)>>st.kshift)
		}
		st.kMiss = make([][]int64, len(p.Cells))
		for _, g := range groups {
			nk := (g.mask + 1) >> st.kshift
			for _, c := range g.cells {
				st.kMiss[c.out] = make([]int64, nk)
			}
		}
	}
	return st, timeSample, nil
}

// runSetOnly is the set-sampling-only hot loop: every instruction is
// temporally measured, so the only work is locating the sampled congruence
// class within each run — typically zero or one lines. Equivalent to calling
// span(r.Start, r.Len, true) per run; specialized so the per-run cost stays
// a few nanoseconds (the whole point of the ~SetMod× speedup).
func (st *sampledState) runSetOnly(runs []trace.Run, ctx context.Context) (int64, error) {
	var pos int64
	shift, ipl, iplSh := st.shift, st.ipl, st.iplSh
	mod1, match := st.mod-1, st.match
	for ri, r := range runs {
		if ctx != nil && ri&sampledRunCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		pos += r.Len
		first := r.Start >> shift
		delta := int64((match - first) & mod1)
		if delta > (r.Len>>iplSh)+1 {
			// The run spans at most (Len>>iplSh)+2 lines, so it cannot reach
			// the sampled class: skip with one compare — the common case.
			continue
		}
		head := ipl - int64(r.Start/trace.InstrBytes)&(ipl-1)
		if head >= r.Len {
			if delta == 0 {
				st.touch(first, r.Len, true)
			}
			continue
		}
		nlines := int64(1) + (r.Len-head+ipl-1)>>iplSh
		for i := delta; i < nlines; i += int64(mod1 + 1) {
			st.touch(first+uint64(i), st.lineCnt(i, r.Len, head), true)
		}
	}
	return pos, nil
}

// span processes n sequential instructions starting at start, at line
// granularity; measured spans count, unmeasured (warm) spans only advance
// stack state.
func (st *sampledState) span(start uint64, n int64, measured bool) {
	first := start >> st.shift
	headOff := int64(start/trace.InstrBytes) & (st.ipl - 1) // instruction offset within the first line
	head := st.ipl - headOff
	if head >= n {
		// The whole span fits in one line — the common case for short runs.
		if st.mod > 1 && first&(st.mod-1) != st.match {
			return
		}
		st.touch(first, n, measured)
		return
	}
	nlines := int64(1) + (n-head+st.ipl-1)>>st.iplSh
	if st.mod > 1 {
		// Jump straight to the sampled congruence class.
		for i := int64((st.match - first) & (st.mod - 1)); i < nlines; i += int64(st.mod) {
			st.touch(first+uint64(i), st.lineCnt(i, n, head), measured)
		}
		return
	}
	for i := int64(0); i < nlines; i++ {
		st.touch(first+uint64(i), st.lineCnt(i, n, head), measured)
	}
}

// lineCnt returns how many of the span's n instructions fall in its i-th
// line, where the 0th line holds the first head of them.
func (st *sampledState) lineCnt(i, n, head int64) int64 {
	if i == 0 {
		return head
	}
	c := n - head - (i-1)*st.ipl
	if c > st.ipl {
		c = st.ipl
	}
	return c
}

// touch settles cnt sequential accesses to line la for every grid cell: one
// stack operation (the line's first access) plus cnt-1 distance-1 hits.
func (st *sampledState) touch(la uint64, cnt int64, measured bool) {
	key := la + 1
	if measured && st.seen != nil && st.seen.add(key) {
		st.m.Distinct++
	}
	for gi, g := range st.groups {
		base := int((la&g.mask)>>st.rowShift) * g.amax
		s := g.stack[base : base+g.amax]
		var k uint64
		if st.setCluster {
			k = (la & g.mask) >> st.kshift
			if measured {
				st.kInstr[gi][k] += cnt
			}
		}
		if s[0] == key {
			continue
		}
		pos := -1
		for i := 1; i < g.amax; i++ {
			if s[i] == key {
				pos = i
				break
			}
		}
		if pos < 0 {
			if measured {
				for _, c := range g.cells {
					st.m.Misses[c.out]++
					if st.setCluster {
						st.kMiss[c.out][k]++
					}
				}
			}
			copy(s[1:], s[:g.amax-1])
		} else {
			if measured {
				for _, c := range g.cells {
					if c.assoc <= pos {
						st.m.Misses[c.out]++
						if st.setCluster {
							st.kMiss[c.out][k]++
						}
					}
				}
			}
			copy(s[1:pos+1], s[:pos])
		}
		s[0] = key
	}
	if measured {
		st.m.Accesses += cnt
		st.winInstr += cnt
	}
}

// closeWindow flushes the open measurement window into one cluster per cell.
func (st *sampledState) closeWindow() {
	if !st.winCluster || st.curWin < 0 {
		return
	}
	if st.winInstr > 0 {
		for i := range st.winClusters {
			st.winClusters[i] = append(st.winClusters[i], sampling.Cluster{
				Instructions: st.winInstr,
				Misses:       st.m.Misses[i] - st.winPrev[i],
			})
		}
	}
	copy(st.winPrev, st.m.Misses)
	st.winInstr = 0
}

// assemble builds the result matrix with per-cell estimates.
func (p SampledPass) assemble(st *sampledState, total int64) *SampledMatrix {
	sm := &SampledMatrix{
		LineSize:            st.m.LineSize,
		TotalInstructions:   total,
		SampledInstructions: st.m.Accesses,
		Distinct:            st.m.Distinct,
		Cells:               st.m.Cells,
		Misses:              st.m.Misses,
		Estimates:           make([]sampling.Estimate, len(st.m.Cells)),
	}
	cellGroup := make([]int, len(sm.Cells))
	for gi, g := range st.groups {
		for _, c := range g.cells {
			cellGroup[c.out] = gi
		}
	}
	switch {
	case st.winCluster:
		// The sampled fraction of the population: instruction coverage
		// (which already folds in any set sampling — skipped lines are
		// never counted as measured).
		f := sm.Coverage()
		for i := range sm.Estimates {
			sm.Estimates[i] = sampling.EstimateFrom(st.winClusters[i], total, f)
		}
	case st.setCluster:
		f := 1 / float64(st.mod)
		for i := range sm.Estimates {
			gi := cellGroup[i]
			clusters := make([]sampling.Cluster, len(st.kMiss[i]))
			for k := range clusters {
				clusters[k] = sampling.Cluster{Instructions: st.kInstr[gi][k], Misses: st.kMiss[i][k]}
			}
			sm.Estimates[i] = sampling.EstimateFrom(clusters, total, f)
		}
	default:
		// Exhaustive: the estimate is the exact value.
		for i := range sm.Estimates {
			sm.Estimates[i] = sampling.EstimateFrom(
				[]sampling.Cluster{{Instructions: sm.SampledInstructions, Misses: sm.Misses[i]}}, total, 1)
		}
	}
	return sm
}
