package sweep

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"ibsim/internal/trace"
)

// columnarOf encodes runs into an in-memory columnar image at a small block
// size and opens it as a BlockSource.
func columnarOf(t testing.TB, runs []trace.Run, blockBytes int) *trace.ColumnarFile {
	t.Helper()
	var buf bytes.Buffer
	if _, err := trace.EncodeColumnarSize(&buf, runs, blockBytes); err != nil {
		t.Fatal(err)
	}
	cf, err := trace.NewColumnarBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func sweepCells() []Cell {
	return []Cell{
		{Sets: 128, Assoc: 1}, {Sets: 64, Assoc: 2}, {Sets: 512, Assoc: 1},
		{Sets: 256, Assoc: 4}, {Sets: 1024, Assoc: 2},
	}
}

// Pass.RunBlocks over a multi-block columnar trace must reproduce Pass.Run
// over the equivalent expanded refs exactly, including first-touch counts.
func TestRunBlocksMatchesRun(t *testing.T) {
	refs := testRefs(t, 150_000)
	runs := trace.Compact(refs)
	p := Pass{LineSize: 32, Cells: sweepCells(), CountDistinct: true, Ctx: context.Background()}
	want, err := p.Run(refs)
	if err != nil {
		t.Fatal(err)
	}
	cf := columnarOf(t, runs, 512)
	if cf.NumBlocks() < 8 {
		t.Fatalf("only %d blocks; trace too small to exercise block iteration", cf.NumBlocks())
	}
	got, err := p.RunBlocks(cf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("block matrix %+v != in-memory %+v", got, want)
	}
}

func TestRunBlocksCancel(t *testing.T) {
	refs := testRefs(t, 20_000)
	cf := columnarOf(t, trace.Compact(refs), 512)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Pass{LineSize: 32, Cells: sweepCells(), Ctx: ctx}
	if _, err := p.RunBlocks(cf); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// SampledPass.RunBlocks must be bit-identical to SampledPass.Run — matrices,
// estimates, clusters — for every sampling shape, including the set-only
// fast path fed one block at a time.
func TestSampledRunBlocksMatchesRun(t *testing.T) {
	refs := testRefs(t, 200_000)
	runs := trace.Compact(refs)
	cf := columnarOf(t, runs, 512)
	if cf.NumBlocks() < 8 {
		t.Fatalf("only %d blocks", cf.NumBlocks())
	}
	passes := map[string]SampledPass{
		"set-only":   {LineSize: 32, Cells: sweepCells(), SetMod: 16, SetMatch: 5},
		"time-warm":  {LineSize: 32, Cells: sweepCells(), Window: 2000, Period: 8000, Warm: true},
		"time-skip":  {LineSize: 32, Cells: sweepCells(), Window: 2000, Period: 8000},
		"set+time":   {LineSize: 32, Cells: sweepCells(), SetMod: 8, SetMatch: 3, Window: 4000, Period: 16000, Warm: true},
		"exhaustive": {LineSize: 32, Cells: sweepCells(), Window: 5000, Period: 5000},
		"distinct":   {LineSize: 32, Cells: sweepCells(), SetMod: 16, SetMatch: 5, CountDistinct: true},
	}
	for name, p := range passes {
		t.Run(name, func(t *testing.T) {
			p.Ctx = context.Background()
			want, err := p.Run(runs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.RunBlocks(cf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("block matrix differs from in-memory:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestSampledRunBlocksRejectsBadPass(t *testing.T) {
	cf := columnarOf(t, trace.Compact(testRefs(t, 100)), 512)
	p := SampledPass{LineSize: 3, Cells: sweepCells()}
	if _, err := p.RunBlocks(cf); err == nil {
		t.Fatal("invalid line size accepted")
	}
}
