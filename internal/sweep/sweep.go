// Package sweep is a single-pass multi-configuration cache-simulation
// engine: for a fixed line size it computes the exact per-set LRU hit/miss
// counts of an entire capacity × associativity grid in ONE pass over a
// trace, instead of one full simulation per configuration.
//
// The engine generalizes the Mattson stack machinery in internal/threec
// from the fully-associative spectrum to set-associative grids: for LRU
// with bit-selection indexing, a reference hits a cache with S sets and
// associativity A iff its PER-SET stack distance — the number of distinct
// lines mapping to the same set touched since the previous access to this
// line, inclusive — is at most A (Mattson's inclusion property applied
// within each set). The engine therefore maintains, for every distinct set
// count in the grid, an array of per-set recency stacks truncated at the
// largest associativity any grid cell needs; one position scan per
// reference per set count settles hit/miss for every associativity at that
// set count simultaneously.
//
// Complexity: O(refs · Σ_S Amax(S)) worst case with tiny constants (the
// common case — a re-reference to the most recent line of its set — is a
// single compare), versus O(configs · refs) full cache simulations for the
// per-config path. Space is O(Σ_S S·Amax(S)) words, independent of trace
// length. The miss counts are bit-identical to replaying each
// configuration through cache.Cache / fetch.NewBlocking —
// internal/check's sweep differential enforces exactly that.
package sweep

import (
	"context"
	"fmt"

	"ibsim/internal/trace"
)

// Cell is one cache geometry of a grid, at the pass's fixed line size:
// Sets × Assoc lines, i.e. Sets·Assoc·LineSize bytes of capacity.
type Cell struct {
	// Sets is the number of sets; a power of two.
	Sets int
	// Assoc is the set associativity (>= 1); Sets == 1 with Assoc == lines
	// models a fully-associative cache.
	Assoc int
}

// Size returns the cell's capacity in bytes at the given line size.
func (c Cell) Size(lineSize int) int { return c.Sets * c.Assoc * lineSize }

// Matrix is the result of one pass: per-cell demand-miss counts plus the
// shared access and first-touch totals.
type Matrix struct {
	// LineSize is the pass's line size in bytes.
	LineSize int
	// Accesses is the number of references processed (every cell's
	// hit+miss total).
	Accesses int64
	// Distinct is the number of distinct lines touched — the compulsory
	// (first-touch) miss count, included in every cell's Misses. Counted
	// only when the pass was run with CountDistinct; otherwise 0.
	Distinct int64
	// Cells echoes the grid, parallel to Misses.
	Cells []Cell
	// Misses holds each cell's total demand misses.
	Misses []int64
}

// MissesFor returns the miss count of the cell with the given capacity in
// bytes and associativity, and whether the grid contains it.
func (m *Matrix) MissesFor(sizeBytes, assoc int) (int64, bool) {
	if assoc < 1 || sizeBytes <= 0 {
		return 0, false
	}
	lines := sizeBytes / m.LineSize
	if lines == 0 || lines%assoc != 0 {
		return 0, false
	}
	want := Cell{Sets: lines / assoc, Assoc: assoc}
	for i, c := range m.Cells {
		if c == want {
			return m.Misses[i], true
		}
	}
	return 0, false
}

// Pass configures one sweep over a trace.
type Pass struct {
	// LineSize is the line size in bytes shared by every cell; a power of
	// two.
	LineSize int
	// Cells is the capacity × associativity grid.
	Cells []Cell
	// CountDistinct additionally counts distinct lines (compulsory
	// misses) into Matrix.Distinct; it costs one hash-set probe per
	// reference, so it is off unless a Three-Cs style decomposition needs
	// it.
	CountDistinct bool
	// Ctx, when non-nil, lets a long pass be cancelled: Run polls it every
	// cancelCheckMask+1 references and returns ctx.Err() promptly instead
	// of finishing the trace. Nil runs to completion.
	Ctx context.Context
}

// cancelCheckMask sets the cancellation polling stride (every 64K refs —
// microseconds of work, so cancellation latency stays negligible while the
// hot loop pays one masked compare per reference).
const cancelCheckMask = 1<<16 - 1

// Run is the common case: a miss matrix for cells at lineSize, without
// first-touch counting.
func Run(lineSize int, cells []Cell, refs []trace.Ref) (*Matrix, error) {
	return Pass{LineSize: lineSize, Cells: cells}.Run(refs)
}

// groupCell is one grid cell's slot within its set-count group.
type groupCell struct {
	assoc int
	out   int // index into Matrix.Misses
}

// group aggregates every cell sharing one set count: a single truncated
// recency stack array serves them all.
type group struct {
	mask  uint64 // Sets - 1
	amax  int    // deepest associativity among the group's cells
	stack []uint64
	cells []groupCell
}

// Run executes the pass and returns the miss matrix.
func (p Pass) Run(refs []trace.Ref) (*Matrix, error) {
	m, groups, seen, shift, err := p.prepare()
	if err != nil {
		return nil, err
	}
	for ri, r := range refs {
		if p.Ctx != nil && ri&cancelCheckMask == 0 {
			if err := p.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		la := r.Addr >> shift
		key := la + 1
		if seen != nil && seen.add(key) {
			m.Distinct++
		}
		for _, g := range groups {
			base := int(la&g.mask) * g.amax
			st := g.stack[base : base+g.amax]
			if st[0] == key {
				// Stack distance 1: a hit at every associativity.
				continue
			}
			pos := -1
			for i := 1; i < g.amax; i++ {
				if st[i] == key {
					pos = i
					break
				}
			}
			if pos < 0 {
				// Distance beyond the deepest tracked associativity (or a
				// first touch): a miss in every cell of the group.
				for _, c := range g.cells {
					m.Misses[c.out]++
				}
				copy(st[1:], st[:g.amax-1])
			} else {
				// Stack distance pos+1: cells shallower than that miss.
				for _, c := range g.cells {
					if c.assoc <= pos {
						m.Misses[c.out]++
					}
				}
				copy(st[1:pos+1], st[:pos])
			}
			st[0] = key
		}
		m.Accesses++
	}
	return m, nil
}

// RunSource executes the pass over a streaming trace.Source in O(grid)
// memory — no materialized ref slice — and returns the same miss matrix Run
// produces over the equivalent slice (only instruction fetches are
// counted). It is the degraded-mode path for traces too large for the synth
// store's hard budget: the service layer pairs it with synth.Store.Source's
// streaming regeneration. A source that stops with a non-nil Err fails the
// pass with that error; the partial matrix is discarded.
func (p Pass) RunSource(src trace.Source) (*Matrix, error) {
	m, groups, seen, shift, err := p.prepare()
	if err != nil {
		return nil, err
	}
	var ri int64
	for {
		if p.Ctx != nil && ri&cancelCheckMask == 0 {
			if err := p.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		r, ok := src.Next()
		if !ok {
			if err := src.Err(); err != nil {
				return nil, err
			}
			return m, nil
		}
		ri++
		if r.Kind != trace.IFetch {
			continue
		}
		p.step(m, groups, seen, shift, r.Addr)
	}
}

// prepare validates the pass and builds the per-set-count groups, the
// optional first-touch set, and the line-size shift shared by Run and
// RunSource.
func (p Pass) prepare() (*Matrix, []*group, *lineSet, uint, error) {
	m, groups, seen, shift, err := p.prepareCore()
	if err != nil {
		return nil, nil, nil, 0, err
	}
	for _, g := range groups {
		// Stacks are row-major per set; key 0 marks an empty slot, so line
		// addresses are stored offset by one.
		g.stack = make([]uint64, (int(g.mask)+1)*g.amax)
	}
	return m, groups, seen, shift, nil
}

// prepareCore is prepare without the stack allocation, for passes (the
// sampled sweep) that lay stacks out differently.
func (p Pass) prepareCore() (*Matrix, []*group, *lineSet, uint, error) {
	if p.LineSize <= 0 || p.LineSize&(p.LineSize-1) != 0 {
		return nil, nil, nil, 0, fmt.Errorf("sweep: line size %d must be a positive power of two", p.LineSize)
	}
	if len(p.Cells) == 0 {
		return nil, nil, nil, 0, fmt.Errorf("sweep: empty cell grid")
	}
	m := &Matrix{
		LineSize: p.LineSize,
		Cells:    append([]Cell(nil), p.Cells...),
		Misses:   make([]int64, len(p.Cells)),
	}
	bySets := make(map[int]*group)
	var groups []*group
	for i, c := range p.Cells {
		if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
			return nil, nil, nil, 0, fmt.Errorf("sweep: cell %d: set count %d must be a positive power of two", i, c.Sets)
		}
		if c.Assoc < 1 {
			return nil, nil, nil, 0, fmt.Errorf("sweep: cell %d: associativity %d must be >= 1", i, c.Assoc)
		}
		g, ok := bySets[c.Sets]
		if !ok {
			g = &group{mask: uint64(c.Sets - 1)}
			bySets[c.Sets] = g
			groups = append(groups, g)
		}
		if c.Assoc > g.amax {
			g.amax = c.Assoc
		}
		g.cells = append(g.cells, groupCell{assoc: c.Assoc, out: i})
	}
	var seen *lineSet
	if p.CountDistinct {
		seen = newLineSet()
	}
	var shift uint
	for v := p.LineSize; v > 1; v >>= 1 {
		shift++
	}
	return m, groups, seen, shift, nil
}

// step settles one instruction fetch for every grid cell — the shared
// per-reference body of RunSource (Run keeps its own inlined copy: the
// materialized path is the benchmarked hot loop).
func (p Pass) step(m *Matrix, groups []*group, seen *lineSet, shift uint, addr uint64) {
	la := addr >> shift
	key := la + 1
	if seen != nil && seen.add(key) {
		m.Distinct++
	}
	for _, g := range groups {
		base := int(la&g.mask) * g.amax
		st := g.stack[base : base+g.amax]
		if st[0] == key {
			continue
		}
		pos := -1
		for i := 1; i < g.amax; i++ {
			if st[i] == key {
				pos = i
				break
			}
		}
		if pos < 0 {
			for _, c := range g.cells {
				m.Misses[c.out]++
			}
			copy(st[1:], st[:g.amax-1])
		} else {
			for _, c := range g.cells {
				if c.assoc <= pos {
					m.Misses[c.out]++
				}
			}
			copy(st[1:pos+1], st[:pos])
		}
		st[0] = key
	}
	m.Accesses++
}

// lineSet is a minimal open-addressing hash set over non-zero uint64 keys,
// used for first-touch counting without per-access map overhead.
type lineSet struct {
	tab  []uint64
	n    int
	mask uint64
}

func newLineSet() *lineSet {
	const initial = 1 << 10
	return &lineSet{tab: make([]uint64, initial), mask: initial - 1}
}

// add inserts key (non-zero) and reports whether it was absent.
func (s *lineSet) add(key uint64) bool {
	i := (key * 0x9e3779b97f4a7c15) & s.mask
	for {
		switch s.tab[i] {
		case key:
			return false
		case 0:
			s.tab[i] = key
			s.n++
			if 4*s.n > 3*len(s.tab) {
				s.grow()
			}
			return true
		}
		i = (i + 1) & s.mask
	}
}

func (s *lineSet) grow() {
	old := s.tab
	s.tab = make([]uint64, 2*len(old))
	s.mask = uint64(len(s.tab) - 1)
	s.n = 0
	for _, k := range old {
		if k != 0 {
			s.add(k)
		}
	}
}
