package sweep

import (
	"context"
	"math"
	"testing"

	"ibsim/internal/synth"
	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

func testRuns(t *testing.T, name string, seed uint64, n int64) []trace.Run {
	t.Helper()
	p, err := synth.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := synth.InstrTrace(p, seed, n)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Compact(refs)
}

func sampledGrid() []Cell {
	return []Cell{
		{Sets: 32, Assoc: 1}, {Sets: 64, Assoc: 1}, {Sets: 256, Assoc: 1},
		{Sets: 1024, Assoc: 1}, {Sets: 64, Assoc: 2}, {Sets: 256, Assoc: 4},
	}
}

// A sampled pass with no sampling dimensions enabled is the exact sweep:
// misses bit-identical to Pass.Run over the expanded trace, CI 0.
func TestSampledExhaustiveBitIdentical(t *testing.T) {
	for _, name := range []string{"gs", "sdet", "mpeg_play"} {
		runs := testRuns(t, name, 7, 150_000)
		refs := trace.Expand(runs)
		exact, err := Pass{LineSize: 32, Cells: sampledGrid(), CountDistinct: true}.Run(refs)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := SampledPass{LineSize: 32, Cells: sampledGrid(), CountDistinct: true}.Run(runs)
		if err != nil {
			t.Fatal(err)
		}
		if sm.SampledInstructions != exact.Accesses || sm.TotalInstructions != exact.Accesses {
			t.Fatalf("%s: sampled %d/%d instructions, exact %d", name,
				sm.SampledInstructions, sm.TotalInstructions, exact.Accesses)
		}
		if sm.Distinct != exact.Distinct {
			t.Fatalf("%s: distinct %d, exact %d", name, sm.Distinct, exact.Distinct)
		}
		for i := range sm.Misses {
			if sm.Misses[i] != exact.Misses[i] {
				t.Fatalf("%s cell %d: sampled %d misses, exact %d", name, i, sm.Misses[i], exact.Misses[i])
			}
			est := sm.Estimates[i]
			if est.CI95 != 0 || est.Coverage != 1 {
				t.Fatalf("%s cell %d: exhaustive estimate has CI %v coverage %v", name, i, est.CI95, est.Coverage)
			}
			want := float64(exact.Misses[i]) / float64(exact.Accesses)
			if math.Abs(est.MPI-want) > 1e-12 {
				t.Fatalf("%s cell %d: MPI %v, want %v", name, i, est.MPI, want)
			}
		}
	}
}

// Window == Period measures everything: still bit-identical to exact.
func TestSampledFullWindowBitIdentical(t *testing.T) {
	runs := testRuns(t, "gs", 3, 100_000)
	exact, err := Pass{LineSize: 32, Cells: sampledGrid()}.Run(trace.Expand(runs))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := SampledPass{LineSize: 32, Cells: sampledGrid(), Window: 5000, Period: 5000, Warm: true}.Run(runs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sm.Misses {
		if sm.Misses[i] != exact.Misses[i] {
			t.Fatalf("cell %d: %d misses, exact %d", i, sm.Misses[i], exact.Misses[i])
		}
	}
	if sm.Coverage() != 1 {
		t.Fatalf("coverage %v", sm.Coverage())
	}
}

// Set sampling is exact within the sampled subset: the measured misses must
// be bit-identical to an exact sweep over only the matching lines, for every
// geometry with Sets >= SetMod.
func TestSampledSetSubsetExact(t *testing.T) {
	rng := xrand.New(0x5e7)
	for trial := 0; trial < 4; trial++ {
		mod := 4 << rng.Intn(3) // 4, 8, 16
		match := rng.Intn(mod)
		runs := testRuns(t, []string{"gs", "jpeg_play"}[trial%2], rng.Uint64(), 120_000)
		refs := trace.Expand(runs)
		cells := []Cell{
			{Sets: mod, Assoc: 1}, {Sets: 4 * mod, Assoc: 2}, {Sets: 64 * mod, Assoc: 1},
		}
		// Reference: exact sweep over only the sampled congruence class.
		var filtered []trace.Ref
		for _, r := range refs {
			if int(r.Addr>>5)&(mod-1) == match {
				filtered = append(filtered, r)
			}
		}
		exact, err := Pass{LineSize: 32, Cells: cells}.Run(filtered)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := SampledPass{LineSize: 32, Cells: cells, SetMod: mod, SetMatch: match}.Run(runs)
		if err != nil {
			t.Fatal(err)
		}
		if sm.SampledInstructions != exact.Accesses {
			t.Fatalf("trial %d: sampled %d instructions, subset has %d", trial, sm.SampledInstructions, exact.Accesses)
		}
		for i := range sm.Misses {
			if sm.Misses[i] != exact.Misses[i] {
				t.Fatalf("trial %d (mod %d match %d) cell %d: sampled %d misses, subset-exact %d",
					trial, mod, match, i, sm.Misses[i], exact.Misses[i])
			}
		}
		for i, est := range sm.Estimates {
			if est.CI95 <= 0 {
				t.Fatalf("trial %d cell %d: set-sampled estimate has no interval: %+v", trial, i, est)
			}
			if math.Abs(est.Coverage-1/float64(mod)) > 0.2/float64(mod) {
				t.Fatalf("trial %d cell %d: coverage %v, want ~1/%d", trial, i, est.Coverage, mod)
			}
		}
	}
}

// Satellite: sampled rows still satisfy the sweep invariants within their
// subset — misses never increase with associativity at fixed sets, nor with
// sets at fixed associativity (generalized stack inclusion holds per set, so
// it holds on any whole-set subset).
func TestSampledSubsetInvariants(t *testing.T) {
	sets := []int{16, 32, 64, 128, 256, 512}
	assocs := []int{1, 2, 4}
	var cells []Cell
	for _, s := range sets {
		for _, a := range assocs {
			cells = append(cells, Cell{Sets: s, Assoc: a})
		}
	}
	idx := func(si, ai int) int { return si*len(assocs) + ai }
	for _, name := range []string{"gs", "sdet", "verilog"} {
		runs := testRuns(t, name, 11, 150_000)
		sm, err := SampledPass{LineSize: 32, Cells: cells, SetMod: 16, SetMatch: 5}.Run(runs)
		if err != nil {
			t.Fatal(err)
		}
		for si := range sets {
			for ai := range assocs {
				if ai > 0 {
					lo, hi := sm.Misses[idx(si, ai)], sm.Misses[idx(si, ai-1)]
					if lo > hi {
						t.Errorf("%s: misses increased with associativity at %d sets: %d-way %d > %d-way %d",
							name, sets[si], assocs[ai], lo, assocs[ai-1], hi)
					}
				}
				if si > 0 {
					lo, hi := sm.Misses[idx(si, ai)], sm.Misses[idx(si-1, ai)]
					if lo > hi {
						t.Errorf("%s: misses increased with sets at %d-way: %d sets %d > %d sets %d",
							name, assocs[ai], sets[si], lo, sets[si-1], hi)
					}
				}
			}
		}
	}
}

// Warm time sampling tracks the exact MPI more closely than skipping
// unmeasured spans (which leaves stacks stale), and both report honest
// coverage.
func TestSampledTimeWarmVsSkip(t *testing.T) {
	runs := testRuns(t, "gs", 0, 400_000)
	cells := []Cell{{Sets: 256, Assoc: 1}}
	exact, err := Pass{LineSize: 32, Cells: cells}.Run(trace.Expand(runs))
	if err != nil {
		t.Fatal(err)
	}
	exactMPI := float64(exact.Misses[0]) / float64(exact.Accesses)
	warm, err := SampledPass{LineSize: 32, Cells: cells, Window: 5_000, Period: 20_000, Warm: true}.Run(runs)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := SampledPass{LineSize: 32, Cells: cells, Window: 5_000, Period: 20_000}.Run(runs)
	if err != nil {
		t.Fatal(err)
	}
	warmErr := math.Abs(warm.Estimates[0].MPI - exactMPI)
	skipErr := math.Abs(skip.Estimates[0].MPI - exactMPI)
	if warmErr > 0.1*exactMPI {
		t.Fatalf("warm sampling off by %.1f%% of exact", 100*warmErr/exactMPI)
	}
	if skipErr < warmErr {
		t.Logf("note: skip (%.4g) beat warm (%.4g) on this seed", skipErr, warmErr)
	}
	for _, sm := range []*SampledMatrix{warm, skip} {
		if c := sm.Coverage(); math.Abs(c-0.25) > 0.01 {
			t.Fatalf("coverage %v, want ~0.25", c)
		}
		if sm.Estimates[0].Clusters < 10 {
			t.Fatalf("only %d window clusters", sm.Estimates[0].Clusters)
		}
	}
	if !warm.Estimates[0].Contains(exactMPI) && warmErr > 2*warm.Estimates[0].CI95 {
		t.Fatalf("exact MPI %v far outside warm interval %v ± %v", exactMPI, warm.Estimates[0].MPI, warm.Estimates[0].CI95)
	}
}

func TestSampledValidation(t *testing.T) {
	runs := testRuns(t, "gs", 0, 1000)
	cells := []Cell{{Sets: 64, Assoc: 1}}
	for _, p := range []SampledPass{
		{LineSize: 2, Cells: cells},                            // line < instruction
		{LineSize: 32, Cells: cells, SetMod: 3},                // non-power-of-two mod
		{LineSize: 32, Cells: cells, SetMod: 16, SetMatch: 16}, // match out of range
		{LineSize: 32, Cells: cells, SetMod: 128},              // mod > sets
		{LineSize: 32, Cells: cells, SetMatch: 3},              // match without mod
		{LineSize: 32, Cells: cells, Period: 100},              // period without window
		{LineSize: 32, Cells: cells, Window: 200, Period: 100}, // window > period
		{LineSize: 32, Cells: nil},                             // empty grid
		{LineSize: 33, Cells: cells},                           // non-power-of-two line
	} {
		if _, err := p.Run(runs); err == nil {
			t.Errorf("invalid pass %+v accepted", p)
		}
	}
}

func TestSampledCancellation(t *testing.T) {
	runs := testRuns(t, "gs", 0, 50_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (SampledPass{LineSize: 32, Cells: sampledGrid(), Ctx: ctx}).Run(runs); err == nil {
		t.Fatal("cancelled pass completed")
	}
}

// The estimator's honesty on this grid: at 1/16 set sampling the exact MPI
// should fall inside the stated 95% interval for the strong majority of
// cells (the full nominal-rate check lives in internal/check SamplingBounds).
func TestSampledSetEstimateCoversExact(t *testing.T) {
	runs := testRuns(t, "mpeg_play", 2, 200_000)
	refs := trace.Expand(runs)
	cells := []Cell{{Sets: 256, Assoc: 1}, {Sets: 512, Assoc: 1}, {Sets: 1024, Assoc: 1}, {Sets: 512, Assoc: 2}}
	exact, err := Pass{LineSize: 32, Cells: cells}.Run(refs)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := SampledPass{LineSize: 32, Cells: cells, SetMod: 16, SetMatch: 9}.Run(runs)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range cells {
		exactMPI := float64(exact.Misses[i]) / float64(exact.Accesses)
		if sm.Estimates[i].Contains(exactMPI) {
			hits++
		}
	}
	if hits < len(cells)-1 {
		t.Fatalf("exact MPI inside CI for only %d/%d cells", hits, len(cells))
	}
}
