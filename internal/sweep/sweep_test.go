package sweep

import (
	"context"
	"errors"
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

// replayMisses simulates one configuration through the trusted cache model.
func replayMisses(t *testing.T, cfg cache.Config, refs []trace.Ref) int64 {
	t.Helper()
	c, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		c.Access(r.Addr)
	}
	return c.Stats().Misses
}

func testRefs(t *testing.T, n int64) []trace.Ref {
	t.Helper()
	p, err := synth.Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	refs, err := synth.InstrTrace(p, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	return refs
}

func TestMatrixMatchesPerConfigReplay(t *testing.T) {
	refs := testRefs(t, 200_000)
	for _, lineSize := range []int{8, 32, 256} {
		var cells []Cell
		for _, kb := range []int{4, 16, 64} {
			for _, a := range []int{1, 2, 8} {
				lines := kb * 1024 / lineSize
				cells = append(cells, Cell{Sets: lines / a, Assoc: a})
			}
		}
		m, err := Run(lineSize, cells, refs)
		if err != nil {
			t.Fatal(err)
		}
		if m.Accesses != int64(len(refs)) {
			t.Fatalf("accesses %d, want %d", m.Accesses, len(refs))
		}
		for i, c := range cells {
			cfg := cache.Config{Size: c.Size(lineSize), LineSize: lineSize, Assoc: c.Assoc}
			want := replayMisses(t, cfg, refs)
			if m.Misses[i] != want {
				t.Errorf("line %d cell %+v: sweep %d misses, cache replay %d", lineSize, c, m.Misses[i], want)
			}
		}
	}
}

func TestFullyAssociativeCell(t *testing.T) {
	refs := testRefs(t, 50_000)
	const lineSize = 32
	lines := 2048 / lineSize
	m, err := Run(lineSize, []Cell{{Sets: 1, Assoc: lines}}, refs)
	if err != nil {
		t.Fatal(err)
	}
	want := replayMisses(t, cache.Config{Size: 2048, LineSize: lineSize, Assoc: 0}, refs)
	if m.Misses[0] != want {
		t.Fatalf("fully-associative: sweep %d, replay %d", m.Misses[0], want)
	}
}

func TestCountDistinct(t *testing.T) {
	refs := testRefs(t, 100_000)
	const lineSize = 32
	p := Pass{LineSize: lineSize, Cells: []Cell{{Sets: 256, Assoc: 1}}, CountDistinct: true}
	m, err := p.Run(refs)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]struct{}{}
	for _, r := range refs {
		seen[r.Addr>>5] = struct{}{}
	}
	if m.Distinct != int64(len(seen)) {
		t.Fatalf("distinct %d, want %d", m.Distinct, len(seen))
	}
	// Compulsory misses are a lower bound for every cell.
	if m.Misses[0] < m.Distinct {
		t.Fatalf("misses %d below compulsory floor %d", m.Misses[0], m.Distinct)
	}
}

func TestMissesFor(t *testing.T) {
	refs := testRefs(t, 10_000)
	cells := []Cell{{Sets: 256, Assoc: 1}, {Sets: 128, Assoc: 8}}
	m, err := Run(32, cells, refs)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := m.MissesFor(8192, 1); !ok || got != m.Misses[0] {
		t.Fatalf("MissesFor(8192,1) = %d,%v", got, ok)
	}
	if got, ok := m.MissesFor(32768, 8); !ok || got != m.Misses[1] {
		t.Fatalf("MissesFor(32768,8) = %d,%v", got, ok)
	}
	if _, ok := m.MissesFor(4096, 1); ok {
		t.Fatal("MissesFor reported a cell the grid does not contain")
	}
}

func TestRunValidation(t *testing.T) {
	refs := testRefs(t, 10)
	for _, tc := range []struct {
		name string
		pass Pass
	}{
		{"line not power of two", Pass{LineSize: 24, Cells: []Cell{{Sets: 4, Assoc: 1}}}},
		{"zero line", Pass{LineSize: 0, Cells: []Cell{{Sets: 4, Assoc: 1}}}},
		{"no cells", Pass{LineSize: 32}},
		{"sets not power of two", Pass{LineSize: 32, Cells: []Cell{{Sets: 3, Assoc: 1}}}},
		{"zero assoc", Pass{LineSize: 32, Cells: []Cell{{Sets: 4, Assoc: 0}}}},
	} {
		if _, err := tc.pass.Run(refs); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestRandomizedGrids cross-checks random geometries on random synthetic
// address streams (not just instruction traces).
func TestRandomizedGrids(t *testing.T) {
	rng := xrand.New(7)
	refs := make([]trace.Ref, 60_000)
	for i := range refs {
		// A mix of sequential runs and jumps keeps all distances exercised.
		if i > 0 && rng.Intn(4) != 0 {
			refs[i].Addr = refs[i-1].Addr + 4
		} else {
			refs[i].Addr = uint64(rng.Intn(1 << 18))
		}
		refs[i].Kind = trace.IFetch
	}
	lineSizes := []int{4, 16, 64}
	for trial := 0; trial < 6; trial++ {
		lineSize := lineSizes[trial%len(lineSizes)]
		var cells []Cell
		for len(cells) < 5 {
			sets := 1 << rng.Intn(10)
			assoc := 1 << rng.Intn(4)
			cells = append(cells, Cell{Sets: sets, Assoc: assoc})
		}
		m, err := Run(lineSize, cells, refs)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cells {
			cfg := cache.Config{Size: c.Size(lineSize), LineSize: lineSize, Assoc: c.Assoc}
			want := replayMisses(t, cfg, refs)
			if m.Misses[i] != want {
				t.Errorf("trial %d line %d cell %+v: sweep %d, replay %d", trial, lineSize, c, m.Misses[i], want)
			}
		}
	}
}

func BenchmarkSweepFigure3Grid(b *testing.B) {
	p, err := synth.Lookup("gs")
	if err != nil {
		b.Fatal(err)
	}
	refs, err := synth.InstrTrace(p, 0, 500_000)
	if err != nil {
		b.Fatal(err)
	}
	var cells []Cell
	for _, kb := range []int{16, 32, 64, 128, 256} {
		cells = append(cells, Cell{Sets: kb * 1024 / 64, Assoc: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(64, cells, refs); err != nil {
			b.Fatal(err)
		}
	}
}

// A cancelled pass context stops Run promptly with the context error; a
// live context changes nothing about the result.
func TestRunHonorsContext(t *testing.T) {
	refs := testRefs(t, 200_000)
	cells := []Cell{{Sets: 256, Assoc: 1}, {Sets: 64, Assoc: 4}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Pass{LineSize: 32, Cells: cells, Ctx: ctx}.Run(refs)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pass: err = %v, want context.Canceled", err)
	}

	want, err := Run(32, cells, refs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Pass{LineSize: 32, Cells: cells, Ctx: context.Background()}.Run(refs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Misses {
		if got.Misses[i] != want.Misses[i] {
			t.Fatalf("cell %d: ctx run %d misses, plain run %d", i, got.Misses[i], want.Misses[i])
		}
	}
}

// RunSource must agree exactly with Run on the same stream: the streaming
// path is the degraded-mode fallback and may not change any number.
func TestRunSourceMatchesRun(t *testing.T) {
	refs := testRefs(t, 150_000)
	p := Pass{
		LineSize:      32,
		Cells:         []Cell{{Sets: 64, Assoc: 1}, {Sets: 256, Assoc: 2}, {Sets: 1024, Assoc: 4}},
		CountDistinct: true,
	}
	want, err := p.Run(refs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RunSource(trace.NewSliceSource(refs))
	if err != nil {
		t.Fatal(err)
	}
	if got.Accesses != want.Accesses || got.Distinct != want.Distinct {
		t.Fatalf("totals differ: %d/%d vs %d/%d", got.Accesses, got.Distinct, want.Accesses, want.Distinct)
	}
	for i := range want.Misses {
		if got.Misses[i] != want.Misses[i] {
			t.Errorf("cell %d: streamed %d misses, materialized %d", i, got.Misses[i], want.Misses[i])
		}
	}
}

// errAfterSource fails the stream after n refs.
type errAfterSource struct {
	refs []trace.Ref
	n    int
	i    int
	err  error
}

func (s *errAfterSource) Next() (trace.Ref, bool) {
	if s.i >= s.n {
		return trace.Ref{}, false
	}
	r := s.refs[s.i]
	s.i++
	return r, true
}

func (s *errAfterSource) Err() error {
	if s.i >= s.n {
		return s.err
	}
	return nil
}

// A source error must abort RunSource with that error, not a silent
// partial matrix.
func TestRunSourcePropagatesSourceError(t *testing.T) {
	refs := testRefs(t, 10_000)
	boom := errors.New("sweep test: injected stream failure")
	p := Pass{LineSize: 32, Cells: []Cell{{Sets: 64, Assoc: 1}}}
	_, err := p.RunSource(&errAfterSource{refs: refs, n: 5_000, err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected cause", err)
	}
}

// Cancellation mid-stream aborts RunSource with the context's error.
func TestRunSourceCancellation(t *testing.T) {
	refs := testRefs(t, 400_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Pass{LineSize: 32, Cells: []Cell{{Sets: 64, Assoc: 1}}, Ctx: ctx}
	if _, err := p.RunSource(trace.NewSliceSource(refs)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// RunSource applies the same validation as Run.
func TestRunSourceValidation(t *testing.T) {
	p := Pass{LineSize: 33, Cells: []Cell{{Sets: 64, Assoc: 1}}}
	if _, err := p.RunSource(trace.NewSliceSource(nil)); err == nil {
		t.Fatal("line size 33 accepted")
	}
	p = Pass{LineSize: 32}
	if _, err := p.RunSource(trace.NewSliceSource(nil)); err == nil {
		t.Fatal("empty grid accepted")
	}
}
