package sweep

import (
	"fmt"

	"ibsim/internal/trace"
)

// Streaming and seek-accelerated sampled sweeps.
//
// RunSource is the streaming twin of SampledPass.Run: it consumes a
// per-reference source, compacting on the fly, so a trace too large to
// materialize even as runs can still be sampled — at the cost of generating
// every instruction, measured or not.
//
// RunSeek removes that cost for skip-mode time sampling: the measured
// windows are a fixed schedule known up front, so with a seekable source
// (synth.SeekSource over a checkpointed generator) the pass jumps straight
// from window start to window start and generates ONLY the measured
// instructions. Work becomes O(sampled refs + windows · checkpoint
// interval) instead of O(n). Both produce matrices bit-identical to
// Run over the equivalent run-compacted trace: the line-granular touch
// machinery is segmentation-invariant, so how the measured instruction
// sequence is cut into sequential spans cannot change any counter.

// RunSource executes the sampled pass over a streaming per-reference
// source, run-compacting on the fly. Results are bit-identical to
// Run(trace.Compact(refs)); data references are ignored as always. The
// full-trace length is whatever the source yields.
func (p SampledPass) RunSource(src trace.Source) (*SampledMatrix, error) {
	st, timeSample, err := p.prepare()
	if err != nil {
		return nil, err
	}
	var cur trace.Run
	var next uint64
	var pos int64
	buf := make([]trace.Run, 0, 512)
	flush := func() error {
		pos, err = p.feed(st, buf, pos, timeSample)
		buf = buf[:0]
		return err
	}
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.Kind != trace.IFetch {
			continue
		}
		if cur.Len > 0 && r.Addr == next && r.Domain == cur.Domain && next != 0 {
			cur.Len++
			next += trace.InstrBytes
			continue
		}
		if cur.Len > 0 {
			buf = append(buf, cur)
			if len(buf) == cap(buf) {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		cur = trace.Run{Start: r.Addr, Len: 1, Domain: r.Domain}
		next = r.Addr + trace.InstrBytes
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	if cur.Len > 0 {
		buf = append(buf, cur)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	st.closeWindow()
	return p.assemble(st, pos), nil
}

// RunSeek executes a skip-mode time-sampled pass over a seekable source,
// visiting only the measured windows. It requires time sampling with
// Warm == false: warm mode must walk the skipped spans (that is its entire
// point), and set-only sampling measures every instruction — in both cases
// seeking cannot skip anything. Set sampling composed WITH skip-mode time
// sampling is fine. Results are bit-identical to Run over the same trace.
func (p SampledPass) RunSeek(src trace.Seeker) (*SampledMatrix, error) {
	st, timeSample, err := p.prepare()
	if err != nil {
		return nil, err
	}
	if !timeSample {
		return nil, fmt.Errorf("sweep: RunSeek requires time sampling with window < period")
	}
	if p.Warm {
		return nil, fmt.Errorf("sweep: RunSeek cannot functionally warm (warm mode must walk skipped spans; use Run or RunSource)")
	}
	total := src.Total()
	for wstart := int64(0); wstart < total; wstart += p.Period {
		if p.Ctx != nil {
			if err := p.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := src.SeekTo(wstart); err != nil {
			return nil, err
		}
		if win := wstart / p.Period; win != st.curWin {
			st.closeWindow()
			st.curWin = win
		}
		wend := wstart + p.Window
		if wend > total {
			wend = total
		}
		// Coalesce the window's refs into maximal sequential spans; the
		// touch machinery makes any span segmentation equivalent.
		var cur trace.Run
		var next uint64
		for i := wstart; i < wend; i++ {
			r, ok := src.Next()
			if !ok {
				return nil, fmt.Errorf("sweep: seekable source ended at instruction %d of %d", i, total)
			}
			if cur.Len > 0 && r.Addr == next && r.Domain == cur.Domain && next != 0 {
				cur.Len++
				next += trace.InstrBytes
				continue
			}
			if cur.Len > 0 {
				st.span(cur.Start, cur.Len, true)
			}
			cur = trace.Run{Start: r.Addr, Len: 1, Domain: r.Domain}
			next = r.Addr + trace.InstrBytes
		}
		if cur.Len > 0 {
			st.span(cur.Start, cur.Len, true)
		}
	}
	st.closeWindow()
	return p.assemble(st, total), nil
}
