package sweep

import (
	"reflect"
	"testing"

	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

func seekSource(t *testing.T, name string, seed uint64, n int64, every int64) *synth.SeekSource {
	t.Helper()
	p, err := synth.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	var ix *synth.CheckpointIndex
	if every > 0 {
		ix = synth.NewCheckpointIndex(every)
	}
	src, err := synth.NewSeekSource(p, seed, n, ix)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// RunSource must be bit-identical to Run over the compacted trace for every
// sampling mode, since it is the streaming baseline the seek path is
// differentially checked against.
func TestSampledRunSourceMatchesRun(t *testing.T) {
	runs := testRuns(t, "gs", 11, 120_000)
	passes := []SampledPass{
		{LineSize: 32, Cells: sampledGrid(), CountDistinct: true},
		{LineSize: 32, Cells: sampledGrid(), SetMod: 8, SetMatch: 3},
		{LineSize: 32, Cells: sampledGrid(), Window: 2000, Period: 16_000, Warm: true},
		{LineSize: 32, Cells: sampledGrid(), Window: 2000, Period: 16_000},
	}
	for pi, p := range passes {
		want, err := p.Run(runs)
		if err != nil {
			t.Fatal(err)
		}
		src, err := synth.InstrSource(mustProfile(t, "gs"), 11, 120_000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.RunSource(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: RunSource diverged from Run:\n got %+v\nwant %+v", pi, got, want)
		}
	}
}

func mustProfile(t *testing.T, name string) synth.Profile {
	t.Helper()
	p, err := synth.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// RunSeek over a seekable source must be bit-identical to Run over the
// compacted trace for skip-mode time sampling — with and without a
// checkpoint index, on window-aligned and ragged trace lengths, and with
// set sampling composed in.
func TestSampledRunSeekMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name  string
		seed  uint64
		n     int64
		every int64
		pass  SampledPass
	}{
		{"gs", 11, 120_000, 0, SampledPass{LineSize: 32, Cells: sampledGrid(), Window: 2000, Period: 16_000, CountDistinct: true}},
		{"gs", 11, 120_000, 4096, SampledPass{LineSize: 32, Cells: sampledGrid(), Window: 2000, Period: 16_000, CountDistinct: true}},
		{"sdet", 5, 99_123, 1024, SampledPass{LineSize: 32, Cells: sampledGrid(), Window: 1000, Period: 8000}},
		{"mpeg_play", 2, 64_000, 4096, SampledPass{LineSize: 64, Cells: sampledGrid(), Window: 512, Period: 4096, SetMod: 4, SetMatch: 1}},
	} {
		runs := testRuns(t, tc.name, tc.seed, tc.n)
		want, err := tc.pass.Run(runs)
		if err != nil {
			t.Fatal(err)
		}
		src := seekSource(t, tc.name, tc.seed, tc.n, tc.every)
		got, err := tc.pass.RunSeek(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s/%d every=%d: RunSeek diverged from Run:\n got %+v\nwant %+v",
				tc.name, tc.n, tc.every, got, want)
		}
	}
}

// RunSeek refuses plans it cannot honor without walking skipped spans.
func TestSampledRunSeekValidation(t *testing.T) {
	src := seekSource(t, "gs", 1, 10_000, 0)
	for _, p := range []SampledPass{
		{LineSize: 32, Cells: sampledGrid()},                                        // no time sampling
		{LineSize: 32, Cells: sampledGrid(), SetMod: 8, SetMatch: 1},                // set-only
		{LineSize: 32, Cells: sampledGrid(), Window: 500, Period: 500},              // full window
		{LineSize: 32, Cells: sampledGrid(), Window: 500, Period: 4000, Warm: true}, // warm
	} {
		if _, err := p.RunSeek(src); err == nil {
			t.Fatalf("RunSeek accepted plan %+v", p)
		}
	}
}

// A seek-mode pass must also agree when driven through the store tier, whose
// SeekSource shares the memoized checkpoint index across passes.
func TestSampledRunSeekThroughStore(t *testing.T) {
	st := synth.NewStore(16 << 20)
	defer st.Purge()
	st.SetCheckpointEvery(2048)
	prof := mustProfile(t, "verilog")
	const n = 80_000
	runs := testRuns(t, "verilog", 9, n)
	pass := SampledPass{LineSize: 32, Cells: sampledGrid(), Window: 1000, Period: 8000}
	want, err := pass.Run(runs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second pass hits a warm index
		src, done, err := st.SeekSource(prof, 9, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pass.RunSeek(src)
		done()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: store-backed RunSeek diverged from Run", i)
		}
	}
	if s := st.Stats(); s.Checkpoints == 0 {
		t.Fatalf("store recorded no checkpoints: %+v", s)
	}
}

var _ trace.Seeker = (*synth.SeekSource)(nil)
