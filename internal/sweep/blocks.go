package sweep

import "ibsim/internal/trace"

// Block-granular sweep entry points: the same matrices Run and SampledRun
// produce, computed from a trace.BlockSource (a columnar file via mmap, or
// any block-sliced trace) one block at a time. Live memory is one decoded
// block plus the O(grid) stacks, independent of trace length — the path the
// service's columnar-disk degradation tier rides when a workload's run list
// exceeds the synth store's RAM budget but its columnar file fits on disk.

// RunBlocks executes the pass over a block-granular trace and returns the
// same miss matrix Run produces over the equivalent expanded refs (every
// run instruction is an instruction fetch).
func (p Pass) RunBlocks(bs trace.BlockSource) (*Matrix, error) {
	m, groups, seen, shift, err := p.prepare()
	if err != nil {
		return nil, err
	}
	var buf []trace.Run
	var ri int64
	nb := bs.NumBlocks()
	for b := 0; b < nb; b++ {
		if p.Ctx != nil {
			if err := p.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		if buf, err = bs.BlockRuns(b, buf); err != nil {
			return nil, err
		}
		for _, r := range buf {
			addr := r.Start
			for j := int64(0); j < r.Len; j++ {
				if p.Ctx != nil && ri&cancelCheckMask == 0 {
					if err := p.Ctx.Err(); err != nil {
						return nil, err
					}
				}
				ri++
				p.step(m, groups, seen, shift, addr)
				addr += trace.InstrBytes
			}
		}
	}
	return m, nil
}

// RunBlocks executes the sampled pass over a block-granular trace. The
// matrix is identical to Run over the concatenated runs: the set-only fast
// path feeds runSetOnly one block at a time (its state is all in the
// stacks), and the time/exhaustive path feeds the shared chunk driver with
// the absolute position carried across blocks.
func (p SampledPass) RunBlocks(bs trace.BlockSource) (*SampledMatrix, error) {
	st, timeSample, err := p.prepare()
	if err != nil {
		return nil, err
	}
	var buf []trace.Run
	var pos int64
	nb := bs.NumBlocks()
	if !timeSample && st.mod > 1 {
		for b := 0; b < nb; b++ {
			if p.Ctx != nil {
				if err := p.Ctx.Err(); err != nil {
					return nil, err
				}
			}
			if buf, err = bs.BlockRuns(b, buf); err != nil {
				return nil, err
			}
			n, err := st.runSetOnly(buf, p.Ctx)
			if err != nil {
				return nil, err
			}
			pos += n
		}
		return p.assemble(st, pos), nil
	}
	for b := 0; b < nb; b++ {
		if p.Ctx != nil {
			if err := p.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		if buf, err = bs.BlockRuns(b, buf); err != nil {
			return nil, err
		}
		if pos, err = p.feed(st, buf, pos, timeSample); err != nil {
			return nil, err
		}
	}
	st.closeWindow()
	return p.assemble(st, pos), nil
}
