package sampling

import (
	"errors"
	"math"
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

func TestEstimateFromBasics(t *testing.T) {
	clusters := []Cluster{
		{Instructions: 1000, Misses: 50},
		{Instructions: 1000, Misses: 60},
		{Instructions: 1000, Misses: 40},
		{Instructions: 1000, Misses: 55},
	}
	e := EstimateFrom(clusters, 16_000, 0.25)
	if got, want := e.MPI, 205.0/4000.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MPI = %v, want %v", got, want)
	}
	if e.CI95 <= 0 {
		t.Fatalf("CI95 = %v, want > 0 for a non-exhaustive varying sample", e.CI95)
	}
	if e.Clusters != 4 || e.SampledInstructions != 4000 || e.SampledMisses != 205 {
		t.Fatalf("totals wrong: %+v", e)
	}
	if math.Abs(e.Coverage-0.25) > 1e-12 {
		t.Fatalf("coverage = %v", e.Coverage)
	}
	if !e.Contains(e.MPI) {
		t.Fatal("interval excludes its own center")
	}
	if e.RelCI95() <= 0 {
		t.Fatal("relative CI not positive")
	}
}

func TestEstimateFromExhaustiveHasNoError(t *testing.T) {
	clusters := []Cluster{
		{Instructions: 500, Misses: 10},
		{Instructions: 500, Misses: 90},
	}
	e := EstimateFrom(clusters, 1000, 1)
	if e.CI95 != 0 {
		t.Fatalf("exhaustive sample CI95 = %v, want 0", e.CI95)
	}
	if e.Coverage != 1 {
		t.Fatalf("coverage = %v", e.Coverage)
	}
}

func TestEstimateFromSingleClusterConservative(t *testing.T) {
	e := EstimateFrom([]Cluster{{Instructions: 100, Misses: 7}}, 1000, 0.1)
	if e.CI95 != e.MPI {
		t.Fatalf("single-cluster CI95 = %v, want ±100%% (= MPI %v)", e.CI95, e.MPI)
	}
}

func TestEstimateFromEmpty(t *testing.T) {
	e := EstimateFrom(nil, 1000, 0.1)
	if e.MPI != 0 || e.CI95 != 0 || e.Clusters != 0 {
		t.Fatalf("empty estimate non-zero: %+v", e)
	}
	// Zero-size clusters are ignored, not divided by.
	e = EstimateFrom([]Cluster{{Instructions: 0, Misses: 5}}, 1000, 0.1)
	if e.Clusters != 0 || e.MPI != 0 {
		t.Fatalf("zero-size cluster counted: %+v", e)
	}
}

func TestEstimateCIShrinksWithClusters(t *testing.T) {
	// Same per-cluster dispersion, more clusters: the interval must tighten
	// (t smaller, n larger).
	base := []Cluster{{1000, 50}, {1000, 70}, {1000, 30}, {1000, 50}}
	few := EstimateFrom(base, 100_000, 0.04)
	many := EstimateFrom(append(append(append([]Cluster{}, base...), base...), base...), 100_000, 0.12)
	if many.CI95 >= few.CI95 {
		t.Fatalf("CI did not shrink: %v (4 clusters) vs %v (12)", few.CI95, many.CI95)
	}
}

func TestEstimateFPCNarrowsInterval(t *testing.T) {
	clusters := []Cluster{{1000, 50}, {1000, 70}, {1000, 30}, {1000, 50}}
	loose := EstimateFrom(clusters, 40_000, 0.1)
	tight := EstimateFrom(clusters, 5_000, 0.8)
	if tight.CI95 >= loose.CI95 {
		t.Fatalf("finite-population correction did not narrow: f=0.8 CI %v vs f=0.1 CI %v",
			tight.CI95, loose.CI95)
	}
}

func TestTCrit95(t *testing.T) {
	if got := tCrit95(1); got != 12.706 {
		t.Fatalf("t(1) = %v", got)
	}
	if got := tCrit95(30); got != 2.042 {
		t.Fatalf("t(30) = %v", got)
	}
	if got := tCrit95(1000); got != 1.96 {
		t.Fatalf("t(1000) = %v", got)
	}
	if !math.IsInf(tCrit95(0), 1) {
		t.Fatal("t(0) finite")
	}
}

func TestErrorZeroBaseline(t *testing.T) {
	// A single instruction is one compulsory miss for the full trace, so use
	// an empty trace: zero misses, zero baseline.
	_, _, _, err := Error(cfg8k, nil, Plan{Window: 1, Period: 2, Mode: Warm})
	if !errors.Is(err, ErrZeroBaseline) {
		t.Fatalf("err = %v, want ErrZeroBaseline", err)
	}
}

// TestWarmFullCoverageBitIdentical pins the pos %% plan.Period window
// accounting: a warm plan with Window == Period measures every instruction,
// so for randomized profiles, seeds, and window sizes the sampled counters
// must be bit-identical to direct simulation.
func TestWarmFullCoverageBitIdentical(t *testing.T) {
	names := synth.Names()
	rng := xrand.New(0xb17e)
	for trial := 0; trial < 8; trial++ {
		name := names[rng.Intn(len(names))]
		p, err := synth.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		seed := rng.Uint64()
		n := int64(10_000 + rng.Intn(40_000))
		w := int64(1 + rng.Intn(7_000))
		refs, err := synth.InstrTrace(p, seed, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg8k, refs, Plan{Window: w, Period: w, Mode: Warm})
		if err != nil {
			t.Fatal(err)
		}
		c := cache.MustNew(cfg8k)
		var misses, instr int64
		for _, r := range refs {
			if r.Kind != trace.IFetch {
				continue
			}
			instr++
			if !c.Access(r.Addr) {
				misses++
			}
		}
		if res.SampledMisses != misses || res.SampledInstructions != instr {
			t.Fatalf("trial %d (%s seed %#x n %d window %d): sampled %d/%d, exact %d/%d",
				trial, name, seed, n, w, res.SampledMisses, res.SampledInstructions, misses, instr)
		}
		if res.Coverage() != 1 {
			t.Fatalf("trial %d: coverage %v", trial, res.Coverage())
		}
	}
}
