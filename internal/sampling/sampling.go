// Package sampling implements trace-sampling methodology studies.
//
// The paper's traces were captured by stalling the DECstation whenever the
// logic analyzer's buffer filled, and the authors validated the resulting
// distortion at "within a 5% margin of error" against a non-invasive
// hardware monitor; their Tapeworm II trap-driven simulator likewise
// observed execution in bounded windows. This package quantifies the two
// classic sampling regimes on our workloads:
//
//   - Warm sampling ("functional warming"): the cache state is maintained
//     continuously but statistics are recorded only inside periodic
//     measurement windows. Unbiased — it converges to the full-trace miss
//     ratio as windows accumulate.
//   - Cold sampling: the cache is flushed before each window (what a
//     trap-driven tool that loses state between observation intervals
//     sees). Biased upward by cold-start misses; the bias shrinks as the
//     window grows.
package sampling

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/trace"
)

// Mode selects the sampling regime.
type Mode uint8

const (
	// Warm maintains cache state between measurement windows.
	Warm Mode = iota
	// Cold flushes the cache before each measurement window.
	Cold
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Warm:
		return "warm"
	case Cold:
		return "cold"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Plan describes a sampling schedule: out of every Period instructions, the
// first Window are measured.
type Plan struct {
	// Window is the measured instructions per period.
	Window int64
	// Period is the schedule length; Period == Window measures everything.
	Period int64
	// Mode selects warm or cold sampling.
	Mode Mode
}

// Validate checks the plan.
func (p Plan) Validate() error {
	if p.Window <= 0 {
		return fmt.Errorf("sampling: window %d must be positive", p.Window)
	}
	if p.Period < p.Window {
		return fmt.Errorf("sampling: period %d < window %d", p.Period, p.Window)
	}
	return nil
}

// Result reports a sampled miss-ratio estimate.
type Result struct {
	// SampledInstructions is the number of instruction fetches measured.
	SampledInstructions int64
	// SampledMisses is the misses recorded inside windows.
	SampledMisses int64
	// TotalInstructions is the full stream length (measured + skipped).
	TotalInstructions int64
}

// MPI returns the sampled miss-per-instruction estimate.
func (r Result) MPI() float64 {
	if r.SampledInstructions == 0 {
		return 0
	}
	return float64(r.SampledMisses) / float64(r.SampledInstructions)
}

// Coverage returns the fraction of the stream that was measured.
func (r Result) Coverage() float64 {
	if r.TotalInstructions == 0 {
		return 0
	}
	return float64(r.SampledInstructions) / float64(r.TotalInstructions)
}

// Run replays the instruction fetches of refs through a cache under the
// sampling plan and returns the sampled estimate.
func Run(cfg cache.Config, refs []trace.Ref, plan Plan) (Result, error) {
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	c, err := cache.New(cfg)
	if err != nil {
		return Result{}, err
	}
	var res Result
	var missesBefore int64
	pos := int64(0)
	inWindow := false
	for _, r := range refs {
		if r.Kind != trace.IFetch {
			continue
		}
		phase := pos % plan.Period
		pos++
		res.TotalInstructions++
		starting := phase == 0
		measuring := phase < plan.Window
		if starting {
			// A new period begins: flush any window still open (this is the
			// normal case when Window == Period), then, in cold mode, drop
			// the cache state. The flush must precede the reset — Reset
			// clears the miss counter the open window's snapshot refers to.
			if inWindow {
				res.SampledMisses += c.Stats().Misses - missesBefore
				inWindow = false
			}
			if plan.Mode == Cold {
				c.Reset()
			}
		}
		if measuring && !inWindow {
			missesBefore = c.Stats().Misses
			inWindow = true
		}
		if !measuring && inWindow {
			res.SampledMisses += c.Stats().Misses - missesBefore
			inWindow = false
		}
		c.Access(r.Addr)
		if measuring {
			res.SampledInstructions++
		}
	}
	if inWindow {
		res.SampledMisses += c.Stats().Misses - missesBefore
	}
	return res, nil
}

// Error compares a sampled estimate against the full-trace miss ratio,
// returning the relative error (positive = overestimate). A trace whose
// exact simulation records no misses has no meaningful baseline: Error
// returns ErrZeroBaseline (with sampled and full still filled in) instead of
// silently reporting relErr = 0.
func Error(cfg cache.Config, refs []trace.Ref, plan Plan) (sampled, full, relErr float64, err error) {
	fullRes, err := Run(cfg, refs, Plan{Window: 1, Period: 1, Mode: Warm})
	if err != nil {
		return 0, 0, 0, err
	}
	s, err := Run(cfg, refs, plan)
	if err != nil {
		return 0, 0, 0, err
	}
	full = fullRes.MPI()
	sampled = s.MPI()
	if full == 0 {
		return sampled, full, 0, ErrZeroBaseline
	}
	relErr = (sampled - full) / full
	return sampled, full, relErr, nil
}
