package sampling

import (
	"errors"
	"math"
)

// ErrZeroBaseline reports that the full-trace (exact) simulation recorded no
// misses, so a relative error against it is undefined. Error returns it
// instead of silently reporting relErr = 0; callers that treat "no misses"
// as a benign case must check for it explicitly.
var ErrZeroBaseline = errors.New("sampling: full-trace miss count is zero; relative error undefined")

// Cluster is one sampling unit's contribution to an estimate: the
// instructions it measured and the misses it observed. For time sampling a
// cluster is one measurement window; for set sampling it is one group of
// sampled cache sets. Clusters are the unit of variance estimation — the
// confidence interval comes from how much the per-cluster miss ratios
// disagree.
type Cluster struct {
	// Instructions is the number of instruction fetches the cluster measured.
	Instructions int64
	// Misses is the number of misses it observed.
	Misses int64
}

// Estimate is a sampled miss-per-instruction estimate with a stated 95%
// confidence interval — what the sampled sweep and replay engines return per
// grid cell instead of a bare count.
type Estimate struct {
	// MPI is the combined ratio estimate: total sampled misses over total
	// sampled instructions.
	MPI float64
	// CI95 is the half-width of the 95% confidence interval around MPI
	// (absolute, in misses per instruction). 0 when the sample is exhaustive.
	CI95 float64
	// Coverage is the fraction of the full stream that was measured.
	Coverage float64
	// SampledInstructions and SampledMisses are the measured totals.
	SampledInstructions int64
	SampledMisses       int64
	// TotalInstructions is the full stream length the estimate extrapolates
	// to (measured + skipped).
	TotalInstructions int64
	// Clusters is the number of non-empty sampling units the interval was
	// computed from.
	Clusters int
}

// Contains reports whether v lies inside the estimate's 95% interval.
func (e Estimate) Contains(v float64) bool {
	return math.Abs(v-e.MPI) <= e.CI95
}

// RelCI95 returns the interval half-width relative to the estimate
// (CI95/MPI), or 0 when MPI is 0.
func (e Estimate) RelCI95() float64 {
	if e.MPI == 0 {
		return 0
	}
	return e.CI95 / e.MPI
}

// EstimateFrom combines per-cluster measurements into a ratio estimate with
// a 95% confidence interval.
//
// The estimator is the standard cluster-sampling ratio estimate: with
// cluster sizes wᵢ (instructions) and totals mᵢ (misses),
//
//	R̂ = Σmᵢ / Σwᵢ
//	s² = Σ(mᵢ − R̂·wᵢ)² / (n−1)
//	Var(R̂) = (1 − f) · s² / (n · w̄²)
//	CI95 = t₀.₉₅(n−1) · √Var(R̂)
//
// where w̄ is the mean cluster size and f = popFraction is the sampled
// fraction of the population (the finite-population correction: an
// exhaustive sample has no sampling error, so f ≥ 1 forces CI95 = 0).
// popFraction is the fraction of sampling units measured — 1/SetMod for set
// sampling, the instruction coverage for time sampling.
//
// With fewer than two non-empty clusters there is no variance information;
// the interval conservatively degrades to ±100% of the estimate (CI95 = R̂).
func EstimateFrom(clusters []Cluster, totalInstructions int64, popFraction float64) Estimate {
	var e Estimate
	e.TotalInstructions = totalInstructions
	var n int
	var sumW, sumM int64
	for _, c := range clusters {
		if c.Instructions <= 0 {
			continue
		}
		n++
		sumW += c.Instructions
		sumM += c.Misses
	}
	e.Clusters = n
	e.SampledInstructions = sumW
	e.SampledMisses = sumM
	if sumW == 0 {
		return e
	}
	e.MPI = float64(sumM) / float64(sumW)
	if totalInstructions > 0 {
		e.Coverage = float64(sumW) / float64(totalInstructions)
	}
	if popFraction >= 1 {
		// Exhaustive sample: the estimate IS the population value.
		return e
	}
	if popFraction < 0 {
		popFraction = 0
	}
	if n < 2 {
		e.CI95 = e.MPI
		return e
	}
	var s2 float64
	for _, c := range clusters {
		if c.Instructions <= 0 {
			continue
		}
		d := float64(c.Misses) - e.MPI*float64(c.Instructions)
		s2 += d * d
	}
	s2 /= float64(n - 1)
	wbar := float64(sumW) / float64(n)
	variance := (1 - popFraction) * s2 / (float64(n) * wbar * wbar)
	e.CI95 = tCrit95(n-1) * math.Sqrt(variance)
	return e
}

// tTable holds the two-sided 95% Student-t critical values for 1..30 degrees
// of freedom; beyond that the normal approximation (1.96) is within half a
// percent.
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit95 returns the two-sided 95% Student-t critical value for df degrees
// of freedom.
func tCrit95(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(tTable) {
		return tTable[df-1]
	}
	return 1.96
}
