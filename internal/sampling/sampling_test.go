package sampling

import (
	"math"
	"strings"
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

var cfg8k = cache.Config{Size: 8192, LineSize: 32, Assoc: 1}

func gsTrace(t testing.TB, n int64) []trace.Ref {
	t.Helper()
	p, err := synth.Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	refs, err := synth.InstrTrace(p, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	return refs
}

func TestPlanValidation(t *testing.T) {
	if err := (Plan{Window: 0, Period: 10}).Validate(); err == nil {
		t.Error("zero window accepted")
	}
	if err := (Plan{Window: 10, Period: 5}).Validate(); err == nil {
		t.Error("period < window accepted")
	}
	if err := (Plan{Window: 5, Period: 5}).Validate(); err != nil {
		t.Errorf("full-coverage plan rejected: %v", err)
	}
	if _, err := Run(cfg8k, nil, Plan{}); err == nil {
		t.Error("Run accepted invalid plan")
	}
	if _, err := Run(cache.Config{Size: 7}, nil, Plan{Window: 1, Period: 1}); err == nil {
		t.Error("Run accepted invalid cache")
	}
}

func TestModeString(t *testing.T) {
	if Warm.String() != "warm" || Cold.String() != "cold" {
		t.Error("mode names")
	}
	if !strings.HasPrefix(Mode(7).String(), "Mode(") {
		t.Error("unknown mode name")
	}
}

func TestFullCoverageMatchesDirectSimulation(t *testing.T) {
	refs := gsTrace(t, 100_000)
	res, err := Run(cfg8k, refs, Plan{Window: 1, Period: 1, Mode: Warm})
	if err != nil {
		t.Fatal(err)
	}
	c := cache.MustNew(cfg8k)
	for _, r := range refs {
		c.Access(r.Addr)
	}
	st := c.Stats()
	if res.SampledInstructions != st.Accesses || res.SampledMisses != st.Misses {
		t.Fatalf("full-coverage sampling (%d/%d) != direct (%d/%d)",
			res.SampledMisses, res.SampledInstructions, st.Misses, st.Accesses)
	}
	if res.Coverage() != 1 {
		t.Fatalf("coverage = %v", res.Coverage())
	}
}

func TestWarmSamplingUnbiased(t *testing.T) {
	refs := gsTrace(t, 400_000)
	// 40 windows at 50% coverage: enough samples that phase correlation
	// with the workload's domain schedule averages out.
	sampled, full, relErr, err := Error(cfg8k, refs, Plan{Window: 5_000, Period: 10_000, Mode: Warm})
	if err != nil {
		t.Fatal(err)
	}
	// The paper validated its own (stall-distorted) trace methodology to a
	// 5% margin; warm sampling at 50% coverage should match that.
	if math.Abs(relErr) > 0.05 {
		t.Fatalf("warm sampling error %.1f%% (sampled %.4f vs full %.4f)",
			100*relErr, sampled, full)
	}
}

func TestColdSamplingBiasedUpward(t *testing.T) {
	refs := gsTrace(t, 400_000)
	_, _, warmErr, err := Error(cfg8k, refs, Plan{Window: 5_000, Period: 20_000, Mode: Warm})
	if err != nil {
		t.Fatal(err)
	}
	coldSampled, full, coldErr, err := Error(cfg8k, refs, Plan{Window: 5_000, Period: 20_000, Mode: Cold})
	if err != nil {
		t.Fatal(err)
	}
	if coldErr <= 0 {
		t.Fatalf("cold sampling not biased upward: err %.1f%% (sampled %.4f vs full %.4f)",
			100*coldErr, coldSampled, full)
	}
	if coldErr <= warmErr {
		t.Fatalf("cold error (%.3f) not above warm error (%.3f)", coldErr, warmErr)
	}
}

func TestColdBiasShrinksWithWindow(t *testing.T) {
	refs := gsTrace(t, 400_000)
	_, _, small, err := Error(cfg8k, refs, Plan{Window: 2_000, Period: 8_000, Mode: Cold})
	if err != nil {
		t.Fatal(err)
	}
	_, _, large, err := Error(cfg8k, refs, Plan{Window: 50_000, Period: 200_000, Mode: Cold})
	if err != nil {
		t.Fatal(err)
	}
	if large >= small {
		t.Fatalf("cold bias did not shrink with window: %.3f (2k) vs %.3f (50k)", small, large)
	}
}

func TestCoverage(t *testing.T) {
	refs := gsTrace(t, 100_000)
	res, err := Run(cfg8k, refs, Plan{Window: 1_000, Period: 10_000, Mode: Warm})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coverage()-0.1) > 0.001 {
		t.Fatalf("coverage = %v, want ~0.1", res.Coverage())
	}
}

func TestDataRefsIgnored(t *testing.T) {
	refs := []trace.Ref{
		{Addr: 0, Kind: trace.IFetch},
		{Addr: 4096, Kind: trace.DRead},
		{Addr: 4, Kind: trace.IFetch},
	}
	res, err := Run(cfg8k, refs, Plan{Window: 1, Period: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInstructions != 2 {
		t.Fatalf("counted %d instructions", res.TotalInstructions)
	}
}

func TestEmptyResult(t *testing.T) {
	var r Result
	if r.MPI() != 0 || r.Coverage() != 0 {
		t.Fatal("empty result ratios non-zero")
	}
}

func TestColdFullCoverageCountsAllMisses(t *testing.T) {
	// Regression: with Window == Period in cold mode, the per-period reset
	// must not discard the open window's accumulated misses.
	refs := gsTrace(t, 100_000)
	res, err := Run(cfg8k, refs, Plan{Window: 10_000, Period: 10_000, Mode: Cold})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: simulate with explicit resets every 10k instructions.
	c := cache.MustNew(cfg8k)
	var misses, n int64
	for _, r := range refs {
		if r.Kind != trace.IFetch {
			continue
		}
		if n%10_000 == 0 {
			c.Reset()
		}
		n++
		if !c.Access(r.Addr) {
			misses++
		}
	}
	if res.SampledMisses != misses {
		t.Fatalf("cold full-coverage sampled %d misses, ground truth %d", res.SampledMisses, misses)
	}
	if res.SampledInstructions != n {
		t.Fatalf("sampled %d instructions, want %d", res.SampledInstructions, n)
	}
}
