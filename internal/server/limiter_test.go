package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLimiterImmediateGrant(t *testing.T) {
	l := NewLimiter(100, 4)
	release, err := l.Acquire(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Used(); got != 60 {
		t.Fatalf("Used = %d, want 60", got)
	}
	release()
	release() // must be idempotent
	if got := l.Used(); got != 0 {
		t.Fatalf("Used after release = %d, want 0", got)
	}
}

func TestLimiterTooHeavy(t *testing.T) {
	l := NewLimiter(100, 4)
	if _, err := l.Acquire(context.Background(), 101); !errors.Is(err, ErrTooHeavy) {
		t.Fatalf("err = %v, want ErrTooHeavy", err)
	}
}

func TestLimiterQueueFullRejects(t *testing.T) {
	l := NewLimiter(10, 1)
	release, err := l.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// One waiter fits in the queue...
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx, 5)
		errc <- err
	}()
	waitFor(t, func() bool { return l.Queued() == 1 })

	// ...the next is shed.
	if _, err := l.Acquire(context.Background(), 5); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued waiter err = %v, want context.Canceled", err)
	}
	if got := l.Queued(); got != 0 {
		t.Fatalf("Queued after cancellation = %d, want 0", got)
	}
}

// Queued waiters drain in arrival order once capacity frees up.
func TestLimiterQueueDrains(t *testing.T) {
	l := NewLimiter(10, 4)
	releaseBig, err := l.Acquire(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background(), 3)
			if err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
			release()
		}()
	}
	waitFor(t, func() bool { return l.Queued() == 3 })

	releaseBig()
	wg.Wait()
	if got := l.Used(); got != 0 {
		t.Fatalf("Used after drain = %d, want 0", got)
	}
}

// A small request behind a too-large head-of-line waiter must not be
// granted out of order even when it would fit.
func TestLimiterNoQueueJumping(t *testing.T) {
	l := NewLimiter(10, 4)
	releaseBig, err := l.Acquire(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}

	headGranted := make(chan func(), 1)
	go func() { // head of line: needs 9, cannot fit until the 8 releases
		release, err := l.Acquire(context.Background(), 9)
		if err != nil {
			return
		}
		headGranted <- release
	}()
	waitFor(t, func() bool { return l.Queued() == 1 })

	smallGranted := make(chan func(), 1)
	go func() { // needs 1: fits beside the 8 right now, but is behind the 9
		release, err := l.Acquire(context.Background(), 1)
		if err != nil {
			return
		}
		smallGranted <- release
	}()
	waitFor(t, func() bool { return l.Queued() == 2 })

	select {
	case <-smallGranted:
		t.Fatal("small request jumped the queue past a blocked head of line")
	case <-time.After(50 * time.Millisecond):
	}

	releaseBig()
	releaseHead := <-headGranted
	releaseHead()
	releaseSmall := <-smallGranted
	releaseSmall()
	if got := l.Used(); got != 0 {
		t.Fatalf("Used = %d, want 0", got)
	}
}

func TestLimiterDeadlineWhileQueued(t *testing.T) {
	l := NewLimiter(10, 4)
	release, err := l.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// Hammer the limiter from many goroutines (run under -race) and check the
// bookkeeping returns to zero.
func TestLimiterStressBalanced(t *testing.T) {
	l := NewLimiter(64, 128)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := int64(1 + (g+i)%32)
				release, err := l.Acquire(context.Background(), w)
				if err != nil {
					t.Errorf("acquire(%d): %v", w, err)
					return
				}
				if u := l.Used(); u < 0 || u > l.Capacity() {
					t.Errorf("Used = %d outside [0, %d]", u, l.Capacity())
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	if got := l.Used(); got != 0 {
		t.Fatalf("Used after balanced stress = %d, want 0", got)
	}
	if got := l.Queued(); got != 0 {
		t.Fatalf("Queued after balanced stress = %d, want 0", got)
	}
}

// waitFor spins until cond holds or the test deadline nears.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
