// Package client is the retrying Go client for the ibsimd v1 API
// (internal/server). It speaks the same wire types as the server and adds
// the client half of the robustness contract: transient failures — 429
// load shedding, 503 queue timeouts, dropped connections — are retried
// with capped exponential backoff plus jitter, honoring the server's
// Retry-After hint when one is present; structural failures (400, 404,
// panics, deadline expiry) surface immediately as typed *APIError values.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"ibsim/internal/server"
)

// APIError is a structured v1 error response.
type APIError struct {
	Detail server.ErrorDetail
}

// ErrServerDraining reports a server that answered kind "draining": it is
// shutting down and will refuse work until it is gone. Retrying against it
// only burns the backoff schedule against a dying process, so the client
// fails fast instead — errors.Is(err, ErrServerDraining) lets an
// orchestrator (the cluster coordinator) move the work to a live worker
// immediately.
var ErrServerDraining = errors.New("ibsimd: server is draining")

func (e *APIError) Error() string {
	return fmt.Sprintf("ibsimd: %s (%d %s)", e.Detail.Message, e.Detail.Status, e.Detail.Kind)
}

// Temporary reports whether the failure is worth retrying. A draining server
// is a permanent failure from this client's perspective: it will never
// accept the request, only a different server can.
func (e *APIError) Temporary() bool {
	if e.Detail.Kind == "draining" {
		return false
	}
	switch e.Detail.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// Is makes errors.Is(err, ErrServerDraining) match a kind-"draining"
// response without losing the structured detail.
func (e *APIError) Is(target error) bool {
	return target == ErrServerDraining && e.Detail.Kind == "draining"
}

// Client calls an ibsimd server with retries. The zero value is not
// usable; construct with New.
type Client struct {
	base                string
	httpc               *http.Client
	retries             int
	baseDelay, maxDelay time.Duration

	mu  sync.Mutex
	rng *rand.Rand
	// sleep is swappable for tests.
	sleep func(context.Context, time.Duration) error
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetries sets the maximum retry count for transient failures
// (default 4; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base and cap of the exponential backoff schedule
// (defaults 100ms / 5s).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.baseDelay, c.maxDelay = base, max }
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8347").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:      base,
		httpc:     &http.Client{},
		retries:   4,
		baseDelay: 100 * time.Millisecond,
		maxDelay:  5 * time.Second,
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Sweep runs POST /v1/sweep.
func (c *Client) Sweep(ctx context.Context, req server.SweepRequest) (*server.SweepResponse, error) {
	var resp server.SweepResponse
	if err := c.call(ctx, http.MethodPost, "/v1/sweep", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Replay runs POST /v1/replay.
func (c *Client) Replay(ctx context.Context, req server.ReplayRequest) (*server.ReplayResponse, error) {
	var resp server.ReplayResponse
	if err := c.call(ctx, http.MethodPost, "/v1/replay", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Exhibit runs GET /v1/exhibit/{name}.
func (c *Client) Exhibit(ctx context.Context, req server.ExhibitRequest) (*server.ExhibitResponse, error) {
	q := url.Values{}
	if req.Instructions > 0 {
		q.Set("n", strconv.FormatInt(req.Instructions, 10))
	}
	if req.Trials > 0 {
		q.Set("trials", strconv.Itoa(req.Trials))
	}
	if req.Seed != 0 {
		q.Set("seed", strconv.FormatUint(req.Seed, 10))
	}
	if req.Chart {
		q.Set("chart", "1")
	}
	if req.TimeoutMillis > 0 {
		q.Set("timeout_ms", strconv.FormatInt(req.TimeoutMillis, 10))
	}
	path := "/v1/exhibit/" + url.PathEscape(req.Name)
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var resp server.ExhibitResponse
	if err := c.call(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Workloads runs GET /v1/workloads.
func (c *Client) Workloads(ctx context.Context) ([]string, error) {
	var resp struct {
		Workloads []string `json:"workloads"`
	}
	if err := c.call(ctx, http.MethodGet, "/v1/workloads", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Workloads, nil
}

// Ready runs GET /readyz and reports whether the server accepts work.
func (c *Client) Ready(ctx context.Context) bool {
	return c.ReadyCheck(ctx) == nil
}

// ReadyCheck runs GET /readyz and returns nil when the server accepts work,
// ErrServerDraining (via errors.Is) when it reports itself draining, and the
// transport or API error otherwise. Draining answers are not retried.
func (c *Client) ReadyCheck(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/readyz", nil, nil)
}

// call performs one API call with the retry schedule.
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	var encoded []byte
	if body != nil {
		var err error
		if encoded, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return err
			}
		}
		retryable, err := c.once(ctx, method, path, encoded, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			return err
		}
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.retries+1, lastErr)
}

// once performs a single HTTP exchange. The boolean reports whether the
// failure is transient.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (bool, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		// Transport-level failure (connection refused/reset): transient
		// unless our own context ended it.
		return ctx.Err() == nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return true, err
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{}
		var eb server.ErrorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error.Status != 0 {
			apiErr.Detail = eb.Error
		} else {
			apiErr.Detail = server.ErrorDetail{Status: resp.StatusCode, Kind: "internal",
				Message: fmt.Sprintf("unstructured %d response", resp.StatusCode)}
		}
		if apiErr.Detail.RetryAfterSeconds == 0 {
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				apiErr.Detail.RetryAfterSeconds = ra
			}
		}
		return apiErr.Temporary(), apiErr
	}
	if out == nil {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("client: decoding response: %w", err)
	}
	return false, nil
}

// backoff computes the delay before the given (1-based) retry attempt:
// the server's Retry-After hint when it gave one, otherwise capped
// exponential backoff with full jitter.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.Detail.RetryAfterSeconds > 0 {
		return time.Duration(apiErr.Detail.RetryAfterSeconds) * time.Second
	}
	d := c.baseDelay << (attempt - 1)
	if d > c.maxDelay || d <= 0 {
		d = c.maxDelay
	}
	c.mu.Lock()
	jittered := time.Duration(c.rng.Int63n(int64(d) + 1))
	c.mu.Unlock()
	return jittered
}
