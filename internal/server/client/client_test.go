package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ibsim/internal/server"
)

// instant replaces the client's backoff sleep with an immediate return,
// recording the requested delays.
func instant(c *Client, delays *[]time.Duration) {
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func writeErr(w http.ResponseWriter, det server.ErrorDetail) {
	w.Header().Set("Content-Type", "application/json")
	if det.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(det.Status)
	json.NewEncoder(w).Encode(server.ErrorBody{Error: det})
}

// 429s are retried until the server admits the request.
func TestClientRetriesLoadShedding(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeErr(w, server.ErrorDetail{Status: 429, Kind: "queue-full",
				Message: "shed", RetryAfterSeconds: 1})
			return
		}
		json.NewEncoder(w).Encode(server.SweepResponse{Workload: "eqntott", Accesses: 42})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(4))
	var delays []time.Duration
	instant(c, &delays)
	resp, err := c.Sweep(context.Background(), server.SweepRequest{Workload: "eqntott"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accesses != 42 {
		t.Fatalf("accesses = %d, want 42", resp.Accesses)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	// Retry-After dominates the backoff schedule when present.
	for i, d := range delays {
		if d != time.Second {
			t.Errorf("delay %d = %v, want 1s from Retry-After", i, d)
		}
	}
}

// Structural errors are terminal: no retries, typed error surfaced.
func TestClientDoesNotRetryBadRequest(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeErr(w, server.ErrorDetail{Status: 400, Kind: "bad-request", Message: "nope"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(4))
	var delays []time.Duration
	instant(c, &delays)
	_, err := c.Sweep(context.Background(), server.SweepRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Detail.Kind != "bad-request" {
		t.Fatalf("err = %v, want bad-request APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retries)", calls.Load())
	}
}

// Exhausting the retry budget reports the last failure.
func TestClientGivesUpEventually(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeErr(w, server.ErrorDetail{Status: 503, Kind: "queue-timeout", Message: "busy"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2))
	var delays []time.Duration
	instant(c, &delays)
	_, err := c.Sweep(context.Background(), server.SweepRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Detail.Kind != "queue-timeout" {
		t.Fatalf("err = %v, want queue-timeout APIError", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", calls.Load())
	}
}

// A cancelled context stops the retry loop immediately.
func TestClientHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, server.ErrorDetail{Status: 503, Kind: "queue-timeout", Message: "busy"})
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(ts.URL, WithRetries(10))
	_, err := c.Sweep(ctx, server.SweepRequest{})
	if err == nil {
		t.Fatal("expected an error from a cancelled context")
	}
}

// Transport-level failures (connection refused) are retried too.
func TestClientRetriesTransportErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.ExhibitResponse{Name: "table2", Text: "ok"})
	}))
	addr := ts.URL
	ts.Close() // now refused

	c := New(addr, WithRetries(2))
	var delays []time.Duration
	instant(c, &delays)
	_, err := c.Exhibit(context.Background(), server.ExhibitRequest{Name: "table2"})
	if err == nil {
		t.Fatal("expected failure against a closed server")
	}
	if len(delays) != 2 {
		t.Fatalf("attempted %d backoffs, want 2", len(delays))
	}
}

// Backoff without a Retry-After hint grows but stays under the cap.
func TestClientBackoffSchedule(t *testing.T) {
	c := New("http://invalid", WithBackoff(100*time.Millisecond, time.Second))
	for attempt := 1; attempt <= 10; attempt++ {
		d := c.backoff(attempt, errors.New("plain"))
		if d < 0 || d > time.Second {
			t.Fatalf("attempt %d: backoff %v outside [0, 1s]", attempt, d)
		}
	}
	hinted := c.backoff(1, &APIError{Detail: server.ErrorDetail{RetryAfterSeconds: 3}})
	if hinted != 3*time.Second {
		t.Fatalf("hinted backoff = %v, want 3s", hinted)
	}
}

// The client round-trips cleanly against the real server.
func TestClientAgainstRealServer(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	names, err := c.Workloads(ctx)
	if err != nil || len(names) == 0 {
		t.Fatalf("workloads: %v (%d names)", err, len(names))
	}
	resp, err := c.Sweep(ctx, server.SweepRequest{
		Workload: "eqntott", Instructions: 60_000, LineSize: 32,
		Cells: []server.CellSpec{{Sets: 64, Assoc: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accesses == 0 || len(resp.Cells) != 1 {
		t.Fatalf("empty sweep response: %+v", resp)
	}
	_, err = c.Exhibit(ctx, server.ExhibitRequest{Name: "nonesuch"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Detail.Status != 404 {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
}

// A kind-"draining" answer must surface immediately as the typed
// ErrServerDraining instead of burning the retry schedule against a dying
// server.
func TestClientSurfacesDrainingTyped(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeErr(w, server.ErrorDetail{Status: 503, Kind: "draining",
			Message: "server is draining or not yet serving"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(4))
	var delays []time.Duration
	instant(c, &delays)

	err := c.ReadyCheck(context.Background())
	if !errors.Is(err, ErrServerDraining) {
		t.Fatalf("ReadyCheck = %v, want ErrServerDraining via errors.Is", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Detail.Kind != "draining" {
		t.Fatalf("structured detail lost: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("draining answer retried: %d calls, want 1", calls.Load())
	}
	if len(delays) != 0 {
		t.Fatalf("draining answer slept %v, want no backoff", delays)
	}

	// A simulation request against a draining server fails fast and typed
	// too — the same 503 body travels on every endpoint.
	calls.Store(0)
	_, err = c.Sweep(context.Background(), server.SweepRequest{Workload: "eqntott"})
	if !errors.Is(err, ErrServerDraining) || calls.Load() != 1 {
		t.Fatalf("Sweep against draining server = %v after %d calls, want typed fail-fast", err, calls.Load())
	}

	// Ordinary 503s (no "draining" kind) keep their transient semantics.
	if errors.Is(&APIError{Detail: server.ErrorDetail{Status: 503, Kind: "queue-timeout"}}, ErrServerDraining) {
		t.Fatal("non-draining 503 matched ErrServerDraining")
	}
}

// The live server's /readyz flips to the typed draining error once Run
// begins its drain.
func TestClientReadyCheckAgainstDrainingServer(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := New(ts.URL)
	// Before Run starts, ready is false and /readyz reports draining.
	if err := c.ReadyCheck(context.Background()); !errors.Is(err, ErrServerDraining) {
		t.Fatalf("ReadyCheck on non-serving server = %v, want ErrServerDraining", err)
	}
}
