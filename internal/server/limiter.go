package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Limiter is a weighted semaphore with a bounded FIFO wait queue — the
// admission controller in front of every simulation endpoint. Each request
// is weighed by its estimated trace footprint (synth.TraceBytes); requests
// that fit run immediately, requests that don't wait in arrival order up to
// the queue bound, and everything beyond that is rejected outright so the
// daemon sheds load instead of accumulating it.
type Limiter struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	queue    []*waiter
	maxQueue int
}

// waiter is one queued acquisition.
type waiter struct {
	weight  int64
	ready   chan struct{}
	granted bool
}

// ErrQueueFull reports an acquisition rejected because the wait queue is at
// its bound; the caller should surface 429 with a Retry-After hint.
var ErrQueueFull = errors.New("server: admission queue full")

// ErrTooHeavy reports a weight exceeding the limiter's total capacity: the
// request can never be admitted at that weight and must be shrunk first.
var ErrTooHeavy = errors.New("server: request exceeds admission capacity")

// NewLimiter returns a limiter admitting up to capacity weight concurrently
// and queueing at most maxQueue waiters beyond that.
func NewLimiter(capacity int64, maxQueue int) *Limiter {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{capacity: capacity, maxQueue: maxQueue}
}

// Acquire admits weight, waiting in FIFO order when the semaphore is full.
// It returns a release function that must be called exactly once, or an
// error: ErrTooHeavy (never admittable), ErrQueueFull (bounded queue
// overflow), or ctx.Err() (the caller's deadline expired while queued).
func (l *Limiter) Acquire(ctx context.Context, weight int64) (func(), error) {
	if weight < 0 {
		weight = 0
	}
	l.mu.Lock()
	if weight > l.capacity {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: weight %d, capacity %d", ErrTooHeavy, weight, l.capacity)
	}
	if len(l.queue) == 0 && l.used+weight <= l.capacity {
		l.used += weight
		l.mu.Unlock()
		return l.releaseFunc(weight), nil
	}
	if len(l.queue) >= l.maxQueue {
		l.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	select {
	case <-w.ready:
		return l.releaseFunc(weight), nil
	case <-ctx.Done():
		l.mu.Lock()
		if w.granted {
			// Lost the race: the grant landed between ctx firing and the
			// lock. Hand the capacity straight back.
			l.used -= weight
			l.grantLocked()
			l.mu.Unlock()
			return nil, ctx.Err()
		}
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				break
			}
		}
		l.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the once-only release for an admitted weight.
func (l *Limiter) releaseFunc(weight int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.used -= weight
			l.grantLocked()
			l.mu.Unlock()
		})
	}
}

// grantLocked admits queued waiters, in order, while they fit. FIFO order
// is strict: a small request never jumps a large one, so heavy requests
// cannot starve.
func (l *Limiter) grantLocked() {
	for len(l.queue) > 0 && l.used+l.queue[0].weight <= l.capacity {
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.used += w.weight
		w.granted = true
		close(w.ready)
	}
}

// Used returns the admitted weight.
func (l *Limiter) Used() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// Queued returns the number of waiting acquisitions.
func (l *Limiter) Queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// Capacity returns the limiter's total weight capacity.
func (l *Limiter) Capacity() int64 { return l.capacity }
