package server

import (
	"context"
	"sync"
)

// flightGroup deduplicates identical in-flight requests: the first caller
// of a key (the leader) executes the work, every concurrent caller of the
// same key (the followers) waits for the leader's response and shares it.
// The motivation is the paper's own workload shape — Figure 5's run-to-run
// variability means users re-request the same sweep/replay configurations
// repeatedly — so identical concurrent requests should cost one simulation,
// not N.
//
// Unlike a result cache, a flight lives only while its leader runs: the
// entry is removed before the response is published, so a completed
// request's next arrival recomputes (the synth trace store is the layer
// that memoizes across completions).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-flight execution.
type flight struct {
	done chan struct{}
	out  *response
}

// response is the materialized outcome of one execution, shareable between
// the leader and any number of followers.
type response struct {
	status     int
	body       []byte
	retryAfter int  // seconds; 0 = no Retry-After header
	canceled   bool // the leader's own client vanished mid-flight
	degraded   bool
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do executes fn under key, deduplicating concurrent callers. The boolean
// reports leadership. A follower whose ctx expires first returns ctx.Err()
// with a nil response. fn must not panic (the server wraps it in a
// recoverer that converts panics into structured 500 responses).
func (g *flightGroup) do(ctx context.Context, key string, fn func() *response) (*response, bool, error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.out, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.out = fn()

	// Unpublish before signalling: a caller arriving after this point
	// starts a fresh flight instead of reading a finished one.
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.out, true, nil
}
