package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ibsim/internal/fetch"
	"ibsim/internal/replay"
	"ibsim/internal/sweep"
	"ibsim/internal/synth"
)

// testServer builds a Server with small, test-friendly bounds.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Store:          synth.NewStore(1 << 26),
		DefaultTimeout: 30 * time.Second,
		DegradeWindow:  50 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	s.ready.Store(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSONE posts v and decodes a 200 response body into out (if
// non-nil), returning the status code, raw body, and any transport or
// decode error. Safe to call from non-test goroutines.
func postJSONE(url string, v any, out any) (int, []byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, raw, err
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, raw, fmt.Errorf("decoding %s: %w", raw, err)
		}
	}
	return resp.StatusCode, raw, nil
}

// postJSON is postJSONE with errors fatal to the test.
func postJSON(t *testing.T, url string, v any, out any) (int, []byte) {
	t.Helper()
	code, raw, err := postJSONE(url, v, out)
	if err != nil {
		t.Fatal(err)
	}
	return code, raw
}

// getJSON fetches url and decodes a 200 into out.
func getJSON(t *testing.T, url string, out any) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
	}
	return resp.StatusCode, raw
}

// errKind extracts the structured error kind from a non-2xx body.
func errKind(t *testing.T, raw []byte) string {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("error body %q is not the structured envelope: %v", raw, err)
	}
	return eb.Error.Kind
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := testServer(t, nil)
	if code, _ := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := getJSON(t, ts.URL+"/readyz", nil); code != 200 {
		t.Fatalf("readyz = %d", code)
	}
	var m map[string]any
	if code, _ := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, key := range []string{"requests_total", "inflight_bytes", "admission_queue", "store", "ready"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	var w struct {
		Workloads []string `json:"workloads"`
	}
	if code, _ := getJSON(t, ts.URL+"/v1/workloads", &w); code != 200 || len(w.Workloads) == 0 {
		t.Fatalf("workloads = %d with %d entries", code, len(w.Workloads))
	}
}

// A sweep over the service must agree exactly with the library run
// directly: the HTTP layer adds robustness, not noise.
func TestSweepMatchesLibrary(t *testing.T) {
	_, ts := testServer(t, nil)
	req := SweepRequest{
		Workload:      "eqntott",
		Instructions:  120_000,
		LineSize:      32,
		Cells:         []CellSpec{{Sets: 64, Assoc: 1}, {Sets: 128, Assoc: 2}, {Sets: 256, Assoc: 4}},
		CountDistinct: true,
	}
	var got SweepResponse
	if code, raw := postJSON(t, ts.URL+"/v1/sweep", req, &got); code != 200 {
		t.Fatalf("sweep = %d: %s", code, raw)
	}
	if got.Degraded {
		t.Fatalf("unexpected degraded response: %s", got.DegradedReason)
	}

	prof, err := synth.Lookup("eqntott")
	if err != nil {
		t.Fatal(err)
	}
	refs, release, err := synth.NewStore(1<<26).Instr(prof, 0, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	p := sweep.Pass{LineSize: 32, CountDistinct: true,
		Cells: []sweep.Cell{{Sets: 64, Assoc: 1}, {Sets: 128, Assoc: 2}, {Sets: 256, Assoc: 4}}}
	want, err := p.Run(refs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Accesses != want.Accesses || got.Distinct != want.Distinct {
		t.Fatalf("totals: got %d/%d, want %d/%d", got.Accesses, got.Distinct, want.Accesses, want.Distinct)
	}
	for i, c := range got.Cells {
		if c.Misses != want.Misses[i] {
			t.Errorf("cell %d: misses %d, want %d", i, c.Misses, want.Misses[i])
		}
	}

	// The admitted request must be visible on /metrics.
	var m map[string]any
	if code, _ := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if v, _ := m["admitted_total"].(float64); v < 1 {
		t.Errorf("admitted_total = %v after a successful sweep, want >= 1", m["admitted_total"])
	}
}

func TestReplayMatchesLibrary(t *testing.T) {
	_, ts := testServer(t, nil)
	req := ReplayRequest{
		Workload:     "eqntott",
		Instructions: 100_000,
		Engines: []EngineSpec{
			{Kind: "blocking", Size: 8192, LineSize: 32, Assoc: 1, Link: LinkSpec{Name: "economy"}},
			{Kind: "stream", Size: 8192, LineSize: 16, Assoc: 1, Depth: 4, Link: LinkSpec{Name: "highperf"}},
		},
	}
	var got ReplayResponse
	if code, raw := postJSON(t, ts.URL+"/v1/replay", req, &got); code != 200 {
		t.Fatalf("replay = %d: %s", code, raw)
	}
	if len(got.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(got.Results))
	}

	prof, err := synth.Lookup("eqntott")
	if err != nil {
		t.Fatal(err)
	}
	_, runs, release, err := synth.NewStore(1<<26).InstrRuns(context.Background(), prof, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	engines := make([]fetch.Engine, len(req.Engines))
	for i, spec := range req.Engines {
		if engines[i], err = spec.build(); err != nil {
			t.Fatal(err)
		}
	}
	want, err := replay.Replay(context.Background(), runs, engines)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Results[i].Misses != want[i].Misses || got.Results[i].StallCycles != want[i].StallCycles {
			t.Errorf("engine %d: got %+v, want %+v", i, got.Results[i], want[i])
		}
	}
}

func TestExhibitEndpoint(t *testing.T) {
	_, ts := testServer(t, nil)
	var got ExhibitResponse
	if code, raw := getJSON(t, ts.URL+"/v1/exhibit/table2", &got); code != 200 {
		t.Fatalf("exhibit = %d: %s", code, raw)
	}
	if got.Text == "" || got.Name != "table2" {
		t.Fatalf("empty exhibit: %+v", got)
	}
	if code, raw := getJSON(t, ts.URL+"/v1/exhibit/nonesuch", nil); code != 404 {
		t.Fatalf("unknown exhibit = %d: %s", code, raw)
	} else if kind := errKind(t, raw); kind != "not-found" {
		t.Fatalf("kind = %q, want not-found", kind)
	}
}

func TestBadRequestsAreStructured400s(t *testing.T) {
	_, ts := testServer(t, nil)
	cases := []SweepRequest{
		{Workload: "nonesuch", LineSize: 32, Cells: []CellSpec{{Sets: 64, Assoc: 1}}},
		{Workload: "eqntott", LineSize: 33, Cells: []CellSpec{{Sets: 64, Assoc: 1}}},
		{Workload: "eqntott", LineSize: 32},
		{Workload: "eqntott", LineSize: 32, Cells: []CellSpec{{Sets: 63, Assoc: 1}}},
	}
	for i, req := range cases {
		code, raw := postJSON(t, ts.URL+"/v1/sweep", req, nil)
		if code != 400 {
			t.Errorf("case %d: code = %d, want 400: %s", i, code, raw)
			continue
		}
		if kind := errKind(t, raw); kind != "bad-request" {
			t.Errorf("case %d: kind = %q, want bad-request", i, kind)
		}
	}

	// Malformed JSON and unknown fields are 400 too, not 500.
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{"workload": 17`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON = %d, want 400", resp.StatusCode)
	}
}

// A request with a deadline inside the degrade window answers at reduced
// fidelity and says so, instead of burning its whole budget and timing out.
func TestNearDeadlineDegrades(t *testing.T) {
	_, ts := testServer(t, func(c *Config) { c.DegradeWindow = 10 * time.Second })
	req := SweepRequest{
		Workload:      "eqntott",
		Instructions:  4_000_000,
		LineSize:      32,
		Cells:         []CellSpec{{Sets: 64, Assoc: 1}},
		TimeoutMillis: 5_000, // inside the 10s window
	}
	var got SweepResponse
	if code, raw := postJSON(t, ts.URL+"/v1/sweep", req, &got); code != 200 {
		t.Fatalf("sweep = %d: %s", code, raw)
	}
	if !got.Degraded {
		t.Fatal("near-deadline response not marked degraded")
	}
	if got.Instructions >= 4_000_000 {
		t.Fatalf("instructions not reduced: %d", got.Instructions)
	}
	if !strings.Contains(got.DegradedReason, "degrade window") {
		t.Fatalf("reason does not explain the window: %q", got.DegradedReason)
	}
}

// When the store refuses to materialize the trace (hard budget), sweep and
// replay fall back to streaming regeneration: same numbers, degraded=true.
func TestOverBudgetStreamsDegraded(t *testing.T) {
	run := func(t *testing.T, hardBudget int64) (SweepResponse, ReplayResponse) {
		t.Helper()
		_, ts := testServer(t, func(c *Config) {
			c.Store = synth.NewStoreLimits(1<<26, hardBudget)
		})
		sreq := SweepRequest{Workload: "eqntott", Instructions: 100_000, LineSize: 32,
			Cells: []CellSpec{{Sets: 64, Assoc: 1}, {Sets: 512, Assoc: 2}}}
		var sresp SweepResponse
		if code, raw := postJSON(t, ts.URL+"/v1/sweep", sreq, &sresp); code != 200 {
			t.Fatalf("sweep = %d: %s", code, raw)
		}
		rreq := ReplayRequest{Workload: "eqntott", Instructions: 100_000,
			Engines: []EngineSpec{{Size: 8192, LineSize: 32, Assoc: 1, Link: LinkSpec{Name: "economy"}}}}
		var rresp ReplayResponse
		if code, raw := postJSON(t, ts.URL+"/v1/replay", rreq, &rresp); code != 200 {
			t.Fatalf("replay = %d: %s", code, raw)
		}
		return sresp, rresp
	}

	fullSweep, fullReplay := run(t, 0)   // unlimited: materialized path
	degSweep, degReplay := run(t, 1<<10) // 1 KiB: every trace over budget

	if fullSweep.Degraded || fullReplay.Degraded {
		t.Fatal("unlimited store produced degraded responses")
	}
	if !degSweep.Degraded || !degReplay.Degraded {
		t.Fatalf("over-budget store did not degrade: sweep=%v replay=%v", degSweep.Degraded, degReplay.Degraded)
	}
	// Streaming regeneration is bit-exact with materialization.
	for i := range fullSweep.Cells {
		if degSweep.Cells[i].Misses != fullSweep.Cells[i].Misses {
			t.Errorf("sweep cell %d: streamed %d != materialized %d", i, degSweep.Cells[i].Misses, fullSweep.Cells[i].Misses)
		}
	}
	if degReplay.Results[0] != fullReplay.Results[0] {
		t.Errorf("replay: streamed %+v != materialized %+v", degReplay.Results[0], fullReplay.Results[0])
	}
}

// Identical concurrent requests share one execution.
func TestSingleflightDedup(t *testing.T) {
	var simulations atomic.Int64
	gate := make(chan struct{})
	s, ts := testServer(t, func(c *Config) {
		c.FaultHook = func(stage string) {
			simulations.Add(1)
			<-gate
		}
	})
	req := SweepRequest{Workload: "eqntott", Instructions: 50_000, LineSize: 32,
		Cells: []CellSpec{{Sets: 64, Assoc: 1}}}

	const callers = 6
	var wg sync.WaitGroup
	codes := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, _ = postJSONE(ts.URL+"/v1/sweep", req, nil)
		}(i)
	}
	// Wait until the leader is inside the hook, give followers time to
	// pile onto the flight, then open the gate.
	waitFor(t, func() bool { return simulations.Load() == 1 })
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i, code := range codes {
		if code != 200 {
			t.Errorf("caller %d: code = %d", i, code)
		}
	}
	if n := simulations.Load(); n != 1 {
		t.Fatalf("%d simulations ran for %d identical requests, want 1", n, callers)
	}
	var m map[string]any
	getJSON(t, ts.URL+"/metrics", &m)
	if hits, _ := m["dedup_hits_total"].(float64); hits != callers-1 {
		t.Errorf("dedup_hits_total = %v, want %d", m["dedup_hits_total"], callers-1)
	}
	_ = s
}

// When admission capacity is held and the queue is full, new work is shed
// with 429 + Retry-After, and the server recovers once capacity frees.
func TestAdmissionShedsWith429(t *testing.T) {
	gate := make(chan struct{})
	var entered atomic.Int64
	// Replay weighs synth.TraceBytes(n, true) and MaxInstructions is
	// derived as capacity/TraceBytes(1, true), so one max-scale replay
	// fills the admission capacity exactly.
	_, ts := testServer(t, func(c *Config) {
		c.MaxInflightBytes = synth.TraceBytes(50_000, true)
		c.MaxQueue = -1 // no waiting: shed immediately
		c.FaultHook = func(string) {
			entered.Add(1)
			<-gate
		}
	})
	defer close(gate)

	engines := []EngineSpec{{Size: 8192, LineSize: 32, Assoc: 1, Link: LinkSpec{Name: "economy"}}}
	hold := ReplayRequest{Workload: "eqntott", Instructions: 50_000, Engines: engines}
	go postJSONE(ts.URL+"/v1/replay", hold, nil)
	waitFor(t, func() bool { return entered.Load() == 1 })

	// A different request (distinct key, so no dedup) cannot be admitted.
	shed := ReplayRequest{Workload: "espresso", Instructions: 50_000, Engines: engines}
	body, _ := json.Marshal(shed)
	resp, err := http.Post(ts.URL+"/v1/replay", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("code = %d, want 429: %s", resp.StatusCode, raw)
	}
	if kind := errKind(t, raw); kind != "queue-full" {
		t.Fatalf("kind = %q, want queue-full", kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// A panic on the request path becomes a structured 500 and the daemon
// keeps serving.
func TestPanicIsolated(t *testing.T) {
	var arm atomic.Bool
	_, ts := testServer(t, func(c *Config) {
		c.FaultHook = func(string) {
			if arm.Load() {
				panic("injected handler panic")
			}
		}
	})
	arm.Store(true)
	req := SweepRequest{Workload: "eqntott", Instructions: 50_000, LineSize: 32,
		Cells: []CellSpec{{Sets: 64, Assoc: 1}}}
	code, raw := postJSON(t, ts.URL+"/v1/sweep", req, nil)
	if code != 500 {
		t.Fatalf("code = %d, want 500: %s", code, raw)
	}
	if kind := errKind(t, raw); kind != "panic" {
		t.Fatalf("kind = %q, want panic", kind)
	}

	// The server survived: the same request now succeeds.
	arm.Store(false)
	if code, raw := postJSON(t, ts.URL+"/v1/sweep", req, nil); code != 200 {
		t.Fatalf("post-panic request = %d: %s", code, raw)
	}
	var m map[string]any
	getJSON(t, ts.URL+"/metrics", &m)
	if n, _ := m["panics_recovered_total"].(float64); n < 1 {
		t.Errorf("panics_recovered_total = %v, want >= 1", m["panics_recovered_total"])
	}
}

// A request deadline that expires mid-simulation yields a structured 504.
func TestDeadlineIsStructured504(t *testing.T) {
	_, ts := testServer(t, func(c *Config) {
		c.DegradeWindow = -1 // force the timeout instead of degrading around it
		c.FaultHook = func(string) { time.Sleep(30 * time.Millisecond) }
	})
	req := SweepRequest{Workload: "eqntott", Instructions: 2_000_000, LineSize: 32,
		Cells: []CellSpec{{Sets: 64, Assoc: 1}}, TimeoutMillis: 20}
	code, raw := postJSON(t, ts.URL+"/v1/sweep", req, nil)
	if code != 504 {
		t.Fatalf("code = %d, want 504: %s", code, raw)
	}
	if kind := errKind(t, raw); kind != "deadline" {
		t.Fatalf("kind = %q, want deadline", kind)
	}
}

// Run drains: a request in flight when shutdown begins still completes,
// readiness flips to 503, and Run returns cleanly.
func TestGracefulDrainCompletesInflight(t *testing.T) {
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	cfg := Config{
		Store:         synth.NewStore(1 << 26),
		DrainTimeout:  10 * time.Second,
		DegradeWindow: time.Millisecond,
		FaultHook: func(string) {
			once.Do(func() { close(entered) })
			<-gate
		},
	}
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == 200
	})

	// Issue a request that blocks inside the simulation...
	req := SweepRequest{Workload: "eqntott", Instructions: 50_000, LineSize: 32,
		Cells: []CellSpec{{Sets: 64, Assoc: 1}}}
	type outcome struct {
		code int
		raw  []byte
	}
	reqDone := make(chan outcome, 1)
	go func() {
		code, raw, _ := postJSONE(base+"/v1/sweep", req, nil)
		reqDone <- outcome{code, raw}
	}()
	<-entered

	// ...then begin shutdown while it is in flight.
	cancel()
	waitFor(t, func() bool { return !s.Ready() })

	// The in-flight request is NOT dropped: unblock it and it completes.
	close(gate)
	select {
	case out := <-reqDone:
		if out.code != 200 {
			t.Fatalf("in-flight request during drain = %d: %s", out.code, out.raw)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed during drain")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after drain")
	}
}

// Exhibit requests with clamped trials report degradation explicitly.
func TestExhibitClampsTrials(t *testing.T) {
	_, ts := testServer(t, func(c *Config) { c.MaxTrials = 2 })
	var got ExhibitResponse
	url := fmt.Sprintf("%s/v1/exhibit/table2?trials=9", ts.URL)
	if code, raw := getJSON(t, url, &got); code != 200 {
		t.Fatalf("exhibit = %d: %s", code, raw)
	}
	if !got.Degraded || got.Trials != 2 {
		t.Fatalf("trials clamp not reported: degraded=%v trials=%d", got.Degraded, got.Trials)
	}
}

// --- sampling tier ------------------------------------------------------

// The sampling knob: an explicit sampling spec returns estimates with
// confidence intervals and a SamplingInfo block, NOT marked degraded —
// reduced fidelity was the ask.
func TestSamplingKnob(t *testing.T) {
	_, ts := testServer(t, nil)

	// Exact baseline for the accuracy cross-check.
	exactReq := SweepRequest{Workload: "eqntott", Instructions: 100_000, LineSize: 32,
		Cells: []CellSpec{{Sets: 256, Assoc: 1}, {Sets: 1024, Assoc: 1}}}
	var exact SweepResponse
	if code, raw := postJSON(t, ts.URL+"/v1/sweep", exactReq, &exact); code != 200 {
		t.Fatalf("exact sweep = %d: %s", code, raw)
	}
	if exact.Sampling != nil {
		t.Fatal("exact sweep response carries a sampling block")
	}

	sreq := exactReq
	sreq.Sampling = &SamplingSpec{Set: 16}
	var sset SweepResponse
	if code, raw := postJSON(t, ts.URL+"/v1/sweep", sreq, &sset); code != 200 {
		t.Fatalf("set-sampled sweep = %d: %s", code, raw)
	}
	if sset.Degraded {
		t.Errorf("requested sampling marked degraded: %q", sset.DegradedReason)
	}
	if sset.Sampling == nil || sset.Sampling.Mode != "set" {
		t.Fatalf("sampling info = %+v, want mode set", sset.Sampling)
	}
	if c := sset.Sampling.Coverage; c <= 0 || c > 0.2 {
		t.Errorf("set-sampled coverage %v outside (0, 0.2]", c)
	}
	for i, c := range sset.Cells {
		exactMPI := float64(exact.Cells[i].Misses) / float64(exact.Accesses)
		if c.MPI <= 0 || c.CI95 <= 0 {
			t.Errorf("cell %d: sampled MPI %v / CI95 %v not populated", i, c.MPI, c.CI95)
		}
		tol := 3 * c.CI95
		if fl := 0.5 * exactMPI; tol < fl {
			tol = fl
		}
		if d := c.MPI - exactMPI; d < -tol || d > tol {
			t.Errorf("cell %d: sampled MPI %v vs exact %v beyond tolerance %v", i, c.MPI, exactMPI, tol)
		}
	}

	treq := exactReq
	treq.Sampling = &SamplingSpec{Window: 1000, Period: 4000}
	var stime SweepResponse
	if code, raw := postJSON(t, ts.URL+"/v1/sweep", treq, &stime); code != 200 {
		t.Fatalf("time-sampled sweep = %d: %s", code, raw)
	}
	if stime.Sampling == nil || stime.Sampling.Mode != "time" {
		t.Fatalf("sampling info = %+v, want mode time", stime.Sampling)
	}
	if c := stime.Sampling.Coverage; c < 0.2 || c > 0.3 {
		t.Errorf("warm time coverage %v, want ~0.25", c)
	}

	rreq := ReplayRequest{Workload: "eqntott", Instructions: 100_000,
		Engines:  []EngineSpec{{Size: 8192, LineSize: 32, Assoc: 1, Link: LinkSpec{Name: "economy"}}},
		Sampling: &SamplingSpec{Window: 1000, Period: 4000, Skip: true}}
	var rresp ReplayResponse
	if code, raw := postJSON(t, ts.URL+"/v1/replay", rreq, &rresp); code != 200 {
		t.Fatalf("sampled replay = %d: %s", code, raw)
	}
	if rresp.Degraded {
		t.Errorf("requested sampling marked degraded: %q", rresp.DegradedReason)
	}
	if rresp.Sampling == nil || rresp.Sampling.Mode != "time" {
		t.Fatalf("replay sampling info = %+v, want mode time", rresp.Sampling)
	}
	if got := rresp.Results[0]; got.MPI <= 0 || got.CI95 <= 0 {
		t.Errorf("sampled engine result missing estimate: %+v", got)
	}
	if m := rresp.Sampling.MeasuredInstructions; m <= 0 || m >= 100_000 {
		t.Errorf("measured instructions %d, want a strict subset of the trace", m)
	}
}

// Malformed sampling specs are structured 400s, including the replay-side
// rejection of set sampling and a modulus the grid cannot cover.
func TestSamplingSpecValidation(t *testing.T) {
	_, ts := testServer(t, nil)
	sweepURL, replayURL := ts.URL+"/v1/sweep", ts.URL+"/v1/replay"
	cells := []CellSpec{{Sets: 64, Assoc: 1}}
	engines := []EngineSpec{{Size: 8192, LineSize: 32, Assoc: 1, Link: LinkSpec{Name: "economy"}}}
	cases := []struct {
		name string
		url  string
		body any
	}{
		{"both dimensions", sweepURL, SweepRequest{Workload: "sed", LineSize: 32, Cells: cells,
			Sampling: &SamplingSpec{Set: 16, Window: 100, Period: 400}}},
		{"neither dimension", sweepURL, SweepRequest{Workload: "sed", LineSize: 32, Cells: cells,
			Sampling: &SamplingSpec{}}},
		{"non-power-of-two set", sweepURL, SweepRequest{Workload: "sed", LineSize: 32, Cells: cells,
			Sampling: &SamplingSpec{Set: 3}}},
		{"set exceeds grid", sweepURL, SweepRequest{Workload: "sed", LineSize: 32, Cells: cells,
			Sampling: &SamplingSpec{Set: 128}}},
		{"period below window", sweepURL, SweepRequest{Workload: "sed", LineSize: 32, Cells: cells,
			Sampling: &SamplingSpec{Window: 400, Period: 100}}},
		{"skip with set mode", sweepURL, SweepRequest{Workload: "sed", LineSize: 32, Cells: cells,
			Sampling: &SamplingSpec{Set: 16, Skip: true}}},
		{"set sampling on replay", replayURL, ReplayRequest{Workload: "sed", Engines: engines,
			Sampling: &SamplingSpec{Set: 16}}},
	}
	for _, tc := range cases {
		code, raw := postJSON(t, tc.url, tc.body, nil)
		if code != 400 || errKind(t, raw) != "bad-request" {
			t.Errorf("%s: got %d %s, want structured 400", tc.name, code, raw)
		}
	}
}

// The degradation ladder engages in order: a store that cannot hold the ref
// trace but can hold its run compaction answers from the sampling tier
// (degraded, intervals attached); only when even the runs are over budget
// does the server fall to streaming regeneration.
func TestSamplingTierEngagesBeforeStreaming(t *testing.T) {
	// eqntott at 100k: refs 1.6 MB, run compaction ~210 KB. 512 KiB sits
	// between the two.
	const midBudget, tinyBudget = 1 << 19, 1 << 10
	run := func(t *testing.T, hardBudget int64) (*Server, SweepResponse, ReplayResponse) {
		t.Helper()
		s, ts := testServer(t, func(c *Config) {
			c.Store = synth.NewStoreLimits(1<<26, hardBudget)
		})
		sreq := SweepRequest{Workload: "eqntott", Instructions: 100_000, LineSize: 32,
			Cells: []CellSpec{{Sets: 256, Assoc: 1}, {Sets: 1024, Assoc: 1}}}
		var sresp SweepResponse
		if code, raw := postJSON(t, ts.URL+"/v1/sweep", sreq, &sresp); code != 200 {
			t.Fatalf("sweep = %d: %s", code, raw)
		}
		rreq := ReplayRequest{Workload: "eqntott", Instructions: 100_000,
			Engines: []EngineSpec{{Size: 8192, LineSize: 32, Assoc: 1, Link: LinkSpec{Name: "economy"}}}}
		var rresp ReplayResponse
		if code, raw := postJSON(t, ts.URL+"/v1/replay", rreq, &rresp); code != 200 {
			t.Fatalf("replay = %d: %s", code, raw)
		}
		return s, sresp, rresp
	}

	s, midSweep, midReplay := run(t, midBudget)
	for name, resp := range map[string]struct {
		degraded bool
		reason   string
		sampling *SamplingInfo
	}{
		"sweep":  {midSweep.Degraded, midSweep.DegradedReason, midSweep.Sampling},
		"replay": {midReplay.Degraded, midReplay.DegradedReason, midReplay.Sampling},
	} {
		if !resp.degraded {
			t.Errorf("%s: mid-budget store did not degrade", name)
		}
		if resp.sampling == nil {
			t.Fatalf("%s: mid-budget answer has no sampling block (reason %q)", name, resp.reason)
		}
		if resp.sampling.CI95 <= 0 {
			t.Errorf("%s: sampling tier CI95 %v, want > 0", name, resp.sampling.CI95)
		}
		if !strings.Contains(resp.reason, "sampled") {
			t.Errorf("%s: reason %q does not say the answer is sampled", name, resp.reason)
		}
	}
	if got := s.mSampled.Value(); got != 2 {
		t.Errorf("sampling_tier_total = %d, want 2", got)
	}
	// Sweeps pick set sampling when the grid supports it; replay banks use
	// skip-mode time sampling (the only plan that is actually faster).
	if midSweep.Sampling.Mode != "set" {
		t.Errorf("auto sweep mode %q, want set", midSweep.Sampling.Mode)
	}
	if midReplay.Sampling.Mode != "time" {
		t.Errorf("auto replay mode %q, want time", midReplay.Sampling.Mode)
	}

	_, tinySweep, tinyReplay := run(t, tinyBudget)
	if !tinySweep.Degraded || !tinyReplay.Degraded {
		t.Fatal("tiny-budget store did not degrade")
	}
	if tinySweep.Sampling != nil || tinyReplay.Sampling != nil {
		t.Error("tiny-budget store should stream exactly, not sample")
	}
	for name, reason := range map[string]string{
		"sweep": tinySweep.DegradedReason, "replay": tinyReplay.DegradedReason,
	} {
		if !strings.Contains(reason, "stream") {
			t.Errorf("%s: tiny-budget reason %q does not mention streaming", name, reason)
		}
	}
}

// The columnar-disk tier sits between sampling and streaming: a store whose
// budget rejects even the run compaction but admits the much smaller
// columnar file answers EXACTLY from disk — same numbers as an unlimited
// store, marked degraded with a columnar reason and no sampling block. An
// explicit sampling request at the same budget is satisfied as asked
// (sampled over the columnar blocks, not degraded).
func TestColumnarTierEngagesBeforeStreaming(t *testing.T) {
	// eqntott at 100k: refs 1.6 MB, run compaction ~210 KB, columnar file
	// tens of KB. 128 KiB sits between the last two.
	const colBudget = 1 << 17
	sreq := SweepRequest{Workload: "eqntott", Instructions: 100_000, LineSize: 32,
		Cells: []CellSpec{{Sets: 256, Assoc: 1}, {Sets: 1024, Assoc: 1}}}
	rreq := ReplayRequest{Workload: "eqntott", Instructions: 100_000,
		Engines: []EngineSpec{{Size: 8192, LineSize: 32, Assoc: 1, Link: LinkSpec{Name: "economy"}}}}

	_, ref := testServer(t, nil) // unlimited store: the exact oracle
	var wantSweep SweepResponse
	if code, raw := postJSON(t, ref.URL+"/v1/sweep", sreq, &wantSweep); code != 200 {
		t.Fatalf("reference sweep = %d: %s", code, raw)
	}
	var wantReplay ReplayResponse
	if code, raw := postJSON(t, ref.URL+"/v1/replay", rreq, &wantReplay); code != 200 {
		t.Fatalf("reference replay = %d: %s", code, raw)
	}

	s, ts := testServer(t, func(c *Config) {
		c.Store = synth.NewStoreLimits(1<<26, colBudget)
	})
	var sresp SweepResponse
	if code, raw := postJSON(t, ts.URL+"/v1/sweep", sreq, &sresp); code != 200 {
		t.Fatalf("sweep = %d: %s", code, raw)
	}
	var rresp ReplayResponse
	if code, raw := postJSON(t, ts.URL+"/v1/replay", rreq, &rresp); code != 200 {
		t.Fatalf("replay = %d: %s", code, raw)
	}

	if !sresp.Degraded || !strings.Contains(sresp.DegradedReason, "columnar") {
		t.Errorf("sweep: degraded=%v reason=%q, want columnar tier", sresp.Degraded, sresp.DegradedReason)
	}
	if sresp.Sampling != nil {
		t.Error("sweep: columnar tier attached a sampling block to an exact answer")
	}
	for i := range wantSweep.Cells {
		if sresp.Cells[i].Misses != wantSweep.Cells[i].Misses {
			t.Errorf("sweep cell %d: columnar %d misses, exact %d", i, sresp.Cells[i].Misses, wantSweep.Cells[i].Misses)
		}
	}
	if !rresp.Degraded || !strings.Contains(rresp.DegradedReason, "columnar") {
		t.Errorf("replay: degraded=%v reason=%q, want columnar tier", rresp.Degraded, rresp.DegradedReason)
	}
	for i := range wantReplay.Results {
		if rresp.Results[i] != wantReplay.Results[i] {
			t.Errorf("replay engine %d: columnar %+v != exact %+v", i, rresp.Results[i], wantReplay.Results[i])
		}
	}
	if got := s.mColumnar.Value(); got != 2 {
		t.Errorf("columnar_tier_total = %d, want 2", got)
	}

	// An explicit sampling ask at the same budget is served sampled from the
	// columnar blocks — honored, so not degraded.
	rreq.Sampling = &SamplingSpec{Window: 1000, Period: 8000, Skip: true}
	var sampled ReplayResponse
	if code, raw := postJSON(t, ts.URL+"/v1/replay", rreq, &sampled); code != 200 {
		t.Fatalf("sampled replay = %d: %s", code, raw)
	}
	if sampled.Degraded {
		t.Errorf("explicit sampling over columnar marked degraded: %q", sampled.DegradedReason)
	}
	if sampled.Sampling == nil || sampled.Sampling.CI95 <= 0 {
		t.Errorf("explicit sampling over columnar returned no intervals: %+v", sampled.Sampling)
	}
	if got := s.mColumnar.Value(); got != 3 {
		t.Errorf("columnar_tier_total after sampled ask = %d, want 3", got)
	}
}
