// External test package: internal/check imports internal/server, so the
// leak bracket (check.NoGoroutineLeak) can only be used from outside the
// server package itself.
package server_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"ibsim/internal/check"
	"ibsim/internal/server"
)

// TestCrashServerDrainNoGoroutineLeak serves real traffic, drains the
// server, and asserts every goroutine the server spawned has exited — the
// drain path must not strand accept loops, handlers, or limiter waiters.
func TestCrashServerDrainNoGoroutineLeak(t *testing.T) {
	assertNoLeak := check.NoGoroutineLeak(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, ln) }()
	for i := 0; i < 200 && !s.Ready(); i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if !s.Ready() {
		t.Fatal("server never became ready")
	}

	// A private transport so client-side keep-alive goroutines are ours to
	// tear down, not the process-global default transport's.
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	resp, err := client.Get("http://" + ln.Addr().String() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
	tr.CloseIdleConnections()
	assertNoLeak()
}
