package server

import (
	"reflect"
	"strings"
	"testing"

	"ibsim/internal/synth"
)

// An explicit skip-mode time-sampling request against a store too small for
// even the columnar file is served by the checkpoint-seek streaming tier:
// the sampling ask is honored exactly as specified (not degraded), and the
// numbers are bit-identical to the same request against an unlimited store,
// because RunSeek/SampledSeek are bit-identical to the run-materialized
// sampled paths. A warm spec at the same budget cannot seek and still falls
// to the exact streaming rung, degraded.
func TestSeekTierServesExplicitSkipSampling(t *testing.T) {
	sreq := SweepRequest{Workload: "eqntott", Instructions: 100_000, LineSize: 32,
		Cells:    []CellSpec{{Sets: 256, Assoc: 1}, {Sets: 1024, Assoc: 1}},
		Sampling: &SamplingSpec{Window: 1000, Period: 8000, Skip: true}}
	rreq := ReplayRequest{Workload: "eqntott", Instructions: 100_000,
		Engines:  []EngineSpec{{Size: 8192, LineSize: 32, Assoc: 1, Link: LinkSpec{Name: "economy"}}},
		Sampling: &SamplingSpec{Window: 1000, Period: 8000, Skip: true}}

	_, ref := testServer(t, nil) // unlimited store: the run-materialized oracle
	var wantSweep SweepResponse
	if code, raw := postJSON(t, ref.URL+"/v1/sweep", sreq, &wantSweep); code != 200 {
		t.Fatalf("reference sweep = %d: %s", code, raw)
	}
	var wantReplay ReplayResponse
	if code, raw := postJSON(t, ref.URL+"/v1/replay", rreq, &wantReplay); code != 200 {
		t.Fatalf("reference replay = %d: %s", code, raw)
	}

	s, ts := testServer(t, func(c *Config) {
		c.Store = synth.NewStoreLimits(1<<26, 1<<10) // rejects refs, runs, and columnar
	})
	var sresp SweepResponse
	if code, raw := postJSON(t, ts.URL+"/v1/sweep", sreq, &sresp); code != 200 {
		t.Fatalf("sweep = %d: %s", code, raw)
	}
	var rresp ReplayResponse
	if code, raw := postJSON(t, ts.URL+"/v1/replay", rreq, &rresp); code != 200 {
		t.Fatalf("replay = %d: %s", code, raw)
	}

	if sresp.Degraded || rresp.Degraded {
		t.Errorf("seek tier marked explicit sampling degraded: sweep %q, replay %q",
			sresp.DegradedReason, rresp.DegradedReason)
	}
	if sresp.Sampling == nil || sresp.Sampling.Mode != "time" || sresp.Sampling.CI95 <= 0 {
		t.Fatalf("sweep sampling block not populated: %+v", sresp.Sampling)
	}
	sresp.ElapsedSeconds, wantSweep.ElapsedSeconds = 0, 0
	if !reflect.DeepEqual(sresp, wantSweep) {
		t.Errorf("seek-tier sweep diverged from run-materialized sampling:\n got %+v\nwant %+v", sresp, wantSweep)
	}
	rresp.ElapsedSeconds, wantReplay.ElapsedSeconds = 0, 0
	if !reflect.DeepEqual(rresp, wantReplay) {
		t.Errorf("seek-tier replay diverged from run-materialized sampling:\n got %+v\nwant %+v", rresp, wantReplay)
	}
	if got := s.mSeek.Value(); got != 2 {
		t.Errorf("seek_tier_total = %d, want 2", got)
	}

	// Warm sampling cannot seek: same budget must stream exactly, degraded.
	warm := sreq
	warm.Sampling = &SamplingSpec{Window: 1000, Period: 8000}
	var wresp SweepResponse
	if code, raw := postJSON(t, ts.URL+"/v1/sweep", warm, &wresp); code != 200 {
		t.Fatalf("warm sweep = %d: %s", code, raw)
	}
	if !wresp.Degraded || !strings.Contains(wresp.DegradedReason, "stream") {
		t.Errorf("warm spec over budget: degraded=%v reason=%q, want streamed fallback",
			wresp.Degraded, wresp.DegradedReason)
	}
	if wresp.Sampling != nil {
		t.Error("warm spec over budget returned a sampling block from nowhere")
	}
	if got := s.mSeek.Value(); got != 2 {
		t.Errorf("seek_tier_total after warm fallback = %d, want still 2", got)
	}
}
