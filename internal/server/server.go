// Package server is ibsimd's HTTP service layer: a hardened JSON API over
// the simulation library's three heavy primitives — the single-pass sweep
// engine (POST /v1/sweep), the fan-out replay driver (POST /v1/replay), and
// the exhibit renderers (GET /v1/exhibit/{name}) — plus /healthz, /readyz,
// and /metrics (expvar).
//
// Robustness is the design center, not an afterthought:
//
//   - Admission control: every simulation request is weighed by its
//     estimated trace footprint (synth.TraceBytes) and admitted through a
//     weighted semaphore with a bounded FIFO wait queue; overflow is shed
//     as 429 + Retry-After instead of accumulating.
//   - Deadlines: each request runs under a context deadline (client-chosen
//     via timeout_ms, clamped to server bounds) that propagates into the
//     experiment/sweep/replay layers, so no request can hold capacity
//     forever.
//   - Deduplication: identical in-flight requests (canonical request hash)
//     share one execution — the repeated design-space queries the paper's
//     Figure 5 variability methodology generates cost one simulation, not N.
//   - Panic isolation: a handler panic (including a worker panic surfaced
//     as *experiments.WorkerError) becomes a structured 500; the daemon
//     never dies with a request.
//   - Graceful degradation, in tiers: requests beyond the server maxima are
//     clamped; when the trace store cannot materialize the full trace the
//     sweep/replay paths first engage sampled simulation over the
//     run-compacted trace (reduced fidelity with explicit 95% confidence
//     intervals — the "sampling" tier, also available on request via the
//     sampling knob), and only when even the compacted trace is over budget
//     fall back to streaming regeneration in O(1) memory; requests with
//     near deadlines run at reduced scale. Every such answer carries an
//     explicit "degraded": true marker.
//   - Graceful shutdown: Run drains in-flight requests on context
//     cancellation (SIGTERM in cmd/ibsimd) before returning.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"ibsim"
	"ibsim/internal/experiments"
	"ibsim/internal/fetch"
	"ibsim/internal/replay"
	"ibsim/internal/sweep"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// Config parameterizes a Server. The zero value is usable: every field has
// a production default.
type Config struct {
	// Store supplies memoized traces; nil uses synth.DefaultStore. Give a
	// hard-budgeted store (synth.NewStoreLimits) to bound materialized
	// trace memory — requests over the budget degrade to streaming.
	Store *synth.Store
	// MaxInflightBytes is the weighted-semaphore capacity: the summed
	// trace-footprint estimate of concurrently admitted requests (default
	// 1 GiB).
	MaxInflightBytes int64
	// MaxQueue bounds how many requests may wait for admission beyond
	// capacity (default 16, negative for no queue at all); the rest get
	// 429 + Retry-After.
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the request names
	// none (default 60s); MaxTimeout caps client-requested deadlines
	// (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds the graceful-shutdown drain (default 30s).
	DrainTimeout time.Duration
	// ReadHeaderTimeout and ReadTimeout guard the HTTP read path against
	// slow-loris peers (defaults 5s / 2m).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	// MaxBodyBytes bounds a request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxInstructions caps a request's per-workload instruction budget;
	// larger asks are clamped and marked degraded (default 8M, lowered if
	// MaxInflightBytes cannot admit it).
	MaxInstructions int64
	// MaxTrials caps figure5-style repeat trials (default 10).
	MaxTrials int
	// MaxEngines and MaxCells bound a replay bank / sweep grid (defaults
	// 64 / 256); beyond them the request is rejected as bad, not clamped.
	MaxEngines int
	MaxCells   int
	// DegradeWindow: a request whose effective deadline is shorter than
	// this runs at reduced fidelity — instructions clamped to
	// DegradeInstructions, trials to 1 — and is marked degraded (defaults
	// 250ms / 100k). Negative disables deadline-based degradation.
	DegradeWindow       time.Duration
	DegradeInstructions int64
	// FaultHook, when non-nil, is called at named stages ("run:sweep",
	// "run:replay", "run:exhibit") on the leader goroutine after
	// admission. It exists for the chaos suite and tests: a hook that
	// panics proves panic isolation, a hook that blocks holds capacity.
	FaultHook func(stage string)
	// Log receives operational messages; nil discards them (cmd/ibsimd
	// passes a stderr logger).
	Log *log.Logger
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Store == nil {
		c.Store = synth.DefaultStore
	}
	if c.MaxInflightBytes <= 0 {
		c.MaxInflightBytes = 1 << 30
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxInstructions <= 0 {
		c.MaxInstructions = 8_000_000
	}
	// Admission must be able to grant the largest single request.
	if max := c.MaxInflightBytes / synth.TraceBytes(1, true); c.MaxInstructions > max && max > 0 {
		c.MaxInstructions = max
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 10
	}
	if c.MaxEngines <= 0 {
		c.MaxEngines = 64
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 256
	}
	if c.DegradeInstructions <= 0 {
		c.DegradeInstructions = 100_000
	}
	if c.DegradeWindow < 0 {
		c.DegradeWindow = 0
	} else if c.DegradeWindow == 0 {
		c.DegradeWindow = 250 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
	return c
}

// Server is the ibsimd service. Create with New; serve with Run (managed
// listener + graceful drain) or mount Handler on an http.Server directly.
type Server struct {
	cfg     Config
	store   *synth.Store
	limiter *Limiter
	flights *flightGroup
	mux     *http.ServeMux
	handler http.Handler
	ready   atomic.Bool

	// ewmaMillis tracks a smoothed request duration for Retry-After
	// estimates.
	ewmaMillis atomic.Int64

	vars                                    *expvar.Map
	mRequests, mAdmitted, mRejected, mDedup expvar.Int
	mQueueTimeouts, mDegraded, mPanics      expvar.Int
	mCanceled, mSampled, mColumnar, mSeek   expvar.Int
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		limiter: NewLimiter(cfg.MaxInflightBytes, cfg.MaxQueue),
		flights: newFlightGroup(),
		mux:     http.NewServeMux(),
	}
	s.vars = new(expvar.Map).Init()
	s.vars.Set("requests_total", &s.mRequests)
	s.vars.Set("admitted_total", &s.mAdmitted)
	s.vars.Set("rejected_429_total", &s.mRejected)
	s.vars.Set("queue_timeouts_total", &s.mQueueTimeouts)
	s.vars.Set("dedup_hits_total", &s.mDedup)
	s.vars.Set("degraded_total", &s.mDegraded)
	s.vars.Set("panics_recovered_total", &s.mPanics)
	s.vars.Set("canceled_total", &s.mCanceled)
	s.vars.Set("sampling_tier_total", &s.mSampled)
	s.vars.Set("columnar_tier_total", &s.mColumnar)
	s.vars.Set("seek_tier_total", &s.mSeek)
	s.vars.Set("inflight_bytes", expvar.Func(func() any { return s.limiter.Used() }))
	s.vars.Set("admission_queue", expvar.Func(func() any { return s.limiter.Queued() }))
	s.vars.Set("ready", expvar.Func(func() any { return s.ready.Load() }))
	s.vars.Set("store", expvar.Func(func() any { return s.store.Stats() }))

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/replay", s.handleReplay)
	s.mux.HandleFunc("GET /v1/exhibit/{name}", s.handleExhibit)
	s.handler = s.recoverer(s.mux)
	return s
}

// Handler returns the fully middleware-wrapped handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Ready reports whether the server is accepting work (true between Run
// start and drain start).
func (s *Server) Ready() bool { return s.ready.Load() }

// InflightBytes returns the admitted trace-footprint weight — capacity
// currently held by running requests.
func (s *Server) InflightBytes() int64 { return s.limiter.Used() }

// QueueLen returns the number of requests waiting for admission.
func (s *Server) QueueLen() int { return s.limiter.Queued() }

// Run serves on ln until ctx is cancelled, then drains: the listener
// closes, /readyz flips to 503, and in-flight requests get up to
// Config.DrainTimeout to finish before Run returns. A clean drain returns
// nil.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		ErrorLog:          s.cfg.Log,
	}
	s.ready.Store(true)
	defer s.ready.Store(false)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		s.ready.Store(false)
		s.cfg.Log.Printf("draining: waiting up to %v for in-flight requests", s.cfg.DrainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err := hs.Shutdown(dctx)
		<-errc // Serve has returned ErrServerClosed
		if err != nil {
			return fmt.Errorf("server: drain incomplete: %w", err)
		}
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// recoverer is the outermost backstop: any panic that escapes a handler
// (the singleflight leader wrapper catches the simulation paths first)
// becomes a structured 500 instead of killing the daemon.
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.mPanics.Add(1)
				s.cfg.Log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				s.writeError(w, ErrorDetail{Status: http.StatusInternalServerError, Kind: "panic",
					Message: fmt.Sprintf("handler panicked: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// --- plumbing -----------------------------------------------------------

// hook fires the configured fault hook.
func (s *Server) hook(stage string) {
	if s.cfg.FaultHook != nil {
		s.cfg.FaultHook(stage)
	}
}

// observe folds one request duration into the Retry-After estimator.
func (s *Server) observe(d time.Duration) {
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	for {
		old := s.ewmaMillis.Load()
		next := ms
		if old > 0 {
			next = (7*old + ms) / 8
		}
		if s.ewmaMillis.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds estimates how long a shed request should wait before
// retrying: the smoothed request duration times the queue it would sit
// behind, clamped to [1, 60].
func (s *Server) retryAfterSeconds() int {
	ms := s.ewmaMillis.Load()
	if ms <= 0 {
		ms = 1000
	}
	est := (ms*int64(1+s.limiter.Queued()) + 999) / 1000
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return int(est)
}

// timeoutFor resolves a request's effective deadline from its timeout_ms.
func (s *Server) timeoutFor(millis int64) time.Duration {
	if millis <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(millis) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// errorFor classifies a simulation error into the wire envelope.
func (s *Server) errorFor(err error) *ErrorDetail {
	var we *experiments.WorkerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &ErrorDetail{Status: http.StatusGatewayTimeout, Kind: "deadline",
			Message: "request deadline exceeded before the simulation finished"}
	case errors.Is(err, context.Canceled):
		return &ErrorDetail{Status: 499, Kind: "canceled", Message: "client went away"}
	case errors.As(err, &we):
		return &ErrorDetail{Status: http.StatusInternalServerError, Kind: "worker-panic",
			Message: fmt.Sprintf("workload %q panicked in a simulation worker (isolated): %v", we.Workload, we.Recovered)}
	case errors.Is(err, synth.ErrOverBudget):
		return &ErrorDetail{Status: http.StatusServiceUnavailable, Kind: "over-budget",
			Message: err.Error(), RetryAfterSeconds: s.retryAfterSeconds()}
	default:
		return &ErrorDetail{Status: http.StatusInternalServerError, Kind: "internal", Message: err.Error()}
	}
}

// writeError emits the structured error envelope.
func (s *Server) writeError(w http.ResponseWriter, det ErrorDetail) {
	body, _ := json.Marshal(ErrorBody{Error: det})
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if det.RetryAfterSeconds > 0 {
		h.Set("Retry-After", fmt.Sprint(det.RetryAfterSeconds))
	}
	w.WriteHeader(det.Status)
	w.Write(body)
}

// writeResponse emits a completed flight's response.
func (s *Server) writeResponse(w http.ResponseWriter, resp *response) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if resp.retryAfter > 0 {
		h.Set("Retry-After", fmt.Sprint(resp.retryAfter))
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// readJSON decodes a bounded request body, writing the 400/413 itself on
// failure.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, ErrorDetail{Status: http.StatusRequestEntityTooLarge, Kind: "bad-request",
				Message: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request",
			Message: "malformed JSON request: " + err.Error()})
		return false
	}
	return true
}

// errResponse materializes an error envelope as a flight response.
func errResponse(det ErrorDetail) *response {
	body, _ := json.Marshal(ErrorBody{Error: det})
	return &response{status: det.Status, body: body, retryAfter: det.RetryAfterSeconds}
}

// okResponse materializes a 200 envelope.
func okResponse(v any, degraded bool) *response {
	body, err := json.Marshal(v)
	if err != nil {
		return errResponse(ErrorDetail{Status: http.StatusInternalServerError, Kind: "internal",
			Message: "encoding response: " + err.Error()})
	}
	return &response{status: http.StatusOK, body: body, degraded: degraded}
}

// runOutcome is what an endpoint's run function produces.
type runOutcome struct {
	value    any
	degraded bool
	err      *ErrorDetail
}

// execute is the shared robust request path: singleflight dedup on key,
// weighted admission, deadline, panic isolation, and structured responses.
// run does the actual simulation under the granted context.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, stage, key string, weight int64, timeout time.Duration, run func(ctx context.Context) runOutcome) {
	s.mRequests.Add(1)
	for attempt := 0; ; attempt++ {
		resp, leader, err := s.flights.do(r.Context(), key, func() *response {
			return s.lead(r, stage, weight, timeout, run)
		})
		if err != nil {
			// Our own client gave up while we were drafting behind a
			// leader; there is no one left to answer.
			s.mCanceled.Add(1)
			return
		}
		if !leader {
			if resp.canceled && attempt < 2 && r.Context().Err() == nil {
				// The leader's client vanished and took the flight with
				// it; we are still live, so run the request ourselves.
				continue
			}
			s.mDedup.Add(1)
		}
		if resp.canceled {
			// Leader path: our client is gone; nothing to write. Follower
			// path (attempts exhausted): shed with a retry hint.
			if leader {
				return
			}
			s.writeError(w, ErrorDetail{Status: http.StatusServiceUnavailable, Kind: "canceled",
				Message: "shared execution was cancelled; retry", RetryAfterSeconds: 1})
			return
		}
		s.writeResponse(w, resp)
		return
	}
}

// lead runs one flight as its leader: admission, deadline, fault hook,
// simulation, and conversion of every failure mode — including a panic —
// into a structured response.
func (s *Server) lead(r *http.Request, stage string, weight int64, timeout time.Duration, run func(ctx context.Context) runOutcome) (resp *response) {
	defer func() {
		if rec := recover(); rec != nil {
			s.mPanics.Add(1)
			s.cfg.Log.Printf("panic in %s: %v\n%s", stage, rec, debug.Stack())
			resp = errResponse(ErrorDetail{Status: http.StatusInternalServerError, Kind: "panic",
				Message: fmt.Sprintf("request handler panicked (isolated): %v", rec)})
		}
	}()

	release, err := s.limiter.Acquire(r.Context(), weight)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.mRejected.Add(1)
			return errResponse(ErrorDetail{Status: http.StatusTooManyRequests, Kind: "queue-full",
				Message: "admission queue is full; retry later", RetryAfterSeconds: s.retryAfterSeconds()})
		case errors.Is(err, ErrTooHeavy):
			return errResponse(ErrorDetail{Status: http.StatusServiceUnavailable, Kind: "over-budget",
				Message: err.Error(), RetryAfterSeconds: s.retryAfterSeconds()})
		case errors.Is(err, context.DeadlineExceeded):
			s.mQueueTimeouts.Add(1)
			return errResponse(ErrorDetail{Status: http.StatusServiceUnavailable, Kind: "queue-timeout",
				Message: "deadline expired while queued for admission", RetryAfterSeconds: s.retryAfterSeconds()})
		default: // context.Canceled: the client hung up while we queued
			s.mCanceled.Add(1)
			return &response{canceled: true}
		}
	}
	defer release()
	s.mAdmitted.Add(1)

	start := time.Now()
	defer func() { s.observe(time.Since(start)) }()
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	s.hook(stage)
	out := run(ctx)
	if out.err != nil {
		if out.err.Kind == "canceled" {
			s.mCanceled.Add(1)
			return &response{canceled: true}
		}
		return errResponse(*out.err)
	}
	if out.degraded {
		s.mDegraded.Add(1)
	}
	return okResponse(out.value, out.degraded)
}

// --- trivial endpoints --------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		s.writeError(w, ErrorDetail{Status: http.StatusServiceUnavailable, Kind: "draining",
			Message: "server is draining or not yet serving"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, s.vars.String())
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"workloads": ibsim.Workloads()})
}

// --- /v1/sweep ----------------------------------------------------------

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	prof, err := synth.Lookup(req.Workload)
	if err != nil {
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request", Message: err.Error()})
		return
	}
	if req.LineSize <= 0 || req.LineSize&(req.LineSize-1) != 0 {
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request",
			Message: fmt.Sprintf("line_size %d must be a positive power of two", req.LineSize)})
		return
	}
	if len(req.Cells) == 0 || len(req.Cells) > s.cfg.MaxCells {
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request",
			Message: fmt.Sprintf("cells must name 1..%d geometries, got %d", s.cfg.MaxCells, len(req.Cells))})
		return
	}
	cells := make([]sweep.Cell, len(req.Cells))
	for i, c := range req.Cells {
		if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 || c.Assoc < 1 {
			s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request",
				Message: fmt.Sprintf("cell %d: sets must be a positive power of two and assoc >= 1", i)})
			return
		}
		cells[i] = sweep.Cell{Sets: c.Sets, Assoc: c.Assoc}
	}
	if req.Sampling != nil {
		if err := req.Sampling.validate(); err != nil {
			s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request", Message: err.Error()})
			return
		}
		if req.Sampling.Set > 1 {
			for i, c := range cells {
				if c.Sets < req.Sampling.Set {
					s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request",
						Message: fmt.Sprintf("sampling: cell %d has %d sets < set-sampling modulus %d (sampled lines would not cover whole sets)", i, c.Sets, req.Sampling.Set)})
					return
				}
			}
		}
	}

	timeout := s.timeoutFor(req.TimeoutMillis)
	n, _, reason := s.clampScale(req.Instructions, 0, timeout)
	req.Instructions, req.TimeoutMillis = n, 0 // normalize for the dedup key
	key := canonicalKey("sweep", req)
	weight := synth.TraceBytes(n, false)

	s.execute(w, r, "run:sweep", key, weight, timeout, func(ctx context.Context) runOutcome {
		start := time.Now()
		p := sweep.Pass{LineSize: req.LineSize, Cells: cells, CountDistinct: req.CountDistinct, Ctx: ctx}
		m, sm, mode, degraded, why, err := s.sweepMatrix(ctx, p, prof, req.Seed, n, req.Sampling)
		if err != nil {
			return runOutcome{err: s.errorFor(err)}
		}
		degraded = degraded || reason != ""
		resp := &SweepResponse{
			Workload:       prof.Name,
			Seed:           req.Seed,
			Instructions:   n,
			Degraded:       degraded,
			DegradedReason: joinReasons(reason, why),
		}
		if sm != nil {
			resp.LineSize = sm.LineSize
			resp.Accesses = sm.SampledInstructions
			resp.Distinct = sm.Distinct
			resp.Cells = make([]CellResult, len(sm.Cells))
			var ci float64
			for i, c := range sm.Cells {
				est := sm.Estimates[i]
				resp.Cells[i] = CellResult{Sets: c.Sets, Assoc: c.Assoc, SizeBytes: c.Size(sm.LineSize),
					Misses: sm.Misses[i], MPI: est.MPI, CI95: est.CI95}
				ci += est.CI95
			}
			resp.Sampling = &SamplingInfo{
				Mode:                 mode,
				Coverage:             sm.Coverage(),
				CI95:                 ci / float64(len(sm.Cells)),
				MeasuredInstructions: sm.SampledInstructions,
			}
		} else {
			resp.LineSize = m.LineSize
			resp.Accesses = m.Accesses
			resp.Distinct = m.Distinct
			resp.Cells = make([]CellResult, len(m.Cells))
			for i, c := range m.Cells {
				resp.Cells[i] = CellResult{Sets: c.Sets, Assoc: c.Assoc, SizeBytes: c.Size(m.LineSize), Misses: m.Misses[i]}
			}
		}
		resp.ElapsedSeconds = time.Since(start).Seconds()
		return runOutcome{value: resp, degraded: degraded}
	})
}

// The automatic sampling tier's policy knobs: 1/16 of the sets (halved until
// the grid's smallest cell can cover whole sets), or — when the grid cannot
// support set sampling at all — skip-mode time sampling at 1/16 coverage with
// Instructions/256 windows. Skip (not warm) because warm replay still walks
// the whole trace; only skipping buys the tier its speed.
const (
	autoSetMod    = 16
	autoSetMatch  = 3
	autoWindowDiv = 256
	autoPeriodMul = 16
	autoMinWindow = 64
)

// autoWindow sizes the automatic tier's measurement window.
func autoWindow(n int64) int64 {
	w := n / autoWindowDiv
	if w < autoMinWindow {
		w = autoMinWindow
	}
	return w
}

// autoSweepSpec picks the automatic sampling policy for a sweep grid.
func autoSweepSpec(cells []sweep.Cell, n int64) SamplingSpec {
	minSets := cells[0].Sets
	for _, c := range cells[1:] {
		if c.Sets < minSets {
			minSets = c.Sets
		}
	}
	mod := autoSetMod
	for mod > minSets {
		mod >>= 1
	}
	if mod > 1 {
		return SamplingSpec{Set: mod}
	}
	w := autoWindow(n)
	return SamplingSpec{Window: w, Period: autoPeriodMul * w, Skip: true}
}

// seekable reports whether the spec is skip-mode time sampling with a real
// gap between windows — the only shape the checkpoint-seek streaming tier
// can serve, since it never generates the skipped spans at all.
func (sp SamplingSpec) seekable() bool {
	return sp.Set <= 1 && sp.Skip && sp.Window > 0 && sp.Window < sp.Period
}

// mode names the spec's sampling dimension for SamplingInfo.
func (sp SamplingSpec) mode() string {
	if sp.Set > 1 {
		return "set"
	}
	return "time"
}

// sampledSweep runs one sampled pass over the run-compacted trace. The
// compacted trace is ~6x smaller than the ref trace, which is exactly why
// this is the mid-tier: requests whose refs are over the store budget
// usually still fit as runs. With spill set (explicit sampling requests),
// runs over budget fall back to iterating the on-disk columnar trace block
// by block — the sampling ask is still satisfied exactly as specified, just
// at disk bandwidth instead of RAM. The automatic ladder passes spill=false:
// when the runs are over budget it prefers the EXACT columnar tier over
// sampling from disk.
func (s *Server) sampledSweep(ctx context.Context, p sweep.Pass, prof synth.Profile, seed uint64, n int64, spec SamplingSpec, spill bool) (*sweep.SampledMatrix, error) {
	sp := sweep.SampledPass{LineSize: p.LineSize, Cells: p.Cells, CountDistinct: p.CountDistinct, Ctx: ctx}
	if spec.Set > 1 {
		sp.SetMod = spec.Set
		sp.SetMatch = autoSetMatch % spec.Set
	} else {
		sp.Window, sp.Period, sp.Warm = spec.Window, spec.Period, !spec.Skip
	}
	runs, release, err := s.store.RunsOnly(ctx, prof, seed, n)
	if err == nil {
		defer release()
		return sp.Run(runs)
	}
	if !spill || !errors.Is(err, synth.ErrOverBudget) {
		return nil, err
	}
	cf, release, err := s.store.Columnar(ctx, prof, seed, n)
	if err != nil {
		return nil, err
	}
	defer release()
	s.mColumnar.Add(1)
	return sp.RunBlocks(cf)
}

// sweepMatrix answers one sweep through the degradation ladder. A request
// carrying an explicit sampling spec runs sampled from the start (not
// degraded: reduced fidelity was the ask; the sampled pass itself falls
// back from RAM runs to the on-disk columnar trace). Otherwise: exact over
// the materialized trace; if the store refuses, the sampling tier
// (auto-policy sampled pass, explicit intervals, degraded); then the
// columnar-disk tier (an EXACT answer iterated block by block from the
// on-disk columnar trace at disk bandwidth); streaming regeneration only if
// even the columnar file is over budget.
func (s *Server) sweepMatrix(ctx context.Context, p sweep.Pass, prof synth.Profile, seed uint64, n int64, spec *SamplingSpec) (m *sweep.Matrix, sm *sweep.SampledMatrix, mode string, degraded bool, reason string, err error) {
	if spec != nil {
		sm, err = s.sampledSweep(ctx, p, prof, seed, n, *spec, true)
		if err == nil {
			return nil, sm, spec.mode(), false, "", nil
		}
		if !errors.Is(err, synth.ErrOverBudget) {
			return nil, nil, "", false, "", err
		}
		if spec.seekable() {
			// Skip-mode time sampling never looks at the skipped spans, so a
			// checkpointed seekable source can serve the EXACT sampling ask
			// in O(1) memory by jumping between measured windows.
			sm, err = s.seekSampledSweep(ctx, p, prof, seed, n, *spec)
			if err == nil {
				s.mSeek.Add(1)
				return nil, sm, spec.mode(), false, "", nil
			}
			if !errors.Is(err, synth.ErrOverBudget) {
				return nil, nil, "", false, "", err
			}
		}
		m, err = s.streamedSweep(ctx, p, prof, seed, n)
		return m, nil, "", true,
			"sampling requested but even the columnar trace exceeds the store's hard budget; streamed an exact answer instead", err
	}
	refs, release, err := s.store.InstrCtx(ctx, prof, seed, n)
	if err == nil {
		defer release()
		m, err = p.Run(refs)
		return m, nil, "", false, "", err
	}
	if !errors.Is(err, synth.ErrOverBudget) {
		return nil, nil, "", false, "", err
	}
	auto := autoSweepSpec(p.Cells, n)
	sm, err = s.sampledSweep(ctx, p, prof, seed, n, auto, false)
	if err == nil {
		s.mSampled.Add(1)
		return nil, sm, auto.mode(), true,
			"trace exceeds the store's hard budget; answered by sampled simulation over the run-compacted trace (95% confidence intervals attached)", nil
	}
	if !errors.Is(err, synth.ErrOverBudget) {
		return nil, nil, "", false, "", err
	}
	m, err = s.columnarSweep(ctx, p, prof, seed, n)
	if err == nil {
		return m, nil, "", true,
			"trace exceeds the store's hard RAM budget; answered exactly from the on-disk columnar trace", nil
	}
	if !errors.Is(err, synth.ErrOverBudget) {
		return nil, nil, "", false, "", err
	}
	m, err = s.streamedSweep(ctx, p, prof, seed, n)
	return m, nil, "", true, "trace exceeds the store's hard budget; streamed without materializing", err
}

// columnarSweep is the columnar-disk rung: an exact pass iterated block by
// block over the store's on-disk columnar trace in O(block) memory.
func (s *Server) columnarSweep(ctx context.Context, p sweep.Pass, prof synth.Profile, seed uint64, n int64) (*sweep.Matrix, error) {
	cf, release, err := s.store.Columnar(ctx, prof, seed, n)
	if err != nil {
		return nil, err
	}
	defer release()
	s.mColumnar.Add(1)
	return p.RunBlocks(cf)
}

// seekSampledSweep is the seek-streaming rung for explicit skip-mode time
// sampling: when neither the runs nor the columnar file fit the budget, the
// pass runs over a checkpointed seekable source that jumps straight between
// measured windows — the sampling ask is still honored exactly as
// specified, generating only O(sampled refs) in O(1) memory.
func (s *Server) seekSampledSweep(ctx context.Context, p sweep.Pass, prof synth.Profile, seed uint64, n int64, spec SamplingSpec) (*sweep.SampledMatrix, error) {
	sp := sweep.SampledPass{LineSize: p.LineSize, Cells: p.Cells, CountDistinct: p.CountDistinct, Ctx: ctx,
		Window: spec.Window, Period: spec.Period}
	src, release, err := s.store.SeekSource(prof, seed, n)
	if err != nil {
		return nil, err
	}
	defer release()
	return sp.RunSeek(src)
}

// streamedSweep is the last rung: an exact pass over streaming regeneration
// in O(1) memory.
func (s *Server) streamedSweep(ctx context.Context, p sweep.Pass, prof synth.Profile, seed uint64, n int64) (*sweep.Matrix, error) {
	src, release, err := s.store.Source(prof, seed, n)
	if err != nil {
		return nil, err
	}
	defer release()
	return p.RunSource(&ctxSource{src: src, ctx: ctx})
}

// --- /v1/replay ---------------------------------------------------------

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	prof, err := synth.Lookup(req.Workload)
	if err != nil {
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request", Message: err.Error()})
		return
	}
	if len(req.Engines) == 0 || len(req.Engines) > s.cfg.MaxEngines {
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request",
			Message: fmt.Sprintf("engines must name 1..%d configurations, got %d", s.cfg.MaxEngines, len(req.Engines))})
		return
	}
	// Validate the bank up front (400), but build fresh engines per
	// execution: engines are stateful.
	for i, spec := range req.Engines {
		if _, err := spec.build(); err != nil {
			s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request",
				Message: fmt.Sprintf("engine %d: %v", i, err)})
			return
		}
	}
	if req.Sampling != nil {
		if err := req.Sampling.validate(); err != nil {
			s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request", Message: err.Error()})
			return
		}
		if req.Sampling.Set != 0 {
			s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request",
				Message: "sampling: set sampling is a sweep-request knob; replay banks mix line sizes and prefetchers, use time sampling (window, period)"})
			return
		}
	}

	timeout := s.timeoutFor(req.TimeoutMillis)
	n, _, reason := s.clampScale(req.Instructions, 0, timeout)
	req.Instructions, req.TimeoutMillis = n, 0
	key := canonicalKey("replay", req)
	weight := synth.TraceBytes(n, true)

	s.execute(w, r, "run:replay", key, weight, timeout, func(ctx context.Context) runOutcome {
		start := time.Now()
		engines := make([]fetch.Engine, len(req.Engines))
		for i, spec := range req.Engines {
			e, err := spec.build()
			if err != nil {
				return runOutcome{err: &ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request", Message: err.Error()}}
			}
			engines[i] = e
		}
		results, sampled, degraded, why, err := s.replayBank(ctx, prof, req.Seed, n, engines, req.Sampling)
		if err != nil {
			return runOutcome{err: s.errorFor(err)}
		}
		degraded = degraded || reason != ""
		resp := &ReplayResponse{
			Workload:       prof.Name,
			Seed:           req.Seed,
			Instructions:   n,
			Degraded:       degraded,
			DegradedReason: joinReasons(reason, why),
		}
		if sampled != nil {
			resp.Results = make([]EngineResult, len(sampled))
			var ci float64
			for i, sr := range sampled {
				resp.Results[i] = EngineResult{
					Instructions: sr.Measured.Instructions, Misses: sr.Measured.Misses,
					BufferHits: sr.Measured.BufferHits, StallCycles: sr.Measured.StallCycles,
					CPI: sr.Measured.CPIinstr(), MPI: sr.Estimate.MPI, CI95: sr.Estimate.CI95,
				}
				ci += sr.Estimate.CI95
			}
			// Coverage and the measured instruction count are properties of
			// the shared sample schedule, identical across the bank.
			est := sampled[0].Estimate
			resp.Sampling = &SamplingInfo{
				Mode:                 "time",
				Coverage:             est.Coverage,
				CI95:                 ci / float64(len(sampled)),
				MeasuredInstructions: est.SampledInstructions,
			}
		} else {
			resp.Results = make([]EngineResult, len(results))
			for i, res := range results {
				resp.Results[i] = EngineResult{
					Instructions: res.Instructions, Misses: res.Misses, BufferHits: res.BufferHits,
					StallCycles: res.StallCycles, CPI: res.CPIinstr(), MPI: res.MPI(),
				}
			}
		}
		resp.ElapsedSeconds = time.Since(start).Seconds()
		return runOutcome{value: resp, degraded: degraded}
	})
}

// sampledReplay fans a time-sampled trace through the bank over the
// run-compacted trace. With spill set (explicit sampling requests), runs
// over budget fall back to block-granular sampled replay over the on-disk
// columnar trace — skip-mode plans then seek straight to each measured
// window through the block index instead of decoding the gaps.
func (s *Server) sampledReplay(ctx context.Context, prof synth.Profile, seed uint64, n int64, engines []fetch.Engine, spec SamplingSpec, spill bool) ([]replay.SampledResult, error) {
	plan := replay.SamplePlan{Window: spec.Window, Period: spec.Period, Warm: !spec.Skip}
	runs, release, err := s.store.RunsOnly(ctx, prof, seed, n)
	if err == nil {
		defer release()
		return replay.Sampled(ctx, runs, engines, plan)
	}
	if !spill || !errors.Is(err, synth.ErrOverBudget) {
		return nil, err
	}
	cf, release, err := s.store.Columnar(ctx, prof, seed, n)
	if err != nil {
		return nil, err
	}
	defer release()
	s.mColumnar.Add(1)
	return replay.SampledBlocks(ctx, cf, engines, plan)
}

// replayBank fans the trace out through the engines, down the same
// degradation ladder as sweepMatrix: an explicit sampling spec runs sampled
// from the start (not degraded; the sampled replay itself falls back from
// RAM runs to the on-disk columnar trace); otherwise exact over the
// memoized run-compacted trace, then the automatic sampling tier (skip-mode
// time sampling, degraded, intervals attached), then the columnar-disk tier
// (EXACT block-granular fan-out from the on-disk columnar trace), and
// finally one streaming regeneration per engine.
func (s *Server) replayBank(ctx context.Context, prof synth.Profile, seed uint64, n int64, engines []fetch.Engine, spec *SamplingSpec) (results []fetch.Result, sampled []replay.SampledResult, degraded bool, reason string, err error) {
	if spec != nil {
		sampled, err = s.sampledReplay(ctx, prof, seed, n, engines, *spec, true)
		if err == nil {
			return nil, sampled, false, "", nil
		}
		if !errors.Is(err, synth.ErrOverBudget) {
			return nil, nil, false, "", err
		}
		if spec.seekable() {
			// Over-budget failures happen before any engine is fed, so the
			// bank is still fresh for the seek-streaming rung.
			sampled, err = s.seekSampledReplay(ctx, prof, seed, n, engines, *spec)
			if err == nil {
				s.mSeek.Add(1)
				return nil, sampled, false, "", nil
			}
			if !errors.Is(err, synth.ErrOverBudget) {
				return nil, nil, false, "", err
			}
		}
		results, err = s.streamedReplay(ctx, prof, seed, n, engines)
		return results, nil, true,
			"sampling requested but even the columnar trace exceeds the store's hard budget; replayed exactly from streaming regeneration", err
	}
	_, runs, release, err := s.store.InstrRuns(ctx, prof, seed, n)
	if err == nil {
		defer release()
		results, err = replay.Replay(ctx, runs, engines)
		return results, nil, false, "", err
	}
	if !errors.Is(err, synth.ErrOverBudget) {
		return nil, nil, false, "", err
	}
	w := autoWindow(n)
	auto := SamplingSpec{Window: w, Period: autoPeriodMul * w, Skip: true}
	sampled, err = s.sampledReplay(ctx, prof, seed, n, engines, auto, false)
	if err == nil {
		s.mSampled.Add(1)
		return nil, sampled, true,
			"trace exceeds the store's hard budget; answered by time-sampled replay over the run-compacted trace (95% confidence intervals attached)", nil
	}
	if !errors.Is(err, synth.ErrOverBudget) {
		return nil, nil, false, "", err
	}
	results, err = s.columnarReplay(ctx, prof, seed, n, engines)
	if err == nil {
		return results, nil, true,
			"trace exceeds the store's hard RAM budget; answered exactly from the on-disk columnar trace", nil
	}
	if !errors.Is(err, synth.ErrOverBudget) {
		return nil, nil, false, "", err
	}
	results, err = s.streamedReplay(ctx, prof, seed, n, engines)
	return results, nil, true, "trace exceeds the store's hard budget; replayed from streaming regeneration", err
}

// seekSampledReplay is the replay path's seek-streaming rung for explicit
// skip-mode time sampling: a checkpointed seekable source feeds the bank
// only the measured windows, honoring the sampling ask exactly in O(1)
// memory when neither runs nor the columnar file fit the budget.
func (s *Server) seekSampledReplay(ctx context.Context, prof synth.Profile, seed uint64, n int64, engines []fetch.Engine, spec SamplingSpec) ([]replay.SampledResult, error) {
	src, release, err := s.store.SeekSource(prof, seed, n)
	if err != nil {
		return nil, err
	}
	defer release()
	return replay.SampledSeek(ctx, src, engines, replay.SamplePlan{Window: spec.Window, Period: spec.Period})
}

// columnarReplay is the replay path's columnar-disk rung: an exact
// block-granular fan-out over the store's on-disk columnar trace,
// parallelized across the bank (replay.BlocksParallel partitions the
// simulated engines over the CPUs; results stay bit-identical to the serial
// path, pinned by the differential/blocks-parallel check).
func (s *Server) columnarReplay(ctx context.Context, prof synth.Profile, seed uint64, n int64, engines []fetch.Engine) ([]fetch.Result, error) {
	cf, release, err := s.store.Columnar(ctx, prof, seed, n)
	if err != nil {
		return nil, err
	}
	defer release()
	s.mColumnar.Add(1)
	return replay.BlocksParallel(ctx, cf, engines, runtime.GOMAXPROCS(0))
}

// streamedReplay is the replay path's last rung: one exact streaming
// regeneration per engine in O(1) memory.
func (s *Server) streamedReplay(ctx context.Context, prof synth.Profile, seed uint64, n int64, engines []fetch.Engine) ([]fetch.Result, error) {
	results := make([]fetch.Result, len(engines))
	for i, e := range engines {
		src, release, err := s.store.Source(prof, seed, n)
		if err != nil {
			return nil, err
		}
		res, rerr := fetch.RunSource(e, &ctxSource{src: src, ctx: ctx})
		release()
		if rerr != nil {
			return nil, rerr
		}
		results[i] = res
	}
	return results, nil
}

// --- /v1/exhibit --------------------------------------------------------

func (s *Server) handleExhibit(w http.ResponseWriter, r *http.Request) {
	req := ExhibitRequest{Name: r.PathValue("name")}
	if !ibsim.IsExhibit(req.Name) {
		s.writeError(w, ErrorDetail{Status: http.StatusNotFound, Kind: "not-found",
			Message: fmt.Sprintf("unknown exhibit %q", req.Name)})
		return
	}
	q := r.URL.Query()
	var err error
	if req.Instructions, err = queryInt(q.Get("n")); err != nil {
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request", Message: "n: " + err.Error()})
		return
	}
	var trials64 int64
	if trials64, err = queryInt(q.Get("trials")); err != nil {
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request", Message: "trials: " + err.Error()})
		return
	}
	req.Trials = int(trials64)
	var seed int64
	if seed, err = queryInt(q.Get("seed")); err != nil || seed < 0 {
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request", Message: "seed: must be a non-negative integer"})
		return
	}
	req.Seed = uint64(seed)
	req.Chart = q.Get("chart") == "1" || q.Get("chart") == "true"
	if req.TimeoutMillis, err = queryInt(q.Get("timeout_ms")); err != nil {
		s.writeError(w, ErrorDetail{Status: http.StatusBadRequest, Kind: "bad-request", Message: "timeout_ms: " + err.Error()})
		return
	}

	timeout := s.timeoutFor(req.TimeoutMillis)
	n, trials, reason := s.clampScale(req.Instructions, req.Trials, timeout)
	req.Instructions, req.Trials, req.TimeoutMillis = n, trials, 0
	key := canonicalKey("exhibit", req)
	weight := synth.TraceBytes(n, true)

	s.execute(w, r, "run:exhibit", key, weight, timeout, func(ctx context.Context) runOutcome {
		start := time.Now()
		opt := ibsim.Options{Instructions: n, Trials: trials, Seed: req.Seed, Context: ctx}
		text, err := ibsim.RenderExhibit(req.Name, opt, req.Chart)
		if err != nil {
			return runOutcome{err: s.errorFor(err)}
		}
		degraded := reason != ""
		return runOutcome{value: &ExhibitResponse{
			Name:           req.Name,
			Instructions:   n,
			Trials:         trials,
			Seed:           req.Seed,
			Text:           text,
			Degraded:       degraded,
			DegradedReason: reason,
			ElapsedSeconds: time.Since(start).Seconds(),
		}, degraded: degraded}
	})
}

// queryInt parses an optional non-negative integer query parameter.
func queryInt(v string) (int64, error) {
	if v == "" {
		return 0, nil
	}
	var n int64
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return 0, fmt.Errorf("must be an integer, got %q", v)
	}
	return n, nil
}

// clampScale applies the degradation policy to a request's scale knobs and
// returns the effective instruction budget, trial count, and — when the
// request was reduced — why. Policy: scale beyond the server maxima is
// clamped; a deadline shorter than DegradeWindow drops the request to
// reduced fidelity (DegradeInstructions, 1 trial) so it can answer inside
// its budget instead of timing out.
func (s *Server) clampScale(n int64, trials int, timeout time.Duration) (int64, int, string) {
	var reasons []string
	if n <= 0 {
		n = 2_000_000
	}
	if n > s.cfg.MaxInstructions {
		n = s.cfg.MaxInstructions
		reasons = append(reasons, fmt.Sprintf("instructions clamped to server maximum %d", n))
	}
	if trials > s.cfg.MaxTrials {
		trials = s.cfg.MaxTrials
		reasons = append(reasons, fmt.Sprintf("trials clamped to server maximum %d", trials))
	}
	if s.cfg.DegradeWindow > 0 && timeout < s.cfg.DegradeWindow {
		if n > s.cfg.DegradeInstructions {
			n = s.cfg.DegradeInstructions
		}
		if trials > 1 {
			trials = 1
		}
		reasons = append(reasons, fmt.Sprintf("deadline %v is inside the degrade window %v; reduced fidelity", timeout, s.cfg.DegradeWindow))
	}
	return n, trials, joinReasons(reasons...)
}

// joinReasons concatenates non-empty degradation reasons.
func joinReasons(reasons ...string) string {
	out := ""
	for _, r := range reasons {
		if r == "" {
			continue
		}
		if out != "" {
			out += "; "
		}
		out += r
	}
	return out
}

// ctxSource wraps a trace.Source with periodic context polling so a
// streaming replay honors cancellation mid-trace.
type ctxSource struct {
	src trace.Source
	ctx context.Context
	n   int64
	err error
}

// Next implements trace.Source.
func (c *ctxSource) Next() (trace.Ref, bool) {
	if c.n&0xffff == 0 {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return trace.Ref{}, false
		}
	}
	c.n++
	return c.src.Next()
}

// Err implements trace.Source: a context error dominates the stream's own.
func (c *ctxSource) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.src.Err()
}
