package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
)

// The wire types of the v1 API, shared with the retrying client
// (internal/server/client). All requests are JSON; all responses carry an
// explicit Degraded marker so a reduced-fidelity answer can never be
// mistaken for a full one.

// CellSpec is one cache geometry of a sweep grid.
type CellSpec struct {
	// Sets is the number of sets; a power of two.
	Sets int `json:"sets"`
	// Assoc is the set associativity (>= 1).
	Assoc int `json:"assoc"`
}

// SamplingSpec asks for sampled (reduced-fidelity, bounded-error) execution
// instead of an exact simulation. Exactly one dimension must be chosen:
//
//   - Set: set sampling — only the cache sets whose index is congruent to a
//     fixed class mod Set are simulated (exact within the subset, ~Set times
//     less work). Sweep requests only; Set must not exceed the grid's
//     smallest set count.
//   - Window/Period: time sampling — the first Window of every Period
//     instructions are measured. Valid for sweeps and replays. Skip skips
//     the unmeasured spans entirely (fastest, small stale-state bias)
//     instead of warming through them.
//
// Sampled responses carry a SamplingInfo block and per-cell / per-engine
// MPI estimates with 95% confidence intervals.
type SamplingSpec struct {
	Set    int   `json:"set,omitempty"`
	Window int64 `json:"window,omitempty"`
	Period int64 `json:"period,omitempty"`
	Skip   bool  `json:"skip,omitempty"`
}

// timeMode reports whether the spec uses time sampling.
func (sp SamplingSpec) timeMode() bool { return sp.Window != 0 || sp.Period != 0 }

// validate checks the spec's internal consistency.
func (sp SamplingSpec) validate() error {
	setMode := sp.Set != 0
	switch {
	case setMode && sp.timeMode():
		return fmt.Errorf("sampling: set and window/period are mutually exclusive")
	case !setMode && !sp.timeMode():
		return fmt.Errorf("sampling: choose set sampling (set) or time sampling (window, period)")
	case setMode && (sp.Set <= 1 || sp.Set&(sp.Set-1) != 0):
		return fmt.Errorf("sampling: set %d must be a power of two > 1", sp.Set)
	case setMode && sp.Skip:
		return fmt.Errorf("sampling: skip applies to time sampling only")
	case sp.timeMode() && sp.Window <= 0:
		return fmt.Errorf("sampling: window %d must be positive", sp.Window)
	case sp.timeMode() && sp.Period < sp.Window:
		return fmt.Errorf("sampling: period %d < window %d", sp.Period, sp.Window)
	}
	return nil
}

// SamplingInfo reports a sampled answer's statistics: what fraction of the
// work was measured and how wide the intervals came out.
type SamplingInfo struct {
	// Mode is "set" or "time".
	Mode string `json:"mode"`
	// Coverage is the measured fraction of the full trace (or set
	// population).
	Coverage float64 `json:"coverage"`
	// CI95 is the mean per-cell (or per-engine) 95% confidence half-width
	// on MPI, in misses-per-instruction units.
	CI95 float64 `json:"ci95"`
	// MeasuredInstructions is the instruction count actually simulated and
	// counted.
	MeasuredInstructions int64 `json:"measured_instructions"`
}

// SweepRequest asks for the exact per-cell LRU miss counts of a capacity ×
// associativity grid over one workload's instruction trace — one
// single-pass sweep (internal/sweep).
type SweepRequest struct {
	// Workload names a registered workload model (ibsim.Workloads()).
	Workload string `json:"workload"`
	// Seed offsets the workload's generation seed; 0 keeps the calibrated
	// profile seed.
	Seed uint64 `json:"seed,omitempty"`
	// Instructions is the trace length (default 2M, clamped to the
	// server's maximum).
	Instructions int64 `json:"instructions,omitempty"`
	// LineSize is the grid's shared line size in bytes; a power of two.
	LineSize int `json:"line_size"`
	// Cells is the capacity × associativity grid.
	Cells []CellSpec `json:"cells"`
	// CountDistinct additionally counts distinct lines (compulsory
	// misses).
	CountDistinct bool `json:"count_distinct,omitempty"`
	// Sampling, when non-nil, asks for sampled execution with confidence
	// intervals instead of an exact sweep.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
	// TimeoutMillis bounds the request's wall-clock time; 0 uses the
	// server default.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// CellResult is one grid cell's outcome.
type CellResult struct {
	Sets      int   `json:"sets"`
	Assoc     int   `json:"assoc"`
	SizeBytes int   `json:"size_bytes"`
	Misses    int64 `json:"misses"`
	// MPI and CI95 are the extrapolated misses-per-instruction estimate and
	// its 95% half-width; present on sampled responses only (on exact
	// responses Misses/Accesses is the answer).
	MPI  float64 `json:"mpi,omitempty"`
	CI95 float64 `json:"ci95,omitempty"`
}

// SweepResponse is the miss matrix of one sweep.
type SweepResponse struct {
	Workload     string       `json:"workload"`
	Seed         uint64       `json:"seed"`
	Instructions int64        `json:"instructions"`
	LineSize     int          `json:"line_size"`
	Accesses     int64        `json:"accesses"`
	Distinct     int64        `json:"distinct,omitempty"`
	Cells        []CellResult `json:"cells"`
	// Degraded marks a reduced-fidelity answer (clamped scale, an automatic
	// sampling tier, or a streaming over-budget fallback); DegradedReason
	// says why.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Sampling is present when the answer was computed by sampled
	// simulation (requested or engaged automatically).
	Sampling       *SamplingInfo `json:"sampling,omitempty"`
	ElapsedSeconds float64       `json:"elapsed_seconds"`
}

// LinkSpec selects a memory link: either a named baseline or explicit
// latency/bandwidth parameters.
type LinkSpec struct {
	// Name picks a baseline: "economy" (30 cycles, 4 B/cycle),
	// "highperf" (12 cycles, 8 B/cycle), or "l1l2" (6 cycles, 16
	// B/cycle). Empty uses the explicit parameters.
	Name string `json:"name,omitempty"`
	// Latency is the cycles until the first chunk arrives.
	Latency int `json:"latency,omitempty"`
	// BytesPerCycle is the transfer bandwidth.
	BytesPerCycle int `json:"bytes_per_cycle,omitempty"`
}

// transfer resolves the spec to a memsys.Transfer.
func (l LinkSpec) transfer() (memsys.Transfer, error) {
	switch strings.ToLower(l.Name) {
	case "economy":
		return memsys.Economy().Memory, nil
	case "highperf", "high-performance":
		return memsys.HighPerformance().Memory, nil
	case "l1l2":
		return memsys.L1L2Link(), nil
	case "":
		t := memsys.Transfer{Latency: l.Latency, BytesPerCycle: l.BytesPerCycle}
		if err := t.Validate(); err != nil {
			return memsys.Transfer{}, err
		}
		return t, nil
	default:
		return memsys.Transfer{}, fmt.Errorf("unknown link name %q (have economy, highperf, l1l2)", l.Name)
	}
}

// EngineSpec parameterizes one fetch engine of a replay bank.
type EngineSpec struct {
	// Kind selects the engine: "blocking" (default), "bypass", or
	// "stream".
	Kind string `json:"kind,omitempty"`
	// Size, LineSize, Assoc describe the L1 I-cache geometry.
	Size     int `json:"size"`
	LineSize int `json:"line_size"`
	Assoc    int `json:"assoc"`
	// Link is the L1-to-next-level transfer.
	Link LinkSpec `json:"link"`
	// PrefetchLines enables sequential prefetch-on-miss (blocking and
	// bypass engines).
	PrefetchLines int `json:"prefetch_lines,omitempty"`
	// Depth is the stream-buffer depth (stream engines; >= 1).
	Depth int `json:"depth,omitempty"`
}

// build constructs the configured engine.
func (e EngineSpec) build() (fetch.Engine, error) {
	cfg := cache.Config{Size: e.Size, LineSize: e.LineSize, Assoc: e.Assoc}
	link, err := e.Link.transfer()
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(e.Kind) {
	case "", "blocking":
		return fetch.NewBlocking(cfg, link, e.PrefetchLines)
	case "bypass":
		return fetch.NewBypass(cfg, link, e.PrefetchLines)
	case "stream":
		return fetch.NewStream(cfg, link, e.Depth)
	default:
		return nil, fmt.Errorf("unknown engine kind %q (have blocking, bypass, stream)", e.Kind)
	}
}

// ReplayRequest asks for one workload's trace to be fanned out through a
// bank of fetch engines (internal/replay) and each engine's Result.
type ReplayRequest struct {
	Workload     string       `json:"workload"`
	Seed         uint64       `json:"seed,omitempty"`
	Instructions int64        `json:"instructions,omitempty"`
	Engines      []EngineSpec `json:"engines"`
	// Sampling, when non-nil, asks for sampled execution. Replay banks mix
	// line sizes and prefetching engines, so only time sampling is valid
	// here; set sampling is a sweep-request knob.
	Sampling      *SamplingSpec `json:"sampling,omitempty"`
	TimeoutMillis int64         `json:"timeout_ms,omitempty"`
}

// EngineResult is one engine's accumulated counters, in bank order.
type EngineResult struct {
	Instructions int64   `json:"instructions"`
	Misses       int64   `json:"misses"`
	BufferHits   int64   `json:"buffer_hits,omitempty"`
	StallCycles  int64   `json:"stall_cycles"`
	CPI          float64 `json:"cpi"`
	MPI          float64 `json:"mpi"`
	// CI95 is the 95% half-width on MPI; present on sampled responses only
	// (the counters above then cover the measured windows, extrapolated by
	// MPI).
	CI95 float64 `json:"ci95,omitempty"`
}

// ReplayResponse is the bank's results in engine order.
type ReplayResponse struct {
	Workload       string         `json:"workload"`
	Seed           uint64         `json:"seed"`
	Instructions   int64          `json:"instructions"`
	Results        []EngineResult `json:"results"`
	Degraded       bool           `json:"degraded"`
	DegradedReason string         `json:"degraded_reason,omitempty"`
	// Sampling is present when the answer was computed by sampled
	// simulation (requested or engaged automatically).
	Sampling       *SamplingInfo `json:"sampling,omitempty"`
	ElapsedSeconds float64       `json:"elapsed_seconds"`
}

// ExhibitRequest parameterizes GET /v1/exhibit/{name}; the fields travel as
// query parameters (n, seed, trials, chart, timeout_ms).
type ExhibitRequest struct {
	Name          string `json:"name"`
	Instructions  int64  `json:"instructions,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	Trials        int    `json:"trials,omitempty"`
	Chart         bool   `json:"chart,omitempty"`
	TimeoutMillis int64  `json:"timeout_ms,omitempty"`
}

// ExhibitResponse carries one rendered exhibit.
type ExhibitResponse struct {
	Name           string  `json:"name"`
	Instructions   int64   `json:"instructions"`
	Trials         int     `json:"trials,omitempty"`
	Seed           uint64  `json:"seed"`
	Text           string  `json:"text"`
	Degraded       bool    `json:"degraded"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// ErrorBody is the structured error envelope every non-2xx v1 response
// carries.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail classifies a failure. Kind is stable and machine-matchable:
// "bad-request", "not-found", "queue-full", "queue-timeout", "deadline",
// "worker-panic", "panic", "over-budget", "internal", "draining".
type ErrorDetail struct {
	Status            int    `json:"status"`
	Kind              string `json:"kind"`
	Message           string `json:"message"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// canonicalKey hashes an endpoint plus its normalized (post-clamp) request
// value into the singleflight key: two requests that would do identical
// work share one execution, whatever their JSON field order or transport
// differences.
func canonicalKey(endpoint string, normalized any) string {
	data, err := json.Marshal(normalized)
	if err != nil {
		// Normalized requests are plain structs; marshal cannot fail. Fall
		// back to a never-matching key rather than conflating requests.
		return fmt.Sprintf("%s:unhashable:%p", endpoint, &data)
	}
	sum := sha256.Sum256(append([]byte(endpoint+"\x00"), data...))
	return hex.EncodeToString(sum[:])
}
