// Package memsys provides the timing primitives of the memory hierarchy:
// link transfer models (latency + bandwidth) and the two baseline memory
// systems of the paper's Table 5.
//
// The timing convention follows Table 5's worked example: "a system with a
// 12-cycle latency and a bandwidth of 8 bytes/cycle requires 12 cycles to
// return the first 8 bytes and delivers 8 additional bytes in each
// subsequent cycle. Filling a 32-byte line would require 12+1+1+1 = 15
// cycles."
package memsys

import "fmt"

// Transfer models a link to the next level of the hierarchy.
type Transfer struct {
	// Latency is the number of cycles until the first BytesPerCycle chunk
	// arrives.
	Latency int
	// BytesPerCycle is the transfer bandwidth.
	BytesPerCycle int
}

// Validate checks the link parameters.
func (t Transfer) Validate() error {
	if t.Latency < 1 {
		return fmt.Errorf("memsys: latency %d must be >= 1", t.Latency)
	}
	if t.BytesPerCycle < 1 {
		return fmt.Errorf("memsys: bandwidth %d must be >= 1", t.BytesPerCycle)
	}
	return nil
}

// String renders the link in the paper's style.
func (t Transfer) String() string {
	return fmt.Sprintf("%d-cycle latency, %d B/cycle", t.Latency, t.BytesPerCycle)
}

// FillCycles returns the cycles to deliver bytes in one burst: the first
// chunk arrives at Latency, each further chunk one cycle later
// (12+1+1+1 = 15 for 32 bytes at 12 cycles / 8 B-per-cycle).
func (t Transfer) FillCycles(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	chunks := (bytes + t.BytesPerCycle - 1) / t.BytesPerCycle
	return t.Latency + chunks - 1
}

// DeliveryCycle returns the cycle (relative to request issue) at which the
// byte at offset within a burst arrives: offset 0..BytesPerCycle-1 arrive at
// Latency, the next chunk one cycle later, and so on.
func (t Transfer) DeliveryCycle(offset int) int {
	if offset < 0 {
		offset = 0
	}
	return t.Latency + offset/t.BytesPerCycle
}

// Baseline describes one of the paper's two base memory-system
// configurations (Table 5): an 8-KB direct-mapped on-chip L1 I-cache backed
// either by main memory (economy) or by a large, ideal off-chip cache
// (high-performance).
type Baseline struct {
	// Name is "economy" or "high-performance".
	Name string
	// Memory is the link from the lowest simulated cache level to the
	// backing store.
	Memory Transfer
}

// Economy returns the low-end baseline: 30-cycle latency, 4 bytes/cycle to
// main memory.
func Economy() Baseline {
	return Baseline{Name: "economy", Memory: Transfer{Latency: 30, BytesPerCycle: 4}}
}

// HighPerformance returns the high-end baseline: 12-cycle latency, 8
// bytes/cycle to an ideal off-chip cache.
func HighPerformance() Baseline {
	return Baseline{Name: "high-performance", Memory: Transfer{Latency: 12, BytesPerCycle: 8}}
}

// Baselines returns both Table 5 configurations, economy first.
func Baselines() []Baseline {
	return []Baseline{Economy(), HighPerformance()}
}

// L1L2Link returns the paper's on-chip L1↔L2 interface used from Figure 3
// on: an L1 miss costs a 6-cycle latency with 16 bytes/cycle of bandwidth.
func L1L2Link() Transfer {
	return Transfer{Latency: 6, BytesPerCycle: 16}
}

// DECstation3100 models the measurement platform of Tables 1–3: split
// 64-KB direct-mapped off-chip I- and D-caches with 4-byte lines and a
// 6-cycle miss penalty.
type DECstation3100 struct {
	// CacheSize is 64 KB for both I- and D-caches.
	CacheSize int
	// LineSize is 4 bytes.
	LineSize int
	// MissPenalty is 6 cycles for both caches.
	MissPenalty int
	// TLBEntries is 64 (fully associative), PageSize 4096.
	TLBEntries int
	PageSize   int
	// TLBPenalty approximates the software TLB-refill trap cost on the
	// R2000 (the utlb handler path).
	TLBPenalty int
	// WriteBufferDepth is the number of entries in the write buffer; the
	// CPU stalls on a store when it is full.
	WriteBufferDepth int
	// WriteCycles is the cycles to retire one write-buffer entry.
	WriteCycles int
}

// NewDECstation3100 returns the platform constants.
func NewDECstation3100() DECstation3100 {
	return DECstation3100{
		CacheSize:        64 * 1024,
		LineSize:         4,
		MissPenalty:      6,
		TLBEntries:       64,
		PageSize:         4096,
		TLBPenalty:       16,
		WriteBufferDepth: 4,
		WriteCycles:      6,
	}
}
