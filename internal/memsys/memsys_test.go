package memsys

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFillCyclesPaperExample(t *testing.T) {
	// Table 5: 12-cycle latency, 8 B/cycle, 32-byte line → 12+1+1+1 = 15.
	hp := Transfer{Latency: 12, BytesPerCycle: 8}
	if got := hp.FillCycles(32); got != 15 {
		t.Fatalf("FillCycles(32) = %d, want 15", got)
	}
	// One chunk arrives exactly at the latency.
	if got := hp.FillCycles(8); got != 12 {
		t.Fatalf("FillCycles(8) = %d, want 12", got)
	}
	if got := hp.FillCycles(4); got != 12 {
		t.Fatalf("FillCycles(4) = %d, want 12 (partial chunk)", got)
	}
	if got := hp.FillCycles(0); got != 0 {
		t.Fatalf("FillCycles(0) = %d, want 0", got)
	}
}

func TestFillCyclesL1L2(t *testing.T) {
	// Figure 3 text: with the 6-cycle, 16 B/cycle L2 link, an 8-KB DM L1
	// with 32-byte lines has stall/miss = 6+1 = 7.
	link := L1L2Link()
	if got := link.FillCycles(32); got != 7 {
		t.Fatalf("L1L2 FillCycles(32) = %d, want 7", got)
	}
}

func TestDeliveryCycle(t *testing.T) {
	tr := Transfer{Latency: 6, BytesPerCycle: 16}
	cases := []struct{ off, want int }{
		{0, 6}, {15, 6}, {16, 7}, {31, 7}, {32, 8}, {-4, 6},
	}
	for _, c := range cases {
		if got := tr.DeliveryCycle(c.off); got != c.want {
			t.Errorf("DeliveryCycle(%d) = %d, want %d", c.off, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Transfer{Latency: 0, BytesPerCycle: 4}).Validate(); err == nil {
		t.Error("zero latency accepted")
	}
	if err := (Transfer{Latency: 5, BytesPerCycle: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Transfer{Latency: 5, BytesPerCycle: 4}).Validate(); err != nil {
		t.Errorf("valid transfer rejected: %v", err)
	}
}

func TestBaselines(t *testing.T) {
	eco := Economy()
	if eco.Memory.Latency != 30 || eco.Memory.BytesPerCycle != 4 {
		t.Errorf("economy = %+v", eco)
	}
	hp := HighPerformance()
	if hp.Memory.Latency != 12 || hp.Memory.BytesPerCycle != 8 {
		t.Errorf("high-performance = %+v", hp)
	}
	bs := Baselines()
	if len(bs) != 2 || bs[0].Name != "economy" || bs[1].Name != "high-performance" {
		t.Errorf("Baselines() = %+v", bs)
	}
}

func TestTransferString(t *testing.T) {
	if s := (Transfer{Latency: 6, BytesPerCycle: 16}).String(); !strings.Contains(s, "6-cycle") || !strings.Contains(s, "16 B/cycle") {
		t.Errorf("String() = %q", s)
	}
}

func TestDECstation3100(t *testing.T) {
	d := NewDECstation3100()
	if d.CacheSize != 65536 || d.LineSize != 4 || d.MissPenalty != 6 {
		t.Errorf("cache constants wrong: %+v", d)
	}
	if d.TLBEntries != 64 || d.PageSize != 4096 {
		t.Errorf("TLB constants wrong: %+v", d)
	}
}

// Property: FillCycles is monotone in bytes, and delivering b bytes never
// takes fewer cycles than the latency.
func TestFillCyclesProperties(t *testing.T) {
	f := func(lat, bpcRaw uint8, bytes uint16) bool {
		tr := Transfer{Latency: int(lat%50) + 1, BytesPerCycle: int(bpcRaw%64) + 1}
		b := int(bytes % 4096)
		if b == 0 {
			return tr.FillCycles(0) == 0
		}
		fc := tr.FillCycles(b)
		if fc < tr.Latency {
			return false
		}
		return tr.FillCycles(b+tr.BytesPerCycle) == fc+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
