// Package fault provides deterministic, seeded fault injection for I/O
// paths: readers and writers that deliver short transfers, truncate the
// stream, flip bits, or fail with an injected error after a byte budget.
//
// The harness exists to prove the robustness contract of the trace codec and
// the stores built on it — typed errors (trace.ErrCorrupt, trace.ErrTruncated),
// never a panic, never a silently wrong result — under the damage classes a
// distributed trace artifact actually suffers: torn downloads, flipped bits,
// flaky disks, and interrupted writes. Every fault schedule is driven by an
// explicit seed, so a failing chaos scenario replays exactly.
package fault

import (
	"errors"
	"io"
	"time"

	"ibsim/internal/xrand"
)

// ErrInjected is the default error delivered by an error-after-N plan that
// does not name its own.
var ErrInjected = errors.New("fault: injected I/O error")

// Plan describes the faults to inject into a stream. The zero value injects
// nothing; each fault arms independently:
//
//   - ShortIO: every Read/Write moves at most 1–3 bytes, on a schedule
//     derived from Seed. Exercises partial-transfer handling; the stream
//     content is unchanged.
//   - TruncateAfter > 0: the stream ends cleanly (io.EOF on read, silent
//     discard on write — a torn write) after that many bytes.
//   - Err != nil: the transfer fails with Err once ErrAfter bytes have
//     moved.
//   - FlipMask != 0: the byte at offset FlipOffset is XORed with FlipMask
//     as it passes through.
type Plan struct {
	// Seed drives the short-transfer length schedule.
	Seed uint64
	// ShortIO chops every transfer into 1–3 byte pieces.
	ShortIO bool
	// TruncateAfter, when > 0, ends the stream after this many bytes.
	TruncateAfter int64
	// ErrAfter is the byte offset at which Err is injected (active when Err
	// is non-nil; 0 fails the very first transfer).
	ErrAfter int64
	// Err is the error to inject after ErrAfter bytes.
	Err error
	// FlipOffset is the byte offset corrupted when FlipMask is non-zero.
	FlipOffset int64
	// FlipMask is XORed into the byte at FlipOffset; 0 disables flipping.
	FlipMask byte
	// Delay pauses every transfer for this duration before it moves —
	// combined with ShortIO it models a slow-loris peer that trickles a
	// stream byte by byte. 0 disables pacing.
	Delay time.Duration
}

// err returns the armed injection error.
func (p Plan) injected() error {
	if p.Err != nil {
		return p.Err
	}
	return ErrInjected
}

// Reader wraps an io.Reader, injecting the Plan's faults. It is not safe for
// concurrent use.
type Reader struct {
	r   io.Reader
	p   Plan
	rng *xrand.Source
	off int64
}

// NewReader returns a faulty reader over r.
func NewReader(r io.Reader, p Plan) *Reader {
	return &Reader{r: r, p: p, rng: xrand.New(p.Seed)}
}

// Read implements io.Reader under the plan's fault schedule.
func (f *Reader) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	if f.p.Delay > 0 {
		time.Sleep(f.p.Delay)
	}
	if f.p.Err != nil && f.off >= f.p.ErrAfter {
		return 0, f.p.injected()
	}
	if f.p.TruncateAfter > 0 && f.off >= f.p.TruncateAfter {
		return 0, io.EOF
	}
	limit := int64(len(b))
	if f.p.ShortIO {
		if n := int64(1 + f.rng.Intn(3)); n < limit {
			limit = n
		}
	}
	if f.p.Err != nil && f.p.ErrAfter-f.off < limit {
		limit = f.p.ErrAfter - f.off
	}
	if f.p.TruncateAfter > 0 && f.p.TruncateAfter-f.off < limit {
		limit = f.p.TruncateAfter - f.off
	}
	n, err := f.r.Read(b[:limit])
	if f.p.FlipMask != 0 && f.p.FlipOffset >= f.off && f.p.FlipOffset < f.off+int64(n) {
		b[f.p.FlipOffset-f.off] ^= f.p.FlipMask
	}
	f.off += int64(n)
	return n, err
}

// Writer wraps an io.Writer, injecting the Plan's faults. A TruncateAfter
// plan models a torn write: bytes beyond the budget are reported as written
// but silently discarded, the way a crash mid-write leaves a file. It is not
// safe for concurrent use.
type Writer struct {
	w   io.Writer
	p   Plan
	rng *xrand.Source
	off int64
}

// NewWriter returns a faulty writer over w.
func NewWriter(w io.Writer, p Plan) *Writer {
	return &Writer{w: w, p: p, rng: xrand.New(p.Seed)}
}

// Write implements io.Writer under the plan's fault schedule.
func (f *Writer) Write(b []byte) (int, error) {
	written := 0
	for written < len(b) {
		if f.p.Delay > 0 {
			time.Sleep(f.p.Delay)
		}
		if f.p.Err != nil && f.off >= f.p.ErrAfter {
			return written, f.p.injected()
		}
		chunk := int64(len(b) - written)
		if f.p.ShortIO {
			if n := int64(1 + f.rng.Intn(3)); n < chunk {
				chunk = n
			}
		}
		if f.p.Err != nil && f.p.ErrAfter-f.off < chunk {
			chunk = f.p.ErrAfter - f.off
		}
		piece := b[written : written+int(chunk)]
		if f.p.FlipMask != 0 && f.p.FlipOffset >= f.off && f.p.FlipOffset < f.off+chunk {
			tmp := append([]byte(nil), piece...)
			tmp[f.p.FlipOffset-f.off] ^= f.p.FlipMask
			piece = tmp
		}
		var n int
		var err error
		if f.p.TruncateAfter > 0 && f.off >= f.p.TruncateAfter {
			n = len(piece) // torn write: claim success, discard
		} else {
			keep := piece
			if f.p.TruncateAfter > 0 && f.p.TruncateAfter-f.off < int64(len(piece)) {
				keep = piece[:f.p.TruncateAfter-f.off]
			}
			if n, err = f.w.Write(keep); err == nil && len(keep) < len(piece) {
				n = len(piece) // remainder torn off
			}
		}
		f.off += int64(n)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// FlipBits returns a copy of data with n distinct seeded bit flips — the
// bulk corruption primitive for chaos scenarios that damage an in-memory
// artifact rather than a stream.
func FlipBits(data []byte, seed uint64, n int) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	rng := xrand.New(seed)
	seen := make(map[int64]bool, n)
	for flips := 0; flips < n; {
		bit := int64(rng.Uint64n(uint64(len(out)) * 8))
		if seen[bit] {
			continue
		}
		seen[bit] = true
		out[bit/8] ^= 1 << (bit % 8)
		flips++
	}
	return out
}

// Truncate returns data cut to at bytes (a no-op when at is out of range) —
// the torn-download primitive.
func Truncate(data []byte, at int64) []byte {
	if at < 0 || at >= int64(len(data)) {
		return append([]byte(nil), data...)
	}
	return append([]byte(nil), data[:at]...)
}
