package fault

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

// Short reads deliver the exact original content, just in small pieces.
func TestReaderShortIOPreservesContent(t *testing.T) {
	in := payload(4096)
	r := NewReader(bytes.NewReader(in), Plan{ShortIO: true, Seed: 42})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, in) {
		t.Fatal("short-read stream altered content")
	}
}

// The short-IO schedule is a pure function of the seed.
func TestReaderShortIODeterministic(t *testing.T) {
	in := payload(512)
	sizes := func(seed uint64) []int {
		r := NewReader(bytes.NewReader(in), Plan{ShortIO: true, Seed: seed})
		var out []int
		buf := make([]byte, 64)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				out = append(out, n)
			}
			if err != nil {
				return out
			}
		}
	}
	a, b := sizes(7), sizes(7)
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverges at read %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestReaderTruncate(t *testing.T) {
	in := payload(100)
	r := NewReader(bytes.NewReader(in), Plan{TruncateAfter: 37})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 37 || !bytes.Equal(got, in[:37]) {
		t.Fatalf("truncated read returned %d bytes, want exactly 37", len(got))
	}
}

func TestReaderErrAfter(t *testing.T) {
	boom := errors.New("boom")
	in := payload(100)
	r := NewReader(bytes.NewReader(in), Plan{Err: boom, ErrAfter: 10})
	got, err := io.ReadAll(r)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected", err)
	}
	if len(got) != 10 || !bytes.Equal(got, in[:10]) {
		t.Fatalf("pre-fault bytes wrong: got %d", len(got))
	}
}

func TestReaderErrAfterZeroFailsImmediately(t *testing.T) {
	r := NewReader(bytes.NewReader(payload(10)), Plan{Err: ErrInjected})
	if _, err := r.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestReaderFlip(t *testing.T) {
	in := payload(64)
	r := NewReader(bytes.NewReader(in), Plan{ShortIO: true, Seed: 3, FlipOffset: 33, FlipMask: 0x80})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), in...)
	want[33] ^= 0x80
	if !bytes.Equal(got, want) {
		t.Fatal("flip landed on the wrong byte")
	}
}

func TestWriterErrAfterSurfacesOnce(t *testing.T) {
	var buf bytes.Buffer
	boom := errors.New("disk on fire")
	w := NewWriter(&buf, Plan{Err: boom, ErrAfter: 25})
	n, err := w.Write(payload(100))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected", err)
	}
	if n != 25 || buf.Len() != 25 {
		t.Fatalf("wrote %d (buffered %d), want 25", n, buf.Len())
	}
}

// A torn write claims success but persists only the byte budget.
func TestWriterTornWrite(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Plan{TruncateAfter: 16, ShortIO: true, Seed: 9})
	in := payload(64)
	n, err := w.Write(in)
	if err != nil || n != len(in) {
		t.Fatalf("torn write reported (%d, %v), want full claimed success", n, err)
	}
	if buf.Len() != 16 || !bytes.Equal(buf.Bytes(), in[:16]) {
		t.Fatalf("persisted %d bytes, want exactly 16", buf.Len())
	}
}

func TestWriterFlipAndShortIO(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Plan{ShortIO: true, Seed: 11, FlipOffset: 5, FlipMask: 0x01})
	in := payload(32)
	if _, err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), in...)
	want[5] ^= 0x01
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("writer flip landed on the wrong byte")
	}
	if in[5] == want[5] {
		t.Fatal("writer mutated the caller's buffer")
	}
}

func TestFlipBitsDeterministicAndDistinct(t *testing.T) {
	in := payload(256)
	a := FlipBits(in, 99, 8)
	b := FlipBits(in, 99, 8)
	if !bytes.Equal(a, b) {
		t.Fatal("FlipBits not deterministic")
	}
	diff := 0
	for i := range in {
		for bit := 0; bit < 8; bit++ {
			if (in[i]^a[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 8 {
		t.Fatalf("%d bits differ, want 8 distinct flips", diff)
	}
}

func TestTruncateHelper(t *testing.T) {
	in := payload(10)
	if got := Truncate(in, 4); len(got) != 4 {
		t.Fatalf("Truncate(4) → %d bytes", len(got))
	}
	if got := Truncate(in, 99); !bytes.Equal(got, in) {
		t.Fatal("out-of-range Truncate altered data")
	}
}

// Delay paces every read without altering the data, so a Delay+ShortIO
// plan models a slow-loris peer: many tiny reads, each one late.
func TestReaderDelayPacesReads(t *testing.T) {
	in := payload(64)
	const delay = 5 * time.Millisecond
	r := NewReader(bytes.NewReader(in), Plan{ShortIO: true, Delay: delay, Seed: 3})
	start := time.Now()
	got, err := io.ReadAll(r)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, in) {
		t.Fatal("delayed reader altered data")
	}
	// ShortIO caps reads at 3 bytes, so 64 bytes takes >= 22 reads; even
	// counting only a loose lower bound of 10 delayed reads, the wall
	// clock must reflect the pacing.
	if min := 10 * delay; elapsed < min {
		t.Fatalf("64 short-read bytes at %v/read took %v, want >= %v", delay, elapsed, min)
	}
}

// Delay paces writes the same way, once per faulty chunk.
func TestWriterDelayPacesWrites(t *testing.T) {
	var out bytes.Buffer
	const delay = 5 * time.Millisecond
	w := NewWriter(&out, Plan{Delay: delay})
	in := payload(16)
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := w.Write(in); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	if want := bytes.Repeat(in, 4); !bytes.Equal(out.Bytes(), want) {
		t.Fatal("delayed writer altered data")
	}
	if min := 4 * delay; elapsed < min {
		t.Fatalf("4 delayed writes took %v, want >= %v", elapsed, min)
	}
}

// A zero-length read never sleeps, so probing readers don't stall.
func TestReaderDelaySkipsEmptyRead(t *testing.T) {
	r := NewReader(bytes.NewReader(payload(4)), Plan{Delay: time.Hour})
	start := time.Now()
	n, err := r.Read(nil)
	if n != 0 || err != nil {
		t.Fatalf("Read(nil) = %d, %v", n, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("zero-length read slept")
	}
}
