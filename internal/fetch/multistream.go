package fetch

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
)

// MultiStream is the multi-way stream buffer (Jouppi 1990; evaluated as a
// secondary-cache replacement by Palacharla & Kessler 1994, both cited by
// the paper). Where the single stream buffer of Table 8 cancels its stream
// on every non-sequential miss, a multi-way buffer keeps several concurrent
// streams alive, allocating a new one (LRU) on each miss — so alternating
// between a handful of fetch streams (exactly what IBS's cross-domain
// interleaving produces) no longer destroys prefetch state. This is the
// "more sophisticated hardware mechanism on demanding workloads" the paper's
// conclusion invites.
type MultiStream struct {
	l1       *cache.Cache
	link     memsys.Transfer
	ways     int
	depth    int
	lineSize uint64

	streams []streamWay
	res     Result
}

// streamWay is one stream: a window of prefetched lines and its LRU stamp.
type streamWay struct {
	avail map[uint64]int64 // line → arrival cycle
	next  uint64           // next line to prefetch when a hit consumes one
	stamp int64
	live  bool
}

// NewMultiStream builds a ways×depth multi-way stream buffer in front of a
// pipelined memory system (line size ≤ bandwidth, as in Table 8).
func NewMultiStream(cfg cache.Config, link memsys.Transfer, ways, depth int) (*MultiStream, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if ways < 1 {
		return nil, fmt.Errorf("fetch: multi-stream needs >= 1 way, got %d", ways)
	}
	if depth < 1 {
		return nil, fmt.Errorf("fetch: multi-stream needs depth >= 1, got %d", depth)
	}
	if cfg.LineSize > 2*link.BytesPerCycle {
		return nil, fmt.Errorf("fetch: multi-stream needs line size (%d) <= 2x bandwidth (%d B/cyc)",
			cfg.LineSize, link.BytesPerCycle)
	}
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	ms := &MultiStream{
		l1: l1, link: link, ways: ways, depth: depth,
		lineSize: uint64(cfg.LineSize),
		streams:  make([]streamWay, ways),
	}
	for i := range ms.streams {
		ms.streams[i].avail = make(map[uint64]int64)
	}
	return ms, nil
}

func (m *MultiStream) now() int64 { return m.res.Instructions + m.res.StallCycles }

// Fetch implements Engine.
func (m *MultiStream) Fetch(addr uint64) {
	m.res.Instructions++
	if m.l1.Lookup(addr) {
		return
	}
	now := m.now()
	la := addr &^ (m.lineSize - 1)

	// Probe every stream for the line.
	for i := range m.streams {
		s := &m.streams[i]
		if !s.live {
			continue
		}
		arrive, ok := s.avail[la]
		if !ok {
			continue
		}
		if arrive > now {
			m.res.StallCycles += arrive - now
			now = arrive
		}
		m.res.BufferHits++
		m.l1.Fill(la)
		delete(s.avail, la)
		// Keep this stream rolling: prefetch its next sequential line.
		s.avail[s.next] = now + int64(m.link.Latency)
		s.next += m.lineSize
		s.stamp = now
		return
	}

	// Miss everywhere: fetch the line and (re)allocate the LRU stream to
	// follow it.
	m.res.Misses++
	m.res.StallCycles += int64(m.link.FillCycles(int(m.lineSize)))
	now = m.now()
	m.l1.Fill(la)

	victim := 0
	for i := 1; i < m.ways; i++ {
		if !m.streams[i].live {
			victim = i
			break
		}
		if m.streams[i].stamp < m.streams[victim].stamp {
			victim = i
		}
	}
	s := &m.streams[victim]
	clear(s.avail)
	s.live = true
	s.stamp = now
	for i := 1; i <= m.depth; i++ {
		s.avail[la+uint64(i)*m.lineSize] = now + int64(i)
	}
	s.next = la + uint64(m.depth+1)*m.lineSize
}

// Result implements Engine.
func (m *MultiStream) Result() Result { return m.res }

// Cache exposes the underlying L1.
func (m *MultiStream) Cache() *cache.Cache { return m.l1 }
