// Package fetch implements the instruction-fetch engines evaluated in the
// paper's Section 5: a blocking L1 frontend with optional sequential
// prefetch-on-miss (Table 6), bypass buffers (Table 7), and a pipelined
// memory system with stream buffers (Table 8).
//
// Every engine consumes a stream of instruction addresses and accounts stall
// cycles against the paper's CPI model: the machine is single-issue with a
// base CPI of 1, time advances one cycle per instruction plus accumulated
// stalls, and CPIinstr = stall cycles / instructions. The L2 contribution is
// simulated separately (the paper: "We determined the L1 contribution by
// simulating an L1 cache backed by a perfect L2 cache... L2 contribution is
// determined by simulating an L2 cache backed by main memory") — use a
// Blocking engine with the L2 geometry and the baseline memory link for
// that, and TwoLevel to combine.
package fetch

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
	"ibsim/internal/trace"
)

// Result accumulates an engine's activity.
type Result struct {
	// Instructions is the number of instruction fetches issued.
	Instructions int64
	// Misses counts fetches that missed the L1 (and, for stream-buffer
	// engines, also missed the buffer).
	Misses int64
	// BufferHits counts fetches satisfied by a stream buffer.
	BufferHits int64
	// StallCycles is the total fetch-stall time.
	StallCycles int64
}

// CPIinstr returns stall cycles per instruction — the paper's CPIinstr.
func (r Result) CPIinstr() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(r.Instructions)
}

// MPI returns misses per instruction.
func (r Result) MPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Instructions)
}

// Engine is a fetch-stage simulator.
type Engine interface {
	// Fetch issues one instruction fetch.
	Fetch(addr uint64)
	// Result returns the accumulated counters.
	Result() Result
}

// Run feeds every instruction fetch in refs to e and returns the result.
// Non-instruction references are ignored, matching the paper's Section 5
// methodology ("we only consider instruction references").
func Run(e Engine, refs []trace.Ref) Result {
	for _, r := range refs {
		if r.Kind == trace.IFetch {
			e.Fetch(r.Addr)
		}
	}
	return e.Result()
}

// RunSource drains src through e until the source stops. A Source stops for
// two distinct reasons and the error return separates them: err == nil means
// clean end-of-stream and the Result is a complete replay; err != nil (it is
// exactly src.Err()) means the stream failed mid-way — a truncated or corrupt
// trace file, an I/O fault — and the Result covers only the prefix consumed
// before the fault. Callers must never treat a Result returned alongside a
// non-nil error as a finished simulation.
func RunSource(e Engine, src trace.Source) (Result, error) {
	for {
		r, ok := src.Next()
		if !ok {
			return e.Result(), src.Err()
		}
		if r.Kind == trace.IFetch {
			e.Fetch(r.Addr)
		}
	}
}

// BlockingResult reconstructs, analytically, the Result a prefetch-free
// Blocking engine produces from its miss count alone: with no prefetching
// every miss stalls the processor for exactly one full line fill, so
// StallCycles = Misses × link.FillCycles(lineSize) and no per-reference
// simulation is needed. The sweep engine (internal/sweep) uses this to turn
// a one-pass miss matrix into the CPIinstr of every grid cell; the
// equivalence with fetch.Run over a NewBlocking engine is pinned by tests
// and by internal/check's sweep differential.
func BlockingResult(instructions, misses int64, lineSize int, link memsys.Transfer) Result {
	return Result{
		Instructions: instructions,
		Misses:       misses,
		StallCycles:  misses * int64(link.FillCycles(lineSize)),
	}
}

// Blocking is the baseline engine: on an L1 miss the processor stalls until
// the missing line — and all prefetched lines, if sequential
// prefetch-on-miss is enabled — have been written into the cache (Table 6's
// execution model: "the processor must stall until both the miss and the
// prefetches are returned to the cache. Prefetches are not cancelled.").
type Blocking struct {
	l1       *cache.Cache
	link     memsys.Transfer
	prefetch int
	lineSize uint64
	subBlock uint64 // non-zero for sector caches
	res      Result
}

// NewBlocking builds a blocking engine with n prefetched lines (0 disables
// prefetching).
func NewBlocking(cfg cache.Config, link memsys.Transfer, n int) (*Blocking, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("fetch: negative prefetch count %d", n)
	}
	if cfg.SubBlock != 0 && n != 0 {
		return nil, fmt.Errorf("fetch: sector caches and prefetch-on-miss are mutually exclusive")
	}
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Blocking{
		l1: l1, link: link, prefetch: n,
		lineSize: uint64(cfg.LineSize), subBlock: uint64(cfg.SubBlock),
	}, nil
}

// Fetch implements Engine.
func (b *Blocking) Fetch(addr uint64) {
	b.res.Instructions++
	if b.l1.Lookup(addr) {
		return
	}
	b.res.Misses++
	if b.subBlock != 0 {
		// Sector cache: only the missing sub-block and all subsequent
		// sub-blocks in the line are transferred (the paper's sub-block
		// refill policy); the stall covers just those bytes.
		offset := (addr &^ (b.subBlock - 1)) & (b.lineSize - 1)
		b.res.StallCycles += int64(b.link.FillCycles(int(b.lineSize - offset)))
		b.l1.Fill(addr)
		return
	}
	total := int(b.lineSize) * (1 + b.prefetch)
	b.res.StallCycles += int64(b.link.FillCycles(total))
	base := addr &^ (b.lineSize - 1)
	for i := 0; i <= b.prefetch; i++ {
		b.l1.Fill(base + uint64(i)*b.lineSize)
	}
}

// Result implements Engine.
func (b *Blocking) Result() Result { return b.res }

// Cache exposes the underlying L1 for inspection in tests and reports.
func (b *Blocking) Cache() *cache.Cache { return b.l1 }

// AnalyticConfig reports whether this engine's Result is analytically
// reconstructible from a miss count (see BlockingResult) and returns the
// geometry and link needed to do so. Only the plain blocking engine
// qualifies: prefetching changes cache contents and sector caches stall for
// offset-dependent partial fills, so both disable the shortcut. The fan-out
// driver (internal/replay) uses this to simulate one engine per geometry and
// derive every same-geometry, different-link cell from it.
func (b *Blocking) AnalyticConfig() (geom cache.Config, link memsys.Transfer, ok bool) {
	return b.l1.Config(), b.link, b.prefetch == 0 && b.subBlock == 0
}

// Bypass is the prefetch+bypass engine of Table 7: the missing line (and N
// sequentially prefetched lines) stream into dual-ported bypass buffers, and
// the processor resumes as soon as the missing *word* arrives. All fetched
// lines are cached unconditionally (the paper found use-only caching of
// prefetched lines hurts at small N and line sizes).
type Bypass struct {
	l1       *cache.Cache
	link     memsys.Transfer
	prefetch int
	lineSize uint64

	// In-flight refill group: lines [groupBase, groupBase+groupLines) were
	// requested at cycle groupStart; the byte at offset o from groupBase
	// arrives at groupStart + link.DeliveryCycle(o).
	groupBase  uint64
	groupLines int
	groupStart int64
	busyUntil  int64

	res Result
}

// NewBypass builds a bypass engine with n prefetched lines.
func NewBypass(cfg cache.Config, link memsys.Transfer, n int) (*Bypass, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("fetch: negative prefetch count %d", n)
	}
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Bypass{l1: l1, link: link, prefetch: n, lineSize: uint64(cfg.LineSize), groupLines: 0}, nil
}

// now returns the current cycle under the CPI-1 base model.
func (b *Bypass) now() int64 { return b.res.Instructions + b.res.StallCycles }

// Fetch implements Engine.
func (b *Bypass) Fetch(addr uint64) {
	b.res.Instructions++
	now := b.now()
	if b.l1.Lookup(addr) {
		// The line may still be streaming into the bypass buffers: reading a
		// word that has not arrived yet waits for it.
		if b.groupLines > 0 {
			base := b.groupBase
			end := base + uint64(b.groupLines)*b.lineSize
			if addr >= base && addr < end {
				arrive := b.groupStart + int64(b.link.DeliveryCycle(int(addr-base)))
				if arrive > now {
					b.res.StallCycles += arrive - now
				}
			}
		}
		return
	}
	b.res.Misses++
	start := now
	if b.busyUntil > start {
		// Previous refill still owns the memory port.
		start = b.busyUntil
	}
	lineBase := addr &^ (b.lineSize - 1)
	arrive := start + int64(b.link.DeliveryCycle(int(addr-lineBase)))
	b.res.StallCycles += arrive - now

	lines := 1 + b.prefetch
	b.groupBase = lineBase
	b.groupLines = lines
	b.groupStart = start
	b.busyUntil = start + int64(b.link.FillCycles(int(b.lineSize)*lines))
	for i := 0; i < lines; i++ {
		b.l1.Fill(lineBase + uint64(i)*b.lineSize)
	}
}

// Result implements Engine.
func (b *Bypass) Result() Result { return b.res }

// Cache exposes the underlying L1.
func (b *Bypass) Cache() *cache.Cache { return b.l1 }

// Stream is the pipelined memory system with a stream buffer (Table 8,
// following Jouppi): the L2 accepts a request every cycle; on a miss in both
// the I-cache and the stream buffer the processor waits one full latency for
// the missing line, and in the N cycles following the miss request the next
// N sequential lines are also requested, arriving one per cycle behind it.
// Buffered lines move to the I-cache free of charge (the Table 8 note) when
// the processor uses them; the buffer is NOT topped up on consumption — a
// long sequential run therefore pays one full miss every N+1 lines, which is
// why the paper's gains keep accruing out to 18 lines. A miss in both
// structures cancels outstanding prefetches and restarts the stream at the
// new address.
type Stream struct {
	l1       *cache.Cache
	link     memsys.Transfer
	depth    int
	lineSize uint64

	avail map[uint64]int64 // buffered line → arrival cycle
	res   Result
}

// NewStream builds a pipelined stream-buffer engine holding depth lines
// (depth 0 degenerates to a blocking cache with no prefetch). The paper sets
// the L1 line size equal to the per-cycle bandwidth so the pipeline can
// accept a request every cycle; NewStream enforces LineSize <=
// link.BytesPerCycle × 2 to keep the one-line-per-cycle arrival model honest.
func NewStream(cfg cache.Config, link memsys.Transfer, depth int) (*Stream, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if depth < 0 {
		return nil, fmt.Errorf("fetch: negative stream-buffer depth %d", depth)
	}
	if cfg.LineSize > 2*link.BytesPerCycle {
		return nil, fmt.Errorf("fetch: stream engine needs line size (%d) <= 2x bandwidth (%d B/cyc)",
			cfg.LineSize, link.BytesPerCycle)
	}
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Stream{
		l1: l1, link: link, depth: depth, lineSize: uint64(cfg.LineSize),
		avail: make(map[uint64]int64),
	}, nil
}

func (s *Stream) now() int64 { return s.res.Instructions + s.res.StallCycles }

// Fetch implements Engine.
func (s *Stream) Fetch(addr uint64) {
	s.res.Instructions++
	if s.l1.Lookup(addr) {
		return
	}
	now := s.now()
	la := addr &^ (s.lineSize - 1)
	if arrive, ok := s.avail[la]; ok {
		// Stream-buffer hit: wait for arrival if the line is still in
		// flight, then move it to the I-cache.
		if arrive > now {
			s.res.StallCycles += arrive - now
		}
		s.res.BufferHits++
		s.l1.Fill(la)
		delete(s.avail, la)
		return
	}
	// Miss in both: pay the full latency, cancel the stream, restart it.
	s.res.Misses++
	s.res.StallCycles += int64(s.link.FillCycles(int(s.lineSize)))
	now = s.now()
	s.l1.Fill(la)
	clear(s.avail)
	for i := 1; i <= s.depth; i++ {
		// Pipelined: one request per cycle; line i lands i cycles behind.
		s.avail[la+uint64(i)*s.lineSize] = now + int64(i)
	}
}

// Result implements Engine.
func (s *Stream) Result() Result { return s.res }

// Cache exposes the underlying L1.
func (s *Stream) Cache() *cache.Cache { return s.l1 }

// TwoLevel combines independently simulated L1 and L2 contributions into the
// paper's "Total CPIinstr".
type TwoLevel struct {
	// L1 is the frontend result (L1 backed by a perfect L2).
	L1 Result
	// L2 is the second-level result (L2 backed by the baseline memory).
	L2 Result
}

// Total returns L1 CPIinstr + L2 CPIinstr.
func (t TwoLevel) Total() float64 { return t.L1.CPIinstr() + t.L2.CPIinstr() }
