package fetch

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
)

// Victim is a blocking L1 frontend backed by a small fully-associative
// victim cache (Jouppi 1990, cited by the paper alongside stream buffers as
// the other way to "improve direct-mapped cache performance by the addition
// of a small fully-associative cache"). Lines evicted from the L1 land in
// the victim cache; an L1 miss that hits there swaps the line back for a
// one-cycle penalty instead of a full refill. The paper's Section 5 chose
// associative L2s and stream buffers instead; this engine exists so the
// road not taken can be measured (see experiments.AblationVictim).
type Victim struct {
	l1          *cache.Cache
	vc          *cache.Cache // fully associative, LRU
	link        memsys.Transfer
	lineSize    uint64
	swapPenalty int64
	res         Result
	// VictimHits counts misses satisfied by the victim cache.
	victimHits int64
}

// NewVictim builds the engine with a victim cache of the given number of
// lines (Jouppi studied 1–15; 4 is the classic sweet spot).
func NewVictim(cfg cache.Config, link memsys.Transfer, victimLines int) (*Victim, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if victimLines < 1 {
		return nil, fmt.Errorf("fetch: victim cache needs >= 1 line, got %d", victimLines)
	}
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	vc, err := cache.New(cache.Config{
		Size:     victimLines * cfg.LineSize,
		LineSize: cfg.LineSize,
		Assoc:    0, // fully associative
	})
	if err != nil {
		return nil, err
	}
	return &Victim{
		l1: l1, vc: vc, link: link,
		lineSize:    uint64(cfg.LineSize),
		swapPenalty: 1,
	}, nil
}

// Fetch implements Engine.
func (v *Victim) Fetch(addr uint64) {
	v.res.Instructions++
	if v.l1.Lookup(addr) {
		return
	}
	v.res.Misses++
	la := addr &^ (v.lineSize - 1)
	if v.vc.Contains(la) {
		// Swap: the victim line returns to the L1; the line the L1 casts
		// out takes its place in the victim cache.
		v.victimHits++
		v.res.StallCycles += v.swapPenalty
		v.vc.Invalidate(la)
		if evicted, ok := v.l1.FillEvict(la); ok {
			v.vc.Fill(evicted)
		}
		return
	}
	// Full miss: refill from the next level; the L1 cast-out goes to the
	// victim cache.
	v.res.StallCycles += int64(v.link.FillCycles(int(v.lineSize)))
	if evicted, ok := v.l1.FillEvict(la); ok {
		v.vc.Fill(evicted)
	}
}

// Result implements Engine.
func (v *Victim) Result() Result { return v.res }

// VictimHits returns the number of misses satisfied by the victim cache.
func (v *Victim) VictimHits() int64 { return v.victimHits }

// Cache exposes the underlying L1.
func (v *Victim) Cache() *cache.Cache { return v.l1 }
