package fetch

import (
	"ibsim/internal/trace"
)

// Bulk sequential-run replay.
//
// Instruction fetch is overwhelmingly sequential, and every engine in this
// package begins Fetch the same way: count the instruction, probe the L1,
// and — on a hit — do nothing else (Bypass alone may wait on a line still
// streaming into its buffers). A sequential run of k instructions inside one
// cache line therefore needs one real Fetch (which may miss, fill, prefetch)
// followed by k-1 guaranteed L1 probes whose only effects are counter and
// LRU-stamp updates. FetchRun hoists those k-1 probes into cache.Touch — a
// single tag compare plus arithmetic — so replaying a run costs O(lines
// touched) instead of O(instructions). The results are bit-identical to the
// per-instruction path (pinned by the randomized equivalence test and by
// internal/check's fanout differential).

// RunEngine is an Engine with a bulk sequential-run fast path.
type RunEngine interface {
	Engine
	// FetchRun issues the n sequential instruction fetches start,
	// start+InstrBytes, ..., equivalent to n Fetch calls.
	FetchRun(start uint64, n int64)
	// FetchRuns replays a batch of runs, equivalent to calling FetchRun for
	// each in order. Batching exists so replay drivers pay one dynamic
	// dispatch per batch instead of one per run (runs average only a few
	// instructions, so per-run dispatch is measurable).
	FetchRuns(runs []trace.Run)
}

// RunCompact replays a run-compacted instruction trace through e, using the
// bulk FetchRun path when the engine provides one. It is the run-level
// analogue of Run: RunCompact(e, trace.Compact(refs)) and Run(e, refs)
// produce identical Results.
func RunCompact(e Engine, runs []trace.Run) Result {
	if re, ok := e.(RunEngine); ok {
		re.FetchRuns(runs)
		return re.Result()
	}
	for _, r := range runs {
		addr := r.Start
		for i := int64(0); i < r.Len; i++ {
			e.Fetch(addr)
			addr += trace.InstrBytes
		}
	}
	return e.Result()
}

// Every engine except Bypass does nothing on an L1 hit beyond the counters,
// so its FetchRun is the same shape: cache.TouchRun absorbs the maximal
// all-hit prefix of the run in one call (one tag probe per resident line),
// then the first missing instruction takes the full Fetch path (fills,
// prefetches, stalls) and the loop resumes behind it. Instructions are
// credited before each Fetch so engines whose miss timing reads
// now = Instructions + StallCycles (Stream, MultiStream) observe exactly the
// per-instruction clock. The loop also self-heals when Fetch's side effects
// evict the line it just filled (prefetch wrap-around in a tiny cache):
// TouchRun absorbs nothing and the next instruction simply refetches.

// FetchRun implements RunEngine.
func (b *Blocking) FetchRun(start uint64, n int64) {
	addr := start
	for n > 0 {
		t := b.l1.TouchRun(addr, n, trace.InstrBytes)
		b.res.Instructions += t
		addr += uint64(t) * trace.InstrBytes
		if n -= t; n == 0 {
			return
		}
		b.Fetch(addr)
		addr += trace.InstrBytes
		n--
	}
}

// FetchRun implements RunEngine.
func (s *Stream) FetchRun(start uint64, n int64) {
	addr := start
	for n > 0 {
		t := s.l1.TouchRun(addr, n, trace.InstrBytes)
		s.res.Instructions += t
		addr += uint64(t) * trace.InstrBytes
		if n -= t; n == 0 {
			return
		}
		s.Fetch(addr)
		addr += trace.InstrBytes
		n--
	}
}

// FetchRun implements RunEngine.
func (h *Hierarchy) FetchRun(start uint64, n int64) {
	addr := start
	for n > 0 {
		t := h.l1.TouchRun(addr, n, trace.InstrBytes)
		h.res.Instructions += t
		addr += uint64(t) * trace.InstrBytes
		if n -= t; n == 0 {
			return
		}
		h.Fetch(addr)
		addr += trace.InstrBytes
		n--
	}
}

// FetchRun implements RunEngine.
func (v *Victim) FetchRun(start uint64, n int64) {
	addr := start
	for n > 0 {
		t := v.l1.TouchRun(addr, n, trace.InstrBytes)
		v.res.Instructions += t
		addr += uint64(t) * trace.InstrBytes
		if n -= t; n == 0 {
			return
		}
		v.Fetch(addr)
		addr += trace.InstrBytes
		n--
	}
}

// FetchRun implements RunEngine.
func (m *MultiStream) FetchRun(start uint64, n int64) {
	addr := start
	for n > 0 {
		t := m.l1.TouchRun(addr, n, trace.InstrBytes)
		m.res.Instructions += t
		addr += uint64(t) * trace.InstrBytes
		if n -= t; n == 0 {
			return
		}
		m.Fetch(addr)
		addr += trace.InstrBytes
		n--
	}
}

// FetchRun implements RunEngine. Bypass is the one engine whose hit path can
// stall (reading a word still streaming into the bypass buffers), so its
// bulk path walks line segments and folds each segment's in-group waits into
// a closed form instead of handing the whole prefix to the cache.
func (b *Bypass) FetchRun(start uint64, n int64) {
	addr := start
	for n > 0 {
		k := n
		if lineEnd := (addr | (b.lineSize - 1)) + 1; lineEnd != 0 {
			// Instructions whose addresses land in this line; lineEnd == 0
			// means the top line, which holds the rest of the run (runs
			// never wrap the address space).
			if room := int64((lineEnd - addr + trace.InstrBytes - 1) / trace.InstrBytes); room < k {
				k = room
			}
		}
		if !b.bulkHits(addr, k) {
			b.Fetch(addr)
			if k > 1 && !b.bulkHits(addr+trace.InstrBytes, k-1) {
				// Fetch's prefetches evicted the line it filled (tiny cache):
				// fall back to per-instruction fetches for the segment.
				for i := int64(1); i < k; i++ {
					b.Fetch(addr + uint64(i)*trace.InstrBytes)
				}
			}
		}
		addr += uint64(k) * trace.InstrBytes
		n -= k
	}
}

// The batch replays hoist TouchRun's direct-mapped dispatch out of the run
// loop: most replayed L1s are direct-mapped (the paper's baseline), runs
// average only a few instructions, and at that grain the per-run
// FetchRun+TouchRun call pair and the repeated specialization test are a
// measurable fraction of the replay. Checking cache.DM4 once per batch and
// calling TouchRunDM4 directly removes both.

// FetchRuns implements RunEngine. Beyond the DM4 dispatch hoist, the
// blocking engine's miss path is fused: TouchRunDM4 stopping short proves
// the next address misses, so the fill goes through cache.MissFillDM4
// (skipping Fetch's redundant Lookup and FillEvict probes), and the
// miss stall — a constant for a given engine — is computed once.
func (b *Blocking) FetchRuns(runs []trace.Run) {
	if b.l1.DM4() {
		stall := int64(b.link.FillCycles(int(b.lineSize) * (1 + b.prefetch)))
		for _, r := range runs {
			addr, n := r.Start, r.Len
			for n > 0 {
				t := b.l1.TouchRunDM4(addr, n)
				b.res.Instructions += t
				addr += uint64(t) * trace.InstrBytes
				if n -= t; n == 0 {
					break
				}
				b.res.Instructions++
				b.res.Misses++
				b.res.StallCycles += stall
				b.l1.MissFillDM4(addr)
				for i := 1; i <= b.prefetch; i++ {
					b.l1.Fill((addr &^ (b.lineSize - 1)) + uint64(i)*b.lineSize)
				}
				addr += trace.InstrBytes
				n--
			}
		}
		return
	}
	for _, r := range runs {
		b.FetchRun(r.Start, r.Len)
	}
}

// FetchRuns implements RunEngine. Like the blocking engine's, the stream
// engine's miss path is fused: TouchRunDM4 stopping short proves the next
// address misses the L1, so both outcomes — stream-buffer hit and miss in
// both structures — skip Fetch's redundant Lookup and move the line in with
// cache.MissFillDM4 (the L1 fill and its miss accounting in one step), with
// the full-miss stall hoisted to a constant.
func (s *Stream) FetchRuns(runs []trace.Run) {
	if s.l1.DM4() {
		missStall := int64(s.link.FillCycles(int(s.lineSize)))
		for _, r := range runs {
			addr, n := r.Start, r.Len
			for n > 0 {
				t := s.l1.TouchRunDM4(addr, n)
				s.res.Instructions += t
				addr += uint64(t) * trace.InstrBytes
				if n -= t; n == 0 {
					break
				}
				s.res.Instructions++
				now := s.now()
				la := addr &^ (s.lineSize - 1)
				if arrive, ok := s.avail[la]; ok {
					if arrive > now {
						s.res.StallCycles += arrive - now
					}
					s.res.BufferHits++
					s.l1.MissFillDM4(la)
					delete(s.avail, la)
				} else {
					s.res.Misses++
					s.res.StallCycles += missStall
					now = s.now()
					s.l1.MissFillDM4(la)
					clear(s.avail)
					for i := 1; i <= s.depth; i++ {
						s.avail[la+uint64(i)*s.lineSize] = now + int64(i)
					}
				}
				addr += trace.InstrBytes
				n--
			}
		}
		return
	}
	for _, r := range runs {
		s.FetchRun(r.Start, r.Len)
	}
}

// FetchRuns implements RunEngine.
func (h *Hierarchy) FetchRuns(runs []trace.Run) {
	if h.l1.DM4() {
		for _, r := range runs {
			addr, n := r.Start, r.Len
			for n > 0 {
				t := h.l1.TouchRunDM4(addr, n)
				h.res.Instructions += t
				addr += uint64(t) * trace.InstrBytes
				if n -= t; n == 0 {
					break
				}
				h.Fetch(addr)
				addr += trace.InstrBytes
				n--
			}
		}
		return
	}
	for _, r := range runs {
		h.FetchRun(r.Start, r.Len)
	}
}

// FetchRuns implements RunEngine.
func (v *Victim) FetchRuns(runs []trace.Run) {
	if v.l1.DM4() {
		for _, r := range runs {
			addr, n := r.Start, r.Len
			for n > 0 {
				t := v.l1.TouchRunDM4(addr, n)
				v.res.Instructions += t
				addr += uint64(t) * trace.InstrBytes
				if n -= t; n == 0 {
					break
				}
				v.Fetch(addr)
				addr += trace.InstrBytes
				n--
			}
		}
		return
	}
	for _, r := range runs {
		v.FetchRun(r.Start, r.Len)
	}
}

// FetchRuns implements RunEngine.
func (m *MultiStream) FetchRuns(runs []trace.Run) {
	if m.l1.DM4() {
		for _, r := range runs {
			addr, n := r.Start, r.Len
			for n > 0 {
				t := m.l1.TouchRunDM4(addr, n)
				m.res.Instructions += t
				addr += uint64(t) * trace.InstrBytes
				if n -= t; n == 0 {
					break
				}
				m.Fetch(addr)
				addr += trace.InstrBytes
				n--
			}
		}
		return
	}
	for _, r := range runs {
		m.FetchRun(r.Start, r.Len)
	}
}

// FetchRuns implements RunEngine.
func (b *Bypass) FetchRuns(runs []trace.Run) {
	for _, r := range runs {
		b.FetchRun(r.Start, r.Len)
	}
}

// bulkHits applies k sequential same-line fetches in one step when they are
// all L1 hits, including any wait for words still arriving in the current
// refill group; it returns false (with no state change) when the line is not
// resident.
func (b *Bypass) bulkHits(addr uint64, k int64) bool {
	if !b.l1.Touch(addr, k) {
		return false
	}
	b.res.Instructions += k
	if b.groupLines > 0 {
		base := b.groupBase
		end := base + uint64(b.groupLines)*b.lineSize
		if addr >= base && addr < end {
			// now() already includes the k instructions credited above; back
			// them out to recover the clock at the segment's first fetch.
			now0 := b.now() - k
			// Closed form for the k sequential in-group waits. Instruction j
			// (j = 0..k-1) executes at now0+j+1 plus earlier waits and may
			// stall until arrive(j) = groupStart + DeliveryCycle(d0 + j*4).
			// Unrolling S(j+1) = max(S(j), arrive(j) - now0 - (j+1)) gives
			// S(k) = max(0, max_j(arrive(j)-j) - 1 - now0), and arrive(j)-j
			// is monotone in j for every bandwidth (delivery offsets grow by
			// 4/BytesPerCycle per step), so the endpoints bound the max.
			d0 := int64(addr - base)
			g0 := b.groupStart + int64(b.link.DeliveryCycle(int(d0)))
			gk := b.groupStart + int64(b.link.DeliveryCycle(int(d0+(k-1)*trace.InstrBytes))) - (k - 1)
			if gk > g0 {
				g0 = gk
			}
			if s := g0 - 1 - now0; s > 0 {
				b.res.StallCycles += s
			}
		}
	}
	return true
}
