package fetch

import (
	"testing"
	"testing/quick"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

// randomStream builds a bounded instruction stream mixing sequential runs
// and jumps — structurally similar to real fetch streams but adversarially
// random.
func randomStream(seed uint64, n int) []trace.Ref {
	rng := xrand.New(seed)
	refs := make([]trace.Ref, n)
	addr := uint64(rng.Intn(1 << 18))
	for i := range refs {
		refs[i] = trace.Ref{Addr: addr &^ 3, Kind: trace.IFetch}
		if rng.Bool(0.15) {
			addr = uint64(rng.Intn(1 << 18))
		} else {
			addr += 4
		}
	}
	return refs
}

// Property: every engine yields sane counters — stalls and misses
// non-negative, misses ≤ instructions, instructions == stream length.
func TestEngineSanityProperty(t *testing.T) {
	cfg16 := cache.Config{Size: 4096, LineSize: 16, Assoc: 1}
	f := func(seed uint64, pick uint8) bool {
		refs := randomStream(seed, 3000)
		var e Engine
		var err error
		switch pick % 4 {
		case 0:
			e, err = NewBlocking(cfg16, l2link, int(pick>>2)%4)
		case 1:
			e, err = NewBypass(cfg16, l2link, int(pick>>2)%4)
		case 2:
			e, err = NewStream(cfg16, l2link, int(pick>>2)%8)
		default:
			e, err = NewMultiStream(cfg16, l2link, 1+int(pick>>2)%4, 4)
		}
		if err != nil {
			return false
		}
		res := Run(e, refs)
		return res.Instructions == 3000 &&
			res.Misses >= 0 && res.Misses <= res.Instructions &&
			res.StallCycles >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: bypass never stalls longer than blocking on the same stream and
// geometry (resuming early can only help; both cache identical line sets).
func TestBypassDominatesBlockingProperty(t *testing.T) {
	cfg := cache.Config{Size: 4096, LineSize: 32, Assoc: 1}
	f := func(seed uint64) bool {
		refs := randomStream(seed, 4000)
		bl, _ := NewBlocking(cfg, l2link, 0)
		by, _ := NewBypass(cfg, l2link, 0)
		return Run(by, refs).StallCycles <= Run(bl, refs).StallCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: higher link latency never reduces blocking stalls.
func TestLatencyMonotonicityProperty(t *testing.T) {
	cfg := cache.Config{Size: 4096, LineSize: 32, Assoc: 1}
	f := func(seed uint64, latRaw uint8) bool {
		lat := int(latRaw%20) + 1
		refs := randomStream(seed, 3000)
		a, _ := NewBlocking(cfg, memsys.Transfer{Latency: lat, BytesPerCycle: 16}, 0)
		b, _ := NewBlocking(cfg, memsys.Transfer{Latency: lat + 3, BytesPerCycle: 16}, 0)
		return Run(a, refs).StallCycles <= Run(b, refs).StallCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a deeper stream buffer never increases misses on the same
// stream (its windows are supersets).
func TestStreamDepthMonotonicityProperty(t *testing.T) {
	cfg := cache.Config{Size: 4096, LineSize: 16, Assoc: 1}
	f := func(seed uint64, dRaw uint8) bool {
		d := int(dRaw % 8)
		refs := randomStream(seed, 4000)
		shallow, _ := NewStream(cfg, l2link, d)
		deep, _ := NewStream(cfg, l2link, d+4)
		return Run(deep, refs).Misses <= Run(shallow, refs).Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the victim engine's full-refill misses (total minus victim hits)
// never exceed the plain DM engine's misses, and its stall never exceeds
// blocking (a swap costs 1 cycle vs a full refill).
func TestVictimDominatesBlockingProperty(t *testing.T) {
	cfg := cache.Config{Size: 2048, LineSize: 32, Assoc: 1}
	f := func(seed uint64) bool {
		refs := randomStream(seed, 4000)
		v, _ := NewVictim(cfg, l2link, 4)
		bl, _ := NewBlocking(cfg, l2link, 0)
		rv := Run(v, refs)
		rb := Run(bl, refs)
		if rv.Misses != rb.Misses {
			// Both count L1 misses; contents evolve identically because the
			// victim engine always reinstalls the missing line.
			return false
		}
		return rv.StallCycles <= rb.StallCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the combined hierarchy is bounded below by the L1-only engine
// (adding an L2 can only add stalls on top of the L1 fill).
func TestHierarchyBoundsProperty(t *testing.T) {
	l1c := cache.Config{Size: 2048, LineSize: 32, Assoc: 1}
	l2c := cache.Config{Size: 16384, LineSize: 64, Assoc: 2}
	f := func(seed uint64) bool {
		refs := randomStream(seed, 3000)
		h, _ := NewHierarchy(l1c, l2c, l2link, memsys.Economy().Memory)
		l1only, _ := NewBlocking(l1c, l2link, 0)
		rh := Run(h, refs)
		r1 := Run(l1only, refs)
		return rh.StallCycles >= r1.StallCycles && rh.Misses == r1.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
