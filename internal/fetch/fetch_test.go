package fetch

import (
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

var (
	l1cfg  = cache.Config{Size: 8192, LineSize: 32, Assoc: 1}
	l2link = memsys.Transfer{Latency: 6, BytesPerCycle: 16}
)

// seq builds an instruction stream of sequential fetches starting at base.
func seq(base uint64, n int) []trace.Ref {
	refs := make([]trace.Ref, n)
	for i := range refs {
		refs[i] = trace.Ref{Addr: base + uint64(i)*4, Kind: trace.IFetch}
	}
	return refs
}

func TestResultRatios(t *testing.T) {
	r := Result{Instructions: 200, Misses: 10, StallCycles: 70}
	if r.CPIinstr() != 0.35 {
		t.Errorf("CPIinstr = %v", r.CPIinstr())
	}
	if r.MPI() != 0.05 {
		t.Errorf("MPI = %v", r.MPI())
	}
	var zero Result
	if zero.CPIinstr() != 0 || zero.MPI() != 0 {
		t.Error("zero result ratios non-zero")
	}
}

func TestBlockingStallPerMiss(t *testing.T) {
	// 32-byte lines over a 6-cycle, 16 B/cyc link: each miss stalls
	// 6+2-1 = 7 cycles (the Figure 3 model).
	e, err := NewBlocking(l1cfg, l2link, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(e, seq(0, 8)) // 8 instructions, one line: 1 miss
	if res.Misses != 1 {
		t.Fatalf("misses = %d", res.Misses)
	}
	if res.StallCycles != 7 {
		t.Fatalf("stall = %d, want 7", res.StallCycles)
	}
	if res.Instructions != 8 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
}

func TestBlockingPrefetchReducesSequentialMisses(t *testing.T) {
	// A long sequential run: with N=3 prefetch, misses drop ~4x.
	base, _ := NewBlocking(l1cfg, l2link, 0)
	pf, _ := NewBlocking(l1cfg, l2link, 3)
	stream := seq(0, 2048)
	r0 := Run(base, stream)
	r3 := Run(pf, stream)
	if r3.Misses*3 > r0.Misses {
		t.Fatalf("prefetch misses %d vs base %d — expected ~4x fewer", r3.Misses, r0.Misses)
	}
	// Each prefetching miss stalls longer (must wait for all 4 lines:
	// 6 + 8 - 1 = 13), but total stall should still drop on sequential code.
	if r3.StallCycles >= r0.StallCycles {
		t.Fatalf("prefetch stall %d did not beat base %d", r3.StallCycles, r0.StallCycles)
	}
}

func TestBlockingPrefetchStall(t *testing.T) {
	// With N=1 (two 32-byte lines = 64 bytes): stall = 6+4-1 = 9.
	e, _ := NewBlocking(l1cfg, l2link, 1)
	res := Run(e, seq(0, 1))
	if res.StallCycles != 9 {
		t.Fatalf("stall = %d, want 9", res.StallCycles)
	}
	// The prefetched line is now resident.
	e.Fetch(32)
	if got := e.Result(); got.Misses != 1 {
		t.Fatalf("prefetched line missed: %+v", got)
	}
}

func TestBypassResumesOnMissingWord(t *testing.T) {
	// Missing word at line offset 0: processor resumes after the first
	// 16-byte chunk arrives (6 cycles), not after the full line (7).
	e, err := NewBypass(l1cfg, l2link, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.Fetch(0)
	if got := e.Result().StallCycles; got != 6 {
		t.Fatalf("stall = %d, want 6", got)
	}
	// Word in the second chunk (offset 16) arrives one cycle later.
	e2, _ := NewBypass(l1cfg, l2link, 0)
	e2.Fetch(16)
	if got := e2.Result().StallCycles; got != 7 {
		t.Fatalf("offset-16 stall = %d, want 7", got)
	}
}

func TestBypassWaitsForInFlightWords(t *testing.T) {
	// Narrow link (4 B/cyc): after a miss at 0 the processor resumes when
	// word 0 arrives, but the last word of the line (offset 28) lands 7
	// cycles later — fetching it immediately must wait, not get it free.
	slow := memsys.Transfer{Latency: 6, BytesPerCycle: 4}
	e, _ := NewBypass(l1cfg, slow, 0)
	e.Fetch(0) // miss at cycle 1: word 0 arrives at 1+6=7 → stall 6
	if got := e.Result().StallCycles; got != 6 {
		t.Fatalf("first stall = %d, want 6", got)
	}
	e.Fetch(28) // now = 8; offset 28 arrives at 1+6+7 = 14 → stall 6 more
	if got := e.Result().StallCycles; got != 12 {
		t.Fatalf("in-flight word wait: stall = %d, want 12", got)
	}
}

func TestBypassBeatsBlockingOnRealisticStream(t *testing.T) {
	// On a stream with misses at varied line offsets, bypass strictly
	// reduces stall time (Table 7's point).
	var refs []trace.Ref
	// Jumpy pattern: short runs starting at varying offsets of distinct lines.
	addr := uint64(0)
	for i := 0; i < 4000; i++ {
		refs = append(refs, trace.Ref{Addr: addr, Kind: trace.IFetch})
		if i%5 == 4 {
			addr = (addr + 4096 + uint64(i%7)*20) % (1 << 20)
			addr &^= 3
		} else {
			addr += 4
		}
	}
	blocking, _ := NewBlocking(l1cfg, l2link, 1)
	bypass, _ := NewBypass(l1cfg, l2link, 1)
	rb := Run(blocking, refs)
	rp := Run(bypass, refs)
	if rp.StallCycles >= rb.StallCycles {
		t.Fatalf("bypass stall %d >= blocking stall %d", rp.StallCycles, rb.StallCycles)
	}
}

func TestStreamLineSizeGuard(t *testing.T) {
	if _, err := NewStream(cache.Config{Size: 8192, LineSize: 64, Assoc: 1}, l2link, 3); err == nil {
		t.Fatal("oversized line accepted for stream engine")
	}
}

func TestStreamDepthZeroMatchesBlocking(t *testing.T) {
	cfg := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	st, err := NewStream(cfg, l2link, 0)
	if err != nil {
		t.Fatal(err)
	}
	bl, _ := NewBlocking(cfg, l2link, 0)
	refs := seq(0, 1024)
	rs := Run(st, refs)
	rb := Run(bl, refs)
	if rs.StallCycles != rb.StallCycles || rs.Misses != rb.Misses {
		t.Fatalf("depth-0 stream (%+v) != blocking (%+v)", rs, rb)
	}
}

func TestStreamBufferCatchesSequentialRun(t *testing.T) {
	cfg := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	st, err := NewStream(cfg, l2link, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(st, seq(1<<20, 4096))
	// 1024 sequential 16-byte lines with a 6-deep buffer and no top-up on
	// consumption: one full miss every 7 lines (the Table 8 model).
	wantMisses := int64(1024 / 7)
	if res.Misses < wantMisses-3 || res.Misses > wantMisses+3 {
		t.Fatalf("misses = %d, want ~%d (one per depth+1 lines)", res.Misses, wantMisses)
	}
	if res.BufferHits != 1024-res.Misses {
		t.Fatalf("buffer hits = %d, want %d", res.BufferHits, 1024-res.Misses)
	}
	// Buffer-hit lines arrive ahead of 4-instructions-per-line execution,
	// so nearly all stall comes from the periodic full misses.
	maxStall := res.Misses*int64(l2link.Latency) + 64
	if res.StallCycles > maxStall {
		t.Fatalf("stall %d exceeds expected bound %d", res.StallCycles, maxStall)
	}
}

func TestStreamCancelsOnNonSequentialMiss(t *testing.T) {
	cfg := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	st, _ := NewStream(cfg, l2link, 4)
	st.Fetch(0)       // miss, stream starts at lines 1..4
	st.Fetch(1 << 20) // non-sequential: cancel, restart
	res := st.Result()
	if res.Misses != 2 {
		t.Fatalf("misses = %d, want 2", res.Misses)
	}
	// The old stream's lines must be gone: fetching line 1 of the old
	// stream is a fresh miss, not a buffer hit.
	st.Fetch(16)
	res = st.Result()
	if res.Misses != 3 {
		t.Fatalf("cancelled prefetch still delivered: %+v", res)
	}
}

func TestStreamBufferHitMovesLineToCache(t *testing.T) {
	cfg := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	st, _ := NewStream(cfg, l2link, 4)
	st.Fetch(0)  // miss; 16,32,48,64 head into the buffer
	st.Fetch(16) // buffer hit → moved to L1
	if !st.Cache().Contains(16) {
		t.Fatal("buffer hit did not move line into L1")
	}
	res := st.Result()
	if res.BufferHits != 1 {
		t.Fatalf("BufferHits = %d", res.BufferHits)
	}
}

func TestRunFiltersDataRefs(t *testing.T) {
	e, _ := NewBlocking(l1cfg, l2link, 0)
	refs := []trace.Ref{
		{Addr: 0, Kind: trace.IFetch},
		{Addr: 4096, Kind: trace.DRead},
		{Addr: 8192, Kind: trace.DWrite},
		{Addr: 4, Kind: trace.IFetch},
	}
	res := Run(e, refs)
	if res.Instructions != 2 {
		t.Fatalf("instructions = %d, want 2 (data refs must be ignored)", res.Instructions)
	}
}

func TestRunSource(t *testing.T) {
	e, _ := NewBlocking(l1cfg, l2link, 0)
	res, err := RunSource(e, trace.NewSliceSource(seq(0, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 64 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
}

func TestTwoLevelTotal(t *testing.T) {
	tl := TwoLevel{
		L1: Result{Instructions: 100, StallCycles: 34},
		L2: Result{Instructions: 100, StallCycles: 12},
	}
	if got := tl.Total(); got != 0.46 {
		t.Fatalf("Total = %v", got)
	}
}

func TestConstructorsRejectBadConfig(t *testing.T) {
	badCache := cache.Config{Size: 7, LineSize: 32, Assoc: 1}
	badLink := memsys.Transfer{}
	if _, err := NewBlocking(badCache, l2link, 0); err == nil {
		t.Error("NewBlocking accepted bad cache")
	}
	if _, err := NewBlocking(l1cfg, badLink, 0); err == nil {
		t.Error("NewBlocking accepted bad link")
	}
	if _, err := NewBlocking(l1cfg, l2link, -1); err == nil {
		t.Error("NewBlocking accepted negative prefetch")
	}
	if _, err := NewBypass(badCache, l2link, 0); err == nil {
		t.Error("NewBypass accepted bad cache")
	}
	if _, err := NewBypass(l1cfg, badLink, 0); err == nil {
		t.Error("NewBypass accepted bad link")
	}
	if _, err := NewBypass(l1cfg, l2link, -2); err == nil {
		t.Error("NewBypass accepted negative prefetch")
	}
	if _, err := NewStream(cache.Config{Size: 8192, LineSize: 16, Assoc: 1}, l2link, -1); err == nil {
		t.Error("NewStream accepted negative depth")
	}
	if _, err := NewStream(cache.Config{Size: 7, LineSize: 16, Assoc: 1}, l2link, 1); err == nil {
		t.Error("NewStream accepted bad cache")
	}
}

func TestBlockingResultMatchesSimulation(t *testing.T) {
	p, err := synth.Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	refs, err := synth.InstrTrace(p, 0, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		cfg  cache.Config
		link memsys.Transfer
	}{
		{cache.Config{Size: 8192, LineSize: 32, Assoc: 1}, memsys.Economy().Memory},
		{cache.Config{Size: 65536, LineSize: 64, Assoc: 1}, memsys.Economy().Memory},
		{cache.Config{Size: 65536, LineSize: 64, Assoc: 4}, memsys.HighPerformance().Memory},
		{cache.Config{Size: 32768, LineSize: 128, Assoc: 2}, memsys.L1L2Link()},
	} {
		e, err := NewBlocking(tc.cfg, tc.link, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := Run(e, refs)
		got := BlockingResult(want.Instructions, want.Misses, tc.cfg.LineSize, tc.link)
		if got != want {
			t.Errorf("%+v over %+v: analytic %+v != simulated %+v", tc.cfg, tc.link, got, want)
		}
		if got.CPIinstr() != want.CPIinstr() {
			t.Errorf("%+v: CPIinstr mismatch %v != %v", tc.cfg, got.CPIinstr(), want.CPIinstr())
		}
	}
}
