package fetch

import (
	"ibsim/internal/cache"
	"ibsim/internal/memsys"
)

// Hierarchy is a combined two-level fetch simulator: an L1 miss costs the
// L1↔L2 fill and probes the L2; an L2 miss additionally costs the L2↔memory
// fill. The paper instead simulated the two levels independently ("We
// determined the L1 contribution by simulating an L1 cache backed by a
// perfect L2... L2 contribution is determined by simulating an L2 cache
// backed by main memory") — this engine exists to validate that
// approximation (see experiments.MethodologyValidation): under inclusion and
// LRU the L2's contents are nearly identical whether it observes the full
// stream or only the L1 miss stream, so the two methods agree closely.
type Hierarchy struct {
	l1      *cache.Cache
	l2      *cache.Cache
	l1Link  memsys.Transfer
	memLink memsys.Transfer

	lineSize uint64
	res      Result
	l2Misses int64
	l1Stall  int64
	l2Stall  int64
}

// NewHierarchy builds a combined L1+L2 simulator.
func NewHierarchy(l1cfg, l2cfg cache.Config, l1Link, memLink memsys.Transfer) (*Hierarchy, error) {
	if err := l1Link.Validate(); err != nil {
		return nil, err
	}
	if err := memLink.Validate(); err != nil {
		return nil, err
	}
	l1, err := cache.New(l1cfg)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(l2cfg)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		l1: l1, l2: l2, l1Link: l1Link, memLink: memLink,
		lineSize: uint64(l1cfg.LineSize),
	}, nil
}

// Fetch implements Engine.
func (h *Hierarchy) Fetch(addr uint64) {
	h.res.Instructions++
	if h.l1.Lookup(addr) {
		return
	}
	h.res.Misses++
	l1Fill := int64(h.l1Link.FillCycles(int(h.lineSize)))
	h.res.StallCycles += l1Fill
	h.l1Stall += l1Fill
	h.l1.Fill(addr)
	if h.l2.Access(addr) {
		return
	}
	h.l2Misses++
	l2Fill := int64(h.memLink.FillCycles(h.l2.Config().LineSize))
	h.res.StallCycles += l2Fill
	h.l2Stall += l2Fill
}

// Result implements Engine.
func (h *Hierarchy) Result() Result { return h.res }

// Split returns the L1 and L2 stall contributions per instruction.
func (h *Hierarchy) Split() (l1CPI, l2CPI float64) {
	if h.res.Instructions == 0 {
		return 0, 0
	}
	n := float64(h.res.Instructions)
	return float64(h.l1Stall) / n, float64(h.l2Stall) / n
}

// L2Misses returns the number of L2 misses observed.
func (h *Hierarchy) L2Misses() int64 { return h.l2Misses }

// L1 and L2 expose the underlying caches.
func (h *Hierarchy) L1() *cache.Cache { return h.l1 }

// L2 exposes the second-level cache.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }
