package fetch

import (
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

var l2cfg64 = cache.Config{Size: 64 * 1024, LineSize: 64, Assoc: 8}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(cache.Config{Size: 7}, l2cfg64, l2link, memsys.Economy().Memory); err == nil {
		t.Error("bad L1 accepted")
	}
	if _, err := NewHierarchy(l1cfg, cache.Config{Size: 7}, l2link, memsys.Economy().Memory); err == nil {
		t.Error("bad L2 accepted")
	}
	if _, err := NewHierarchy(l1cfg, l2cfg64, memsys.Transfer{}, memsys.Economy().Memory); err == nil {
		t.Error("bad L1 link accepted")
	}
	if _, err := NewHierarchy(l1cfg, l2cfg64, l2link, memsys.Transfer{}); err == nil {
		t.Error("bad memory link accepted")
	}
}

func TestHierarchyStallAccounting(t *testing.T) {
	h, err := NewHierarchy(l1cfg, l2cfg64, l2link, memsys.Economy().Memory)
	if err != nil {
		t.Fatal(err)
	}
	// Cold fetch: misses both levels. L1 fill = 6+2-1 = 7; L2 fill of a
	// 64-byte line from economy memory = 30+16-1 = 45.
	h.Fetch(0)
	res := h.Result()
	if res.StallCycles != 7+45 {
		t.Fatalf("cold stall = %d, want 52", res.StallCycles)
	}
	l1s, l2s := h.Split()
	if l1s != 7 || l2s != 45 {
		t.Fatalf("split = %v/%v", l1s, l2s)
	}
	// Second fetch of the same line: L1 hit, free.
	h.Fetch(4)
	if got := h.Result(); got.StallCycles != 52 {
		t.Fatalf("hit charged stall: %d", got.StallCycles)
	}
	// A line in the same 64-B L2 line but a different 32-B L1 line: L1
	// miss, L2 hit → only the 7-cycle L1 fill.
	h.Fetch(32)
	if got := h.Result(); got.StallCycles != 52+7 {
		t.Fatalf("L2-hit stall = %d, want 59", got.StallCycles)
	}
	if h.L2Misses() != 1 {
		t.Fatalf("L2 misses = %d", h.L2Misses())
	}
}

func TestHierarchyCachesExposed(t *testing.T) {
	h, _ := NewHierarchy(l1cfg, l2cfg64, l2link, memsys.Economy().Memory)
	h.Fetch(0)
	if !h.L1().Contains(0) || !h.L2().Contains(0) {
		t.Fatal("fetched line missing from a level")
	}
}

// The paper's independent-levels methodology should closely agree with the
// combined hierarchy on realistic streams.
func TestHierarchyMatchesIndependentSum(t *testing.T) {
	p, err := synth.Lookup("gs")
	if err != nil {
		t.Fatal(err)
	}
	refs, err := synth.InstrTrace(p, 0, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	mem := memsys.Economy().Memory

	combined, err := NewHierarchy(l1cfg, l2cfg64, l2link, mem)
	if err != nil {
		t.Fatal(err)
	}
	Run(combined, refs)
	combTotal := combined.Result().CPIinstr()

	l1only, _ := NewBlocking(l1cfg, l2link, 0)
	l2only, _ := NewBlocking(l2cfg64, mem, 0)
	indep := Run(l1only, refs).CPIinstr() + Run(l2only, refs).CPIinstr()

	diff := combTotal - indep
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.10*indep {
		t.Fatalf("combined (%.3f) vs independent sum (%.3f): %.1f%% apart",
			combTotal, indep, 100*diff/indep)
	}
}

func TestHierarchyRunIgnoresData(t *testing.T) {
	h, _ := NewHierarchy(l1cfg, l2cfg64, l2link, memsys.Economy().Memory)
	res := Run(h, []trace.Ref{
		{Addr: 0, Kind: trace.IFetch},
		{Addr: 8192, Kind: trace.DWrite},
	})
	if res.Instructions != 1 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
}
