package fetch

import (
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
	"ibsim/internal/trace"
)

func TestPredictValidation(t *testing.T) {
	c16 := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	if _, err := NewPredict(c16, l2link, 0, 64); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := NewPredict(c16, l2link, 4, 0); err == nil {
		t.Error("zero table accepted")
	}
	if _, err := NewPredict(c16, l2link, 4, 48); err == nil {
		t.Error("non-power-of-two table accepted")
	}
	if _, err := NewPredict(cache.Config{Size: 8192, LineSize: 64, Assoc: 1}, l2link, 4, 64); err == nil {
		t.Error("oversized line accepted")
	}
	if _, err := NewPredict(c16, memsys.Transfer{}, 4, 64); err == nil {
		t.Error("bad link accepted")
	}
}

func TestPredictLearnsSequential(t *testing.T) {
	// With no trained entries, the predictor falls back to sequential and
	// tops up on consumption — on a purely sequential run it must match the
	// topping-up sequential buffer (1-way MultiStream): one cold miss, then
	// an unbroken stream.
	c16 := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	pr, err := NewPredict(c16, l2link, 6, 1024)
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := NewMultiStream(c16, l2link, 1, 6)
	refs := seq(1<<20, 2048)
	rp := Run(pr, refs)
	rm := Run(ms, refs)
	if rp.Misses != rm.Misses {
		t.Fatalf("predict misses %d != 1-way multistream misses %d on sequential run",
			rp.Misses, rm.Misses)
	}
	if rp.Misses != 1 {
		t.Fatalf("sequential run with top-up should cold-miss once, got %d", rp.Misses)
	}
}

func TestPredictLearnsBranchTarget(t *testing.T) {
	// A repeating non-sequential loop: A-run then jump to B-run then back.
	// The sequential stream buffer misses at every jump target forever; the
	// predictor learns the A→B and B→A transitions after one lap. Working
	// set exceeds the 512B L1 so the jump-target lines never stay cached.
	c16 := cache.Config{Size: 512, LineSize: 16, Assoc: 1}
	var lap []trace.Ref
	for i := 0; i < 64; i++ { // 1KB run at A
		lap = append(lap, trace.Ref{Addr: 0x10000 + uint64(i)*16, Kind: trace.IFetch})
	}
	// B's base is deliberately NOT a multiple of 64 KB from A: bases that
	// are 64-KB-aligned apart alias in a 4096-entry direct-mapped predictor
	// table and the B-run training would overwrite the A-run entries.
	for i := 0; i < 64; i++ { // 1KB run at B
		lap = append(lap, trace.Ref{Addr: 0x93000 + uint64(i)*16, Kind: trace.IFetch})
	}
	var refs []trace.Ref
	for l := 0; l < 20; l++ {
		refs = append(refs, lap...)
	}
	pr, _ := NewPredict(c16, l2link, 6, 4096)
	ms, _ := NewMultiStream(c16, l2link, 1, 6) // sequential with top-up: the fair baseline
	rp := Run(pr, refs)
	rm := Run(ms, refs)
	if rp.Misses >= rm.Misses {
		t.Fatalf("predictor (%d misses) not below sequential stream (%d) on branchy loop",
			rp.Misses, rm.Misses)
	}
	if rp.StallCycles >= rm.StallCycles {
		t.Fatalf("predictor stall %d not below stream stall %d", rp.StallCycles, rm.StallCycles)
	}
}

func TestPredictChainStopsAtLoop(t *testing.T) {
	// Train a 2-cycle A→B→A chain; prefetching from A must not loop
	// forever.
	c16 := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	pr, _ := NewPredict(c16, l2link, 8, 64)
	a, b := uint64(0x1000), uint64(0x5000)
	pr.Fetch(a)
	pr.Fetch(b)
	pr.Fetch(a)
	pr.Fetch(b)
	// A further miss elsewhere triggers a chain walk through the trained
	// A↔B cycle; the dup check must terminate it.
	pr.Fetch(0x9000)
	if pr.Result().Instructions != 5 {
		t.Fatal("engine wedged")
	}
}

func TestPredictSanity(t *testing.T) {
	c16 := cache.Config{Size: 4096, LineSize: 16, Assoc: 1}
	pr, _ := NewPredict(c16, l2link, 4, 256)
	refs := randomStream(99, 5000)
	res := Run(pr, refs)
	if res.Instructions != 5000 || res.Misses > res.Instructions || res.StallCycles < 0 {
		t.Fatalf("insane result: %+v", res)
	}
}
