package fetch

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
)

// Predict is a non-sequential prefetch engine — the "more aggressive
// (non-sequential) prefetching schemes" the paper's conclusion names as the
// future work its traces should enable. It replaces the stream buffer's
// next-SEQUENTIAL-line assumption with a next-line predictor: a
// direct-mapped table remembers, for each line, the line that followed it
// last time, and on a miss the predicted successor chain is prefetched into
// the buffer. Sequential runs predict themselves after one observation, so
// this engine strictly generalizes the sequential stream buffer once the
// table is warm — and unlike it, survives taken branches and domain
// switches whose targets repeat.
type Predict struct {
	l1       *cache.Cache
	link     memsys.Transfer
	depth    int
	lineSize uint64

	// pred is the next-line predictor: a direct-mapped table of
	// (tag, successor, confidence) entries indexed by line address. An
	// entry is only *used* once the same successor has been observed twice
	// in a row (confidence hysteresis) — without it, one-off branch
	// targets poison the sequential fallback and the predictor loses to a
	// plain stream buffer.
	predTag  []uint64
	predNext []uint64
	predConf []uint8
	predMask uint64

	avail    map[uint64]int64 // buffered line → arrival cycle
	tail     uint64           // last line in the prefetch chain (for top-up)
	prevLine uint64           // last line fetched, for predictor training
	started  bool
	res      Result
	// TableHits counts buffer hits (i.e. correct predictions consumed).
	tableMiss int64
}

// NewPredict builds the engine: a stream buffer of depth lines fed by a
// next-line predictor with tableEntries entries (a power of two).
func NewPredict(cfg cache.Config, link memsys.Transfer, depth, tableEntries int) (*Predict, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if depth < 1 {
		return nil, fmt.Errorf("fetch: predict engine needs depth >= 1, got %d", depth)
	}
	if tableEntries < 1 || tableEntries&(tableEntries-1) != 0 {
		return nil, fmt.Errorf("fetch: predictor table entries %d must be a positive power of two", tableEntries)
	}
	if cfg.LineSize > 2*link.BytesPerCycle {
		return nil, fmt.Errorf("fetch: predict engine needs line size (%d) <= 2x bandwidth (%d B/cyc)",
			cfg.LineSize, link.BytesPerCycle)
	}
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Predict{
		l1: l1, link: link, depth: depth,
		lineSize: uint64(cfg.LineSize),
		predTag:  make([]uint64, tableEntries),
		predNext: make([]uint64, tableEntries),
		predConf: make([]uint8, tableEntries),
		predMask: uint64(tableEntries - 1),
		avail:    make(map[uint64]int64),
	}, nil
}

func (p *Predict) now() int64 { return p.res.Instructions + p.res.StallCycles }

// predict returns the predicted successor of line, falling back to the
// sequential next line when the table has no confident entry.
func (p *Predict) predict(line uint64) uint64 {
	slot := (line / p.lineSize) & p.predMask
	if p.predTag[slot] == line && p.predConf[slot] > 0 {
		return p.predNext[slot]
	}
	p.tableMiss++
	return line + p.lineSize
}

// train records that next followed line, with two-observation hysteresis:
// a successor must repeat before it is trusted, and a trusted successor is
// only displaced after it misses once.
func (p *Predict) train(line, next uint64) {
	if next == line+p.lineSize {
		// Sequential transitions are the fallback anyway; recording them
		// would evict useful branch-target entries from the table.
		return
	}
	slot := (line / p.lineSize) & p.predMask
	switch {
	case p.predTag[slot] != line:
		p.predTag[slot] = line
		p.predNext[slot] = next
		p.predConf[slot] = 0
	case p.predNext[slot] == next:
		p.predConf[slot] = 1
	case p.predConf[slot] > 0:
		p.predConf[slot] = 0 // trusted entry missed once: demote
	default:
		p.predNext[slot] = next // untrusted entry: replace
	}
}

// Fetch implements Engine.
func (p *Predict) Fetch(addr uint64) {
	p.res.Instructions++
	la := addr &^ (p.lineSize - 1)
	// Train the predictor on every line transition.
	if p.started && la != p.prevLine {
		p.train(p.prevLine, la)
	}
	p.started = true
	p.prevLine = la

	if p.l1.Lookup(addr) {
		return
	}
	now := p.now()
	if arrive, ok := p.avail[la]; ok {
		if arrive > now {
			p.res.StallCycles += arrive - now
			now = arrive
		}
		p.res.BufferHits++
		p.l1.Fill(la)
		delete(p.avail, la)
		// Top up: extend the chain by one predicted line, keeping the
		// buffer rolling as long as predictions hold (the analogue of
		// MultiStream's per-consumption prefetch).
		next := p.predict(p.tail)
		if _, dup := p.avail[next]; !dup && !p.l1.Contains(next) {
			p.avail[next] = now + int64(p.link.Latency)
			p.tail = next
		}
		return
	}
	// Miss: fetch the line, then prefetch the predicted successor chain —
	// pipelined, one request per cycle, like Table 8's stream buffer.
	p.res.Misses++
	p.res.StallCycles += int64(p.link.FillCycles(int(p.lineSize)))
	now = p.now()
	p.l1.Fill(la)
	clear(p.avail)
	next := la
	p.tail = la
	for i := 1; i <= p.depth; i++ {
		next = p.predict(next)
		if _, dup := p.avail[next]; dup || p.l1.Contains(next) {
			break // chain loops back or is already resident
		}
		p.avail[next] = now + int64(i)
		p.tail = next
	}
}

// Result implements Engine.
func (p *Predict) Result() Result { return p.res }

// Cache exposes the underlying L1.
func (p *Predict) Cache() *cache.Cache { return p.l1 }
