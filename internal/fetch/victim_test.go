package fetch

import (
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
	"ibsim/internal/trace"
)

func TestVictimValidation(t *testing.T) {
	if _, err := NewVictim(l1cfg, l2link, 0); err == nil {
		t.Error("zero victim lines accepted")
	}
	if _, err := NewVictim(cache.Config{Size: 7}, l2link, 4); err == nil {
		t.Error("bad L1 accepted")
	}
	if _, err := NewVictim(l1cfg, memsys.Transfer{}, 4); err == nil {
		t.Error("bad link accepted")
	}
}

func TestVictimCatchesConflictPair(t *testing.T) {
	// Two lines that conflict in a direct-mapped cache, accessed
	// alternately: without a victim cache every access misses; with one,
	// only the cold misses pay the full refill.
	small := cache.Config{Size: 4 * 32, LineSize: 32, Assoc: 1}
	v, err := NewVictim(small, l2link, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewBlocking(small, l2link, 0)
	var refs []trace.Ref
	for i := 0; i < 100; i++ {
		refs = append(refs, trace.Ref{Addr: uint64(i%2) * 128, Kind: trace.IFetch})
	}
	rv := Run(v, refs)
	rp := Run(plain, refs)
	if rp.Misses != 100 {
		t.Fatalf("plain DM should thrash: %d misses", rp.Misses)
	}
	if rv.Misses != 100 {
		// Victim engine counts L1 misses; most are victim hits.
		t.Fatalf("victim engine misses = %d", rv.Misses)
	}
	if v.VictimHits() != 98 {
		t.Fatalf("victim hits = %d, want 98 (all but the 2 cold misses)", v.VictimHits())
	}
	// Stall: 2 full refills (7 cycles each) + 98 swaps (1 cycle each).
	if rv.StallCycles != 2*7+98 {
		t.Fatalf("victim stall = %d, want %d", rv.StallCycles, 2*7+98)
	}
	if rv.StallCycles >= rp.StallCycles {
		t.Fatal("victim cache did not help a conflict pair")
	}
}

func TestVictimEvictionFlow(t *testing.T) {
	// Capacity-limited victim cache: with 1 line, a 3-way conflict rotation
	// gets limited help.
	small := cache.Config{Size: 4 * 32, LineSize: 32, Assoc: 1}
	v, _ := NewVictim(small, l2link, 1)
	var refs []trace.Ref
	for i := 0; i < 99; i++ {
		refs = append(refs, trace.Ref{Addr: uint64(i%3) * 128, Kind: trace.IFetch})
	}
	Run(v, refs)
	// Rotating A,B,C through one victim slot: the victim always holds the
	// line evicted last, but the rotation wants the one before that —
	// almost no victim hits.
	if v.VictimHits() > 5 {
		t.Fatalf("1-line victim cache on 3-way rotation: %d hits, want ~0", v.VictimHits())
	}
}

func TestMultiStreamValidation(t *testing.T) {
	c16 := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	if _, err := NewMultiStream(c16, l2link, 0, 4); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := NewMultiStream(c16, l2link, 4, 0); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := NewMultiStream(cache.Config{Size: 8192, LineSize: 64, Assoc: 1}, l2link, 4, 4); err == nil {
		t.Error("oversized line accepted")
	}
}

func TestMultiStreamSurvivesInterleaving(t *testing.T) {
	// Two interleaved sequential streams: a single stream buffer cancels on
	// every alternation; a 2-way buffer keeps both alive.
	c16 := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	var refs []trace.Ref
	a, b := uint64(0x100000), uint64(0x900000)
	for i := 0; i < 400; i++ {
		// 4 instructions (one line) from each stream, alternating.
		for j := 0; j < 4; j++ {
			refs = append(refs, trace.Ref{Addr: a, Kind: trace.IFetch})
			a += 4
		}
		for j := 0; j < 4; j++ {
			refs = append(refs, trace.Ref{Addr: b, Kind: trace.IFetch})
			b += 4
		}
	}
	single, err := NewStream(c16, l2link, 4)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultiStream(c16, l2link, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rs := Run(single, refs)
	rm := Run(multi, refs)
	if rm.Misses >= rs.Misses/4 {
		t.Fatalf("multi-stream misses %d not ≪ single-stream %d on interleaved streams",
			rm.Misses, rs.Misses)
	}
	if rm.StallCycles >= rs.StallCycles {
		t.Fatalf("multi-stream stall %d not below single %d", rm.StallCycles, rs.StallCycles)
	}
}

func TestMultiStreamLRUReallocation(t *testing.T) {
	c16 := cache.Config{Size: 8192, LineSize: 16, Assoc: 1}
	m, _ := NewMultiStream(c16, l2link, 2, 4)
	m.Fetch(0x100000) // miss: way 0 streams 0x100010..
	m.Fetch(0x200000) // miss: way 1 streams 0x200010..
	m.Fetch(0x300000) // miss: reallocates LRU way 0 to stream 0x300010..
	// Way 0's old stream (0x100010) is gone: a fourth miss, which in turn
	// reallocates the now-LRU way 1.
	m.Fetch(0x100010)
	res := m.Result()
	if res.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (stream 1 was reallocated)", res.Misses)
	}
	// The 0x300000 stream (most recently allocated before the 4th miss)
	// survived.
	m.Fetch(0x300010)
	if got := m.Result(); got.BufferHits != 1 {
		t.Fatalf("buffer hits = %d, want 1 (0x300000 stream alive)", got.BufferHits)
	}
}
