package fetch

import (
	"bytes"
	"errors"
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/memsys"
	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

// randomRunTrace builds a sequential-heavy instruction stream with jumps and
// domain switches, optionally from an unaligned base, bounded to a footprint
// that exercises both hit-dominated and thrashing cache behavior.
func randomRunTrace(rng *xrand.Source, n int, footprint uint64) []trace.Ref {
	refs := make([]trace.Ref, n)
	addr := rng.Uint64n(footprint)
	dom := trace.User
	for i := range refs {
		refs[i] = trace.Ref{Addr: addr, Kind: trace.IFetch, Domain: dom}
		if rng.Bool(0.08) {
			addr = rng.Uint64n(footprint)
			if rng.Bool(0.2) {
				dom = trace.Domain(rng.Intn(int(trace.NumDomains)))
			}
		} else {
			addr += trace.InstrBytes
		}
	}
	return refs
}

// The tentpole equivalence property: for every engine type, replaying the
// run-compacted trace through FetchRun produces a Result bit-identical to
// per-reference fetch.Run, across random geometries, link bandwidths (the
// Bypass closed form must hold for B<4, B=4, B>4), prefetch depths, sector
// caches, and caches tiny enough that prefetches evict the demand line
// (forcing the Touch-miss fallback).
func TestFetchRunMatchesPerRef(t *testing.T) {
	rng := xrand.New(0xF37C4)
	lineSizes := []int{4, 8, 16, 32, 64}
	bws := []int{1, 2, 3, 4, 8, 16, 32, 64}
	for trial := 0; trial < 300; trial++ {
		ls := lineSizes[rng.Intn(len(lineSizes))]
		sets := 1 << rng.Intn(6) // 1..32 sets: includes pathologically tiny caches
		assoc := []int{1, 2, 4}[rng.Intn(3)]
		cfg := cache.Config{Size: sets * assoc * ls, LineSize: ls, Assoc: assoc}
		link := memsys.Transfer{Latency: 1 + rng.Intn(20), BytesPerCycle: bws[rng.Intn(len(bws))]}
		pf := rng.Intn(4)
		kind := rng.Intn(6)

		mk := func() (Engine, error) {
			switch kind {
			case 0:
				c := cfg
				if rng2 := ls / 4; rng2 >= 1 && trial%3 == 0 && ls >= 16 {
					c.SubBlock = ls / 4 // sector cache (prefetch-free path)
					return NewBlocking(c, link, 0)
				}
				return NewBlocking(c, link, pf)
			case 1:
				return NewBypass(cfg, link, pf)
			case 2:
				if ls > 2*link.BytesPerCycle {
					return NewBlocking(cfg, link, pf)
				}
				return NewStream(cfg, link, rng.Intn(8))
			case 3:
				if ls > 2*link.BytesPerCycle {
					return NewBypass(cfg, link, pf)
				}
				return NewMultiStream(cfg, link, 1+rng.Intn(3), 1+rng.Intn(6))
			case 4:
				return NewVictim(cfg, link, 1+rng.Intn(4))
			default:
				l2cfg := cache.Config{Size: cfg.Size * 8, LineSize: ls * 2, Assoc: 2}
				return NewHierarchy(cfg, l2cfg, link, memsys.Transfer{Latency: 24, BytesPerCycle: 8})
			}
		}

		// Footprint spans a few multiples of the cache so both hit-heavy and
		// evicting streams occur; unaligned bases exercise the segment ceil.
		foot := uint64(cfg.Size) * uint64(1+rng.Intn(4))
		refs := randomRunTrace(rng, 3000, foot)
		if trial%5 == 0 {
			for i := range refs {
				refs[i].Addr += 2
			}
		}
		runs := trace.Compact(refs)

		// The two engines must be built identically; mk is deterministic per
		// trial aside from the rng draws, so draw once and reuse.
		e1, err1 := mk()
		if err1 != nil {
			t.Fatalf("trial %d: building reference engine: %v", trial, err1)
		}
		e2 := cloneEngine(t, e1, cfg, link)

		want := Run(e1, refs)
		got := RunCompact(e2, runs)
		if got != want {
			t.Fatalf("trial %d (%T %s link=%+v): bulk %+v != per-ref %+v",
				trial, e1, cfg, link, got, want)
		}
	}
}

// cloneEngine builds a second engine with the same configuration as e.
func cloneEngine(t *testing.T, e Engine, cfg cache.Config, link memsys.Transfer) Engine {
	t.Helper()
	var (
		out Engine
		err error
	)
	switch v := e.(type) {
	case *Blocking:
		c := cfg
		c.SubBlock = int(v.subBlock)
		out, err = NewBlocking(c, link, v.prefetch)
	case *Bypass:
		out, err = NewBypass(cfg, link, v.prefetch)
	case *Stream:
		out, err = NewStream(cfg, link, v.depth)
	case *MultiStream:
		out, err = NewMultiStream(cfg, link, v.ways, v.depth)
	case *Victim:
		out, err = NewVictim(cfg, link, v.vc.Config().Lines())
	case *Hierarchy:
		out, err = NewHierarchy(cfg, v.l2.Config(), link, v.memLink)
	default:
		t.Fatalf("unknown engine %T", e)
	}
	if err != nil {
		t.Fatalf("cloning %T: %v", e, err)
	}
	return out
}

// RunCompact on an engine without a bulk path falls back to per-instruction
// expansion with identical results.
type plainEngine struct{ inner *Blocking }

func (p *plainEngine) Fetch(addr uint64) { p.inner.Fetch(addr) }
func (p *plainEngine) Result() Result    { return p.inner.Result() }

func TestRunCompactFallback(t *testing.T) {
	cfg := cache.Config{Size: 4096, LineSize: 16, Assoc: 1}
	refs := randomRunTrace(xrand.New(5), 2000, 1<<14)
	runs := trace.Compact(refs)
	a, _ := NewBlocking(cfg, l2link, 1)
	b, _ := NewBlocking(cfg, l2link, 1)
	want := Run(a, refs)
	got := RunCompact(&plainEngine{inner: b}, runs)
	if got != want {
		t.Fatalf("fallback %+v != per-ref %+v", got, want)
	}
}

// An all-hit bulk replay must not allocate: it is the inner loop of the
// fan-out driver. (A replay with misses may allocate in Stream's buffer map;
// the warm, hit-dominated steady state is the case that matters.)
func TestFetchRunZeroAlloc(t *testing.T) {
	cfg := cache.Config{Size: 8192, LineSize: 32, Assoc: 2}
	// Footprint within the cache: after one warm replay everything hits.
	refs := randomRunTrace(xrand.New(11), 4000, 4096)
	runs := trace.Compact(refs)
	engines := []struct {
		name string
		e    RunEngine
	}{}
	bl, _ := NewBlocking(cfg, l2link, 2)
	by, _ := NewBypass(cfg, l2link, 2)
	st, _ := NewStream(cfg, l2link, 6)
	engines = append(engines,
		struct {
			name string
			e    RunEngine
		}{"blocking", bl},
		struct {
			name string
			e    RunEngine
		}{"bypass", by},
		struct {
			name string
			e    RunEngine
		}{"stream", st},
	)
	for _, tc := range engines {
		for _, r := range runs { // warm
			tc.e.FetchRun(r.Start, r.Len)
		}
		allocs := testing.AllocsPerRun(10, func() {
			for _, r := range runs {
				tc.e.FetchRun(r.Start, r.Len)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: FetchRun allocated %v times per replay, want 0", tc.name, allocs)
		}
	}
}

// A fault mid-stream must surface through RunSource as a non-nil error with
// a visibly partial Result — engines never pass a truncated replay off as
// complete.
func TestRunSourcePartialOnFault(t *testing.T) {
	refs := randomRunTrace(xrand.New(3), 1000, 1<<14)
	var sb seekBufferFetch
	n, err := trace.EncodeSeeker(&sb, trace.NewSliceSource(refs))
	if err != nil || n != 1000 {
		t.Fatalf("EncodeSeeker: n=%d err=%v", n, err)
	}
	cut := sb.buf[:len(sb.buf)*2/3] // short read: stream dies mid-record

	tr, err := trace.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewBlocking(cache.Config{Size: 4096, LineSize: 16, Assoc: 1}, l2link, 0)
	res, err := RunSource(e, tr)
	if err == nil {
		t.Fatal("RunSource reported a truncated stream as complete")
	}
	if !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if res.Instructions == 0 || res.Instructions >= 1000 {
		t.Fatalf("partial result covers %d instructions, want a strict prefix", res.Instructions)
	}
}

// seekBufferFetch is a minimal in-memory io.WriteSeeker for the fault test.
type seekBufferFetch struct {
	buf []byte
	pos int
}

func (s *seekBufferFetch) Write(p []byte) (int, error) {
	if need := s.pos + len(p); need > len(s.buf) {
		s.buf = append(s.buf, make([]byte, need-len(s.buf))...)
	}
	copy(s.buf[s.pos:], p)
	s.pos += len(p)
	return len(p), nil
}

func (s *seekBufferFetch) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case 0:
		s.pos = int(offset)
	case 1:
		s.pos += int(offset)
	default:
		s.pos = len(s.buf) + int(offset)
	}
	return int64(s.pos), nil
}

// benchStream is a long, realistic sequential-heavy stream shared by the
// replay benchmarks.
func benchStream(n int) ([]trace.Ref, []trace.Run) {
	refs := randomRunTrace(xrand.New(42), n, 1<<17)
	return refs, trace.Compact(refs)
}

func BenchmarkFetchPerRef(b *testing.B) {
	refs, _ := benchStream(1 << 18)
	cfg := cache.Config{Size: 16384, LineSize: 32, Assoc: 1}
	b.SetBytes(int64(len(refs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := NewBlocking(cfg, l2link, 1)
		Run(e, refs)
	}
}

func BenchmarkFetchRun(b *testing.B) {
	refs, runs := benchStream(1 << 18)
	cfg := cache.Config{Size: 16384, LineSize: 32, Assoc: 1}
	b.SetBytes(int64(len(refs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := NewBlocking(cfg, l2link, 1)
		RunCompact(e, runs)
	}
}
