package cluster

// Crash-torture hooks: the crash-consistency harness (internal/check) needs
// to drive the EXACT persistence code a live coordinator runs — the
// checkpointer and result cache are unexported, so these wrappers construct
// them around an injected filesystem and a deterministic fixture, and verify
// the recovery contract against a materialized post-crash image.

import (
	"expvar"
	"fmt"
	"reflect"

	"ibsim/internal/atomicio"
	"ibsim/internal/crashfs"
	"ibsim/internal/manifest"
	"ibsim/internal/server"
)

// crashFixture is the deterministic run the crash scenarios persist: a
// two-cell sweep plan, its shard-0 partial, and the coalesced cache entry.
func crashFixture() (base sweepBase, plan *sweepPlan, resp *server.SweepResponse, entry *sweepEntry) {
	base = sweepBase{Workload: "crash-fixture", Seed: 7, Instructions: 1 << 16, LineSize: 64}
	cells := []server.CellSpec{{Sets: 64, Assoc: 1}, {Sets: 128, Assoc: 2}}
	plan = &sweepPlan{Base: base, CountDistinct: true, Cells: cells, Shards: [][]int{{0}, {1}}}
	resp = &server.SweepResponse{
		Workload:     base.Workload,
		Seed:         base.Seed,
		Instructions: base.Instructions,
		LineSize:     base.LineSize,
		Accesses:     base.Instructions,
		Distinct:     4242,
		Cells: []server.CellResult{
			{Sets: 64, Assoc: 1, SizeBytes: 64 * 64, Misses: 9001},
		},
	}
	entry = &sweepEntry{
		Base:        base,
		Accesses:    base.Instructions,
		HasDistinct: true,
		Distinct:    4242,
		Cells: []server.CellResult{
			{Sets: 64, Assoc: 1, SizeBytes: 64 * 64, Misses: 9001},
			{Sets: 128, Assoc: 2, SizeBytes: 128 * 2 * 64, Misses: 707},
		},
	}
	return base, plan, resp, entry
}

// crashRunKey is the fixture run's content address, derived exactly as the
// coordinator derives it (base + cells).
func crashRunKey() string {
	base, plan, _, _ := crashFixture()
	return manifest.Key("sweep-run", struct {
		Base  sweepBase         `json:"base"`
		Cells []server.CellSpec `json:"cells"`
	}{base, plan.Cells})
}

// CrashCheckpointWrite runs the shard-checkpoint persistence sequence — save
// the plan, then shard 0's sealed partial — through fsys rooted at dir. It is
// the crash harness's write path for the checkpoint surface; save errors are
// swallowed (checkpointing is best-effort in the coordinator too).
func CrashCheckpointWrite(fsys crashfs.FS, dir string) error {
	_, plan, resp, _ := crashFixture()
	k := &checkpointer{dir: dir, fsys: fsys, corrupt: new(expvar.Int)}
	key := crashRunKey()
	k.savePlan(key, plan)
	k.saveShard(key, 0, resp)
	return nil
}

// CrashCheckpointVerify opens a post-crash checkpoint directory the way a
// restarted coordinator does — sweep temp debris, then load — and asserts
// the recovery contract: whatever loads is bit-identical to what was saved
// (old-or-new, never a blend), a rejected shard is counted and its file
// deleted, and no temp debris survives the sweep.
func CrashCheckpointVerify(dir string) error {
	sweepDurableRoot(crashfs.OS(), dir)
	if err := assertNoTemps(dir); err != nil {
		return err
	}
	_, plan, resp, _ := crashFixture()
	key := crashRunKey()
	corrupt := new(expvar.Int)
	k := &checkpointer{dir: dir, corrupt: corrupt}
	want := *plan
	if got, ok := k.loadPlan(key, &want); ok {
		if !reflect.DeepEqual(got, plan) {
			return fmt.Errorf("recovered plan differs from the one saved: %+v", got)
		}
	}
	if got, ok := k.loadShard(key, 0); ok {
		if !reflect.DeepEqual(got, resp) {
			return fmt.Errorf("recovered shard partial differs from the one saved: %+v", got)
		}
	}
	// A shard rejected for corruption must have been deleted: loading it
	// again must miss cleanly without another corruption count.
	if n := corrupt.Value(); n > 0 {
		before := n
		if _, ok := k.loadShard(key, 0); ok {
			return fmt.Errorf("corrupt shard partial served on second load")
		}
		if corrupt.Value() != before {
			return fmt.Errorf("corrupt shard partial not deleted after rejection")
		}
	}
	return nil
}

// CrashCacheWrite runs the result-cache persistence sequence — seal and
// store the fixture sweep entry — through fsys rooted at dir.
func CrashCacheWrite(fsys crashfs.FS, dir string) error {
	base, _, _, entry := crashFixture()
	rc := newResultCache(dir, fsys, new(expvar.Int))
	rc.storeSweep(manifest.Key("sweep", base), entry)
	return nil
}

// CrashCacheVerify opens a post-crash cache directory the way a restarted
// coordinator does and asserts the recovery contract: a loaded entry is
// bit-identical to the stored one, a poisoned entry is counted and deleted,
// and no temp debris survives the sweep.
func CrashCacheVerify(dir string) error {
	sweepDurableRoot(crashfs.OS(), dir)
	if err := assertNoTemps(dir); err != nil {
		return err
	}
	base, _, _, entry := crashFixture()
	key := manifest.Key("sweep", base)
	poison := new(expvar.Int)
	rc := newResultCache(dir, nil, poison)
	if got := rc.loadSweep(key, base); got != nil {
		if !reflect.DeepEqual(got, entry) {
			return fmt.Errorf("recovered cache entry differs from the one stored: %+v", got)
		}
	}
	if n := poison.Value(); n > 0 {
		// The poisoned file must be gone: a fresh cache must miss cleanly.
		rc2 := newResultCache(dir, nil, new(expvar.Int))
		if rc2.loadSweep(key, base) != nil {
			return fmt.Errorf("poisoned cache entry served on second load")
		}
	}
	return nil
}

// assertNoTemps fails if any atomicio temp file survives anywhere under a
// swept durable root — debris a recovery must have removed.
func assertNoTemps(root string) error {
	fsys := crashfs.OS()
	var walk func(dir string) error
	walk = func(dir string) error {
		entries, err := fsys.ReadDir(dir)
		if err != nil {
			return nil // a missing subtree has no debris
		}
		for _, e := range entries {
			if e.IsDir() {
				if err := walk(dir + "/" + e.Name()); err != nil {
					return err
				}
				continue
			}
			if atomicio.IsTemp(e.Name()) {
				return fmt.Errorf("temp debris survived recovery: %s/%s", dir, e.Name())
			}
		}
		return nil
	}
	return walk(root)
}
