// External test package: internal/check imports internal/cluster, so the
// leak bracket (check.NoGoroutineLeak) can only be used from outside the
// cluster package itself.
package cluster_test

import (
	"context"
	"testing"

	"ibsim/internal/check"
	"ibsim/internal/cluster"
	"ibsim/internal/server"
)

// TestCrashClusterShutdownNoGoroutineLeak drives a workerless coordinator
// through its embedded local fallback — which lazily starts an in-process
// HTTP server — and asserts Close tears all of it down: the fallback
// server's run loop, its listener, and the client connections to it.
func TestCrashClusterShutdownNoGoroutineLeak(t *testing.T) {
	assertNoLeak := check.NoGoroutineLeak(t)

	c := cluster.New(cluster.Config{Dir: t.TempDir()})
	req := server.SweepRequest{Workload: "mpeg_play", Seed: 7, Instructions: 50_000,
		LineSize: 32, Cells: []server.CellSpec{{Sets: 64, Assoc: 1}, {Sets: 128, Assoc: 2}}}
	resp, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("sweep via local fallback: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("workerless sweep not marked degraded")
	}
	if c.Metric("cluster_local_fallback_total") == 0 {
		t.Fatal("local fallback never engaged")
	}
	c.Close()
	assertNoLeak()
}
