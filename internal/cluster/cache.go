package cluster

import (
	"encoding/json"
	"expvar"
	"path/filepath"
	"sync"

	"ibsim/internal/atomicio"
	"ibsim/internal/crashfs"
	"ibsim/internal/manifest"
	"ibsim/internal/server"
)

// The result cache is params-keyed and content-addressed: an entry's name
// is manifest.Key over the request's identity fields, and its on-disk form
// is manifest.Seal's digest envelope, so a poisoned or torn cache file is
// detected on load and recomputed, never served. Entries coalesce
// supersets: a sweep entry accumulates the union of every grid cell ever
// computed for its (workload, seed, n, line size), and a replay entry the
// union of every engine spec, so a later request whose cells are covered by
// earlier, differently-shaped requests is served without touching a worker.

// sweepBase is the identity of a sweep cache entry — everything that
// changes the per-cell answers except the grid itself. CountDistinct is
// deliberately not part of the identity: distinct-line counts ride along in
// the entry and requests that don't ask for them still share it.
type sweepBase struct {
	Workload     string `json:"workload"`
	Seed         uint64 `json:"seed"`
	Instructions int64  `json:"instructions"`
	LineSize     int    `json:"line_size"`
}

// sweepEntry is the accumulated union of computed cells for one base.
type sweepEntry struct {
	Base        sweepBase           `json:"base"`
	Accesses    int64               `json:"accesses"`
	HasDistinct bool                `json:"has_distinct,omitempty"`
	Distinct    int64               `json:"distinct,omitempty"`
	Cells       []server.CellResult `json:"cells"`
}

// find returns the cell result for a geometry, if present.
func (e *sweepEntry) find(sets, assoc int) (server.CellResult, bool) {
	for _, c := range e.Cells {
		if c.Sets == sets && c.Assoc == assoc {
			return c, true
		}
	}
	return server.CellResult{}, false
}

// add inserts a cell result, first write wins (identical by construction:
// exact sweeps of the same base are deterministic).
func (e *sweepEntry) add(c server.CellResult) {
	if _, ok := e.find(c.Sets, c.Assoc); !ok {
		e.Cells = append(e.Cells, c)
	}
}

// replayBase is the identity of a replay cache entry.
type replayBase struct {
	Workload     string `json:"workload"`
	Seed         uint64 `json:"seed"`
	Instructions int64  `json:"instructions"`
}

// replayCell is one engine's cached result, keyed by its full spec.
type replayCell struct {
	Spec   server.EngineSpec   `json:"spec"`
	Result server.EngineResult `json:"result"`
}

// replayEntry is the accumulated union of computed engines for one base.
// Engines of a bank are simulated independently, so per-engine results
// compose across requests exactly like sweep cells do.
type replayEntry struct {
	Base    replayBase   `json:"base"`
	Engines []replayCell `json:"engines"`
}

// specKey canonicalizes an engine spec for matching: the JSON encoding of
// a fixed struct type is deterministic (declaration field order).
func specKey(s server.EngineSpec) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func (e *replayEntry) find(spec server.EngineSpec) (server.EngineResult, bool) {
	want := specKey(spec)
	for _, c := range e.Engines {
		if specKey(c.Spec) == want {
			return c.Result, true
		}
	}
	return server.EngineResult{}, false
}

func (e *replayEntry) add(spec server.EngineSpec, r server.EngineResult) {
	if _, ok := e.find(spec); !ok {
		e.Engines = append(e.Engines, replayCell{Spec: spec, Result: r})
	}
}

// resultCache is the in-memory map plus (when dir is set) the sealed
// on-disk mirror that survives coordinator restarts.
type resultCache struct {
	dir    string     // "" = memory only
	fsys   crashfs.FS // nil = the real OS; the torture harness injects a Sim
	poison *expvar.Int

	mu      sync.Mutex
	sweeps  map[string]*sweepEntry
	replays map[string]*replayEntry
}

func newResultCache(dir string, fsys crashfs.FS, poison *expvar.Int) *resultCache {
	return &resultCache{
		dir:     dir,
		fsys:    fsys,
		poison:  poison,
		sweeps:  map[string]*sweepEntry{},
		replays: map[string]*replayEntry{},
	}
}

func (rc *resultCache) fs() crashfs.FS {
	if rc.fsys == nil {
		return crashfs.OS()
	}
	return rc.fsys
}

func (rc *resultCache) path(key string) string {
	return filepath.Join(rc.dir, "cache", key+".json")
}

// loadFile reads and unseals one cache file; a broken seal (bit flip,
// truncation, hand edit) counts as poisoning and deletes the file so the
// entry is recomputed.
func (rc *resultCache) loadFile(key string, into any) bool {
	if rc.dir == "" {
		return false
	}
	raw, err := rc.fs().ReadFile(rc.path(key))
	if err != nil {
		return false
	}
	payload, err := manifest.Unseal(raw)
	if err == nil {
		err = json.Unmarshal(payload, into)
	}
	if err != nil {
		rc.poison.Add(1)
		rc.fs().Remove(rc.path(key))
		return false
	}
	return true
}

// storeFile seals and atomically writes one cache file.
func (rc *resultCache) storeFile(key string, v any) {
	if rc.dir == "" {
		return
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return
	}
	if err := rc.fs().MkdirAll(filepath.Join(rc.dir, "cache"), 0o755); err != nil {
		return
	}
	atomicio.WriteFileFS(rc.fs(), rc.path(key), manifest.Seal(payload), 0o644)
}

// loadSweep returns the entry for key, consulting memory then disk. The
// returned pointer is the cache's own copy; callers mutate it only under
// the coordinator's per-key lock and persist via storeSweep.
func (rc *resultCache) loadSweep(key string, base sweepBase) *sweepEntry {
	rc.mu.Lock()
	if e, ok := rc.sweeps[key]; ok {
		rc.mu.Unlock()
		return e
	}
	rc.mu.Unlock()
	var e sweepEntry
	if !rc.loadFile(key, &e) || e.Base != base {
		return nil
	}
	rc.mu.Lock()
	rc.sweeps[key] = &e
	rc.mu.Unlock()
	return &e
}

func (rc *resultCache) storeSweep(key string, e *sweepEntry) {
	rc.mu.Lock()
	rc.sweeps[key] = e
	rc.mu.Unlock()
	rc.storeFile(key, e)
}

func (rc *resultCache) loadReplay(key string, base replayBase) *replayEntry {
	rc.mu.Lock()
	if e, ok := rc.replays[key]; ok {
		rc.mu.Unlock()
		return e
	}
	rc.mu.Unlock()
	var e replayEntry
	if !rc.loadFile(key, &e) || e.Base != base {
		return nil
	}
	rc.mu.Lock()
	rc.replays[key] = &e
	rc.mu.Unlock()
	return &e
}

func (rc *resultCache) storeReplay(key string, e *replayEntry) {
	rc.mu.Lock()
	rc.replays[key] = e
	rc.mu.Unlock()
	rc.storeFile(key, e)
}
