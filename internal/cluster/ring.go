package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// The consistent-hash ring maps a workload identity — (profile, seed,
// instructions) — to a stable preference order over the worker addresses.
// Repeated requests for the same workload therefore always land on the same
// workers in the same order, so each worker's memoized synth store stays hot
// across sweeps; and because the ring hashes worker *addresses* (with
// virtual nodes), adding or removing one worker remaps only the keys that
// pointed at it, not the whole grid.

// ringReplicas is the virtual-node count per worker: enough that a handful
// of workers spread keys evenly, cheap enough to rebuild on every New.
const ringReplicas = 64

type ringPoint struct {
	hash uint64
	idx  int
}

type ring struct {
	points []ringPoint // sorted by hash
	n      int
}

// newRing builds the ring over the worker addresses; index i of addrs is
// the worker index returned by order.
func newRing(addrs []string) *ring {
	r := &ring{n: len(addrs)}
	for i, a := range addrs {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", a, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// order walks the ring clockwise from key and returns every worker index in
// first-encounter order: element 0 is the key's home worker, the rest are
// its failover sequence.
func (r *ring) order(key uint64) []int {
	if r.n == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256, so placement is
// stable across processes and Go versions (no dependence on map iteration
// or hash/maphash seeds).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// workloadKey hashes the trace identity the paper's experiments revolve
// around: which workload, which seed, how many instructions. Every shard of
// one request shares this key, so the shard preference orders are rotations
// of one ring walk.
func workloadKey(workload string, seed uint64, instructions int64) uint64 {
	return hash64(fmt.Sprintf("%s\x00%d\x00%d", workload, seed, instructions))
}
