package cluster

import (
	"expvar"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ibsim/internal/crashfs"
	"ibsim/internal/manifest"
)

// seedDurableImage runs the checkpoint + cache persistence sequences through
// a crashfs recording pass and materializes the flushed image — corruption
// fixtures below start from a disk state the real write paths produced.
func seedDurableImage(t *testing.T) string {
	t.Helper()
	live := t.TempDir()
	sim := crashfs.NewSim(live, -1)
	if err := CrashCheckpointWrite(sim, live); err != nil {
		t.Fatal(err)
	}
	if err := CrashCacheWrite(sim, live); err != nil {
		t.Fatal(err)
	}
	img := t.TempDir()
	if err := sim.Materialize(img, crashfs.Flushed); err != nil {
		t.Fatal(err)
	}
	return img
}

// mutateEveryByte runs check against a copy of path truncated at, then
// bit-flipped at, a spread of byte positions.
func mutateEveryByte(t *testing.T, path string, check func(label string)) {
	t.Helper()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer os.WriteFile(path, whole, 0o644)
	for cut := 0; cut < len(whole); cut += 1 + len(whole)/64 {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		check("truncated at " + filepath.Base(path))
	}
	for i := 0; i < len(whole); i += 1 + len(whole)/64 {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 1 << (i % 8)
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		check("bit-flipped at " + filepath.Base(path))
	}
}

// TestCrashCheckpointRejectsCorruption mutates the sealed shard partial at
// every sampled byte: the loader must never return a partial — each
// corruption is counted, the file deleted, the shard recomputed.
func TestCrashCheckpointRejectsCorruption(t *testing.T) {
	img := seedDurableImage(t)
	_, plan, resp, _ := crashFixture()
	key := crashRunKey()
	shard := filepath.Join(img, "partials", key, "shard-0.json")
	whole, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	mutateEveryByte(t, shard, func(label string) {
		corrupt := new(expvar.Int)
		k := &checkpointer{dir: img, corrupt: corrupt}
		if got, ok := k.loadShard(key, 0); ok {
			if !reflect.DeepEqual(got, resp) {
				t.Fatalf("%s: corrupted partial loaded as %+v", label, got)
			}
			return // a no-op mutation (empty-range cut) may legitimately load
		}
		if corrupt.Value() != 1 {
			t.Fatalf("%s: rejected load counted %d corruptions, want 1", label, corrupt.Value())
		}
		if _, err := os.Stat(shard); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt partial not deleted (%v)", label, err)
		}
		// Self-heal: the next save must land and load cleanly.
		k.saveShard(key, 0, resp)
		if got, ok := k.loadShard(key, 0); !ok || !reflect.DeepEqual(got, resp) {
			t.Fatalf("%s: re-saved shard not served (%v)", label, ok)
		}
	})
	if err := os.WriteFile(shard, whole, 0o644); err != nil {
		t.Fatal(err)
	}

	// The plan loader has the same contract, without deletion: a corrupt
	// plan is counted and ignored.
	planPath := filepath.Join(img, "partials", key, "plan.json")
	mutateEveryByte(t, planPath, func(label string) {
		k := &checkpointer{dir: img, corrupt: new(expvar.Int)}
		want := *plan
		if got, ok := k.loadPlan(key, &want); ok && !reflect.DeepEqual(got, plan) {
			t.Fatalf("%s: corrupted plan adopted: %+v", label, got)
		}
	})
}

// TestCrashCacheRejectsCorruption mutates the sealed result-cache entry at
// every sampled byte: a restarted cache must never serve it — the poisoning
// is counted, the file deleted, and the entry recomputed from scratch.
func TestCrashCacheRejectsCorruption(t *testing.T) {
	img := seedDurableImage(t)
	base, _, _, entry := crashFixture()
	key := manifest.Key("sweep", base)
	path := filepath.Join(img, "cache", key+".json")
	mutateEveryByte(t, path, func(label string) {
		poison := new(expvar.Int)
		rc := newResultCache(img, nil, poison)
		if got := rc.loadSweep(key, base); got != nil {
			if !reflect.DeepEqual(got, entry) {
				t.Fatalf("%s: poisoned cache entry served: %+v", label, got)
			}
			return // no-op mutation
		}
		if poison.Value() > 1 {
			t.Fatalf("%s: %d poison counts for one load", label, poison.Value())
		}
		if _, err := os.Stat(path); err == nil && poison.Value() == 1 {
			t.Fatalf("%s: poisoned cache file not deleted", label)
		}
		// Self-heal: storing the entry again must serve cleanly.
		rc.storeSweep(key, entry)
		rc2 := newResultCache(img, nil, new(expvar.Int))
		if got := rc2.loadSweep(key, base); got == nil || !reflect.DeepEqual(got, entry) {
			t.Fatalf("%s: re-stored cache entry not served", label)
		}
	})
}

// TestCrashCoordinatorSweepsTempsOnOpen plants atomicio debris everywhere a
// coordinator writes, then builds one: New must sweep all of it.
func TestCrashCoordinatorSweepsTempsOnOpen(t *testing.T) {
	img := seedDurableImage(t)
	key := crashRunKey()
	debris := []string{
		filepath.Join(img, ".stray.tmp-1"),
		filepath.Join(img, "cache", ".entry.json.tmp-2"),
		filepath.Join(img, "partials", key, ".shard-0.json.tmp-3"),
	}
	for _, p := range debris {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c := New(Config{Dir: img})
	defer c.Close()
	for _, p := range debris {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("debris survived coordinator open: %s (%v)", p, err)
		}
	}
	// The swept directories still serve their real content.
	base, _, _, entry := crashFixture()
	rc := newResultCache(img, nil, new(expvar.Int))
	if got := rc.loadSweep(manifest.Key("sweep", base), base); got == nil || !reflect.DeepEqual(got, entry) {
		t.Errorf("cache entry lost in sweep")
	}
}
