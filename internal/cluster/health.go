package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"ibsim/internal/server/client"
)

// Per-worker health state. Every shard attempt feeds back into it: a
// success refreshes the EWMA latency (which sizes the adaptive hedge
// delay), a failure marks the worker down for a capped-backoff interval so
// repeated scatters stop hammering a dead process, and a typed
// ErrServerDraining answer parks the worker until a /readyz probe sees it
// healthy again.

// ewmaAlpha is the weight of the newest latency sample.
const ewmaAlpha = 0.2

type worker struct {
	idx  int
	addr string
	c    Caller

	mu        sync.Mutex
	ewma      time.Duration
	fails     int
	downUntil time.Time
	draining  bool
}

// usable reports whether the worker should receive new shard attempts now.
func (w *worker) usable(now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.draining && !now.Before(w.downUntil)
}

// observe feeds one attempt's outcome back into the health state. A
// context cancellation is the coordinator's own doing (a hedge race lost,
// a caller gone) and says nothing about the worker, so it is ignored.
func (w *worker) observe(d time.Duration, err error, backoffBase, backoffMax time.Duration) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err == nil {
		if w.ewma == 0 {
			w.ewma = d
		} else {
			w.ewma = time.Duration((1-ewmaAlpha)*float64(w.ewma) + ewmaAlpha*float64(d))
		}
		w.fails = 0
		w.draining = false
		w.downUntil = time.Time{}
		return
	}
	if errors.Is(err, client.ErrServerDraining) {
		// A draining server refuses work until it dies; only a clean
		// probe readmits it.
		w.draining = true
	}
	w.fails++
	backoff := backoffBase << (w.fails - 1)
	if backoff > backoffMax || backoff <= 0 {
		backoff = backoffMax
	}
	w.downUntil = time.Now().Add(backoff)
}

// probe hits /readyz and folds the answer into the health state. A clean
// probe clears a draining or down mark immediately (no waiting out the
// backoff window).
func (w *worker) probe(ctx context.Context, backoffBase, backoffMax time.Duration) error {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	start := time.Now()
	err := w.c.ReadyCheck(pctx)
	w.observe(time.Since(start), err, backoffBase, backoffMax)
	return err
}

// latency returns the smoothed latency estimate (0 before any sample).
func (w *worker) latency() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ewma
}

// WorkerStatus is one worker's health snapshot, for status displays.
type WorkerStatus struct {
	Addr       string  `json:"addr"`
	Healthy    bool    `json:"healthy"`
	Draining   bool    `json:"draining"`
	Fails      int     `json:"fails"`
	EWMAMillis float64 `json:"ewma_ms"`
}

func (w *worker) status(now time.Time) WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStatus{
		Addr:       w.addr,
		Healthy:    !w.draining && !now.Before(w.downUntil),
		Draining:   w.draining,
		Fails:      w.fails,
		EWMAMillis: float64(w.ewma) / float64(time.Millisecond),
	}
}
