package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ibsim/internal/manifest"
	"ibsim/internal/server"
)

// defaultInstructions mirrors the server's default trace length so the
// coordinator's cache keys match what workers actually simulate.
const defaultInstructions = 2_000_000

// localFallbackReason marks a merged answer that ran (partly) on the
// embedded single-process fallback instead of the worker pool.
const localFallbackReason = "cluster: executed on local fallback; no workers available"

// Sweep scatters one sweep grid across the worker pool and merges the
// partial miss matrices into the answer a single process would produce.
// Exact (non-sampled) results are served from and stored into the
// coalescing result cache; shard completions are checkpointed when the
// coordinator has a durable Dir.
func (c *Coordinator) Sweep(ctx context.Context, req server.SweepRequest) (*server.SweepResponse, error) {
	c.mRequests.Add(1)
	start := time.Now()
	if req.Workload == "" {
		return nil, errors.New("cluster: sweep: workload required")
	}
	if len(req.Cells) == 0 {
		return nil, errors.New("cluster: sweep: at least one cell required")
	}
	if req.Instructions <= 0 {
		req.Instructions = defaultInstructions
	}
	base := sweepBase{Workload: req.Workload, Seed: req.Seed, Instructions: req.Instructions, LineSize: req.LineSize}
	sampled := req.Sampling != nil

	// Sampled answers are estimates with their own CI bookkeeping; they
	// scatter and merge but never enter the exact-result cache. Cells are
	// not deduplicated here so the answer stays parallel to the request.
	if sampled {
		resp, err := c.sweepScatter(ctx, req, base, req.Cells, nil, "")
		if err != nil {
			return nil, err
		}
		resp.ElapsedSeconds = time.Since(start).Seconds()
		return resp, nil
	}

	key := manifest.Key("sweep", base)
	unlock := c.lockKey(key)
	defer unlock()

	entry := c.cache.loadSweep(key, base)
	need := missingCells(entry, req)
	if len(need) == 0 {
		c.mCacheHit.Add(1)
		resp := sweepFromEntry(entry, req)
		resp.ElapsedSeconds = time.Since(start).Seconds()
		return resp, nil
	}
	c.mCacheMiss.Add(1)

	runKey := manifest.Key("sweep-run", struct {
		Base          sweepBase         `json:"base"`
		CountDistinct bool              `json:"count_distinct"`
		Cells         []server.CellSpec `json:"cells"`
	}{base, req.CountDistinct, need})

	resp, err := c.sweepScatter(ctx, req, base, need, entry, runKey)
	if err != nil {
		return nil, err
	}
	resp.ElapsedSeconds = time.Since(start).Seconds()
	return resp, nil
}

// dedupCells drops repeated geometries, preserving first-seen order.
func dedupCells(cells []server.CellSpec) []server.CellSpec {
	seen := map[server.CellSpec]bool{}
	out := make([]server.CellSpec, 0, len(cells))
	for _, cs := range cells {
		if !seen[cs] {
			seen[cs] = true
			out = append(out, cs)
		}
	}
	return out
}

// missingCells returns the requested geometries the cache entry does not
// cover. A request that wants distinct-line counts an entry without them
// cannot be served from that entry, so everything is missing.
func missingCells(entry *sweepEntry, req server.SweepRequest) []server.CellSpec {
	cells := dedupCells(req.Cells)
	if entry == nil || (req.CountDistinct && !entry.HasDistinct) {
		return cells
	}
	var need []server.CellSpec
	for _, cs := range cells {
		if _, ok := entry.find(cs.Sets, cs.Assoc); !ok {
			need = append(need, cs)
		}
	}
	return need
}

// chunk splits n items into k contiguous index runs.
func chunk(n, k int) [][]int {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	out := make([][]int, 0, k)
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		out = append(out, idx)
	}
	return out
}

// sweepScatter shards need across the pool, gathers, and merges. For exact
// runs (runKey != "") completed shards are checkpointed and previously
// checkpointed shards are resumed; the merged union is folded into entry
// and cached unless any part degraded.
func (c *Coordinator) sweepScatter(ctx context.Context, req server.SweepRequest, base sweepBase,
	need []server.CellSpec, entry *sweepEntry, runKey string) (*server.SweepResponse, error) {

	live := c.liveWorkers(ctx)
	k := len(live)
	if k == 0 {
		k = 1
	}
	if k > c.cfg.MaxShards {
		k = c.cfg.MaxShards
	}
	shards := chunk(len(need), k)

	// Adopt a persisted plan from a previous (interrupted) run of this
	// exact work, so its checkpointed shards line up; otherwise persist
	// the fresh plan before scattering.
	wantPlan := &sweepPlan{Base: base, CountDistinct: req.CountDistinct, Cells: need, Shards: shards}
	if runKey != "" {
		if saved, ok := c.ckpt.loadPlan(runKey, wantPlan); ok {
			shards = saved.Shards
		} else {
			c.ckpt.savePlan(runKey, wantPlan)
		}
	}

	ringKey := workloadKey(base.Workload, base.Seed, base.Instructions)
	type shardOut struct {
		resp  *server.SweepResponse
		local bool
		err   error
	}
	outs := make([]shardOut, len(shards))
	var wg sync.WaitGroup
	for i, cellIdx := range shards {
		shardCells := make([]server.CellSpec, len(cellIdx))
		for j, ci := range cellIdx {
			shardCells[j] = need[ci]
		}
		shardReq := req
		shardReq.Cells = shardCells
		if resp, ok := c.ckpt.loadShard(runKey, i); ok && verifySweepShard(shardReq, resp) == nil {
			c.mResume.Add(1)
			outs[i] = shardOut{resp: resp}
			continue
		}
		wg.Add(1)
		go func(i int, shardReq server.SweepRequest) {
			defer wg.Done()
			resp, local, err := runShard(c, ctx, fmt.Sprintf("sweep shard %d/%d", i+1, len(shards)),
				c.rotation(ringKey, i),
				func(ctx context.Context, cl Caller) (*server.SweepResponse, error) {
					return cl.Sweep(ctx, shardReq)
				},
				func(resp *server.SweepResponse) error { return verifySweepShard(shardReq, resp) })
			if err == nil && runKey != "" && !resp.Degraded {
				c.ckpt.saveShard(runKey, i, resp)
			}
			outs[i] = shardOut{resp, local, err}
		}(i, shardReq)
	}
	wg.Wait()

	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("sweep shard %d/%d: %w", i+1, len(shards), o.err)
		}
	}

	// Cross-shard consistency: every partial simulated the same trace, so
	// the trace-global counters must agree exactly. A mismatch means a
	// worker is nondeterministic or mis-versioned — refuse to merge.
	first := outs[0].resp
	anyLocal := false
	for i, o := range outs {
		if o.resp.Accesses != first.Accesses {
			return nil, fmt.Errorf("cluster: sweep shards disagree on trace accesses (%d vs %d in shard %d); refusing to merge",
				first.Accesses, o.resp.Accesses, i+1)
		}
		if req.CountDistinct && o.resp.Distinct != first.Distinct {
			return nil, fmt.Errorf("cluster: sweep shards disagree on distinct lines (%d vs %d in shard %d); refusing to merge",
				first.Distinct, o.resp.Distinct, i+1)
		}
		anyLocal = anyLocal || o.local
	}

	if req.Sampling != nil {
		return mergeSampledSweep(req, shards, outs[0].resp, func(i int) *server.SweepResponse { return outs[i].resp }, anyLocal)
	}

	// Fold the fresh cells into the union entry and cache it, unless part
	// of the answer came from the degraded local path.
	if entry == nil {
		entry = &sweepEntry{Base: base}
	}
	entry.Accesses = first.Accesses
	if req.CountDistinct {
		entry.HasDistinct = true
		entry.Distinct = first.Distinct
	}
	for si, cellIdx := range shards {
		for j := range cellIdx {
			entry.add(outs[si].resp.Cells[j])
		}
	}
	if !anyLocal {
		c.cache.storeSweep(manifest.Key("sweep", base), entry)
	}
	c.ckpt.clear(runKey)

	resp := sweepFromEntry(entry, req)
	if anyLocal {
		resp.Degraded = true
		resp.DegradedReason = localFallbackReason
	}
	return resp, nil
}

// verifySweepShard vets one shard answer before it may win: right
// workload, full requested scale (a clamped or auto-sampled partial cannot
// merge with exact siblings), and cell-for-cell grid shape.
func verifySweepShard(req server.SweepRequest, resp *server.SweepResponse) error {
	switch {
	case resp == nil:
		return errors.New("nil response")
	case resp.Workload != req.Workload:
		return fmt.Errorf("answer for workload %q, want %q", resp.Workload, req.Workload)
	case resp.Instructions != req.Instructions:
		return fmt.Errorf("answer at clamped scale %d, want %d", resp.Instructions, req.Instructions)
	case (resp.Sampling != nil) != (req.Sampling != nil):
		return fmt.Errorf("sampling fidelity mismatch (got sampled=%v)", resp.Sampling != nil)
	case req.Sampling == nil && resp.Degraded:
		return fmt.Errorf("degraded partial (%s)", resp.DegradedReason)
	case len(resp.Cells) != len(req.Cells):
		return fmt.Errorf("%d cells in answer, want %d", len(resp.Cells), len(req.Cells))
	}
	for i, cs := range req.Cells {
		if resp.Cells[i].Sets != cs.Sets || resp.Cells[i].Assoc != cs.Assoc {
			return fmt.Errorf("cell %d is %dx%d, want %dx%d", i,
				resp.Cells[i].Sets, resp.Cells[i].Assoc, cs.Sets, cs.Assoc)
		}
	}
	return nil
}

// sweepFromEntry builds the response for req from a union entry that
// covers it, cells in request order.
func sweepFromEntry(entry *sweepEntry, req server.SweepRequest) *server.SweepResponse {
	resp := &server.SweepResponse{
		Workload:     entry.Base.Workload,
		Seed:         entry.Base.Seed,
		Instructions: entry.Base.Instructions,
		LineSize:     entry.Base.LineSize,
		Accesses:     entry.Accesses,
	}
	if req.CountDistinct {
		resp.Distinct = entry.Distinct
	}
	for _, cs := range req.Cells {
		cell, ok := entry.find(cs.Sets, cs.Assoc)
		if !ok {
			// Unreachable by construction (callers only build responses
			// from covering entries); fail loud rather than fabricate.
			panic(fmt.Sprintf("cluster: entry missing cell %dx%d", cs.Sets, cs.Assoc))
		}
		resp.Cells = append(resp.Cells, cell)
	}
	return resp
}

// mergeSampledSweep concatenates sampled shard answers. Shards are
// contiguous chunks of the deduplicated request cells, so concatenation
// restores request order; the aggregate CI is the cell-count-weighted mean
// of the shard CIs.
func mergeSampledSweep(req server.SweepRequest, shards [][]int, first *server.SweepResponse,
	shardResp func(int) *server.SweepResponse, anyLocal bool) (*server.SweepResponse, error) {

	resp := &server.SweepResponse{
		Workload:     first.Workload,
		Seed:         first.Seed,
		Instructions: first.Instructions,
		LineSize:     first.LineSize,
		Accesses:     first.Accesses,
		Distinct:     first.Distinct,
		Degraded:     anyLocal,
	}
	if anyLocal {
		resp.DegradedReason = localFallbackReason
	}
	var ciSum float64
	var cells int
	for i := range shards {
		sr := shardResp(i)
		if sr.Sampling == nil {
			return nil, fmt.Errorf("cluster: sampled shard %d returned no sampling info", i+1)
		}
		resp.Cells = append(resp.Cells, sr.Cells...)
		ciSum += sr.Sampling.CI95 * float64(len(sr.Cells))
		cells += len(sr.Cells)
		if resp.Sampling == nil {
			info := *sr.Sampling
			resp.Sampling = &info
		}
	}
	if resp.Sampling != nil && cells > 0 {
		resp.Sampling.CI95 = ciSum / float64(cells)
	}
	return resp, nil
}
