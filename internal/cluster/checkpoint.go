package cluster

import (
	"encoding/json"
	"expvar"
	"os"
	"path/filepath"
	"strconv"

	"ibsim/internal/atomicio"
	"ibsim/internal/crashfs"
	"ibsim/internal/manifest"
	"ibsim/internal/server"
)

// Shard checkpointing: while a sweep is in flight, every completed shard's
// partial miss matrix is sealed and written atomically under
// dir/partials/<runKey>/, alongside the shard plan itself. A coordinator
// that crashes and restarts mid-sweep re-derives the same runKey (it is
// content-addressed from the base and the missing cells), adopts the
// persisted plan, and re-scatters only the shards without a verified
// partial. A corrupt partial — torn write, flipped bit — fails its seal or
// its shape check and is recomputed, never merged.

// sweepPlan is the persisted shard split of one sweep run.
type sweepPlan struct {
	Base          sweepBase         `json:"base"`
	CountDistinct bool              `json:"count_distinct"`
	Cells         []server.CellSpec `json:"cells"`  // the cells being computed
	Shards        [][]int           `json:"shards"` // per-shard indices into Cells
}

type checkpointer struct {
	dir     string     // "" disables checkpointing; all methods become no-ops
	fsys    crashfs.FS // nil = the real OS; the torture harness injects a Sim
	corrupt *expvar.Int
}

func (k *checkpointer) fs() crashfs.FS {
	if k.fsys == nil {
		return crashfs.OS()
	}
	return k.fsys
}

func (k *checkpointer) runDir(runKey string) string {
	return filepath.Join(k.dir, "partials", runKey)
}

// loadPlan returns the persisted plan for runKey if one exists and matches
// the run identity (base + cells); a stale or corrupt plan is discarded.
func (k *checkpointer) loadPlan(runKey string, want *sweepPlan) (*sweepPlan, bool) {
	if k.dir == "" {
		return nil, false
	}
	raw, err := k.fs().ReadFile(filepath.Join(k.runDir(runKey), "plan.json"))
	if err != nil {
		return nil, false
	}
	payload, err := manifest.Unseal(raw)
	if err != nil {
		k.corrupt.Add(1)
		return nil, false
	}
	var p sweepPlan
	if json.Unmarshal(payload, &p) != nil ||
		p.Base != want.Base || p.CountDistinct != want.CountDistinct || !sameCells(p.Cells, want.Cells) {
		return nil, false
	}
	return &p, true
}

func sameCells(a, b []server.CellSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// savePlan persists the shard split before scattering.
func (k *checkpointer) savePlan(runKey string, p *sweepPlan) {
	if k.dir == "" {
		return
	}
	if err := k.fs().MkdirAll(k.runDir(runKey), 0o755); err != nil {
		return
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return
	}
	atomicio.WriteFileFS(k.fs(), filepath.Join(k.runDir(runKey), "plan.json"), manifest.Seal(payload), 0o644)
}

func (k *checkpointer) shardPath(runKey string, i int) string {
	return filepath.Join(k.runDir(runKey), "shard-"+strconv.Itoa(i)+".json")
}

// loadShard returns shard i's checkpointed partial if its seal verifies; a
// broken seal counts as corruption, deletes the file, and forces recompute.
func (k *checkpointer) loadShard(runKey string, i int) (*server.SweepResponse, bool) {
	if k.dir == "" {
		return nil, false
	}
	raw, err := k.fs().ReadFile(k.shardPath(runKey, i))
	if err != nil {
		return nil, false
	}
	payload, err := manifest.Unseal(raw)
	var resp server.SweepResponse
	if err == nil {
		err = json.Unmarshal(payload, &resp)
	}
	if err != nil {
		k.corrupt.Add(1)
		k.fs().Remove(k.shardPath(runKey, i))
		return nil, false
	}
	return &resp, true
}

// saveShard checkpoints one completed shard.
func (k *checkpointer) saveShard(runKey string, i int, resp *server.SweepResponse) {
	if k.dir == "" {
		return
	}
	if err := k.fs().MkdirAll(k.runDir(runKey), 0o755); err != nil {
		return
	}
	payload, err := json.Marshal(resp)
	if err != nil {
		return
	}
	atomicio.WriteFileFS(k.fs(), k.shardPath(runKey, i), manifest.Seal(payload), 0o644)
}

// clear removes a finished run's checkpoint directory. This is cleanup, not
// a crash surface: partials are individually sealed and verified on load, so
// a partially cleared directory recovers exactly like an uncleared one.
func (k *checkpointer) clear(runKey string) {
	if k.dir == "" {
		return
	}
	os.RemoveAll(k.runDir(runKey))
}
