// Package cluster is the scatter-gather coordinator that scales the
// ibsimd simulation service horizontally: one coordinator consistent-hashes
// sweep-grid shards and replay engine banks across N worker processes,
// gathers the partial miss matrices, and merges them into the exact answer
// a single process would have produced — per-cell sweep counts and
// per-engine replay results are independent, so the merge is deterministic
// and bit-identical to local execution.
//
// Placement is a consistent-hash ring over the worker addresses keyed on
// the workload identity (profile, seed, instructions): every shard of one
// workload walks the same ring order, so repeated sweeps of a workload land
// on the same workers and their memoized synth stores stay hot.
//
// Robustness is the design center, matching the server's own contract:
//
//   - Health: every shard attempt feeds a per-worker EWMA latency and
//     failure count; failing workers are marked down with capped backoff,
//     and /readyz probes (Probe, Run) readmit them. A worker that answers
//     with the typed client.ErrServerDraining is parked until a clean
//     probe, not retried against.
//   - Re-scatter: a failed shard moves to the next worker in its ring
//     order; only structural failures (bad-request, not-found) abort the
//     request, everything else fails over.
//   - Hedging: when a shard's attempt outlives the hedge delay (explicit,
//     or adaptive from the worker's EWMA), a duplicate attempt starts on
//     the next worker and the first answer wins.
//   - Checkpoints: each completed sweep shard is sealed
//     (internal/manifest) and written atomically (internal/atomicio) under
//     Dir/partials, so a restarted coordinator resumes a half-finished
//     sweep instead of recomputing it; corrupt partials are detected by
//     the seal and recomputed.
//   - Result cache: finished exact results are content-addressed with
//     manifest.Key and coalesced into superset entries (the union of all
//     cells / engines ever computed for a base), so overlapping grids are
//     served from cache without touching a worker.
//   - Degradation: when every worker is lost, the coordinator falls back
//     to a single-process embedded server on the loopback and marks the
//     answer Degraded — reduced redundancy, never a refusal.
//
// The coordinator exports its counters via an expvar.Map (Vars):
// cluster_requests_total, cluster_rescatter_total, cluster_cache_hit_total,
// cluster_cache_miss_total, cluster_hedge_total, plus
// cluster_shards_total, cluster_local_fallback_total,
// cluster_checkpoint_resume_total, cluster_checkpoint_corrupt_total and
// cluster_cache_poison_total.
package cluster

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"log"
	"net"
	"path/filepath"
	"sync"
	"time"

	"ibsim/internal/atomicio"
	"ibsim/internal/crashfs"
	"ibsim/internal/server"
	"ibsim/internal/server/client"
	"ibsim/internal/synth"
)

// Caller is the per-worker client surface the coordinator scatters through.
// *client.Client implements it; tests substitute fakes.
type Caller interface {
	Sweep(ctx context.Context, req server.SweepRequest) (*server.SweepResponse, error)
	Replay(ctx context.Context, req server.ReplayRequest) (*server.ReplayResponse, error)
	ReadyCheck(ctx context.Context) error
}

// Config parameterizes a Coordinator. The zero value (no workers) is
// usable: every request runs on the embedded local fallback.
type Config struct {
	// Workers are the ibsimd base URLs to scatter across.
	Workers []string
	// NewCaller builds the client for one worker base URL; nil uses the
	// retrying internal/server/client with its defaults. Tests inject
	// fakes here.
	NewCaller func(base string) Caller
	// Local overrides the all-workers-lost fallback path; nil lazily
	// starts an embedded in-process server on the loopback.
	Local Caller
	// DisableLocalFallback turns the fallback off: a request whose shards
	// exhaust every worker then fails instead of degrading.
	DisableLocalFallback bool
	// Dir is the durable root for the result cache and shard checkpoints;
	// "" keeps the cache in memory only and disables checkpointing.
	Dir string
	// FS routes every durable write under Dir through an explicit
	// filesystem; nil uses the real OS. The crash-consistency torture
	// harness injects a crashfs.Sim here to power-fail individual ops.
	FS crashfs.FS
	// MaxShards caps how many shards one request is split into (default:
	// the worker count).
	MaxShards int
	// HedgeAfter is the straggler hedge delay: 0 adapts to the target
	// worker's EWMA latency, negative disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is Run's health-probe period (default 2s).
	ProbeInterval time.Duration
	// BackoffBase and BackoffMax bound the capped exponential down-marking
	// of a failing worker (defaults 250ms / 15s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Store supplies the embedded fallback server's traces; nil uses
	// synth.DefaultStore.
	Store *synth.Store
	// Log receives operational messages; nil discards them.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.NewCaller == nil {
		c.NewCaller = func(base string) Caller { return client.New(base) }
	}
	if c.MaxShards <= 0 {
		c.MaxShards = len(c.Workers)
		if c.MaxShards == 0 {
			c.MaxShards = 1
		}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 15 * time.Second
	}
	if c.Log == nil {
		c.Log = log.New(nilWriter{}, "", 0)
	}
	return c
}

type nilWriter struct{}

func (nilWriter) Write(p []byte) (int, error) { return len(p), nil }

// fsOr returns fsys, or the real OS when nil.
func fsOr(fsys crashfs.FS) crashfs.FS {
	if fsys == nil {
		return crashfs.OS()
	}
	return fsys
}

// sweepDurableRoot removes atomicio temp debris from every directory a
// coordinator writes into under root — the root itself, the result cache,
// and each run's partials directory — so a crashed predecessor's in-flight
// temp files never accumulate and can never shadow a later write. Best
// effort: a sweep failure must not stop a coordinator from starting.
func sweepDurableRoot(fsys crashfs.FS, root string) {
	atomicio.SweepTempsFS(fsys, root)
	atomicio.SweepTempsFS(fsys, filepath.Join(root, "cache"))
	partials := filepath.Join(root, "partials")
	entries, err := fsys.ReadDir(partials)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			atomicio.SweepTempsFS(fsys, filepath.Join(partials, e.Name()))
		}
	}
}

// Coordinator scatters sweep and replay requests across the worker pool.
type Coordinator struct {
	cfg     Config
	workers []*worker
	ring    *ring
	cache   *resultCache
	ckpt    *checkpointer

	keyLocks sync.Map // base key -> *sync.Mutex

	localOnce sync.Once
	local     Caller
	localErr  error
	localStop context.CancelFunc
	localDone chan struct{}

	vars *expvar.Map
	mRequests, mRescatter, mCacheHit, mCacheMiss, mHedge,
	mShards, mLocal, mResume, mCorrupt, mPoison *expvar.Int
}

// New builds a Coordinator over cfg.Workers.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg, ring: newRing(cfg.Workers), vars: new(expvar.Map).Init()}
	counter := func(name string) *expvar.Int {
		v := new(expvar.Int)
		c.vars.Set(name, v)
		return v
	}
	c.mRequests = counter("cluster_requests_total")
	c.mRescatter = counter("cluster_rescatter_total")
	c.mCacheHit = counter("cluster_cache_hit_total")
	c.mCacheMiss = counter("cluster_cache_miss_total")
	c.mHedge = counter("cluster_hedge_total")
	c.mShards = counter("cluster_shards_total")
	c.mLocal = counter("cluster_local_fallback_total")
	c.mResume = counter("cluster_checkpoint_resume_total")
	c.mCorrupt = counter("cluster_checkpoint_corrupt_total")
	c.mPoison = counter("cluster_cache_poison_total")
	c.cache = newResultCache(cfg.Dir, cfg.FS, c.mPoison)
	c.ckpt = &checkpointer{dir: cfg.Dir, fsys: cfg.FS, corrupt: c.mCorrupt}
	if cfg.Dir != "" {
		sweepDurableRoot(fsOr(cfg.FS), cfg.Dir)
	}
	for i, addr := range cfg.Workers {
		c.workers = append(c.workers, &worker{idx: i, addr: addr, c: cfg.NewCaller(addr)})
	}
	return c
}

// Close stops the embedded fallback server, if one was started.
func (c *Coordinator) Close() {
	if c.localStop != nil {
		c.localStop()
		<-c.localDone
	}
}

// Vars exposes the coordinator's expvar counters for publishing.
func (c *Coordinator) Vars() *expvar.Map { return c.vars }

// Metric returns one counter's current value (0 for unknown names).
func (c *Coordinator) Metric(name string) int64 {
	if v, ok := c.vars.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// Status snapshots every worker's health.
func (c *Coordinator) Status() []WorkerStatus {
	now := time.Now()
	out := make([]WorkerStatus, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.status(now)
	}
	return out
}

// Probe health-checks every worker once, in parallel.
func (c *Coordinator) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.probe(ctx, c.cfg.BackoffBase, c.cfg.BackoffMax)
		}(w)
	}
	wg.Wait()
}

// Run probes the pool every ProbeInterval until ctx ends — the background
// health loop a long-lived coordinator process runs.
func (c *Coordinator) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Probe(ctx)
		}
	}
}

// lockKey serializes work per cache base key, so two identical concurrent
// requests cost one scatter (the second finds the cache warm). Lock
// objects are retained per distinct key; a coordinator serves a bounded
// parameter space, so this does not grow unboundedly in practice.
func (c *Coordinator) lockKey(key string) func() {
	v, _ := c.keyLocks.LoadOrStore(key, &sync.Mutex{})
	mu := v.(*sync.Mutex)
	mu.Lock()
	return mu.Unlock
}

// liveWorkers returns the usable workers, probing the pool once if every
// worker is currently marked down (they may have recovered).
func (c *Coordinator) liveWorkers(ctx context.Context) []*worker {
	pick := func() []*worker {
		now := time.Now()
		var live []*worker
		for _, w := range c.workers {
			if w.usable(now) {
				live = append(live, w)
			}
		}
		return live
	}
	live := pick()
	if len(live) == 0 && len(c.workers) > 0 {
		c.Probe(ctx)
		live = pick()
	}
	return live
}

// localCaller lazily builds the all-workers-lost fallback: an embedded
// in-process server on a loopback listener, reached through the same
// client path as a remote worker.
func (c *Coordinator) localCaller() (Caller, error) {
	c.localOnce.Do(func() {
		if c.cfg.Local != nil {
			c.local = c.cfg.Local
			return
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.localErr = fmt.Errorf("cluster: local fallback listener: %w", err)
			return
		}
		srv := server.New(server.Config{Store: c.cfg.Store, Log: c.cfg.Log})
		ctx, cancel := context.WithCancel(context.Background())
		c.localStop = cancel
		c.localDone = make(chan struct{})
		go func() {
			defer close(c.localDone)
			srv.Run(ctx, ln)
		}()
		for i := 0; i < 200 && !srv.Ready(); i++ {
			time.Sleep(5 * time.Millisecond)
		}
		c.cfg.Log.Printf("cluster: started local fallback server on %s", ln.Addr())
		c.local = c.cfg.NewCaller("http://" + ln.Addr().String())
	})
	return c.local, c.localErr
}

// rotation returns the shard's worker preference order: the ring walk for
// the workload key, rotated by the shard index so concurrent shards of one
// request start on distinct workers while failover still follows the ring.
func (c *Coordinator) rotation(ringKey uint64, shard int) []*worker {
	order := c.ring.order(ringKey)
	pref := make([]*worker, 0, len(order))
	for i := range order {
		pref = append(pref, c.workers[order[(shard+i)%len(order)]])
	}
	return pref
}

// errNoWorkers reports a scatter with no reachable worker and no fallback.
var errNoWorkers = errors.New("cluster: no usable workers")

// permanent reports failures that re-scattering cannot fix: the request
// itself is structurally wrong, so every worker would refuse it the same
// way.
func permanent(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Detail.Kind {
		case "bad-request", "not-found":
			return true
		}
	}
	return false
}

// hedgeDelay sizes the straggler hedge for an attempt against w: the
// configured floor, or 4x the worker's smoothed latency when adapting.
func (c *Coordinator) hedgeDelay(w *worker) time.Duration {
	if c.cfg.HedgeAfter < 0 {
		return time.Hour // effectively disabled
	}
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	if l := w.latency(); l > 0 {
		d := 4 * l
		if d < 200*time.Millisecond {
			d = 200 * time.Millisecond
		}
		return d
	}
	return 500 * time.Millisecond
}

type attempt[T any] struct {
	resp T
	err  error
}

// runShard executes one shard: try the preference-ordered workers,
// re-scattering on failure, hedging the straggler, and — when every worker
// is exhausted — degrading to the local fallback. accept vets a response
// before it wins (shape, scale, fidelity); a rejected response counts as a
// failed attempt.
func runShard[T any](c *Coordinator, ctx context.Context, what string, pref []*worker,
	call func(context.Context, Caller) (T, error), accept func(T) error) (resp T, usedLocal bool, err error) {

	var zero T
	c.mShards.Add(1)
	resp, err = runShardRemote(c, ctx, pref, call, accept)
	if err == nil {
		return resp, false, nil
	}
	if permanent(err) || ctx.Err() != nil || c.cfg.DisableLocalFallback {
		return zero, false, fmt.Errorf("cluster: %s: %w", what, err)
	}
	lc, lerr := c.localCaller()
	if lerr != nil {
		return zero, false, fmt.Errorf("cluster: %s: %w (local fallback unavailable: %v)", what, err, lerr)
	}
	c.mLocal.Add(1)
	c.cfg.Log.Printf("cluster: %s: all workers failed (%v); degrading to local execution", what, err)
	resp, lerr = call(ctx, lc)
	if lerr == nil {
		lerr = accept(resp)
	}
	if lerr != nil {
		return zero, false, fmt.Errorf("cluster: %s failed on all workers (%v) and locally: %w", what, err, lerr)
	}
	return resp, true, nil
}

// runShardRemote is the scatter engine proper: launch on the home worker,
// hedge onto the next when the attempt outlives the hedge delay,
// re-scatter on failure, first accepted answer wins. Worker health is fed
// on every outcome; losing hedge attempts are cancelled and do not count
// against their worker.
func runShardRemote[T any](c *Coordinator, ctx context.Context, pref []*worker,
	call func(context.Context, Caller) (T, error), accept func(T) error) (T, error) {

	var zero T
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attempt[T], len(pref))
	next, inflight := 0, 0
	var lastWorker *worker
	launch := func(hedge bool) bool {
		for next < len(pref) {
			w := pref[next]
			next++
			if !w.usable(time.Now()) {
				continue
			}
			if hedge {
				c.mHedge.Add(1)
			}
			inflight++
			lastWorker = w
			go func() {
				start := time.Now()
				resp, err := call(actx, w.c)
				w.observe(time.Since(start), err, c.cfg.BackoffBase, c.cfg.BackoffMax)
				results <- attempt[T]{resp, err}
			}()
			return true
		}
		return false
	}
	if !launch(false) {
		return zero, errNoWorkers
	}
	hedgeTimer := time.NewTimer(c.hedgeDelay(lastWorker))
	defer hedgeTimer.Stop()
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-hedgeTimer.C:
			launch(true)
		case a := <-results:
			inflight--
			if a.err == nil {
				if aerr := accept(a.resp); aerr != nil {
					a.err = aerr
				} else {
					return a.resp, nil
				}
			}
			lastErr = a.err
			if permanent(a.err) {
				return zero, a.err
			}
			if launch(false) {
				c.mRescatter.Add(1)
			} else if inflight == 0 {
				return zero, fmt.Errorf("all workers exhausted: %w", lastErr)
			}
		}
	}
}
