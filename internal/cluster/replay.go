package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ibsim/internal/manifest"
	"ibsim/internal/server"
)

// Replay scatters one replay bank across the worker pool: the engine list
// is sharded into contiguous chunks (engines of a bank are simulated
// independently, so per-engine results compose exactly), gathered, and
// merged in request order. Exact results coalesce into the same
// content-addressed cache as sweeps, keyed per engine spec, so a bank that
// overlaps previously computed engines only scatters the new ones. Replay
// runs are not checkpointed: banks are small next to sweep grids, and a
// restarted coordinator simply recomputes the missing engines.
func (c *Coordinator) Replay(ctx context.Context, req server.ReplayRequest) (*server.ReplayResponse, error) {
	c.mRequests.Add(1)
	start := time.Now()
	if req.Workload == "" {
		return nil, errors.New("cluster: replay: workload required")
	}
	if len(req.Engines) == 0 {
		return nil, errors.New("cluster: replay: at least one engine required")
	}
	if req.Instructions <= 0 {
		req.Instructions = defaultInstructions
	}
	base := replayBase{Workload: req.Workload, Seed: req.Seed, Instructions: req.Instructions}

	if req.Sampling != nil {
		return c.replayScatter(ctx, req, base, req.Engines, nil, start)
	}

	key := manifest.Key("replay", base)
	unlock := c.lockKey(key)
	defer unlock()

	entry := c.cache.loadReplay(key, base)
	need := missingEngines(entry, req.Engines)
	if len(need) == 0 {
		c.mCacheHit.Add(1)
		resp := replayFromEntry(entry, req)
		resp.ElapsedSeconds = time.Since(start).Seconds()
		return resp, nil
	}
	c.mCacheMiss.Add(1)
	return c.replayScatter(ctx, req, base, need, entry, start)
}

// missingEngines returns the distinct engine specs the entry does not
// cover.
func missingEngines(entry *replayEntry, engines []server.EngineSpec) []server.EngineSpec {
	seen := map[string]bool{}
	var need []server.EngineSpec
	for _, spec := range engines {
		k := specKey(spec)
		if seen[k] {
			continue
		}
		seen[k] = true
		if entry != nil {
			if _, ok := entry.find(spec); ok {
				continue
			}
		}
		need = append(need, spec)
	}
	return need
}

// replayScatter shards need across the pool and merges the partial banks.
func (c *Coordinator) replayScatter(ctx context.Context, req server.ReplayRequest, base replayBase,
	need []server.EngineSpec, entry *replayEntry, start time.Time) (*server.ReplayResponse, error) {

	sampled := req.Sampling != nil
	live := c.liveWorkers(ctx)
	k := len(live)
	if k == 0 {
		k = 1
	}
	if k > c.cfg.MaxShards {
		k = c.cfg.MaxShards
	}
	shards := chunk(len(need), k)
	ringKey := workloadKey(base.Workload, base.Seed, base.Instructions)

	type shardOut struct {
		resp  *server.ReplayResponse
		local bool
		err   error
	}
	outs := make([]shardOut, len(shards))
	var wg sync.WaitGroup
	for i, engIdx := range shards {
		engines := make([]server.EngineSpec, len(engIdx))
		for j, ei := range engIdx {
			engines[j] = need[ei]
		}
		shardReq := req
		shardReq.Engines = engines
		wg.Add(1)
		go func(i int, shardReq server.ReplayRequest) {
			defer wg.Done()
			resp, local, err := runShard(c, ctx, fmt.Sprintf("replay shard %d/%d", i+1, len(shards)),
				c.rotation(ringKey, i),
				func(ctx context.Context, cl Caller) (*server.ReplayResponse, error) {
					return cl.Replay(ctx, shardReq)
				},
				func(resp *server.ReplayResponse) error { return verifyReplayShard(shardReq, resp) })
			outs[i] = shardOut{resp, local, err}
		}(i, shardReq)
	}
	wg.Wait()

	anyLocal := false
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("replay shard %d/%d: %w", i+1, len(shards), o.err)
		}
		anyLocal = anyLocal || o.local
	}

	if sampled {
		resp := &server.ReplayResponse{
			Workload:     req.Workload,
			Seed:         outs[0].resp.Seed,
			Instructions: req.Instructions,
			Degraded:     anyLocal,
		}
		if anyLocal {
			resp.DegradedReason = localFallbackReason
		}
		for _, o := range outs {
			resp.Results = append(resp.Results, o.resp.Results...)
			if resp.Sampling == nil && o.resp.Sampling != nil {
				info := *o.resp.Sampling
				resp.Sampling = &info
			}
		}
		resp.ElapsedSeconds = time.Since(start).Seconds()
		return resp, nil
	}

	if entry == nil {
		entry = &replayEntry{Base: base}
	}
	for si, engIdx := range shards {
		for j, ei := range engIdx {
			entry.add(need[ei], outs[si].resp.Results[j])
		}
	}
	if !anyLocal {
		c.cache.storeReplay(manifest.Key("replay", base), entry)
	}
	resp := replayFromEntry(entry, req)
	if anyLocal {
		resp.Degraded = true
		resp.DegradedReason = localFallbackReason
	}
	resp.ElapsedSeconds = time.Since(start).Seconds()
	return resp, nil
}

// verifyReplayShard vets one shard answer: full requested scale, matching
// fidelity, and a result per engine.
func verifyReplayShard(req server.ReplayRequest, resp *server.ReplayResponse) error {
	switch {
	case resp == nil:
		return errors.New("nil response")
	case resp.Workload != req.Workload:
		return fmt.Errorf("answer for workload %q, want %q", resp.Workload, req.Workload)
	case resp.Instructions != req.Instructions:
		return fmt.Errorf("answer at clamped scale %d, want %d", resp.Instructions, req.Instructions)
	case (resp.Sampling != nil) != (req.Sampling != nil):
		return fmt.Errorf("sampling fidelity mismatch (got sampled=%v)", resp.Sampling != nil)
	case req.Sampling == nil && resp.Degraded:
		return fmt.Errorf("degraded partial (%s)", resp.DegradedReason)
	case len(resp.Results) != len(req.Engines):
		return fmt.Errorf("%d results in answer, want %d", len(resp.Results), len(req.Engines))
	}
	return nil
}

// replayFromEntry builds the response for req from a union entry that
// covers it, results in request engine order.
func replayFromEntry(entry *replayEntry, req server.ReplayRequest) *server.ReplayResponse {
	resp := &server.ReplayResponse{
		Workload:     entry.Base.Workload,
		Seed:         entry.Base.Seed,
		Instructions: entry.Base.Instructions,
	}
	for _, spec := range req.Engines {
		r, ok := entry.find(spec)
		if !ok {
			panic(fmt.Sprintf("cluster: entry missing engine %s", specKey(spec)))
		}
		resp.Results = append(resp.Results, r)
	}
	return resp
}
