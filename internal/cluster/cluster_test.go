package cluster

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ibsim/internal/server"
	"ibsim/internal/server/client"
)

// The unit suite drives the coordinator against fake workers whose answers
// follow a closed-form formula, so sharding, merging, caching, failover,
// hedging, checkpoint resume, and corruption handling are all asserted
// against exact expected values without running simulations. The live
// end-to-end path (real ibsimd workers over HTTP) is covered by the
// chaos/cluster-* scenarios in internal/check and the make cluster smoke.

func fakeMisses(cs server.CellSpec) int64 { return int64(cs.Sets*31 + cs.Assoc*7) }

func fakeSweepResp(req server.SweepRequest) *server.SweepResponse {
	resp := &server.SweepResponse{
		Workload:     req.Workload,
		Seed:         req.Seed,
		Instructions: req.Instructions,
		LineSize:     req.LineSize,
		Accesses:     req.Instructions / 2,
	}
	if req.CountDistinct {
		resp.Distinct = req.Instructions / 100
	}
	for _, cs := range req.Cells {
		resp.Cells = append(resp.Cells, server.CellResult{
			Sets: cs.Sets, Assoc: cs.Assoc, SizeBytes: cs.Sets * cs.Assoc * req.LineSize,
			Misses: fakeMisses(cs),
		})
	}
	if req.Sampling != nil {
		resp.Sampling = &server.SamplingInfo{Mode: "time", Coverage: 0.25, CI95: 0.001,
			MeasuredInstructions: req.Instructions / 4}
	}
	return resp
}

func fakeEngineResult(spec server.EngineSpec, n int64) server.EngineResult {
	return server.EngineResult{
		Instructions: n,
		Misses:       int64(spec.Size/64 + spec.Assoc),
		StallCycles:  int64(spec.Size / 8),
		CPI:          1.5,
		MPI:          float64(spec.Assoc) / 100,
	}
}

// fakeCaller is one scripted worker.
type fakeCaller struct {
	name  string
	delay time.Duration

	mu      sync.Mutex
	sweeps  []server.SweepRequest
	replays []server.ReplayRequest

	sweepErr  func(req server.SweepRequest) error
	replayErr func(req server.ReplayRequest) error
	readyErr  error
}

func (f *fakeCaller) wait(ctx context.Context) error {
	if f.delay <= 0 {
		return nil
	}
	select {
	case <-time.After(f.delay):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f *fakeCaller) Sweep(ctx context.Context, req server.SweepRequest) (*server.SweepResponse, error) {
	f.mu.Lock()
	f.sweeps = append(f.sweeps, req)
	f.mu.Unlock()
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	if f.sweepErr != nil {
		if err := f.sweepErr(req); err != nil {
			return nil, err
		}
	}
	return fakeSweepResp(req), nil
}

func (f *fakeCaller) Replay(ctx context.Context, req server.ReplayRequest) (*server.ReplayResponse, error) {
	f.mu.Lock()
	f.replays = append(f.replays, req)
	f.mu.Unlock()
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	if f.replayErr != nil {
		if err := f.replayErr(req); err != nil {
			return nil, err
		}
	}
	resp := &server.ReplayResponse{Workload: req.Workload, Seed: req.Seed, Instructions: req.Instructions}
	for _, spec := range req.Engines {
		resp.Results = append(resp.Results, fakeEngineResult(spec, req.Instructions))
	}
	if req.Sampling != nil {
		resp.Sampling = &server.SamplingInfo{Mode: "time", Coverage: 0.25, CI95: 0.002}
	}
	return resp, nil
}

func (f *fakeCaller) ReadyCheck(context.Context) error { return f.readyErr }

// sweptCells returns every cell the worker was ever asked to compute.
func (f *fakeCaller) sweptCells() []server.CellSpec {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []server.CellSpec
	for _, req := range f.sweeps {
		out = append(out, req.Cells...)
	}
	return out
}

// pool builds a coordinator over n fakes.
func pool(t *testing.T, n int, cfg Config) (*Coordinator, []*fakeCaller) {
	t.Helper()
	fakes := map[string]*fakeCaller{}
	var list []*fakeCaller
	for i := 0; i < n; i++ {
		name := "http://worker-" + string(rune('a'+i))
		f := &fakeCaller{name: name}
		fakes[name] = f
		list = append(list, f)
		cfg.Workers = append(cfg.Workers, name)
	}
	cfg.NewCaller = func(base string) Caller { return fakes[base] }
	if cfg.DisableLocalFallback && cfg.Local == nil {
		cfg.Local = &fakeCaller{name: "local"}
	}
	c := New(cfg)
	t.Cleanup(c.Close)
	return c, list
}

func grid() []server.CellSpec {
	return []server.CellSpec{
		{Sets: 64, Assoc: 1}, {Sets: 128, Assoc: 1}, {Sets: 256, Assoc: 2}, {Sets: 512, Assoc: 2},
		{Sets: 1024, Assoc: 4}, {Sets: 2048, Assoc: 1}, {Sets: 128, Assoc: 4}, {Sets: 64, Assoc: 8},
	}
}

func sweepReq() server.SweepRequest {
	return server.SweepRequest{Workload: "mpeg_play", Seed: 7, Instructions: 100_000,
		LineSize: 32, Cells: grid(), CountDistinct: true}
}

func checkSweepResp(t *testing.T, resp *server.SweepResponse, req server.SweepRequest) {
	t.Helper()
	if resp.Accesses != req.Instructions/2 {
		t.Errorf("accesses = %d, want %d", resp.Accesses, req.Instructions/2)
	}
	if req.CountDistinct && resp.Distinct != req.Instructions/100 {
		t.Errorf("distinct = %d, want %d", resp.Distinct, req.Instructions/100)
	}
	if len(resp.Cells) != len(req.Cells) {
		t.Fatalf("%d cells, want %d", len(resp.Cells), len(req.Cells))
	}
	for i, cs := range req.Cells {
		got := resp.Cells[i]
		if got.Sets != cs.Sets || got.Assoc != cs.Assoc || got.Misses != fakeMisses(cs) {
			t.Errorf("cell %d = %+v, want %dx%d misses %d", i, got, cs.Sets, cs.Assoc, fakeMisses(cs))
		}
	}
}

func TestSweepShardsAcrossWorkersAndMerges(t *testing.T) {
	c, fakes := pool(t, 3, Config{DisableLocalFallback: true})
	req := sweepReq()
	resp, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req)
	if resp.Degraded {
		t.Errorf("degraded answer from a healthy pool: %s", resp.DegradedReason)
	}
	busy := 0
	total := 0
	for _, f := range fakes {
		cells := f.sweptCells()
		total += len(cells)
		if len(cells) > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d workers received shards; sharding did not spread", busy)
	}
	if total != len(req.Cells) {
		t.Errorf("workers computed %d cells in total, want exactly %d (no duplication)", total, len(req.Cells))
	}
	if got := c.Metric("cluster_requests_total"); got != 1 {
		t.Errorf("cluster_requests_total = %d, want 1", got)
	}
	if got := c.Metric("cluster_cache_miss_total"); got != 1 {
		t.Errorf("cluster_cache_miss_total = %d, want 1", got)
	}
}

func TestSweepCacheHitAndSupersetCoalescing(t *testing.T) {
	c, fakes := pool(t, 2, Config{DisableLocalFallback: true})
	req := sweepReq()
	if _, err := c.Sweep(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	// A subset grid (different order) must be served wholly from cache.
	sub := req
	sub.Cells = []server.CellSpec{{Sets: 512, Assoc: 2}, {Sets: 64, Assoc: 1}}
	before := 0
	for _, f := range fakes {
		before += len(f.sweptCells())
	}
	resp, err := c.Sweep(context.Background(), sub)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, sub)
	after := 0
	for _, f := range fakes {
		after += len(f.sweptCells())
	}
	if after != before {
		t.Errorf("cache hit still touched workers: %d cells computed", after-before)
	}
	if got := c.Metric("cluster_cache_hit_total"); got != 1 {
		t.Errorf("cluster_cache_hit_total = %d, want 1", got)
	}

	// An overlapping grid scatters only its new cells and coalesces them
	// into the same entry.
	over := req
	over.Cells = []server.CellSpec{{Sets: 64, Assoc: 1}, {Sets: 4096, Assoc: 2}, {Sets: 256, Assoc: 2}}
	resp, err = c.Sweep(context.Background(), over)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, over)
	fresh := 0
	for _, f := range fakes {
		fresh += len(f.sweptCells())
	}
	if fresh-after != 1 {
		t.Errorf("overlap sweep computed %d cells, want only the 1 new one", fresh-after)
	}

	// The union entry now covers the overlap grid outright.
	if _, err := c.Sweep(context.Background(), over); err != nil {
		t.Fatal(err)
	}
	if got := c.Metric("cluster_cache_hit_total"); got != 2 {
		t.Errorf("cluster_cache_hit_total = %d, want 2", got)
	}
}

func TestSweepRescattersOffFailingWorker(t *testing.T) {
	c, fakes := pool(t, 3, Config{DisableLocalFallback: true})
	fakes[1].sweepErr = func(server.SweepRequest) error { return errors.New("connection reset") }
	req := sweepReq()
	resp, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req)
	if resp.Degraded {
		t.Error("failover answer must not be degraded; the pool still served it")
	}
	// The failing worker may or may not have been in the shard plan, but a
	// second sweep of a fresh grid must also succeed with it still broken.
	req2 := req
	req2.Seed = 99
	if resp, err = c.Sweep(context.Background(), req2); err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req2)
}

func TestDrainingWorkerFailsOverAndIsParked(t *testing.T) {
	c, fakes := pool(t, 2, Config{DisableLocalFallback: true})
	drainErr := &client.APIError{Detail: server.ErrorDetail{
		Status: 503, Kind: "draining", Message: "shutting down"}}
	fakes[0].sweepErr = func(server.SweepRequest) error { return drainErr }
	fakes[0].readyErr = drainErr
	req := sweepReq()
	resp, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req)
	// The draining worker must be parked: a fresh sweep goes entirely to
	// the healthy one.
	n0 := len(fakes[0].sweptCells())
	req2 := req
	req2.Seed = 123
	if _, err := c.Sweep(context.Background(), req2); err != nil {
		t.Fatal(err)
	}
	if got := len(fakes[0].sweptCells()); got != n0 {
		t.Errorf("parked draining worker received %d more cells", got-n0)
	}
	for _, st := range c.Status() {
		if st.Addr == "http://worker-a" && !st.Draining {
			t.Error("worker-a not marked draining in status")
		}
	}
}

func TestAllWorkersLostDegradesToLocal(t *testing.T) {
	local := &fakeCaller{name: "local"}
	c, fakes := pool(t, 2, Config{Local: local})
	for _, f := range fakes {
		f.sweepErr = func(server.SweepRequest) error { return errors.New("no route to host") }
	}
	req := sweepReq()
	resp, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req)
	if !resp.Degraded || !strings.Contains(resp.DegradedReason, "local fallback") {
		t.Errorf("local-fallback answer not marked degraded: %+v", resp)
	}
	if got := c.Metric("cluster_local_fallback_total"); got == 0 {
		t.Error("cluster_local_fallback_total = 0 after local execution")
	}
	// Degraded answers must not poison the cache: the same request later,
	// with workers healthy again, recomputes and serves clean.
	for _, f := range fakes {
		f.sweepErr = nil
	}
	time.Sleep(2 * time.Millisecond)
	resp, err = c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Error("healthy pool still answered degraded; local result was cached")
	}
}

func TestHedgeOutracesStraggler(t *testing.T) {
	c, fakes := pool(t, 2, Config{DisableLocalFallback: true, HedgeAfter: 25 * time.Millisecond})
	req := sweepReq()
	req.Cells = req.Cells[:1] // one cell -> one shard -> one home worker
	home := c.ring.order(workloadKey(req.Workload, req.Seed, req.Instructions))[0]
	fakes[home].delay = 2 * time.Second
	start := time.Now()
	resp, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req)
	if d := time.Since(start); d > time.Second {
		t.Errorf("hedge did not outrace the straggler: took %v", d)
	}
	if got := c.Metric("cluster_hedge_total"); got != 1 {
		t.Errorf("cluster_hedge_total = %d, want 1", got)
	}
	// The straggler lost a race, it did not fail: it must not be down.
	if st := c.Status()[home]; !st.Healthy {
		t.Errorf("hedged-over worker marked unhealthy: %+v", st)
	}
}

func TestCheckpointResumeSkipsFinishedShard(t *testing.T) {
	dir := t.TempDir()
	poison := server.CellSpec{Sets: 64, Assoc: 8} // in the last chunk of grid()
	hasPoison := func(req server.SweepRequest) error {
		for _, cs := range req.Cells {
			if cs == poison {
				time.Sleep(30 * time.Millisecond) // let sibling shards checkpoint first
				return errors.New("injected shard failure")
			}
		}
		return nil
	}

	c1, fakes1 := pool(t, 2, Config{Dir: dir, DisableLocalFallback: true, MaxShards: 2})
	for _, f := range fakes1 {
		f.sweepErr = hasPoison
	}
	c1.cfg.Local.(*fakeCaller).sweepErr = hasPoison
	req := sweepReq()
	if _, err := c1.Sweep(context.Background(), req); err == nil {
		t.Fatal("sweep succeeded although one shard fails everywhere")
	}
	partials, err := filepath.Glob(filepath.Join(dir, "partials", "*", "shard-*.json"))
	if err != nil || len(partials) == 0 {
		t.Fatalf("no checkpointed partials on disk (err=%v)", err)
	}

	// A restarted coordinator adopts the persisted plan, resumes the
	// checkpointed shard, and scatters only the failed one.
	c2, fakes2 := pool(t, 2, Config{Dir: dir, DisableLocalFallback: true, MaxShards: 2})
	resp, err := c2.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req)
	if got := c2.Metric("cluster_checkpoint_resume_total"); got == 0 {
		t.Error("cluster_checkpoint_resume_total = 0; resume did not engage")
	}
	for _, f := range fakes2 {
		for _, cs := range f.sweptCells() {
			found := false
			for _, pc := range grid()[4:] { // second chunk of 8 cells at k=2
				if cs == pc {
					found = true
				}
			}
			if !found {
				t.Errorf("resumed run recomputed already-checkpointed cell %+v", cs)
			}
		}
	}
	// The finished run's checkpoint directory is cleared.
	if left, _ := filepath.Glob(filepath.Join(dir, "partials", "*", "shard-*.json")); len(left) != 0 {
		t.Errorf("%d partials left after a completed run", len(left))
	}
}

func TestCorruptPartialIsRecomputed(t *testing.T) {
	dir := t.TempDir()
	poison := server.CellSpec{Sets: 64, Assoc: 8}
	hasPoison := func(req server.SweepRequest) error {
		for _, cs := range req.Cells {
			if cs == poison {
				time.Sleep(30 * time.Millisecond)
				return errors.New("injected shard failure")
			}
		}
		return nil
	}
	c1, fakes1 := pool(t, 2, Config{Dir: dir, DisableLocalFallback: true, MaxShards: 2})
	for _, f := range fakes1 {
		f.sweepErr = hasPoison
	}
	c1.cfg.Local.(*fakeCaller).sweepErr = hasPoison
	req := sweepReq()
	if _, err := c1.Sweep(context.Background(), req); err == nil {
		t.Fatal("sweep succeeded although one shard fails everywhere")
	}
	partials, _ := filepath.Glob(filepath.Join(dir, "partials", "*", "shard-*.json"))
	if len(partials) == 0 {
		t.Fatal("no checkpointed partials on disk")
	}
	raw, err := os.ReadFile(partials[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(partials[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, _ := pool(t, 2, Config{Dir: dir, DisableLocalFallback: true, MaxShards: 2})
	resp, err := c2.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req)
	if got := c2.Metric("cluster_checkpoint_corrupt_total"); got != 1 {
		t.Errorf("cluster_checkpoint_corrupt_total = %d, want 1", got)
	}
}

func TestPoisonedCacheEntryIsCaughtAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	c1, _ := pool(t, 2, Config{Dir: dir, DisableLocalFallback: true})
	req := sweepReq()
	if _, err := c1.Sweep(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "cache", "*.json"))
	if len(files) != 1 {
		t.Fatalf("%d cache files, want 1", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x08 // flip a payload bit; the seal digest no longer matches
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, fakes2 := pool(t, 2, Config{Dir: dir, DisableLocalFallback: true})
	resp, err := c2.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req)
	if got := c2.Metric("cluster_cache_poison_total"); got != 1 {
		t.Errorf("cluster_cache_poison_total = %d, want 1", got)
	}
	if got := c2.Metric("cluster_cache_miss_total"); got != 1 {
		t.Errorf("cluster_cache_miss_total = %d, want 1 (poisoned entry must not hit)", got)
	}
	touched := 0
	for _, f := range fakes2 {
		touched += len(f.sweptCells())
	}
	if touched != len(req.Cells) {
		t.Errorf("recompute covered %d cells, want %d", touched, len(req.Cells))
	}
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, _ := pool(t, 2, Config{Dir: dir, DisableLocalFallback: true})
	req := sweepReq()
	if _, err := c1.Sweep(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	c2, fakes2 := pool(t, 2, Config{Dir: dir, DisableLocalFallback: true})
	resp, err := c2.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepResp(t, resp, req)
	if got := c2.Metric("cluster_cache_hit_total"); got != 1 {
		t.Errorf("cluster_cache_hit_total = %d, want 1 after restart", got)
	}
	for _, f := range fakes2 {
		if len(f.sweptCells()) != 0 {
			t.Error("restarted coordinator touched workers despite a durable cache entry")
		}
	}
}

func TestReplayShardingCacheAndCoalescing(t *testing.T) {
	c, fakes := pool(t, 2, Config{DisableLocalFallback: true})
	link := server.LinkSpec{Name: "l1l2"}
	engines := []server.EngineSpec{
		{Size: 8192, LineSize: 32, Assoc: 1, Link: link},
		{Size: 16384, LineSize: 32, Assoc: 2, Link: link},
		{Size: 32768, LineSize: 64, Assoc: 2, Link: link, Kind: "bypass"},
		{Size: 16384, LineSize: 32, Assoc: 1, Link: link, Kind: "stream", Depth: 4},
	}
	req := server.ReplayRequest{Workload: "gcc", Seed: 3, Instructions: 50_000, Engines: engines}
	resp, err := c.Replay(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(engines) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(engines))
	}
	for i, spec := range engines {
		if resp.Results[i] != fakeEngineResult(spec, req.Instructions) {
			t.Errorf("engine %d = %+v, want %+v", i, resp.Results[i], fakeEngineResult(spec, req.Instructions))
		}
	}
	busy := 0
	for _, f := range fakes {
		f.mu.Lock()
		if len(f.replays) > 0 {
			busy++
		}
		f.mu.Unlock()
	}
	if busy != 2 {
		t.Errorf("replay bank spread over %d workers, want 2", busy)
	}

	// Identical bank: pure cache hit.
	if _, err := c.Replay(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := c.Metric("cluster_cache_hit_total"); got != 1 {
		t.Errorf("cluster_cache_hit_total = %d, want 1", got)
	}

	// Overlapping bank, reordered, one new engine: only the new engine is
	// scattered.
	count := func() int {
		n := 0
		for _, f := range fakes {
			f.mu.Lock()
			for _, r := range f.replays {
				n += len(r.Engines)
			}
			f.mu.Unlock()
		}
		return n
	}
	before := count()
	over := req
	over.Engines = []server.EngineSpec{engines[2], engines[0],
		{Size: 65536, LineSize: 64, Assoc: 4, Link: link}}
	resp, err = c.Replay(context.Background(), over)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0] != fakeEngineResult(engines[2], req.Instructions) {
		t.Error("reordered cached engine came back in the wrong slot")
	}
	if count()-before != 1 {
		t.Errorf("overlap replay computed %d engines, want 1", count()-before)
	}
}

func TestIssueMetricNamesExported(t *testing.T) {
	c, _ := pool(t, 1, Config{DisableLocalFallback: true})
	for _, name := range []string{
		"cluster_requests_total", "cluster_rescatter_total",
		"cluster_cache_hit_total", "cluster_cache_miss_total", "cluster_hedge_total",
	} {
		if c.Vars().Get(name) == nil {
			t.Errorf("expvar %s not exported", name)
		}
	}
}

func TestRingOrderStableAndComplete(t *testing.T) {
	addrs := []string{"http://a", "http://b", "http://c", "http://d"}
	r := newRing(addrs)
	key := workloadKey("mpeg_play", 7, 2_000_000)
	o1 := r.order(key)
	o2 := newRing(addrs).order(key)
	if len(o1) != len(addrs) {
		t.Fatalf("order covers %d workers, want %d", len(o1), len(addrs))
	}
	seen := map[int]bool{}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("ring order not deterministic: %v vs %v", o1, o2)
		}
		seen[o1[i]] = true
	}
	if len(seen) != len(addrs) {
		t.Fatalf("order repeats workers: %v", o1)
	}
	// Removing one worker must keep every key not homed on it in place.
	moved := 0
	const keys = 200
	for i := 0; i < keys; i++ {
		k := workloadKey("w", uint64(i), 1000)
		full := r.order(k)
		sub := newRing(addrs[:3]).order(k)
		if full[0] != 3 && sub[0] != full[0] {
			moved++
		}
	}
	if moved > keys/10 {
		t.Errorf("removing one worker moved %d/%d foreign keys; ring not consistent", moved, keys)
	}
}

func TestChunkPartitions(t *testing.T) {
	for _, tc := range []struct{ n, k, want int }{
		{8, 3, 3}, {2, 5, 2}, {1, 1, 1}, {7, 7, 7}, {10, 1, 1},
	} {
		got := chunk(tc.n, tc.k)
		if len(got) != tc.want {
			t.Errorf("chunk(%d,%d) = %d shards, want %d", tc.n, tc.k, len(got), tc.want)
		}
		i := 0
		for _, sh := range got {
			if len(sh) == 0 {
				t.Errorf("chunk(%d,%d) has an empty shard", tc.n, tc.k)
			}
			for _, v := range sh {
				if v != i {
					t.Fatalf("chunk(%d,%d) not contiguous: %v", tc.n, tc.k, got)
				}
				i++
			}
		}
		if i != tc.n {
			t.Errorf("chunk(%d,%d) covers %d items", tc.n, tc.k, i)
		}
	}
}

func TestSampledSweepScattersWithoutCaching(t *testing.T) {
	c, _ := pool(t, 2, Config{DisableLocalFallback: true})
	req := sweepReq()
	req.Sampling = &server.SamplingSpec{Window: 1000, Period: 4000}
	resp, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sampling == nil {
		t.Fatal("sampled sweep lost its sampling info in the merge")
	}
	if len(resp.Cells) != len(req.Cells) {
		t.Fatalf("%d cells, want %d", len(resp.Cells), len(req.Cells))
	}
	// Sampled estimates never hit the exact cache, in either direction.
	if got := c.Metric("cluster_cache_hit_total"); got != 0 {
		t.Errorf("cluster_cache_hit_total = %d, want 0", got)
	}
	exact := sweepReq()
	if _, err := c.Sweep(context.Background(), exact); err != nil {
		t.Fatal(err)
	}
	if got := c.Metric("cluster_cache_hit_total"); got != 0 {
		t.Errorf("exact sweep after sampled one hit the cache; fidelities must not mix")
	}
}
