package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q", got)
	}
}

func TestWriteFileLeavesNoTempResidue(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp residue: %s", e.Name())
		}
	}
}

// A failing producer must leave the old file intact and no temp behind.
func TestWriteToFailurePreservesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.txt")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("producer failed")
	err := WriteTo(path, 0o644, func(f *os.File) error {
		f.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want producer error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("old file damaged: %q, %v", got, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("%d entries in dir, want 1 (no temp residue)", len(entries))
	}
}

// The producer may seek (EncodeSeeker-style header patching).
func TestWriteToSeekableProducer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "patched.bin")
	err := WriteTo(path, 0o644, func(f *os.File) error {
		if _, err := f.Write([]byte("????body")); err != nil {
			return err
		}
		if _, err := f.Seek(0, 0); err != nil {
			return err
		}
		_, err := f.Write([]byte("HEAD"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "HEADbody" {
		t.Fatalf("content = %q", got)
	}
}
