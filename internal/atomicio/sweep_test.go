package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ibsim/internal/crashfs"
)

func TestIsTemp(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{".artifact.json.tmp-123456", true},
		{".trace.ibsc.tmp-42", true},
		{"artifact.json", false},
		{"trace-1.ibsc", false},
		{".hidden", false},
		{"a.tmp-1", false}, // no leading dot: not ours
		{"MANIFEST.json", false},
	}
	for _, c := range cases {
		if got := IsTemp(c.name); got != c.want {
			t.Errorf("IsTemp(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSweepTempsCrashDebris is the satellite contract: a temp file a crashed
// writer left behind is removed by the sweep, never shadows or corrupts the
// later write of the artifact it was staging, and published files are
// untouched.
func TestSweepTempsCrashDebris(t *testing.T) {
	dir := t.TempDir()
	published := filepath.Join(dir, "artifact.json")
	if err := WriteFile(published, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Produce REAL crash debris: power-fail an atomic replace right after
	// its fsync, materialize the Lost image (rename rolled back, synced temp
	// surviving as debris) and sweep that.
	sim := crashfs.NewSim(dir, 3) // create, write, sync, CLOSE ← crash
	err := WriteFileFS(sim, published, []byte("v2-never-lands"), 0o644)
	if !errors.Is(err, crashfs.ErrCrashed) {
		t.Fatalf("crashed write: err = %v, want ErrCrashed", err)
	}
	img := t.TempDir()
	if err := sim.Materialize(img, crashfs.Flushed); err != nil {
		t.Fatal(err)
	}

	var debris []string
	entries, err := os.ReadDir(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if IsTemp(e.Name()) {
			debris = append(debris, e.Name())
		}
	}
	if len(debris) == 0 {
		t.Fatal("crashed write left no temp debris; the fixture is broken")
	}

	n, err := SweepTemps(img)
	if err != nil {
		t.Fatalf("SweepTemps: %v", err)
	}
	if n != len(debris) {
		t.Fatalf("swept %d files, want %d (%v)", n, len(debris), debris)
	}
	// The published artifact from before the crash is untouched...
	got, err := os.ReadFile(filepath.Join(img, "artifact.json"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("published artifact after sweep = %q, %v; want v1 intact", got, err)
	}
	// ...and a post-recovery write lands cleanly with no debris left to
	// shadow or be confused for it.
	if err := WriteFile(filepath.Join(img, "artifact.json"), []byte("v3"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(filepath.Join(img, "artifact.json"))
	if string(got) != "v3" {
		t.Fatalf("post-recovery write = %q, want v3", got)
	}
	entries, _ = os.ReadDir(img)
	for _, e := range entries {
		if IsTemp(e.Name()) {
			t.Errorf("temp debris after recovery write: %s", e.Name())
		}
	}
}

func TestSweepTempsMissingDir(t *testing.T) {
	n, err := SweepTemps(filepath.Join(t.TempDir(), "no-such-dir"))
	if n != 0 || err != nil {
		t.Fatalf("SweepTemps(missing) = %d, %v; want 0, nil", n, err)
	}
}

func TestSweepTempsSkipsDirs(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, ".sub.tmp-1")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	n, err := SweepTemps(dir)
	if err != nil || n != 0 {
		t.Fatalf("SweepTemps = %d, %v; want 0 removed, directories skipped", n, err)
	}
	if _, err := os.Stat(sub); err != nil {
		t.Fatalf("directory was swept: %v", err)
	}
}
