// Package atomicio provides crash-safe file writes: content lands in a
// temporary file in the destination directory, is flushed to stable storage,
// and is renamed into place. A reader therefore observes either the old file
// or the complete new one — never a torn intermediate — and an interrupt
// (SIGINT mid-run, a crash, a full disk) can at worst leave a stray .tmp
// file, not a corrupt artifact. The run-manifest checkpoints, the rendered
// exhibit outputs, and generated trace files all go through this package.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: write-temp, fsync, rename.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteTo(path, perm, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// WriteTo streams content into path via fn, atomically: fn receives a
// temporary file in path's directory (it may write and seek freely); on
// success the file is fsynced and renamed over path. On any error the
// temporary file is removed and path is untouched.
func WriteTo(path string, perm os.FileMode, fn func(f *os.File) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: creating temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = fn(f); err != nil {
		return err
	}
	if err = f.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicio: fsync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicio: close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicio: rename into place: %w", err)
	}
	syncDir(dir) // best effort: persist the rename itself
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives power loss.
// Errors are ignored: some filesystems (and all of Windows) reject directory
// fsync, and the rename's atomicity does not depend on it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
