// Package atomicio provides crash-safe file writes: content lands in a
// temporary file in the destination directory, is flushed to stable storage,
// and is renamed into place. A reader therefore observes either the old file
// or the complete new one — never a torn intermediate — and an interrupt
// (SIGINT mid-run, a crash, a full disk) can at worst leave a stray .tmp
// file, not a corrupt artifact. The run-manifest checkpoints, the rendered
// exhibit outputs, generated trace files, and the cluster checkpoints and
// result cache all go through this package.
//
// Every write path has an FS-parameterized variant (WriteFileFS, WriteToFS,
// SweepTempsFS) taking an internal/crashfs filesystem, so the
// crash-consistency torture harness can power-fail any individual create,
// write, fsync, or rename and verify the old-or-new contract actually holds
// at that point. The plain functions use the real OS.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ibsim/internal/crashfs"
)

// WriteFile atomically replaces path with data: write-temp, fsync, rename.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileFS(crashfs.OS(), path, data, perm)
}

// WriteFileFS is WriteFile through an explicit filesystem.
func WriteFileFS(fsys crashfs.FS, path string, data []byte, perm os.FileMode) error {
	return WriteToFS(fsys, path, perm, func(f crashfs.File) error {
		_, err := f.Write(data)
		return err
	})
}

// WriteTo streams content into path via fn, atomically: fn receives a
// temporary file in path's directory (it may write and seek freely); on
// success the file is fsynced and renamed over path. On any error the
// temporary file is removed and path is untouched.
func WriteTo(path string, perm os.FileMode, fn func(f *os.File) error) error {
	return WriteToFS(crashfs.OS(), path, perm, func(f crashfs.File) error {
		return fn(f.(interface{ OSFile() *os.File }).OSFile())
	})
}

// WriteToFS is WriteTo through an explicit filesystem; fn receives the
// filesystem's File instead of a raw *os.File.
func WriteToFS(fsys crashfs.FS, path string, perm os.FileMode, fn func(f crashfs.File) error) (err error) {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: creating temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(tmp)
		}
	}()
	if err = fn(f); err != nil {
		return err
	}
	if err = f.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicio: fsync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicio: close: %w", err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicio: rename into place: %w", err)
	}
	fsys.SyncDir(dir) // best effort: persist the rename itself
	return nil
}

// IsTemp reports whether a directory entry name is one of this package's
// in-flight temporary files — debris a crash between create and rename can
// leave behind. The published artifact a temp file was staging never matches.
func IsTemp(name string) bool {
	return strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-")
}

// SweepTemps removes orphaned temp files from dir — the cleanup every
// durable store runs when it (re)opens its directory, so debris from a
// crashed predecessor never accumulates and can never be confused for data.
// A missing directory sweeps zero files. It returns how many were removed.
func SweepTemps(dir string) (int, error) {
	return SweepTempsFS(crashfs.OS(), dir)
}

// SweepTempsFS is SweepTemps through an explicit filesystem.
func SweepTempsFS(fsys crashfs.FS, dir string) (int, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("atomicio: sweeping %s: %w", dir, err)
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || !IsTemp(e.Name()) {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, fmt.Errorf("atomicio: sweeping %s: %w", dir, err)
		}
		removed++
	}
	return removed, nil
}
