// Package manifest persists per-exhibit experiment outputs so an
// interrupted run can resume instead of recomputing. Each completed exhibit
// is written atomically (temp file, fsync, rename) next to a MANIFEST.json
// index keyed by the run parameters; outputs are content-addressed with
// SHA-256 so a corrupted or hand-edited file is recomputed, never trusted.
//
// The same content-addressing primitives are exported for other durable
// stores (the cluster result cache and shard checkpoints): Key derives a
// stable SHA-256 identity from any parameter struct, and Seal/Unseal wrap a
// payload in a digest envelope so tampering or torn writes are detected on
// load instead of trusted.
package manifest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ibsim/internal/atomicio"
	"ibsim/internal/crashfs"
)

// Schema identifies the manifest file format.
const Schema = "ibsim-manifest/v1"

// indexName is the manifest index file inside the run directory.
const indexName = "MANIFEST.json"

// Params is the run configuration a manifest is keyed by: cached outputs are
// only reused by a run with identical parameters.
type Params struct {
	Instructions int64  `json:"instructions"`
	Trials       int    `json:"trials"`
	Seed         uint64 `json:"seed"`
	CSV          bool   `json:"csv"`
	Chart        bool   `json:"chart"`
}

// entry records one completed exhibit.
type entry struct {
	File   string `json:"file"`
	SHA256 string `json:"sha256"`
}

// index is the MANIFEST.json layout.
type index struct {
	Schema   string           `json:"schema"`
	Params   Params           `json:"params"`
	Exhibits map[string]entry `json:"exhibits"`
}

// Manifest is an open run directory.
type Manifest struct {
	fsys crashfs.FS
	dir  string
	idx  index
}

// Open loads the manifest in dir, creating the directory as needed. An
// existing index with different parameters (or an unknown schema) is
// discarded: its cached outputs belong to a different run and must not be
// reused. Orphaned temp files from a crashed predecessor are swept on open,
// so debris can never shadow or be mistaken for an output. The second return
// reports how many completed exhibits were carried over.
func Open(dir string, params Params) (*Manifest, int, error) {
	return OpenFS(crashfs.OS(), dir, params)
}

// OpenFS is Open through an explicit filesystem — the crash-consistency
// torture harness's entry point; every write the manifest makes goes
// through fsys.
func OpenFS(fsys crashfs.FS, dir string, params Params) (*Manifest, int, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("manifest: %w", err)
	}
	if _, err := atomicio.SweepTempsFS(fsys, dir); err != nil {
		return nil, 0, fmt.Errorf("manifest: %w", err)
	}
	m := &Manifest{fsys: fsys, dir: dir, idx: index{Schema: Schema, Params: params, Exhibits: map[string]entry{}}}
	raw, err := fsys.ReadFile(filepath.Join(dir, indexName))
	if err != nil {
		if os.IsNotExist(err) {
			return m, 0, nil
		}
		return nil, 0, fmt.Errorf("manifest: %w", err)
	}
	var old index
	if err := json.Unmarshal(raw, &old); err != nil || old.Schema != Schema || old.Params != params {
		// Unreadable or mismatched index: start fresh rather than resume a
		// different run's outputs.
		return m, 0, nil
	}
	for name, e := range old.Exhibits {
		m.idx.Exhibits[name] = e
	}
	return m, len(m.idx.Exhibits), nil
}

// Len returns the number of completed exhibits on record.
func (m *Manifest) Len() int { return len(m.idx.Exhibits) }

// ErrMissing reports an exhibit the manifest has no completed record of.
var ErrMissing = errors.New("manifest: no completed output on record")

// ErrCorruptOutput reports a recorded output whose on-disk bytes no longer
// match the index digest — a torn write, bit rot, or a hand edit. The
// caller must recompute the exhibit; the stored bytes are never returned.
var ErrCorruptOutput = errors.New("manifest: output does not match recorded digest")

// Get returns the stored output of name, verifying its digest; a missing,
// unreadable, or corrupted output reports false so the caller recomputes it.
func (m *Manifest) Get(name string) (string, bool) {
	out, err := m.Lookup(name)
	return out, err == nil
}

// Lookup is Get with the typed rejection contract: a missing or unindexed
// output returns ErrMissing, an unreadable or digest-mismatched one returns
// ErrCorruptOutput (wrapped with detail). A partial or tampered file is
// never returned as data.
func (m *Manifest) Lookup(name string) (string, error) {
	e, ok := m.idx.Exhibits[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrMissing, name)
	}
	data, err := m.fsys.ReadFile(filepath.Join(m.dir, e.File))
	if err != nil {
		if os.IsNotExist(err) {
			return "", fmt.Errorf("%w: %q (indexed file absent)", ErrMissing, name)
		}
		return "", fmt.Errorf("%w: %q: %v", ErrCorruptOutput, name, err)
	}
	if digest(data) != e.SHA256 {
		return "", fmt.Errorf("%w: %q (%d bytes on disk)", ErrCorruptOutput, name, len(data))
	}
	return string(data), nil
}

// Put atomically records name's output: the exhibit file first, then the
// updated index, each via write-temp-fsync-rename, so a crash at any point
// leaves either the previous consistent state or the new one.
func (m *Manifest) Put(name, output string) error {
	file, err := exhibitFile(name)
	if err != nil {
		return err
	}
	data := []byte(output)
	if err := atomicio.WriteFileFS(m.fsys, filepath.Join(m.dir, file), data, 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	m.idx.Exhibits[name] = entry{File: file, SHA256: digest(data)}
	raw, err := json.MarshalIndent(&m.idx, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := atomicio.WriteFileFS(m.fsys, filepath.Join(m.dir, indexName), append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

// exhibitFile maps an exhibit name to its output file, rejecting names that
// would escape the run directory.
func exhibitFile(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return "", fmt.Errorf("manifest: invalid exhibit name %q", name)
	}
	return name + ".out", nil
}

func digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// --- content addressing --------------------------------------------------

// Key derives the content address of a parameter value: the hex SHA-256 of
// its canonical JSON encoding, prefixed by kind so two stores keying
// different request types can never collide on identical field sets.
// Encoding goes through encoding/json, whose struct-field order is the
// declaration order — deterministic for a fixed type — so the key is stable
// across processes and across an encode/decode round trip of the value.
// Values that cannot marshal (channels, cycles) yield a key derived from the
// error string, which never matches a real key.
func Key(kind string, params any) string {
	data, err := json.Marshal(params)
	if err != nil {
		data = []byte("!unmarshalable:" + err.Error())
	}
	sum := sha256.Sum256(append(append([]byte(kind), 0), data...))
	return hex.EncodeToString(sum[:])
}

// ErrSealBroken reports a sealed payload whose digest envelope does not
// match its content — a torn write, bit rot, or deliberate tampering. The
// caller must recompute, never trust the payload.
var ErrSealBroken = errors.New("manifest: sealed payload digest mismatch")

// sealMagic heads every sealed payload; the hex digest and a newline follow,
// then the raw payload bytes.
const sealMagic = "ibsim-seal/v1 "

// Seal wraps payload in a SHA-256 digest envelope for durable storage.
func Seal(payload []byte) []byte {
	out := make([]byte, 0, len(sealMagic)+64+1+len(payload))
	out = append(out, sealMagic...)
	out = append(out, digest(payload)...)
	out = append(out, '\n')
	return append(out, payload...)
}

// Unseal verifies a sealed payload's digest envelope and returns the
// payload. Any mismatch — wrong magic, malformed header, or a digest that
// does not match the content — returns ErrSealBroken.
func Unseal(data []byte) ([]byte, error) {
	if !bytes.HasPrefix(data, []byte(sealMagic)) {
		return nil, ErrSealBroken
	}
	rest := data[len(sealMagic):]
	nl := bytes.IndexByte(rest, '\n')
	if nl != 64 {
		return nil, ErrSealBroken
	}
	want, payload := string(rest[:nl]), rest[nl+1:]
	if digest(payload) != want {
		return nil, ErrSealBroken
	}
	return payload, nil
}
