package manifest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := Params{Instructions: 1000, Trials: 5}
	m, resumed, err := Open(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("fresh manifest resumed %d exhibits", resumed)
	}
	if _, ok := m.Get("table1"); ok {
		t.Fatal("Get on an empty manifest succeeded")
	}
	if err := m.Put("table1", "row row row\n"); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Get("table1")
	if !ok || got != "row row row\n" {
		t.Fatalf("Get = %q, %v", got, ok)
	}

	// A fresh Open with the same params resumes the entry.
	m2, resumed, err := Open(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed = %d, want 1", resumed)
	}
	if got, ok := m2.Get("table1"); !ok || got != "row row row\n" {
		t.Fatalf("resumed Get = %q, %v", got, ok)
	}
}

func TestParamsMismatchDiscardsCache(t *testing.T) {
	dir := t.TempDir()
	m, _, err := Open(dir, Params{Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("table1", "stale"); err != nil {
		t.Fatal(err)
	}
	m2, resumed, err := Open(dir, Params{Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 || m2.Len() != 0 {
		t.Fatalf("different params resumed %d exhibits", resumed)
	}
	if _, ok := m2.Get("table1"); ok {
		t.Fatal("different-params manifest served a stale output")
	}
}

func TestCorruptedOutputNotServed(t *testing.T) {
	dir := t.TempDir()
	m, _, err := Open(dir, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("figure1", "good bytes"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "figure1.out"), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2, _, err := Open(dir, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Get("figure1"); ok {
		t.Fatal("corrupted output served from cache")
	}
}

func TestCorruptIndexStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, resumed, err := Open(dir, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 || m.Len() != 0 {
		t.Fatal("corrupt index resumed exhibits")
	}
}

func TestInvalidExhibitNameRejected(t *testing.T) {
	m, _, err := Open(t.TempDir(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../evil", "a/b", `a\b`} {
		if err := m.Put(name, "x"); err == nil || !strings.Contains(err.Error(), "invalid exhibit name") {
			t.Fatalf("Put(%q) = %v, want invalid-name error", name, err)
		}
	}
}
