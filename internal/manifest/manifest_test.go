package manifest

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := Params{Instructions: 1000, Trials: 5}
	m, resumed, err := Open(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("fresh manifest resumed %d exhibits", resumed)
	}
	if _, ok := m.Get("table1"); ok {
		t.Fatal("Get on an empty manifest succeeded")
	}
	if err := m.Put("table1", "row row row\n"); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Get("table1")
	if !ok || got != "row row row\n" {
		t.Fatalf("Get = %q, %v", got, ok)
	}

	// A fresh Open with the same params resumes the entry.
	m2, resumed, err := Open(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed = %d, want 1", resumed)
	}
	if got, ok := m2.Get("table1"); !ok || got != "row row row\n" {
		t.Fatalf("resumed Get = %q, %v", got, ok)
	}
}

func TestParamsMismatchDiscardsCache(t *testing.T) {
	dir := t.TempDir()
	m, _, err := Open(dir, Params{Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("table1", "stale"); err != nil {
		t.Fatal(err)
	}
	m2, resumed, err := Open(dir, Params{Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 || m2.Len() != 0 {
		t.Fatalf("different params resumed %d exhibits", resumed)
	}
	if _, ok := m2.Get("table1"); ok {
		t.Fatal("different-params manifest served a stale output")
	}
}

func TestCorruptedOutputNotServed(t *testing.T) {
	dir := t.TempDir()
	m, _, err := Open(dir, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("figure1", "good bytes"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "figure1.out"), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2, _, err := Open(dir, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Get("figure1"); ok {
		t.Fatal("corrupted output served from cache")
	}
}

func TestCorruptIndexStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, resumed, err := Open(dir, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 || m.Len() != 0 {
		t.Fatal("corrupt index resumed exhibits")
	}
}

func TestInvalidExhibitNameRejected(t *testing.T) {
	m, _, err := Open(t.TempDir(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../evil", "a/b", `a\b`} {
		if err := m.Put(name, "x"); err == nil || !strings.Contains(err.Error(), "invalid exhibit name") {
			t.Fatalf("Put(%q) = %v, want invalid-name error", name, err)
		}
	}
}

// keyParams mirrors the shape of a cluster request key: nested sweep, replay,
// and sampling parameters of every kind the wire types use.
type keyParams struct {
	Endpoint     string       `json:"endpoint"`
	Workload     string       `json:"workload"`
	Seed         uint64       `json:"seed"`
	Instructions int64        `json:"instructions"`
	LineSize     int          `json:"line_size"`
	Distinct     bool         `json:"distinct"`
	Cells        []keyCell    `json:"cells"`
	Engines      []string     `json:"engines"`
	Sampling     *keySampling `json:"sampling"`
}

type keyCell struct {
	Sets  int `json:"sets"`
	Assoc int `json:"assoc"`
}

type keySampling struct {
	Set    int   `json:"set"`
	Window int64 `json:"window"`
	Period int64 `json:"period"`
	Skip   bool  `json:"skip"`
}

// leafValues walks rv (addressable) and collects every settable scalar leaf
// — struct fields, slice elements, and pointer targets — so the perturbation
// test keeps covering new fields as params structs grow.
func leafValues(rv reflect.Value) []reflect.Value {
	var out []reflect.Value
	switch rv.Kind() {
	case reflect.Struct:
		for i := 0; i < rv.NumField(); i++ {
			out = append(out, leafValues(rv.Field(i))...)
		}
	case reflect.Slice:
		for i := 0; i < rv.Len(); i++ {
			out = append(out, leafValues(rv.Index(i))...)
		}
	case reflect.Pointer:
		if !rv.IsNil() {
			out = append(out, leafValues(rv.Elem())...)
		}
	default:
		out = append(out, rv)
	}
	return out
}

// mutate changes one scalar leaf to a different value.
func mutate(v reflect.Value) {
	switch v.Kind() {
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	default:
		panic("mutate: unhandled kind " + v.Kind().String())
	}
}

// deepCopy clones params through their JSON encoding — the same path Key
// hashes — so a mutation can never alias the original.
func deepCopy(t *testing.T, v keyParams) keyParams {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var out keyParams
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func baseKeyParams() keyParams {
	return keyParams{
		Endpoint:     "sweep",
		Workload:     "mach_video",
		Seed:         7,
		Instructions: 2_000_000,
		LineSize:     32,
		Distinct:     true,
		Cells:        []keyCell{{Sets: 64, Assoc: 1}, {Sets: 256, Assoc: 2}},
		Engines:      []string{"blocking", "stream"},
		Sampling:     &keySampling{Set: 16, Window: 1024, Period: 16384, Skip: true},
	}
}

// TestKeySingleParameterPerturbation is the key-derivation collision
// property: two parameter sets differing in any single sweep/replay/sampling
// field must derive different keys, and the mutated key must be stable.
func TestKeySingleParameterPerturbation(t *testing.T) {
	base := baseKeyParams()
	baseKey := Key("req", base)
	probe := deepCopy(t, base)
	nLeaves := len(leafValues(reflect.ValueOf(&probe).Elem()))
	seen := map[string]int{baseKey: -1}
	for i := 0; i < nLeaves; i++ {
		cp := deepCopy(t, base)
		leaf := leafValues(reflect.ValueOf(&cp).Elem())[i]
		mutate(leaf)
		k := Key("req", cp)
		if prev, dup := seen[k]; dup {
			t.Fatalf("leaf %d collides with perturbation %d (key %s)", i, prev, k)
		}
		seen[k] = i
		if again := Key("req", cp); again != k {
			t.Fatalf("leaf %d: key unstable across repeated derivation", i)
		}
	}
	if len(seen) != nLeaves+1 {
		t.Fatalf("expected %d distinct keys, got %d", nLeaves+1, len(seen))
	}
}

// TestKeyStructuralSensitivity covers the perturbations scalar mutation
// cannot express: dropping the sampling block, dropping or reordering grid
// cells, and changing the key's kind prefix.
func TestKeyStructuralSensitivity(t *testing.T) {
	base := baseKeyParams()
	variants := map[string]keyParams{}
	noSampling := deepCopy(t, base)
	noSampling.Sampling = nil
	variants["nil sampling"] = noSampling
	fewerCells := deepCopy(t, base)
	fewerCells.Cells = fewerCells.Cells[:1]
	variants["dropped cell"] = fewerCells
	swapped := deepCopy(t, base)
	swapped.Cells[0], swapped.Cells[1] = swapped.Cells[1], swapped.Cells[0]
	variants["reordered cells"] = swapped

	baseKey := Key("req", base)
	seen := map[string]string{baseKey: "base"}
	for name, v := range variants {
		k := Key("req", v)
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}
	if Key("other", base) == baseKey {
		t.Fatal("kind prefix does not separate key spaces")
	}
}

// TestKeyStableAcrossEncodeDecode: deriving the key from a value that has
// been through a JSON round trip (the wire, the checkpoint file) must yield
// the identical key.
func TestKeyStableAcrossEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 64; trial++ {
		v := baseKeyParams()
		v.Seed = rng.Uint64()
		v.Instructions = rng.Int63n(1 << 40)
		v.LineSize = 1 << rng.Intn(10)
		v.Distinct = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			v.Sampling = nil
		} else {
			v.Sampling.Window = rng.Int63n(1 << 30)
		}
		k := Key("req", v)
		if k2 := Key("req", deepCopy(t, v)); k2 != k {
			t.Fatalf("trial %d: key changed across encode/decode round trip: %s vs %s", trial, k, k2)
		}
	}
}

func TestSealRoundTripAndTamper(t *testing.T) {
	payload := []byte(`{"cells":[1,2,3]}`)
	sealed := Seal(payload)
	got, err := Unseal(sealed)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("Unseal(Seal(p)) = %q, %v", got, err)
	}
	for name, mut := range map[string][]byte{
		"flipped payload bit": append(append([]byte(nil), sealed[:len(sealed)-1]...), sealed[len(sealed)-1]^1),
		"flipped digest bit":  append([]byte{sealed[0] ^ 1}, sealed[1:]...),
		"truncated":           sealed[:len(sealed)-2],
		"empty":               nil,
		"garbage":             []byte("not a sealed payload"),
	} {
		if _, err := Unseal(mut); !errors.Is(err, ErrSealBroken) {
			t.Fatalf("%s: Unseal = %v, want ErrSealBroken", name, err)
		}
	}
	// A digest-header flip inside the hex digest itself.
	mid := append([]byte(nil), sealed...)
	mid[len(sealMagic)+3] ^= 1
	if _, err := Unseal(mid); !errors.Is(err, ErrSealBroken) {
		t.Fatalf("digest tamper: Unseal = %v, want ErrSealBroken", err)
	}
}
