package manifest

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ibsim/internal/crashfs"
)

// seedImage runs a manifest write sequence through a crashfs recording pass
// and materializes the flushed image — a disk state produced by the real
// persistence code, not hand-built fixtures.
func seedImage(t *testing.T, params Params, exhibits map[string]string) string {
	t.Helper()
	live := t.TempDir()
	sim := crashfs.NewSim(live, -1)
	m, _, err := OpenFS(sim, live, params)
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range exhibits {
		if err := m.Put(name, out); err != nil {
			t.Fatal(err)
		}
	}
	img := t.TempDir()
	if err := sim.Materialize(img, crashfs.Flushed); err != nil {
		t.Fatal(err)
	}
	return img
}

// TestCrashManifestRejectsTruncation cuts the recorded exhibit file at every
// byte boundary: every cut must surface as the typed ErrCorruptOutput —
// never a silent partial load, never an untyped error.
func TestCrashManifestRejectsTruncation(t *testing.T) {
	params := Params{Instructions: 1000, Trials: 1, Seed: 3}
	want := "exhibit body: 0.123456 misses/instr\n"
	img := seedImage(t, params, map[string]string{"fig": want})
	path := filepath.Join(img, "fig.out")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(whole); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		m, _, err := Open(img, params)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got, lerr := m.Lookup("fig")
		if lerr == nil {
			t.Fatalf("cut %d: truncated exhibit served as %q", cut, got)
		}
		if !errors.Is(lerr, ErrCorruptOutput) {
			t.Fatalf("cut %d: untyped rejection %v", cut, lerr)
		}
		if got != "" {
			t.Fatalf("cut %d: partial content %q returned alongside error", cut, got)
		}
	}
}

// TestCrashManifestRejectsBitFlips flips one bit at every byte of the
// exhibit and of the index: a flipped exhibit is ErrCorruptOutput, a flipped
// index either still parses identically (flip in insignificant JSON
// whitespace cannot happen — every byte is significant to the digest check)
// or discards the run, surfacing the exhibit as ErrMissing. No flip may ever
// alter served content.
func TestCrashManifestRejectsBitFlips(t *testing.T) {
	params := Params{Instructions: 1000, Trials: 1, Seed: 3}
	want := "exhibit body: 0.123456 misses/instr\n"
	img := seedImage(t, params, map[string]string{"fig": want})

	flip := func(path string, i int, bit byte) func() {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), data...)
		mut[i] ^= bit
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		return func() {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	exhibit := filepath.Join(img, "fig.out")
	n, _ := os.ReadFile(exhibit)
	for i := 0; i < len(n); i++ {
		restore := flip(exhibit, i, 1<<(i%8))
		m, _, err := Open(img, params)
		if err != nil {
			t.Fatalf("flip %d: open: %v", i, err)
		}
		if got, lerr := m.Lookup("fig"); lerr == nil || !errors.Is(lerr, ErrCorruptOutput) {
			t.Fatalf("flip %d: exhibit flip not typed-rejected: %q, %v", i, got, lerr)
		}
		restore()
	}

	index := filepath.Join(img, indexName)
	raw, _ := os.ReadFile(index)
	for i := 0; i < len(raw); i++ {
		restore := flip(index, i, 1<<(i%8))
		m, _, err := Open(img, params)
		if err != nil {
			t.Fatalf("index flip %d: open: %v", i, err)
		}
		got, lerr := m.Lookup("fig")
		switch {
		case lerr == nil:
			if got != want {
				t.Fatalf("index flip %d: wrong content served: %q", i, got)
			}
		case errors.Is(lerr, ErrMissing) || errors.Is(lerr, ErrCorruptOutput):
			// Typed rejection: the caller recomputes.
		default:
			t.Fatalf("index flip %d: untyped rejection %v", i, lerr)
		}
		restore()
	}
}

// TestCrashManifestTempNeverLoaded plants a stale temp staging a poisoned
// exhibit next to a good manifest: opening must sweep it, and the lookup
// must serve the real exhibit.
func TestCrashManifestTempNeverLoaded(t *testing.T) {
	params := Params{Instructions: 1000, Trials: 1, Seed: 3}
	want := "good output\n"
	img := seedImage(t, params, map[string]string{"fig": want})
	stale := filepath.Join(img, ".fig.out.tmp-999")
	if err := os.WriteFile(stale, []byte("poisoned partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, carried, err := Open(img, params)
	if err != nil {
		t.Fatal(err)
	}
	if carried != 1 {
		t.Fatalf("carried %d exhibits, want 1", carried)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived open (%v)", err)
	}
	got, err := m.Lookup("fig")
	if err != nil || got != want {
		t.Fatalf("Lookup = %q, %v; want the real exhibit", got, err)
	}
	entries, _ := os.ReadDir(img)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris after open: %s", e.Name())
		}
	}
}
