package tlb

import (
	"testing"
	"testing/quick"

	"ibsim/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Entries: 0, PageSize: 4096},
		{Entries: -4, PageSize: 4096},
		{Entries: 64, PageSize: 0},
		{Entries: 64, PageSize: 3000},
		{Entries: 64, PageSize: 4096, Assoc: 5},
		{Entries: 64, PageSize: 4096, Assoc: 128},
		{Entries: 48, PageSize: 4096, Assoc: 16}, // 3 sets: not pow2
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(R2000()); err != nil {
		t.Fatalf("R2000 config rejected: %v", err)
	}
}

func TestR2000Geometry(t *testing.T) {
	cfg := R2000()
	if cfg.Entries != 64 || cfg.PageSize != 4096 {
		t.Fatalf("R2000 = %+v", cfg)
	}
	tl := MustNew(cfg)
	if tl.Reach() != 64*4096 {
		t.Fatalf("Reach = %d", tl.Reach())
	}
}

func TestHitMiss(t *testing.T) {
	tl := MustNew(Config{Entries: 4, PageSize: 4096, Assoc: 0})
	if tl.Access(0x1000, trace.User) {
		t.Fatal("cold access hit")
	}
	if !tl.Access(0x1FFF, trace.User) {
		t.Fatal("same-page access missed")
	}
	if tl.Access(0x2000, trace.User) {
		t.Fatal("next page hit")
	}
	st := tl.Stats()
	if st.Accesses != 3 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDomainTagging(t *testing.T) {
	tl := MustNew(Config{Entries: 8, PageSize: 4096, Assoc: 0})
	tl.Access(0x1000, trace.User)
	// Same VPN in a different domain must miss (separate address spaces).
	if tl.Access(0x1000, trace.Kernel) {
		t.Fatal("cross-domain access hit")
	}
	if !tl.Access(0x1000, trace.User) {
		t.Fatal("user mapping evicted by kernel install of same VPN")
	}
}

func TestLRUEviction(t *testing.T) {
	tl := MustNew(Config{Entries: 2, PageSize: 4096, Assoc: 0})
	tl.Access(0x1000, trace.User) // A
	tl.Access(0x2000, trace.User) // B
	tl.Access(0x1000, trace.User) // A hit → B LRU
	tl.Access(0x3000, trace.User) // C → evicts B
	if !tl.Access(0x1000, trace.User) {
		t.Fatal("A evicted")
	}
	if tl.Access(0x2000, trace.User) {
		t.Fatal("B survived")
	}
}

func TestCapacityReach(t *testing.T) {
	// 64-entry TLB: cycling through 64 pages hits steady-state; 65 thrashes
	// under LRU with a sequential sweep.
	tl := MustNew(R2000())
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < 64; p++ {
			tl.Access(uint64(p)*4096, trace.User)
		}
	}
	st := tl.Stats()
	if st.Misses != 64 {
		t.Fatalf("64-page working set: misses = %d, want 64 (compulsory only)", st.Misses)
	}
	tl.Reset()
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < 65; p++ {
			tl.Access(uint64(p)*4096, trace.User)
		}
	}
	if st := tl.Stats(); st.Hits != 0 {
		t.Fatalf("65-page sequential sweep under LRU should thrash; hits = %d", st.Hits)
	}
}

func TestSetAssociative(t *testing.T) {
	// 4 entries, 2-way → 2 sets. Pages 0 and 2 share set 0.
	tl := MustNew(Config{Entries: 4, PageSize: 4096, Assoc: 2})
	tl.Access(0*4096, trace.User)
	tl.Access(2*4096, trace.User)
	tl.Access(4*4096, trace.User) // third page in set 0: evicts LRU (page 0)
	if tl.Access(0*4096, trace.User) {
		t.Fatal("page 0 survived 2-way set overflow")
	}
}

func TestFIFOvsLRU(t *testing.T) {
	run := func(r Replacement) Stats {
		tl := MustNew(Config{Entries: 2, PageSize: 4096, Assoc: 0, Replacement: r})
		seq := []uint64{0, 1, 0, 2, 0} // page numbers
		for _, p := range seq {
			tl.Access(p*4096, trace.User)
		}
		return tl.Stats()
	}
	lru := run(LRU)   // 0m 1m 0h 2m(evict 1) 0h → 2 hits
	fifo := run(FIFO) // 0m 1m 0h 2m(evict 0) 0m(evict 1) → 1 hit
	if lru.Hits != 2 {
		t.Errorf("LRU hits = %d, want 2", lru.Hits)
	}
	if fifo.Hits != 1 {
		t.Errorf("FIFO hits = %d, want 1", fifo.Hits)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	run := func() int64 {
		tl := MustNew(Config{Entries: 4, PageSize: 4096, Assoc: 0, Replacement: Random, Seed: 3})
		for i := 0; i < 1000; i++ {
			tl.Access(uint64(i%7)*4096, trace.User)
		}
		return tl.Stats().Hits
	}
	if run() != run() {
		t.Fatal("random replacement not deterministic per seed")
	}
}

func TestFlushDomain(t *testing.T) {
	tl := MustNew(Config{Entries: 8, PageSize: 4096, Assoc: 0})
	tl.Access(0x1000, trace.User)
	tl.Access(0x2000, trace.User)
	tl.Access(0x1000, trace.Kernel)
	if n := tl.FlushDomain(trace.User); n != 2 {
		t.Fatalf("FlushDomain removed %d, want 2", n)
	}
	if tl.Access(0x1000, trace.User) {
		t.Fatal("user mapping survived flush")
	}
	if !tl.Access(0x1000, trace.Kernel) {
		t.Fatal("kernel mapping did not survive user flush")
	}
}

func TestReset(t *testing.T) {
	tl := MustNew(Config{Entries: 4, PageSize: 4096, Assoc: 0})
	tl.Access(0x1000, trace.User)
	tl.Reset()
	if tl.Stats() != (Stats{}) {
		t.Fatal("Reset left stats")
	}
	if tl.Access(0x1000, trace.User) {
		t.Fatal("Reset left mappings")
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("empty MissRatio != 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRatio() != 0.25 {
		t.Fatalf("MissRatio = %v", s.MissRatio())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{Entries: 0, PageSize: 4096})
}

// Property: hits + misses == accesses; a larger fully-associative LRU TLB
// never misses more on the same stream.
func TestTLBProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		small := MustNew(Config{Entries: 8, PageSize: 4096, Assoc: 0})
		big := MustNew(Config{Entries: 32, PageSize: 4096, Assoc: 0})
		for _, v := range raw {
			addr := uint64(v) << 10
			small.Access(addr, trace.User)
			big.Access(addr, trace.User)
		}
		s, b := small.Stats(), big.Stats()
		if s.Hits+s.Misses != s.Accesses {
			return false
		}
		return b.Misses <= s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
