// Package tlb models translation lookaside buffers.
//
// The DECstation 3100's R2000 TLB — 64 fully-associative entries mapping
// 4-KB pages — is the reference configuration for the CPItlb component of the
// paper's Tables 1 and 3. The model also supports set-associative
// organizations and alternative replacement policies so TLB reach can be
// studied as an ablation (the authors' companion work, Nagle93, did exactly
// that on the same infrastructure).
package tlb

import (
	"fmt"

	"ibsim/internal/trace"
	"ibsim/internal/xrand"
)

// Config describes a TLB organization.
type Config struct {
	// Entries is the total number of mappings held.
	Entries int
	// PageSize is the page size in bytes; a power of two.
	PageSize int
	// Assoc is the set associativity; 0 means fully associative.
	Assoc int
	// Replacement selects the victim policy. The R2000 used random
	// replacement in hardware; LRU is the common idealization. Default LRU.
	Replacement Replacement
	// Seed seeds Random replacement.
	Seed uint64
}

// Replacement selects a TLB victim-choice policy.
type Replacement uint8

const (
	// LRU evicts the least-recently-used entry.
	LRU Replacement = iota
	// FIFO evicts the oldest entry.
	FIFO
	// Random evicts a random entry (the R2000's hardware policy for the
	// non-wired entries).
	Random
)

// R2000 returns the DECstation 3100's TLB configuration: 64 fully-associative
// entries, 4-KB pages.
func R2000() Config {
	return Config{Entries: 64, PageSize: 4096, Assoc: 0, Replacement: LRU}
}

// Stats counts TLB activity.
type Stats struct {
	Accesses int64
	Hits     int64
	Misses   int64
}

// MissRatio returns Misses/Accesses, or 0 with no accesses.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type entry struct {
	tag    uint64
	domain trace.Domain
	valid  bool
	stamp  uint64
}

// TLB is a translation lookaside buffer model. Entries are tagged with the
// protection domain (an ASID stand-in), so domain switches do not require
// flushes but mappings are not shared across domains.
type TLB struct {
	cfg       Config
	pageShift uint
	sets      int
	entries   []entry
	clock     uint64
	rng       *xrand.Source
	stats     Stats
}

// New validates cfg and returns an empty TLB.
func New(cfg Config) (*TLB, error) {
	if cfg.Entries <= 0 {
		return nil, fmt.Errorf("tlb: entries %d must be positive", cfg.Entries)
	}
	if cfg.PageSize <= 0 || cfg.PageSize&(cfg.PageSize-1) != 0 {
		return nil, fmt.Errorf("tlb: page size %d must be a positive power of two", cfg.PageSize)
	}
	if cfg.Assoc == 0 {
		cfg.Assoc = cfg.Entries
	}
	if cfg.Assoc < 0 || cfg.Assoc > cfg.Entries || cfg.Entries%cfg.Assoc != 0 {
		return nil, fmt.Errorf("tlb: associativity %d invalid for %d entries", cfg.Assoc, cfg.Entries)
	}
	sets := cfg.Entries / cfg.Assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("tlb: set count %d must be a power of two", sets)
	}
	t := &TLB{
		cfg:     cfg,
		sets:    sets,
		entries: make([]entry, cfg.Entries),
	}
	for p := cfg.PageSize; p > 1; p >>= 1 {
		t.pageShift++
	}
	if cfg.Replacement == Random {
		t.rng = xrand.New(cfg.Seed ^ 0x7e5b)
	}
	return t, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the (normalized) configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// Reset empties the TLB and clears counters.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.stats = Stats{}
	t.clock = 0
}

// Access translates addr in domain d: a hit updates recency; a miss installs
// the mapping (evicting per policy). Returns true on hit.
func (t *TLB) Access(addr uint64, d trace.Domain) bool {
	t.stats.Accesses++
	t.clock++
	vpn := addr >> t.pageShift
	set := int(vpn) & (t.sets - 1)
	base := set * t.cfg.Assoc
	free := -1
	for i := 0; i < t.cfg.Assoc; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == vpn && e.domain == d {
			t.stats.Hits++
			if t.cfg.Replacement == LRU {
				e.stamp = t.clock
			}
			return true
		}
		if !e.valid && free < 0 {
			free = base + i
		}
	}
	t.stats.Misses++
	victim := free
	if victim < 0 {
		switch t.cfg.Replacement {
		case Random:
			victim = base + t.rng.Intn(t.cfg.Assoc)
		default:
			victim = base
			for i := 1; i < t.cfg.Assoc; i++ {
				if t.entries[base+i].stamp < t.entries[victim].stamp {
					victim = base + i
				}
			}
		}
	}
	t.entries[victim] = entry{tag: vpn, domain: d, valid: true, stamp: t.clock}
	return false
}

// FlushDomain invalidates every entry belonging to domain d (what an OS
// without ASIDs must do on every context switch). Returns the number of
// entries invalidated.
func (t *TLB) FlushDomain(d trace.Domain) int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].domain == d {
			t.entries[i] = entry{}
			n++
		}
	}
	return n
}

// Reach returns the bytes of address space the TLB can map at once.
func (t *TLB) Reach() int64 {
	return int64(t.cfg.Entries) * int64(t.cfg.PageSize)
}
