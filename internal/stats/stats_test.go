package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatalf("empty sample not zero: %v", &s)
	}
	if s.StdErr() != 0 {
		t.Fatal("empty sample StdErr != 0")
	}
}

func TestSampleSingle(t *testing.T) {
	var s Sample
	s.Add(4.2)
	if s.N() != 1 || s.Mean() != 4.2 || s.Variance() != 0 {
		t.Fatalf("single-value sample wrong: %v", &s)
	}
	if s.Min() != 4.2 || s.Max() != 4.2 {
		t.Fatalf("extrema wrong: %v", &s)
	}
}

func TestSampleKnownValues(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Sample variance with n-1: sum sq dev = 32, 32/7.
	if !almostEq(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extrema = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleStability(t *testing.T) {
	// Large offset, tiny spread: Welford must not cancel catastrophically.
	var s Sample
	base := 1e9
	for i := 0; i < 1000; i++ {
		s.Add(base + float64(i%2)) // alternates base, base+1
	}
	if !almostEq(s.Mean(), base+0.5, 1e-3) {
		t.Errorf("mean = %v", s.Mean())
	}
	if !almostEq(s.Variance(), 0.25025, 1e-3) { // ~p(1-p)*n/(n-1)
		t.Errorf("variance = %v", s.Variance())
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, -3, 0.5}
	var whole Sample
	whole.AddAll(xs)

	var a, b Sample
	a.AddAll(xs[:5])
	b.AddAll(xs[5:])
	a.Merge(&b)

	if a.N() != whole.N() {
		t.Fatalf("N %d != %d", a.N(), whole.N())
	}
	if !almostEq(a.Mean(), whole.Mean(), 1e-12) {
		t.Errorf("mean %v != %v", a.Mean(), whole.Mean())
	}
	if !almostEq(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("variance %v != %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("extrema mismatch")
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Sample
	a.Add(1)
	a.Merge(&b) // merging empty: no-op
	if a.N() != 1 || a.Mean() != 1 {
		t.Fatal("merge with empty changed sample")
	}
	var c Sample
	c.Merge(&a) // merging into empty: copy
	if c.N() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}

func TestStdDevHelper(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev singleton != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Error("even median wrong")
	}
	// input must not be mutated
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated input")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if !almostEq(GeoMean([]float64{2, 8}), 4, 1e-12) {
		t.Error("GeoMean{2,8} != 4")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with negative should be 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero should be 0")
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if !almostEq(got, 2.5, 1e-12) {
		t.Errorf("WeightedMean = %v, want 2.5", got)
	}
	if WeightedMean(nil, nil) != 0 {
		t.Error("zero weights should give 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

// Property: Welford mean equals naive mean; variance is non-negative;
// min <= mean <= max.
func TestSampleProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 7.0
		}
		var s Sample
		s.AddAll(xs)
		if s.Variance() < 0 {
			return false
		}
		if !almostEq(s.Mean(), Mean(xs), 1e-6) {
			return false
		}
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is equivalent to sequential AddAll for arbitrary splits.
func TestMergeProperty(t *testing.T) {
	f := func(a, b []int8) bool {
		var whole, left, right Sample
		for _, v := range a {
			whole.Add(float64(v))
			left.Add(float64(v))
		}
		for _, v := range b {
			whole.Add(float64(v))
			right.Add(float64(v))
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEq(left.Mean(), whole.Mean(), 1e-9) &&
			almostEq(left.Variance(), whole.Variance(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}
