// Package stats provides the small set of descriptive statistics the
// simulator needs: running sample accumulation (mean, variance, standard
// deviation, extrema) and simple aggregation over experiment trials.
//
// The paper reports Figure 5 as "one standard deviation of CPIinstr" over 5
// experimental trials per configuration; Sample reproduces exactly that
// computation (sample standard deviation, n-1 denominator).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations using Welford's online algorithm, which is
// numerically stable for long runs of near-equal values (CPI values across
// trials differ in the third decimal place, where naive sum-of-squares
// cancellation is visible).
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll records every observation in xs.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations recorded.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (n−1 denominator), or 0 when
// fewer than two observations have been recorded.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// String summarizes the sample for logs and test failures.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Merge folds other into s as if every observation in other had been added
// to s (Chan et al.'s parallel variance combination).
func (s *Sample) Merge(other *Sample) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	delta := other.mean - s.mean
	total := s.n + other.n
	s.mean += delta * float64(other.n) / float64(total)
	s.m2 += other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(total)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n = total
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n−1 denominator), or 0
// when len(xs) < 2.
func StdDev(xs []float64) float64 {
	var s Sample
	s.AddAll(xs)
	return s.StdDev()
}

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	mid := len(tmp) / 2
	if len(tmp)%2 == 1 {
		return tmp[mid]
	}
	return (tmp[mid-1] + tmp[mid]) / 2
}

// GeoMean returns the geometric mean of xs. Non-positive inputs and empty
// slices return 0. SPEC-style suite summaries conventionally use the
// geometric mean.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sumLog := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sumLog += math.Log(x)
	}
	return math.Exp(sumLog / float64(len(xs)))
}

// WeightedMean returns the weighted arithmetic mean of xs with weights ws.
// It panics if the slices differ in length; a zero total weight returns 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sum, wsum float64
	for i, x := range xs {
		sum += x * ws[i]
		wsum += ws[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}
