package experiments

import (
	"strings"
	"testing"

	"ibsim/internal/vm"
)

func TestAblationSubBlock(t *testing.T) {
	res, err := AblationSubBlock(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's footnote: 64-B sub-blocked performs "almost as well as" a
	// 16-B line with 3-line prefetch, and both beat... the precise ordering
	// depends on pollution; assert the sub-block config lands between the
	// plain 64-B line and a 2x band of the prefetch config.
	if res.Line64SubBlock16 <= 0 || res.Line16Prefetch3 <= 0 || res.Line64Plain <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Line64SubBlock16 > 2*res.Line16Prefetch3 {
		t.Errorf("sub-block CPI %.3f not within 2x of prefetch CPI %.3f",
			res.Line64SubBlock16, res.Line16Prefetch3)
	}
	if !strings.Contains(res.Render(), "sub-block") {
		t.Error("render missing rows")
	}
}

func TestAblationPagePolicy(t *testing.T) {
	res, err := AblationPagePolicy(Options{Instructions: 200_000, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byPolicy := map[vm.Policy]PagePolicyRow{}
	for _, r := range res.Rows {
		byPolicy[r.Policy] = r
	}
	// Careful policies are deterministic across trials: zero variability.
	for _, pol := range []vm.Policy{vm.Sequential, vm.PageColoring, vm.BinHopping} {
		if sd := byPolicy[pol].StdDev; sd != 0 {
			t.Errorf("%v: deterministic policy has nonzero trial stddev %.4f", pol, sd)
		}
	}
	// Random allocation varies.
	if byPolicy[vm.RandomAlloc].StdDev == 0 {
		t.Error("random allocation shows no variability")
	}
	// Page coloring should not be worse than random allocation on average
	// (it reproduces virtual-index behavior).
	if byPolicy[vm.PageColoring].MeanMPI > byPolicy[vm.RandomAlloc].MeanMPI*1.15 {
		t.Errorf("page coloring (%.2f) much worse than random (%.2f)",
			byPolicy[vm.PageColoring].MeanMPI, byPolicy[vm.RandomAlloc].MeanMPI)
	}
	if !strings.Contains(res.Render(), "bin-hopping") {
		t.Error("render missing policy")
	}
}

func TestAblationReplacement(t *testing.T) {
	res, err := AblationReplacement(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// At every associativity LRU should not lose badly to FIFO or random
	// (within 10% — instruction streams are LRU-friendly).
	type key struct{ assoc, pol int }
	byKey := map[key]float64{}
	for _, r := range res.Rows {
		byKey[key{r.Assoc, int(r.Policy)}] = r.MPI
	}
	for _, a := range []int{2, 4, 8} {
		lru := byKey[key{a, 0}]
		if lru <= 0 {
			t.Fatalf("missing LRU value for %d-way", a)
		}
		for pol := 1; pol <= 2; pol++ {
			if byKey[key{a, pol}] < lru*0.9 {
				t.Errorf("%d-way policy %d (%.2f) beats LRU (%.2f) by >10%%",
					a, pol, byKey[key{a, pol}], lru)
			}
		}
	}
	if !strings.Contains(res.Render(), "FIFO") {
		t.Error("render missing columns")
	}
}
