package experiments

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
	"ibsim/internal/vm"
)

// ---------------------------------------------------- CML vs associativity

// CMLResult measures the claim the paper makes when discussing Figure 5:
// "on-chip, associative L2 caches offer an attractive alternative to the
// recently-proposed cache miss lookaside (CML) buffers, which detect and
// remove conflict misses only after they begin to affect performance."
// All four contenders run on the same physically-indexed reference stream
// with random page allocation.
type CMLResult struct {
	Workload string
	SizeKB   int
	// MPI per 100 instructions for each contender.
	RandomDM   float64 // unmanaged random mapping, direct-mapped
	CMLDM      float64 // random mapping + CML recoloring, direct-mapped
	Random2Way float64 // unmanaged random mapping, 2-way
	ColoredDM  float64 // page-coloring allocation, direct-mapped
	CMLRemaps  int     // recoloring interrupts the CML generated
}

// ExtensionCML runs the comparison on verilog in a 64-KB cache.
func ExtensionCML(opt Options) (*CMLResult, error) {
	opt = opt.withDefaults()
	const sizeKB = 64
	colors := sizeKB * 1024 / 4096
	p, err := synth.Lookup("verilog")
	if err != nil {
		return nil, err
	}
	refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
	if err != nil {
		return nil, err
	}
	res := &CMLResult{Workload: p.Name, SizeKB: sizeKB}

	mpiWith := func(translate func(trace.Ref) uint64, cfg cache.Config, onMiss func(pa uint64, r trace.Ref)) float64 {
		c := cache.MustNew(cfg)
		for _, r := range refs {
			pa := translate(r)
			if !c.Access(pa) && onMiss != nil {
				onMiss(pa, r)
			}
		}
		st := c.Stats()
		return 100 * float64(st.Misses) / float64(st.Accesses)
	}
	dm := cache.Config{Size: sizeKB * 1024, LineSize: 32, Assoc: 1}
	twoWay := dm
	twoWay.Assoc = 2

	randomMapper := vm.MustNewMapper(vm.Config{Policy: vm.RandomAlloc, Seed: p.Seed})
	res.RandomDM = mpiWith(func(r trace.Ref) uint64 {
		return randomMapper.Translate(r.Addr, r.Domain)
	}, dm, nil)

	cmlMapper := vm.MustNewMapper(vm.Config{Policy: vm.RandomAlloc, Seed: p.Seed})
	cml, err := vm.NewCML(cmlMapper, colors, 64, 200_000)
	if err != nil {
		return nil, err
	}
	res.CMLDM = mpiWith(func(r trace.Ref) uint64 {
		return cml.Translate(r.Addr, r.Domain)
	}, dm, func(pa uint64, r trace.Ref) {
		cml.ObserveMiss(pa, r.Addr, r.Domain)
	})
	res.CMLRemaps = cml.Remaps

	assocMapper := vm.MustNewMapper(vm.Config{Policy: vm.RandomAlloc, Seed: p.Seed})
	res.Random2Way = mpiWith(func(r trace.Ref) uint64 {
		return assocMapper.Translate(r.Addr, r.Domain)
	}, twoWay, nil)

	coloredMapper := vm.MustNewMapper(vm.Config{Policy: vm.PageColoring, Colors: colors, Seed: p.Seed})
	res.ColoredDM = mpiWith(func(r trace.Ref) uint64 {
		return coloredMapper.Translate(r.Addr, r.Domain)
	}, dm, nil)
	return res, nil
}

// Render prints the comparison.
func (r *CMLResult) Render() string {
	header := []string{"Configuration", "MPI (per 100)"}
	rows := [][]string{
		{"random pages, direct-mapped (unmanaged)", f2(r.RandomDM)},
		{fmt.Sprintf("random pages + CML recoloring (%d remaps)", r.CMLRemaps), f2(r.CMLDM)},
		{"page-coloring allocation, direct-mapped", f2(r.ColoredDM)},
		{"random pages, 2-way associative", f2(r.Random2Way)},
	}
	title := fmt.Sprintf("Extension: CML buffers vs associativity (%s, %d-KB physically-indexed)", r.Workload, r.SizeKB)
	return renderTable(title, header, rows)
}

// ---------------------------------------------------- Unified L2 interference

// UnifiedL2Result quantifies the caveat the paper attaches to all of
// Section 5: "because an L2 cache is likely to be shared by both
// instructions and data, our results represent a lower bound relative to an
// actual system." It measures the instruction-side L2 contribution with and
// without data references competing for the same L2.
type UnifiedL2Result struct {
	// InstrOnly is the L2 instruction-miss CPI with an instruction-only L2
	// (the paper's idealization).
	InstrOnly float64
	// Unified is the L2 instruction-miss CPI when data references share
	// the L2.
	Unified float64
}

// ExtensionUnifiedL2 measures both on the IBS suite (64-KB 8-way L2,
// economy memory).
func ExtensionUnifiedL2(opt Options) (*UnifiedL2Result, error) {
	opt = opt.withDefaults()
	l2cfg := cache.Config{Size: 64 * 1024, LineSize: 64, Assoc: 8}
	mem := memsys.Economy().Memory
	res := &UnifiedL2Result{}
	profiles := ibsProfiles()
	// Full traces including data references, so the unified case has
	// something to interfere with.
	for _, p := range profiles {
		refs, err := synth.Trace(p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, err
		}
		// Instruction-only L2.
		ionly := cache.MustNew(l2cfg)
		var instr, iMissIOnly int64
		for _, r := range refs {
			if r.Kind != trace.IFetch {
				continue
			}
			instr++
			if !ionly.Access(r.Addr) {
				iMissIOnly++
			}
		}
		// Unified L2: data references access (and displace) the same cache.
		unified := cache.MustNew(l2cfg)
		var iMissUnified int64
		for _, r := range refs {
			hit := unified.Access(r.Addr)
			if r.Kind == trace.IFetch && !hit {
				iMissUnified++
			}
		}
		fill := float64(mem.FillCycles(l2cfg.LineSize))
		res.InstrOnly += fill * float64(iMissIOnly) / float64(instr) / float64(len(profiles))
		res.Unified += fill * float64(iMissUnified) / float64(instr) / float64(len(profiles))
	}
	return res, nil
}

// Render prints the comparison.
func (r *UnifiedL2Result) Render() string {
	header := []string{"L2 organization", "Instruction-side L2 CPIinstr"}
	growth := 0.0
	if r.InstrOnly > 0 {
		growth = (r.Unified - r.InstrOnly) / r.InstrOnly
	}
	rows := [][]string{
		{"instruction-only L2 (the paper's idealization)", f3(r.InstrOnly)},
		{fmt.Sprintf("unified L2 with data interference (+%.0f%%)", 100*growth), f3(r.Unified)},
	}
	return renderTable("Extension: unified-L2 data interference (IBS average, 64-KB 8-way, economy memory)", header, rows)
}

// ---------------------------------------------------- Assoc latency penalty

// AssocLatencyResult reproduces the paper's Section 5.1 footnote: "The
// additional delay due to the associative lookup will increase the access
// time to the L2 cache, possibly increasing the L1-L2 latency by 1 full
// cycle. This would increase the L1 contribution to CPIinstr from 0.34 to
// 0.38." Does associativity still win after paying that cycle?
type AssocLatencyResult struct {
	// L1FreeLookup and L1PenalizedLookup are the L1 contributions with 6-
	// and 7-cycle L2 latencies.
	L1FreeLookup      float64
	L1PenalizedLookup float64
	// L2Direct and L2EightWay are the 64-KB L2 contributions (economy).
	L2Direct   float64
	L2EightWay float64
}

// ExtensionAssocLatency computes both sides of the trade.
func ExtensionAssocLatency(opt Options) (*AssocLatencyResult, error) {
	opt = opt.withDefaults()
	res := &AssocLatencyResult{}
	profiles := ibsProfiles()
	var err error
	if res.L1FreeLookup, err = l1CPI(profiles, BaseL1(), memsys.Transfer{Latency: 6, BytesPerCycle: 16}, opt); err != nil {
		return nil, err
	}
	if res.L1PenalizedLookup, err = l1CPI(profiles, BaseL1(), memsys.Transfer{Latency: 7, BytesPerCycle: 16}, opt); err != nil {
		return nil, err
	}
	mem := memsys.Economy().Memory
	if res.L2Direct, err = l2CPI(profiles, cache.Config{Size: 64 * 1024, LineSize: 64, Assoc: 1}, mem, opt); err != nil {
		return nil, err
	}
	if res.L2EightWay, err = l2CPI(profiles, cache.Config{Size: 64 * 1024, LineSize: 64, Assoc: 8}, mem, opt); err != nil {
		return nil, err
	}
	return res, nil
}

// Worthwhile reports whether the associative L2 wins even after the extra
// lookup cycle.
func (r *AssocLatencyResult) Worthwhile() bool {
	direct := r.L1FreeLookup + r.L2Direct
	assoc := r.L1PenalizedLookup + r.L2EightWay
	return assoc < direct
}

// Render prints the trade.
func (r *AssocLatencyResult) Render() string {
	header := []string{"Configuration", "L1 CPI", "L2 CPI", "Total"}
	rows := [][]string{
		{"direct-mapped L2, 6-cycle lookup", f2(r.L1FreeLookup), f2(r.L2Direct), f2(r.L1FreeLookup + r.L2Direct)},
		{"8-way L2, +1 cycle lookup penalty", f2(r.L1PenalizedLookup), f2(r.L2EightWay), f2(r.L1PenalizedLookup + r.L2EightWay)},
	}
	verdict := "associativity still wins"
	if !r.Worthwhile() {
		verdict = "the extra cycle erases the benefit"
	}
	return renderTable("Extension: L2 associativity vs lookup-latency penalty (Section 5.1 footnote) — "+verdict, header, rows)
}

// ---------------------------------------------------- Domain-interleaving cost

// InterleaveRow is one residency scale's MPI.
type InterleaveRow struct {
	// Scale multiplies every domain's MeanResidency.
	Scale float64
	MPI   float64 // per 100 instructions
}

// InterleaveResult sweeps how often control crosses protection domains —
// the structural knob that separates Mach from Ultrix and the mechanism
// behind Mogul & Borg's context-switch cache costs (both cited). Finer
// interleaving (smaller scale) destroys more locality.
type InterleaveResult struct {
	Workload string
	Rows     []InterleaveRow
}

// ExtensionInterleave sweeps residency scales on gs.
func ExtensionInterleave(opt Options) (*InterleaveResult, error) {
	opt = opt.withDefaults()
	base, err := synth.Lookup("gs")
	if err != nil {
		return nil, err
	}
	res := &InterleaveResult{Workload: base.Name}
	for _, scale := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		p := base
		for d := range p.Domains {
			if p.Domains[d].TimeShare > 0 {
				p.Domains[d].MeanResidency *= scale
			}
		}
		refs, err := synth.InstrTrace(p, opt.Seed, opt.Instructions)
		if err != nil {
			return nil, err
		}
		c := cache.MustNew(BaseL1())
		for _, r := range refs {
			c.Access(r.Addr)
		}
		st := c.Stats()
		res.Rows = append(res.Rows, InterleaveRow{
			Scale: scale,
			MPI:   100 * float64(st.Misses) / float64(st.Accesses),
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *InterleaveResult) Render() string {
	header := []string{"Residency scale", "MPI (per 100)"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("%.2fx", row.Scale), f2(row.MPI)})
	}
	title := fmt.Sprintf("Extension: domain-interleaving cost (%s, 8-KB DM; smaller scale = more IPC crossings)", r.Workload)
	return renderTable(title, header, rows)
}

// ---------------------------------------------------- Non-sequential prefetch

// PredictRow is one predictor configuration's result.
type PredictRow struct {
	// TableEntries sizes the next-line predictor (0 = the sequential
	// baseline, a 1-way topping-up stream buffer).
	TableEntries int
	CPI          float64
	MPI          float64 // per 100 instructions
}

// PredictResult evaluates non-sequential prefetching — THE future work the
// paper's conclusion names ("This study did not consider more aggressive
// (non-sequential) prefetching schemes... we hope to encourage the
// exploration of these more sophisticated hardware mechanisms on demanding
// workloads"). A next-line-predictor-driven prefetch stream is compared
// against the sequential stream at the same depth.
//
// The result on OUR workloads is an honest negative: the predictor loses a
// few hundredths of CPI to the sequential stream, because the synthetic
// generator deliberately randomizes control-transfer targets (loop spans,
// far-jump offsets, call targets are fresh draws per visit), leaving a
// history-based predictor nothing stable to learn while its mispredictions
// displace useful sequential prefetches. Real programs repeat their branch
// targets — which is exactly why the paper closes by releasing its traces
// "to encourage the exploration of these more sophisticated hardware
// mechanisms on demanding workloads". The engine itself demonstrably wins
// when targets are stable (see fetch.TestPredictLearnsBranchTarget); the
// bound here is a property of the workload substitution, and is recorded as
// such in EXPERIMENTS.md.
type PredictResult struct {
	Rows []PredictRow
}

// ExtensionPredict sweeps predictor table sizes at depth 6, 16 B/cycle.
func ExtensionPredict(opt Options) (*PredictResult, error) {
	opt = opt.withDefaults()
	link := memsys.L1L2Link()
	res := &PredictResult{}
	// Sequential baseline: 1-way multi-stream (tops up like the predictor).
	seqCPI, seqMPI, err := suiteMeanEngineCPI(ibsProfiles(), opt, func() (fetch.Engine, error) {
		return fetch.NewMultiStream(baseL1WithLine(16), link, 1, 6)
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, PredictRow{TableEntries: 0, CPI: seqCPI, MPI: 100 * seqMPI})
	for _, entries := range []int{1024, 4096, 16384} {
		cpi, mpi, err := suiteMeanEngineCPI(ibsProfiles(), opt, func() (fetch.Engine, error) {
			return fetch.NewPredict(baseL1WithLine(16), link, 6, entries)
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, PredictRow{TableEntries: entries, CPI: cpi, MPI: 100 * mpi})
	}
	return res, nil
}

// Render prints the sweep.
func (r *PredictResult) Render() string {
	header := []string{"Prefetch guidance", "L1 CPIinstr", "MPI (per 100)"}
	var rows [][]string
	for _, row := range r.Rows {
		label := "sequential (1-way stream, top-up)"
		if row.TableEntries > 0 {
			label = fmt.Sprintf("next-line predictor, %d entries", row.TableEntries)
		}
		rows = append(rows, []string{label, f3(row.CPI), f2(row.MPI)})
	}
	return renderTable("Extension: non-sequential prefetching (the paper's named future work; depth 6, 16 B/cycle)", header, rows)
}
