package experiments

import (
	"testing"

	"ibsim/internal/cache"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// TestMapTracesMatchesSerial is the differential property test for the
// parallel suite runners: mapTraces with the default (parallel) executor
// must return results in profile order, bit-identical to the Serial
// reference path. Run under -race to additionally certify the executor is
// data-race free (make race).
func TestMapTracesMatchesSerial(t *testing.T) {
	profiles := ibsProfiles()
	opt := Options{Instructions: 40_000}
	worker := func(p synth.Profile, refs []trace.Ref) ([2]interface{}, error) {
		c := cache.MustNew(cache.Config{Size: 8192, LineSize: 32, Assoc: 1})
		for _, r := range refs {
			c.Access(r.Addr)
		}
		return [2]interface{}{p.Name, c.Stats()}, nil
	}

	serialOpt := opt
	serialOpt.Serial = true
	want, err := mapTraces(profiles, serialOpt, worker)
	if err != nil {
		t.Fatalf("serial mapTraces: %v", err)
	}
	for trial := 0; trial < 3; trial++ {
		got, err := mapTraces(profiles, opt, worker)
		if err != nil {
			t.Fatalf("parallel mapTraces: %v", err)
		}
		if len(got) != len(profiles) {
			t.Fatalf("got %d results for %d profiles", len(got), len(profiles))
		}
		for i := range got {
			if got[i][0] != profiles[i].Name {
				t.Fatalf("trial %d: result %d is for %v, want profile order (%s)",
					trial, i, got[i][0], profiles[i].Name)
			}
			if got[i] != want[i] {
				t.Fatalf("trial %d: parallel result for %s = %+v, serial = %+v",
					trial, profiles[i].Name, got[i], want[i])
			}
		}
	}
}

// TestMapProfilesMatchesSerial covers the self-generating runner the
// whole-system experiments use.
func TestMapProfilesMatchesSerial(t *testing.T) {
	profiles := specProfiles()
	opt := Options{Instructions: 20_000}
	worker := func(p synth.Profile) (Table1Row, error) {
		return decstationRow(p, opt)
	}

	serialOpt := opt
	serialOpt.Serial = true
	want, err := mapProfiles(profiles, serialOpt, worker)
	if err != nil {
		t.Fatalf("serial mapProfiles: %v", err)
	}
	got, err := mapProfiles(profiles, opt, worker)
	if err != nil {
		t.Fatalf("parallel mapProfiles: %v", err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("parallel row for %s = %+v, serial = %+v", profiles[i].Name, got[i], want[i])
		}
	}
}

// TestSerialOptionExperiments runs a full exhibit both ways: the rendered
// output (the exact bytes cmd/ibstables would print) must match.
func TestSerialOptionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full-exhibit differential is covered by internal/check in short mode")
	}
	opt := Options{Instructions: 60_000}
	par, err := Table4(opt)
	if err != nil {
		t.Fatalf("parallel Table4: %v", err)
	}
	serialOpt := opt
	serialOpt.Serial = true
	ser, err := Table4(serialOpt)
	if err != nil {
		t.Fatalf("serial Table4: %v", err)
	}
	if par.Render() != ser.Render() {
		t.Fatalf("Table4 parallel render differs from serial:\n--- parallel\n%s\n--- serial\n%s",
			par.Render(), ser.Render())
	}
}
