package experiments

import (
	"fmt"

	"ibsim/internal/cache"
	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
	"ibsim/internal/synth"
	"ibsim/internal/trace"
)

// SPECContrastResult reproduces the paper's closing counterfactual ("Our
// conclusions would be very different if we had used the SPEC benchmark
// suite"): the same Section 5 design process driven by SPEC92 instead of
// IBS. The paper reports, for SPEC: an optimal on-chip L2 line size of (at
// least) 256 bytes, associativity buying a mere 0.026 CPIinstr, an optimal
// L2 configuration totaling only 0.083 CPIinstr, and an optimal 8-KB L1
// line size of 128 bytes at 16 bytes/cycle — double the IBS optimum.
type SPECContrastResult struct {
	// OptimalL2Line is the best L2 line size for SPEC (64-KB L2, economy).
	OptimalL2Line int
	// AssocGain is the CPIinstr reduction from direct-mapped to 8-way at
	// the optimal line size (the paper: "a mere 0.026").
	AssocGain float64
	// BestTotal is the total CPIinstr of the optimized L2 configuration
	// before any L1–L2 interface work (the paper: 0.083).
	BestTotal float64
	// OptimalL1Line is the best 8-KB L1 line size at 16 B/cycle for SPEC
	// (the paper: 128 bytes); IBSOptimalL1Line is the IBS counterpart.
	OptimalL1Line    int
	IBSOptimalL1Line int
}

// SPECContrast runs the counterfactual.
func SPECContrast(opt Options) (*SPECContrastResult, error) {
	opt = opt.withDefaults()
	res := &SPECContrastResult{}
	spec := specProfiles()
	mem := memsys.Economy().Memory

	// L2 line-size sweep, 64-KB direct-mapped, SPEC.
	lines := []int{32, 64, 128, 256, 512}
	bestLineCPI := -1.0
	for _, line := range lines {
		cpi, err := l2CPI(spec, cache.Config{Size: 64 * 1024, LineSize: line, Assoc: 1}, mem, opt)
		if err != nil {
			return nil, err
		}
		if bestLineCPI < 0 || cpi < bestLineCPI {
			bestLineCPI = cpi
			res.OptimalL2Line = line
		}
	}
	// Associativity gain at the optimal line size.
	dm := bestLineCPI
	eight, err := l2CPI(spec, cache.Config{Size: 64 * 1024, LineSize: res.OptimalL2Line, Assoc: 8}, mem, opt)
	if err != nil {
		return nil, err
	}
	res.AssocGain = dm - eight

	// Best total: L1 (behind the on-chip link) + optimized L2.
	l1, err := l1CPI(spec, BaseL1(), memsys.L1L2Link(), opt)
	if err != nil {
		return nil, err
	}
	res.BestTotal = l1 + eight

	// Optimal L1 line sizes at 16 B/cycle for both suites.
	optimalL1 := func(profiles []synth.Profile) (int, error) {
		best, bestCPI := 0, -1.0
		for _, line := range []int{16, 32, 64, 128, 256} {
			cpi, _, err := suiteMeanEngineCPI(profiles, opt, func() (fetch.Engine, error) {
				return fetch.NewBlocking(baseL1WithLine(line), memsys.L1L2Link(), 0)
			})
			if err != nil {
				return 0, err
			}
			if bestCPI < 0 || cpi < bestCPI {
				best, bestCPI = line, cpi
			}
		}
		return best, nil
	}
	if res.OptimalL1Line, err = optimalL1(spec); err != nil {
		return nil, err
	}
	if res.IBSOptimalL1Line, err = optimalL1(ibsProfiles()); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the counterfactual summary.
func (r *SPECContrastResult) Render() string {
	header := []string{"Design decision (driven by SPEC92)", "Paper", "Measured"}
	rows := [][]string{
		{"optimal on-chip L2 line size", "≥256 B", fmt.Sprintf("%d B", r.OptimalL2Line)},
		{"CPIinstr gained by 8-way L2 associativity", "0.026", f3(r.AssocGain)},
		{"total CPIinstr of the optimized L2 config", "0.083", f3(r.BestTotal)},
		{"optimal 8-KB L1 line at 16 B/cycle (SPEC)", "128 B", fmt.Sprintf("%d B", r.OptimalL1Line)},
		{"optimal 8-KB L1 line at 16 B/cycle (IBS)", "64 B", fmt.Sprintf("%d B", r.IBSOptimalL1Line)},
	}
	return renderTable("SPEC counterfactual: the design SPEC92 would have led to (paper §5 summary)", header, rows)
}

// ---------------------------------------------------- Dual-ported cache

// DualPortResult reproduces the Figure 6 aside: "low-bandwidth systems can
// achieve similar performance improvements by implementing a dual-ported
// cache. The dual-ported cache allows the processor to continue execution as
// soon as the missing instruction is returned from memory, hiding fill costs
// and reducing the effective latency." A dual-ported cache at 4 B/cycle is
// our Bypass engine with no prefetch; the comparison is against simply
// buying more bandwidth.
type DualPortResult struct {
	// Blocking4 is the stall-until-refilled CPI at 4 B/cycle.
	Blocking4 float64
	// DualPort4 is the bypass (resume-on-word) CPI at 4 B/cycle.
	DualPort4 float64
	// Blocking16 is the plain CPI at 16 B/cycle — what the extra bandwidth
	// would have bought instead.
	Blocking16 float64
}

// ExtensionDualPort measures all three on the IBS suite (8-KB DM, 32-B
// line, 6-cycle latency).
func ExtensionDualPort(opt Options) (*DualPortResult, error) {
	opt = opt.withDefaults()
	res := &DualPortResult{}
	profiles := ibsProfiles()
	slow := memsys.Transfer{Latency: 6, BytesPerCycle: 4}
	fast := memsys.Transfer{Latency: 6, BytesPerCycle: 16}
	var err error
	if res.Blocking4, _, err = suiteMeanEngineCPI(profiles, opt, func() (fetch.Engine, error) {
		return fetch.NewBlocking(BaseL1(), slow, 0)
	}); err != nil {
		return nil, err
	}
	if res.DualPort4, _, err = suiteMeanEngineCPI(profiles, opt, func() (fetch.Engine, error) {
		return fetch.NewBypass(BaseL1(), slow, 0)
	}); err != nil {
		return nil, err
	}
	if res.Blocking16, _, err = suiteMeanEngineCPI(profiles, opt, func() (fetch.Engine, error) {
		return fetch.NewBlocking(BaseL1(), fast, 0)
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the comparison.
func (r *DualPortResult) Render() string {
	header := []string{"Configuration", "L1 CPIinstr"}
	rows := [][]string{
		{"4 B/cycle, stall until refilled", f3(r.Blocking4)},
		{"4 B/cycle, dual-ported (resume on missing word)", f3(r.DualPort4)},
		{"16 B/cycle, stall until refilled (4x the bandwidth)", f3(r.Blocking16)},
	}
	return renderTable("Extension: dual-ported cache vs raw bandwidth (Figure 6 aside)", header, rows)
}

// ---------------------------------------------------- Write-buffer depth

// WriteBufferRow is one depth's CPIwrite.
type WriteBufferRow struct {
	Depth    int
	CPIwrite float64
}

// WriteBufferResult sweeps the DECstation's write-buffer depth — the CPU
// component of Table 1's CPIwrite. The 3100 shipped with 4 entries; this
// ablation shows what deeper buffering would have bought.
type WriteBufferResult struct {
	Workload string
	Rows     []WriteBufferRow
}

// AblationWriteBuffer sweeps depths on specint89 (the suite with the
// paper's clearest CPIwrite).
func AblationWriteBuffer(opt Options) (*WriteBufferResult, error) {
	opt = opt.withDefaults()
	p, err := synth.Lookup("specint89")
	if err != nil {
		return nil, err
	}
	res := &WriteBufferResult{Workload: p.Name}
	for _, depth := range []int{1, 2, 4, 8, 16} {
		c, err := writeCPIAtDepth(p, depth, opt)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, WriteBufferRow{Depth: depth, CPIwrite: c})
	}
	return res, nil
}

// writeCPIAtDepth runs the DECstation model with a modified buffer depth.
// The cpi.System hardwires the machine constants, so the write buffer is
// re-simulated here on the same reference stream with the same service
// model.
func writeCPIAtDepth(p synth.Profile, depth int, opt Options) (float64, error) {
	g, err := synth.NewGenerator(p, opt.Seed)
	if err != nil {
		return 0, err
	}
	const writeCycles = 6
	var wb []int64
	var lastEnd, stall, instr int64
	now := func() int64 { return instr + stall }
	for instr < opt.Instructions {
		r, _ := g.Next()
		switch r.Kind {
		case trace.IFetch:
			instr++
		case trace.DWrite:
			t := now()
			for len(wb) > 0 && wb[0] <= t {
				wb = wb[1:]
			}
			if len(wb) >= depth {
				stall += wb[0] - t
				t = wb[0]
				wb = wb[1:]
			}
			start := t
			if lastEnd > start {
				start = lastEnd
			}
			lastEnd = start + writeCycles
			wb = append(wb, lastEnd)
		}
	}
	return float64(stall) / float64(instr), nil
}

// Render prints the sweep.
func (r *WriteBufferResult) Render() string {
	header := []string{"Write-buffer depth", "CPIwrite"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d entries", row.Depth), f3(row.CPIwrite)})
	}
	title := fmt.Sprintf("Ablation: write-buffer depth (%s; the DECstation 3100 shipped 4 entries)", r.Workload)
	return renderTable(title, header, rows)
}
