package experiments

import (
	"strings"
	"testing"
)

// testOpt keeps integration runs quick; shape assertions below are robust at
// this scale (they check orderings, not absolute values).
var testOpt = Options{Instructions: 300_000, Trials: 3}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Suite] = r
		if r.UserShare < 0.9 {
			t.Errorf("%s user share %.2f — SPEC should be >90%% user", r.Suite, r.UserShare)
		}
		if r.Components.Total() <= 0 {
			t.Errorf("%s zero total CPI", r.Suite)
		}
	}
	// fp suites are dominated by data misses; int suites are not.
	if byName["specfp89"].Components.Data < 2*byName["specint89"].Components.Data {
		t.Errorf("fp89 CPIdata (%.3f) not well above int89 (%.3f)",
			byName["specfp89"].Components.Data, byName["specint89"].Components.Data)
	}
	if !strings.Contains(res.Render(), "specfp92") {
		t.Error("render missing rows")
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	mach, ultrix, int92 := res.Rows[0], res.Rows[1], res.Rows[2]
	if mach.Instr <= ultrix.Instr {
		t.Errorf("Mach CPIinstr (%.3f) not above Ultrix (%.3f)", mach.Instr, ultrix.Instr)
	}
	if ultrix.Instr <= int92.Instr {
		t.Errorf("IBS CPIinstr (%.3f) not above SPEC (%.3f)", ultrix.Instr, int92.Instr)
	}
	if mach.OSShare <= int92.OSShare {
		t.Errorf("IBS OS share (%.2f) not above SPEC (%.2f)", mach.OSShare, int92.OSShare)
	}
	if !strings.Contains(res.Render(), "IBS (Mach 3.0)") {
		t.Error("render missing suite")
	}
}

func TestTable4Shape(t *testing.T) {
	res, err := Table4(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Headline claims: IBS/Mach ≈ 4x SPEC; Mach > Ultrix; groff > nroff.
	if res.MachAvg < 2.5*res.SPECAvg {
		t.Errorf("Mach avg %.2f not ≫ SPEC avg %.2f", res.MachAvg, res.SPECAvg)
	}
	if res.MachAvg <= res.UltrixAvg {
		t.Errorf("Mach avg %.2f not above Ultrix avg %.2f", res.MachAvg, res.UltrixAvg)
	}
	var nroff, groff float64
	for _, r := range res.Rows {
		switch r.Workload {
		case "nroff":
			nroff = r.MPI
		case "groff":
			groff = r.MPI
		}
	}
	if groff <= 1.2*nroff {
		t.Errorf("groff MPI %.2f not well above nroff %.2f (C++ penalty)", groff, nroff)
	}
	// Component shares match the paper's Table 4 (deficit scheduling).
	for _, r := range res.Rows {
		if r.Workload == "mpeg_play" {
			if r.User < 0.37 || r.User > 0.43 {
				t.Errorf("mpeg_play user share %.2f, want ~0.40", r.User)
			}
		}
	}
	if !strings.Contains(res.Render(), "Average") {
		t.Error("render missing averages")
	}
}

func TestTable5Shape(t *testing.T) {
	res, err := Table5(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// IBS pays far more than SPEC in both configurations; economy is worse
	// than high-performance for everyone.
	if res.EconomyIBS < 2*res.EconomySPEC {
		t.Errorf("economy IBS %.2f not ≫ SPEC %.2f", res.EconomyIBS, res.EconomySPEC)
	}
	if res.EconomyIBS <= res.HighPerfIBS {
		t.Errorf("economy %.2f not worse than high-perf %.2f", res.EconomyIBS, res.HighPerfIBS)
	}
	if res.HighPerfSPEC <= 0 {
		t.Error("zero CPI")
	}
	if !strings.Contains(res.Render(), "Main Memory") {
		t.Error("render missing parameters")
	}
}

func TestTable6Shape(t *testing.T) {
	res, err := Table6(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Grid
	// Grid is depths {0..3} × lines {16,32,64}.
	if len(g.CPI) != 4 || len(g.CPI[0]) != 3 {
		t.Fatalf("grid shape %dx%d", len(g.CPI), len(g.CPI[0]))
	}
	// Prefetching 16-byte lines monotonically helps (the paper's column).
	for d := 1; d < 4; d++ {
		if g.CPI[d][0] >= g.CPI[d-1][0] {
			t.Errorf("16B prefetch depth %d (%.3f) not below depth %d (%.3f)",
				d, g.CPI[d][0], d-1, g.CPI[d-1][0])
		}
	}
	// The paper's headline: 16B line + 3 prefetches beats a 64B line.
	if g.CPI[3][0] >= g.CPI[0][2] {
		t.Errorf("(16B, N=3) %.3f not below (64B, N=0) %.3f", g.CPI[3][0], g.CPI[0][2])
	}
	if !strings.Contains(res.Render(), "—") {
		t.Error("render missing em-dash cells")
	}
}

func TestTable7Shape(t *testing.T) {
	res, err := Table7(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Bypassing helps at every populated cell with larger lines.
	for d := 0; d < 4; d++ {
		for l := 1; l < 3; l++ { // 32B and 64B columns
			if res.Bypass.CPI[d][l] >= res.NoBypass.CPI[d][l] {
				t.Errorf("bypass cell d=%d l=%d (%.3f) not below no-bypass (%.3f)",
					d, l, res.Bypass.CPI[d][l], res.NoBypass.CPI[d][l])
			}
		}
	}
	if !strings.Contains(res.Render(), "Table 7b") {
		t.Error("render missing bypass panel")
	}
}

func TestTable8Shape(t *testing.T) {
	res, err := Table8(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Deeper stream buffers monotonically help at both bandwidths, with
	// most of the gain by 6 lines (the paper's observation).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].CPI16 >= res.Rows[i-1].CPI16 {
			t.Errorf("16B/cyc depth %d (%.3f) not below depth %d (%.3f)",
				res.Rows[i].Lines, res.Rows[i].CPI16, res.Rows[i-1].Lines, res.Rows[i-1].CPI16)
		}
		if res.Rows[i].CPI32 >= res.Rows[i-1].CPI32 {
			t.Errorf("32B/cyc depth %d not below previous", res.Rows[i].Lines)
		}
	}
	gainAt6 := res.Rows[0].CPI16 - res.Rows[3].CPI16
	gainTotal := res.Rows[0].CPI16 - res.Rows[5].CPI16
	if gainAt6 < 0.7*gainTotal {
		t.Errorf("gain by 6 lines (%.3f) not the bulk of total gain (%.3f)", gainAt6, gainTotal)
	}
	if !strings.Contains(res.Render(), "Stream Buffer") {
		t.Error("render missing title")
	}
}

func TestFigure1Shape(t *testing.T) {
	res, err := Figure1(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SPEC) != 6 || len(res.IBS) != 6 {
		t.Fatalf("series lengths %d/%d", len(res.SPEC), len(res.IBS))
	}
	for i := range res.IBS {
		if res.IBS[i].Total < res.SPEC[i].Total {
			t.Errorf("IBS MPI (%.2f) below SPEC (%.2f) at %dKB", res.IBS[i].Total, res.SPEC[i].Total, res.IBS[i].SizeKB)
		}
		// Components sum to total.
		sum := res.IBS[i].Capacity + res.IBS[i].Conflict + res.IBS[i].Compulsory
		if diff := sum - res.IBS[i].Total; diff > 0.01 || diff < -0.01 {
			t.Errorf("components (%.2f) != total (%.2f) at %dKB", sum, res.IBS[i].Total, res.IBS[i].SizeKB)
		}
	}
	// Monotone decline with size for IBS.
	for i := 1; i < len(res.IBS); i++ {
		if res.IBS[i].Total > res.IBS[i-1].Total {
			t.Errorf("IBS MPI not declining at %dKB", res.IBS[i].SizeKB)
		}
	}
	if !strings.Contains(res.Render(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := Figure3(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Economy) != 30 || len(res.HighPerf) != 30 {
		t.Fatalf("points = %d/%d", len(res.Economy), len(res.HighPerf))
	}
	// Bigger L2 at fixed line size lowers total CPI (economy).
	get := func(pts []Figure3Point, kb, line int) Figure3Point {
		for _, p := range pts {
			if p.L2SizeKB == kb && p.L2LineSize == line {
				return p
			}
		}
		t.Fatalf("missing point %d/%d", kb, line)
		return Figure3Point{}
	}
	if get(res.Economy, 256, 64).Total() >= get(res.Economy, 16, 64).Total() {
		t.Error("256KB L2 not better than 16KB L2 (economy)")
	}
	// The paper's claim: a 64-KB on-chip L2 with economy memory roughly
	// matches the high-performance baseline (we allow 15% at reduced trace
	// lengths — our synthetic L2 miss tail is slightly fatter than the
	// paper's, see EXPERIMENTS.md).
	if get(res.Economy, 64, 64).Total() >= 1.15*res.HighPerfBase {
		t.Errorf("economy+64KB L2 (%.2f) not near high-perf baseline (%.2f)",
			get(res.Economy, 64, 64).Total(), res.HighPerfBase)
	}
	if !strings.Contains(res.Render(), "economy") {
		t.Error("render missing panel")
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := Figure4(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Economy) != 4 {
		t.Fatalf("points = %d", len(res.Economy))
	}
	// Associativity monotonically helps, biggest step 1→2 (economy).
	for i := 1; i < 4; i++ {
		if res.Economy[i].L2CPI >= res.Economy[i-1].L2CPI {
			t.Errorf("economy L2 CPI not falling at assoc %d", res.Economy[i].Assoc)
		}
	}
	step12 := res.Economy[0].L2CPI - res.Economy[1].L2CPI
	step28 := res.Economy[1].L2CPI - res.Economy[3].L2CPI
	if step12 <= 0 || step28 < 0 {
		t.Error("associativity steps not positive")
	}
	if !strings.Contains(res.Render(), "8-way") {
		t.Error("render missing rows")
	}
}

func TestFigure5Shape(t *testing.T) {
	res, err := Figure5(Options{Instructions: 150_000, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × 9 sizes × 3 assocs.
	if len(res.Points) != 4*9*3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Variability exists somewhere for the IBS workloads, and associativity
	// reduces the per-workload maximum (the paper's point).
	maxSD := func(workload string, assoc int) float64 {
		m := 0.0
		for _, p := range res.Points {
			if p.Workload == workload && p.Assoc == assoc && p.StdDev > m {
				m = p.StdDev
			}
		}
		return m
	}
	for _, w := range []string{"verilog", "gs"} {
		if maxSD(w, 1) <= 0 {
			t.Errorf("%s shows no direct-mapped variability", w)
		}
		if maxSD(w, 4) >= maxSD(w, 1) {
			t.Errorf("%s: 4-way variability (%.4f) not below direct-mapped (%.4f)",
				w, maxSD(w, 4), maxSD(w, 1))
		}
	}
	if !strings.Contains(res.Render(), "verilog") {
		t.Error("render missing workload")
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := Figure6(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5*7 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Higher bandwidth shifts the optimal line size up (or keeps it equal).
	opt4, _ := res.Optimal(4)
	opt64, cpi64 := res.Optimal(64)
	if opt64 < opt4 {
		t.Errorf("optimal line at 64 B/cyc (%d) below optimal at 4 B/cyc (%d)", opt64, opt4)
	}
	_, cpi4 := res.Optimal(4)
	if cpi64 >= cpi4 {
		t.Errorf("64 B/cyc best CPI (%.3f) not below 4 B/cyc (%.3f)", cpi64, cpi4)
	}
	if !strings.Contains(res.Render(), "*") {
		t.Error("render missing optima markers")
	}
}

func TestFigure7Shape(t *testing.T) {
	res, err := Figure7(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Economy) != 6 || len(res.HighPerf) != 6 {
		t.Fatalf("rungs = %d/%d", len(res.Economy), len(res.HighPerf))
	}
	// The ladder monotonically improves for the economy configuration, and
	// the biggest single gain is adding the on-chip L2 (the paper's
	// "improvement is quite dramatic in the case of the economy system").
	for i := 1; i < 6; i++ {
		if res.Economy[i].Total() >= res.Economy[i-1].Total() {
			t.Errorf("economy rung %q (%.2f) not below %q (%.2f)",
				res.Economy[i].Name, res.Economy[i].Total(),
				res.Economy[i-1].Name, res.Economy[i-1].Total())
		}
	}
	l2gain := res.Economy[0].Total() - res.Economy[1].Total()
	for i := 2; i < 6; i++ {
		gain := res.Economy[i-1].Total() - res.Economy[i].Total()
		if gain > l2gain {
			t.Errorf("rung %q gain (%.2f) exceeds the L2 gain (%.2f)", res.Economy[i].Name, gain, l2gain)
		}
	}
	// Final high-performance system: a stubborn CPIinstr floor remains.
	final := res.HighPerf[5].Total()
	if final <= 0.02 {
		t.Errorf("final CPIinstr %.3f — the paper's point is a stubborn floor remains", final)
	}
	if !strings.Contains(res.Render(), "Pipelining") {
		t.Error("render missing rung")
	}
}

func TestDescriptive(t *testing.T) {
	t2 := Table2()
	for _, w := range []string{"mpeg_play", "groff", "Mach"} {
		if !strings.Contains(t2, w) {
			t.Errorf("Table2 missing %q", w)
		}
	}
	f2txt := Figure2()
	for _, w := range []string{"Kernel", "BSD", "Time Share"} {
		if !strings.Contains(f2txt, w) {
			t.Errorf("Figure2 missing %q", w)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Instructions != 2_000_000 || o.Trials != 5 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{Instructions: 5, Trials: 2}.withDefaults()
	if o2.Instructions != 5 || o2.Trials != 2 {
		t.Fatalf("overrides lost: %+v", o2)
	}
}

func TestRenderCharts(t *testing.T) {
	f1, err := Figure1(Options{Instructions: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	chart := f1.RenderChart()
	for _, want := range []string{"Figure 1 (IBS)", "legend", "#", "8 KB"} {
		if !strings.Contains(chart, want) {
			t.Errorf("Figure1 chart missing %q:\n%s", want, chart)
		}
	}
	// The 8-KB IBS bar must be the longest (MPI declines with size).
	lines := strings.Split(chart, "\n")
	var len8, len256 int
	inIBS := false
	for _, l := range lines {
		if strings.Contains(l, "(IBS)") {
			inIBS = true
		}
		if !inIBS {
			continue
		}
		if strings.HasPrefix(l, "8 KB") {
			len8 = strings.Count(l, "#") + strings.Count(l, "x") + strings.Count(l, ".")
		}
		if strings.HasPrefix(l, "256 KB") {
			len256 = strings.Count(l, "#") + strings.Count(l, "x") + strings.Count(l, ".")
		}
	}
	if len8 <= len256 {
		t.Errorf("IBS 8KB bar (%d glyphs) not longer than 256KB bar (%d)", len8, len256)
	}

	f7, err := Figure7(Options{Instructions: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	c7 := f7.RenderChart()
	for _, want := range []string{"Pipelining", "Baseline", "x L2 CPIinstr"} {
		if !strings.Contains(c7, want) {
			t.Errorf("Figure7 chart missing %q", want)
		}
	}
}
