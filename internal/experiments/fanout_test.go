package experiments

import (
	"testing"

	"ibsim/internal/fetch"
	"ibsim/internal/memsys"
)

// TestMapBanksMatchesPerConfig is the differential property test for the
// fan-out runner: mapBanks on the default path (memoized run-compacted
// trace, replay.Replay with bulk FetchRun and analytic dedup) must return
// Results bit-identical to the PerConfig reference path (one fetch.Run over
// the expanded trace per engine). The bank deliberately mixes dedup
// candidates (three blocking engines sharing BaseL1 behind different
// links), a prefetching engine, a sector cache, a bypass engine, and a
// stream buffer.
func TestMapBanksMatchesPerConfig(t *testing.T) {
	profiles := ibsProfiles()[:3]
	opt := Options{Instructions: 40_000}
	link := memsys.L1L2Link()
	mk := func() ([]fetch.Engine, error) {
		var engines []fetch.Engine
		for _, e := range []func() (fetch.Engine, error){
			func() (fetch.Engine, error) { return fetch.NewBlocking(BaseL1(), link, 0) },
			func() (fetch.Engine, error) { return fetch.NewBlocking(BaseL1(), memsys.Economy().Memory, 0) },
			func() (fetch.Engine, error) { return fetch.NewBlocking(BaseL1(), memsys.HighPerformance().Memory, 0) },
			func() (fetch.Engine, error) { return fetch.NewBlocking(baseL1WithLine(16), link, 3) },
			func() (fetch.Engine, error) {
				cfg := BaseL1()
				cfg.LineSize, cfg.SubBlock = 64, 16
				return fetch.NewBlocking(cfg, link, 0)
			},
			func() (fetch.Engine, error) { return fetch.NewBypass(baseL1WithLine(16), link, 3) },
			func() (fetch.Engine, error) { return fetch.NewStream(baseL1WithLine(16), link, 6) },
		} {
			eng, err := e()
			if err != nil {
				return nil, err
			}
			engines = append(engines, eng)
		}
		return engines, nil
	}

	refOpt := opt
	refOpt.PerConfig = true
	refOpt.Serial = true
	want, err := mapBanks(profiles, refOpt, mk)
	if err != nil {
		t.Fatalf("per-config mapBanks: %v", err)
	}
	got, err := mapBanks(profiles, opt, mk)
	if err != nil {
		t.Fatalf("fan-out mapBanks: %v", err)
	}
	for p := range want {
		for e := range want[p] {
			if got[p][e] != want[p][e] {
				t.Errorf("profile %s engine %d: fan-out %+v != per-config %+v",
					profiles[p].Name, e, got[p][e], want[p][e])
			}
		}
	}
}

// TestFanoutExperimentsRenderIdentical runs every bank-based exhibit both
// ways: the rendered output (the exact bytes cmd/ibstables would print)
// must match between the fan-out path and the PerConfig reference path.
// internal/check's differential/fanout-tables pins the same property at the
// pinned scale.
func TestFanoutExperimentsRenderIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-exhibit differential is covered by internal/check in short mode")
	}
	opt := Options{Instructions: 60_000}
	ref := Options{Instructions: 60_000, PerConfig: true, Serial: true}
	for _, e := range []struct {
		name string
		run  func(Options) (string, error)
	}{
		{"Table5", func(o Options) (string, error) {
			r, err := Table5(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Table6", func(o Options) (string, error) {
			r, err := Table6(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Table7", func(o Options) (string, error) {
			r, err := Table7(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Table8", func(o Options) (string, error) {
			r, err := Table8(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Figure6", func(o Options) (string, error) {
			r, err := Figure6(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Figure7", func(o Options) (string, error) {
			r, err := Figure7(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	} {
		got, err := e.run(opt)
		if err != nil {
			t.Fatalf("%s fan-out: %v", e.name, err)
		}
		want, err := e.run(ref)
		if err != nil {
			t.Fatalf("%s per-config: %v", e.name, err)
		}
		if got != want {
			t.Errorf("%s: fan-out render differs from per-config render\n--- fan-out ---\n%s--- per-config ---\n%s", e.name, got, want)
		}
	}
}
