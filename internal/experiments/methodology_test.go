package experiments

import (
	"math"
	"strings"
	"testing"

	"ibsim/internal/sampling"
)

func TestMethodologyValidation(t *testing.T) {
	res, err := MethodologyValidation(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's approximation should hold within ~10% for every workload.
	for _, row := range res.Rows {
		if math.Abs(row.RelErr) > 0.10 {
			t.Errorf("%s: independent-levels error %.1f%% (combined %.3f vs sum %.3f)",
				row.Workload, 100*row.RelErr, row.Combined, row.Independent)
		}
	}
	if !strings.Contains(res.Render(), "Combined") {
		t.Error("render missing header")
	}
}

func TestSamplingStudy(t *testing.T) {
	res, err := SamplingStudy(Options{Instructions: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.FullMPI <= 0 {
		t.Fatal("no full-trace reference")
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var warmMax, coldSmall, coldLarge float64
	for _, row := range res.Rows {
		switch {
		case row.Mode == sampling.Warm:
			if e := math.Abs(row.RelErr); e > warmMax {
				warmMax = e
			}
		case row.Window == 2_000:
			coldSmall = row.RelErr
		case row.Window == 50_000:
			coldLarge = row.RelErr
		}
	}
	if warmMax > 0.15 {
		t.Errorf("warm sampling error %.1f%% too large", 100*warmMax)
	}
	if coldSmall <= 0 {
		t.Errorf("small-window cold sampling not biased upward: %.3f", coldSmall)
	}
	if coldLarge >= coldSmall {
		t.Errorf("cold bias did not shrink with window: %.3f -> %.3f", coldSmall, coldLarge)
	}
	if !strings.Contains(res.Render(), "Coverage") {
		t.Error("render missing header")
	}
}
